(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 7 and Appendix C). Results are printed in the
   paper's layout; EXPERIMENTS.md records paper-vs-measured values.

   Usage:
     dune exec bench/main.exe                 -- all sections, default scale
     dune exec bench/main.exe -- --scale smoke
     dune exec bench/main.exe -- --only table1,fig5
     dune exec bench/main.exe -- --timing     -- Bechamel stage timings
     dune exec bench/main.exe -- --list       -- list section ids

   Sweeps are shared between sections (Table 1, Table 6, Table 7 and
   Figure 5 all read the no-NUMA sweep, etc.) and cached, so the whole
   harness performs each scheduling run exactly once. *)

let scale = ref Datasets.Default
let seed = ref 1
let only : string list ref = ref []
let timing = ref false
let list_sections = ref false
let compare_baseline : string option ref = ref None
let cost_tol = ref 0.05
let perf_tol = ref 0.6
let jobs = ref (Par.default_jobs ())
let jobs_sweep : int list ref = ref []
let speedup_floor : float option ref = ref None

let usage () =
  prerr_endline
    "usage: main.exe [--scale smoke|default|full] [--seed N] [--only id,id,...] \
     [--timing] [--list] [--compare BASELINE.json] [--cost-tol FRAC] [--perf-tol FRAC] \
     [--jobs N] [--jobs-sweep N,N,...] [--speedup-floor X]";
  exit 2

let parse_args () =
  let float_arg s r = match float_of_string_opt s with Some v -> r := v | None -> usage () in
  let rec go = function
    | [] -> ()
    | "--scale" :: s :: rest ->
      (match Datasets.scale_of_string s with
       | Some sc -> scale := sc
       | None -> usage ());
      go rest
    | "--seed" :: s :: rest ->
      (match int_of_string_opt s with Some n -> seed := n | None -> usage ());
      go rest
    | "--only" :: s :: rest ->
      only := String.split_on_char ',' s;
      go rest
    | "--timing" :: rest ->
      timing := true;
      go rest
    | "--list" :: rest ->
      list_sections := true;
      go rest
    | "--compare" :: path :: rest ->
      compare_baseline := Some path;
      go rest
    | "--cost-tol" :: s :: rest ->
      float_arg s cost_tol;
      go rest
    | "--perf-tol" :: s :: rest ->
      float_arg s perf_tol;
      go rest
    | "--jobs" :: s :: rest ->
      (match int_of_string_opt s with
       | Some n when n >= 1 -> jobs := n
       | _ -> usage ());
      go rest
    | "--jobs-sweep" :: s :: rest ->
      let parsed = List.map int_of_string_opt (String.split_on_char ',' s) in
      if List.exists (function Some n -> n < 1 | None -> true) parsed then usage ();
      jobs_sweep := List.filter_map Fun.id parsed;
      go rest
    | "--speedup-floor" :: s :: rest ->
      (match float_of_string_opt s with
       | Some v when v > 0.0 -> speedup_floor := Some v
       | _ -> usage ());
      go rest
    | _ -> usage ()
  in
  go (List.tl (Array.to_list Sys.argv))

(* ------------------------------------------------------------------ *)
(* Budgets per scale.                                                  *)

let bench_limits () =
  match !scale with
  | Datasets.Smoke ->
    {
      Pipeline.default_limits with
      Pipeline.hc_evals = 60_000;
      hccs_evals = 20_000;
      ilp_full_nodes = 300;
      ilp_part_nodes = 60;
      ilp_cs_nodes = 80;
      stage_seconds = Some 0.25;
    }
  | Datasets.Default ->
    {
      Pipeline.default_limits with
      Pipeline.hc_evals = 250_000;
      hccs_evals = 80_000;
      stage_seconds = Some 0.75;
    }
  | Datasets.Full ->
    { Pipeline.thorough_limits with Pipeline.stage_seconds = Some 120.0 }

(* Above this node count the ILP stages are disabled in the sweeps: they
   contribute little on larger DAGs (Section 7.1, "the ILP-based methods
   ... only a minor improvement for larger DAGs") and dominate the
   harness runtime otherwise. *)
let ilp_node_cap () =
  match !scale with
  | Datasets.Smoke -> 500
  | Datasets.Default -> 1_200
  | Datasets.Full -> max_int

let huge_limits () =
  match !scale with
  | Datasets.Smoke -> { Pipeline.fast_limits with Pipeline.hc_evals = 60_000 }
  | Datasets.Default -> { Pipeline.fast_limits with Pipeline.hc_evals = 300_000 }
  | Datasets.Full ->
    { Pipeline.fast_limits with Pipeline.hc_evals = 5_000_000; stage_seconds = Some 1800.0 }

(* ILPinit is only competitive for P = 4 (Appendix C.1) and our batched
   substrate only pays off on smaller instances. HC budgets scale with
   the instance so that large DAGs still get several complete
   neighbourhood passes. *)
let limits_for ~p ~n base =
  let use_ilp = base.Pipeline.use_ilp && n <= ilp_node_cap () in
  let passes = match !scale with Datasets.Smoke -> 4 | Datasets.Default -> 6 | Datasets.Full -> 25 in
  {
    base with
    Pipeline.use_ilp;
    use_ilp_init = (p = 4 && n <= 600 && use_ilp);
    hc_evals = max base.Pipeline.hc_evals (passes * n * 3 * p);
  }

(* ------------------------------------------------------------------ *)
(* Cached datasets and sweeps.                                         *)

let dataset_cache : (string, Datasets.t) Hashtbl.t = Hashtbl.create 8

let dataset label =
  match Hashtbl.find_opt dataset_cache label with
  | Some d -> d
  | None ->
    let d =
      match label with
      | "training" -> Datasets.training ~scale:!scale ~seed:!seed
      | "tiny" -> Datasets.tiny ~scale:!scale ~seed:!seed
      | "small" -> Datasets.small ~scale:!scale ~seed:!seed
      | "medium" -> Datasets.medium ~scale:!scale ~seed:!seed
      | "large" -> Datasets.large ~scale:!scale ~seed:!seed
      | "huge" -> Datasets.huge ~scale:!scale ~seed:!seed
      | _ -> invalid_arg ("unknown dataset " ^ label)
    in
    Hashtbl.add dataset_cache label d;
    d

type sweep_key = {
  ds : string;
  p : int;
  g : int;
  l : int;
  delta : int;  (* 0 = uniform machine *)
  huge : bool;  (* use the fast (non-ILP) limits *)
}

let run_cache : (sweep_key, Experiment.run list) Hashtbl.t = Hashtbl.create 64

let machine_of key =
  if key.delta = 0 then Machine.uniform ~p:key.p ~g:key.g ~l:key.l
  else Machine.numa_tree ~p:key.p ~g:key.g ~l:key.l ~delta:key.delta

let want_list_baselines key =
  (not key.huge) && (key.g = 5 || key.ds = "tiny") && key.delta = 0

let want_multilevel key = key.delta > 0 && key.ds <> "tiny" && not key.huge

let runs key =
  match Hashtbl.find_opt run_cache key with
  | Some r -> r
  | None ->
    let d = dataset key.ds in
    let machine = machine_of key in
    let base = if key.huge then huge_limits () else bench_limits () in
    let t0 = Unix.gettimeofday () in
    Printf.eprintf "[sweep] %-7s P=%-2d g=%d l=%-2d delta=%d (%d instances)...%!" key.ds
      key.p key.g key.l key.delta
      (List.length d.Datasets.instances);
    (* One task per instance. Results come back in instance order, so
       every aggregation below is independent of the jobs count; the
       lazy DAG caches are forced before the DAGs cross domains. *)
    List.iter (fun inst -> Dag.warm_caches inst.Datasets.dag) d.Datasets.instances;
    let result =
      Par.map
        (fun inst ->
          let limits = limits_for ~p:key.p ~n:(Dag.n inst.Datasets.dag) base in
          let options =
            {
              Experiment.default_options with
              Experiment.limits = limits;
              (* The multilevel solving phase runs on the coarse DAG with
                 local search only; the communication-schedule ILP still
                 polishes the final uncoarsened result. *)
              ml_solver_limits =
                (if !scale = Datasets.Full then None
                 else Some { limits with Pipeline.use_ilp = false });
              with_list_baselines = want_list_baselines key;
              with_multilevel = want_multilevel key;
              seed = !seed;
            }
          in
          Experiment.evaluate options machine inst.Datasets.dag)
        d.Datasets.instances
    in
    Printf.eprintf " %.1fs\n%!" (Unix.gettimeofday () -. t0);
    Hashtbl.add run_cache key result;
    result

let main_key ds p g = { ds; p; g; l = 5; delta = 0; huge = false }
let numa_key ds p delta = { ds; p; g = 1; l = 5; delta; huge = false }

let main_datasets = [ "tiny"; "small"; "medium"; "large" ]
let no_tiny_datasets = [ "small"; "medium"; "large" ]
let ps = [ 4; 8; 16 ]
let gs = [ 1; 3; 5 ]
let numa_ps = [ 8; 16 ]
let deltas = [ 2; 3; 4 ]

let concat_runs keys = List.concat_map runs keys

(* ------------------------------------------------------------------ *)
(* Formatting helpers.                                                 *)

let red ratio = Experiment.reduction_percent ratio

let cell2 vs_cilk vs_hdagg = Printf.sprintf "%3.0f%% / %3.0f%%" (red vs_cilk) (red vs_hdagg)

let ours r = r.Experiment.ours
let cilk r = r.Experiment.cilk
let hdagg r = r.Experiment.hdagg
let init_cost r = r.Experiment.stage.Pipeline.init_cost
let after_ls r = r.Experiment.stage.Pipeline.after_local_search
let after_part r = r.Experiment.stage.Pipeline.after_ilp_part

let header title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let row label cells = Printf.printf "%-10s %s\n" label (String.concat "  " cells)

(* ------------------------------------------------------------------ *)
(* Sections.                                                           *)

let table1 () =
  header "Table 1: cost reduction vs Cilk / HDagg, no NUMA (l=5)";
  Printf.printf "By g and P (aggregated over tiny..large):\n";
  row "" (List.map (fun g -> Printf.sprintf "g=%-10d" g) gs);
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun g ->
            let rs = concat_runs (List.map (fun ds -> main_key ds p g) main_datasets) in
            cell2 (Experiment.geo_ratio ours cilk rs) (Experiment.geo_ratio ours hdagg rs))
          gs
      in
      row (Printf.sprintf "P=%d" p) cells)
    ps;
  Printf.printf "\nBy g and dataset (aggregated over P):\n";
  row "" (List.map (fun g -> Printf.sprintf "g=%-10d" g) gs);
  List.iter
    (fun ds ->
      let cells =
        List.map
          (fun g ->
            let rs = concat_runs (List.map (fun p -> main_key ds p g) ps) in
            cell2 (Experiment.geo_ratio ours cilk rs) (Experiment.geo_ratio ours hdagg rs))
          gs
      in
      row ds cells)
    main_datasets

let fig5 () =
  header "Figure 5: cost ratios normalised to Cilk, no NUMA, per g";
  Printf.printf "%-6s %8s %8s %8s %8s %8s\n" "g" "Cilk" "HDagg" "Init" "HCcs" "ILP";
  List.iter
    (fun g ->
      let rs =
        concat_runs
          (List.concat_map (fun ds -> List.map (fun p -> main_key ds p g) ps) main_datasets)
      in
      Printf.printf "%-6d %8.3f %8.3f %8.3f %8.3f %8.3f\n" g 1.0
        (Experiment.geo_ratio hdagg cilk rs)
        (Experiment.geo_ratio init_cost cilk rs)
        (Experiment.geo_ratio after_ls cilk rs)
        (Experiment.geo_ratio ours cilk rs))
    gs

let table2 () =
  header "Table 2: cost reduction with NUMA vs Cilk / HDagg (g=1, l=5)";
  row "" (List.map (fun d -> Printf.sprintf "delta=%-6d" d) deltas);
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun d ->
            let rs = concat_runs (List.map (fun ds -> numa_key ds p d) main_datasets) in
            cell2 (Experiment.geo_ratio ours cilk rs) (Experiment.geo_ratio ours hdagg rs))
          deltas
      in
      row (Printf.sprintf "P=%d" p) cells)
    numa_ps

let fig6 () =
  header "Figure 6: NUMA cost ratios normalised to Cilk (small/medium/large)";
  Printf.printf "%-12s %8s %8s %8s %8s %8s %8s\n" "(P,delta)" "Cilk" "HDagg" "Init" "HCcs"
    "ILP" "ML";
  List.iter
    (fun p ->
      List.iter
        (fun d ->
          let rs = concat_runs (List.map (fun ds -> numa_key ds p d) no_tiny_datasets) in
          let ml r =
            match Experiment.ml_best r with Some c -> c | None -> r.Experiment.ours
          in
          Printf.printf "%-12s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n"
            (Printf.sprintf "(%d,%d)" p d)
            1.0
            (Experiment.geo_ratio hdagg cilk rs)
            (Experiment.geo_ratio init_cost cilk rs)
            (Experiment.geo_ratio after_ls cilk rs)
            (Experiment.geo_ratio ours cilk rs)
            (Experiment.geo_ratio ml cilk rs))
        deltas)
    numa_ps

let table3 () =
  header "Table 3: multilevel (C_opt) reduction vs Cilk / HDagg with NUMA";
  row "" (List.map (fun d -> Printf.sprintf "delta=%-6d" d) deltas);
  let ml r = match Experiment.ml_best r with Some c -> c | None -> r.Experiment.ours in
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun d ->
            let rs = concat_runs (List.map (fun ds -> numa_key ds p d) no_tiny_datasets) in
            cell2 (Experiment.geo_ratio ml cilk rs) (Experiment.geo_ratio ml hdagg rs))
          deltas
      in
      row (Printf.sprintf "P=%d" p) cells)
    numa_ps

(* Tables 4 and 5: which initialiser wins on the training set. *)
let init_wins () =
  let d = dataset "training" in
  let base = bench_limits () in
  List.iter (fun inst -> Dag.warm_caches inst.Datasets.dag) d.Datasets.instances;
  List.concat
  @@ Par.map
    (fun inst ->
      let dag = inst.Datasets.dag in
      List.concat_map
        (fun p ->
          List.map
            (fun g ->
              let m = Machine.uniform ~p ~g ~l:5 in
              let candidates =
                [
                  ("bspg", Bsp_cost.total m (Bspg.schedule m dag));
                  ("source", Bsp_cost.total m (Source_heuristic.schedule m dag));
                ]
                @
                if p = 4 && Dag.n dag <= 600 then
                  [
                    ( "ilp-init",
                      Bsp_cost.total m
                        (Ilp_schedulers.init
                           ~budget:
                             (Budget.combine
                                (Budget.steps (base.Pipeline.ilp_init_nodes * 32))
                                (Budget.seconds 5.0))
                           ~max_vars:base.Pipeline.ilp_init_max_vars
                           ~max_nodes:base.Pipeline.ilp_init_nodes m dag) );
                  ]
                else []
              in
              let winner, _ =
                List.fold_left
                  (fun (bn, bc) (n, c) -> if c < bc then (n, c) else (bn, bc))
                  (List.hd candidates) (List.tl candidates)
              in
              (inst.Datasets.name, Dag.n dag, p, winner))
            gs)
        ps)
    d.Datasets.instances

let wins_cache = ref None

let get_wins () =
  match !wins_cache with
  | Some w -> w
  | None ->
    Printf.eprintf "[sweep] training-set initialiser comparison...\n%!";
    let w = init_wins () in
    wins_cache := Some w;
    w

let count_wins wins name = List.length (List.filter (fun (_, _, _, w) -> w = name) wins)

let is_spmv name = String.length name >= 4 && String.sub name 0 4 = "spmv"

let table4 () =
  header "Table 4: best initialiser counts on training spmv instances, per P";
  let wins = get_wins () in
  List.iter
    (fun p ->
      let subset = List.filter (fun (n, _, p', _) -> p' = p && is_spmv n) wins in
      Printf.printf "P=%-3d  bspg: %d  source: %d  ilp-init: %d\n" p
        (count_wins subset "bspg") (count_wins subset "source")
        (count_wins subset "ilp-init"))
    ps

let table5 () =
  header "Table 5: best initialiser counts on exp/cg/knn training instances, per P and n";
  let wins = get_wins () in
  let shrink =
    match !scale with Datasets.Full -> 1.0 | Datasets.Default -> 0.5 | Datasets.Smoke -> 0.15
  in
  let bucket n =
    if float_of_int n <= 150.0 *. shrink then "small"
    else if float_of_int n <= 500.0 *. shrink then "mid"
    else "large"
  in
  List.iter
    (fun b ->
      Printf.printf "n-bucket %s:\n" b;
      List.iter
        (fun p ->
          let subset =
            List.filter
              (fun (name, n, p', _) -> p' = p && bucket n = b && not (is_spmv name))
              wins
          in
          Printf.printf "  P=%-3d  bspg: %d  source: %d  ilp-init: %d\n" p
            (count_wins subset "bspg") (count_wins subset "source")
            (count_wins subset "ilp-init"))
        ps)
    [ "small"; "mid"; "large" ]

let table6 () =
  header "Table 6: reduction vs Cilk / HDagg per (g, P, dataset), no NUMA";
  Printf.printf "%-8s" "";
  List.iter (fun g -> List.iter (fun p -> Printf.printf " g=%d,P=%-8d" g p) ps) gs;
  print_newline ();
  List.iter
    (fun ds ->
      Printf.printf "%-8s" ds;
      List.iter
        (fun g ->
          List.iter
            (fun p ->
              let rs = runs (main_key ds p g) in
              Printf.printf " %s"
                (cell2 (Experiment.geo_ratio ours cilk rs)
                   (Experiment.geo_ratio ours hdagg rs)))
            ps)
        gs;
      print_newline ())
    main_datasets

let table7 () =
  header "Table 7: per-algorithm cost ratios (normalised to Cilk), g=5";
  Printf.printf "%-8s %8s %8s %8s %8s %8s %8s %8s %8s\n" "" "BL-EST" "ETF" "Cilk" "HDagg"
    "Init" "HCcs" "ILPpart" "ILPcs";
  List.iter
    (fun ds ->
      let rs = concat_runs (List.map (fun p -> main_key ds p 5) ps) in
      let opt f r = match f r with Some v -> v | None -> r.Experiment.cilk in
      Printf.printf "%-8s %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f %8.3f\n" ds
        (Experiment.geo_ratio (opt (fun r -> r.Experiment.bl_est)) cilk rs)
        (Experiment.geo_ratio (opt (fun r -> r.Experiment.etf)) cilk rs)
        1.0
        (Experiment.geo_ratio hdagg cilk rs)
        (Experiment.geo_ratio init_cost cilk rs)
        (Experiment.geo_ratio after_ls cilk rs)
        (Experiment.geo_ratio after_part cilk rs)
        (Experiment.geo_ratio ours cilk rs))
    main_datasets

let table8 () =
  header "Table 8: reduction vs ETF on the tiny dataset";
  row "" (List.map (fun g -> Printf.sprintf "g=%-4d" g) gs);
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun g ->
            let rs = runs (main_key "tiny" p g) in
            let etf r =
              match r.Experiment.etf with Some v -> v | None -> r.Experiment.cilk
            in
            Printf.sprintf "%3.0f%%" (red (Experiment.geo_ratio ours etf rs)))
          gs
      in
      row (Printf.sprintf "P=%d" p) cells)
    ps

let table9 () =
  header "Table 9: effect of the latency l (medium dataset, g=1, P=8)";
  List.iter
    (fun l ->
      let rs = runs { ds = "medium"; p = 8; g = 1; l; delta = 0; huge = false } in
      Printf.printf "l=%-4d %s\n" l
        (cell2 (Experiment.geo_ratio ours cilk rs) (Experiment.geo_ratio ours hdagg rs)))
    [ 2; 5; 10; 20 ]

let table10 () =
  header "Table 10: NUMA reduction per (P, delta, dataset), g=1, l=5";
  Printf.printf "%-8s" "";
  List.iter (fun p -> List.iter (fun d -> Printf.printf " P=%d,d=%-8d" p d) deltas) numa_ps;
  print_newline ();
  List.iter
    (fun ds ->
      Printf.printf "%-8s" ds;
      List.iter
        (fun p ->
          List.iter
            (fun d ->
              let rs = runs (numa_key ds p d) in
              Printf.printf " %s"
                (cell2 (Experiment.geo_ratio ours cilk rs)
                   (Experiment.geo_ratio ours hdagg rs)))
            deltas)
        numa_ps;
      print_newline ())
    main_datasets

let huge_key ~p ~g ~delta = { ds = "huge"; p; g; l = 5; delta; huge = true }

let table11 () =
  header "Table 11: huge dataset, Init+HC+HCcs vs Cilk / HDagg (no NUMA)";
  row "" (List.map (fun g -> Printf.sprintf "g=%-10d" g) gs);
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun g ->
            let rs = runs (huge_key ~p ~g ~delta:0) in
            cell2 (Experiment.geo_ratio ours cilk rs) (Experiment.geo_ratio ours hdagg rs))
          gs
      in
      row (Printf.sprintf "P=%d" p) cells)
    ps

let table12 () =
  header "Table 12: huge dataset with NUMA (g=1, l=5)";
  row "" (List.map (fun d -> Printf.sprintf "delta=%-6d" d) deltas);
  List.iter
    (fun p ->
      let cells =
        List.map
          (fun d ->
            let rs = runs (huge_key ~p ~g:1 ~delta:d) in
            cell2 (Experiment.geo_ratio ours cilk rs) (Experiment.geo_ratio ours hdagg rs))
          deltas
      in
      row (Printf.sprintf "P=%d" p) cells)
    numa_ps

let fig7 () =
  header "Figure 7: huge dataset ratios normalised to Cilk, per P (no NUMA)";
  Printf.printf "%-6s %8s %8s %8s %8s\n" "P" "Cilk" "HDagg" "Init" "HCcs";
  List.iter
    (fun p ->
      let rs = concat_runs (List.map (fun g -> huge_key ~p ~g ~delta:0) gs) in
      Printf.printf "%-6d %8.3f %8.3f %8.3f %8.3f\n" p 1.0
        (Experiment.geo_ratio hdagg cilk rs)
        (Experiment.geo_ratio init_cost cilk rs)
        (Experiment.geo_ratio ours cilk rs))
    ps

let ml_ratio_getter ratio r =
  match Experiment.ml_at_ratio r ratio with Some c -> c | None -> r.Experiment.ours

let ml_opt_getter r =
  match Experiment.ml_best r with Some c -> c | None -> r.Experiment.ours

let table13 () =
  header "Table 13: multilevel per coarsening ratio vs Cilk / HDagg (NUMA, no tiny)";
  List.iter
    (fun (label, getter) ->
      Printf.printf "%s:\n" label;
      row "" (List.map (fun d -> Printf.sprintf "delta=%-6d" d) deltas);
      List.iter
        (fun p ->
          let cells =
            List.map
              (fun d ->
                let rs =
                  concat_runs (List.map (fun ds -> numa_key ds p d) no_tiny_datasets)
                in
                cell2
                  (Experiment.geo_ratio getter cilk rs)
                  (Experiment.geo_ratio getter hdagg rs))
              deltas
          in
          row (Printf.sprintf "P=%d" p) cells)
        numa_ps)
    [ ("C15", ml_ratio_getter 0.15); ("C30", ml_ratio_getter 0.3); ("Copt", ml_opt_getter) ];
  (* The Section C.6 statistic: how often no scheduler beats the trivial
     single-processor schedule, with and without the multilevel method. *)
  let all_runs =
    concat_runs
      (List.concat_map
         (fun p ->
           List.concat_map
             (fun d -> List.map (fun ds -> numa_key ds p d) no_tiny_datasets)
             deltas)
         numa_ps)
  in
  let total = List.length all_runs in
  let base_fail =
    List.length (List.filter (fun r -> r.Experiment.ours >= r.Experiment.trivial) all_runs)
  in
  let ml_fail =
    List.length (List.filter (fun r -> ml_opt_getter r >= r.Experiment.trivial) all_runs)
  in
  Printf.printf
    "\nC.6: base scheduler not better than trivial: %d / %d; with ML: %d / %d\n" base_fail
    total ml_fail total

let table14 () =
  header "Table 14: multilevel / base-scheduler cost ratio (NUMA, no tiny)";
  List.iter
    (fun (label, getter) ->
      Printf.printf "%s:\n" label;
      row "" (List.map (fun d -> Printf.sprintf "delta=%-6d" d) deltas);
      List.iter
        (fun p ->
          let cells =
            List.map
              (fun d ->
                let rs =
                  concat_runs (List.map (fun ds -> numa_key ds p d) no_tiny_datasets)
                in
                Printf.sprintf "%11.3f" (Experiment.geo_ratio getter ours rs))
              deltas
          in
          row (Printf.sprintf "P=%d" p) cells)
        numa_ps)
    [ ("C15", ml_ratio_getter 0.15); ("C30", ml_ratio_getter 0.3); ("Copt", ml_opt_getter) ]

(* Ablations of the design choices DESIGN.md calls out: the HDagg
   aggregation pass, the superstep-merge pass inside our local search,
   the simulated-annealing extension, and the CCR-based automatic
   multilevel engagement. *)
let ablations () =
  header "Ablations (design-choice studies, small dataset)";
  let d = dataset "small" in
  let p = 8 and g = 3 in
  let m = Machine.uniform ~p ~g ~l:5 in
  let lim = bench_limits () in
  (* Per-instance costs for the local-search variants, all starting from
     the better of BSPg/Source. *)
  let rows =
    List.map
      (fun inst ->
        let dag = inst.Datasets.dag in
        let cilk = Bsp_cost.total m (Cilk.schedule dag ~p ~seed:!seed) in
        let hdagg_on = Bsp_cost.total m (Hdagg.schedule ~aggregate:true m dag) in
        let hdagg_off = Bsp_cost.total m (Hdagg.schedule ~aggregate:false m dag) in
        let init =
          let a = Bspg.schedule m dag and b = Source_heuristic.schedule m dag in
          if Bsp_cost.total m a <= Bsp_cost.total m b then a else b
        in
        let budget () = Budget.steps lim.Pipeline.hc_evals in
        let hc, _ = Hc.improve ~budget:(budget ()) m init in
        let hc = Schedule.compact hc in
        let hc_cost = Bsp_cost.total m hc in
        let merged = Superstep_merge.greedy m hc in
        let merged_cost = Bsp_cost.total m merged in
        let hccs, _ = Hccs.improve ~budget:(Budget.steps lim.Pipeline.hccs_evals) m merged in
        let hccs_cost = Bsp_cost.total m hccs in
        let annealed, _ =
          Annealing.improve ~budget:(budget ())
            ~config:
              { (Annealing.default_config merged_cost) with Annealing.seed = !seed }
            m merged
        in
        let anneal_cost = Bsp_cost.total m annealed in
        (cilk, hdagg_on, hdagg_off, hc_cost, merged_cost, hccs_cost, anneal_cost))
      d.Datasets.instances
  in
  let geo f = Statistics.geometric_mean (List.map f rows) in
  let r a b = float_of_int a /. float_of_int b in
  Printf.printf "HDagg aggregation: off/on cost ratio = %.3f (its merge pass gain)\n"
    (geo (fun (_, on, off, _, _, _, _) -> r off on));
  Printf.printf "local search (vs Cilk): HC %.3f  +merge %.3f  +HCcs %.3f  +anneal %.3f\n"
    (geo (fun (c, _, _, hc, _, _, _) -> r hc c))
    (geo (fun (c, _, _, _, mg, _, _) -> r mg c))
    (geo (fun (c, _, _, _, _, cs, _) -> r cs c))
    (geo (fun (c, _, _, _, _, _, an) -> r an c));
  (* CCR-based auto engagement, judged against the cached NUMA sweep. *)
  let decisions = ref 0 and correct = ref 0 in
  List.iter
    (fun pq ->
      List.iter
        (fun dlt ->
          List.iter
            (fun ds ->
              let key = numa_key ds pq dlt in
              let machine = machine_of key in
              let dset = dataset ds in
              List.iter2
                (fun inst run ->
                  match Experiment.ml_best run with
                  | None -> ()
                  | Some ml ->
                    incr decisions;
                    let predicted =
                      Ccr.communication_dominated machine inst.Datasets.dag
                    in
                    let actual = ml < run.Experiment.ours in
                    if predicted = actual then incr correct)
                dset.Datasets.instances (runs key))
            no_tiny_datasets)
        deltas)
    numa_ps;
  if !decisions > 0 then
    Printf.printf
      "CCR auto-selection (threshold %.1f): %d / %d NUMA cases decided correctly\n"
      Ccr.default_threshold !correct !decisions;
  (* Coarsening-strategy ablation: the paper's edge-selection rule vs a
     communication-weighted matching, both through the same multilevel
     driver on a communication-heavy machine. *)
  let numa = Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:4 in
  let solver mach dg =
    let init = Bspg.schedule mach dg in
    Schedule.compact (fst (Hc.improve ~budget:(Budget.steps 50_000) mach init))
  in
  let strat_rows =
    List.map
      (fun inst ->
        let dag = inst.Datasets.dag in
        let run strategy =
          Bsp_cost.total numa
            (Multilevel.run_ratio ~strategy ~refine_interval:5 ~refine_moves:100 ~solver
               ~ratio:0.3 numa dag)
        in
        (run Coarsen.Paper_rule, run Coarsen.Comm_matching))
      d.Datasets.instances
  in
  Printf.printf
    "coarsening strategy: comm-matching / paper-rule cost ratio = %.3f (P=8, delta=4)\n"
    (Statistics.geometric_mean (List.map (fun (a, b) -> r b a) strat_rows))

(* ------------------------------------------------------------------ *)
(* Local-search engine benchmark: the read-only delta + worklist HC
   against the apply/rollback sweep engine it replaced, on the same
   instance with the same evaluation budget.                           *)

let ls_start_schedule rng dag p =
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
  Schedule.of_assignment dag ~proc ~step:level

(* Sub-second differential check, part of the CI tier: on small fixed
   instances the worklist engine must terminate in a local minimum at
   least as cheap as the reference sweep engine's (both engines use the
   same neighbourhood and first-improvement rule, so with an ample
   budget each ends in a genuine local minimum; the worklist's visiting
   order may find a different — never worse on these instances — one). *)
let ls_smoke () =
  header "Local-search smoke check: worklist+delta vs reference engine";
  let rng = Rng.create !seed in
  let cases =
    [
      ("chain", Finegrained.spmv (Sparse_matrix.random rng ~n:10 ~q:0.2), 4, 3, 5);
      ("exp", Finegrained.exp (Sparse_matrix.random rng ~n:8 ~q:0.25) ~k:2, 4, 2, 3);
      ("cg", Finegrained.cg (Sparse_matrix.random rng ~n:6 ~q:0.3) ~k:2, 8, 1, 2);
    ]
  in
  List.iter
    (fun (name, dag, p, g, l) ->
      let m = Machine.uniform ~p ~g ~l in
      let s = ls_start_schedule rng dag p in
      let _, st_wl = Hc.improve ~check:true m s in
      let _, st_ref = Hc.improve_reference ~check:true m s in
      Printf.printf "%-8s n=%-5d worklist=%-8d reference=%-8d evals %d vs %d\n" name
        (Dag.n dag) st_wl.Hc.final_cost st_ref.Hc.final_cost st_wl.Hc.moves_evaluated
        st_ref.Hc.moves_evaluated;
      if st_wl.Hc.final_cost > st_ref.Hc.final_cost then
        failwith
          (Printf.sprintf
             "ls_smoke: worklist engine ended worse than the reference on %s (%d > %d)"
             name st_wl.Hc.final_cost st_ref.Hc.final_cost))
    cases;
  print_endline "ls_smoke: OK (worklist local minima never worse than reference)"

let ls_eval_budget () =
  match !scale with
  | Datasets.Smoke -> 60_000
  | Datasets.Default -> 250_000
  | Datasets.Full -> 1_000_000

(* Moves-evaluated/sec microbenchmark on a >= 10k-node instance, plus an
   end-to-end pipeline wall time; emits BENCH_localsearch.json. *)
let localsearch () =
  header "Local-search engine microbenchmark (delta/worklist vs apply/rollback)";
  let rng = Rng.create !seed in
  let dag =
    Finegrained.generate_sized rng ~family:Finegrained.Exp ~shape:Finegrained.Wide
      ~target:12_000
  in
  let n = Dag.n dag in
  let m = Machine.uniform ~p:8 ~g:3 ~l:5 in
  let init = Bspg.schedule m dag in
  let evals = ls_eval_budget () in
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  (* Both engines are deterministic on a fixed start schedule, so
     repetitions re-measure the same work; alternating them makes slow
     drifts of the host machine hit both evenly. Rates come from the
     summed times. *)
  let reps =
    match !scale with Datasets.Smoke -> 1 | Datasets.Default -> 2 | Datasets.Full -> 5
  in
  Printf.eprintf "[ls] n=%d, budget=%d evals, %d alternating reps...%!" n evals reps;
  let t_ref = ref 0.0 and t_wl = ref 0.0 in
  let last_ref = ref None and last_wl = ref None in
  for _ = 1 to reps do
    let (_, s), t =
      time (fun () -> Hc.improve_reference ~budget:(Budget.steps evals) m init)
    in
    last_ref := Some s;
    t_ref := !t_ref +. t;
    let (_, s), t = time (fun () -> Hc.improve ~budget:(Budget.steps evals) m init) in
    last_wl := Some s;
    t_wl := !t_wl +. t;
    Printf.eprintf " .%!"
  done;
  Printf.eprintf " done (ref %.2fs, delta %.2fs)\n%!" !t_ref !t_wl;
  let st_ref = Option.get !last_ref and st_wl = Option.get !last_wl in
  let t_ref = !t_ref and t_wl = !t_wl in
  let rate st t = float_of_int (reps * st.Hc.moves_evaluated) /. t in
  let rate_ref = rate st_ref t_ref and rate_wl = rate st_wl t_wl in
  let speedup = rate_wl /. rate_ref in
  Printf.printf "instance: exp/wide, n=%d, P=8 g=3 l=5, budget=%d evals, reps=%d\n" n
    evals reps;
  Printf.printf "%-12s %12s %10s %14s %10s\n" "engine" "evaluated" "applied" "evals/sec"
    "final";
  Printf.printf "%-12s %12d %10d %14.0f %10d\n" "reference" st_ref.Hc.moves_evaluated
    st_ref.Hc.moves_applied rate_ref st_ref.Hc.final_cost;
  Printf.printf "%-12s %12d %10d %14.0f %10d\n" "delta" st_wl.Hc.moves_evaluated
    st_wl.Hc.moves_applied rate_wl st_wl.Hc.final_cost;
  Printf.printf "speedup (moves evaluated / sec): %.1fx\n" speedup;
  (* End-to-end: the heuristic pipeline (no ILP — this instance is far
     above the ILP node caps anyway) on the same instance. *)
  let pipeline_limits =
    { Pipeline.fast_limits with Pipeline.hc_evals = evals; hccs_evals = evals / 4 }
  in
  (* The end-to-end run doubles as the observability check: a registry
     is installed only here (the microbenchmark loops above run without
     one, keeping the measured engine rates registry-free), and its
     snapshot lands next to the benchmark JSON. *)
  let reg = Obs.Metrics.create () in
  let (_, stage), t_pipe =
    time (fun () ->
        Obs.Metrics.with_registry reg (fun () -> Pipeline.run ~limits:pipeline_limits m dag))
  in
  Printf.printf "pipeline (init+HC+HCcs) wall time: %.2fs, cost %d -> %d\n" t_pipe
    stage.Pipeline.init_cost stage.Pipeline.final_cost;
  Obs.Metrics.write_json_file reg "BENCH_localsearch.metrics.json";
  (* Parallel portfolio benchmark: the multilevel coarsening-ratio
     sweep, timed once per jobs count (default 1 and 4 domains,
     overridable with --jobs-sweep) in the same process. The limits
     carry no wall-clock cap and no ILP, so every run is fully
     deterministic and the equal-cost assertion below is exact — this is
     the bench-tier witness of the Par determinism contract. The
     measurement is taken regardless of --jobs so snapshots always
     record the same experiment (speedup saturates at the host's core
     count, which the snapshot records as "cores"; the committed
     baseline's value reflects its host). Each timed run resets and
     snapshots the Par per-domain accumulators, so the JSON carries the
     GC pressure (minor words, collections) behind the speedup. *)
  let par_sweep_jobs =
    let requested = match !jobs_sweep with [] -> [ 1; 4 ] | l -> l in
    let l = List.sort_uniq compare requested in
    if List.mem 1 l then l else 1 :: l
  in
  let par_jobs = List.fold_left max 1 par_sweep_jobs in
  let ml_ratios = [ 0.45; 0.3; 0.2; 0.15 ] in
  let ml_target =
    match !scale with
    | Datasets.Smoke -> 2_000
    | Datasets.Default -> 6_000
    | Datasets.Full -> 12_000
  in
  let ml_evals =
    match !scale with
    | Datasets.Smoke -> 20_000
    | Datasets.Default -> 80_000
    | Datasets.Full -> 250_000
  in
  let ml_dag =
    Finegrained.generate_sized rng ~family:Finegrained.Exp ~shape:Finegrained.Wide
      ~target:ml_target
  in
  let ml_machine = Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:4 in
  let ml_limits =
    {
      Pipeline.fast_limits with
      Pipeline.hc_evals = ml_evals;
      hccs_evals = ml_evals / 4;
      stage_seconds = None;
    }
  in
  let ml_config =
    { Multilevel.default_config with Multilevel.ratios = ml_ratios }
  in
  let sweep () = Pipeline.run_multilevel ~limits:ml_limits ~config:ml_config ml_machine ml_dag in
  let cores = Domain.recommended_domain_count () in
  Printf.eprintf "[par] multilevel ratio sweep n=%d, %d ratios: jobs %s...%!"
    (Dag.n ml_dag) (List.length ml_ratios)
    (String.concat "," (List.map string_of_int par_sweep_jobs));
  let sweep_runs =
    List.map
      (fun j ->
        Par.reset_stats ();
        (* Whole-run allocation accounting: the submitting domain's
           [Gc.counters] delta (it runs tasks too, and at jobs = 1 the
           entire sweep) plus the worker domains' per-drain accumulators
           from {!Par.stats}. Both sides are domain-local counters —
           [Gc.quick_stat] would multi-count, since in OCaml 5 it
           samples every live domain's allocation. Worker idle time
           between batches allocates nothing, so the sum is the run's
           total minor-heap traffic. *)
        let mw0, pw0, _ = Gc.counters () in
        let s, t = time (fun () -> Par.with_jobs j sweep) in
        let mw1, pw1, _ = Gc.counters () in
        let st = Par.stats () in
        let worker_minor, worker_promoted =
          List.fold_left
            (fun (mw, pw) (d : Par.domain_stats) ->
              if d.Par.is_worker then
                (mw +. d.Par.minor_words, pw +. d.Par.promoted_words)
              else (mw, pw))
            (0.0, 0.0) st
        in
        let minor = mw1 -. mw0 +. worker_minor in
        let promoted = pw1 -. pw0 +. worker_promoted in
        let r = (j, Bsp_cost.total ml_machine s, t, st, minor, promoted) in
        Printf.eprintf " %.2fs%!" t;
        r)
      par_sweep_jobs
  in
  Printf.eprintf "\n%!";
  let t_of j =
    match List.find_opt (fun (j', _, _, _, _, _) -> j' = j) sweep_runs with
    | Some (_, _, t, _, _, _) -> Some t
    | None -> None
  in
  let sweep_cost_j1, t_sweep_j1, sweep_minor_j1, sweep_promoted_j1 =
    match sweep_runs with
    | (1, c, t, _, mw, pw) :: _ -> (c, t, mw, pw)
    | _ -> assert false
  in
  List.iter
    (fun (j, c, _, _, _, _) ->
      if c <> sweep_cost_j1 then
        failwith
          (Printf.sprintf
             "parallel determinism violated: ratio sweep cost %d at jobs=1 but %d at \
              jobs=%d"
             sweep_cost_j1 c j))
    sweep_runs;
  let t_sweep_jn = Option.get (t_of par_jobs) in
  let sweep_speedup = t_sweep_j1 /. t_sweep_jn in
  let par_domains =
    match List.find_opt (fun (j, _, _, _, _, _) -> j = par_jobs) sweep_runs with
    | Some (_, _, _, st, _, _) -> st
    | None -> []
  in
  Printf.printf
    "multilevel ratio sweep (n=%d, %d ratios, cores=%d, costs identical: %d):\n"
    (Dag.n ml_dag) (List.length ml_ratios) cores sweep_cost_j1;
  Printf.printf "  %4s %10s %9s %16s\n" "jobs" "seconds" "speedup" "minor words";
  List.iter
    (fun (j, _, t, _, mw, _) ->
      Printf.printf "  %4d %10.2f %8.2fx %16.0f\n" j t (t_sweep_j1 /. t) mw)
    sweep_runs;
  if par_domains <> [] then begin
    Printf.printf "  per-domain GC/task stats at jobs=%d:\n" par_jobs;
    List.iter
      (fun (d : Par.domain_stats) ->
        Printf.printf
          "    domain %d (%s): %d tasks, %d batches (chunk %d), %.0f minor words (%.0f \
           promoted), %d minor / %d major collections\n"
          d.Par.domain_index
          (if d.Par.is_worker then "worker" else "submitter")
          d.Par.tasks_run d.Par.batches_drained d.Par.last_chunk d.Par.minor_words
          d.Par.promoted_words d.Par.minor_collections d.Par.major_collections)
      par_domains
  end;
  (* Node replication on NUMA (DESIGN.md Section 5g): a single
     broadcaster (w=1, c=8) on p0 feeding one heavy consumer (w=300) per
     processor of an 8-leaf delta=4 NUMA tree. Every single-node move
     doubles some processor's superstep-1 work (+300) for a comm saving
     of at most g * 584, per move at most 128 — so the move engine is
     stuck at the start schedule — while replicating the broadcaster
     onto the far 4-cluster cuts the h-relation from 584 to 72. The
     replication phase must find that strictly improving replica, and
     the replicating pipeline must stay bit-identical across jobs
     counts. *)
  let rep_machine = Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:4 in
  let rep_dag =
    let n = 9 in
    Dag.of_edges ~n
      ~edges:(List.init 8 (fun q -> (0, q + 1)))
      ~work:(Array.init n (fun v -> if v = 0 then 1 else 300))
      ~comm:(Array.init n (fun v -> if v = 0 then 8 else 1))
  in
  let rep_start =
    Schedule.of_assignment rep_dag
      ~proc:(Array.init 9 (fun v -> if v = 0 then 0 else v - 1))
      ~step:(Array.init 9 (fun v -> if v = 0 then 0 else 1))
  in
  let _, st_plain = Hc.improve ~budget:(Budget.steps evals) rep_machine rep_start in
  let rep_sched, st_rep =
    Hc.improve ~budget:(Budget.steps evals) ~replicate:true rep_machine rep_start
  in
  if not (Validity.is_valid rep_machine rep_sched) then
    failwith "replication: HC produced an invalid replicated schedule";
  (match
     Profile.reconcile
       (Profile.compute rep_machine rep_sched)
       (Bsp_cost.breakdown rep_machine rep_sched)
   with
  | Ok () -> ()
  | Error msg -> failwith ("replication: profile does not reconcile: " ^ msg));
  if st_rep.Hc.final_cost >= st_plain.Hc.final_cost then
    failwith
      (Printf.sprintf
         "replication failed to strictly improve the NUMA broadcast instance (%d vs %d)"
         st_rep.Hc.final_cost st_plain.Hc.final_cost);
  (* The full pipeline with the replication stage on, once per jobs
     count of the sweep: deterministic limits, so costs must be equal. *)
  let rep_limits = { ml_limits with Pipeline.replicate = true } in
  let rep_pipe_costs =
    List.map
      (fun j ->
        ( j,
          Par.with_jobs j (fun () ->
              Bsp_cost.total rep_machine
                (fst (Pipeline.run ~limits:rep_limits rep_machine rep_dag))) ))
      par_sweep_jobs
  in
  let rep_pipe_cost = snd (List.hd rep_pipe_costs) in
  List.iter
    (fun (j, c) ->
      if c <> rep_pipe_cost then
        failwith
          (Printf.sprintf
             "parallel determinism violated: replicating pipeline cost %d at jobs=%d \
              but %d at jobs=%d"
             rep_pipe_cost (fst (List.hd rep_pipe_costs)) c j))
    rep_pipe_costs;
  Printf.printf
    "replication on NUMA (broadcast n=%d, P=8 delta=4): HC %d -> with replicas %d (%d \
     added), pipeline %d (identical at jobs %s)\n"
    (Dag.n rep_dag) st_plain.Hc.final_cost st_rep.Hc.final_cost st_rep.Hc.replicas_added
    rep_pipe_cost
    (String.concat "," (List.map (fun (j, _) -> string_of_int j) rep_pipe_costs));
  (* "ml_sweep_seconds_jobs4" keeps its historical name but records the
     highest jobs count of the sweep (the "jobs" field next to it). *)
  let sweep_json =
    String.concat ",\n      "
      (List.map
         (fun (j, c, t, _, mw, pw) ->
           Printf.sprintf
             {|{ "jobs": %d, "seconds": %.4f, "cost": %d, "minor_words": %.0f, "promoted_words": %.0f }|}
             j t c mw pw)
         sweep_runs)
  in
  let domains_json =
    String.concat ",\n      "
      (List.map
         (fun (d : Par.domain_stats) ->
           Printf.sprintf
             {|{ "domain_index": %d, "is_worker": %b, "tasks_run": %d, "batches_drained": %d, "last_chunk": %d, "minor_words": %.0f, "promoted_words": %.0f, "minor_collections": %d, "major_collections": %d }|}
             d.Par.domain_index d.Par.is_worker d.Par.tasks_run d.Par.batches_drained
             d.Par.last_chunk d.Par.minor_words d.Par.promoted_words
             d.Par.minor_collections d.Par.major_collections)
         par_domains)
  in
  Atomic_file.write "BENCH_localsearch.json" @@ fun oc ->
  Printf.fprintf oc
    {|{
  "benchmark": "localsearch",
  "scale": "%s",
  "seed": %d,
  "jobs": %d,
  "instance": { "family": "exp", "shape": "wide", "nodes": %d },
  "machine": { "p": 8, "g": 3, "l": 5 },
  "eval_budget": %d,
  "reps": %d,
  "reference": {
    "moves_evaluated": %d,
    "moves_applied": %d,
    "seconds_total": %.4f,
    "evals_per_sec": %.0f,
    "final_cost": %d
  },
  "delta_worklist": {
    "moves_evaluated": %d,
    "moves_applied": %d,
    "seconds_total": %.4f,
    "evals_per_sec": %.0f,
    "final_cost": %d
  },
  "speedup_evals_per_sec": %.2f,
  "pipeline_seconds": %.4f,
  "pipeline_final_cost": %d,
  "replication": {
    "instance_nodes": %d,
    "hc_cost": %d,
    "hc_replicated_cost": %d,
    "replicas_added": %d,
    "pipeline_cost": %d,
    "jobs_costs_equal": true
  },
  "parallel": {
    "jobs": %d,
    "cores": %d,
    "minor_heap_words": %d,
    "ml_sweep_nodes": %d,
    "ml_sweep_ratios": %d,
    "ml_sweep_seconds_jobs1": %.4f,
    "ml_sweep_seconds_jobs4": %.4f,
    "ml_sweep_speedup": %.2f,
    "ml_sweep_final_cost": %d,
    "ml_sweep_minor_words_jobs1": %.0f,
    "ml_sweep_promoted_words_jobs1": %.0f,
    "costs_equal": true,
    "sweep": [
      %s
    ],
    "domains": [
      %s
    ]
  }
}
|}
    (Datasets.scale_name !scale) !seed !jobs n evals reps st_ref.Hc.moves_evaluated
    st_ref.Hc.moves_applied t_ref rate_ref st_ref.Hc.final_cost st_wl.Hc.moves_evaluated
    st_wl.Hc.moves_applied t_wl rate_wl st_wl.Hc.final_cost speedup t_pipe
    stage.Pipeline.final_cost (Dag.n rep_dag) st_plain.Hc.final_cost
    st_rep.Hc.final_cost st_rep.Hc.replicas_added rep_pipe_cost par_jobs cores
    Par.minor_heap_words (Dag.n ml_dag)
    (List.length ml_ratios) t_sweep_j1 t_sweep_jn sweep_speedup sweep_cost_j1
    sweep_minor_j1 sweep_promoted_j1 sweep_json domains_json;
  Printf.printf "wrote BENCH_localsearch.json and BENCH_localsearch.metrics.json\n"

(* ------------------------------------------------------------------ *)
(* Serving: cold schedule vs content-addressed cache hit (DESIGN.md
   Section 5h). Emits BENCH_server.json and hard-fails if the hit path
   is not at least 100x faster than the cold path. *)

let server () =
  header "Schedule server: cold compute vs cache hit";
  let target, budget =
    match !scale with
    | Datasets.Smoke -> (4_000, 2.0)
    | Datasets.Default -> (12_000, 5.0)
    | Datasets.Full -> (30_000, 10.0)
  in
  let rng = Rng.create !seed in
  let dag =
    Finegrained.generate_sized rng ~family:Finegrained.Exp ~shape:Finegrained.Wide
      ~target
  in
  let machine = Machine.uniform ~p:8 ~g:3 ~l:5 in
  let req id =
    {
      Server.Request.id;
      algorithm = "pipeline";
      seconds = budget;
      seed = !seed;
      replicate = false;
      machine;
      dag;
    }
  in
  let reg = Obs.Metrics.create () in
  Obs.Metrics.install reg;
  let cache_dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "bsp-bench-cache.%d" (Unix.getpid ()))
  in
  (try Unix.mkdir cache_dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  let time f =
    let t0 = Unix.gettimeofday () in
    let r = f () in
    (r, Unix.gettimeofday () -. t0)
  in
  Printf.eprintf "[server] n=%d, budget=%.0fs, cold run...%!" (Dag.n dag) budget;
  let cold, t_cold = time (fun () -> Server.Engine.handle ~cache_dir (req "cold")) in
  assert (cold.Server.Engine.status = Server.Engine.Miss);
  (* the hit path is pure IO (read meta + parse schedule); take the best
     of a few reps so one unlucky page fault doesn't decide the number *)
  let hit_reps = 5 in
  let t_hit = ref infinity in
  let hit = ref cold in
  for i = 1 to hit_reps do
    let r, t = time (fun () -> Server.Engine.handle ~cache_dir (req (Printf.sprintf "hit%d" i))) in
    assert (r.Server.Engine.status = Server.Engine.Hit);
    hit := r;
    t_hit := Float.min !t_hit t
  done;
  let hit = !hit and t_hit = !t_hit in
  Printf.eprintf " done\n%!";
  let identical =
    Schedule_io.to_string hit.Server.Engine.schedule
    = Schedule_io.to_string cold.Server.Engine.schedule
  in
  let speedup = t_cold /. t_hit in
  Printf.printf "instance: exp/wide, n=%d, P=8 g=3 l=5, budget=%.0fs\n" (Dag.n dag)
    budget;
  Printf.printf "cold (miss): %8.3fs   cost %d\n" t_cold cold.Server.Engine.cost;
  Printf.printf "hit:         %8.5fs   cost %d (best of %d)\n" t_hit
    hit.Server.Engine.cost hit_reps;
  Printf.printf "speedup: %.0fx, bit-identical: %b\n" speedup identical;
  Obs.Metrics.write_json_file reg "BENCH_server.metrics.json";
  Atomic_file.write "BENCH_server.json" (fun oc ->
      Printf.fprintf oc
        {|{
  "benchmark": "server",
  "scale": "%s",
  "seed": %d,
  "instance": { "family": "exp", "shape": "wide", "nodes": %d },
  "machine": { "p": 8, "g": 3, "l": 5 },
  "seconds_budget": %.1f,
  "key": "%s",
  "cold_seconds": %.6f,
  "hit_seconds": %.6f,
  "hit_reps": %d,
  "speedup": %.1f,
  "cold_cost": %d,
  "hit_cost": %d,
  "bit_identical": %b
}
|}
        (Datasets.scale_name !scale) !seed (Dag.n dag) budget cold.Server.Engine.key
        t_cold t_hit hit_reps speedup cold.Server.Engine.cost hit.Server.Engine.cost
        identical);
  Printf.printf "wrote BENCH_server.json and BENCH_server.metrics.json\n";
  (try
     Array.iter
       (fun e -> Sys.remove (Filename.concat cache_dir e))
       (Sys.readdir cache_dir);
     Unix.rmdir cache_dir
   with Sys_error _ | Unix.Unix_error _ -> ());
  if hit.Server.Engine.cost <> cold.Server.Engine.cost || not identical then begin
    Printf.printf "FAIL: cache hit is not bit-identical to the cold schedule\n";
    exit 1
  end;
  if speedup < 100.0 then begin
    Printf.printf "FAIL: cache hit only %.1fx faster than cold path (need >= 100x)\n"
      speedup;
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Flight-recorder overhead smoke (DESIGN.md Section 5i): the same
   parallel hill-climbing fan-out timed with the recorder off and on,
   alternating reps, best-of-N to shed host noise. Hard-fails when the
   recorder-on best exceeds the recorder-off best by more than 5%, and
   exports the final recorder-on run's per-domain Chrome trace
   (BENCH_obs.trace.json) plus a BENCH_obs.json snapshot. *)

let obs () =
  header "Flight recorder overhead (Obs.Events off vs on)";
  let rng = Rng.create !seed in
  (* Many small tasks: with chunk-1 claiming the wall-time imbalance of
     a batch is about one task, so the task count bounds the run-to-run
     split noise the 5% overhead budget must tolerate. *)
  let target, evals, tasks =
    match !scale with
    | Datasets.Smoke -> (2_000, 25_000, 64)
    | Datasets.Default -> (4_000, 60_000, 64)
    | Datasets.Full -> (8_000, 150_000, 96)
  in
  let dag =
    Finegrained.generate_sized rng ~family:Finegrained.Exp ~shape:Finegrained.Wide
      ~target
  in
  let m = Machine.uniform ~p:8 ~g:3 ~l:5 in
  let init = Bspg.schedule m dag in
  (* One Par batch of independent HC improvements — the portfolio shape
     the recorder exists to explain. The overhead comparison runs it at
     jobs=1: the sequential path still drives the per-task record path
     (task spans via timed_task), but a single domain gives the
     repeatable timings a 5% budget needs — at jobs>=2 the work split
     and domain scheduling jitter alone exceed that. A separate
     recorded jobs>=2 pass below produces the per-domain trace. *)
  let workload j =
    Par.with_jobs j (fun () ->
        Par.map
          (fun _ ->
            let _, st = Hc.improve ~budget:(Budget.steps evals) m init in
            st.Hc.moves_evaluated)
          (List.init tasks (fun i -> i))
        |> List.fold_left ( + ) 0)
  in
  (* Process CPU time, not wall clock: the comparison is sequential, the
     recorder's cost is cycles, and CPU time is immune to the
     descheduling / CPU-quota throttling that puts several percent of
     noise on wall-clock runs of this length on shared hosts. *)
  let time f =
    let t0 = Sys.time () in
    let r = f () in
    (r, Sys.time () -. t0)
  in
  let reps =
    match !scale with
    | Datasets.Smoke -> 15
    | Datasets.Default -> 15
    | Datasets.Full -> 20
  in
  Printf.eprintf "[obs] n=%d, %d tasks x %d evals, %d alternating reps...%!"
    (Dag.n dag) tasks evals reps;
  (* Warm-up faults the code paths in before any rep is timed. *)
  ignore (workload 1);
  (* Alternating OFF/ON passes; the gate compares the per-side minima.
     The workload is deterministic, so on an otherwise-quiet CPU every
     pass would cost the same cycles and anything on top is additive
     contamination (co-tenant bursts, quota throttling) — which the
     minimum filters out entirely, where a mean or median of runs this
     short still carries percent-level noise through a hard 5% gate. *)
  let t_off = ref infinity and t_on = ref infinity in
  let sum_off = ref 0.0 and sum_on = ref 0.0 in
  let moves_off = ref 0 and moves_on = ref 0 in
  for _ = 1 to reps do
    (* Gc.full_major before each timed run: disabling drops the
       previous generation's ~MB-sized rings, and paying their sweep
       inside the OFF measurement would systematically bias the
       comparison. *)
    Obs.Events.disable ();
    (* Untimed warm-up pass on both sides, so each timed run sees the
       same immediately-preceding load (under a CPU quota, the side
       that runs hotter would otherwise absorb more throttling). On the
       ON side the warm-up also moves the fresh generation's lazy ring
       allocation out of the measurement, which is about the
       steady-state record path. *)
    ignore (workload 1);
    Gc.full_major ();
    let mv, t = time (fun () -> workload 1) in
    moves_off := mv;
    sum_off := !sum_off +. t;
    if t < !t_off then t_off := t;
    Obs.Events.enable ();
    ignore (workload 1);
    Gc.full_major ();
    let mv, t = time (fun () -> workload 1) in
    moves_on := mv;
    sum_on := !sum_on +. t;
    if t < !t_on then t_on := t;
    Printf.eprintf " .%!"
  done;
  Printf.eprintf " done\n%!";
  (* Per-domain trace: one more recorded pass on >= 2 domains (untimed —
     only the jobs=1 comparison above is measured) so the exported
     timeline shows the parallel machinery: queue waits, claims, idle
     spans and GC samples on every track. *)
  let wjobs = max (Par.jobs ()) 2 in
  Obs.Events.enable ();
  let moves_par = workload wjobs in
  let recorded = Obs.Events.recorded () and dropped = Obs.Events.dropped () in
  Obs.Events.write_chrome_trace "BENCH_obs.trace.json";
  Obs.Events.disable ();
  if moves_par <> !moves_off then begin
    Printf.printf "FAIL: jobs=%d run disagrees with jobs=1 (%d vs %d moves)\n" wjobs
      moves_par !moves_off;
    exit 1
  end;
  if !moves_off <> !moves_on then begin
    Printf.printf "FAIL: recorder changed the computed result (%d vs %d moves)\n"
      !moves_off !moves_on;
    exit 1
  end;
  let overhead = (!t_on -. !t_off) /. !t_off in
  Printf.printf
    "instance: exp/wide n=%d, %d tasks x %d evals, trace jobs=%d, reps=%d\n"
    (Dag.n dag) tasks evals wjobs reps;
  Printf.printf
    "recorder off: %.4fs   recorder on: %.4fs CPU (best of %d)   overhead: %+.2f%%\n"
    !t_off !t_on reps (100.0 *. overhead);
  Printf.printf "events recorded: %d (dropped to ring wrap: %d)\n" recorded dropped;
  Atomic_file.write "BENCH_obs.json" (fun oc ->
      Printf.fprintf oc
        {|{
  "benchmark": "obs",
  "scale": "%s",
  "seed": %d,
  "jobs": %d,
  "instance": { "family": "exp", "shape": "wide", "nodes": %d },
  "tasks": %d,
  "eval_budget": %d,
  "reps": %d,
  "recorder_off_cpu_seconds_best": %.4f,
  "recorder_on_cpu_seconds_best": %.4f,
  "recorder_off_cpu_seconds_total": %.4f,
  "recorder_on_cpu_seconds_total": %.4f,
  "overhead_fraction": %.4f,
  "events_recorded": %d,
  "events_dropped": %d
}
|}
        (Datasets.scale_name !scale) !seed wjobs (Dag.n dag) tasks evals reps !t_off
        !t_on !sum_off !sum_on overhead recorded dropped);
  Printf.printf "wrote BENCH_obs.json and BENCH_obs.trace.json\n";
  if recorded = 0 then begin
    Printf.printf "FAIL: the recorder-on run recorded no events\n";
    exit 1
  end;
  if overhead > 0.05 then begin
    Printf.printf "FAIL: flight recorder overhead %.1f%% exceeds the 5%% budget\n"
      (100.0 *. overhead);
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Bechamel stage timings (Section 8's running-time discussion).       *)

let run_timing () =
  let open Bechamel in
  let rng = Rng.create !seed in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:30 ~q:0.1) ~k:4 in
  let m = Machine.uniform ~p:8 ~g:3 ~l:5 in
  let init = Bspg.schedule m dag in
  let lim = bench_limits () in
  let tests =
    [
      Test.make ~name:"cilk" (Staged.stage (fun () -> Cilk.schedule dag ~p:8 ~seed:1));
      Test.make ~name:"bl-est"
        (Staged.stage (fun () -> List_scheduler.schedule List_scheduler.Bl_est m dag));
      Test.make ~name:"etf"
        (Staged.stage (fun () -> List_scheduler.schedule List_scheduler.Etf m dag));
      Test.make ~name:"hdagg" (Staged.stage (fun () -> Hdagg.schedule m dag));
      Test.make ~name:"bspg" (Staged.stage (fun () -> Bspg.schedule m dag));
      Test.make ~name:"source" (Staged.stage (fun () -> Source_heuristic.schedule m dag));
      Test.make ~name:"hc"
        (Staged.stage (fun () -> Hc.improve ~budget:(Budget.steps 50_000) m init));
      Test.make ~name:"hccs"
        (Staged.stage (fun () -> Hccs.improve ~budget:(Budget.steps 20_000) m init));
      Test.make ~name:"ilp-part"
        (Staged.stage (fun () ->
             Ilp_schedulers.part ~budget:(Budget.steps 20)
               ~max_vars:lim.Pipeline.ilp_part_max_vars ~max_nodes:20 m init));
      Test.make ~name:"ilp-cs"
        (Staged.stage (fun () ->
             Ilp_schedulers.comm_schedule ~budget:(Budget.steps 30)
               ~max_vars:lim.Pipeline.ilp_cs_max_vars ~max_nodes:30 m init));
      Test.make ~name:"coarsen-30%"
        (Staged.stage (fun () ->
             let session = Coarsen.start dag in
             Coarsen.coarsen_to session ~target:(Dag.n dag * 3 / 10)));
      Test.make ~name:"cost-eval" (Staged.stage (fun () -> Bsp_cost.total m init));
      Test.make ~name:"validity" (Staged.stage (fun () -> Validity.is_valid m init));
    ]
  in
  header "Stage timings (Bechamel, monotonic clock)";
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) ~kde:None ~stabilize:false ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          (* Strip the synthetic group prefix Bechamel adds. *)
          let name =
            match String.index_opt name '/' with
            | Some i -> String.sub name (i + 1) (String.length name - i - 1)
            | None -> name
          in
          match Analyze.OLS.estimates ols_result with
          | Some [ est ] -> Printf.printf "%-24s %14.0f ns/run\n" name est
          | _ -> Printf.printf "%-24s (no estimate)\n" name)
        analyzed)
    tests

(* ------------------------------------------------------------------ *)
(* Regression guard: --compare BASELINE.json diffs the fresh localsearch
   numbers against a committed BENCH_localsearch.json snapshot.

   Final costs are deterministic for a fixed scale and seed (modulo the
   per-stage wall-clock caps, hence a small tolerance); absolute
   evals/sec rates vary with the host, so the perf tolerance is generous
   and the machine-relative speedup ratio (delta engine vs the reference
   engine timed in the same process) is the sturdier signal.            *)

let read_json path =
  let contents = In_channel.with_open_bin path In_channel.input_all in
  try Obs.Json.of_string contents
  with Obs.Json.Parse_error msg ->
    Printf.eprintf "bench --compare: %s does not parse as JSON: %s\n" path msg;
    exit 2

let json_path json path =
  List.fold_left
    (fun acc key -> match acc with Some v -> Obs.Json.member key v | None -> None)
    (Some json) path

(* (path into the snapshot, metric kind). `Cost and `Perf are guarded
   with the --cost-tolerance / --perf-tolerance knobs; `Alloc is the
   allocation-regression gate — a hard, tolerance-flag-independent cap
   of 1.5x on minor-heap words, enforced even when the wall-clock
   metrics are skipped (jobs mismatch): allocation at jobs = 1 is a
   deterministic property of the code path, not of the host. *)
let alloc_cap = 1.5

let guarded_metrics =
  [
    ([ "reference"; "final_cost" ], `Cost);
    ([ "delta_worklist"; "final_cost" ], `Cost);
    ([ "pipeline_final_cost" ], `Cost);
    ([ "replication"; "hc_replicated_cost" ], `Cost);
    ([ "replication"; "pipeline_cost" ], `Cost);
    ([ "parallel"; "ml_sweep_final_cost" ], `Cost);
    ([ "parallel"; "ml_sweep_minor_words_jobs1" ], `Alloc);
    ([ "reference"; "evals_per_sec" ], `Perf);
    ([ "delta_worklist"; "evals_per_sec" ], `Perf);
    ([ "speedup_evals_per_sec" ], `Perf);
    ([ "parallel"; "ml_sweep_speedup" ], `Perf);
  ]

let compare_snapshots ~baseline_path ~baseline ~fresh =
  let str p j =
    match json_path j p with Some (Obs.Json.String s) -> Some s | _ -> None
  in
  let num p j = Option.bind (json_path j p) Obs.Json.to_float_opt in
  (match (str [ "scale" ] baseline, str [ "scale" ] fresh) with
   | Some a, Some b when a <> b ->
     Printf.eprintf
       "bench --compare: scale mismatch (baseline %s is %s, this run is %s) — costs are \
        not comparable\n"
       baseline_path a b;
     exit 2
   | _ -> ());
  (match (num [ "seed" ] baseline, num [ "seed" ] fresh) with
   | Some a, Some b when a <> b ->
     Printf.eprintf "bench --compare: seed mismatch (baseline %.0f, this run %.0f)\n" a b;
     exit 2
   | _ -> ());
  (* Wall-clock metrics must never be compared across different core
     counts, but costs and jobs = 1 allocation are jobs-independent: on
     a jobs mismatch the `Perf rows are skipped while `Cost and `Alloc
     stay enforced (this is what lets CI run the guard in its jobs = 4
     lane against the committed jobs = 1 baseline). A snapshot predating
     the jobs field is rejected outright — regenerate it. *)
  let jobs_mismatch =
    match (num [ "jobs" ] baseline, num [ "jobs" ] fresh) with
    | Some a, Some b when a <> b ->
      Printf.printf
        "bench --compare: jobs mismatch (baseline %s ran with --jobs %.0f, this run \
         with --jobs %.0f) — perf metrics skipped; cost and allocation guards still \
         enforced\n"
        baseline_path a b;
      true
    | None, _ ->
      Printf.eprintf
        "bench --compare: baseline %s has no \"jobs\" field (pre-parallel snapshot) — \
         regenerate it with the current harness\n"
        baseline_path;
      exit 2
    | _ -> false
  in
  header (Printf.sprintf "Regression guard: fresh run vs %s" baseline_path);
  Printf.printf "%-32s %14s %14s %8s  %s\n" "metric" "baseline" "fresh" "ratio"
    "verdict";
  let regressions = ref 0 in
  List.iter
    (fun (path, kind) ->
      let name = String.concat "." path in
      if kind = `Perf && jobs_mismatch then
        Printf.printf "%-32s (skipped: jobs mismatch)\n" name
      else
        match (num path baseline, num path fresh) with
        | Some b, Some f ->
          let ratio = if b = 0.0 then 1.0 else f /. b in
          let regressed =
            match kind with
            | `Cost -> f > b *. (1.0 +. !cost_tol)
            | `Perf -> f < b *. (1.0 -. !perf_tol)
            | `Alloc -> f > b *. alloc_cap
          in
          if regressed then incr regressions;
          Printf.printf "%-32s %14.1f %14.1f %8.3f  %s\n" name b f ratio
            (if regressed then "REGRESSED" else "ok")
        | _ ->
          Printf.printf "%-32s (missing in baseline or fresh snapshot — skipped)\n" name)
    guarded_metrics;
  (* Absolute floor on the fresh parallel speedup, independent of the
     baseline. Wall-clock speedup is physically bounded by the host's
     core count, so the floor only binds when the fresh run had at least
     as many cores as domains; on smaller hosts it downgrades to an
     informational line (the determinism and cost guards above still
     apply there). *)
  (match !speedup_floor with
   | None -> ()
   | Some floor ->
     let fresh_speedup = num [ "parallel"; "ml_sweep_speedup" ] fresh in
     let fresh_cores = num [ "parallel"; "cores" ] fresh in
     let fresh_jobs = num [ "parallel"; "jobs" ] fresh in
     (match (fresh_speedup, fresh_cores, fresh_jobs) with
      | None, _, _ ->
        Printf.eprintf
          "bench --compare: fresh snapshot has no parallel.ml_sweep_speedup — cannot \
           apply --speedup-floor\n";
        exit 2
      | Some s, Some c, Some j when c >= j ->
        if s < floor then begin
          incr regressions;
          Printf.printf "%-32s %14s %14.2f %8s  %s\n" "parallel speedup floor"
            (Printf.sprintf ">= %.2f" floor) s "" "REGRESSED"
        end
        else
          Printf.printf "%-32s %14s %14.2f %8s  %s\n" "parallel speedup floor"
            (Printf.sprintf ">= %.2f" floor) s "" "ok"
      | Some s, c, j ->
        Printf.printf
          "parallel speedup floor >= %.2f: not enforced (host has %s cores for %s \
           domains; measured %.2fx)\n"
          floor
          (match c with Some c -> Printf.sprintf "%.0f" c | None -> "unknown")
          (match j with Some j -> Printf.sprintf "%.0f" j | None -> "unknown")
          s));
  if !regressions > 0 then begin
    Printf.eprintf
      "bench --compare: %d metric(s) regressed beyond tolerance (cost %.0f%%, perf \
       %.0f%%, alloc cap %.1fx)\n"
      !regressions (100.0 *. !cost_tol) (100.0 *. !perf_tol) alloc_cap;
    exit 1
  end
  else
    Printf.printf
      "no regressions (cost tolerance %.0f%%, perf tolerance %.0f%%, alloc cap %.1fx)\n"
      (100.0 *. !cost_tol) (100.0 *. !perf_tol) alloc_cap

(* ------------------------------------------------------------------ *)

let sections =
  [
    ("table1", table1);
    ("fig5", fig5);
    ("table2", table2);
    ("fig6", fig6);
    ("table3", table3);
    ("table4", table4);
    ("table5", table5);
    ("table6", table6);
    ("table7", table7);
    ("table8", table8);
    ("table9", table9);
    ("table10", table10);
    ("table11", table11);
    ("table12", table12);
    ("fig7", fig7);
    ("table13", table13);
    ("table14", table14);
    ("ablations", ablations);
    ("ls_smoke", ls_smoke);
    ("localsearch", localsearch);
    ("server", server);
    ("obs", obs);
  ]

let () =
  parse_args ();
  Par.set_jobs !jobs;
  if !list_sections then begin
    List.iter (fun (id, _) -> print_endline id) sections;
    exit 0
  end;
  Printf.printf "BSP+NUMA scheduling benchmark harness (scale=%s, seed=%d, jobs=%d)\n"
    (Datasets.scale_name !scale) !seed !jobs;
  (* Read the baseline before anything runs: the fresh localsearch run
     overwrites BENCH_localsearch.json, which is the usual baseline. *)
  let baseline =
    Option.map (fun path -> (path, read_json path)) !compare_baseline
  in
  let t0 = Unix.gettimeofday () in
  let selected =
    match !only with
    | [] -> sections
    | ids -> List.filter (fun (id, _) -> List.mem id ids) sections
  in
  (* The guard needs fresh localsearch numbers even if --only skipped the
     section. *)
  let selected =
    if baseline <> None && not (List.mem_assoc "localsearch" selected) then
      selected @ [ ("localsearch", localsearch) ]
    else selected
  in
  List.iter (fun (_, f) -> f ()) selected;
  if !timing then run_timing ();
  Printf.printf "\ntotal wall time: %.1fs\n" (Unix.gettimeofday () -. t0);
  match baseline with
  | None -> ()
  | Some (baseline_path, baseline) ->
    compare_snapshots ~baseline_path ~baseline ~fresh:(read_json "BENCH_localsearch.json")
