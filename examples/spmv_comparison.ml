(* Compare every scheduler on the paper's motivating workload: the
   fine-grained DAG of an iterated sparse matrix - vector product
   (Appendix B.2), on a classical BSP machine.

   Run with:  dune exec examples/spmv_comparison.exe *)

let () =
  let rng = Rng.create 2024 in
  let matrix = Sparse_matrix.random rng ~n:40 ~q:0.08 in
  let dag = Finegrained.exp matrix ~k:4 in
  Printf.printf "workload: A^4 u over a %dx%d sparse matrix -> DAG with %d nodes, %d edges\n"
    (Sparse_matrix.n matrix) (Sparse_matrix.n matrix) (Dag.n dag) (Dag.num_edges dag);

  let machine = Machine.uniform ~p:8 ~g:3 ~l:5 in
  Printf.printf "machine: %d processors, g=%d, l=%d (uniform BSP)\n\n" machine.Machine.p
    machine.Machine.g machine.Machine.l;

  let evaluate name schedule =
    assert (Validity.is_valid machine schedule);
    let cost = Bsp_cost.total machine schedule in
    (name, cost, Schedule.num_supersteps schedule)
  in
  let pipeline_schedule, stages = Pipeline.run machine dag in
  let rows =
    [
      evaluate "trivial (1 proc)" (Schedule.trivial dag);
      evaluate "cilk" (Cilk.schedule dag ~p:machine.Machine.p ~seed:1);
      evaluate "bl-est" (List_scheduler.schedule List_scheduler.Bl_est machine dag);
      evaluate "etf" (List_scheduler.schedule List_scheduler.Etf machine dag);
      evaluate "hdagg" (Hdagg.schedule machine dag);
      evaluate "bspg" (Bspg.schedule machine dag);
      evaluate "source" (Source_heuristic.schedule machine dag);
      evaluate "pipeline (ours)" pipeline_schedule;
    ]
  in
  let _, best, _ =
    List.fold_left
      (fun ((_, bc, _) as acc) ((_, c, _) as row) -> if c < bc then row else acc)
      (List.hd rows) (List.tl rows)
  in
  Printf.printf "%-18s %10s %12s %8s\n" "scheduler" "cost" "supersteps" "ratio";
  List.iter
    (fun (name, cost, steps) ->
      Printf.printf "%-18s %10d %12d %8.2f%s\n" name cost steps
        (float_of_int cost /. float_of_int best)
        (if cost = best then "  <- best" else ""))
    rows;
  Printf.printf
    "\npipeline detail: best init = %s (%d), after HC+HCcs = %d, after ILP = %d\n"
    stages.Pipeline.best_init_name stages.Pipeline.init_cost
    stages.Pipeline.after_local_search stages.Pipeline.final_cost
