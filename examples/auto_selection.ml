(* Automatic method selection: the extended communication-to-computation
   ratio (CCR) decides when the multilevel scheduler should be engaged —
   the paper's future-work idea from Appendix C.6, implemented by
   Pipeline.run_auto.

   Run with:  dune exec examples/auto_selection.exe *)

let () =
  let rng = Rng.create 11 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:25 ~q:0.12) ~k:4 in
  Printf.printf "workload: %d-node iterated spmv DAG\n\n" (Dag.n dag);
  Printf.printf "%-34s %8s %12s %10s\n" "machine" "CCR" "method" "cost";
  List.iter
    (fun (label, machine) ->
      let schedule, choice = Pipeline.run_auto machine dag in
      assert (Validity.is_valid machine schedule);
      Printf.printf "%-34s %8.2f %12s %10d\n" label (Ccr.ccr machine dag)
        (match choice with
         | Pipeline.Base -> "base"
         | Pipeline.Multilevel_chosen -> "multilevel")
        (Bsp_cost.total machine schedule))
    [
      ("uniform P=8, g=1", Machine.uniform ~p:8 ~g:1 ~l:5);
      ("uniform P=8, g=5", Machine.uniform ~p:8 ~g:5 ~l:5);
      ("NUMA tree P=8, delta=2", Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:2);
      ("NUMA tree P=16, delta=3", Machine.numa_tree ~p:16 ~g:1 ~l:5 ~delta:3);
      ("NUMA tree P=16, delta=4", Machine.numa_tree ~p:16 ~g:1 ~l:5 ~delta:4);
    ];
  Printf.printf
    "\nthe multilevel pipeline is attempted only above the CCR threshold (%.1f)\n"
    Ccr.default_threshold
