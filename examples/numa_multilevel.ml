(* The communication-dominated regime (Section 7.3): on a hierarchical
   NUMA machine with a steep cost gradient, per-node schedulers struggle
   to beat the trivial single-processor schedule, while the multilevel
   coarsen-solve-refine pipeline finds genuinely parallel schedules.

   Run with:  dune exec examples/numa_multilevel.exe *)

let () =
  let rng = Rng.create 7 in
  let matrix = Sparse_matrix.random rng ~n:60 ~q:0.06 in
  let dag = Finegrained.exp matrix ~k:4 in
  Printf.printf "workload: A^4 u over a 60x60 sparse matrix -> %d nodes, %d edges\n"
    (Dag.n dag) (Dag.num_edges dag);

  (* 16 processors in a binary-tree hierarchy; each level up multiplies
     the unit communication cost by delta = 3, so the farthest pairs pay
     lambda = 3^3 = 27 per unit (Section 6). *)
  let machine = Machine.numa_tree ~p:16 ~g:1 ~l:5 ~delta:3 in
  Printf.printf "machine: P=16 binary NUMA tree, delta=3 (lambda in [1, %d]), g=%d, l=%d\n\n"
    (Machine.max_lambda machine) machine.Machine.g machine.Machine.l;

  let trivial = Bsp_cost.total machine (Schedule.trivial dag) in
  let cilk = Bsp_cost.total machine (Cilk.schedule dag ~p:16 ~seed:1) in
  let hdagg = Bsp_cost.total machine (Hdagg.schedule machine dag) in
  let base, _ = Pipeline.run machine dag in
  let base_cost = Bsp_cost.total machine base in
  let ml15 = Pipeline.run_multilevel_ratio ~ratio:0.15 machine dag in
  let ml30 = Pipeline.run_multilevel_ratio ~ratio:0.3 machine dag in
  let ml15_cost = Bsp_cost.total machine ml15 in
  let ml30_cost = Bsp_cost.total machine ml30 in

  let show name cost =
    Printf.printf "%-22s %10d   (%.2fx trivial)\n" name cost
      (float_of_int cost /. float_of_int trivial)
  in
  show "trivial (1 proc)" trivial;
  show "cilk" cilk;
  show "hdagg" hdagg;
  show "base pipeline" base_cost;
  show "multilevel C15" ml15_cost;
  show "multilevel C30" ml30_cost;

  let best_ml = min ml15_cost ml30_cost in
  if best_ml < min base_cost trivial then
    Printf.printf
      "\nthe multilevel scheduler is the only method that profitably parallelises this \
       instance (%.0f%% below trivial)\n"
      ((1.0 -. (float_of_int best_ml /. float_of_int trivial)) *. 100.0)
  else
    Printf.printf "\nmultilevel best: %d vs base %d vs trivial %d\n" best_ml base_cost
      trivial
