(* Quickstart: build a small computational DAG by hand, describe a BSP
   machine, run the full scheduling pipeline, and inspect the result.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* A little diamond-shaped computation: node 0 produces an input that
     nodes 1 and 2 process independently; node 3 combines them. Work
     weights are the execution times, communication weights the output
     sizes. *)
  let dag =
    Dag.of_edges ~n:4
      ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
      ~work:[| 2; 6; 6; 3 |]
      ~comm:[| 1; 2; 2; 1 |]
  in

  (* A classical BSP machine: 2 processors, per-unit communication cost
     g = 2, latency l = 3 per superstep. *)
  let machine = Machine.uniform ~p:2 ~g:2 ~l:3 in

  (* Run the paper's combined pipeline: initialisation heuristics,
     hill-climbing local search, and the ILP-based refinement stages. *)
  let schedule, stages = Pipeline.run machine dag in

  Printf.printf "schedule found (valid = %b):\n" (Validity.is_valid machine schedule);
  Array.iteri
    (fun v p ->
      Printf.printf "  node %d -> processor %d, superstep %d\n" v p
        schedule.Schedule.step.(v))
    schedule.Schedule.proc;
  List.iter
    (fun (e : Schedule.comm_event) ->
      Printf.printf "  send output of %d: proc %d -> proc %d in phase %d\n" e.node e.src
        e.dst e.step)
    schedule.Schedule.comm;

  let b = Bsp_cost.breakdown machine schedule in
  Printf.printf "\ncost: %d  (work %d + communication %d + latency %d)\n" b.Bsp_cost.total
    b.Bsp_cost.work_total b.Bsp_cost.comm_total b.Bsp_cost.latency_total;
  Printf.printf "pipeline stages: init(%s)=%d, after local search=%d, final=%d\n"
    stages.Pipeline.best_init_name stages.Pipeline.init_cost
    stages.Pipeline.after_local_search stages.Pipeline.final_cost;

  (* Compare against executing everything on one processor. *)
  let trivial = Bsp_cost.total machine (Schedule.trivial dag) in
  Printf.printf "trivial single-processor cost: %d\n" trivial
