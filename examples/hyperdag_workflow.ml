(* End-to-end file workflow: generate a computational DAG, store it in
   the HyperDAG_DB format, read it back, schedule it, and store the
   schedule — the flow a user of the CLI tools (bin/generate.exe,
   bin/scheduler.exe, bin/evaluate.exe) goes through, driven as a
   library.

   Run with:  dune exec examples/hyperdag_workflow.exe *)

let () =
  let dir = Filename.temp_file "hyperdag" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let dag_path = Filename.concat dir "pagerank.hdag" in
  let sched_path = Filename.concat dir "pagerank.schedule" in

  (* 1. Generate the coarse-grained op-level DAG of 40 PageRank
     iterations and write it out. *)
  let dag = Coarsegrained.generate Coarsegrained.Pagerank ~iterations:40 in
  Hyperdag_io.write_file dag_path dag;
  Printf.printf "wrote %s (%d nodes, %d edges, hyperDAG format)\n" dag_path (Dag.n dag)
    (Dag.num_edges dag);

  (* 2. Read it back — this is exactly what the scheduler CLI does. *)
  let dag = Hyperdag_io.read_file dag_path in

  (* 3. Schedule on a NUMA machine and persist the schedule. *)
  let machine = Machine.numa_tree ~p:8 ~g:2 ~l:5 ~delta:2 in
  let schedule, stages = Pipeline.run machine dag in
  Schedule_io.write_file sched_path schedule;
  Printf.printf "wrote %s (cost %d, %d supersteps, init=%s)\n" sched_path
    stages.Pipeline.final_cost
    (Schedule.num_supersteps schedule)
    stages.Pipeline.best_init_name;

  (* 4. Reload and re-validate, as bin/evaluate.exe would. *)
  let reloaded = Schedule_io.read_file dag sched_path in
  (match Validity.check machine reloaded with
   | Ok () -> Printf.printf "reloaded schedule is valid; cost matches: %b\n"
                (Bsp_cost.total machine reloaded = stages.Pipeline.final_cost)
   | Error errs ->
     List.iter prerr_endline errs;
     failwith "reloaded schedule invalid");

  Sys.remove dag_path;
  Sys.remove sched_path;
  Unix.rmdir dir
