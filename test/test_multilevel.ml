let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let quotient_is_dag session =
  let qdag, _ = Coarsen.quotient session in
  (* of_edges validates acyclicity; quotient uses the unchecked builder,
     so run the check explicitly. *)
  Dag.is_acyclic_edges ~n:(Dag.n qdag) (Dag.edges qdag)

let test_contract_chain () =
  let dag = Test_util.chain 4 in
  let session = Coarsen.start dag in
  Coarsen.coarsen_to session ~target:2;
  check "alive" 2 (Coarsen.num_alive session);
  check_bool "still a dag" true (quotient_is_dag session);
  let qdag, _ = Coarsen.quotient session in
  check "quotient work preserved" (Dag.total_work dag) (Dag.total_work qdag);
  check "quotient comm preserved" (Dag.total_comm dag) (Dag.total_comm qdag)

let test_uncontractable_edge_skipped () =
  (* Edge (0,2) has the alternative path 0 -> 1 -> 2, so contracting the
     whole triangle to 2 nodes must never produce a cycle. *)
  let dag =
    Dag.of_edges ~n:3 ~edges:[ (0, 1); (1, 2); (0, 2) ] ~work:[| 1; 1; 1 |]
      ~comm:[| 1; 1; 1 |]
  in
  let session = Coarsen.start dag in
  Coarsen.coarsen_to session ~target:2;
  check "alive" 2 (Coarsen.num_alive session);
  check_bool "still a dag" true (quotient_is_dag session)

let test_undo_restores_structure () =
  let rng = Rng.create 13 in
  let dag = Test_util.random_dag rng ~n:20 ~edge_prob:0.2 ~max_w:4 ~max_c:3 in
  let session = Coarsen.start dag in
  Coarsen.coarsen_to session ~target:6;
  let contracted = List.length (Coarsen.history session) in
  check_bool "did contract" true (contracted > 0);
  for _ = 1 to contracted do
    match Coarsen.undo_last session with
    | Some _ -> ()
    | None -> Alcotest.fail "history exhausted early"
  done;
  check "fully restored count" (Dag.n dag) (Coarsen.num_alive session);
  check_bool "no more history" true (Coarsen.undo_last session = None);
  let qdag, rep_of_id = Coarsen.quotient session in
  check "same n" (Dag.n dag) (Dag.n qdag);
  (* After full undo the quotient must be the original graph (up to the
     identity id map). *)
  Array.iteri (fun i r -> check "identity map" i r) rep_of_id;
  Alcotest.(check (list (pair int int))) "same edges" (Dag.edges dag) (Dag.edges qdag);
  Array.iteri
    (fun v _ ->
      check "same work" (Dag.work dag v) (Dag.work qdag v);
      check "same comm" (Dag.comm dag v) (Dag.comm qdag v))
    (Array.make (Dag.n dag) ())

let test_owner_tracking () =
  let dag = Test_util.chain 3 in
  let session = Coarsen.start dag in
  Coarsen.coarsen_to session ~target:1;
  let root = Coarsen.owner session 0 in
  check "all merged to one owner" root (Coarsen.owner session 1);
  check "all merged to one owner" root (Coarsen.owner session 2);
  check_bool "owner alive" true (Coarsen.alive session root)

let test_multilevel_run_valid () =
  let rng = Rng.create 19 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:15 ~q:0.15) ~k:3 in
  let m = Machine.numa_tree ~p:4 ~g:2 ~l:5 ~delta:4 in
  let solver mach d = Bspg.schedule mach d in
  let s = Multilevel.run ~solver m dag in
  check_bool "valid" true (Validity.is_valid m s);
  let single = Multilevel.run_ratio ~refine_interval:5 ~refine_moves:100 ~solver ~ratio:0.3 m dag in
  check_bool "single ratio valid" true (Validity.is_valid m single)

let test_multilevel_beats_trivial_on_comm_heavy () =
  (* A wide communication-heavy instance: the multilevel result should
     at least match the trivial single-processor schedule, which plain
     per-node schedulers often fail to do here (Section 7.3). *)
  let rng = Rng.create 21 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:20 ~q:0.15) ~k:3 in
  let m = Machine.numa_tree ~p:8 ~g:2 ~l:5 ~delta:4 in
  let solver mach d = fst (Hc.improve mach (Bspg.schedule mach d)) in
  let ml = Multilevel.run ~solver m dag in
  let trivial = Bsp_cost.total m (Schedule.trivial dag) in
  check_bool "no worse than 1.2x trivial" true
    (float_of_int (Bsp_cost.total m ml) <= 1.2 *. float_of_int trivial)

(* Properties: coarsening preserves acyclicity and total weights at every
   target; undo round-trips. *)
let prop_coarsen_acyclic_and_weights =
  Test_util.qtest ~count:60 "coarsen safe"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (int_range 1 10))
    (fun (dag, target) ->
      let session = Coarsen.start dag in
      Coarsen.coarsen_to session ~target;
      let qdag, _ = Coarsen.quotient session in
      Dag.is_acyclic_edges ~n:(Dag.n qdag) (Dag.edges qdag)
      && Dag.total_work qdag = Dag.total_work dag
      && Dag.total_comm qdag = Dag.total_comm dag)

let prop_undo_roundtrip =
  Test_util.qtest ~count:60 "undo roundtrip" (Test_util.arb_dag ()) (fun dag ->
      let session = Coarsen.start dag in
      Coarsen.coarsen_to session ~target:(max 1 (Dag.n dag / 3));
      let k = List.length (Coarsen.history session) in
      for _ = 1 to k do
        ignore (Coarsen.undo_last session : Coarsen.contraction option)
      done;
      let qdag, _ = Coarsen.quotient session in
      Dag.n qdag = Dag.n dag
      && Dag.edges qdag = Dag.edges dag
      && Array.for_all
           (fun v -> Dag.work qdag v = Dag.work dag v && Dag.comm qdag v = Dag.comm dag v)
           (Array.init (Dag.n dag) Fun.id))

let prop_multilevel_valid =
  Test_util.qtest ~count:20 "multilevel valid"
    QCheck2.Gen.(pair (Test_util.arb_dag ~max_n:20 ()) (Test_util.arb_machine ~max_p:4 ()))
    (fun (dag, m) ->
      let solver mach d = Bspg.schedule mach d in
      let s = Multilevel.run ~solver m dag in
      Validity.is_valid m s)

let () =
  Alcotest.run "multilevel"
    [
      ( "coarsen",
        [
          Alcotest.test_case "contract chain" `Quick test_contract_chain;
          Alcotest.test_case "uncontractable skipped" `Quick test_uncontractable_edge_skipped;
          Alcotest.test_case "undo restores structure" `Quick test_undo_restores_structure;
          Alcotest.test_case "owner tracking" `Quick test_owner_tracking;
        ] );
      ( "driver",
        [
          Alcotest.test_case "run valid" `Quick test_multilevel_run_valid;
          Alcotest.test_case "comm-heavy vs trivial" `Quick
            test_multilevel_beats_trivial_on_comm_heavy;
        ] );
      ( "property",
        [ prop_coarsen_acyclic_and_weights; prop_undo_roundtrip; prop_multilevel_valid ] );
    ]
