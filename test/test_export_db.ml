(* Tests for DOT export, the dataset materialisation, and the
   alternative coarsening strategy. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let contains = Test_util.contains_substring

let test_dag_to_dot () =
  let dag = Test_util.diamond () in
  let dot = Dag_export.dag_to_dot ~name:"diamond" dag in
  check_bool "digraph" true (contains dot "digraph \"diamond\"");
  check_bool "node label" true (contains dot "0 (w=1, c=1)");
  check_bool "edge" true (contains dot "n0 -> n1");
  check_bool "all edges present" true
    (contains dot "n1 -> n3" && contains dot "n2 -> n3")

let test_schedule_to_dot () =
  let dag = Test_util.diamond () in
  let dot =
    Dag_export.schedule_to_dot dag ~proc:[| 0; 0; 1; 1 |] ~step:[| 0; 1; 1; 2 |]
  in
  check_bool "clusters" true
    (contains dot "cluster_s0" && contains dot "cluster_s1" && contains dot "cluster_s2");
  check_bool "processor label" true (contains dot "0@p0");
  (* The cross-processor edge 1 -> 3 is dashed; the local edge 2 -> 3 is
     not. *)
  check_bool "cross edge dashed" true (contains dot "n1 -> n3 [style=dashed]");
  check_bool "local edge solid" true (contains dot "n2 -> n3;")

let test_write_dataset () =
  let dir = Filename.temp_file "dagdb" "" in
  Sys.remove dir;
  let ds = Datasets.tiny ~scale:Datasets.Smoke ~seed:1 in
  let files = Datasets.write_dataset ~dir ds in
  check "one file per instance" (List.length ds.Datasets.instances) (List.length files);
  (* Every written file parses back to the same DAG. *)
  List.iter2
    (fun inst path ->
      let dag = Hyperdag_io.read_file path in
      check "same n" (Dag.n inst.Datasets.dag) (Dag.n dag);
      check "same edges" (Dag.num_edges inst.Datasets.dag) (Dag.num_edges dag))
    ds.Datasets.instances files;
  List.iter Sys.remove files;
  Unix.rmdir (Filename.concat dir "tiny");
  Unix.rmdir dir

let test_comm_matching_strategy () =
  let rng = Rng.create 15 in
  let dag = Test_util.random_dag rng ~n:30 ~edge_prob:0.15 ~max_w:4 ~max_c:4 in
  let session = Coarsen.start dag in
  Coarsen.coarsen_to ~strategy:Coarsen.Comm_matching session ~target:10;
  let qdag, _ = Coarsen.quotient session in
  check_bool "reached target-ish" true (Dag.n qdag <= Dag.n dag);
  check_bool "acyclic" true (Dag.is_acyclic_edges ~n:(Dag.n qdag) (Dag.edges qdag));
  check "weights preserved" (Dag.total_work dag) (Dag.total_work qdag)

let prop_comm_matching_safe =
  Test_util.qtest ~count:40 "comm-matching coarsening safe"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (int_range 1 10))
    (fun (dag, target) ->
      let session = Coarsen.start dag in
      Coarsen.coarsen_to ~strategy:Coarsen.Comm_matching session ~target;
      let qdag, _ = Coarsen.quotient session in
      Dag.is_acyclic_edges ~n:(Dag.n qdag) (Dag.edges qdag)
      && Dag.total_work qdag = Dag.total_work dag
      && Dag.total_comm qdag = Dag.total_comm dag)

let test_multilevel_with_matching_strategy () =
  let rng = Rng.create 16 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:15 ~q:0.15) ~k:3 in
  let m = Machine.numa_tree ~p:4 ~g:2 ~l:5 ~delta:4 in
  let solver mach d = Bspg.schedule mach d in
  let s =
    Multilevel.run_ratio ~strategy:Coarsen.Comm_matching ~refine_interval:5
      ~refine_moves:100 ~solver ~ratio:0.3 m dag
  in
  check_bool "valid" true (Validity.is_valid m s)

let () =
  Alcotest.run "export_db"
    [
      ( "dot",
        [
          Alcotest.test_case "dag" `Quick test_dag_to_dot;
          Alcotest.test_case "schedule" `Quick test_schedule_to_dot;
        ] );
      ("database", [ Alcotest.test_case "write dataset" `Quick test_write_dataset ]);
      ( "coarsen strategy",
        [
          Alcotest.test_case "matching" `Quick test_comm_matching_strategy;
          prop_comm_matching_safe;
          Alcotest.test_case "multilevel with matching" `Quick
            test_multilevel_with_matching_strategy;
        ] );
    ]
