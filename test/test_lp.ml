let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)

let opt = function
  | Simplex.Optimal { obj; x } -> (obj, x)
  | Simplex.Infeasible -> Alcotest.fail "unexpected Infeasible"
  | Simplex.Unbounded -> Alcotest.fail "unexpected Unbounded"
  | Simplex.Iteration_limit -> Alcotest.fail "unexpected Iteration_limit"

let test_textbook_max () =
  (* max x + y s.t. x + 2y <= 4, 3x + y <= 6 -> (8/5, 6/5). *)
  let r =
    Simplex.minimize ~num_vars:2
      ~obj:[ (0, -1.0); (1, -1.0) ]
      ~rows:
        [|
          ([ (0, 1.0); (1, 2.0) ], Simplex.Le, 4.0);
          ([ (0, 3.0); (1, 1.0) ], Simplex.Le, 6.0);
        |]
      ~lb:[| 0.0; 0.0 |] ~ub:[| infinity; infinity |] ()
  in
  let obj, x = opt r in
  check_float "obj" (-2.8) obj;
  check_float "x" 1.6 x.(0);
  check_float "y" 1.2 x.(1)

let test_infeasible () =
  let r =
    Simplex.minimize ~num_vars:1 ~obj:[ (0, 1.0) ]
      ~rows:[| ([ (0, 1.0) ], Simplex.Le, -1.0) |]
      ~lb:[| 0.0 |] ~ub:[| infinity |] ()
  in
  check_bool "infeasible" true (r = Simplex.Infeasible)

let test_unbounded () =
  let r =
    Simplex.minimize ~num_vars:1 ~obj:[ (0, -1.0) ] ~rows:[||] ~lb:[| 0.0 |]
      ~ub:[| infinity |] ()
  in
  check_bool "unbounded" true (r = Simplex.Unbounded)

let test_equality_and_bounds () =
  (* min x - y s.t. x + y = 3, 0 <= x <= 1 -> x = 0, y = 3. *)
  let r =
    Simplex.minimize ~num_vars:2
      ~obj:[ (0, 1.0); (1, -1.0) ]
      ~rows:[| ([ (0, 1.0); (1, 1.0) ], Simplex.Eq, 3.0) |]
      ~lb:[| 0.0; 0.0 |] ~ub:[| 1.0; infinity |] ()
  in
  let obj, x = opt r in
  check_float "obj" (-3.0) obj;
  check_float "x" 0.0 x.(0);
  check_float "y" 3.0 x.(1)

let test_ge_constraints () =
  (* min 2x + 3y s.t. x + y >= 4, x >= 1 -> (4, 0) obj 8. *)
  let r =
    Simplex.minimize ~num_vars:2
      ~obj:[ (0, 2.0); (1, 3.0) ]
      ~rows:
        [|
          ([ (0, 1.0); (1, 1.0) ], Simplex.Ge, 4.0);
          ([ (0, 1.0) ], Simplex.Ge, 1.0);
        |]
      ~lb:[| 0.0; 0.0 |] ~ub:[| infinity; infinity |] ()
  in
  let obj, x = opt r in
  check_float "obj" 8.0 obj;
  check_float "x" 4.0 x.(0)

let test_shifted_lower_bounds () =
  (* min x + y with x >= 2, y >= 3 and x + y >= 7 -> obj 7. *)
  let r =
    Simplex.minimize ~num_vars:2
      ~obj:[ (0, 1.0); (1, 1.0) ]
      ~rows:[| ([ (0, 1.0); (1, 1.0) ], Simplex.Ge, 7.0) |]
      ~lb:[| 2.0; 3.0 |] ~ub:[| infinity; infinity |] ()
  in
  let obj, x = opt r in
  check_float "obj" 7.0 obj;
  check_bool "x >= lb" true (x.(0) >= 2.0 -. 1e-9);
  check_bool "y >= lb" true (x.(1) >= 3.0 -. 1e-9)

let test_negative_rhs_flip () =
  (* -x <= -2 is x >= 2. *)
  let r =
    Simplex.minimize ~num_vars:1 ~obj:[ (0, 1.0) ]
      ~rows:[| ([ (0, -1.0) ], Simplex.Le, -2.0) |]
      ~lb:[| 0.0 |] ~ub:[| infinity |] ()
  in
  let obj, _ = opt r in
  check_float "obj" 2.0 obj

let test_degenerate () =
  (* Multiple redundant constraints through the optimum; exercises the
     Bland fallback without cycling. *)
  let r =
    Simplex.minimize ~num_vars:2
      ~obj:[ (0, -1.0) ]
      ~rows:
        [|
          ([ (0, 1.0) ], Simplex.Le, 1.0);
          ([ (0, 1.0); (1, 0.0) ], Simplex.Le, 1.0);
          ([ (0, 1.0); (1, 1.0) ], Simplex.Le, 1.0);
          ([ (0, 2.0); (1, 2.0) ], Simplex.Le, 2.0);
        |]
      ~lb:[| 0.0; 0.0 |] ~ub:[| infinity; infinity |] ()
  in
  let obj, _ = opt r in
  check_float "obj" (-1.0) obj

(* Property: on random feasible-by-construction LPs, the simplex result
   is feasible and no random feasible point beats it. *)
let prop_simplex_optimality =
  let gen =
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      let* n = int_range 1 6 in
      let* m = int_range 1 6 in
      return (seed, n, m))
  in
  Test_util.qtest ~count:200 "simplex optimal vs sampled points" gen
    (fun (seed, n, m) ->
      let rng = Rng.create seed in
      (* Constraints a . x <= b with a >= 0 and b > 0: the box near the
         origin is feasible and the LP is bounded when c >= 0 is
         minimised... we minimise c . x with c possibly negative but add
         a cap sum x <= 10 to keep it bounded. *)
      let rows =
        Array.init m (fun _ ->
            let coeffs =
              List.init n (fun j -> (j, float_of_int (Rng.int rng 5)))
              |> List.filter (fun (_, c) -> c > 0.0)
            in
            (coeffs, Simplex.Le, float_of_int (1 + Rng.int rng 20)))
      in
      let cap = (List.init n (fun j -> (j, 1.0)), Simplex.Le, 10.0) in
      let rows = Array.append rows [| cap |] in
      let obj = List.init n (fun j -> (j, float_of_int (Rng.int rng 9 - 4))) in
      let lb = Array.make n 0.0 and ub = Array.make n infinity in
      match Simplex.minimize ~num_vars:n ~obj ~rows ~lb ~ub () with
      | Simplex.Infeasible | Simplex.Unbounded | Simplex.Iteration_limit -> false
      | Simplex.Optimal { obj = v; x } ->
        let feasible pt =
          Array.for_all
            (fun (coeffs, _, b) ->
              List.fold_left (fun acc (j, c) -> acc +. (c *. pt.(j))) 0.0 coeffs
              <= b +. 1e-6)
            rows
          && Array.for_all (fun xi -> xi >= -1e-9) pt
        in
        let value pt = List.fold_left (fun acc (j, c) -> acc +. (c *. pt.(j))) 0.0 obj in
        if not (feasible x) then false
        else if Float.abs (value x -. v) > 1e-6 then false
        else begin
          (* Sample feasible points by scaling random directions. *)
          let ok = ref true in
          for _ = 1 to 50 do
            let pt = Array.init n (fun _ -> Rng.float rng 3.0) in
            if feasible pt && value pt < v -. 1e-6 then ok := false
          done;
          !ok
        end)

let () =
  Alcotest.run "lp"
    [
      ( "unit",
        [
          Alcotest.test_case "textbook max" `Quick test_textbook_max;
          Alcotest.test_case "infeasible" `Quick test_infeasible;
          Alcotest.test_case "unbounded" `Quick test_unbounded;
          Alcotest.test_case "equality and bounds" `Quick test_equality_and_bounds;
          Alcotest.test_case "ge constraints" `Quick test_ge_constraints;
          Alcotest.test_case "shifted lower bounds" `Quick test_shifted_lower_bounds;
          Alcotest.test_case "negative rhs flip" `Quick test_negative_rhs_flip;
          Alcotest.test_case "degenerate" `Quick test_degenerate;
        ] );
      ("property", [ prop_simplex_optimality ]);
    ]
