let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

(* Annealing *)

let start_schedule rng dag p =
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
  Schedule.of_assignment dag ~proc ~step:level

let test_annealing_improves_scattered_chain () =
  let dag = Test_util.chain 8 in
  let m = Machine.uniform ~p:4 ~g:5 ~l:2 in
  let bad =
    Schedule.of_assignment dag ~proc:[| 0; 1; 2; 3; 0; 1; 2; 3 |]
      ~step:(Array.init 8 Fun.id)
  in
  let improved, stats = Annealing.improve m bad in
  check_bool "valid" true (Validity.is_valid m improved);
  check_bool "strictly better" true (stats.Annealing.final_cost < stats.Annealing.initial_cost)

let test_annealing_reports_exact_cost () =
  let rng = Rng.create 4 in
  let dag = Test_util.random_dag rng ~n:25 ~edge_prob:0.15 ~max_w:4 ~max_c:3 in
  let m = Machine.uniform ~p:3 ~g:2 ~l:3 in
  let s = start_schedule rng dag 3 in
  let improved, stats = Annealing.improve m s in
  check "cost matches" (Bsp_cost.total m improved) stats.Annealing.final_cost

let test_annealing_deterministic_given_seed () =
  let rng = Rng.create 5 in
  let dag = Test_util.random_dag rng ~n:20 ~edge_prob:0.2 ~max_w:3 ~max_c:3 in
  let m = Machine.uniform ~p:2 ~g:3 ~l:2 in
  let s = start_schedule rng dag 2 in
  let config = { (Annealing.default_config 100) with Annealing.seed = 9; sweeps = 10 } in
  let a, _ = Annealing.improve ~config m s in
  let b, _ = Annealing.improve ~config m s in
  Alcotest.(check (array int)) "same procs" a.Schedule.proc b.Schedule.proc;
  Alcotest.(check (array int)) "same steps" a.Schedule.step b.Schedule.step

let prop_annealing_never_worse_and_valid =
  Test_util.qtest ~count:40 "annealing monotone + valid"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 100_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let before = Bsp_cost.total m s in
      let improved, stats = Annealing.improve m s in
      Validity.is_valid m improved
      && stats.Annealing.final_cost <= before
      && Bsp_cost.total m improved = stats.Annealing.final_cost)

(* Ccr and run_auto *)

let test_ccr_values () =
  let dag = Test_util.diamond () in
  (* total work 10, total comm 5; uniform avg lambda 1, g = 2 -> 1.0. *)
  let m = Machine.uniform ~p:4 ~g:2 ~l:5 in
  Alcotest.(check (float 1e-9)) "uniform" 1.0 (Ccr.ccr m dag);
  let numa = Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:3 in
  (* avg lambda = 43/7. *)
  Alcotest.(check (float 1e-9)) "numa" (43.0 /. 7.0 *. 0.5) (Ccr.ccr numa dag);
  check_bool "dominated" true (Ccr.communication_dominated ~threshold:3.0 numa dag);
  check_bool "not dominated" false (Ccr.communication_dominated ~threshold:3.1 numa dag)

let fast_test_limits =
  {
    Pipeline.default_limits with
    Pipeline.hc_evals = 40_000;
    hccs_evals = 15_000;
    use_ilp = false;
    stage_seconds = Some 3.0;
  }

let test_run_auto_base_on_uniform () =
  let rng = Rng.create 6 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:12 ~q:0.2) ~k:2 in
  let m = Machine.uniform ~p:4 ~g:1 ~l:5 in
  let sched, choice = Pipeline.run_auto ~limits:fast_test_limits m dag in
  check_bool "valid" true (Validity.is_valid m sched);
  check_bool "base chosen" true (choice = Pipeline.Base)

let test_run_auto_considers_ml_when_dominated () =
  let rng = Rng.create 8 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:15 ~q:0.15) ~k:3 in
  let m = Machine.numa_tree ~p:16 ~g:1 ~l:5 ~delta:4 in
  check_bool "instance is dominated" true (Ccr.communication_dominated m dag);
  let sched, _choice = Pipeline.run_auto ~limits:fast_test_limits m dag in
  check_bool "valid" true (Validity.is_valid m sched);
  (* Whatever was chosen must be at least as good as the base pipeline. *)
  let base, _ = Pipeline.run ~limits:fast_test_limits m dag in
  check_bool "no worse than base" true
    (Bsp_cost.total m sched <= Bsp_cost.total m base)

(* Schedule_render *)

let test_render_contains_structure () =
  let dag = Test_util.diamond () in
  let m = Machine.uniform ~p:2 ~g:2 ~l:1 in
  let s = Schedule.of_assignment dag ~proc:[| 0; 0; 1; 1 |] ~step:[| 0; 1; 1; 2 |] in
  let text = Schedule_render.to_string m s in
  check_bool "mentions supersteps" true
    (Test_util.contains_substring text "superstep 0" && Test_util.contains_substring text "superstep 2");
  check_bool "mentions comm" true (Test_util.contains_substring text "comm:")

(* Machine_io *)

let test_machine_io_roundtrip () =
  let m = Machine.numa_tree ~p:8 ~g:3 ~l:7 ~delta:2 in
  let m2 = Machine_io.of_string (Machine_io.to_string m) in
  check "p" m.Machine.p m2.Machine.p;
  check "g" m.Machine.g m2.Machine.g;
  check "l" m.Machine.l m2.Machine.l;
  for i = 0 to 7 do
    for j = 0 to 7 do
      check "lambda" (Machine.lambda m i j) (Machine.lambda m2 i j)
    done
  done

let test_machine_io_presets () =
  let m = Machine_io.of_string "p 4\ng 2\nl 3\n" in
  check_bool "uniform" true (Machine.is_uniform m);
  let m2 = Machine_io.of_string "% tree\np 8\ng 1\nl 5\nnuma-tree 3\n" in
  check "tree coefficient" 9 (Machine.lambda m2 0 7)

let test_machine_io_errors () =
  let fails s = try ignore (Machine_io.of_string s); false with Failure _ -> true in
  check_bool "missing p" true (fails "g 1\n");
  check_bool "bad line" true (fails "processors 4\n");
  check_bool "both presets" true (fails "p 4\nnuma-tree 2\nlambda\n0 1 1 1\n1 0 1 1\n1 1 0 1\n1 1 1 0\n");
  check_bool "p mismatch" true (fails "p 3\nlambda\n0 1\n1 0\n");
  check_bool "nonzero diagonal" true (fails "lambda\n1 1\n1 0\n")

let () =
  Alcotest.run "extensions"
    [
      ( "annealing",
        [
          Alcotest.test_case "improves scattered chain" `Quick
            test_annealing_improves_scattered_chain;
          Alcotest.test_case "exact reported cost" `Quick test_annealing_reports_exact_cost;
          Alcotest.test_case "deterministic" `Quick test_annealing_deterministic_given_seed;
          prop_annealing_never_worse_and_valid;
        ] );
      ( "ccr",
        [
          Alcotest.test_case "values" `Quick test_ccr_values;
          Alcotest.test_case "run_auto uniform" `Quick test_run_auto_base_on_uniform;
          Alcotest.test_case "run_auto dominated" `Quick
            test_run_auto_considers_ml_when_dominated;
        ] );
      ("render", [ Alcotest.test_case "structure" `Quick test_render_contains_structure ]);
      ( "machine_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_machine_io_roundtrip;
          Alcotest.test_case "presets" `Quick test_machine_io_presets;
          Alcotest.test_case "errors" `Quick test_machine_io_errors;
        ] );
    ]
