let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let test_sparse_matrix_basic () =
  let rng = Rng.create 2 in
  let a = Sparse_matrix.random rng ~n:20 ~q:0.2 in
  check "n" 20 (Sparse_matrix.n a);
  check_bool "no empty rows" true
    (List.for_all (fun i -> Array.length (Sparse_matrix.row a i) > 0) (List.init 20 Fun.id));
  (* Column index consistent with rows. *)
  let ok = ref true in
  for i = 0 to 19 do
    Array.iter
      (fun j ->
        if not (Array.exists (fun i' -> i' = i) (Sparse_matrix.col a j)) then ok := false)
      (Sparse_matrix.row a i)
  done;
  check_bool "col index consistent" true !ok

let test_sparse_matrix_symmetric () =
  let rng = Rng.create 4 in
  let a = Sparse_matrix.random_symmetric rng ~n:15 ~q:0.3 in
  let ok = ref true in
  for i = 0 to 14 do
    if not (Sparse_matrix.mem a i i) then ok := false;
    Array.iter (fun j -> if not (Sparse_matrix.mem a j i) then ok := false)
      (Sparse_matrix.row a i)
  done;
  check_bool "symmetric with full diagonal" true !ok

let test_of_rows_validation () =
  (try
     ignore (Sparse_matrix.of_rows ~n:2 [| [ 0; 5 ]; [] |]);
     Alcotest.fail "out of range accepted"
   with Invalid_argument _ -> ())

let test_spmv_structure () =
  (* Dense 2x2 matrix: 4 a_ij + 2 u_j sources, 4 multiplies, 2 row sums. *)
  let a = Sparse_matrix.of_rows ~n:2 [| [ 0; 1 ]; [ 0; 1 ] |] in
  let dag = Finegrained.spmv a in
  check "nodes" 12 (Dag.n dag);
  check "3 wavefronts" 3 (Dag.num_wavefronts dag);
  (* Weight rule: sources 1; multiplies indeg 2 -> 1; sums indeg 2 -> 1. *)
  Array.iter
    (fun v ->
      let expected = if Dag.in_degree dag v = 0 then 1 else Dag.in_degree dag v - 1 in
      check "paper weight" expected (Dag.work dag v);
      check "comm weight" 1 (Dag.comm dag v))
    (Array.init (Dag.n dag) Fun.id)

let test_exp_depth_grows () =
  let rng = Rng.create 5 in
  let a = Sparse_matrix.random rng ~n:10 ~q:0.2 in
  let d1 = Finegrained.exp a ~k:1 in
  let d3 = Finegrained.exp a ~k:3 in
  check_bool "more nodes" true (Dag.n d3 > Dag.n d1);
  check_bool "deeper" true (Dag.num_wavefronts d3 > Dag.num_wavefronts d1)

let test_cg_valid_dag () =
  let rng = Rng.create 6 in
  let a = Sparse_matrix.random_symmetric rng ~n:8 ~q:0.3 in
  let dag = Finegrained.cg a ~k:2 in
  check_bool "nontrivial" true (Dag.n dag > 30);
  (* Validated acyclic by construction (Dag.of_edges); check weights. *)
  Array.iter
    (fun v ->
      let expected = if Dag.in_degree dag v = 0 then 1 else Dag.in_degree dag v - 1 in
      check "paper weight" expected (Dag.work dag v))
    (Array.init (Dag.n dag) Fun.id)

let test_knn_frontier_spreads () =
  let rng = Rng.create 7 in
  let a = Sparse_matrix.random rng ~n:12 ~q:0.25 in
  let dag = Finegrained.knn (Rng.create 1) a ~k:3 in
  check_bool "grows beyond seed" true (Dag.n dag > 4)

let test_generate_sized_accuracy () =
  let rng = Rng.create 8 in
  List.iter
    (fun (family, target) ->
      let dag =
        Finegrained.generate_sized (Rng.split rng) ~family ~shape:Finegrained.Wide ~target
      in
      let n = Dag.n dag in
      check_bool
        (Printf.sprintf "%s target %d got %d" (Finegrained.family_name family) target n)
        true
        (float_of_int n > 0.5 *. float_of_int target
        && float_of_int n < 2.0 *. float_of_int target))
    [
      (Finegrained.Spmv, 100);
      (Finegrained.Exp, 300);
      (Finegrained.Cg, 400);
      (Finegrained.Knn, 200);
    ]

let test_coarse_generators () =
  List.iter
    (fun algo ->
      let dag = Coarsegrained.generate algo ~iterations:5 in
      check_bool "nontrivial" true (Dag.n dag > 5);
      (* Iterative structure: depth grows with iterations. *)
      let deep = Coarsegrained.generate algo ~iterations:10 in
      check_bool "depth grows" true (Dag.num_wavefronts deep > Dag.num_wavefronts dag);
      let sized = Coarsegrained.generate_sized algo ~target:200 in
      check_bool "sized near target" true (abs (Dag.n sized - 200) < 60))
    Coarsegrained.all_algorithms

let test_datasets_smoke () =
  let t = Datasets.tiny ~scale:Datasets.Smoke ~seed:1 in
  check_bool "has instances" true (List.length t.Datasets.instances >= 4);
  List.iter
    (fun inst ->
      check_bool
        (Printf.sprintf "instance %s acyclic-nontrivial" inst.Datasets.name)
        true
        (Dag.n inst.Datasets.dag > 10))
    t.Datasets.instances;
  let tr = Datasets.training ~scale:Datasets.Smoke ~seed:1 in
  check "training count" 10 (List.length tr.Datasets.instances)

let test_datasets_deterministic () =
  let a = Datasets.small ~scale:Datasets.Smoke ~seed:5 in
  let b = Datasets.small ~scale:Datasets.Smoke ~seed:5 in
  List.iter2
    (fun x y ->
      Alcotest.(check string) "same names" x.Datasets.name y.Datasets.name;
      check "same sizes" (Dag.n x.Datasets.dag) (Dag.n y.Datasets.dag))
    a.Datasets.instances b.Datasets.instances

let test_dataset_size_ordering () =
  let seed = 3 in
  let scale = Datasets.Smoke in
  let avg ds =
    let sizes = List.map (fun i -> Dag.n i.Datasets.dag) ds.Datasets.instances in
    List.fold_left ( + ) 0 sizes / List.length sizes
  in
  let t = avg (Datasets.tiny ~scale ~seed) in
  let s = avg (Datasets.small ~scale ~seed) in
  let m = avg (Datasets.medium ~scale ~seed) in
  check_bool "tiny < small" true (t < s);
  check_bool "small < medium" true (s < m)

let () =
  Alcotest.run "generators"
    [
      ( "sparse",
        [
          Alcotest.test_case "random" `Quick test_sparse_matrix_basic;
          Alcotest.test_case "symmetric" `Quick test_sparse_matrix_symmetric;
          Alcotest.test_case "of_rows validation" `Quick test_of_rows_validation;
        ] );
      ( "finegrained",
        [
          Alcotest.test_case "spmv structure" `Quick test_spmv_structure;
          Alcotest.test_case "exp depth" `Quick test_exp_depth_grows;
          Alcotest.test_case "cg dag" `Quick test_cg_valid_dag;
          Alcotest.test_case "knn frontier" `Quick test_knn_frontier_spreads;
          Alcotest.test_case "sized generation" `Quick test_generate_sized_accuracy;
        ] );
      ("coarse", [ Alcotest.test_case "all algorithms" `Quick test_coarse_generators ]);
      ( "datasets",
        [
          Alcotest.test_case "smoke datasets" `Quick test_datasets_smoke;
          Alcotest.test_case "deterministic" `Quick test_datasets_deterministic;
          Alcotest.test_case "size ordering" `Quick test_dataset_size_ordering;
        ] );
    ]
