let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_split_independent () =
  let parent = Rng.create 7 in
  let child = Rng.split parent in
  let x = Rng.int child 1_000_000 in
  (* Re-deriving from the same parent state gives a different child. *)
  let child2 = Rng.split parent in
  check_bool "children differ" true (x <> Rng.int child2 1_000_000 || x <> Rng.int child2 1_000_000)

let test_rng_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let x = Rng.int rng 7 in
    check_bool "in range" true (x >= 0 && x < 7);
    let f = Rng.float rng 2.5 in
    check_bool "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_rng_shuffle_permutation () =
  let rng = Rng.create 9 in
  let arr = Array.init 50 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 50 Fun.id) sorted

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 1 in
  for _ = 1 to 50 do
    check_bool "p=0 never" false (Rng.bernoulli rng 0.0);
    check_bool "p=1 always" true (Rng.bernoulli rng 1.0)
  done

(* Budget *)

let test_budget_steps () =
  let b = Budget.steps 3 in
  check_bool "1" true (Budget.tick b);
  check_bool "2" true (Budget.tick b);
  check_bool "3" true (Budget.tick b);
  check_bool "exhausted" false (Budget.tick b);
  check_bool "stays exhausted" true (Budget.exhausted b);
  check "used" 3 (Budget.used_steps b)

let test_budget_unlimited () =
  for _ = 1 to 100 do
    check_bool "never exhausted" true (Budget.tick (Budget.unlimited ()))
  done

let test_budget_unlimited_independent () =
  (* Each [unlimited ()] is a fresh value: consumption by one consumer
     must not leak into another's [used_steps]. *)
  let a = Budget.unlimited () and b = Budget.unlimited () in
  check_bool "a ticks" true (Budget.ticks a 500);
  check "a used" 500 (Budget.used_steps a);
  check "b untouched" 0 (Budget.used_steps b);
  check_bool "b ticks" true (Budget.tick b);
  check "b used" 1 (Budget.used_steps b);
  check "a unchanged" 500 (Budget.used_steps a)

let test_budget_combine () =
  let b = Budget.combine (Budget.steps 2) (Budget.steps 10) in
  check_bool "1" true (Budget.tick b);
  check_bool "2" true (Budget.tick b);
  check_bool "first limits" false (Budget.tick b)

let test_budget_combine_used_steps () =
  let inner = Budget.steps 100 and clock = Budget.seconds 60.0 in
  let b = Budget.combine inner clock in
  check_bool "batch" true (Budget.ticks b 7);
  check_bool "one" true (Budget.tick b);
  (* The pair and both components all saw the same 8 units. *)
  check "pair used" 8 (Budget.used_steps b);
  check "steps component used" 8 (Budget.used_steps inner);
  check "deadline component used" 8 (Budget.used_steps clock)

let test_budget_ticks_clamped () =
  (* A batch larger than the remaining steps consumes only the remainder
     and reports failure: the budget can never go negative and claim
     success. *)
  let b = Budget.steps 3 in
  check_bool "overdraw refused" false (Budget.ticks b 10);
  check "clamped at capacity" 3 (Budget.used_steps b);
  check_bool "exhausted" true (Budget.exhausted b);
  check_bool "further ticks refused" false (Budget.tick b);
  check "no further use" 3 (Budget.used_steps b);
  (* Exact-capacity batches succeed. *)
  let c = Budget.steps 5 in
  check_bool "exact batch ok" true (Budget.ticks c 5);
  check "exact used" 5 (Budget.used_steps c);
  check_bool "then exhausted" true (Budget.exhausted c);
  (* Zero-sized batches succeed without consuming while unexhausted. *)
  let d = Budget.steps 1 in
  check_bool "empty batch ok" true (Budget.ticks d 0);
  check "empty batch free" 0 (Budget.used_steps d)

let test_budget_deadline () =
  let b = Budget.seconds 0.02 in
  check_bool "fresh" false (Budget.exhausted b);
  Unix.sleepf 0.05;
  check_bool "expired" true (Budget.exhausted b)

(* Deque *)

let test_deque_lifo_fifo () =
  let d = Deque.create () in
  check_bool "empty" true (Deque.is_empty d);
  List.iter (Deque.push_top d) [ 1; 2; 3; 4 ];
  check "length" 4 (Deque.length d);
  Alcotest.(check (option int)) "top" (Some 4) (Deque.pop_top d);
  Alcotest.(check (option int)) "bottom" (Some 1) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "peek top" (Some 3) (Deque.peek_top d);
  Alcotest.(check (option int)) "peek bottom" (Some 2) (Deque.peek_bottom d);
  Alcotest.(check (option int)) "pop" (Some 3) (Deque.pop_top d);
  Alcotest.(check (option int)) "pop" (Some 2) (Deque.pop_top d);
  Alcotest.(check (option int)) "empty pop" None (Deque.pop_top d);
  Alcotest.(check (option int)) "empty pop bottom" None (Deque.pop_bottom d)

let test_deque_growth_wraparound () =
  let d = Deque.create () in
  (* Force several growth cycles with mixed operations. *)
  for round = 1 to 5 do
    for i = 1 to 100 do
      Deque.push_top d (round * 1000 + i)
    done;
    for _ = 1 to 50 do
      ignore (Deque.pop_bottom d : int option)
    done
  done;
  check "length" 250 (Deque.length d);
  (* Drain and confirm count. *)
  let count = ref 0 in
  while not (Deque.is_empty d) do
    ignore (Deque.pop_top d : int option);
    incr count
  done;
  check "drained" 250 !count

(* Statistics *)

let test_statistics () =
  Alcotest.(check (float 1e-9)) "geo" 4.0 (Statistics.geometric_mean [ 2.0; 8.0 ]);
  Alcotest.(check (float 1e-9)) "geo singleton" 3.0 (Statistics.geometric_mean [ 3.0 ]);
  check_bool "geo empty nan" true (Float.is_nan (Statistics.geometric_mean []));
  Alcotest.(check (float 1e-9)) "mean" 5.0 (Statistics.mean [ 4.0; 6.0 ]);
  Alcotest.(check (float 1e-9)) "reduction" 25.0 (Statistics.percent_reduction 0.75)

let test_statistics_geomean_rejects_nonpositive () =
  let expect_invalid label xs =
    try
      ignore (Statistics.geometric_mean xs : float);
      Alcotest.fail (label ^ " accepted")
    with Invalid_argument _ -> ()
  in
  expect_invalid "zero" [ 1.0; 0.0; 2.0 ];
  expect_invalid "negative" [ 3.0; -1.0 ];
  expect_invalid "nan" [ 1.0; Float.nan ]

(* Schedule_io *)

let test_schedule_io_roundtrip () =
  let dag = Test_util.diamond () in
  let s =
    Schedule.make dag ~proc:[| 0; 1; 0; 1 |] ~step:[| 0; 1; 0; 2 |]
      ~comm:
        [
          { Schedule.node = 0; src = 0; dst = 1; step = 0 };
          { Schedule.node = 2; src = 0; dst = 1; step = 1 };
        ]
  in
  let s2 = Schedule_io.of_string dag (Schedule_io.to_string s) in
  Alcotest.(check (array int)) "proc" s.Schedule.proc s2.Schedule.proc;
  Alcotest.(check (array int)) "step" s.Schedule.step s2.Schedule.step;
  check "events" 2 (List.length s2.Schedule.comm);
  let m = Machine.uniform ~p:2 ~g:2 ~l:1 in
  check "same cost" (Bsp_cost.total m s) (Bsp_cost.total m s2)

let test_schedule_io_rejects_mismatch () =
  let dag = Test_util.diamond () in
  let other = Test_util.chain 3 in
  let s = Schedule.trivial dag in
  (try
     ignore (Schedule_io.of_string other (Schedule_io.to_string s));
     Alcotest.fail "node-count mismatch accepted"
   with Failure _ -> ())

(* Superstep_merge *)

let test_superstep_merge_collapses_chain () =
  (* A chain on one processor spread over many supersteps merges into
     one. *)
  let dag = Test_util.chain 5 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:5 in
  let s = Schedule.of_assignment dag ~proc:(Array.make 5 0) ~step:[| 0; 1; 2; 3; 4 |] in
  let merged = Superstep_merge.greedy m s in
  check "one superstep" 1 (Schedule.num_supersteps merged);
  check_bool "valid" true (Validity.is_valid m merged)

let test_superstep_merge_blocked_by_cross_edge () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:5 in
  let s = Schedule.of_assignment dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |] in
  let merged = Superstep_merge.greedy m s in
  check "still two supersteps" 2 (Schedule.num_supersteps merged);
  check_bool "valid" true (Validity.is_valid m merged)

let prop_superstep_merge_never_worse =
  Test_util.qtest ~count:60 "merge monotone"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 10_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let level = Dag.wavefronts dag in
      let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng m.Machine.p) in
      let s = Schedule.of_assignment dag ~proc ~step:level in
      let merged = Superstep_merge.greedy m s in
      Validity.is_valid m merged && Bsp_cost.total m merged <= Bsp_cost.total m s)

let () =
  Alcotest.run "util_modules"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split" `Quick test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "shuffle" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
        ] );
      ( "budget",
        [
          Alcotest.test_case "steps" `Quick test_budget_steps;
          Alcotest.test_case "unlimited" `Quick test_budget_unlimited;
          Alcotest.test_case "unlimited independent" `Quick
            test_budget_unlimited_independent;
          Alcotest.test_case "combine" `Quick test_budget_combine;
          Alcotest.test_case "combine used_steps" `Quick test_budget_combine_used_steps;
          Alcotest.test_case "ticks clamped" `Quick test_budget_ticks_clamped;
          Alcotest.test_case "deadline" `Quick test_budget_deadline;
        ] );
      ( "deque",
        [
          Alcotest.test_case "lifo/fifo" `Quick test_deque_lifo_fifo;
          Alcotest.test_case "growth + wraparound" `Quick test_deque_growth_wraparound;
        ] );
      ( "statistics",
        [
          Alcotest.test_case "aggregates" `Quick test_statistics;
          Alcotest.test_case "geomean rejects non-positive" `Quick
            test_statistics_geomean_rejects_nonpositive;
        ] );
      ( "schedule_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_schedule_io_roundtrip;
          Alcotest.test_case "mismatch rejected" `Quick test_schedule_io_rejects_mismatch;
        ] );
      ( "superstep_merge",
        [
          Alcotest.test_case "collapses chain" `Quick test_superstep_merge_collapses_chain;
          Alcotest.test_case "blocked by cross edge" `Quick
            test_superstep_merge_blocked_by_cross_edge;
          prop_superstep_merge_never_worse;
        ] );
    ]
