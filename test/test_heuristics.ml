let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let test_bspg_diamond () =
  let dag = Test_util.diamond () in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  let s = Bspg.schedule m dag in
  check_bool "valid" true (Validity.is_valid m s);
  (* All four nodes must be assigned. *)
  Array.iter (fun q -> check_bool "assigned" true (q >= 0)) s.Schedule.proc

let test_bspg_single_proc () =
  let dag = Test_util.chain 5 in
  let m = Machine.uniform ~p:1 ~g:1 ~l:5 in
  let s = Bspg.schedule m dag in
  check "single superstep" 1 (Schedule.num_supersteps s);
  check "cost = work + l" (5 + 5) (Bsp_cost.total m s)

let test_bspg_independent_nodes_balanced () =
  (* 8 equal independent nodes on 4 processors: a single superstep with
     balanced work is reachable greedily. *)
  let dag =
    Dag.of_edges ~n:8 ~edges:[] ~work:(Array.make 8 3) ~comm:(Array.make 8 1)
  in
  let m = Machine.uniform ~p:4 ~g:1 ~l:2 in
  let s = Bspg.schedule m dag in
  check "one superstep" 1 (Schedule.num_supersteps s);
  check "cost" (6 + 2) (Bsp_cost.total m s)

let test_source_first_superstep_clusters () =
  (* Sources 0 and 1 share the successor 2; source 3 is independent with
     successor 4. Clustering must co-locate 0 and 1. *)
  let dag =
    Dag.of_edges ~n:5
      ~edges:[ (0, 2); (1, 2); (3, 4) ]
      ~work:(Array.make 5 1) ~comm:(Array.make 5 1)
  in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  let s = Source_heuristic.schedule m dag in
  check_bool "valid" true (Validity.is_valid m s);
  check "clustered" s.Schedule.proc.(0) s.Schedule.proc.(1)

let test_source_absorbs_successors () =
  (* On a chain, each superstep absorbs exactly one direct successor of
     its source (absorption does not cascade further), so a 6-chain
     needs 3 supersteps of two processor-local nodes each instead of 6
     singleton supersteps. *)
  let dag = Test_util.chain 6 in
  let m = Machine.uniform ~p:4 ~g:1 ~l:1 in
  let s = Source_heuristic.schedule m dag in
  check "three supersteps" 3 (Schedule.num_supersteps s);
  check "pairs co-located" s.Schedule.proc.(0) s.Schedule.proc.(1);
  check "pairs co-located" s.Schedule.proc.(2) s.Schedule.proc.(3)

let test_source_round_robin_balances () =
  let dag =
    Dag.of_edges ~n:6 ~edges:[] ~work:[| 6; 5; 4; 3; 2; 1 |] ~comm:(Array.make 6 1)
  in
  let m = Machine.uniform ~p:2 ~g:1 ~l:0 in
  let s = Source_heuristic.schedule m dag in
  (* Clustering is trivial (no shared successors): round-robin by
     decreasing weight gives loads 6+4+2 vs 5+3+1 -> work max 12. *)
  check "balanced-ish" 12 (Bsp_cost.total m s)

(* Properties: both heuristics always produce valid schedules, and
   assign every node exactly once. *)
let prop_heuristics_valid =
  Test_util.qtest ~count:80 "heuristics valid"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (Test_util.arb_machine ()))
    (fun (dag, m) ->
      let check_sched s =
        Validity.is_valid m s
        && Array.for_all (fun q -> q >= 0 && q < m.Machine.p) s.Schedule.proc
        && Array.for_all (fun st -> st >= 0) s.Schedule.step
      in
      check_sched (Bspg.schedule m dag) && check_sched (Source_heuristic.schedule m dag))

(* BSPg should never be worse than executing everything sequentially
   with a superstep per node (a very weak but absolute sanity bound). *)
let prop_bspg_sane_cost =
  Test_util.qtest ~count:60 "bspg cost sane"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (Test_util.arb_machine ()))
    (fun (dag, m) ->
      let s = Bspg.schedule m dag in
      let worst = Dag.total_work dag + (Dag.n dag * m.Machine.l) + (m.Machine.g * Dag.total_comm dag * Machine.max_lambda m * m.Machine.p) in
      Bsp_cost.total m s <= max worst 1)

let () =
  Alcotest.run "heuristics"
    [
      ( "bspg",
        [
          Alcotest.test_case "diamond" `Quick test_bspg_diamond;
          Alcotest.test_case "single processor" `Quick test_bspg_single_proc;
          Alcotest.test_case "independent nodes balanced" `Quick
            test_bspg_independent_nodes_balanced;
        ] );
      ( "source",
        [
          Alcotest.test_case "first superstep clusters" `Quick
            test_source_first_superstep_clusters;
          Alcotest.test_case "absorbs successors" `Quick test_source_absorbs_successors;
          Alcotest.test_case "round robin balances" `Quick test_source_round_robin_balances;
        ] );
      ("property", [ prop_heuristics_valid; prop_bspg_sane_cost ]);
    ]
