(* Shared helpers for the test suites: random DAG generation for
   property-based tests and a few fixed example graphs. *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  Dag.of_edges ~n:4
    ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
    ~work:[| 1; 2; 3; 4 |] ~comm:[| 1; 1; 2; 1 |]

let chain k =
  Dag.of_edges ~n:k
    ~edges:(List.init (k - 1) (fun i -> (i, i + 1)))
    ~work:(Array.make k 1) ~comm:(Array.make k 1)

(* Random layered DAG: nodes get random weights; edges only point from
   lower to higher ids, so acyclicity holds by construction. *)
let random_dag rng ~n ~edge_prob ~max_w ~max_c =
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng edge_prob then edges := (u, v) :: !edges
    done
  done;
  let work = Array.init n (fun _ -> 1 + Rng.int rng max_w) in
  let comm = Array.init n (fun _ -> 1 + Rng.int rng max_c) in
  Dag.of_edges ~n ~edges:!edges ~work ~comm

(* QCheck generator wrapping random_dag; the seed is the shrink target so
   failures reproduce deterministically. *)
let arb_dag ?(max_n = 24) () =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 1 max_n in
    let* dense = bool in
    let rng = Rng.create seed in
    let edge_prob = if dense then 0.3 else 0.1 in
    return (random_dag rng ~n ~edge_prob ~max_w:5 ~max_c:4))

let arb_machine ?(max_p = 8) () =
  QCheck2.Gen.(
    let* p_exp = int_range 0 3 in
    let p = min max_p (1 lsl p_exp) in
    let* g = int_range 0 4 in
    let* l = int_range 0 6 in
    let* numa = bool in
    if numa && p >= 2 then
      let* delta = int_range 1 4 in
      return (Machine.numa_tree ~p ~g ~l ~delta)
    else return (Machine.uniform ~p ~g ~l))

let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Substring search used by rendering tests. *)
let contains_substring haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0
