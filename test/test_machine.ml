let check = Alcotest.(check int)

let test_uniform () =
  let m = Machine.uniform ~p:4 ~g:2 ~l:5 in
  check "p" 4 m.Machine.p;
  check "g" 2 m.Machine.g;
  check "l" 5 m.Machine.l;
  check "diag" 0 (Machine.lambda m 2 2);
  check "off-diag" 1 (Machine.lambda m 0 3);
  Alcotest.(check bool) "uniform" true (Machine.is_uniform m);
  Alcotest.(check (float 1e-9)) "avg" 1.0 (Machine.average_lambda m)

let test_numa_tree_p8_delta3 () =
  (* The paper's example (Section 6): with P=8 and delta=3, costs from
     processor 0 are 1 to proc 1, 3 to procs 2-3, 9 to procs 4-7. *)
  let m = Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:3 in
  check "sibling" 1 (Machine.lambda m 0 1);
  check "level2 a" 3 (Machine.lambda m 0 2);
  check "level2 b" 3 (Machine.lambda m 0 3);
  check "level3 a" 9 (Machine.lambda m 0 4);
  check "level3 b" 9 (Machine.lambda m 0 7);
  check "diag" 0 (Machine.lambda m 5 5);
  check "symmetric" (Machine.lambda m 3 6) (Machine.lambda m 6 3);
  check "max" 9 (Machine.max_lambda m);
  Alcotest.(check bool) "not uniform" false (Machine.is_uniform m)

let test_numa_tree_p16_delta4 () =
  (* lambda_{1,16} = delta^(log2 P - 1) = 4^3 = 64 (Section 7.3 / C.4). *)
  let m = Machine.numa_tree ~p:16 ~g:1 ~l:5 ~delta:4 in
  check "farthest" 64 (Machine.lambda m 0 15);
  check "nearest" 1 (Machine.lambda m 0 1)

let test_numa_tree_delta1_is_uniform () =
  let m = Machine.numa_tree ~p:4 ~g:1 ~l:0 ~delta:1 in
  Alcotest.(check bool) "delta=1 uniform" true (Machine.is_uniform m)

let test_explicit () =
  let m = Machine.explicit ~g:1 ~l:0 ~lambda:[| [| 0; 5 |]; [| 2; 0 |] |] in
  check "asymmetric ok" 5 (Machine.lambda m 0 1);
  check "asymmetric ok rev" 2 (Machine.lambda m 1 0);
  Alcotest.(check (float 1e-9)) "avg" 3.5 (Machine.average_lambda m)

let test_validation () =
  let raises f = try f (); false with Invalid_argument _ -> true in
  Alcotest.(check bool) "p=0" true (raises (fun () -> ignore (Machine.uniform ~p:0 ~g:1 ~l:1)));
  Alcotest.(check bool) "neg g" true (raises (fun () -> ignore (Machine.uniform ~p:2 ~g:(-1) ~l:1)));
  Alcotest.(check bool) "non-pow2 tree" true
    (raises (fun () -> ignore (Machine.numa_tree ~p:6 ~g:1 ~l:1 ~delta:2)));
  Alcotest.(check bool) "nonzero diag" true
    (raises (fun () -> ignore (Machine.explicit ~g:1 ~l:0 ~lambda:[| [| 1 |] |])));
  Alcotest.(check bool) "ragged" true
    (raises (fun () -> ignore (Machine.explicit ~g:1 ~l:0 ~lambda:[| [| 0; 1 |]; [| 1 |] |])))

let test_avg_lambda_tree () =
  (* P=8, delta=3: per processor 1 sibling at 1, 2 at 3, 4 at 9 ->
     avg = (1 + 6 + 36) / 7. *)
  let m = Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:3 in
  Alcotest.(check (float 1e-9)) "avg" (43.0 /. 7.0) (Machine.average_lambda m)

let () =
  Alcotest.run "machine"
    [
      ( "unit",
        [
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "numa tree p8 d3" `Quick test_numa_tree_p8_delta3;
          Alcotest.test_case "numa tree p16 d4" `Quick test_numa_tree_p16_delta4;
          Alcotest.test_case "delta1 uniform" `Quick test_numa_tree_delta1_is_uniform;
          Alcotest.test_case "explicit" `Quick test_explicit;
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "avg lambda tree" `Quick test_avg_lambda_tree;
        ] );
    ]
