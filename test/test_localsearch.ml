let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let start_schedule rng dag p =
  (* A valid but deliberately naive starting point: wavefront levels with
     random processors. *)
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
  Schedule.of_assignment dag ~proc ~step:level

let test_cost_table_incremental () =
  let m = Machine.uniform ~p:3 ~g:2 ~l:4 in
  let t = Cost_table.create m ~num_steps:2 in
  check "latency only" 8 (Cost_table.total t);
  Cost_table.add_work t ~step:0 ~proc:1 10;
  Cost_table.add_send t ~step:0 ~proc:1 3;
  Cost_table.add_recv t ~step:0 ~proc:2 3;
  Cost_table.refresh t;
  check "after adds" (10 + (2 * 3) + 4 + 4) (Cost_table.total t);
  Cost_table.assert_consistent t;
  Cost_table.add_work t ~step:0 ~proc:1 (-10);
  Cost_table.refresh t;
  check "after removal" (0 + 6 + 8) (Cost_table.total t);
  Cost_table.assert_consistent t

let test_cost_table_empty () =
  (* A schedule with no supersteps (empty DAG) must give a working,
     zero-cost table rather than tripping on empty backing arrays. *)
  let m = Machine.uniform ~p:2 ~g:3 ~l:7 in
  let t = Cost_table.create m ~num_steps:0 in
  check "empty total" 0 (Cost_table.total t);
  Cost_table.refresh t;
  Cost_table.assert_consistent t;
  check "still empty" 0 (Cost_table.total t)

let test_hc_improves_bad_schedule () =
  (* A chain scattered across processors: HC should pull it together.
     check:true cross-validates every read-only delta against the
     mutating path. *)
  let dag = Test_util.chain 6 in
  let m = Machine.uniform ~p:3 ~g:5 ~l:2 in
  let bad =
    Schedule.of_assignment dag ~proc:[| 0; 1; 2; 0; 1; 2 |] ~step:[| 0; 1; 2; 3; 4; 5 |]
  in
  let improved, stats = Hc.improve ~check:true m bad in
  check_bool "valid" true (Validity.is_valid m improved);
  check_bool "strictly better" true (stats.Hc.final_cost < stats.Hc.initial_cost);
  check_bool "moves applied" true (stats.Hc.moves_applied > 0)

let test_hc_respects_max_moves () =
  let rng = Rng.create 3 in
  let dag = Test_util.random_dag rng ~n:30 ~edge_prob:0.15 ~max_w:4 ~max_c:3 in
  let m = Machine.uniform ~p:4 ~g:3 ~l:2 in
  let s = start_schedule rng dag 4 in
  let _, stats = Hc.improve ~check:true ~max_moves:2 m s in
  check_bool "capped" true (stats.Hc.moves_applied <= 2)

let test_worklist_matches_reference () =
  (* The worklist engine explores the same neighbourhood as the
     exhaustive apply/rollback sweep it replaced, but once a move is
     accepted the scan orders diverge, so the two can settle in
     different — equally locally optimal — minima. Two guarantees are
     checked: the worklist result is a genuine local minimum (its final
     verification sweep implies the reference finds nothing left to
     improve), and on these instances its final cost is no worse than
     the reference's. *)
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let dag = Test_util.random_dag rng ~n:40 ~edge_prob:0.12 ~max_w:5 ~max_c:4 in
      let m = Machine.uniform ~p:4 ~g:3 ~l:2 in
      let s = start_schedule rng dag 4 in
      let worklist_sched, worklist = Hc.improve ~check:true m s in
      let _, reference = Hc.improve_reference ~check:true m s in
      let _, at_fixpoint = Hc.improve_reference ~check:true m worklist_sched in
      check "worklist result is a local minimum" 0 at_fixpoint.Hc.moves_applied;
      check_bool "worklist no worse than reference" true
        (worklist.Hc.final_cost <= reference.Hc.final_cost))
    [ 1; 3; 9; 10; 25 ]

let test_hc_local_minimum_stable () =
  (* Running HC twice: the second run finds no further improvement. *)
  let rng = Rng.create 8 in
  let dag = Test_util.random_dag rng ~n:25 ~edge_prob:0.2 ~max_w:3 ~max_c:3 in
  let m = Machine.uniform ~p:2 ~g:2 ~l:3 in
  let s = start_schedule rng dag 2 in
  let once, _ = Hc.improve ~check:true m s in
  let _twice, stats = Hc.improve ~check:true m once in
  check "no moves at local minimum" 0 stats.Hc.moves_applied

let test_hccs_hides_traffic_behind_peak () =
  (* Since the cost sums per-phase h-relation maxima, moving a transfer
     pays off exactly when it can hide behind another processor pair's
     peak. Producers x (c=4), y (c=1) on p0 and z (c=4) on p2 in step 0;
     consumers of x and y on p1 at step 2, consumer of z on p3 at step 1.
     Lazily, phase 0 carries z (h=4) and phase 1 carries x+y (h=5), total
     9g. Moving x under z's phase-0 peak (different processor pairs run
     in parallel) leaves only y (h=1) in phase 1: total 5g. *)
  let dag =
    Dag.of_edges ~n:6
      ~edges:[ (0, 3); (1, 4); (2, 5) ]
      ~work:(Array.make 6 1) ~comm:[| 4; 1; 4; 1; 1; 1 |]
  in
  let m = Machine.uniform ~p:4 ~g:2 ~l:1 in
  let s =
    Schedule.of_assignment dag ~proc:[| 0; 0; 2; 1; 1; 3 |] ~step:[| 0; 0; 0; 2; 2; 1 |]
  in
  let improved, stats = Hccs.improve m s in
  check_bool "valid" true (Validity.is_valid m improved);
  (* Saves g * 4 = 8. *)
  check "cost delta" 8 (stats.Hccs.initial_cost - stats.Hccs.final_cost)

let test_hccs_noop_when_no_freedom () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  let s = Schedule.of_assignment dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |] in
  let improved, stats = Hccs.improve m s in
  check "no moves" 0 stats.Hccs.moves_applied;
  check_bool "valid" true (Validity.is_valid m improved)

(* A NUMA broadcast where replication pays: two 2-processor clusters
   (lambda 1 inside, 4 across), node 0 (w=1, c=2) on p0 feeding a heavy
   consumer on every other processor. Mirrors the test_schedule fixture. *)
let broadcast_machine () =
  Machine.explicit ~g:1 ~l:5
    ~lambda:
      [| [| 0; 1; 4; 4 |]; [| 1; 0; 4; 4 |]; [| 4; 4; 0; 1 |]; [| 4; 4; 1; 0 |] |]

let broadcast_dag () =
  Dag.of_edges ~n:4
    ~edges:[ (0, 1); (0, 2); (0, 3) ]
    ~work:[| 1; 1; 1; 1 |] ~comm:[| 2; 1; 1; 1 |]

let broadcast_schedule dag = Schedule.of_assignment dag ~proc:[| 0; 1; 2; 3 |] ~step:[| 0; 1; 1; 1 |]

let test_replicate_schedule_broadcast () =
  (* The replication-only pass must discover the cluster-mirror replica:
     replicating node 0 onto the far cluster collapses the h-relation
     from 18 to 2 (cost 30 -> 14). *)
  let m = broadcast_machine () in
  let dag = broadcast_dag () in
  let s = broadcast_schedule dag in
  check "input cost" 30 (Bsp_cost.total m s);
  let r = Hc.replicate_schedule ~check:true m s in
  check_bool "valid" true (Validity.is_valid m r);
  check "replicated cost" 14 (Bsp_cost.total m r);
  check "one replica" 1 (Schedule.num_replicas r);
  Alcotest.(check (list (pair int int))) "on the far cluster" [ (2, 0) ]
    (Schedule.replicas r 0);
  (match Profile.reconcile (Profile.compute m r) (Bsp_cost.breakdown m r) with
   | Ok () -> ()
   | Error msg -> Alcotest.fail ("profile does not reconcile: " ^ msg));
  (* The state also ingests the replicated schedule it produced. *)
  let st = Assignment_state.init m r in
  check "ingested replicas" 1 (Assignment_state.num_replicas_total st);
  check "ingested cost" (Bsp_cost.total m r) (Assignment_state.total_cost st);
  Assignment_state.check_consistent st;
  let snap = Assignment_state.snapshot st in
  Alcotest.(check (list (pair int int))) "snapshot keeps replicas" [ (2, 0) ]
    (Schedule.replicas snap 0);
  Assignment_state.release st

let test_replication_guards () =
  (* Single-node moves and replication never interleave: once the state
     holds replicas the move entry points must refuse to run, and the
     move engine must refuse replicated input outright. *)
  let m = broadcast_machine () in
  let dag = broadcast_dag () in
  let st = Assignment_state.init m (broadcast_schedule dag) in
  check_bool "replication candidate valid" true (Assignment_state.valid_replicate st 0 2);
  let d = Assignment_state.delta_cost_replicate st 0 2 in
  check "delta is the 16-unit comm saving" (-16) d;
  Assignment_state.apply_replicate st 0 2;
  let expect_invalid label f =
    try
      f ();
      Alcotest.fail (label ^ " ran on a replicated state")
    with Invalid_argument _ -> ()
  in
  expect_invalid "delta_cost" (fun () ->
      ignore (Assignment_state.delta_cost st 1 0 1 : int));
  expect_invalid "apply_move" (fun () -> Assignment_state.apply_move st 1 0 1);
  (* A just-added replica is always droppable; dropping restores cost. *)
  check_bool "droppable" true (Assignment_state.valid_drop_replica st 0 2);
  check "drop undoes the delta" (-d) (Assignment_state.delta_cost_drop_replica st 0 2);
  Assignment_state.apply_drop_replica st 0 2;
  Assignment_state.check_consistent st;
  Assignment_state.release st;
  let rep =
    Schedule.of_assignment_replicated m dag ~proc:[| 0; 1; 2; 3 |]
      ~step:[| 0; 1; 1; 1 |] ~replicas:[ (0, 2, 0) ]
  in
  expect_invalid "Hc.improve on replicated input" (fun () ->
      ignore (Hc.improve m rep : Schedule.t * Hc.stats))

(* Properties over random instances. *)
let gen3 =
  QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 100_000)))

let prop_hc_never_worse_and_valid =
  Test_util.qtest ~count:60 "hc monotone + valid" gen3 (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let before = Bsp_cost.total m s in
      let improved, stats = Hc.improve ~check:true m s in
      Validity.is_valid m improved
      && stats.Hc.final_cost <= before
      && Bsp_cost.total m improved = stats.Hc.final_cost)

let prop_hccs_never_worse_and_valid =
  Test_util.qtest ~count:60 "hccs monotone + valid" gen3 (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let before = Bsp_cost.total m s in
      let improved, stats = Hccs.improve m s in
      Validity.is_valid m improved
      && stats.Hccs.final_cost <= before
      && Bsp_cost.total m improved = stats.Hccs.final_cost)

(* The incremental tables must agree exactly with the reference cost
   evaluator after a full HC run (the apply/undo cycle keeps state
   consistent). This is implicitly checked by final_cost above; here we
   additionally drive the table through explicit moves. *)
let prop_hc_final_cost_exact =
  Test_util.qtest ~count:60 "hc reported cost exact" gen3 (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let improved, stats = Hc.improve ~check:true ~max_moves:5 m s in
      Bsp_cost.total m improved = stats.Hc.final_cost)

(* The sharded propose/merge/apply engine must be bit-identical to the
   sequential worklist at every jobs and shard count: same final cost,
   same stats block, and the exact same applied-move sequence (captured
   via on_apply). Both an unbounded run and a budget-capped run are
   compared — the capped case exercises the early-halt path where the
   budget runs out mid-window and the rest of the window must stay
   queued exactly as the sequential engine would leave it. *)
let prop_sharded_bit_identical =
  Test_util.qtest ~count:25 "sharded hc bit-identical to sequential" gen3
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let run ~jobs ~shards ~capped =
        let moves = ref [] in
        let budget = if capped then Budget.steps 150 else Budget.unlimited () in
        let sched, stats =
          Par.with_jobs jobs (fun () ->
              Hc.improve ~budget ~shards
                ~on_apply:(fun v p2 s2 -> moves := (v, p2, s2) :: !moves)
                m s)
        in
        (Bsp_cost.total m sched, stats, List.rev !moves)
      in
      List.for_all
        (fun capped ->
          let base = run ~jobs:1 ~shards:1 ~capped in
          List.for_all
            (fun (jobs, shards) -> run ~jobs ~shards ~capped = base)
            [ (1, 2); (2, 2); (2, 4); (4, 4) ])
        [ false; true ])

(* Drive the shared incremental state through random valid move
   sequences: every read-only evaluation path (pairwise, base-cached,
   whole-row) must predict exactly the cost change apply_move then
   produces, the running total must equal the from-scratch cost of the
   snapshot, and the first_need/cost-table bookkeeping must stay
   internally consistent. *)
let prop_delta_matches_apply =
  Test_util.qtest ~count:40 "delta evaluation matches apply_move" gen3
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let p = m.Machine.p in
      let n = Dag.n dag in
      let s = start_schedule rng dag p in
      let st = Assignment_state.init m s in
      let row_out = Array.make p 0 in
      let ok = ref true in
      if n > 0 && Assignment_state.num_steps st > 0 then
        for _trial = 1 to 30 do
          let v = Rng.int rng n in
          let s2 = Assignment_state.step st v + (Rng.int rng 3 - 1) in
          let p2 = Rng.int rng p in
          if Assignment_state.valid_move st v p2 s2 then begin
            let d = Assignment_state.delta_cost st v p2 s2 in
            if Assignment_state.delta_cost_cached st v p2 s2 <> d then ok := false;
            let row_valid = ref true in
            for q = 0 to p - 1 do
              if not (Assignment_state.valid_move st v q s2) then row_valid := false
            done;
            if !row_valid then begin
              Assignment_state.delta_cost_row st v ~s2 row_out;
              for q = 0 to p - 1 do
                let expect =
                  if q = p2 then d else Assignment_state.delta_cost st v q s2
                in
                if row_out.(q) <> expect then ok := false
              done
            end;
            let before = Assignment_state.total_cost st in
            Assignment_state.apply_move st v p2 s2;
            if Assignment_state.total_cost st <> before + d then ok := false;
            (* The state keeps the superstep count fixed, so its total
               includes l for trailing supersteps a move emptied; the
               snapshot drops them (Schedule.compact would too). *)
            let snap = Assignment_state.snapshot st in
            let trailing =
              Assignment_state.num_steps st - Schedule.num_supersteps snap
            in
            if
              Assignment_state.total_cost st
              <> Bsp_cost.total m snap + (m.Machine.l * trailing)
            then ok := false;
            Assignment_state.check_consistent st
          end
        done;
      !ok)

(* Drive the state through random replicate/drop sequences: every
   read-only replication delta must predict the applied cost change
   exactly, dropping a fresh replica must refund it exactly, and the
   running total must match the from-scratch cost of a valid,
   reconciling snapshot throughout. *)
let prop_replicate_delta_matches_apply =
  Test_util.qtest ~count:40 "replication delta matches apply" gen3
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let p = m.Machine.p in
      let n = Dag.n dag in
      let s = start_schedule rng dag p in
      let st = Assignment_state.init m s in
      let ok = ref true in
      if n > 0 && p > 1 then
        for _trial = 1 to 20 do
          let v = Rng.int rng n in
          let q = Rng.int rng p in
          if Assignment_state.valid_replicate st v q then begin
            let d = Assignment_state.delta_cost_replicate st v q in
            let before = Assignment_state.total_cost st in
            Assignment_state.apply_replicate st v q;
            if Assignment_state.total_cost st <> before + d then ok := false;
            Assignment_state.check_consistent st;
            let snap = Assignment_state.snapshot st in
            let trailing =
              Assignment_state.num_steps st - Schedule.num_supersteps snap
            in
            if
              Assignment_state.total_cost st
              <> Bsp_cost.total m snap + (m.Machine.l * trailing)
            then ok := false;
            if not (Validity.is_valid m snap) then ok := false;
            (match
               Profile.reconcile (Profile.compute m snap) (Bsp_cost.breakdown m snap)
             with
            | Ok () -> ()
            | Error _ -> ok := false);
            (* Half the time, drop it again: the drop delta must be the
               exact refund of the replicate delta. *)
            if Rng.int rng 2 = 0 then begin
              if not (Assignment_state.valid_drop_replica st v q) then ok := false
              else begin
                if Assignment_state.delta_cost_drop_replica st v q <> -d then
                  ok := false;
                Assignment_state.apply_drop_replica st v q;
                if Assignment_state.total_cost st <> before then ok := false;
                Assignment_state.check_consistent st
              end
            end
          end
        done;
      Assignment_state.release st;
      !ok)

(* The move phase is identical with and without replication (the phase
   runs strictly after move convergence and only applies strict
   improvements), so enabling it can never produce a worse schedule; the
   reported cost stays exact and the result valid and reconciling. *)
let prop_hc_replicate_never_worse =
  Test_util.qtest ~count:40 "hc with replication monotone + valid" gen3
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let _, plain = Hc.improve ~check:true m s in
      let rep_sched, rep = Hc.improve ~check:true ~replicate:true m s in
      Validity.is_valid m rep_sched
      && rep.Hc.final_cost <= plain.Hc.final_cost
      && Bsp_cost.total m rep_sched = rep.Hc.final_cost
      && (rep.Hc.replicas_added > 0 || rep.Hc.final_cost = plain.Hc.final_cost)
      && (match
            Profile.reconcile (Profile.compute m rep_sched)
              (Bsp_cost.breakdown m rep_sched)
          with
         | Ok () -> true
         | Error _ -> false))

let () =
  Alcotest.run "localsearch"
    [
      ( "unit",
        [
          Alcotest.test_case "cost table incremental" `Quick test_cost_table_incremental;
          Alcotest.test_case "cost table empty" `Quick test_cost_table_empty;
          Alcotest.test_case "hc improves bad schedule" `Quick test_hc_improves_bad_schedule;
          Alcotest.test_case "hc max moves" `Quick test_hc_respects_max_moves;
          Alcotest.test_case "hc local minimum stable" `Quick test_hc_local_minimum_stable;
          Alcotest.test_case "worklist matches reference" `Quick
            test_worklist_matches_reference;
          Alcotest.test_case "hccs hides traffic behind peak" `Quick
            test_hccs_hides_traffic_behind_peak;
          Alcotest.test_case "hccs no freedom" `Quick test_hccs_noop_when_no_freedom;
          Alcotest.test_case "replicate_schedule on a NUMA broadcast" `Quick
            test_replicate_schedule_broadcast;
          Alcotest.test_case "replication guards" `Quick test_replication_guards;
        ] );
      ( "property",
        [
          prop_hc_never_worse_and_valid;
          prop_hccs_never_worse_and_valid;
          prop_hc_final_cost_exact;
          prop_sharded_bit_identical;
          prop_delta_matches_apply;
          prop_replicate_delta_matches_apply;
          prop_hc_replicate_never_worse;
        ] );
    ]
