let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let start_schedule rng dag p =
  (* A valid but deliberately naive starting point: wavefront levels with
     random processors. *)
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
  Schedule.of_assignment dag ~proc ~step:level

let test_cost_table_incremental () =
  let m = Machine.uniform ~p:3 ~g:2 ~l:4 in
  let t = Cost_table.create m ~num_steps:2 in
  check "latency only" 8 (Cost_table.total t);
  Cost_table.add_work t ~step:0 ~proc:1 10;
  Cost_table.add_send t ~step:0 ~proc:1 3;
  Cost_table.add_recv t ~step:0 ~proc:2 3;
  Cost_table.refresh t;
  check "after adds" (10 + (2 * 3) + 4 + 4) (Cost_table.total t);
  Cost_table.assert_consistent t;
  Cost_table.add_work t ~step:0 ~proc:1 (-10);
  Cost_table.refresh t;
  check "after removal" (0 + 6 + 8) (Cost_table.total t);
  Cost_table.assert_consistent t

let test_cost_table_empty () =
  (* A schedule with no supersteps (empty DAG) must give a working,
     zero-cost table rather than tripping on empty backing arrays. *)
  let m = Machine.uniform ~p:2 ~g:3 ~l:7 in
  let t = Cost_table.create m ~num_steps:0 in
  check "empty total" 0 (Cost_table.total t);
  Cost_table.refresh t;
  Cost_table.assert_consistent t;
  check "still empty" 0 (Cost_table.total t)

let test_hc_improves_bad_schedule () =
  (* A chain scattered across processors: HC should pull it together.
     check:true cross-validates every read-only delta against the
     mutating path. *)
  let dag = Test_util.chain 6 in
  let m = Machine.uniform ~p:3 ~g:5 ~l:2 in
  let bad =
    Schedule.of_assignment dag ~proc:[| 0; 1; 2; 0; 1; 2 |] ~step:[| 0; 1; 2; 3; 4; 5 |]
  in
  let improved, stats = Hc.improve ~check:true m bad in
  check_bool "valid" true (Validity.is_valid m improved);
  check_bool "strictly better" true (stats.Hc.final_cost < stats.Hc.initial_cost);
  check_bool "moves applied" true (stats.Hc.moves_applied > 0)

let test_hc_respects_max_moves () =
  let rng = Rng.create 3 in
  let dag = Test_util.random_dag rng ~n:30 ~edge_prob:0.15 ~max_w:4 ~max_c:3 in
  let m = Machine.uniform ~p:4 ~g:3 ~l:2 in
  let s = start_schedule rng dag 4 in
  let _, stats = Hc.improve ~check:true ~max_moves:2 m s in
  check_bool "capped" true (stats.Hc.moves_applied <= 2)

let test_worklist_matches_reference () =
  (* The worklist engine explores the same neighbourhood as the
     exhaustive apply/rollback sweep it replaced, but once a move is
     accepted the scan orders diverge, so the two can settle in
     different — equally locally optimal — minima. Two guarantees are
     checked: the worklist result is a genuine local minimum (its final
     verification sweep implies the reference finds nothing left to
     improve), and on these instances its final cost is no worse than
     the reference's. *)
  List.iter
    (fun seed ->
      let rng = Rng.create seed in
      let dag = Test_util.random_dag rng ~n:40 ~edge_prob:0.12 ~max_w:5 ~max_c:4 in
      let m = Machine.uniform ~p:4 ~g:3 ~l:2 in
      let s = start_schedule rng dag 4 in
      let worklist_sched, worklist = Hc.improve ~check:true m s in
      let _, reference = Hc.improve_reference ~check:true m s in
      let _, at_fixpoint = Hc.improve_reference ~check:true m worklist_sched in
      check "worklist result is a local minimum" 0 at_fixpoint.Hc.moves_applied;
      check_bool "worklist no worse than reference" true
        (worklist.Hc.final_cost <= reference.Hc.final_cost))
    [ 1; 3; 9; 10; 25 ]

let test_hc_local_minimum_stable () =
  (* Running HC twice: the second run finds no further improvement. *)
  let rng = Rng.create 8 in
  let dag = Test_util.random_dag rng ~n:25 ~edge_prob:0.2 ~max_w:3 ~max_c:3 in
  let m = Machine.uniform ~p:2 ~g:2 ~l:3 in
  let s = start_schedule rng dag 2 in
  let once, _ = Hc.improve ~check:true m s in
  let _twice, stats = Hc.improve ~check:true m once in
  check "no moves at local minimum" 0 stats.Hc.moves_applied

let test_hccs_hides_traffic_behind_peak () =
  (* Since the cost sums per-phase h-relation maxima, moving a transfer
     pays off exactly when it can hide behind another processor pair's
     peak. Producers x (c=4), y (c=1) on p0 and z (c=4) on p2 in step 0;
     consumers of x and y on p1 at step 2, consumer of z on p3 at step 1.
     Lazily, phase 0 carries z (h=4) and phase 1 carries x+y (h=5), total
     9g. Moving x under z's phase-0 peak (different processor pairs run
     in parallel) leaves only y (h=1) in phase 1: total 5g. *)
  let dag =
    Dag.of_edges ~n:6
      ~edges:[ (0, 3); (1, 4); (2, 5) ]
      ~work:(Array.make 6 1) ~comm:[| 4; 1; 4; 1; 1; 1 |]
  in
  let m = Machine.uniform ~p:4 ~g:2 ~l:1 in
  let s =
    Schedule.of_assignment dag ~proc:[| 0; 0; 2; 1; 1; 3 |] ~step:[| 0; 0; 0; 2; 2; 1 |]
  in
  let improved, stats = Hccs.improve m s in
  check_bool "valid" true (Validity.is_valid m improved);
  (* Saves g * 4 = 8. *)
  check "cost delta" 8 (stats.Hccs.initial_cost - stats.Hccs.final_cost)

let test_hccs_noop_when_no_freedom () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  let s = Schedule.of_assignment dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |] in
  let improved, stats = Hccs.improve m s in
  check "no moves" 0 stats.Hccs.moves_applied;
  check_bool "valid" true (Validity.is_valid m improved)

(* Properties over random instances. *)
let gen3 =
  QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 100_000)))

let prop_hc_never_worse_and_valid =
  Test_util.qtest ~count:60 "hc monotone + valid" gen3 (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let before = Bsp_cost.total m s in
      let improved, stats = Hc.improve ~check:true m s in
      Validity.is_valid m improved
      && stats.Hc.final_cost <= before
      && Bsp_cost.total m improved = stats.Hc.final_cost)

let prop_hccs_never_worse_and_valid =
  Test_util.qtest ~count:60 "hccs monotone + valid" gen3 (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let before = Bsp_cost.total m s in
      let improved, stats = Hccs.improve m s in
      Validity.is_valid m improved
      && stats.Hccs.final_cost <= before
      && Bsp_cost.total m improved = stats.Hccs.final_cost)

(* The incremental tables must agree exactly with the reference cost
   evaluator after a full HC run (the apply/undo cycle keeps state
   consistent). This is implicitly checked by final_cost above; here we
   additionally drive the table through explicit moves. *)
let prop_hc_final_cost_exact =
  Test_util.qtest ~count:60 "hc reported cost exact" gen3 (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let s = start_schedule rng dag m.Machine.p in
      let improved, stats = Hc.improve ~check:true ~max_moves:5 m s in
      Bsp_cost.total m improved = stats.Hc.final_cost)

(* Drive the shared incremental state through random valid move
   sequences: every read-only evaluation path (pairwise, base-cached,
   whole-row) must predict exactly the cost change apply_move then
   produces, the running total must equal the from-scratch cost of the
   snapshot, and the first_need/cost-table bookkeeping must stay
   internally consistent. *)
let prop_delta_matches_apply =
  Test_util.qtest ~count:40 "delta evaluation matches apply_move" gen3
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let p = m.Machine.p in
      let n = Dag.n dag in
      let s = start_schedule rng dag p in
      let st = Assignment_state.init m s in
      let row_out = Array.make p 0 in
      let ok = ref true in
      if n > 0 && Assignment_state.num_steps st > 0 then
        for _trial = 1 to 30 do
          let v = Rng.int rng n in
          let s2 = Assignment_state.step st v + (Rng.int rng 3 - 1) in
          let p2 = Rng.int rng p in
          if Assignment_state.valid_move st v p2 s2 then begin
            let d = Assignment_state.delta_cost st v p2 s2 in
            if Assignment_state.delta_cost_cached st v p2 s2 <> d then ok := false;
            let row_valid = ref true in
            for q = 0 to p - 1 do
              if not (Assignment_state.valid_move st v q s2) then row_valid := false
            done;
            if !row_valid then begin
              Assignment_state.delta_cost_row st v ~s2 row_out;
              for q = 0 to p - 1 do
                let expect =
                  if q = p2 then d else Assignment_state.delta_cost st v q s2
                in
                if row_out.(q) <> expect then ok := false
              done
            end;
            let before = Assignment_state.total_cost st in
            Assignment_state.apply_move st v p2 s2;
            if Assignment_state.total_cost st <> before + d then ok := false;
            (* The state keeps the superstep count fixed, so its total
               includes l for trailing supersteps a move emptied; the
               snapshot drops them (Schedule.compact would too). *)
            let snap = Assignment_state.snapshot st in
            let trailing =
              Assignment_state.num_steps st - Schedule.num_supersteps snap
            in
            if
              Assignment_state.total_cost st
              <> Bsp_cost.total m snap + (m.Machine.l * trailing)
            then ok := false;
            Assignment_state.check_consistent st
          end
        done;
      !ok)

let () =
  Alcotest.run "localsearch"
    [
      ( "unit",
        [
          Alcotest.test_case "cost table incremental" `Quick test_cost_table_incremental;
          Alcotest.test_case "cost table empty" `Quick test_cost_table_empty;
          Alcotest.test_case "hc improves bad schedule" `Quick test_hc_improves_bad_schedule;
          Alcotest.test_case "hc max moves" `Quick test_hc_respects_max_moves;
          Alcotest.test_case "hc local minimum stable" `Quick test_hc_local_minimum_stable;
          Alcotest.test_case "worklist matches reference" `Quick
            test_worklist_matches_reference;
          Alcotest.test_case "hccs hides traffic behind peak" `Quick
            test_hccs_hides_traffic_behind_peak;
          Alcotest.test_case "hccs no freedom" `Quick test_hccs_noop_when_no_freedom;
        ] );
      ( "property",
        [
          prop_hc_never_worse_and_valid;
          prop_hccs_never_worse_and_valid;
          prop_hc_final_cost_exact;
          prop_delta_matches_apply;
        ] );
    ]
