let check_bool = Alcotest.(check bool)

let fast_test_limits =
  {
    Pipeline.default_limits with
    Pipeline.hc_evals = 50_000;
    hccs_evals = 20_000;
    ilp_full_nodes = 200;
    ilp_part_nodes = 60;
    ilp_cs_nodes = 60;
    stage_seconds = Some 5.0;
  }

let test_pipeline_monotone_stages () =
  let rng = Rng.create 2 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:12 ~q:0.2) ~k:3 in
  let m = Machine.uniform ~p:4 ~g:3 ~l:5 in
  let sched, st = Pipeline.run ~limits:fast_test_limits m dag in
  check_bool "valid" true (Validity.is_valid m sched);
  check_bool "ls <= init" true (st.Pipeline.after_local_search <= st.Pipeline.init_cost);
  check_bool "ilp <= ls" true (st.Pipeline.after_ilp_part <= st.Pipeline.after_local_search);
  check_bool "final <= ilp" true (st.Pipeline.final_cost <= st.Pipeline.after_ilp_part);
  check_bool "final matches schedule" true
    (Bsp_cost.total m sched = st.Pipeline.final_cost)

let test_pipeline_beats_baselines_usually () =
  (* Not a universal theorem, but on this fixed seed/instance the
     framework must beat Cilk (the paper's headline behaviour). *)
  let rng = Rng.create 5 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:20 ~q:0.15) ~k:4 in
  let m = Machine.uniform ~p:4 ~g:3 ~l:5 in
  let _, st = Pipeline.run ~limits:fast_test_limits m dag in
  let cilk = Bsp_cost.total m (Cilk.schedule dag ~p:4 ~seed:1) in
  check_bool "beats cilk" true (st.Pipeline.final_cost < cilk)

let test_pipeline_single_processor () =
  let dag = Test_util.chain 6 in
  let m = Machine.uniform ~p:1 ~g:5 ~l:3 in
  let sched, st = Pipeline.run ~limits:fast_test_limits m dag in
  check_bool "valid" true (Validity.is_valid m sched);
  (* One processor: total work + one latency is optimal. *)
  Alcotest.(check int) "optimal" (6 + 3) st.Pipeline.final_cost

let test_pipeline_ilp_init_enabled () =
  let rng = Rng.create 7 in
  let dag = Finegrained.spmv (Sparse_matrix.random rng ~n:6 ~q:0.3) in
  let m = Machine.uniform ~p:4 ~g:1 ~l:5 in
  let limits = { fast_test_limits with Pipeline.use_ilp_init = true } in
  let sched, _ = Pipeline.run ~limits m dag in
  check_bool "valid" true (Validity.is_valid m sched)

let test_multilevel_pipeline () =
  let rng = Rng.create 9 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:15 ~q:0.15) ~k:3 in
  let m = Machine.numa_tree ~p:8 ~g:1 ~l:5 ~delta:4 in
  let ml = Pipeline.run_multilevel ~limits:fast_test_limits m dag in
  check_bool "valid" true (Validity.is_valid m ml);
  let single = Pipeline.run_multilevel_ratio ~limits:fast_test_limits ~ratio:0.3 m dag in
  check_bool "single ratio valid" true (Validity.is_valid m single)

let test_experiment_evaluate () =
  let rng = Rng.create 11 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:10 ~q:0.2) ~k:2 in
  let m = Machine.uniform ~p:2 ~g:2 ~l:5 in
  let options =
    {
      Experiment.default_options with
      Experiment.limits = fast_test_limits;
      with_list_baselines = true;
      with_multilevel = true;
    }
  in
  let r = Experiment.evaluate options m dag in
  check_bool "ours <= hdagg or close" true (r.Experiment.ours > 0);
  check_bool "has list baselines" true
    (r.Experiment.bl_est <> None && r.Experiment.etf <> None);
  check_bool "has ml" true (Experiment.ml_best r <> None);
  check_bool "ml per ratio" true
    (List.length r.Experiment.multilevel
    = List.length Experiment.default_options.Experiment.ml_ratios);
  check_bool "stage final = ours" true
    (r.Experiment.stage.Pipeline.final_cost = r.Experiment.ours)

let test_aggregation_math () =
  Alcotest.(check (float 1e-9)) "ratio" 0.5 (Experiment.ratio 5 10);
  Alcotest.(check (float 1e-9)) "zero baseline" 1.0 (Experiment.ratio 0 0);
  Alcotest.(check (float 1e-9)) "reduction" 44.0 (Experiment.reduction_percent 0.56);
  Alcotest.(check (float 1e-9)) "geo mean" 2.0
    (Statistics.geometric_mean [ 1.0; 4.0 ]);
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Statistics.mean [ 1.0; 4.0 ])

let prop_pipeline_valid_and_never_worse_than_inits =
  Test_util.qtest ~count:12 "pipeline valid"
    QCheck2.Gen.(pair (Test_util.arb_dag ~max_n:18 ()) (Test_util.arb_machine ~max_p:4 ()))
    (fun (dag, m) ->
      let sched, st = Pipeline.run ~limits:fast_test_limits m dag in
      Validity.is_valid m sched && st.Pipeline.final_cost <= st.Pipeline.init_cost)

let () =
  Alcotest.run "pipeline"
    [
      ( "unit",
        [
          Alcotest.test_case "stage monotonicity" `Quick test_pipeline_monotone_stages;
          Alcotest.test_case "beats cilk on fixed instance" `Quick
            test_pipeline_beats_baselines_usually;
          Alcotest.test_case "single processor optimal" `Quick test_pipeline_single_processor;
          Alcotest.test_case "ilp-init enabled" `Quick test_pipeline_ilp_init_enabled;
          Alcotest.test_case "multilevel pipeline" `Quick test_multilevel_pipeline;
          Alcotest.test_case "experiment evaluate" `Quick test_experiment_evaluate;
          Alcotest.test_case "aggregation math" `Quick test_aggregation_math;
        ] );
      ("property", [ prop_pipeline_valid_and_never_worse_than_inits ]);
    ]
