let check_float = Alcotest.(check (float 1e-6))
let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let knapsack () =
  (* max 10a + 6b + 4c s.t. 5a + 4b + 3c <= 8 -> a, c. *)
  let m = Ilp.create () in
  let a = Ilp.binary m "a" and b = Ilp.binary m "b" and c = Ilp.binary m "c" in
  Ilp.add_le m [ (a, 5.0); (b, 4.0); (c, 3.0) ] 8.0;
  Ilp.set_objective m [ (a, -10.0); (b, -6.0); (c, -4.0) ];
  (m, a, b, c)

let test_knapsack () =
  let m, a, b, c = knapsack () in
  let r = Branch_bound.solve m in
  check_bool "optimal" true r.Branch_bound.proven_optimal;
  check_float "obj" (-14.0) r.Branch_bound.objective;
  match r.Branch_bound.solution with
  | Some x ->
    check_float "a" 1.0 x.(a);
    check_float "b" 0.0 x.(b);
    check_float "c" 1.0 x.(c)
  | None -> Alcotest.fail "no solution"

let test_cutoff_blocks_equal_solutions () =
  let m, _, _, _ = knapsack () in
  (* With the optimum as cutoff, nothing strictly better exists. *)
  let r = Branch_bound.solve ~cutoff:(-14.0) m in
  check_bool "no solution" true (r.Branch_bound.solution = None);
  check_float "objective = cutoff" (-14.0) r.Branch_bound.objective;
  (* With a looser cutoff the optimum is found again. *)
  let r2 = Branch_bound.solve ~cutoff:(-13.0) m in
  check_bool "found" true (r2.Branch_bound.solution <> None)

let test_infeasible_model () =
  let m = Ilp.create () in
  let a = Ilp.binary m "a" in
  Ilp.add_ge m [ (a, 1.0) ] 2.0;
  Ilp.set_objective m [ (a, 1.0) ];
  let r = Branch_bound.solve m in
  check_bool "no solution" true (r.Branch_bound.solution = None);
  check_bool "proven" true r.Branch_bound.proven_optimal

let test_mixed_continuous () =
  (* min w s.t. w >= 2a + b, w >= 3 - a, a + b >= 1: a=1 -> w = 2. *)
  let m = Ilp.create () in
  let a = Ilp.binary m "a" and b = Ilp.binary m "b" in
  let w = Ilp.continuous m "w" in
  Ilp.add_ge m [ (w, 1.0); (a, -2.0); (b, -1.0) ] 0.0;
  Ilp.add_ge m [ (w, 1.0); (a, 1.0) ] 3.0;
  Ilp.add_ge m [ (a, 1.0); (b, 1.0) ] 1.0;
  Ilp.set_objective m [ (w, 1.0) ];
  let r = Branch_bound.solve m in
  check_float "obj" 2.0 r.Branch_bound.objective;
  check_bool "optimal" true r.Branch_bound.proven_optimal

let test_budget_stops_search () =
  let m, _, _, _ = knapsack () in
  let r = Branch_bound.solve ~budget:(Budget.steps 1) m in
  check_bool "not proven" true (not r.Branch_bound.proven_optimal);
  check_bool "at most one node" true (r.Branch_bound.nodes_explored <= 1)

let test_node_cap () =
  let m, _, _, _ = knapsack () in
  let r = Branch_bound.solve ~max_nodes:2 m in
  check_bool "caps nodes" true (r.Branch_bound.nodes_explored <= 2)

let test_constraints_satisfied_helper () =
  let m, a, b, c = knapsack () in
  let x = Array.make (Ilp.num_vars m) 0.0 in
  x.(a) <- 1.0;
  check_bool "feasible" true (Ilp.constraints_satisfied m x);
  x.(b) <- 1.0;
  x.(c) <- 1.0;
  check_bool "infeasible" false (Ilp.constraints_satisfied m x);
  check "binaries" 3 (Ilp.num_binaries m);
  check_bool "is_binary" true (Ilp.is_binary m a)

(* Property: branch-and-bound matches exhaustive enumeration on random
   tiny 0/1 models with a continuous max-style variable. *)
let prop_bb_matches_exhaustive =
  let gen =
    QCheck2.Gen.(
      let* seed = int_bound 1_000_000 in
      let* nb = int_range 1 8 in
      let* nc = int_range 1 4 in
      return (seed, nb, nc))
  in
  Test_util.qtest ~count:120 "b&b = exhaustive" gen (fun (seed, nb, nc) ->
      let rng = Rng.create seed in
      let m = Ilp.create () in
      let bins = Array.init nb (fun i -> Ilp.binary m (Printf.sprintf "b%d" i)) in
      let w = Ilp.continuous m "w" in
      (* Knapsack-style rows keep the model feasible (all-zero works). *)
      for _ = 1 to nc do
        let coeffs =
          Array.to_list bins
          |> List.map (fun v -> (v, float_of_int (Rng.int rng 6)))
          |> List.filter (fun (_, c) -> c > 0.0)
        in
        Ilp.add_le m coeffs (float_of_int (2 + Rng.int rng 10))
      done;
      (* w must dominate two random linear forms of the binaries. *)
      let form () =
        (w, 1.0)
        :: (Array.to_list bins
           |> List.map (fun v -> (v, -.float_of_int (Rng.int rng 4)))
           |> List.filter (fun (_, c) -> c <> 0.0))
      in
      Ilp.add_ge m (form ()) 0.0;
      Ilp.add_ge m (form ()) 0.0;
      let obj =
        (w, 1.0)
        :: (Array.to_list bins
           |> List.map (fun v -> (v, float_of_int (Rng.int rng 9 - 4)))
           |> List.filter (fun (_, c) -> c <> 0.0))
      in
      Ilp.set_objective m obj;
      let bb = Branch_bound.solve m in
      let ex = Branch_bound.solve_exhaustive m in
      bb.Branch_bound.proven_optimal
      && Float.abs (bb.Branch_bound.objective -. ex.Branch_bound.objective) < 1e-5)

let () =
  Alcotest.run "ilp"
    [
      ( "unit",
        [
          Alcotest.test_case "knapsack" `Quick test_knapsack;
          Alcotest.test_case "cutoff" `Quick test_cutoff_blocks_equal_solutions;
          Alcotest.test_case "infeasible model" `Quick test_infeasible_model;
          Alcotest.test_case "mixed continuous" `Quick test_mixed_continuous;
          Alcotest.test_case "budget stops" `Quick test_budget_stops_search;
          Alcotest.test_case "node cap" `Quick test_node_cap;
          Alcotest.test_case "constraint checker" `Quick test_constraints_satisfied_helper;
        ] );
      ("property", [ prop_bb_matches_exhaustive ]);
    ]
