let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A two-superstep example in the spirit of Figure 1: two processors
   compute in superstep 0, exchange values in its communication phase,
   and finish in superstep 1.

     proc 0, step 0: node 0 (w=2), node 1 (w=3)
     proc 1, step 0: node 2 (w=1, c=2), node 3 (w=1)
     proc 0, step 1: node 4 (w=2), preds 1 and 2   (2 crosses 1 -> 0)
     proc 1, step 1: node 5 (w=4), preds 3 and 0   (0 crosses 0 -> 1) *)
let example () =
  let dag =
    Dag.of_edges ~n:6
      ~edges:[ (1, 4); (2, 4); (3, 5); (0, 5) ]
      ~work:[| 2; 3; 1; 1; 2; 4 |] ~comm:[| 1; 1; 2; 1; 1; 1 |]
  in
  Schedule.of_assignment dag ~proc:[| 0; 0; 1; 1; 0; 1 |] ~step:[| 0; 0; 0; 0; 1; 1 |]

let test_example_cost_uniform () =
  let s = example () in
  let m = Machine.uniform ~p:2 ~g:3 ~l:5 in
  check_bool "valid" true (Validity.is_valid m s);
  (* Superstep 0: work max(5,2)=5; h-relation: proc0 sends 1 / receives 2,
     proc1 sends 2 / receives 1 -> max 2; cost 5 + 3*2 + 5 = 16.
     Superstep 1: work max(2,4)=4, no comm -> 4 + 0 + 5 = 9. *)
  let b = Bsp_cost.breakdown m s in
  check "supersteps" 2 (Array.length b.Bsp_cost.supersteps);
  check "s0 work" 5 b.Bsp_cost.supersteps.(0).Bsp_cost.work_max;
  check "s0 comm" 2 b.Bsp_cost.supersteps.(0).Bsp_cost.comm_max;
  check "s0 cost" 16 b.Bsp_cost.supersteps.(0).Bsp_cost.cost;
  check "s1 cost" 9 b.Bsp_cost.supersteps.(1).Bsp_cost.cost;
  check "total" 25 b.Bsp_cost.total;
  check "latency part" 10 b.Bsp_cost.latency_total

let test_example_cost_numa () =
  let s = example () in
  (* Asymmetric coefficients: 0 -> 1 costs 2 per unit, 1 -> 0 costs 3.
     Volumes: node 0 (c=1) goes 0 -> 1: 2; node 2 (c=2) goes 1 -> 0: 6.
     h = max over procs of max(send, recv) = 6; s0 = 5 + 3*6 + 5 = 28. *)
  let m = Machine.explicit ~g:3 ~l:5 ~lambda:[| [| 0; 2 |]; [| 3; 0 |] |] in
  check_bool "valid" true (Validity.is_valid m s);
  check "total with NUMA" 37 (Bsp_cost.total m s)

let test_trivial () =
  let dag = Test_util.diamond () in
  let m = Machine.uniform ~p:4 ~g:2 ~l:7 in
  let s = Schedule.trivial dag in
  check_bool "valid" true (Validity.is_valid m s);
  check "cost = total work + l" (10 + 7) (Bsp_cost.total m s)

let test_lazy_comm_dedup () =
  (* u is consumed on proc 1 at steps 2 and 4: one event, at phase 1. *)
  let dag =
    Dag.of_edges ~n:3 ~edges:[ (0, 1); (0, 2) ] ~work:[| 1; 1; 1 |] ~comm:[| 5; 1; 1 |]
  in
  let comm = Schedule.lazy_comm dag ~proc:[| 0; 1; 1 |] ~step:[| 0; 2; 4 |] in
  check "one event" 1 (List.length comm);
  let e = List.hd comm in
  check "node" 0 e.Schedule.node;
  check "phase = first need - 1" 1 e.Schedule.step;
  check "src" 0 e.Schedule.src;
  check "dst" 1 e.Schedule.dst

let test_assignment_validity () =
  let dag = Test_util.chain 2 in
  check_bool "same proc same step ok" true
    (Schedule.assignment_valid dag ~proc:[| 0; 0 |] ~step:[| 0; 0 |]);
  check_bool "same proc backwards bad" false
    (Schedule.assignment_valid dag ~proc:[| 0; 0 |] ~step:[| 1; 0 |]);
  check_bool "cross same step bad" false
    (Schedule.assignment_valid dag ~proc:[| 0; 1 |] ~step:[| 0; 0 |]);
  check_bool "cross later ok" true
    (Schedule.assignment_valid dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |])

let test_validity_missing_event () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  (* Cross-processor edge with an empty communication schedule. *)
  let s = Schedule.make dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |] ~comm:[] in
  check_bool "invalid" false (Validity.is_valid m s);
  check "one error" 1 (List.length (Validity.errors m s))

let test_validity_late_event () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  (* Delivery in phase 1 is too late for a consumer in superstep 1. *)
  let s =
    Schedule.make dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |]
      ~comm:[ { Schedule.node = 0; src = 0; dst = 1; step = 1 } ]
  in
  check_bool "invalid" false (Validity.is_valid m s)

let test_validity_send_from_absent () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:3 ~g:1 ~l:1 in
  (* Node 0 lives on proc 0 but the event claims proc 2 sends it. *)
  let s =
    Schedule.make dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |]
      ~comm:[ { Schedule.node = 0; src = 2; dst = 1; step = 0 } ]
  in
  check_bool "invalid" false (Validity.is_valid m s)

let test_validity_relay_chain () =
  (* 0 computed on p0 step 0; relayed p0 -> p1 (phase 0), p1 -> p2
     (phase 1); consumer on p2 at step 2. Valid per Section 3.2. *)
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:3 ~g:1 ~l:1 in
  let s =
    Schedule.make dag ~proc:[| 0; 2 |] ~step:[| 0; 2 |]
      ~comm:
        [
          { Schedule.node = 0; src = 0; dst = 1; step = 0 };
          { Schedule.node = 0; src = 1; dst = 2; step = 1 };
        ]
  in
  check_bool "relay valid" true (Validity.is_valid m s);
  (* Breaking the chain order invalidates it. *)
  let bad =
    Schedule.make dag ~proc:[| 0; 2 |] ~step:[| 0; 2 |]
      ~comm:
        [
          { Schedule.node = 0; src = 0; dst = 1; step = 1 };
          { Schedule.node = 0; src = 1; dst = 2; step = 1 };
        ]
  in
  check_bool "broken relay invalid" false (Validity.is_valid m bad)

let test_compact () =
  let dag = Test_util.chain 2 in
  let s = Schedule.of_assignment dag ~proc:[| 0; 0 |] ~step:[| 0; 2 |] in
  let c = Schedule.compact s in
  Alcotest.(check (array int)) "renumbered" [| 0; 1 |] c.Schedule.step;
  check "used" 2 (Schedule.used_supersteps s);
  check "supersteps after" 2 (Schedule.num_supersteps c);
  let m = Machine.uniform ~p:2 ~g:1 ~l:5 in
  check_bool "compact cheaper" true (Bsp_cost.total m c < Bsp_cost.total m s)

(* A NUMA broadcast where replication pays: two 2-processor clusters,
   cheap intra-cluster links (lambda 1) and an expensive inter-cluster
   link (lambda 4). Node 0 (w=1, c=2) on p0 feeds one consumer on every
   other processor at step 1. *)
let broadcast_machine () =
  Machine.explicit ~g:1 ~l:5
    ~lambda:
      [| [| 0; 1; 4; 4 |]; [| 1; 0; 4; 4 |]; [| 4; 4; 0; 1 |]; [| 4; 4; 1; 0 |] |]

let broadcast_dag () =
  Dag.of_edges ~n:4
    ~edges:[ (0, 1); (0, 2); (0, 3) ]
    ~work:[| 1; 1; 1; 1 |] ~comm:[| 2; 1; 1; 1 |]

let test_replicated_cost_numa () =
  let m = broadcast_machine () in
  let dag = broadcast_dag () in
  let proc = [| 0; 1; 2; 3 |] and step = [| 0; 1; 1; 1 |] in
  (* Without replication p0 broadcasts to everyone: sends of volume
     2*1 + 2*4 + 2*4 = 18, so superstep 0 costs 1 + 18 + 5 = 24 and
     superstep 1 costs 1 + 0 + 5 = 6. *)
  let plain = Schedule.of_assignment dag ~proc ~step in
  check_bool "plain valid" true (Validity.is_valid m plain);
  check "plain cost" 30 (Bsp_cost.total m plain);
  (* Replicating node 0 onto p2 satisfies p2 locally and lets p3 fetch
     from its cluster neighbour: the remaining events are 0 -> p1 (from
     p0, volume 2) and 0 -> p3 (from the p2 replica, volume 2), so the
     h-relation collapses from 18 to 2. *)
  let rep =
    Schedule.of_assignment_replicated m dag ~proc ~step ~replicas:[ (0, 2, 0) ]
  in
  check_bool "replicated valid" true (Validity.is_valid m rep);
  check "replica count" 1 (Schedule.num_replicas rep);
  check "two events left" 2 (List.length rep.Schedule.comm);
  (* The p2 replica's copy must be the cheaper source for p3. *)
  check_bool "p3 served from the replica" true
    (List.exists
       (fun (e : Schedule.comm_event) -> e.node = 0 && e.src = 2 && e.dst = 3)
       rep.Schedule.comm);
  let b = Bsp_cost.breakdown m rep in
  (* Replica work rides in the same work phase: max stays 1. *)
  check "s0 work" 1 b.Bsp_cost.supersteps.(0).Bsp_cost.work_max;
  check "s0 h-relation" 2 b.Bsp_cost.supersteps.(0).Bsp_cost.comm_max;
  check "replicated cost" 14 b.Bsp_cost.total;
  (* Profile attributes the replica and still reconciles exactly. *)
  let prof = Profile.compute m rep in
  check "profile replicas" 1 prof.Profile.num_replicas;
  check "profile replica work" 1 prof.Profile.replica_work;
  (match Profile.reconcile prof b with
   | Ok () -> ()
   | Error msg -> Alcotest.fail ("profile does not reconcile: " ^ msg))

let test_replica_needs_own_inputs () =
  (* A replica is a real recomputation: it must receive the node's
     inputs like any primary placement would. *)
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  (* Replicating node 1 on p1 without shipping node 0 there is invalid. *)
  let starved =
    Schedule.make_replicated dag ~proc:[| 0; 0 |] ~step:[| 0; 1 |] ~comm:[]
      ~replicas:[ (1, 1, 1) ]
  in
  check_bool "starved replica invalid" false (Validity.is_valid m starved);
  (* Feeding it in phase 0 makes the same schedule valid. *)
  let fed =
    Schedule.make_replicated dag ~proc:[| 0; 0 |] ~step:[| 0; 1 |]
      ~comm:[ { Schedule.node = 0; src = 0; dst = 1; step = 0 } ]
      ~replicas:[ (1, 1, 1) ]
  in
  check_bool "fed replica valid" true (Validity.is_valid m fed);
  (* And the replica-aware lazy derivation generates that event itself. *)
  let lazy_fed =
    Schedule.of_assignment_replicated m dag ~proc:[| 0; 0 |] ~step:[| 0; 1 |]
      ~replicas:[ (1, 1, 1) ]
  in
  check_bool "lazy replica input valid" true (Validity.is_valid m lazy_fed);
  check "lazy ships the input" 1 (List.length lazy_fed.Schedule.comm)

let test_make_replicated_rejects () =
  let dag = Test_util.chain 2 in
  let expect_invalid label replicas =
    try
      ignore
        (Schedule.make_replicated dag ~proc:[| 0; 0 |] ~step:[| 0; 1 |] ~comm:[]
           ~replicas
          : Schedule.t);
      Alcotest.fail (label ^ " accepted")
    with Invalid_argument _ -> ()
  in
  expect_invalid "replica duplicating the primary" [ (0, 0, 0) ];
  expect_invalid "negative processor" [ (0, -1, 0) ];
  expect_invalid "negative superstep" [ (0, 1, -1) ];
  expect_invalid "duplicate (node, proc) pair" [ (0, 1, 0); (0, 1, 1) ]

let test_compact_preserves_comm () =
  (* An event placed earlier than its lazy phase (as HCcs does) must
     survive compaction; only ~relazy:true re-derives the lazy phase. *)
  let dag =
    Dag.of_edges ~n:3 ~edges:[ (0, 1) ] ~work:[| 1; 1; 1 |] ~comm:[| 1; 1; 1 |]
  in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  let s =
    Schedule.make dag ~proc:[| 0; 1; 0 |] ~step:[| 0; 3; 1 |]
      ~comm:[ { Schedule.node = 0; src = 0; dst = 1; step = 0 } ]
  in
  check_bool "input valid" true (Validity.is_valid m s);
  (* Steps 0, 1, 3 are used; step 2 is dropped, the consumer lands on
     step 2 and the early event keeps phase 0. *)
  let c = Schedule.compact s in
  Alcotest.(check (array int)) "renumbered" [| 0; 2; 1 |] c.Schedule.step;
  check_bool "compacted valid" true (Validity.is_valid m c);
  check "event preserved" 1 (List.length c.Schedule.comm);
  check "event keeps its early phase" 0 (List.hd c.Schedule.comm).Schedule.step;
  let r = Schedule.compact ~relazy:true s in
  check "relazy re-derives the lazy phase" 1 (List.hd r.Schedule.comm).Schedule.step;
  check_bool "relazy valid" true (Validity.is_valid m r)

let test_compact_replicated () =
  let m = Machine.uniform ~p:2 ~g:1 ~l:3 in
  let dag = Test_util.chain 2 in
  (* Primary chain on p0 with a gap at step 1; a replica of node 0 sits
     on p1 (no consumers — compaction must still renumber it). *)
  let s =
    Schedule.of_assignment_replicated m dag ~proc:[| 0; 0 |] ~step:[| 0; 2 |]
      ~replicas:[ (0, 1, 0) ]
  in
  let c = Schedule.compact s in
  Alcotest.(check (array int)) "renumbered" [| 0; 1 |] c.Schedule.step;
  check "replica survives" 1 (Schedule.num_replicas c);
  Alcotest.(check (list (pair int int)))
    "replica placement" [ (1, 0) ] (Schedule.replicas c 0);
  check_bool "valid" true (Validity.is_valid m c);
  check_bool "cheaper" true (Bsp_cost.total m c < Bsp_cost.total m s);
  (* relazy compaction is replica-free-only by contract. *)
  (try
     ignore (Schedule.compact ~relazy:true s : Schedule.t);
     Alcotest.fail "relazy accepted a replicated schedule"
   with Invalid_argument _ -> ())

let test_classical_conversion () =
  let dag = Test_util.chain 3 in
  let cl = { Classical.proc = [| 0; 1; 0 |]; seq = [| 0; 1; 2 |] } in
  let s = Classical.to_bsp dag cl in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  check_bool "valid" true (Validity.is_valid m s);
  Alcotest.(check (array int)) "supersteps" [| 0; 1; 2 |] s.Schedule.step;
  (* Same processor throughout: everything lands in one superstep. *)
  let cl2 = { Classical.proc = [| 0; 0; 0 |]; seq = [| 0; 1; 2 |] } in
  let s2 = Classical.to_bsp dag cl2 in
  check "single superstep" 1 (Schedule.num_supersteps s2);
  check "makespan" 3 (Classical.makespan dag cl2)

let test_render_summary () =
  let s = example () in
  let m = Machine.uniform ~p:2 ~g:3 ~l:5 in
  let text = Schedule_render.to_string m s in
  let has needle =
    check_bool ("render contains " ^ needle) true
      (Test_util.contains_substring text needle)
  in
  has "schedule: 6 nodes, 2 supersteps, 2 processors, cost 25";
  (* The utilisation summary: p0 works 7 of the 9 compute-phase units
     (77.8%), sits idle 2, sends volume 1 and receives 2. *)
  has "p0   util  77.8%  work 7      idle 2      send 1      recv 2";
  has "p1   util  66.7%  work 6      idle 3      send 2      recv 1";
  (* The per-superstep body is still there. *)
  has "superstep 0  (work 5, h-relation 2, cost 16)";
  has "0:0->1";
  has "2:1->0"

let test_render_no_comm () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  let text = Schedule_render.to_string m (Schedule.trivial dag) in
  check_bool "idle processor listed at 0% util" true
    (Test_util.contains_substring text "p1   util   0.0%  work 0");
  check_bool "busy processor at 100%" true
    (Test_util.contains_substring text "p0   util 100.0%  work 2")

(* Property: for a random valid assignment, the lazy communication
   schedule always yields a valid BSP schedule, and the incremental
   tables of Bsp_cost agree with the breakdown. *)
let prop_lazy_valid =
  Test_util.qtest "lazy schedule valid"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 10_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let p = m.Machine.p in
      (* Random assignment: steps follow wavefront levels with random
         gaps so that cross edges are always strictly increasing. *)
      let level = Dag.wavefronts dag in
      let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
      let step = Array.map (fun l -> 2 * l) level in
      let s = Schedule.of_assignment dag ~proc ~step in
      Validity.is_valid m s)

let test_schedule_io_v1_compat () =
  (* A hand-written v1 file (no version marker, two-field header) must
     still parse, and replica-free output must still be v1. *)
  let dag = Test_util.chain 2 in
  let text = "% bsp schedule\n2 1\n0 0 0\n1 1 1\n0 0 1 0\n" in
  let s = Schedule_io.of_string dag text in
  Alcotest.(check (array int)) "proc" [| 0; 1 |] s.Schedule.proc;
  Alcotest.(check (array int)) "step" [| 0; 1 |] s.Schedule.step;
  check "events" 1 (List.length s.Schedule.comm);
  check "no replicas" 0 (Schedule.num_replicas s);
  check_bool "replica-free output stays v1" false
    (Test_util.contains_substring (Schedule_io.to_string s) "v2");
  (* Trailing non-comment garbage is rejected, v1 and v2 alike. *)
  (try
     ignore (Schedule_io.of_string dag (text ^ "9 9 9\n") : Schedule.t);
     Alcotest.fail "trailing garbage accepted"
   with Failure _ -> ());
  let rep =
    Schedule.make_replicated dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |]
      ~comm:[ { Schedule.node = 0; src = 0; dst = 1; step = 0 } ]
      ~replicas:[ (0, 1, 0) ]
  in
  let rep_text = Schedule_io.to_string rep in
  check_bool "replicated output is v2" true
    (Test_util.contains_substring rep_text "% bsp schedule v2");
  (try
     ignore (Schedule_io.of_string dag (rep_text ^ "9 9 9\n") : Schedule.t);
     Alcotest.fail "v2 trailing garbage accepted"
   with Failure _ -> ())

(* Random replicated schedule: wavefront steps (so every predecessor is
   strictly earlier, making any same-step replica feedable), random
   primary processors, and a sparse sprinkle of replicas on other
   processors. *)
let random_replicated rng dag (m : Machine.t) =
  let p = m.Machine.p in
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
  let step = Array.map (fun l -> 2 * l) level in
  let replicas = ref [] in
  if p > 1 then
    for v = 0 to Dag.n dag - 1 do
      if Rng.int rng 4 = 0 then begin
        let q = Rng.int rng (p - 1) in
        let q = if q >= proc.(v) then q + 1 else q in
        replicas := (v, q, step.(v)) :: !replicas
      end
    done;
  (proc, step, !replicas)

let gen3 =
  QCheck2.Gen.(
    pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 10_000)))

let prop_replicated_lazy_valid =
  Test_util.qtest ~count:80 "replica-aware lazy schedule valid" gen3
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let proc, step, replicas = random_replicated rng dag m in
      let s = Schedule.of_assignment_replicated m dag ~proc ~step ~replicas in
      Validity.is_valid m s
      && (match Profile.reconcile (Profile.compute m s) (Bsp_cost.breakdown m s) with
          | Ok () -> true
          | Error _ -> false))

let prop_io_roundtrip =
  Test_util.qtest ~count:80 "schedule_io round-trip" gen3 (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let proc, step, replicas = random_replicated rng dag m in
      let s = Schedule.of_assignment_replicated m dag ~proc ~step ~replicas in
      let text = Schedule_io.to_string s in
      let s2 = Schedule_io.of_string dag text in
      (* v1 for replica-free output, v2 marker otherwise. *)
      Test_util.contains_substring text "% bsp schedule v2" = (replicas <> [])
      && s2.Schedule.proc = s.Schedule.proc
      && s2.Schedule.step = s.Schedule.step
      && s2.Schedule.comm = s.Schedule.comm
      && s2.Schedule.rep_off = s.Schedule.rep_off
      && s2.Schedule.rep_proc = s.Schedule.rep_proc
      && s2.Schedule.rep_step = s.Schedule.rep_step
      && Bsp_cost.total m s2 = Bsp_cost.total m s)

(* Collapsing every replica set back to its singleton primary must
   reproduce the replication-free schedule — and its cost — exactly. *)
let prop_collapse_replicas_exact =
  Test_util.qtest ~count:80 "collapsing replicas restores the old cost" gen3
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let proc, step, replicas = random_replicated rng dag m in
      let s = Schedule.of_assignment_replicated m dag ~proc ~step ~replicas in
      let collapsed = Schedule.drop_replicas s in
      let plain = Schedule.of_assignment dag ~proc ~step in
      let none = Schedule.of_assignment_replicated m dag ~proc ~step ~replicas:[] in
      (not (Schedule.has_replicas collapsed))
      && collapsed.Schedule.comm = plain.Schedule.comm
      && Bsp_cost.total m collapsed = Bsp_cost.total m plain
      (* The replica-aware lazy derivation degenerates exactly to the
         plain one on an empty replica table. *)
      && none.Schedule.comm = plain.Schedule.comm
      && Bsp_cost.total m none = Bsp_cost.total m plain)

let prop_compact_never_worse =
  Test_util.qtest "compact never increases cost"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 10_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let level = Dag.wavefronts dag in
      let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng m.Machine.p) in
      let step = Array.map (fun l -> 3 * l) level in
      let s = Schedule.of_assignment dag ~proc ~step in
      let c = Schedule.compact s in
      Validity.is_valid m c && Bsp_cost.total m c <= Bsp_cost.total m s)

let () =
  Alcotest.run "schedule"
    [
      ( "unit",
        [
          Alcotest.test_case "figure-1 style cost" `Quick test_example_cost_uniform;
          Alcotest.test_case "cost with NUMA" `Quick test_example_cost_numa;
          Alcotest.test_case "trivial schedule" `Quick test_trivial;
          Alcotest.test_case "lazy comm dedup" `Quick test_lazy_comm_dedup;
          Alcotest.test_case "assignment validity" `Quick test_assignment_validity;
          Alcotest.test_case "missing event" `Quick test_validity_missing_event;
          Alcotest.test_case "late event" `Quick test_validity_late_event;
          Alcotest.test_case "send from absent" `Quick test_validity_send_from_absent;
          Alcotest.test_case "relay chain" `Quick test_validity_relay_chain;
          Alcotest.test_case "compact" `Quick test_compact;
          Alcotest.test_case "replicated cost on NUMA" `Quick test_replicated_cost_numa;
          Alcotest.test_case "replica needs its inputs" `Quick
            test_replica_needs_own_inputs;
          Alcotest.test_case "make_replicated rejects" `Quick test_make_replicated_rejects;
          Alcotest.test_case "compact preserves comm" `Quick test_compact_preserves_comm;
          Alcotest.test_case "compact replicated" `Quick test_compact_replicated;
          Alcotest.test_case "schedule_io v1 compat" `Quick test_schedule_io_v1_compat;
          Alcotest.test_case "classical conversion" `Quick test_classical_conversion;
          Alcotest.test_case "render utilisation summary" `Quick test_render_summary;
          Alcotest.test_case "render without comm" `Quick test_render_no_comm;
        ] );
      ( "property",
        [
          prop_lazy_valid;
          prop_replicated_lazy_valid;
          prop_io_roundtrip;
          prop_collapse_replicas_exact;
          prop_compact_never_worse;
        ] );
    ]
