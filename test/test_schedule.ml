let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* A two-superstep example in the spirit of Figure 1: two processors
   compute in superstep 0, exchange values in its communication phase,
   and finish in superstep 1.

     proc 0, step 0: node 0 (w=2), node 1 (w=3)
     proc 1, step 0: node 2 (w=1, c=2), node 3 (w=1)
     proc 0, step 1: node 4 (w=2), preds 1 and 2   (2 crosses 1 -> 0)
     proc 1, step 1: node 5 (w=4), preds 3 and 0   (0 crosses 0 -> 1) *)
let example () =
  let dag =
    Dag.of_edges ~n:6
      ~edges:[ (1, 4); (2, 4); (3, 5); (0, 5) ]
      ~work:[| 2; 3; 1; 1; 2; 4 |] ~comm:[| 1; 1; 2; 1; 1; 1 |]
  in
  Schedule.of_assignment dag ~proc:[| 0; 0; 1; 1; 0; 1 |] ~step:[| 0; 0; 0; 0; 1; 1 |]

let test_example_cost_uniform () =
  let s = example () in
  let m = Machine.uniform ~p:2 ~g:3 ~l:5 in
  check_bool "valid" true (Validity.is_valid m s);
  (* Superstep 0: work max(5,2)=5; h-relation: proc0 sends 1 / receives 2,
     proc1 sends 2 / receives 1 -> max 2; cost 5 + 3*2 + 5 = 16.
     Superstep 1: work max(2,4)=4, no comm -> 4 + 0 + 5 = 9. *)
  let b = Bsp_cost.breakdown m s in
  check "supersteps" 2 (Array.length b.Bsp_cost.supersteps);
  check "s0 work" 5 b.Bsp_cost.supersteps.(0).Bsp_cost.work_max;
  check "s0 comm" 2 b.Bsp_cost.supersteps.(0).Bsp_cost.comm_max;
  check "s0 cost" 16 b.Bsp_cost.supersteps.(0).Bsp_cost.cost;
  check "s1 cost" 9 b.Bsp_cost.supersteps.(1).Bsp_cost.cost;
  check "total" 25 b.Bsp_cost.total;
  check "latency part" 10 b.Bsp_cost.latency_total

let test_example_cost_numa () =
  let s = example () in
  (* Asymmetric coefficients: 0 -> 1 costs 2 per unit, 1 -> 0 costs 3.
     Volumes: node 0 (c=1) goes 0 -> 1: 2; node 2 (c=2) goes 1 -> 0: 6.
     h = max over procs of max(send, recv) = 6; s0 = 5 + 3*6 + 5 = 28. *)
  let m = Machine.explicit ~g:3 ~l:5 ~lambda:[| [| 0; 2 |]; [| 3; 0 |] |] in
  check_bool "valid" true (Validity.is_valid m s);
  check "total with NUMA" 37 (Bsp_cost.total m s)

let test_trivial () =
  let dag = Test_util.diamond () in
  let m = Machine.uniform ~p:4 ~g:2 ~l:7 in
  let s = Schedule.trivial dag in
  check_bool "valid" true (Validity.is_valid m s);
  check "cost = total work + l" (10 + 7) (Bsp_cost.total m s)

let test_lazy_comm_dedup () =
  (* u is consumed on proc 1 at steps 2 and 4: one event, at phase 1. *)
  let dag =
    Dag.of_edges ~n:3 ~edges:[ (0, 1); (0, 2) ] ~work:[| 1; 1; 1 |] ~comm:[| 5; 1; 1 |]
  in
  let comm = Schedule.lazy_comm dag ~proc:[| 0; 1; 1 |] ~step:[| 0; 2; 4 |] in
  check "one event" 1 (List.length comm);
  let e = List.hd comm in
  check "node" 0 e.Schedule.node;
  check "phase = first need - 1" 1 e.Schedule.step;
  check "src" 0 e.Schedule.src;
  check "dst" 1 e.Schedule.dst

let test_assignment_validity () =
  let dag = Test_util.chain 2 in
  check_bool "same proc same step ok" true
    (Schedule.assignment_valid dag ~proc:[| 0; 0 |] ~step:[| 0; 0 |]);
  check_bool "same proc backwards bad" false
    (Schedule.assignment_valid dag ~proc:[| 0; 0 |] ~step:[| 1; 0 |]);
  check_bool "cross same step bad" false
    (Schedule.assignment_valid dag ~proc:[| 0; 1 |] ~step:[| 0; 0 |]);
  check_bool "cross later ok" true
    (Schedule.assignment_valid dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |])

let test_validity_missing_event () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  (* Cross-processor edge with an empty communication schedule. *)
  let s = Schedule.make dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |] ~comm:[] in
  check_bool "invalid" false (Validity.is_valid m s);
  check "one error" 1 (List.length (Validity.errors m s))

let test_validity_late_event () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  (* Delivery in phase 1 is too late for a consumer in superstep 1. *)
  let s =
    Schedule.make dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |]
      ~comm:[ { Schedule.node = 0; src = 0; dst = 1; step = 1 } ]
  in
  check_bool "invalid" false (Validity.is_valid m s)

let test_validity_send_from_absent () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:3 ~g:1 ~l:1 in
  (* Node 0 lives on proc 0 but the event claims proc 2 sends it. *)
  let s =
    Schedule.make dag ~proc:[| 0; 1 |] ~step:[| 0; 1 |]
      ~comm:[ { Schedule.node = 0; src = 2; dst = 1; step = 0 } ]
  in
  check_bool "invalid" false (Validity.is_valid m s)

let test_validity_relay_chain () =
  (* 0 computed on p0 step 0; relayed p0 -> p1 (phase 0), p1 -> p2
     (phase 1); consumer on p2 at step 2. Valid per Section 3.2. *)
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:3 ~g:1 ~l:1 in
  let s =
    Schedule.make dag ~proc:[| 0; 2 |] ~step:[| 0; 2 |]
      ~comm:
        [
          { Schedule.node = 0; src = 0; dst = 1; step = 0 };
          { Schedule.node = 0; src = 1; dst = 2; step = 1 };
        ]
  in
  check_bool "relay valid" true (Validity.is_valid m s);
  (* Breaking the chain order invalidates it. *)
  let bad =
    Schedule.make dag ~proc:[| 0; 2 |] ~step:[| 0; 2 |]
      ~comm:
        [
          { Schedule.node = 0; src = 0; dst = 1; step = 1 };
          { Schedule.node = 0; src = 1; dst = 2; step = 1 };
        ]
  in
  check_bool "broken relay invalid" false (Validity.is_valid m bad)

let test_compact () =
  let dag = Test_util.chain 2 in
  let s = Schedule.of_assignment dag ~proc:[| 0; 0 |] ~step:[| 0; 2 |] in
  let c = Schedule.compact s in
  Alcotest.(check (array int)) "renumbered" [| 0; 1 |] c.Schedule.step;
  check "used" 2 (Schedule.used_supersteps s);
  check "supersteps after" 2 (Schedule.num_supersteps c);
  let m = Machine.uniform ~p:2 ~g:1 ~l:5 in
  check_bool "compact cheaper" true (Bsp_cost.total m c < Bsp_cost.total m s)

let test_classical_conversion () =
  let dag = Test_util.chain 3 in
  let cl = { Classical.proc = [| 0; 1; 0 |]; seq = [| 0; 1; 2 |] } in
  let s = Classical.to_bsp dag cl in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  check_bool "valid" true (Validity.is_valid m s);
  Alcotest.(check (array int)) "supersteps" [| 0; 1; 2 |] s.Schedule.step;
  (* Same processor throughout: everything lands in one superstep. *)
  let cl2 = { Classical.proc = [| 0; 0; 0 |]; seq = [| 0; 1; 2 |] } in
  let s2 = Classical.to_bsp dag cl2 in
  check "single superstep" 1 (Schedule.num_supersteps s2);
  check "makespan" 3 (Classical.makespan dag cl2)

let test_render_summary () =
  let s = example () in
  let m = Machine.uniform ~p:2 ~g:3 ~l:5 in
  let text = Schedule_render.to_string m s in
  let has needle =
    check_bool ("render contains " ^ needle) true
      (Test_util.contains_substring text needle)
  in
  has "schedule: 6 nodes, 2 supersteps, 2 processors, cost 25";
  (* The utilisation summary: p0 works 7 of the 9 compute-phase units
     (77.8%), sits idle 2, sends volume 1 and receives 2. *)
  has "p0   util  77.8%  work 7      idle 2      send 1      recv 2";
  has "p1   util  66.7%  work 6      idle 3      send 2      recv 1";
  (* The per-superstep body is still there. *)
  has "superstep 0  (work 5, h-relation 2, cost 16)";
  has "0:0->1";
  has "2:1->0"

let test_render_no_comm () =
  let dag = Test_util.chain 2 in
  let m = Machine.uniform ~p:2 ~g:1 ~l:1 in
  let text = Schedule_render.to_string m (Schedule.trivial dag) in
  check_bool "idle processor listed at 0% util" true
    (Test_util.contains_substring text "p1   util   0.0%  work 0");
  check_bool "busy processor at 100%" true
    (Test_util.contains_substring text "p0   util 100.0%  work 2")

(* Property: for a random valid assignment, the lazy communication
   schedule always yields a valid BSP schedule, and the incremental
   tables of Bsp_cost agree with the breakdown. *)
let prop_lazy_valid =
  Test_util.qtest "lazy schedule valid"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 10_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let p = m.Machine.p in
      (* Random assignment: steps follow wavefront levels with random
         gaps so that cross edges are always strictly increasing. *)
      let level = Dag.wavefronts dag in
      let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
      let step = Array.map (fun l -> 2 * l) level in
      let s = Schedule.of_assignment dag ~proc ~step in
      Validity.is_valid m s)

let prop_compact_never_worse =
  Test_util.qtest "compact never increases cost"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 10_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let level = Dag.wavefronts dag in
      let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng m.Machine.p) in
      let step = Array.map (fun l -> 3 * l) level in
      let s = Schedule.of_assignment dag ~proc ~step in
      let c = Schedule.compact s in
      Validity.is_valid m c && Bsp_cost.total m c <= Bsp_cost.total m s)

let () =
  Alcotest.run "schedule"
    [
      ( "unit",
        [
          Alcotest.test_case "figure-1 style cost" `Quick test_example_cost_uniform;
          Alcotest.test_case "cost with NUMA" `Quick test_example_cost_numa;
          Alcotest.test_case "trivial schedule" `Quick test_trivial;
          Alcotest.test_case "lazy comm dedup" `Quick test_lazy_comm_dedup;
          Alcotest.test_case "assignment validity" `Quick test_assignment_validity;
          Alcotest.test_case "missing event" `Quick test_validity_missing_event;
          Alcotest.test_case "late event" `Quick test_validity_late_event;
          Alcotest.test_case "send from absent" `Quick test_validity_send_from_absent;
          Alcotest.test_case "relay chain" `Quick test_validity_relay_chain;
          Alcotest.test_case "compact" `Quick test_compact;
          Alcotest.test_case "classical conversion" `Quick test_classical_conversion;
          Alcotest.test_case "render utilisation summary" `Quick test_render_summary;
          Alcotest.test_case "render without comm" `Quick test_render_no_comm;
        ] );
      ("property", [ prop_lazy_valid; prop_compact_never_worse ]);
    ]
