(* Tests for the serving stack (DESIGN.md Section 5h): the binary
   hyperDAG format, crash-safe atomic writes, the content-addressed
   schedule cache, the engine's hit/miss/refresh protocol, the stdio
   framing, and the directory-queue daemon. *)

let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let tmp_dir prefix =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "%s.%d.%d" prefix (Unix.getpid ()) (Random.bits ()))
  in
  Unix.mkdir dir 0o755;
  dir

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
    Array.iter (fun e -> rm_rf (Filename.concat path e)) (Sys.readdir path);
    Unix.rmdir path
  | _ -> Sys.remove path
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ()

let with_tmp_dir prefix f =
  let dir = tmp_dir prefix in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let fails f =
  match f () with
  | _ -> false
  | exception Failure _ -> true

(* ------------------------------------------------------------------ *)
(* Binary hyperDAG format.                                             *)

(* Text -> binary -> text must be the identity: the binary decoder ends
   in Dag.of_edges exactly like the text parser, so the canonical CSR —
   and hence the canonical text rendering — survives unchanged. *)
let prop_binary_roundtrip =
  Test_util.qtest ~count:200 "binary round-trip preserves the canonical text form"
    (Test_util.arb_dag ~max_n:40 ()) (fun g ->
      let text = Hyperdag_io.to_string g in
      let g2 = Hyperdag_io.of_binary_string (Hyperdag_io.to_binary_string g) in
      Hyperdag_io.to_string g2 = text)

let prop_binary_structural =
  Test_util.qtest ~count:200 "binary round-trip preserves the structural hash"
    (Test_util.arb_dag ~max_n:40 ()) (fun g ->
      let g2 = Hyperdag_io.of_binary_string (Hyperdag_io.to_binary_string g) in
      Dag.structural_hash g2 = Dag.structural_hash g)

let test_binary_file_roundtrip () =
  with_tmp_dir "bhdg" (fun dir ->
      let g = Test_util.diamond () in
      let path = Filename.concat dir "d.bhdag" in
      Hyperdag_io.write_binary_file path g;
      let g2 = Hyperdag_io.read_binary_file path in
      check_str "file round-trip" (Hyperdag_io.to_string g) (Hyperdag_io.to_string g2);
      (* the auto reader sniffs the magic ... *)
      let g3 = Hyperdag_io.read_file_auto path in
      check_str "auto reads binary" (Hyperdag_io.to_string g) (Hyperdag_io.to_string g3);
      (* ... and still reads text *)
      let tpath = Filename.concat dir "d.hdag" in
      Hyperdag_io.write_file tpath g;
      let g4 = Hyperdag_io.read_file_auto tpath in
      check_str "auto reads text" (Hyperdag_io.to_string g) (Hyperdag_io.to_string g4))

(* Every strict prefix of a valid encoding must be rejected loudly —
   never silently decoded to a smaller DAG. *)
let prop_binary_truncation =
  Test_util.qtest ~count:60 "every truncation is rejected with Failure"
    (Test_util.arb_dag ~max_n:16 ()) (fun g ->
      let b = Hyperdag_io.to_binary_string g in
      let ok = ref true in
      for len = 0 to String.length b - 1 do
        if not (fails (fun () -> Hyperdag_io.of_binary_string (String.sub b 0 len)))
        then ok := false
      done;
      !ok)

let test_binary_garbage () =
  check_bool "bad magic" true
    (fails (fun () -> Hyperdag_io.of_binary_string "NOTADAG\x00\x01"));
  check_bool "empty input" true (fails (fun () -> Hyperdag_io.of_binary_string ""));
  let b = Hyperdag_io.to_binary_string (Test_util.diamond ()) in
  check_bool "trailing bytes" true
    (fails (fun () -> Hyperdag_io.of_binary_string (b ^ "\x00")));
  (* flip a byte in the payload: must either fail or change the DAG,
     never quietly produce the same DAG *)
  let payload_pos = String.length Hyperdag_io.binary_magic in
  let corrupted = Bytes.of_string b in
  Bytes.set corrupted payload_pos
    (Char.chr (Char.code (Bytes.get corrupted payload_pos) lxor 0xff));
  let same =
    match Hyperdag_io.of_binary_string (Bytes.to_string corrupted) with
    | g -> Hyperdag_io.to_string g = Hyperdag_io.to_string (Test_util.diamond ())
    | exception Failure _ -> false
  in
  check_bool "corrupted header is not silently accepted" false same

let test_binary_compact () =
  (* sanity: the binary form of a chain is much smaller than the text *)
  let g = Test_util.chain 500 in
  let b = String.length (Hyperdag_io.to_binary_string g) in
  let t = String.length (Hyperdag_io.to_string g) in
  check_bool (Printf.sprintf "binary (%d) < text (%d) / 3" b t) true (b * 3 < t)

(* ------------------------------------------------------------------ *)
(* Atomic writes.                                                      *)

exception Boom

let no_temp_leftovers dir =
  Array.for_all
    (fun e -> not (Test_util.contains_substring e ".tmp."))
    (Sys.readdir dir)

let test_atomic_write_crash () =
  with_tmp_dir "atomic" (fun dir ->
      let path = Filename.concat dir "target" in
      Atomic_file.write_string path "previous complete version";
      (* a writer that dies mid-write must leave the old version intact *)
      (match
         Atomic_file.write path (fun oc ->
             output_string oc "partial new conte";
             flush oc;
             raise Boom)
       with
      | () -> Alcotest.fail "exception was swallowed"
      | exception Boom -> ());
      check_str "previous version intact" "previous complete version"
        (In_channel.with_open_bin path In_channel.input_all);
      check_bool "no temp leftovers" true (no_temp_leftovers dir))

let test_atomic_write_fresh_crash () =
  with_tmp_dir "atomic" (fun dir ->
      let path = Filename.concat dir "fresh" in
      (match Atomic_file.write path (fun _ -> raise Boom) with
      | () -> Alcotest.fail "exception was swallowed"
      | exception Boom -> ());
      check_bool "target never appeared" false (Sys.file_exists path);
      check_bool "no temp leftovers" true (no_temp_leftovers dir))

let test_atomic_write_replaces () =
  with_tmp_dir "atomic" (fun dir ->
      let path = Filename.concat dir "target" in
      Atomic_file.write_string path "v1";
      Atomic_file.write_string path "v2";
      check_str "replaced" "v2" (In_channel.with_open_bin path In_channel.input_all);
      check_bool "no temp leftovers" true (no_temp_leftovers dir))

(* ------------------------------------------------------------------ *)
(* Cache + engine protocol.                                            *)

let small_machine = Machine.uniform ~p:2 ~g:1 ~l:2

let request ?(algorithm = "pipeline") ?(seconds = 0.2) ?(seed = 1)
    ?(replicate = false) ?(machine = small_machine) ~id dag =
  { Server.Request.id; algorithm; seconds; seed; replicate; machine; dag }

let sched_bytes s = Schedule_io.to_string s

let test_engine_miss_then_hit () =
  with_tmp_dir "cache" (fun cache_dir ->
      let dag = Test_util.diamond () in
      let run jobs =
        Par.with_jobs jobs (fun () ->
            let r1 = Server.Engine.handle ~cache_dir (request ~id:"a" dag) in
            let r2 = Server.Engine.handle ~cache_dir (request ~id:"b" dag) in
            (r1, r2))
      in
      let r1, r2 = run 1 in
      check_bool "first is a miss" true (r1.Server.Engine.status = Server.Engine.Miss);
      check_bool "second is a hit" true (r2.Server.Engine.status = Server.Engine.Hit);
      check "same cost" r1.Server.Engine.cost r2.Server.Engine.cost;
      check_str "bit-identical schedule"
        (sched_bytes r1.Server.Engine.schedule)
        (sched_bytes r2.Server.Engine.schedule);
      check_str "same key" r1.Server.Engine.key r2.Server.Engine.key;
      (* jobs must not change the answer: re-run against a fresh cache
         at jobs 4 and compare bytes with the jobs-1 answer *)
      with_tmp_dir "cache4" (fun cache_dir4 ->
          let r1', r2' =
            Par.with_jobs 4 (fun () ->
                let a =
                  Server.Engine.handle ~cache_dir:cache_dir4 (request ~id:"a" dag)
                in
                let b =
                  Server.Engine.handle ~cache_dir:cache_dir4 (request ~id:"b" dag)
                in
                (a, b))
          in
          check_str "jobs 4 miss matches jobs 1 miss"
            (sched_bytes r1.Server.Engine.schedule)
            (sched_bytes r1'.Server.Engine.schedule);
          check_str "jobs 4 hit matches jobs 1 hit"
            (sched_bytes r2.Server.Engine.schedule)
            (sched_bytes r2'.Server.Engine.schedule)))

let test_engine_refresh_tops_budget () =
  with_tmp_dir "cache" (fun cache_dir ->
      let dag = Test_util.random_dag (Rng.create 7) ~n:14 ~edge_prob:0.25 ~max_w:4 ~max_c:3 in
      let r1 = Server.Engine.handle ~cache_dir (request ~id:"a" ~seconds:0.1 dag) in
      check_bool "miss first" true (r1.Server.Engine.status = Server.Engine.Miss);
      (* same budget again: hit *)
      let r2 = Server.Engine.handle ~cache_dir (request ~id:"b" ~seconds:0.1 dag) in
      check_bool "same budget hits" true (r2.Server.Engine.status = Server.Engine.Hit);
      (* larger budget: refresh, never worse, budget topped up *)
      let r3 = Server.Engine.handle ~cache_dir (request ~id:"c" ~seconds:0.3 dag) in
      check_bool "larger budget refreshes" true
        (r3.Server.Engine.status = Server.Engine.Refresh);
      check_bool "refresh never worse" true
        (r3.Server.Engine.cost <= r1.Server.Engine.cost);
      (* the topped-up budget is recorded: same larger budget now hits *)
      let r4 = Server.Engine.handle ~cache_dir (request ~id:"d" ~seconds:0.3 dag) in
      check_bool "topped-up budget hits" true
        (r4.Server.Engine.status = Server.Engine.Hit))

let test_engine_budget_insensitive () =
  with_tmp_dir "cache" (fun cache_dir ->
      let dag = Test_util.diamond () in
      let r1 =
        Server.Engine.handle ~cache_dir
          (request ~id:"a" ~algorithm:"source" ~seconds:0.1 dag)
      in
      let r2 =
        Server.Engine.handle ~cache_dir
          (request ~id:"b" ~algorithm:"source" ~seconds:100.0 dag)
      in
      check_bool "baseline never refreshes" true
        (r2.Server.Engine.status = Server.Engine.Hit);
      check "same cost" r1.Server.Engine.cost r2.Server.Engine.cost)

let test_engine_distinct_keys () =
  let dag = Test_util.diamond () in
  let k r = Server.Engine.request_key r in
  let base = request ~id:"x" dag in
  check_bool "machine changes the key" true
    (k base <> k (request ~id:"x" ~machine:(Machine.uniform ~p:4 ~g:1 ~l:2) dag));
  check_bool "algorithm changes the key" true
    (k base <> k (request ~id:"x" ~algorithm:"source" dag));
  check_bool "replicate changes the key" true
    (k base <> k (request ~id:"x" ~replicate:true dag));
  check_bool "budget does NOT change the key" true
    (k base = k (request ~id:"x" ~seconds:999.0 dag));
  check_bool "dag changes the key" true
    (k base <> k (request ~id:"x" (Test_util.chain 4)))

let test_cache_self_heals () =
  with_tmp_dir "cache" (fun cache_dir ->
      let dag = Test_util.diamond () in
      let r1 = Server.Engine.handle ~cache_dir (request ~id:"a" dag) in
      (* corrupt the stored schedule: the entry must degrade to a miss,
         not crash the server *)
      Atomic_file.write_string
        (Server.Cache.schedule_path ~dir:cache_dir r1.Server.Engine.key)
        "garbage, not a schedule";
      check_bool "corrupt entry is a miss" true
        (Option.is_none
           (Server.Cache.lookup ~dir:cache_dir ~dag r1.Server.Engine.key));
      let r2 = Server.Engine.handle ~cache_dir (request ~id:"b" dag) in
      check_bool "recomputed" true (r2.Server.Engine.status = Server.Engine.Miss);
      check_str "self-healed to the same schedule"
        (sched_bytes r1.Server.Engine.schedule)
        (sched_bytes r2.Server.Engine.schedule))

let test_engine_rejects_unknown_algorithm () =
  with_tmp_dir "cache" (fun cache_dir ->
      check_bool "unknown algorithm" true
        (fails (fun () ->
             Server.Engine.handle ~cache_dir
               (request ~id:"a" ~algorithm:"simulated-annealing"
                  (Test_util.diamond ())))))

(* ------------------------------------------------------------------ *)
(* Request parsing.                                                    *)

let test_request_parse_inline () =
  let doc =
    "% a request\nid job-1\nalgorithm source\nseconds 2.5\np 2\ng 3\nl 4\nhyperdag\n"
    ^ Hyperdag_io.to_string (Test_util.diamond ())
  in
  let r = Server.Request.parse ~id:"fallback" doc in
  check_str "id" "job-1" r.Server.Request.id;
  check_str "algorithm" "source" r.Server.Request.algorithm;
  check "p" 2 r.Server.Request.machine.Machine.p;
  check "nodes" 4 (Dag.n r.Server.Request.dag);
  check_bool "seconds" true (r.Server.Request.seconds = 2.5)

let test_request_parse_errors () =
  let dag_text = Hyperdag_io.to_string (Test_util.diamond ()) in
  check_bool "missing dag" true
    (fails (fun () -> Server.Request.parse ~id:"x" "p 2\n"));
  check_bool "negative seconds" true
    (fails (fun () ->
         Server.Request.parse ~id:"x" ("seconds -1\nhyperdag\n" ^ dag_text)));
  check_bool "dag path and inline together" true
    (fails (fun () ->
         Server.Request.parse ~id:"x" ("dag /nonexistent\nhyperdag\n" ^ dag_text)));
  check_bool "unknown header key" true
    (fails (fun () ->
         Server.Request.parse ~id:"x" ("frobnicate 3\nhyperdag\n" ^ dag_text)))

(* ------------------------------------------------------------------ *)
(* Framing.                                                            *)

let test_framing_roundtrip () =
  with_tmp_dir "frames" (fun dir ->
      let path = Filename.concat dir "frames.bin" in
      let payloads = [ ""; "x"; String.make 70_000 'q'; "last \x00 frame" ] in
      Out_channel.with_open_bin path (fun oc ->
          List.iter (Server.Daemon.write_frame oc) payloads);
      In_channel.with_open_bin path (fun ic ->
          List.iter
            (fun expect ->
              match Server.Daemon.read_frame ic with
              | Some got -> check_str "frame" expect got
              | None -> Alcotest.fail "premature EOF")
            payloads;
          check_bool "clean EOF" true (Server.Daemon.read_frame ic = None)))

let test_framing_truncation () =
  with_tmp_dir "frames" (fun dir ->
      let path = Filename.concat dir "frames.bin" in
      Out_channel.with_open_bin path (fun oc ->
          Server.Daemon.write_frame oc "hello world");
      let whole = In_channel.with_open_bin path In_channel.input_all in
      (* cut inside the header and inside the payload: both must raise *)
      List.iter
        (fun len ->
          Out_channel.with_open_bin path (fun oc ->
              output_string oc (String.sub whole 0 len));
          check_bool
            (Printf.sprintf "truncated at %d rejected" len)
            true
            (fails (fun () ->
                 In_channel.with_open_bin path Server.Daemon.read_frame)))
        [ 2; 7 ])

(* ------------------------------------------------------------------ *)
(* Directory-queue daemon.                                             *)

let field name json =
  match json with
  | Obs.Json.Obj kvs -> List.assoc name kvs
  | _ -> Alcotest.fail "response is not an object"

let str_field name json =
  match field name json with
  | Obs.Json.String s -> s
  | _ -> Alcotest.failf "field %s is not a string" name

let int_field name json =
  match field name json with
  | Obs.Json.Int i -> i
  | _ -> Alcotest.failf "field %s is not an int" name

let read_json path = Obs.Json.of_string (In_channel.with_open_bin path In_channel.input_all)

let write_request queue name ~seconds =
  let body =
    Printf.sprintf "algorithm pipeline\nseconds %g\np 2\ng 1\nl 2\nhyperdag\n%s"
      seconds
      (Hyperdag_io.to_string (Test_util.diamond ()))
  in
  Atomic_file.write_string
    (Filename.concat (Filename.concat queue "incoming") (name ^ ".req"))
    body

let test_daemon_once () =
  with_tmp_dir "queue" (fun queue ->
      Unix.mkdir (Filename.concat queue "incoming") 0o755;
      (* batch 1: two identical requests -> one miss, one coalesced *)
      write_request queue "a" ~seconds:0.2;
      write_request queue "b" ~seconds:0.2;
      let config =
        { (Server.Daemon.default_config ~queue_dir:queue) with Server.Daemon.once = true }
      in
      Server.Daemon.run config;
      let resp name = read_json (Filename.concat queue ("done/" ^ name ^ ".resp.json")) in
      let a = resp "a" and b = resp "b" in
      check_str "a ok" "ok" (str_field "status" a);
      check_str "a is the miss" "miss" (str_field "cache" a);
      check_str "b coalesced onto a" "coalesced" (str_field "cache" b);
      check "same cost" (int_field "cost" a) (int_field "cost" b);
      let sched name =
        In_channel.with_open_bin
          (Filename.concat queue ("done/" ^ name ^ ".schedule"))
          In_channel.input_all
      in
      check_str "identical schedule files" (sched "a") (sched "b");
      check_bool "requests consumed" true
        (Sys.readdir (Filename.concat queue "incoming") = [||]);
      (* batch 2 (fresh daemon run): same instance -> cache hit,
         bit-identical to the miss *)
      write_request queue "c" ~seconds:0.2;
      Server.Daemon.run config;
      let c = resp "c" in
      check_str "c is a hit" "hit" (str_field "cache" c);
      check "hit cost equals miss cost" (int_field "cost" a) (int_field "cost" c);
      check_str "hit schedule is bit-identical" (sched "a") (sched "c");
      (* a malformed request is answered with an error, not a crash *)
      Atomic_file.write_string
        (Filename.concat queue "incoming/bad.req")
        "algorithm no-such-scheduler\np 2\nhyperdag\nnot a dag";
      Server.Daemon.run config;
      let bad = resp "bad" in
      check_str "bad request errors" "error" (str_field "status" bad);
      (* metrics snapshot: 1 miss, 1 coalesced, 1 hit, 1 error over the
         three batches *)
      let metrics = read_json (Filename.concat queue "metrics.json") in
      let counters = field "counters" metrics in
      check "one miss" 1 (int_field "server.cache_misses" counters);
      check "one coalesced" 1 (int_field "server.cache_coalesced" counters);
      check "one hit" 1 (int_field "server.cache_hits" counters);
      check "one error" 1 (int_field "server.errors" counters);
      check "four requests" 4 (int_field "server.requests" counters))

let test_daemon_stdio () =
  with_tmp_dir "stdio" (fun dir ->
      let cache_dir = Filename.concat dir "cache" in
      let req =
        "algorithm pipeline\nseconds 0.2\np 2\ng 1\nl 2\nhyperdag\n"
        ^ Hyperdag_io.to_string (Test_util.diamond ())
      in
      let inp = Filename.concat dir "in" and out = Filename.concat dir "out" in
      Out_channel.with_open_bin inp (fun oc ->
          Server.Daemon.write_frame oc req;
          Server.Daemon.write_frame oc req);
      In_channel.with_open_bin inp (fun ic ->
          Out_channel.with_open_bin out (fun oc ->
              Server.Daemon.run_stdio ~cache_dir ic oc));
      In_channel.with_open_bin out (fun ic ->
          let r1 = Obs.Json.of_string (Option.get (Server.Daemon.read_frame ic)) in
          let r2 = Obs.Json.of_string (Option.get (Server.Daemon.read_frame ic)) in
          check_bool "no third frame" true (Server.Daemon.read_frame ic = None);
          check_str "first misses" "miss" (str_field "cache" r1);
          check_str "second hits" "hit" (str_field "cache" r2);
          check_str "identical inline schedules" (str_field "schedule" r1)
            (str_field "schedule" r2)))

(* ------------------------------------------------------------------ *)
(* Stats probes: live telemetry over both transports.                   *)

(* A fresh registry per test keeps the counter assertions absolute —
   the ambient registry is process-wide and other daemon tests in this
   binary already incremented it. *)
let run_stats_roundtrip ~jobs () =
  with_tmp_dir "stats" (fun queue ->
      Unix.mkdir (Filename.concat queue "incoming") 0o755;
      Obs.Metrics.install (Obs.Metrics.create ());
      let request p =
        Printf.sprintf "algorithm pipeline\nseconds 0.2\np %d\ng 1\nl 2\nhyperdag\n%s" p
          (Hyperdag_io.to_string (Test_util.diamond ()))
      in
      let drop name body =
        Atomic_file.write_string
          (Filename.concat (Filename.concat queue "incoming") (name ^ ".req"))
          body
      in
      (* Two distinct workloads (different machines) so the batch runs
         two leader tasks on the pool, plus the probe. *)
      drop "a" (request 2);
      drop "b" (request 3);
      drop "probe" "id probe-1\nstats\n";
      let config =
        { (Server.Daemon.default_config ~queue_dir:queue) with Server.Daemon.once = true }
      in
      Par.with_jobs jobs (fun () -> Server.Daemon.run config);
      let resp name = read_json (Filename.concat queue ("done/" ^ name ^ ".resp.json")) in
      check_str "a scheduled" "ok" (str_field "status" (resp "a"));
      check_str "b scheduled" "ok" (str_field "status" (resp "b"));
      let stats = resp "probe" in
      check_str "probe ok" "ok" (str_field "status" stats);
      check_str "probe typed" "stats" (str_field "type" stats);
      check_str "probe id from the id line" "probe-1" (str_field "id" stats);
      let counters = field "counters" stats in
      check "two scheduling requests" 2 (int_field "server.requests" counters);
      check "one stats request, not counted as scheduling" 1
        (int_field "server.stats_requests" counters);
      check "one batch" 1 (int_field "server.batches" counters);
      (* The probe is answered after the batch's scheduling work, so the
         latency histogram already covers both requests. *)
      let hist = field "server.request_seconds" (field "histograms" stats) in
      check "latency histogram count" 2 (int_field "count" hist);
      check_bool "histogram carries quantiles" true
        (Obs.Json.member "p99" hist <> None && Obs.Json.member "buckets" hist <> None);
      (match Obs.Json.member "server.queue_depth_peak" (field "gauges" stats) with
       | Some (Obs.Json.Float d) -> check_bool "peak depth covers the batch" true (d >= 3.0)
       | Some (Obs.Json.Int d) -> check_bool "peak depth covers the batch" true (d >= 3)
       | _ -> Alcotest.fail "no queue_depth_peak gauge");
      (match Obs.Json.member "uptime_seconds" stats with
       | Some (Obs.Json.Float u) -> check_bool "uptime non-negative" true (u >= 0.0)
       | Some (Obs.Json.Int u) -> check_bool "uptime non-negative" true (u >= 0)
       | _ -> Alcotest.fail "no uptime");
      check_bool "hit ratio present" true (Obs.Json.member "cache_hit_ratio" stats <> None);
      let pool = field "pool" stats in
      check "pool jobs echoes the setting" jobs (int_field "jobs" pool);
      match Obs.Json.member "domains" pool with
      | Some (Obs.Json.List ds) ->
        if jobs > 1 then begin
          check_bool "parallel batch engaged pool domains" true (ds <> []);
          List.iter
            (fun d ->
              check_bool "domain stats complete" true
                (Obs.Json.member "tasks_run" d <> None
                && Obs.Json.member "minor_words" d <> None))
            ds
        end
      | _ -> Alcotest.fail "no pool.domains list")

let test_daemon_stdio_stats () =
  with_tmp_dir "stdio-stats" (fun dir ->
      Obs.Metrics.install (Obs.Metrics.create ());
      let cache_dir = Filename.concat dir "cache" in
      let sched_req =
        "algorithm pipeline\nseconds 0.2\np 2\ng 1\nl 2\nhyperdag\n"
        ^ Hyperdag_io.to_string (Test_util.diamond ())
      in
      let inp = Filename.concat dir "in" and out = Filename.concat dir "out" in
      Out_channel.with_open_bin inp (fun oc ->
          Server.Daemon.write_frame oc sched_req;
          Server.Daemon.write_frame oc "stats\n");
      In_channel.with_open_bin inp (fun ic ->
          Out_channel.with_open_bin out (fun oc ->
              Server.Daemon.run_stdio ~cache_dir ic oc));
      In_channel.with_open_bin out (fun ic ->
          let r1 = Obs.Json.of_string (Option.get (Server.Daemon.read_frame ic)) in
          let r2 = Obs.Json.of_string (Option.get (Server.Daemon.read_frame ic)) in
          check_str "schedule frame ok" "miss" (str_field "cache" r1);
          check_str "stats frame typed" "stats" (str_field "type" r2);
          check_bool "stats frame carries no schedule" true
            (Obs.Json.member "schedule" r2 = None);
          let counters = field "counters" r2 in
          check "stdio scheduling request counted" 1
            (int_field "server.requests" counters);
          check "stdio stats request counted" 1
            (int_field "server.stats_requests" counters);
          check "stdio latency histogram count" 1
            (int_field "count"
               (field "server.request_seconds" (field "histograms" r2)))))

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "server"
    [
      ( "binary-format",
        [
          prop_binary_roundtrip;
          prop_binary_structural;
          Alcotest.test_case "file round-trip and sniffing" `Quick
            test_binary_file_roundtrip;
          prop_binary_truncation;
          Alcotest.test_case "garbage rejected" `Quick test_binary_garbage;
          Alcotest.test_case "binary is compact" `Quick test_binary_compact;
        ] );
      ( "atomic-write",
        [
          Alcotest.test_case "crash mid-write keeps old version" `Quick
            test_atomic_write_crash;
          Alcotest.test_case "crash on fresh file leaves nothing" `Quick
            test_atomic_write_fresh_crash;
          Alcotest.test_case "successful write replaces" `Quick
            test_atomic_write_replaces;
        ] );
      ( "engine",
        [
          Alcotest.test_case "miss then bit-identical hit, jobs 1 and 4" `Quick
            test_engine_miss_then_hit;
          Alcotest.test_case "refresh tops up the budget" `Quick
            test_engine_refresh_tops_budget;
          Alcotest.test_case "baselines never refresh" `Quick
            test_engine_budget_insensitive;
          Alcotest.test_case "key separates workloads, ignores budget" `Quick
            test_engine_distinct_keys;
          Alcotest.test_case "corrupt cache entries self-heal" `Quick
            test_cache_self_heals;
          Alcotest.test_case "unknown algorithm rejected" `Quick
            test_engine_rejects_unknown_algorithm;
        ] );
      ( "request",
        [
          Alcotest.test_case "inline parse" `Quick test_request_parse_inline;
          Alcotest.test_case "malformed requests rejected" `Quick
            test_request_parse_errors;
        ] );
      ( "framing",
        [
          Alcotest.test_case "round-trip" `Quick test_framing_roundtrip;
          Alcotest.test_case "truncation rejected" `Quick test_framing_truncation;
        ] );
      ( "daemon",
        [
          Alcotest.test_case "queue: miss, coalesce, hit, error, metrics" `Quick
            test_daemon_once;
          Alcotest.test_case "stdio session" `Quick test_daemon_stdio;
          Alcotest.test_case "stats round-trip, jobs 1" `Quick
            (run_stats_roundtrip ~jobs:1);
          Alcotest.test_case "stats round-trip, jobs 4" `Quick
            (run_stats_roundtrip ~jobs:4);
          Alcotest.test_case "stdio stats frame" `Quick test_daemon_stdio_stats;
        ] );
    ]
