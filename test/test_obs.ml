let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

let read_json_file path =
  Obs.Json.of_string (In_channel.with_open_bin path In_channel.input_all)

(* ------------------------------------------------------------------ *)
(* Obs.Json: emitter / parser.                                         *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("flag", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("x", Obs.Json.Float 1.5);
        ("s", Obs.Json.String "a\"b\\c\n\t end");
        ( "list",
          Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ] );
      ]
  in
  let v2 = Obs.Json.of_string (Obs.Json.to_string v) in
  check_bool "roundtrip equal" true (v = v2)

let test_json_escaping () =
  let s = Obs.Json.to_string (Obs.Json.String "quote\" back\\ nl\n ctrl\x01") in
  check_str "escaped" {|"quote\" back\\ nl\n ctrl\u0001"|} s;
  (match Obs.Json.of_string s with
   | Obs.Json.String s2 -> check_str "parses back" "quote\" back\\ nl\n ctrl\x01" s2
   | _ -> Alcotest.fail "expected string")

let test_json_nonfinite_floats () =
  check_str "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_str "inf is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_compact () =
  let v =
    Obs.Json.Obj
      [
        ("a", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Null ]);
        ("b", Obs.Json.Obj [ ("nested", Obs.Json.Bool false) ]);
      ]
  in
  let compact = Obs.Json.to_string_compact v in
  check_str "single line, no whitespace"
    {|{"a":[1,2.5,null],"b":{"nested":false}}|} compact;
  check_bool "compact and pretty parse to the same value" true
    (Obs.Json.of_string compact = Obs.Json.of_string (Obs.Json.to_string v))

(* Finite floats must survive emit/parse bit-exactly (the emitter picks
   the shortest of 15/16/17 significant digits that round-trips);
   non-finite ones are emitted as null by design. *)
let prop_json_float_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:1000 ~name:"floats round-trip through emit/parse"
       QCheck2.Gen.float (fun f ->
         if not (Float.is_finite f) then
           Obs.Json.to_string (Obs.Json.Float f) = "null"
         else
           match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
           | Obs.Json.Float f' -> Int64.bits_of_float f' = Int64.bits_of_float f
           | Obs.Json.Int i ->
             (* Huge integer-valued floats may parse back as ints. *)
             float_of_int i = f
           | _ -> false))

let test_json_float_examples () =
  let roundtrips f =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
    | Obs.Json.Float f' -> f' = f
    | _ -> false
  in
  check_bool "0.1 + 0.2 round-trips" true (roundtrips (0.1 +. 0.2));
  check_bool "pi round-trips" true (roundtrips (4.0 *. atan 1.0));
  check_bool "min_float round-trips" true (roundtrips min_float);
  check_bool "subnormal round-trips" true (roundtrips 1e-310)

let test_json_parse_errors () =
  let rejects s =
    try
      ignore (Obs.Json.of_string s : Obs.Json.t);
      Alcotest.fail ("accepted: " ^ s)
    with Obs.Json.Parse_error _ -> ()
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "1 2";
  rejects "{\"a\":}";
  rejects "tru"

(* ------------------------------------------------------------------ *)
(* Obs.Metrics: primitives.                                            *)

let test_metrics_counters_gauges () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.add r "c" 2;
  Obs.Metrics.add r "c" 3;
  check "counter sums" 5 (Obs.Metrics.counter_value r "c");
  check "unknown counter" 0 (Obs.Metrics.counter_value r "zzz");
  Obs.Metrics.set r "g" 1.0;
  Obs.Metrics.set r "g" 0.5;
  Alcotest.(check (option (float 0.0))) "gauge last write" (Some 0.5)
    (Obs.Metrics.gauge_value r "g");
  Obs.Metrics.set_max r "peak" 2.0;
  Obs.Metrics.set_max r "peak" 1.0;
  Alcotest.(check (option (float 0.0))) "gauge max keeps peak" (Some 2.0)
    (Obs.Metrics.gauge_value r "peak");
  Obs.Metrics.point r "s" ~label:"a" 1.0;
  Obs.Metrics.point r "s" ~label:"b" 2.0;
  check_bool "series ordered" true
    (Obs.Metrics.series_values r "s" = [ ("a", 1.0); ("b", 2.0) ])

let test_metrics_ambient_noop_without_registry () =
  Obs.Metrics.clear ();
  (* Must not raise, and spans must still run their body. *)
  Obs.Metrics.counter "c" 1;
  Obs.Metrics.gauge "g" 1.0;
  check "span runs body" 7 (Obs.Metrics.with_span "x" (fun () -> 7))

let test_metrics_span_paths_nest () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.with_registry r (fun () ->
      Obs.Metrics.with_span "pipeline" (fun () ->
          Obs.Metrics.with_span "hc:bspg" (fun () -> ());
          Obs.Metrics.with_span "hc:bspg" (fun () -> ());
          Obs.Metrics.with_span "hccs:bspg" (fun () -> ())));
  let spans = Obs.Metrics.span_list r in
  let paths = List.map (fun (s : Obs.Metrics.span_stats) -> s.path) spans in
  check_bool "nested paths" true
    (paths = [ "pipeline"; "pipeline/hc:bspg"; "pipeline/hccs:bspg" ]);
  let calls p =
    (List.find (fun (s : Obs.Metrics.span_stats) -> s.path = p) spans).Obs.Metrics.calls
  in
  check "repeated span accumulates calls" 2 (calls "pipeline/hc:bspg");
  check "outer called once" 1 (calls "pipeline")

let test_metrics_span_records_budget_steps () =
  let r = Obs.Metrics.create () in
  let b = Budget.steps 100 in
  Obs.Metrics.with_registry r (fun () ->
      Obs.Metrics.with_span ~budget:b "stage" (fun () ->
          check_bool "ticks" true (Budget.ticks b 42)));
  match Obs.Metrics.span_list r with
  | [ s ] ->
    check_str "path" "stage" s.Obs.Metrics.path;
    check "steps from budget" 42 s.Obs.Metrics.steps_used
  | spans -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length spans))

let test_metrics_span_closes_on_exception () =
  let r = Obs.Metrics.create () in
  (try
     Obs.Metrics.with_registry r (fun () ->
         Obs.Metrics.with_span "outer" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_bool "span closed" true
    (List.exists (fun (s : Obs.Metrics.span_stats) -> s.path = "outer")
       (Obs.Metrics.span_list r));
  (* The name stack unwound: new spans are top-level again. *)
  Obs.Metrics.with_registry r (fun () -> Obs.Metrics.with_span "next" (fun () -> ()));
  check_bool "stack unwound" true
    (List.exists (fun (s : Obs.Metrics.span_stats) -> s.path = "next")
       (Obs.Metrics.span_list r))

let test_metrics_with_registry_restores () =
  Obs.Metrics.clear ();
  let r = Obs.Metrics.create () in
  Obs.Metrics.with_registry r (fun () ->
      check_bool "installed" true (Obs.Metrics.current () = Some r));
  check_bool "restored to none" true (Obs.Metrics.current () = None)

(* ------------------------------------------------------------------ *)
(* Histograms: log-bucketed recording, quantiles, deterministic merge.  *)

let test_histogram_basic () =
  let r = Obs.Metrics.create () in
  check_bool "absent histogram" true (Obs.Metrics.histogram_stats r "h" = None);
  Obs.Metrics.observe r "h" 1.0;
  (match Obs.Metrics.histogram_stats r "h" with
   | Some s ->
     check "count" 1 s.Obs.Metrics.count;
     check_bool "sum" true (s.Obs.Metrics.sum = 1.0);
     (* A single observation pins every quantile to that value (clamped
        to [min,max]). *)
     check_bool "p50 = value" true (s.Obs.Metrics.p50 = 1.0);
     check_bool "p99 = value" true (s.Obs.Metrics.p99 = 1.0)
   | None -> Alcotest.fail "histogram missing after observe");
  Obs.Metrics.observe r "h" 3.0;
  Obs.Metrics.observe r "h" 0.25;
  (match Obs.Metrics.histogram_stats r "h" with
   | Some s ->
     check "count accumulates" 3 s.Obs.Metrics.count;
     check_bool "sum accumulates" true (s.Obs.Metrics.sum = 4.25);
     check_bool "min" true (s.Obs.Metrics.min_value = 0.25);
     check_bool "max" true (s.Obs.Metrics.max_value = 3.0);
     check_bool "quantiles ordered" true
       (s.Obs.Metrics.p50 <= s.Obs.Metrics.p90 && s.Obs.Metrics.p90 <= s.Obs.Metrics.p99);
     check_bool "quantiles clamped" true
       (s.Obs.Metrics.p50 >= 0.25 && s.Obs.Metrics.p99 <= 3.0)
   | None -> Alcotest.fail "histogram missing");
  check_bool "names" true (Obs.Metrics.histogram_names r = [ "h" ])

let test_histogram_buckets () =
  let r = Obs.Metrics.create () in
  (* Base-2 buckets: 1.0 lands in (1, 2], 0.75 in (0.5, 1]. *)
  Obs.Metrics.observe r "h" 1.0;
  Obs.Metrics.observe r "h" 0.75;
  Obs.Metrics.observe r "h" 0.75;
  check_bool "bucket upper bounds" true
    (Obs.Metrics.histogram_buckets r "h" = [ (1.0, 2); (2.0, 1) ]);
  (* Extremes do not crash and stay countable: zero and negatives fall
     into the first bucket, +inf/nan into the last. *)
  Obs.Metrics.observe r "edge" 0.0;
  Obs.Metrics.observe r "edge" (-3.0);
  Obs.Metrics.observe r "edge" infinity;
  Obs.Metrics.observe r "edge" nan;
  match Obs.Metrics.histogram_stats r "edge" with
  | Some s -> check "edge observations all counted" 4 s.Obs.Metrics.count
  | None -> Alcotest.fail "edge histogram missing"

(* The merge contract (PR: live daemon telemetry): recording a value
   stream split across child registries and merging them back must be
   indistinguishable — count, sum and bucket-exact — from recording the
   concatenated stream sequentially. Dyadic values (n/16) keep float
   sums exact so the comparison needs no tolerance. *)
let prop_histogram_merge_matches_sequential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"histogram merge = sequential recording"
       QCheck2.Gen.(pair (list (int_bound 2000)) (list (int_bound 2000)))
       (fun (xs, ys) ->
         let value n = float_of_int n /. 16.0 in
         let seq = Obs.Metrics.create () in
         List.iter (fun n -> Obs.Metrics.observe seq "h" (value n)) (xs @ ys);
         let parent = Obs.Metrics.create () in
         let c1 = Obs.Metrics.create_child parent in
         let c2 = Obs.Metrics.create_child parent in
         List.iter (fun n -> Obs.Metrics.observe c1 "h" (value n)) xs;
         List.iter (fun n -> Obs.Metrics.observe c2 "h" (value n)) ys;
         Obs.Metrics.merge_into ~into:parent c1;
         Obs.Metrics.merge_into ~into:parent c2;
         Obs.Metrics.histogram_buckets parent "h" = Obs.Metrics.histogram_buckets seq "h"
         &&
         match
           (Obs.Metrics.histogram_stats parent "h", Obs.Metrics.histogram_stats seq "h")
         with
         | None, None -> xs = [] && ys = []
         | Some a, Some b -> a = b
         | _ -> false))

let test_series_cap_drops () =
  let r = Obs.Metrics.create ~series_cap:5 () in
  check "cap readable" 5 (Obs.Metrics.series_cap r);
  for i = 1 to 8 do
    Obs.Metrics.point r "s" ~label:(string_of_int i) (float_of_int i)
  done;
  check "dropped count" 3 (Obs.Metrics.series_dropped r "s");
  check_bool "keeps the newest points" true
    (Obs.Metrics.series_values r "s"
    = [ ("4", 4.0); ("5", 5.0); ("6", 6.0); ("7", 7.0); ("8", 8.0) ]);
  (* The drop counter is part of the JSON snapshot. *)
  match Obs.Json.member "series_dropped" (Obs.Metrics.to_json r) with
  | Some dropped ->
    (match Obs.Json.member "s" dropped with
     | Some (Obs.Json.Int 3) -> ()
     | _ -> Alcotest.fail "series_dropped.s missing from JSON")
  | None -> Alcotest.fail "series_dropped missing from JSON"

(* ------------------------------------------------------------------ *)
(* Clock: the pluggable time source makes span durations exact.        *)

let test_fake_clock_exact_span () =
  let t = ref 100.0 in
  let fake () =
    t := !t +. 1.5;
    !t
  in
  let r = Obs.Metrics.create () in
  Obs.Clock.with_source fake (fun () ->
      Obs.Metrics.span r "stage" (fun () -> ()));
  (match Obs.Metrics.span_list r with
   | [ s ] -> check_bool "exact seconds" true (s.Obs.Metrics.seconds = 1.5)
   | _ -> Alcotest.fail "expected exactly one span");
  (* The source is restored on exit. *)
  check_bool "restored" true (Obs.Clock.now () > 1.0e9)

let test_fake_clock_budget_deadline () =
  let t = ref 0.0 in
  Obs.Clock.with_source
    (fun () -> !t)
    (fun () ->
      let b = Budget.seconds 10.0 in
      check_bool "fresh deadline not exhausted" true (not (Budget.exhausted b));
      t := 9.0;
      check_bool "before deadline" true (not (Budget.exhausted b));
      t := 10.5;
      check_bool "past deadline" true (Budget.exhausted b))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition.                                         *)

let test_prometheus_exposition () =
  let r = Obs.Metrics.create ~series_cap:1 () in
  Obs.Metrics.add r "server.requests" 3;
  Obs.Metrics.set r "server.queue_depth" 2.0;
  Obs.Metrics.observe r "req.seconds" 0.75;
  Obs.Metrics.observe r "req.seconds" 1.5;
  Obs.Metrics.point r "s" ~label:"a" 1.0;
  Obs.Metrics.point r "s" ~label:"b" 2.0;
  Obs.Metrics.with_registry r (fun () -> Obs.Metrics.with_span "stage" (fun () -> ()));
  let text = Obs.Metrics.to_prometheus r in
  let has line = List.mem line (String.split_on_char '\n' text) in
  check_bool "counter renamed and _total" true (has "server_requests_total 3");
  check_bool "counter TYPE" true (has "# TYPE server_requests_total counter");
  check_bool "gauge" true (has "server_queue_depth 2");
  check_bool "histogram TYPE" true (has "# TYPE req_seconds histogram");
  check_bool "cumulative bucket" true (has "req_seconds_bucket{le=\"1\"} 1");
  check_bool "+Inf bucket" true (has "req_seconds_bucket{le=\"+Inf\"} 2");
  check_bool "sum" true (has "req_seconds_sum 2.25");
  check_bool "count" true (has "req_seconds_count 2");
  check_bool "series drops exported" true
    (has "obs_series_dropped_points_total{series=\"s\"} 1");
  check_bool "span calls" true (has "bsp_span_calls_total{path=\"stage\"} 1");
  (* write_prometheus_file produces the same bytes, atomically. *)
  let path = Filename.temp_file "obs_prom" ".prom" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Metrics.write_prometheus_file r path;
      check_str "file matches to_prometheus" text
        (In_channel.with_open_bin path In_channel.input_all))

(* ------------------------------------------------------------------ *)
(* Obs.Events: the per-domain flight recorder.                         *)

let k_test_a = Obs.Events.register_kind "test_a"
let k_test_b = Obs.Events.register_kind "test_b"

let test_events_disabled_noop () =
  Obs.Events.disable ();
  Obs.Events.begin_ k_test_a;
  Obs.Events.end_ k_test_a;
  Obs.Events.instant k_test_b;
  check_bool "disabled dump empty" true (Obs.Events.dump () = []);
  check "disabled recorded" 0 (Obs.Events.recorded ());
  check_bool "trace export refuses while disabled" true
    (try
       Obs.Events.write_chrome_trace "/nonexistent/never-written.json";
       false
     with Invalid_argument _ -> true)

let test_events_record_and_dump () =
  check_str "kind name interned" "test_a" (Obs.Events.kind_name k_test_a);
  check_bool "register is idempotent" true
    (Obs.Events.register_kind "test_a" = k_test_a);
  Obs.Events.enable ();
  Fun.protect ~finally:Obs.Events.disable (fun () ->
      Obs.Events.begin_ ~arg:7 k_test_a;
      Obs.Events.end_ ~arg:7 k_test_a;
      Obs.Events.instant k_test_b;
      Obs.Events.sample k_test_b 42;
      check "recorded" 4 (Obs.Events.recorded ());
      check "no drops" 0 (Obs.Events.dropped ());
      match Obs.Events.dump () with
      | [ b; e; i; s ] ->
        check_bool "begin phase" true (b.Obs.Events.ev_phase = Obs.Events.Begin);
        check "begin arg" 7 b.Obs.Events.ev_arg;
        check_bool "end phase" true (e.Obs.Events.ev_phase = Obs.Events.End);
        check_bool "instant phase" true (i.Obs.Events.ev_phase = Obs.Events.Instant);
        check_bool "sample phase" true (s.Obs.Events.ev_phase = Obs.Events.Sample);
        check "sample value" 42 s.Obs.Events.ev_arg;
        check_bool "timestamps monotone" true
          (b.Obs.Events.ev_ts <= e.Obs.Events.ev_ts
          && e.Obs.Events.ev_ts <= i.Obs.Events.ev_ts);
        check_bool "same domain" true
          (b.Obs.Events.ev_domain = s.Obs.Events.ev_domain)
      | evs -> Alcotest.failf "expected 4 events, got %d" (List.length evs))

let test_events_ring_wrap () =
  (* The capacity floor is 1024; overflowing it must keep the newest
     events and count the overwritten ones as dropped. *)
  Obs.Events.enable ~capacity:1024 ();
  Fun.protect ~finally:Obs.Events.disable (fun () ->
      for i = 0 to 1499 do
        Obs.Events.instant ~arg:i k_test_a
      done;
      check "recorded counts overwritten too" 1500 (Obs.Events.recorded ());
      check "dropped" 476 (Obs.Events.dropped ());
      let evs = Obs.Events.dump () in
      check "retained = capacity" 1024 (List.length evs);
      check "oldest retained arg" 476 (List.hd evs).Obs.Events.ev_arg;
      check "newest retained arg" 1499
        (List.nth evs (List.length evs - 1)).Obs.Events.ev_arg)

let test_events_chrome_trace () =
  (* Deterministic timestamps via the fake clock: each Clock.now () call
     advances 1 ms, so the span's "dur" is exactly 2000 us (begin and
     end bracket one extra now() from the unclosed-span backstop? no:
     begin_, end_ are adjacent calls). *)
  let t = ref 0.0 in
  let path = Filename.temp_file "obs_flight" ".json" in
  Fun.protect
    ~finally:(fun () ->
      Obs.Events.disable ();
      Sys.remove path)
    (fun () ->
      Obs.Clock.with_source
        (fun () ->
          t := !t +. 0.001;
          !t)
        (fun () ->
          Obs.Events.enable ();
          Obs.Events.begin_ ~arg:3 k_test_a;
          Obs.Events.end_ ~arg:3 k_test_a;
          Obs.Events.instant k_test_b;
          Obs.Events.sample k_test_b 5;
          Obs.Events.begin_ k_test_b;
          (* left open on purpose: must close at the track's last ts *)
          Obs.Events.write_chrome_trace path);
      let json = read_json_file path in
      let events =
        match Obs.Json.member "traceEvents" json with
        | Some (Obs.Json.List evs) -> evs
        | _ -> Alcotest.fail "no traceEvents"
      in
      let slices =
        List.filter
          (fun ev ->
            match Obs.Json.member "ph" ev with
            | Some (Obs.Json.String "X") -> true
            | _ -> false)
          events
      in
      check "two X slices (one the backstop-closed open span)" 2 (List.length slices);
      let slice_named name =
        List.find
          (fun ev -> Obs.Json.member "name" ev = Some (Obs.Json.String name))
          slices
      in
      (match Obs.Json.member "dur" (slice_named "test_a") with
       | Some (Obs.Json.Float d) -> check_bool "exact dur 1000us" true (d = 1000.0)
       | Some (Obs.Json.Int d) -> check "exact dur 1000us" 1000 d
       | _ -> Alcotest.fail "X slice has no dur");
      check_bool "domain track named" true
        (List.exists
           (fun ev ->
             Obs.Json.member "name" ev = Some (Obs.Json.String "thread_name")
             &&
             match Obs.Json.member "args" ev with
             | Some args -> Obs.Json.member "name" args = Some (Obs.Json.String "d0")
             | None -> false)
           events);
      check_bool "counter sample exported" true
        (List.exists
           (fun ev -> Obs.Json.member "ph" ev = Some (Obs.Json.String "C"))
           events))

(* ------------------------------------------------------------------ *)
(* The pipeline under a registry: step accounting, JSON validity, and
   the differential check that instrumentation does not change results. *)

(* No wall-clock component, so runs are deterministic. The HC/HCcs caps
   are ample (never clamped — bulk [Budget.ticks] under-counts when
   clamped); the branch-and-bound caps may be hit without harming
   exactness, because every explored node performs exactly one tick. *)
let accounting_limits =
  {
    Pipeline.default_limits with
    Pipeline.hc_evals = 5_000_000;
    hccs_evals = 5_000_000;
    ilp_full_nodes = 1_500;
    ilp_part_nodes = 120;
    ilp_cs_nodes = 200;
    use_ilp = true;
    use_ilp_init = false;
    stage_seconds = None;
  }

let accounting_instance () =
  let rng = Rng.create 7 in
  (Machine.uniform ~p:3 ~g:2 ~l:4, Finegrained.exp (Sparse_matrix.random rng ~n:5 ~q:0.3) ~k:2)

let test_pipeline_steps_accounting () =
  let machine, dag = accounting_instance () in
  let r = Obs.Metrics.create () in
  let _sched, _stage =
    Obs.Metrics.with_registry r (fun () ->
        Pipeline.run ~limits:accounting_limits machine dag)
  in
  (* Every budget tick in the pipeline is one HC evaluation, one HCcs
     evaluation, or one branch-and-bound node, and each stage budget is
     fresh, so the per-span [steps_used] must sum to exactly those three
     counters. *)
  let span_total =
    List.fold_left
      (fun acc (s : Obs.Metrics.span_stats) -> acc + s.Obs.Metrics.steps_used)
      0 (Obs.Metrics.span_list r)
  in
  let counter_total =
    Obs.Metrics.counter_value r "hc.moves_evaluated"
    + Obs.Metrics.counter_value r "hccs.moves_evaluated"
    + Obs.Metrics.counter_value r "bb.nodes_explored"
  in
  check_bool "pipeline did work" true (span_total > 0);
  check "span steps match engine counters" counter_total span_total

let test_pipeline_metrics_json_valid () =
  let machine, dag = accounting_instance () in
  let r = Obs.Metrics.create () in
  let _ =
    Obs.Metrics.with_registry r (fun () ->
        Pipeline.run ~limits:accounting_limits machine dag)
  in
  let json = Obs.Json.of_string (Obs.Json.to_string (Obs.Metrics.to_json r)) in
  (* The snapshot reparses and carries the documented sections, and the
     JSON numbers agree with the registry. *)
  let section name =
    match Obs.Json.member name json with
    | Some v -> v
    | None -> Alcotest.fail ("missing section " ^ name)
  in
  (match Obs.Json.member "hc.moves_evaluated" (section "counters") with
   | Some v ->
     Alcotest.(check (option int)) "counter in json"
       (Some (Obs.Metrics.counter_value r "hc.moves_evaluated"))
       (Obs.Json.to_int_opt v)
   | None -> Alcotest.fail "hc.moves_evaluated not in counters");
  (match section "spans" with
   | Obs.Json.List spans ->
     check "all spans serialised" (List.length (Obs.Metrics.span_list r))
       (List.length spans);
     List.iter
       (fun s ->
         check_bool "span has steps_used" true
           (Option.is_some (Obs.Json.member "steps_used" s)))
       spans
   | _ -> Alcotest.fail "spans not a list");
  match section "series" with
  | Obs.Json.Obj fields -> check_bool "best-cost trajectory recorded" true
      (List.mem_assoc "pipeline.best_cost" fields)
  | _ -> Alcotest.fail "series not an object"

let test_pipeline_instrumentation_differential () =
  (* With [stage_seconds = None] the pipeline is deterministic, so a run
     with a registry installed must produce exactly the same schedule
     cost as one without. *)
  let machine, dag = accounting_instance () in
  let bare, bare_stage = Pipeline.run ~limits:accounting_limits machine dag in
  let r = Obs.Metrics.create () in
  let instrumented, instr_stage =
    Obs.Metrics.with_registry r (fun () ->
        Pipeline.run ~limits:accounting_limits machine dag)
  in
  check "same final cost" (Bsp_cost.total machine bare)
    (Bsp_cost.total machine instrumented);
  check "same init cost" bare_stage.Pipeline.init_cost instr_stage.Pipeline.init_cost;
  check "same after_local_search" bare_stage.Pipeline.after_local_search
    instr_stage.Pipeline.after_local_search;
  check_str "same winning initialiser" bare_stage.Pipeline.best_init_name
    instr_stage.Pipeline.best_init_name

let test_write_json_file () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.add r "a" 1;
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Metrics.write_json_file r path;
      let ic = open_in path in
      let text =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)
      in
      match Obs.Json.member "counters" (Obs.Json.of_string text) with
      | Some (Obs.Json.Obj [ ("a", Obs.Json.Int 1) ]) -> ()
      | _ -> Alcotest.fail "file snapshot malformed")

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "compact emitter" `Quick test_json_compact;
          Alcotest.test_case "float round-trip examples" `Quick test_json_float_examples;
          prop_json_float_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick test_metrics_counters_gauges;
          Alcotest.test_case "ambient no-op" `Quick
            test_metrics_ambient_noop_without_registry;
          Alcotest.test_case "span paths nest" `Quick test_metrics_span_paths_nest;
          Alcotest.test_case "span budget steps" `Quick
            test_metrics_span_records_budget_steps;
          Alcotest.test_case "span closes on exception" `Quick
            test_metrics_span_closes_on_exception;
          Alcotest.test_case "with_registry restores" `Quick
            test_metrics_with_registry_restores;
          Alcotest.test_case "write_json_file" `Quick test_write_json_file;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "basic stats + quantiles" `Quick test_histogram_basic;
          Alcotest.test_case "bucket boundaries + extremes" `Quick
            test_histogram_buckets;
          prop_histogram_merge_matches_sequential;
        ] );
      ( "series cap",
        [ Alcotest.test_case "bounded retention + drops" `Quick test_series_cap_drops ] );
      ( "clock",
        [
          Alcotest.test_case "exact span via fake source" `Quick
            test_fake_clock_exact_span;
          Alcotest.test_case "budget deadline via fake source" `Quick
            test_fake_clock_budget_deadline;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "text exposition" `Quick test_prometheus_exposition ] );
      ( "events",
        [
          Alcotest.test_case "disabled is a no-op" `Quick test_events_disabled_noop;
          Alcotest.test_case "record + dump" `Quick test_events_record_and_dump;
          Alcotest.test_case "ring wrap drops oldest" `Quick test_events_ring_wrap;
          Alcotest.test_case "chrome trace export" `Quick test_events_chrome_trace;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "steps accounting exact" `Quick
            test_pipeline_steps_accounting;
          Alcotest.test_case "metrics json valid" `Quick test_pipeline_metrics_json_valid;
          Alcotest.test_case "instrumentation differential" `Quick
            test_pipeline_instrumentation_differential;
        ] );
    ]
