let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Obs.Json: emitter / parser.                                         *)

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("null", Obs.Json.Null);
        ("flag", Obs.Json.Bool true);
        ("n", Obs.Json.Int (-42));
        ("x", Obs.Json.Float 1.5);
        ("s", Obs.Json.String "a\"b\\c\n\t end");
        ( "list",
          Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ] );
      ]
  in
  let v2 = Obs.Json.of_string (Obs.Json.to_string v) in
  check_bool "roundtrip equal" true (v = v2)

let test_json_escaping () =
  let s = Obs.Json.to_string (Obs.Json.String "quote\" back\\ nl\n ctrl\x01") in
  check_str "escaped" {|"quote\" back\\ nl\n ctrl\u0001"|} s;
  (match Obs.Json.of_string s with
   | Obs.Json.String s2 -> check_str "parses back" "quote\" back\\ nl\n ctrl\x01" s2
   | _ -> Alcotest.fail "expected string")

let test_json_nonfinite_floats () =
  check_str "nan is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.nan));
  check_str "inf is null" "null" (Obs.Json.to_string (Obs.Json.Float Float.infinity))

let test_json_compact () =
  let v =
    Obs.Json.Obj
      [
        ("a", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Float 2.5; Obs.Json.Null ]);
        ("b", Obs.Json.Obj [ ("nested", Obs.Json.Bool false) ]);
      ]
  in
  let compact = Obs.Json.to_string_compact v in
  check_str "single line, no whitespace"
    {|{"a":[1,2.5,null],"b":{"nested":false}}|} compact;
  check_bool "compact and pretty parse to the same value" true
    (Obs.Json.of_string compact = Obs.Json.of_string (Obs.Json.to_string v))

(* Finite floats must survive emit/parse bit-exactly (the emitter picks
   the shortest of 15/16/17 significant digits that round-trips);
   non-finite ones are emitted as null by design. *)
let prop_json_float_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:1000 ~name:"floats round-trip through emit/parse"
       QCheck2.Gen.float (fun f ->
         if not (Float.is_finite f) then
           Obs.Json.to_string (Obs.Json.Float f) = "null"
         else
           match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
           | Obs.Json.Float f' -> Int64.bits_of_float f' = Int64.bits_of_float f
           | Obs.Json.Int i ->
             (* Huge integer-valued floats may parse back as ints. *)
             float_of_int i = f
           | _ -> false))

let test_json_float_examples () =
  let roundtrips f =
    match Obs.Json.of_string (Obs.Json.to_string (Obs.Json.Float f)) with
    | Obs.Json.Float f' -> f' = f
    | _ -> false
  in
  check_bool "0.1 + 0.2 round-trips" true (roundtrips (0.1 +. 0.2));
  check_bool "pi round-trips" true (roundtrips (4.0 *. atan 1.0));
  check_bool "min_float round-trips" true (roundtrips min_float);
  check_bool "subnormal round-trips" true (roundtrips 1e-310)

let test_json_parse_errors () =
  let rejects s =
    try
      ignore (Obs.Json.of_string s : Obs.Json.t);
      Alcotest.fail ("accepted: " ^ s)
    with Obs.Json.Parse_error _ -> ()
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "1 2";
  rejects "{\"a\":}";
  rejects "tru"

(* ------------------------------------------------------------------ *)
(* Obs.Metrics: primitives.                                            *)

let test_metrics_counters_gauges () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.add r "c" 2;
  Obs.Metrics.add r "c" 3;
  check "counter sums" 5 (Obs.Metrics.counter_value r "c");
  check "unknown counter" 0 (Obs.Metrics.counter_value r "zzz");
  Obs.Metrics.set r "g" 1.0;
  Obs.Metrics.set r "g" 0.5;
  Alcotest.(check (option (float 0.0))) "gauge last write" (Some 0.5)
    (Obs.Metrics.gauge_value r "g");
  Obs.Metrics.set_max r "peak" 2.0;
  Obs.Metrics.set_max r "peak" 1.0;
  Alcotest.(check (option (float 0.0))) "gauge max keeps peak" (Some 2.0)
    (Obs.Metrics.gauge_value r "peak");
  Obs.Metrics.point r "s" ~label:"a" 1.0;
  Obs.Metrics.point r "s" ~label:"b" 2.0;
  check_bool "series ordered" true
    (Obs.Metrics.series_values r "s" = [ ("a", 1.0); ("b", 2.0) ])

let test_metrics_ambient_noop_without_registry () =
  Obs.Metrics.clear ();
  (* Must not raise, and spans must still run their body. *)
  Obs.Metrics.counter "c" 1;
  Obs.Metrics.gauge "g" 1.0;
  check "span runs body" 7 (Obs.Metrics.with_span "x" (fun () -> 7))

let test_metrics_span_paths_nest () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.with_registry r (fun () ->
      Obs.Metrics.with_span "pipeline" (fun () ->
          Obs.Metrics.with_span "hc:bspg" (fun () -> ());
          Obs.Metrics.with_span "hc:bspg" (fun () -> ());
          Obs.Metrics.with_span "hccs:bspg" (fun () -> ())));
  let spans = Obs.Metrics.span_list r in
  let paths = List.map (fun (s : Obs.Metrics.span_stats) -> s.path) spans in
  check_bool "nested paths" true
    (paths = [ "pipeline"; "pipeline/hc:bspg"; "pipeline/hccs:bspg" ]);
  let calls p =
    (List.find (fun (s : Obs.Metrics.span_stats) -> s.path = p) spans).Obs.Metrics.calls
  in
  check "repeated span accumulates calls" 2 (calls "pipeline/hc:bspg");
  check "outer called once" 1 (calls "pipeline")

let test_metrics_span_records_budget_steps () =
  let r = Obs.Metrics.create () in
  let b = Budget.steps 100 in
  Obs.Metrics.with_registry r (fun () ->
      Obs.Metrics.with_span ~budget:b "stage" (fun () ->
          check_bool "ticks" true (Budget.ticks b 42)));
  match Obs.Metrics.span_list r with
  | [ s ] ->
    check_str "path" "stage" s.Obs.Metrics.path;
    check "steps from budget" 42 s.Obs.Metrics.steps_used
  | spans -> Alcotest.fail (Printf.sprintf "expected 1 span, got %d" (List.length spans))

let test_metrics_span_closes_on_exception () =
  let r = Obs.Metrics.create () in
  (try
     Obs.Metrics.with_registry r (fun () ->
         Obs.Metrics.with_span "outer" (fun () -> failwith "boom"))
   with Failure _ -> ());
  check_bool "span closed" true
    (List.exists (fun (s : Obs.Metrics.span_stats) -> s.path = "outer")
       (Obs.Metrics.span_list r));
  (* The name stack unwound: new spans are top-level again. *)
  Obs.Metrics.with_registry r (fun () -> Obs.Metrics.with_span "next" (fun () -> ()));
  check_bool "stack unwound" true
    (List.exists (fun (s : Obs.Metrics.span_stats) -> s.path = "next")
       (Obs.Metrics.span_list r))

let test_metrics_with_registry_restores () =
  Obs.Metrics.clear ();
  let r = Obs.Metrics.create () in
  Obs.Metrics.with_registry r (fun () ->
      check_bool "installed" true (Obs.Metrics.current () = Some r));
  check_bool "restored to none" true (Obs.Metrics.current () = None)

(* ------------------------------------------------------------------ *)
(* The pipeline under a registry: step accounting, JSON validity, and
   the differential check that instrumentation does not change results. *)

(* No wall-clock component, so runs are deterministic. The HC/HCcs caps
   are ample (never clamped — bulk [Budget.ticks] under-counts when
   clamped); the branch-and-bound caps may be hit without harming
   exactness, because every explored node performs exactly one tick. *)
let accounting_limits =
  {
    Pipeline.default_limits with
    Pipeline.hc_evals = 5_000_000;
    hccs_evals = 5_000_000;
    ilp_full_nodes = 1_500;
    ilp_part_nodes = 120;
    ilp_cs_nodes = 200;
    use_ilp = true;
    use_ilp_init = false;
    stage_seconds = None;
  }

let accounting_instance () =
  let rng = Rng.create 7 in
  (Machine.uniform ~p:3 ~g:2 ~l:4, Finegrained.exp (Sparse_matrix.random rng ~n:5 ~q:0.3) ~k:2)

let test_pipeline_steps_accounting () =
  let machine, dag = accounting_instance () in
  let r = Obs.Metrics.create () in
  let _sched, _stage =
    Obs.Metrics.with_registry r (fun () ->
        Pipeline.run ~limits:accounting_limits machine dag)
  in
  (* Every budget tick in the pipeline is one HC evaluation, one HCcs
     evaluation, or one branch-and-bound node, and each stage budget is
     fresh, so the per-span [steps_used] must sum to exactly those three
     counters. *)
  let span_total =
    List.fold_left
      (fun acc (s : Obs.Metrics.span_stats) -> acc + s.Obs.Metrics.steps_used)
      0 (Obs.Metrics.span_list r)
  in
  let counter_total =
    Obs.Metrics.counter_value r "hc.moves_evaluated"
    + Obs.Metrics.counter_value r "hccs.moves_evaluated"
    + Obs.Metrics.counter_value r "bb.nodes_explored"
  in
  check_bool "pipeline did work" true (span_total > 0);
  check "span steps match engine counters" counter_total span_total

let test_pipeline_metrics_json_valid () =
  let machine, dag = accounting_instance () in
  let r = Obs.Metrics.create () in
  let _ =
    Obs.Metrics.with_registry r (fun () ->
        Pipeline.run ~limits:accounting_limits machine dag)
  in
  let json = Obs.Json.of_string (Obs.Json.to_string (Obs.Metrics.to_json r)) in
  (* The snapshot reparses and carries the documented sections, and the
     JSON numbers agree with the registry. *)
  let section name =
    match Obs.Json.member name json with
    | Some v -> v
    | None -> Alcotest.fail ("missing section " ^ name)
  in
  (match Obs.Json.member "hc.moves_evaluated" (section "counters") with
   | Some v ->
     Alcotest.(check (option int)) "counter in json"
       (Some (Obs.Metrics.counter_value r "hc.moves_evaluated"))
       (Obs.Json.to_int_opt v)
   | None -> Alcotest.fail "hc.moves_evaluated not in counters");
  (match section "spans" with
   | Obs.Json.List spans ->
     check "all spans serialised" (List.length (Obs.Metrics.span_list r))
       (List.length spans);
     List.iter
       (fun s ->
         check_bool "span has steps_used" true
           (Option.is_some (Obs.Json.member "steps_used" s)))
       spans
   | _ -> Alcotest.fail "spans not a list");
  match section "series" with
  | Obs.Json.Obj fields -> check_bool "best-cost trajectory recorded" true
      (List.mem_assoc "pipeline.best_cost" fields)
  | _ -> Alcotest.fail "series not an object"

let test_pipeline_instrumentation_differential () =
  (* With [stage_seconds = None] the pipeline is deterministic, so a run
     with a registry installed must produce exactly the same schedule
     cost as one without. *)
  let machine, dag = accounting_instance () in
  let bare, bare_stage = Pipeline.run ~limits:accounting_limits machine dag in
  let r = Obs.Metrics.create () in
  let instrumented, instr_stage =
    Obs.Metrics.with_registry r (fun () ->
        Pipeline.run ~limits:accounting_limits machine dag)
  in
  check "same final cost" (Bsp_cost.total machine bare)
    (Bsp_cost.total machine instrumented);
  check "same init cost" bare_stage.Pipeline.init_cost instr_stage.Pipeline.init_cost;
  check "same after_local_search" bare_stage.Pipeline.after_local_search
    instr_stage.Pipeline.after_local_search;
  check_str "same winning initialiser" bare_stage.Pipeline.best_init_name
    instr_stage.Pipeline.best_init_name

let test_write_json_file () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.add r "a" 1;
  let path = Filename.temp_file "obs_test" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Obs.Metrics.write_json_file r path;
      let ic = open_in path in
      let text =
        Fun.protect ~finally:(fun () -> close_in ic) (fun () -> In_channel.input_all ic)
      in
      match Obs.Json.member "counters" (Obs.Json.of_string text) with
      | Some (Obs.Json.Obj [ ("a", Obs.Json.Int 1) ]) -> ()
      | _ -> Alcotest.fail "file snapshot malformed")

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escaping" `Quick test_json_escaping;
          Alcotest.test_case "non-finite floats" `Quick test_json_nonfinite_floats;
          Alcotest.test_case "compact emitter" `Quick test_json_compact;
          Alcotest.test_case "float round-trip examples" `Quick test_json_float_examples;
          prop_json_float_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters + gauges" `Quick test_metrics_counters_gauges;
          Alcotest.test_case "ambient no-op" `Quick
            test_metrics_ambient_noop_without_registry;
          Alcotest.test_case "span paths nest" `Quick test_metrics_span_paths_nest;
          Alcotest.test_case "span budget steps" `Quick
            test_metrics_span_records_budget_steps;
          Alcotest.test_case "span closes on exception" `Quick
            test_metrics_span_closes_on_exception;
          Alcotest.test_case "with_registry restores" `Quick
            test_metrics_with_registry_restores;
          Alcotest.test_case "write_json_file" `Quick test_write_json_file;
        ] );
      ( "pipeline",
        [
          Alcotest.test_case "steps accounting exact" `Quick
            test_pipeline_steps_accounting;
          Alcotest.test_case "metrics json valid" `Quick test_pipeline_metrics_json_valid;
          Alcotest.test_case "instrumentation differential" `Quick
            test_pipeline_instrumentation_differential;
        ] );
    ]
