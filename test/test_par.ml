let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_str = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* Par primitives: the deterministic-reduction contract must hold at
   every jobs count, so each test exercises jobs = 1 and jobs = 4. *)

let at_jobs j f = Par.with_jobs j f

let test_map_matches_list_map () =
  List.iter
    (fun j ->
      List.iter
        (fun n ->
          let xs = List.init n (fun i -> i) in
          let expected = List.map (fun i -> (i * i) + 1) xs in
          let got = at_jobs j (fun () -> Par.map (fun i -> (i * i) + 1) xs) in
          check_bool
            (Printf.sprintf "map = List.map (jobs=%d, n=%d)" j n)
            true (got = expected))
        [ 0; 1; 2; 7; 64 ])
    [ 1; 4 ]

let test_map_results_positional () =
  (* Tasks may execute in any order; the returned list must still be in
     submission order. Record execution order to show the two differ at
     least sometimes without making the test depend on scheduling. *)
  let order = Atomic.make [] in
  let bump i =
    let rec loop () =
      let old = Atomic.get order in
      if not (Atomic.compare_and_set order old (i :: old)) then loop ()
    in
    loop ();
    i * 10
  in
  let xs = List.init 32 (fun i -> i) in
  let got = at_jobs 4 (fun () -> Par.map bump xs) in
  check_bool "results positional" true (got = List.map (fun i -> i * 10) xs);
  check "every task ran exactly once" 32 (List.length (Atomic.get order))

let test_nested_map () =
  (* A task that itself fans out must not deadlock and must stay
     deterministic: inner calls from worker domains degrade to
     sequential execution. *)
  let f i =
    let inner = Par.map (fun k -> k + i) [ 1; 2; 3 ] in
    List.fold_left ( + ) 0 inner
  in
  let expected = List.map f [ 0; 1; 2; 3; 4; 5 ] in
  let got = at_jobs 4 (fun () -> Par.map f [ 0; 1; 2; 3; 4; 5 ]) in
  check_bool "nested fan-out" true (got = expected)

let test_exception_lowest_index_wins () =
  List.iter
    (fun j ->
      let raised =
        try
          ignore
            (at_jobs j (fun () ->
                 Par.map
                   (fun i -> if i >= 3 then failwith (string_of_int i) else i)
                   [ 0; 1; 2; 3; 4; 5; 6; 7 ]));
          "no exception"
        with Failure msg -> msg
      in
      check_str (Printf.sprintf "first raiser by index (jobs=%d)" j) "3" raised)
    [ 1; 4 ]

let test_map_reduce_non_commutative () =
  (* String concatenation is non-commutative: left-to-right reduction in
     submission order is observable. *)
  List.iter
    (fun j ->
      let got =
        at_jobs j (fun () ->
            Par.map_reduce ~map:string_of_int
              ~reduce:(fun acc s -> acc ^ "," ^ s)
              ~init:"start"
              [ 3; 1; 4; 1; 5; 9; 2; 6 ])
      in
      check_str (Printf.sprintf "ordered reduce (jobs=%d)" j) "start,3,1,4,1,5,9,2,6" got)
    [ 1; 4 ]

let test_best_of_index_tie_break () =
  List.iter
    (fun j ->
      let got =
        at_jobs j (fun () ->
            Par.best_of
              ~cmp:(fun (a, _) (b, _) -> compare a b)
              (fun x -> x)
              [ (5, "a"); (3, "b"); (3, "c"); (7, "d"); (3, "e") ])
      in
      check_bool
        (Printf.sprintf "tie -> lowest submission index (jobs=%d)" j)
        true
        (got = (3, "b")))
    [ 1; 4 ];
  (try
     ignore (Par.best_of ~cmp:compare (fun x -> x) ([] : int list));
     Alcotest.fail "best_of accepted an empty list"
   with Invalid_argument _ -> ())

let test_chunk_size () =
  (* Tiny batches degenerate to chunk 1 so no drainer hoards tasks
     another domain could run. *)
  check "portfolio-sized batch -> 1" 1 (Par.chunk_size ~factor:4 ~jobs:4 ~count:4);
  check "count <= factor*jobs -> 1" 1 (Par.chunk_size ~factor:4 ~jobs:4 ~count:16);
  check "just above the knee" 1 (Par.chunk_size ~factor:4 ~jobs:4 ~count:17);
  check "exact division" 2 (Par.chunk_size ~factor:4 ~jobs:4 ~count:32);
  check "large batch" 62 (Par.chunk_size ~factor:4 ~jobs:4 ~count:1000);
  check "factor 1 = even split" 250 (Par.chunk_size ~factor:1 ~jobs:4 ~count:1000);
  check "factor clamped to >= 1" 10 (Par.chunk_size ~factor:0 ~jobs:1 ~count:10);
  check "jobs clamped to >= 1" 5 (Par.chunk_size ~factor:2 ~jobs:0 ~count:10);
  check "empty batch still >= 1" 1 (Par.chunk_size ~factor:4 ~jobs:4 ~count:0);
  let old = Par.chunk_factor () in
  Par.set_chunk_factor 0;
  check "set_chunk_factor clamps to >= 1" 1 (Par.chunk_factor ());
  Par.set_chunk_factor old;
  check "set_chunk_factor round-trips" old (Par.chunk_factor ())

let test_last_chunk_recorded () =
  (* Every domain that drained the batch must report the batch's chunk
     size in its stats block. *)
  Par.reset_stats ();
  let expected = Par.chunk_size ~factor:(Par.chunk_factor ()) ~jobs:2 ~count:64 in
  ignore (at_jobs 2 (fun () -> Par.map (fun i -> i) (List.init 64 (fun i -> i))));
  let ds = Par.stats () in
  check_bool "some domain drained" true (ds <> []);
  List.iter
    (fun (d : Par.domain_stats) ->
      if d.Par.tasks_run > 0 then
        check
          (Printf.sprintf "last_chunk of domain %d" d.Par.domain_index)
          expected d.Par.last_chunk)
    ds

let test_with_jobs_restores () =
  Par.set_jobs 1;
  check "starts at 1" 1 (Par.jobs ());
  at_jobs 4 (fun () -> check "raised inside" 4 (Par.jobs ()));
  check "restored" 1 (Par.jobs ());
  (try at_jobs 4 (fun () -> failwith "boom") with Failure _ -> ());
  check "restored after exception" 1 (Par.jobs ());
  Par.set_jobs 0;
  check "set_jobs clamps to >= 1" 1 (Par.jobs ())

(* ------------------------------------------------------------------ *)
(* Par + Obs: child registries merge back deterministically. *)

let test_parallel_counters_merge () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.with_registry r (fun () ->
      at_jobs 4 (fun () ->
          ignore
            (Par.map
               (fun i ->
                 Obs.Metrics.counter "t.work" i;
                 i)
               (List.init 16 (fun i -> i)))));
  check "counters sum across children" (16 * 15 / 2)
    (Obs.Metrics.counter_value r "t.work")

let test_parallel_series_submission_order () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.with_registry r (fun () ->
      at_jobs 4 (fun () ->
          ignore
            (Par.map
               (fun i ->
                 Obs.Metrics.series_point "t.series" ~label:(string_of_int i)
                   (float_of_int i);
                 i)
               (List.init 12 (fun i -> i)))));
  let labels = List.map fst (Obs.Metrics.series_values r "t.series") in
  check_bool "series points in submission order" true
    (labels = List.init 12 string_of_int)

let test_parallel_spans_inherit_parent_path () =
  let r = Obs.Metrics.create () in
  Obs.Metrics.with_registry r (fun () ->
      Obs.Metrics.with_span "outer" (fun () ->
          at_jobs 4 (fun () ->
              ignore
                (Par.map
                   (fun i -> Obs.Metrics.with_span "task" (fun () -> i))
                   [ 0; 1; 2; 3; 4; 5 ]))));
  let spans = Obs.Metrics.span_list r in
  let calls p =
    match List.find_opt (fun (s : Obs.Metrics.span_stats) -> s.path = p) spans with
    | Some s -> s.Obs.Metrics.calls
    | None -> 0
  in
  check "task spans nest under the open parent span" 6 (calls "outer/task");
  check "outer span closed once" 1 (calls "outer")

(* ------------------------------------------------------------------ *)
(* The pipeline at jobs = 1 vs jobs = 4: bit-identical results, and the
   observability accounting invariant survives the parallel merge. *)

(* Deterministic (no wall-clock caps) and cheap enough for QCheck. *)
let par_limits =
  {
    Pipeline.default_limits with
    Pipeline.hc_evals = 4_000;
    hccs_evals = 1_000;
    use_ilp = false;
    use_ilp_init = false;
    stage_seconds = None;
  }

let instance_of_seed seed =
  let rng = Rng.create seed in
  let n = 4 + (seed mod 5) in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n ~q:0.3) ~k:2 in
  let machine = Machine.uniform ~p:3 ~g:2 ~l:4 in
  (machine, dag)

let prop_pipeline_jobs_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:8
       ~name:"Pipeline.run: jobs=4 returns identical stage costs to jobs=1"
       QCheck2.Gen.(int_range 1 1000)
       (fun seed ->
         let machine, dag = instance_of_seed seed in
         let s1, c1 = Par.with_jobs 1 (fun () -> Pipeline.run ~limits:par_limits machine dag) in
         let s4, c4 = Par.with_jobs 4 (fun () -> Pipeline.run ~limits:par_limits machine dag) in
         c1 = c4 && Bsp_cost.total machine s1 = Bsp_cost.total machine s4))

let prop_multilevel_jobs_invariant =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:6
       ~name:"Pipeline.run_multilevel: jobs=4 returns identical cost to jobs=1"
       QCheck2.Gen.(int_range 1 1000)
       (fun seed ->
         let machine, dag = instance_of_seed seed in
         let config = { Multilevel.default_config with Multilevel.ratios = [ 0.5; 0.3 ] } in
         let run () =
           Bsp_cost.total machine
             (Pipeline.run_multilevel ~limits:par_limits ~config machine dag)
         in
         Par.with_jobs 1 run = Par.with_jobs 4 run))

(* Mirrors test_obs's exact accounting test, but with the candidate
   chains fanned out over 4 domains: the per-span [steps_used] must
   still sum to exactly the engine counters after the child-registry
   merge. *)
let accounting_limits =
  {
    Pipeline.default_limits with
    Pipeline.hc_evals = 5_000_000;
    hccs_evals = 5_000_000;
    ilp_full_nodes = 1_500;
    ilp_part_nodes = 120;
    ilp_cs_nodes = 200;
    use_ilp = true;
    use_ilp_init = false;
    stage_seconds = None;
  }

let accounting_instance () =
  let rng = Rng.create 7 in
  ( Machine.uniform ~p:3 ~g:2 ~l:4,
    Finegrained.exp (Sparse_matrix.random rng ~n:5 ~q:0.3) ~k:2 )

let test_parallel_steps_accounting () =
  let machine, dag = accounting_instance () in
  let r = Obs.Metrics.create () in
  let _ =
    Obs.Metrics.with_registry r (fun () ->
        at_jobs 4 (fun () -> Pipeline.run ~limits:accounting_limits machine dag))
  in
  let span_total =
    List.fold_left
      (fun acc (s : Obs.Metrics.span_stats) -> acc + s.Obs.Metrics.steps_used)
      0 (Obs.Metrics.span_list r)
  in
  let counter_total =
    Obs.Metrics.counter_value r "hc.moves_evaluated"
    + Obs.Metrics.counter_value r "hccs.moves_evaluated"
    + Obs.Metrics.counter_value r "bb.nodes_explored"
  in
  check_bool "pipeline did work" true (span_total > 0);
  check "span steps match engine counters under jobs=4" counter_total span_total

let test_registry_merge_matches_sequential () =
  (* Everything except wall-clock seconds must be identical between a
     sequential run and a parallel run merged from child registries. *)
  let machine, dag = accounting_instance () in
  let run j =
    let r = Obs.Metrics.create () in
    let _ =
      Obs.Metrics.with_registry r (fun () ->
          at_jobs j (fun () -> Pipeline.run ~limits:accounting_limits machine dag))
    in
    r
  in
  let r1 = run 1 and r4 = run 4 in
  let spans r =
    List.map
      (fun (s : Obs.Metrics.span_stats) -> (s.path, s.calls, s.steps_used))
      (Obs.Metrics.span_list r)
    |> List.sort compare
  in
  check_bool "span paths, calls and steps equal" true (spans r1 = spans r4);
  List.iter
    (fun c ->
      check (Printf.sprintf "counter %s equal" c) (Obs.Metrics.counter_value r1 c)
        (Obs.Metrics.counter_value r4 c))
    [ "hc.moves_evaluated"; "hccs.moves_evaluated"; "bb.nodes_explored" ];
  check_bool "best-cost trajectory equal" true
    (Obs.Metrics.series_values r1 "pipeline.best_cost"
    = Obs.Metrics.series_values r4 "pipeline.best_cost")

let () =
  Par.set_jobs 1;
  Alcotest.run "par"
    [
      ( "primitives",
        [
          Alcotest.test_case "map = List.map" `Quick test_map_matches_list_map;
          Alcotest.test_case "results positional" `Quick test_map_results_positional;
          Alcotest.test_case "nested fan-out" `Quick test_nested_map;
          Alcotest.test_case "exception: lowest index wins" `Quick
            test_exception_lowest_index_wins;
          Alcotest.test_case "map_reduce non-commutative" `Quick
            test_map_reduce_non_commutative;
          Alcotest.test_case "best_of index tie-break" `Quick
            test_best_of_index_tie_break;
          Alcotest.test_case "chunk sizing" `Quick test_chunk_size;
          Alcotest.test_case "last_chunk in stats" `Quick test_last_chunk_recorded;
          Alcotest.test_case "with_jobs restores" `Quick test_with_jobs_restores;
        ] );
      ( "obs-merge",
        [
          Alcotest.test_case "counters merge" `Quick test_parallel_counters_merge;
          Alcotest.test_case "series submission order" `Quick
            test_parallel_series_submission_order;
          Alcotest.test_case "spans inherit parent path" `Quick
            test_parallel_spans_inherit_parent_path;
        ] );
      ( "pipeline",
        [
          prop_pipeline_jobs_invariant;
          prop_multilevel_jobs_invariant;
          Alcotest.test_case "steps accounting exact under jobs=4" `Quick
            test_parallel_steps_accounting;
          Alcotest.test_case "registry merge matches sequential" `Quick
            test_registry_merge_matches_sequential;
        ] );
    ]
