let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* The figure-1 style example of test_schedule.ml: two processors, two
   supersteps, values crossing in both directions in phase 0. *)
let example () =
  let dag =
    Dag.of_edges ~n:6
      ~edges:[ (1, 4); (2, 4); (3, 5); (0, 5) ]
      ~work:[| 2; 3; 1; 1; 2; 4 |] ~comm:[| 1; 1; 2; 1; 1; 1 |]
  in
  Schedule.of_assignment dag ~proc:[| 0; 0; 1; 1; 0; 1 |] ~step:[| 0; 0; 0; 0; 1; 1 |]

let reconcile_ok m s =
  match Profile.reconcile (Profile.compute m s) (Bsp_cost.breakdown m s) with
  | Ok () -> true
  | Error msg -> Alcotest.failf "profile does not reconcile: %s" msg

let test_example_attribution () =
  let s = example () in
  let m = Machine.uniform ~p:2 ~g:3 ~l:5 in
  let prof = Profile.compute m s in
  check "supersteps" 2 prof.Profile.num_supersteps;
  let s0 = prof.Profile.supersteps.(0) and s1 = prof.Profile.supersteps.(1) in
  (* Superstep 0: p0 works 5, p1 works 2 -> bottleneck p0, idle [0; 3].
     Volumes: node 0 (c=1) 0 -> 1, node 2 (c=2) 1 -> 0. *)
  check "s0 work bottleneck" 0 s0.Profile.work_bottleneck;
  Alcotest.(check (array int)) "s0 idle" [| 0; 3 |] s0.Profile.idle;
  Alcotest.(check (array int)) "s0 send" [| 1; 2 |] s0.Profile.send;
  Alcotest.(check (array int)) "s0 recv" [| 2; 1 |] s0.Profile.recv;
  check "s0 comm max" 2 s0.Profile.comm_max;
  (* h is [max(1,2); max(2,1)] = [2; 2]: tie broken to the lowest id. *)
  check "s0 comm bottleneck" 0 s0.Profile.comm_bottleneck;
  Alcotest.(check (float 1e-9)) "s0 work imbalance (5 vs mean 3.5)"
    (10.0 /. 7.0) s0.Profile.work_imbalance;
  (* Superstep 1: p0 works 2, p1 works 4; no communication. *)
  check "s1 work bottleneck" 1 s1.Profile.work_bottleneck;
  check "s1 comm max" 0 s1.Profile.comm_max;
  check "s1 comm bottleneck (-1: empty phase)" (-1) s1.Profile.comm_bottleneck;
  Alcotest.(check (float 1e-9)) "s1 comm imbalance is 1 by convention" 1.0
    s1.Profile.comm_imbalance;
  (* Totals. *)
  Alcotest.(check (array int)) "proc work" [| 7; 6 |] prof.Profile.proc_work;
  Alcotest.(check (array int)) "proc idle" [| 2; 3 |] prof.Profile.proc_idle;
  check "traffic 0->1" 1 prof.Profile.traffic.(0).(1);
  check "traffic 1->0" 2 prof.Profile.traffic.(1).(0);
  Alcotest.(check (float 1e-9)) "p0 utilisation" (7.0 /. 9.0)
    (Profile.work_utilisation prof 0);
  (* Lower bound: ceil(13/2) = 7 beats the critical path work 6; plus
     the one-superstep latency floor. Achieved total is 25. *)
  check "node work" 13 prof.Profile.node_work;
  check "critical path work" 6 prof.Profile.critical_path_work;
  check "work floor" 7 prof.Profile.work_floor;
  check "lower bound" 12 prof.Profile.lower_bound;
  check "total" 25 prof.Profile.total;
  Alcotest.(check (float 1e-9)) "gap ratio" (25.0 /. 12.0) (Profile.gap_ratio prof);
  check_bool "reconciles" true (reconcile_ok m s)

let test_example_numa_traffic () =
  let s = example () in
  (* Asymmetric coefficients: 0 -> 1 costs 2 per unit, 1 -> 0 costs 3. *)
  let m = Machine.explicit ~g:3 ~l:5 ~lambda:[| [| 0; 2 |]; [| 3; 0 |] |] in
  let prof = Profile.compute m s in
  check "traffic 0->1 weighted" 2 prof.Profile.traffic.(0).(1);
  check "traffic 1->0 weighted" 6 prof.Profile.traffic.(1).(0);
  Alcotest.(check (array int)) "proc send = row sums" [| 2; 6 |] prof.Profile.proc_send;
  Alcotest.(check (array int)) "proc recv = col sums" [| 6; 2 |] prof.Profile.proc_recv;
  check_bool "reconciles" true (reconcile_ok m s)

let test_empty_dag () =
  let dag = Dag.of_edges ~n:0 ~edges:[] ~work:[||] ~comm:[||] in
  let m = Machine.uniform ~p:4 ~g:2 ~l:7 in
  let prof = Profile.compute m (Schedule.trivial dag) in
  check "no supersteps" 0 prof.Profile.num_supersteps;
  check "zero total" 0 prof.Profile.total;
  check "zero lower bound" 0 prof.Profile.lower_bound;
  Alcotest.(check (float 1e-9)) "gap 1.0 by convention" 1.0 (Profile.gap_ratio prof)

let test_report_renders () =
  let s = example () in
  let m = Machine.uniform ~p:2 ~g:3 ~l:5 in
  let text = Format.asprintf "%a" Profile.pp (Profile.compute m s) in
  List.iter
    (fun needle ->
      check_bool ("report mentions " ^ needle) true
        (Test_util.contains_substring text needle))
    [ "cost 25"; "lower bound 12"; "traffic matrix"; "bottleneck p0"; "util" ]

(* Random schedule in the style of test_schedule's properties: processors
   uniform, steps follow wavefront levels so the assignment is valid. *)
let random_schedule rng dag p =
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng p) in
  let step = Array.map (fun l -> 2 * l) level in
  Schedule.of_assignment dag ~proc ~step

let gen_case =
  QCheck2.Gen.(
    pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 10_000)))

let prop_reconciles =
  Test_util.qtest "profile reconciles with breakdown" gen_case
    (fun (dag, (m, seed)) ->
      let s = random_schedule (Rng.create seed) dag m.Machine.p in
      reconcile_ok m s)

let prop_totals_match_tables =
  Test_util.qtest "profile totals match raw cost tables" gen_case
    (fun (dag, (m, seed)) ->
      let s = random_schedule (Rng.create seed) dag m.Machine.p in
      let prof = Profile.compute m s in
      let num_steps = Schedule.num_supersteps s in
      let work, send, recv = Bsp_cost.tables m s ~num_steps in
      let col table q =
        Array.fold_left (fun acc row -> acc + row.(q)) 0 table
      in
      let p = m.Machine.p in
      let ok = ref true in
      for q = 0 to p - 1 do
        if prof.Profile.proc_work.(q) <> col work q then ok := false;
        if prof.Profile.proc_send.(q) <> col send q then ok := false;
        if prof.Profile.proc_recv.(q) <> col recv q then ok := false;
        (* Traffic matrix row/column sums are exactly the send/receive
           volumes. *)
        if Array.fold_left ( + ) 0 prof.Profile.traffic.(q) <> prof.Profile.proc_send.(q)
        then ok := false;
        let col_sum = ref 0 in
        for src = 0 to p - 1 do
          col_sum := !col_sum + prof.Profile.traffic.(src).(q)
        done;
        if !col_sum <> prof.Profile.proc_recv.(q) then ok := false
      done;
      (* Every node is assigned, so per-processor work sums to the DAG's
         total work. *)
      if Array.fold_left ( + ) 0 prof.Profile.proc_work <> Dag.total_work dag then
        ok := false;
      !ok)

let prop_lower_bound_holds =
  Test_util.qtest "achieved cost is never below the lower bound" gen_case
    (fun (dag, (m, seed)) ->
      let s = random_schedule (Rng.create seed) dag m.Machine.p in
      let prof = Profile.compute m s in
      prof.Profile.total >= prof.Profile.lower_bound)

(* ------------------------------------------------------------------ *)
(* Chrome trace export.                                                *)

let count_proc_tracks json =
  match Obs.Json.member "traceEvents" json with
  | Some (Obs.Json.List events) ->
    List.length
      (List.filter
         (fun ev ->
           match (Obs.Json.member "name" ev, Obs.Json.member "args" ev) with
           | Some (Obs.Json.String "thread_name"), Some args ->
             (match Obs.Json.member "name" args with
              | Some (Obs.Json.String name) ->
                String.length name >= 2
                && name.[0] = 'p'
                && String.for_all
                     (function '0' .. '9' -> true | _ -> false)
                     (String.sub name 1 (String.length name - 1))
              | _ -> false)
           | _ -> false)
         events)
  | _ -> Alcotest.fail "trace has no traceEvents list"

let test_trace_shape () =
  let s = example () in
  let m = Machine.uniform ~p:2 ~g:3 ~l:5 in
  (* The emitted text must parse back with our own parser... *)
  let json = Obs.Json.of_string (Trace_export.to_string m s) in
  check "one track per processor" 2 (count_proc_tracks json);
  let events =
    match Obs.Json.member "traceEvents" json with
    | Some (Obs.Json.List evs) -> evs
    | _ -> assert false
  in
  (* ...every event carries a phase, and the timeline extent equals the
     schedule cost: the "end" boundary marker sits at ts = 25. *)
  List.iter
    (fun ev ->
      match Obs.Json.member "ph" ev with
      | Some (Obs.Json.String _) -> ()
      | _ -> Alcotest.fail "event without ph")
    events;
  let end_ts =
    List.find_map
      (fun ev ->
        match Obs.Json.member "name" ev with
        | Some (Obs.Json.String "end") ->
          Option.bind (Obs.Json.member "ts" ev) Obs.Json.to_int_opt
        | _ -> None)
      events
  in
  check "end marker at total cost" 25 (Option.get end_ts);
  (* Slice durations on processor tracks: compute slices sum to the
     per-processor work totals. *)
  let compute_dur tid =
    List.fold_left
      (fun acc ev ->
        match
          ( Obs.Json.member "cat" ev,
            Obs.Json.member "tid" ev,
            Obs.Json.member "dur" ev )
        with
        | Some (Obs.Json.String "compute"), Some (Obs.Json.Int t), Some (Obs.Json.Int d)
          when t = tid ->
          acc + d
        | _ -> acc)
      0 events
  in
  check "p0 compute slices sum to its work" 7 (compute_dur 0);
  check "p1 compute slices sum to its work" 6 (compute_dur 1)

let prop_trace_parses =
  Test_util.qtest ~count:50 "trace export emits valid JSON with P tracks" gen_case
    (fun (dag, (m, seed)) ->
      let s = random_schedule (Rng.create seed) dag m.Machine.p in
      let json = Obs.Json.of_string (Trace_export.to_string m s) in
      count_proc_tracks json = m.Machine.p)

let () =
  Alcotest.run "profile"
    [
      ( "unit",
        [
          Alcotest.test_case "example attribution" `Quick test_example_attribution;
          Alcotest.test_case "NUMA traffic weights" `Quick test_example_numa_traffic;
          Alcotest.test_case "empty DAG" `Quick test_empty_dag;
          Alcotest.test_case "pp report" `Quick test_report_renders;
          Alcotest.test_case "chrome trace shape" `Quick test_trace_shape;
        ] );
      ( "property",
        [
          prop_reconciles;
          prop_totals_match_tables;
          prop_lower_bound_holds;
          prop_trace_parses;
        ] );
    ]
