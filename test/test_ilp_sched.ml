let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let budget () = Budget.combine (Budget.steps 400) (Budget.seconds 10.0)

let small_machine = Machine.uniform ~p:2 ~g:2 ~l:3

let small_instance seed =
  let rng = Rng.create seed in
  Finegrained.spmv (Sparse_matrix.random rng ~n:5 ~q:0.3)

let test_full_improves_or_keeps () =
  let dag = small_instance 11 in
  let m = small_machine in
  let init = Bspg.schedule m dag in
  let improved, report =
    Ilp_schedulers.full ~budget:(budget ()) ~max_vars:2000 ~max_nodes:400 m init
  in
  check_bool "valid" true (Validity.is_valid m improved);
  check_bool "never worse" true
    (report.Ilp_schedulers.cost_after <= report.Ilp_schedulers.cost_before);
  check_bool "solved something" true (report.Ilp_schedulers.sub_solves = 1)

let test_full_gate_on_size () =
  let dag = small_instance 11 in
  let m = small_machine in
  let init = Bspg.schedule m dag in
  let same, report = Ilp_schedulers.full ~max_vars:10 m init in
  check "no solves" 0 report.Ilp_schedulers.sub_solves;
  check_bool "unchanged" true (same == init)

let test_part_monotone () =
  let rng = Rng.create 23 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:8 ~q:0.2) ~k:2 in
  let m = small_machine in
  let init = Bspg.schedule m dag in
  let improved, report =
    Ilp_schedulers.part ~budget:(budget ()) ~max_vars:200 ~max_nodes:120 m init
  in
  check_bool "valid" true (Validity.is_valid m improved);
  check_bool "never worse" true
    (report.Ilp_schedulers.cost_after <= report.Ilp_schedulers.cost_before);
  check_bool "covered intervals" true (report.Ilp_schedulers.sub_solves >= 1)

let test_init_valid () =
  let dag = small_instance 7 in
  let m = small_machine in
  let s = Ilp_schedulers.init ~budget:(budget ()) ~max_vars:160 ~max_nodes:120 m dag in
  check_bool "valid" true (Validity.is_valid m s);
  check_bool "all assigned" true (Array.for_all (fun q -> q >= 0) s.Schedule.proc)

let test_init_zero_budget_fallback () =
  (* With an exhausted budget every batch falls back; the result is the
     trivial-per-batch schedule, still valid. *)
  let dag = small_instance 7 in
  let m = small_machine in
  let s = Ilp_schedulers.init ~budget:(Budget.steps 0) m dag in
  check_bool "valid" true (Validity.is_valid m s)

let test_comm_schedule_monotone () =
  let rng = Rng.create 31 in
  let dag = Finegrained.exp (Sparse_matrix.random rng ~n:10 ~q:0.2) ~k:3 in
  let m = Machine.uniform ~p:4 ~g:3 ~l:2 in
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun v -> v mod 4) in
  let sched = Schedule.of_assignment dag ~proc ~step:level in
  let improved, report =
    Ilp_schedulers.comm_schedule ~budget:(budget ()) ~max_vars:300 ~max_nodes:300 m sched
  in
  check_bool "valid" true (Validity.is_valid m improved);
  check_bool "never worse" true
    (report.Ilp_schedulers.cost_after <= report.Ilp_schedulers.cost_before)

let test_comm_schedule_matches_hccs_space () =
  (* On the HCcs unit example, ILPcs must find at least the same gain. *)
  let dag =
    Dag.of_edges ~n:6
      ~edges:[ (0, 3); (1, 4); (2, 5) ]
      ~work:(Array.make 6 1) ~comm:[| 4; 1; 4; 1; 1; 1 |]
  in
  let m = Machine.uniform ~p:4 ~g:2 ~l:1 in
  let s =
    Schedule.of_assignment dag ~proc:[| 0; 0; 2; 1; 1; 3 |] ~step:[| 0; 0; 0; 2; 2; 1 |]
  in
  let improved, report = Ilp_schedulers.comm_schedule ~budget:(budget ()) m s in
  check_bool "valid" true (Validity.is_valid m improved);
  check_bool "found the gain" true
    (report.Ilp_schedulers.cost_before - report.Ilp_schedulers.cost_after >= 2)

(* Property: the interval engine never invalidates or worsens a schedule
   regardless of DAG/machine (acceptance is checked on true cost). *)
let prop_part_safe =
  Test_util.qtest ~count:25 "ilppart safe"
    QCheck2.Gen.(pair (Test_util.arb_dag ~max_n:14 ()) (pair (Test_util.arb_machine ~max_p:4 ()) (int_bound 10_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let level = Dag.wavefronts dag in
      let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng m.Machine.p) in
      let s = Schedule.of_assignment dag ~proc ~step:level in
      let improved, report =
        Ilp_schedulers.part ~budget:(Budget.steps 60) ~max_vars:150 ~max_nodes:40 m s
      in
      Validity.is_valid m improved
      && report.Ilp_schedulers.cost_after <= report.Ilp_schedulers.cost_before)

let prop_comm_schedule_safe =
  Test_util.qtest ~count:25 "ilpcs safe"
    QCheck2.Gen.(pair (Test_util.arb_dag ~max_n:16 ()) (pair (Test_util.arb_machine ~max_p:4 ()) (int_bound 10_000)))
    (fun (dag, (m, seed)) ->
      let rng = Rng.create seed in
      let level = Dag.wavefronts dag in
      let proc = Array.init (Dag.n dag) (fun _ -> Rng.int rng m.Machine.p) in
      let s = Schedule.of_assignment dag ~proc ~step:level in
      let improved, report =
        Ilp_schedulers.comm_schedule ~budget:(Budget.steps 80) ~max_vars:120
          ~max_nodes:60 m s
      in
      Validity.is_valid m improved
      && report.Ilp_schedulers.cost_after <= report.Ilp_schedulers.cost_before)

let () =
  Alcotest.run "ilp_sched"
    [
      ( "unit",
        [
          Alcotest.test_case "ilpfull improves or keeps" `Quick test_full_improves_or_keeps;
          Alcotest.test_case "ilpfull size gate" `Quick test_full_gate_on_size;
          Alcotest.test_case "ilppart monotone" `Quick test_part_monotone;
          Alcotest.test_case "ilpinit valid" `Quick test_init_valid;
          Alcotest.test_case "ilpinit fallback" `Quick test_init_zero_budget_fallback;
          Alcotest.test_case "ilpcs monotone" `Quick test_comm_schedule_monotone;
          Alcotest.test_case "ilpcs finds hccs gain" `Quick
            test_comm_schedule_matches_hccs_space;
        ] );
      ("property", [ prop_part_safe; prop_comm_schedule_safe ]);
    ]
