(* Direct tests of the interval ILP engine (the machinery behind
   ILPfull / ILPpart / ILPinit). *)

let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let machine2 = Machine.uniform ~p:2 ~g:2 ~l:3

(* Chain 0 -> 1 -> 2 with unit weights. *)
let chain3 = Test_util.chain 3

let full_spec dag machine proc step =
  {
    Ilp_interval.dag;
    machine;
    proc = Array.copy proc;
    step = Array.copy step;
    v0 = List.init (Dag.n dag) Fun.id;
    s_lo = 0;
    s_hi = (if Dag.n dag = 0 then 0 else Array.fold_left max 0 step);
  }

let test_estimate_vars () =
  let spec = full_spec chain3 machine2 [| 0; 0; 0 |] [| 0; 1; 2 |] in
  (* |V0| * |S0| * P^2 = 3 * 3 * 4. *)
  check "estimate" 36 (Ilp_interval.estimate_vars spec)

let test_validation_errors () =
  let fails f = try ignore (f ()); false with Invalid_argument _ -> true in
  check_bool "empty window" true
    (fails (fun () ->
         Ilp_interval.build
           { (full_spec chain3 machine2 [| 0; 0; 0 |] [| 0; 1; 2 |]) with
             Ilp_interval.s_lo = 2;
             s_hi = 1;
           }));
  check_bool "v0 node outside window" true
    (fails (fun () ->
         Ilp_interval.build
           { (full_spec chain3 machine2 [| 0; 0; 0 |] [| 0; 1; 2 |]) with
             Ilp_interval.s_hi = 1;
           }));
  (* Fixed node inside the window. *)
  check_bool "fixed node in window" true
    (fails (fun () ->
         Ilp_interval.build
           { (full_spec chain3 machine2 [| 0; 0; 0 |] [| 0; 1; 2 |]) with
             Ilp_interval.v0 = [ 0; 1 ];
           }))

let test_full_model_solution_is_schedulable () =
  (* Solve the full model for the chain and check the extraction yields a
     valid assignment whose model objective matches its true cost minus
     the latency constant. *)
  let proc = [| 0; 0; 0 |] and step = [| 0; 1; 2 |] in
  let spec = full_spec chain3 machine2 proc step in
  let model, built = Ilp_interval.build spec in
  let outcome = Branch_bound.solve ~max_nodes:4000 model in
  (match outcome.Branch_bound.solution with
   | None -> Alcotest.fail "no solution found"
   | Some x ->
     check_bool "model constraints satisfied" true (Ilp.constraints_satisfied model x);
     let updates = Ilp_interval.extract built x in
     let proc' = Array.copy proc and step' = Array.copy step in
     List.iter
       (fun (v, q, s) ->
         proc'.(v) <- q;
         step'.(v) <- s)
       updates;
     check_bool "assignment valid" true
       (Schedule.assignment_valid chain3 ~proc:proc' ~step:step');
     (* The optimum for a chain on one processor: everything in one
        superstep of the three -> work 3, no communication. The model
        objective excludes the constant 3 * l latency. *)
     Alcotest.(check (float 1e-6)) "objective" 3.0 outcome.Branch_bound.objective)

let test_scope_cost_matches_bsp_cost () =
  (* For a full-window spec of a lazily-communicated schedule, the scope
     cost must equal total cost minus the latency constant. *)
  let rng = Rng.create 12 in
  let dag = Test_util.random_dag rng ~n:10 ~edge_prob:0.25 ~max_w:3 ~max_c:2 in
  let level = Dag.wavefronts dag in
  let proc = Array.init (Dag.n dag) (fun v -> v mod 2) in
  let sched = Schedule.of_assignment dag ~proc ~step:level in
  let spec = full_spec dag machine2 proc level in
  let scope = Ilp_interval.current_scope_cost spec in
  let total = Bsp_cost.total machine2 sched in
  let latency = Schedule.num_supersteps sched * machine2.Machine.l in
  check "scope = total - latency" (total - latency) scope

let test_interval_respects_boundary () =
  (* Nodes 0,1 fixed in superstep 0 on different processors; node 2 (on
     the window [1,1]) consumes both. Any feasible solution must price
     the transfer of whichever producer sits on the other processor. *)
  let dag =
    Dag.of_edges ~n:3 ~edges:[ (0, 2); (1, 2) ] ~work:[| 1; 1; 1 |] ~comm:[| 3; 5; 1 |]
  in
  let proc = [| 0; 1; 0 |] and step = [| 0; 0; 1 |] in
  let spec =
    {
      Ilp_interval.dag;
      machine = machine2;
      proc = Array.copy proc;
      step = Array.copy step;
      v0 = [ 2 ];
      s_lo = 1;
      s_hi = 1;
    }
  in
  let model, built = Ilp_interval.build spec in
  let outcome = Branch_bound.solve ~max_nodes:2000 model in
  match outcome.Branch_bound.solution with
  | None -> Alcotest.fail "no solution"
  | Some x ->
    let updates = Ilp_interval.extract built x in
    (match updates with
     | [ (2, q, 1) ] ->
       (* Whichever side node 2 lands on, the other producer's volume
          (times g) is unavoidable; the solver should pick processor 0 to
          move only c=3 instead of c=5... wait: on p0 it receives node
          1's value (c=5); on p1 it receives node 0's (c=3). Optimal is
          p1. Work in the window is 1 either way. *)
       check "optimal boundary processor" 1 q
     | _ -> Alcotest.fail "unexpected extraction shape")

let () =
  Alcotest.run "ilp_interval"
    [
      ( "engine",
        [
          Alcotest.test_case "estimate" `Quick test_estimate_vars;
          Alcotest.test_case "validation" `Quick test_validation_errors;
          Alcotest.test_case "full model schedulable" `Quick
            test_full_model_solution_is_schedulable;
          Alcotest.test_case "scope cost" `Quick test_scope_cost_matches_bsp_cost;
          Alcotest.test_case "boundary pricing" `Quick test_interval_respects_boundary;
        ] );
    ]
