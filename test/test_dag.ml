let check = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_basic_accessors () =
  let g = Test_util.diamond () in
  check "n" 4 (Dag.n g);
  check "edges" 4 (Dag.num_edges g);
  check "work" 3 (Dag.work g 2);
  check "comm" 2 (Dag.comm g 2);
  check "total work" 10 (Dag.total_work g);
  check "total comm" 5 (Dag.total_comm g);
  check "indeg sink" 2 (Dag.in_degree g 3);
  check "outdeg source" 2 (Dag.out_degree g 0);
  Alcotest.(check (list int)) "sources" [ 0 ] (Dag.sources g);
  Alcotest.(check (list int)) "sinks" [ 3 ] (Dag.sinks g)

let test_duplicate_edges_collapse () =
  let g =
    Dag.of_edges ~n:2 ~edges:[ (0, 1); (0, 1); (0, 1) ] ~work:[| 1; 1 |] ~comm:[| 1; 1 |]
  in
  check "edges deduped" 1 (Dag.num_edges g)

let test_cycle_rejected () =
  Alcotest.check_raises "cycle" (Invalid_argument "Dag.of_edges: edge set contains a directed cycle")
    (fun () ->
      ignore
        (Dag.of_edges ~n:3 ~edges:[ (0, 1); (1, 2); (2, 0) ] ~work:[| 1; 1; 1 |]
           ~comm:[| 1; 1; 1 |]))

let test_self_loop_rejected () =
  Alcotest.check_raises "self loop" (Invalid_argument "Dag: self-loop") (fun () ->
      ignore (Dag.of_edges ~n:1 ~edges:[ (0, 0) ] ~work:[| 1 |] ~comm:[| 1 |]))

let test_negative_weight_rejected () =
  Alcotest.check_raises "negative work" (Invalid_argument "Dag: negative work weight")
    (fun () -> ignore (Dag.of_edges ~n:1 ~edges:[] ~work:[| -1 |] ~comm:[| 1 |]))

let test_topological_order () =
  let g = Test_util.diamond () in
  let order = Dag.topological_order g in
  let rank = Dag.topological_rank g in
  check "first" 0 order.(0);
  check "last" 3 order.(3);
  Dag.iter_edges g (fun u v ->
      check_bool "edge respects order" true (rank.(u) < rank.(v)))

let test_wavefronts () =
  let g = Test_util.diamond () in
  Alcotest.(check (array int)) "levels" [| 0; 1; 1; 2 |] (Dag.wavefronts g);
  check "count" 3 (Dag.num_wavefronts g);
  let c = Test_util.chain 5 in
  check "chain wavefronts" 5 (Dag.num_wavefronts c)

let test_bottom_level () =
  let g = Test_util.diamond () in
  (* Without communication: bl(3)=4, bl(1)=2+4=6, bl(2)=3+4=7, bl(0)=1+7=8. *)
  let bl = Dag.bottom_level g ~comm_factor:0 in
  Alcotest.(check (array int)) "plain" [| 8; 6; 7; 4 |] bl;
  (* With comm factor 2: bl(1)=2+2*1+4=8, bl(2)=3+2*2+4=11, bl(0)=1+2+11=14. *)
  let blc = Dag.bottom_level g ~comm_factor:2 in
  Alcotest.(check (array int)) "with comm" [| 14; 8; 11; 4 |] blc;
  check "critical path" 8 (Dag.critical_path_work g)

let test_paths () =
  let g = Test_util.diamond () in
  check_bool "0->3" true (Dag.has_path g 0 3);
  check_bool "3->0" false (Dag.has_path g 3 0);
  check_bool "1->2" false (Dag.has_path g 1 2);
  check_bool "reflexive" true (Dag.has_path g 1 1);
  (* (0,1): alternative would need 0->2->..->1, absent. *)
  check_bool "no alt 0->1" false (Dag.has_alternative_path g 0 1);
  let g2 =
    Dag.of_edges ~n:3 ~edges:[ (0, 1); (1, 2); (0, 2) ] ~work:[| 1; 1; 1 |]
      ~comm:[| 1; 1; 1 |]
  in
  check_bool "alt 0->2 via 1" true (Dag.has_alternative_path g2 0 2);
  check_bool "no alt 0->1" false (Dag.has_alternative_path g2 0 1)

let test_induced_subgraph () =
  let g = Test_util.diamond () in
  let sub, old_ids = Dag.induced_subgraph g [ 0; 1; 3 ] in
  check "sub n" 3 (Dag.n sub);
  check "sub edges" 2 (Dag.num_edges sub);
  Alcotest.(check (array int)) "id map" [| 0; 1; 3 |] old_ids;
  check "weights carried" 4 (Dag.work sub 2)

let test_largest_component () =
  (* Two components: a 3-chain and an isolated pair. *)
  let g =
    Dag.of_edges ~n:5 ~edges:[ (0, 1); (1, 2); (3, 4) ] ~work:(Array.make 5 1)
      ~comm:(Array.make 5 1)
  in
  let cc, old_ids = Dag.largest_weakly_connected_component g in
  check "cc size" 3 (Dag.n cc);
  Alcotest.(check (array int)) "cc nodes" [| 0; 1; 2 |] old_ids

let test_paper_weights () =
  let g = Test_util.diamond () in
  let w = Dag.assign_paper_weights g in
  check "source w" 1 (Dag.work w 0);
  check "indeg1 w" 0 (Dag.work w 1);
  check "indeg2 w" 1 (Dag.work w 3);
  check "comm all 1" 1 (Dag.comm w 2)

let test_builder () =
  let b = Dag_builder.create () in
  let a = Dag_builder.add_node b ~work:2 ~comm:3 in
  let c = Dag_builder.add_node b ~work:1 ~comm:1 in
  Dag_builder.add_edge b a c;
  Dag_builder.set_work b c 7;
  let g = Dag_builder.finish b in
  check "n" 2 (Dag.n g);
  check "override" 7 (Dag.work g c);
  check "kept" 2 (Dag.work g a);
  Alcotest.check_raises "builder self loop" (Invalid_argument "Dag_builder.add_edge: self-loop")
    (fun () -> Dag_builder.add_edge b a a)

let test_hyperdag_roundtrip () =
  let g = Test_util.diamond () in
  let g2 = Hyperdag_io.of_string (Hyperdag_io.to_string g) in
  check "n" (Dag.n g) (Dag.n g2);
  Alcotest.(check (list (pair int int))) "edges" (Dag.edges g) (Dag.edges g2);
  check "work preserved" (Dag.work g 2) (Dag.work g2 2);
  check "comm preserved" (Dag.comm g 2) (Dag.comm g2 2)

let test_hyperdag_parse_errors () =
  Alcotest.check_raises "empty" (Failure "Hyperdag_io: empty input") (fun () ->
      ignore (Hyperdag_io.of_string "% only comments\n"));
  (try
     ignore (Hyperdag_io.of_string "1 2 2\n0 0\n0 5\n0 1 1\n1 1 1\n");
     Alcotest.fail "out-of-range pin accepted"
   with Failure _ -> ())

let test_hyperdag_tabs_and_crlf () =
  (* Real HyperDAG_DB files mix tabs and CRLF line endings. *)
  let g = Test_util.diamond () in
  let mangled =
    Hyperdag_io.to_string g
    |> String.split_on_char '\n'
    |> List.map (String.map (fun c -> if c = ' ' then '\t' else c))
    |> String.concat "\r\n"
  in
  let g2 = Hyperdag_io.of_string mangled in
  check "n" (Dag.n g) (Dag.n g2);
  Alcotest.(check (list (pair int int))) "edges" (Dag.edges g) (Dag.edges g2);
  check "work preserved" (Dag.work g 2) (Dag.work g2 2)

let test_hyperdag_excess_weight_lines_rejected () =
  let g = Test_util.diamond () in
  let text = Hyperdag_io.to_string g ^ "0 9 9\n1 9 9\n" in
  try
    ignore (Hyperdag_io.of_string text : Dag.t);
    Alcotest.fail "excess weight lines accepted"
  with Failure msg ->
    check_bool "names the surplus" true
      (msg = "Hyperdag_io: 2 lines after the 4 declared weight lines")

(* Since the CSR refactor the topological order and rank are computed
   eagerly at construction, so warm_caches has nothing left to do: it
   must not change anything observable, and a freshly built DAG is
   safe to read from another domain without any warm-up call. *)
let test_warm_caches_noop () =
  let g = Test_util.diamond () in
  let topo_before = Array.copy (Dag.topological_order g) in
  let rank_before = Array.copy (Dag.topological_rank g) in
  let edges_before = Dag.edges g in
  Dag.warm_caches g;
  Alcotest.(check (array int)) "topo unchanged" topo_before (Dag.topological_order g);
  Alcotest.(check (array int)) "rank unchanged" rank_before (Dag.topological_rank g);
  Alcotest.(check (list (pair int int))) "edges unchanged" edges_before (Dag.edges g);
  let c = Test_util.chain 6 in
  let d = Domain.spawn (fun () -> (Dag.topological_order c).(5)) in
  check "eager topo readable cross-domain" 5 (Domain.join d)

let test_is_acyclic_edges () =
  check_bool "acyclic" true (Dag.is_acyclic_edges ~n:3 [ (0, 1); (1, 2) ]);
  check_bool "cyclic" false (Dag.is_acyclic_edges ~n:3 [ (0, 1); (1, 2); (2, 0) ])

(* Property: topological order is a permutation respecting all edges. *)
let prop_topo_valid =
  Test_util.qtest "topological order valid" (Test_util.arb_dag ()) (fun g ->
      let order = Dag.topological_order g in
      let rank = Dag.topological_rank g in
      Array.length order = Dag.n g
      && Array.for_all (fun v -> order.(rank.(v)) = v) (Array.init (Dag.n g) Fun.id)
      &&
      let ok = ref true in
      Dag.iter_edges g (fun u v -> if rank.(u) >= rank.(v) then ok := false);
      !ok)

(* Property: has_path agrees with a naive transitive closure. *)
let prop_has_path =
  Test_util.qtest ~count:50 "has_path matches closure" (Test_util.arb_dag ~max_n:14 ())
    (fun g ->
      let n = Dag.n g in
      let reach = Array.make_matrix n n false in
      for v = 0 to n - 1 do
        reach.(v).(v) <- true
      done;
      let order = Dag.topological_order g in
      for i = n - 1 downto 0 do
        let u = order.(i) in
        Array.iter
          (fun w ->
            for x = 0 to n - 1 do
              if reach.(w).(x) then reach.(u).(x) <- true
            done)
          (Dag.succ g u)
      done;
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if Dag.has_path g u v <> reach.(u).(v) then ok := false
        done
      done;
      !ok)

(* Property: hyperDAG serialisation round-trips structure and weights. *)
let prop_roundtrip =
  Test_util.qtest "hyperdag roundtrip" (Test_util.arb_dag ()) (fun g ->
      let g2 = Hyperdag_io.of_string (Hyperdag_io.to_string g) in
      Dag.n g = Dag.n g2
      && Dag.edges g = Dag.edges g2
      && Array.for_all
           (fun v -> Dag.work g v = Dag.work g2 v && Dag.comm g v = Dag.comm g2 v)
           (Array.init (Dag.n g) Fun.id))

(* Property: parsing is whitespace- and comment-insensitive — a
   serialisation mangled with tabs, CRLF endings and injected comment
   lines parses to the same DAG as the clean text. *)
let prop_roundtrip_mangled =
  Test_util.qtest ~count:60 "hyperdag roundtrip (tabs, CRLF, comments)"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (int_bound 10_000))
    (fun (g, seed) ->
      let rng = Rng.create seed in
      let buf = Buffer.create 4096 in
      List.iter
        (fun line ->
          if Rng.bernoulli rng 0.3 then Buffer.add_string buf "%\tnoise comment\r\n";
          let line =
            if Rng.bernoulli rng 0.5 then
              String.map (fun c -> if c = ' ' then '\t' else c) line
            else line
          in
          Buffer.add_string buf line;
          Buffer.add_string buf (if Rng.bernoulli rng 0.5 then "\r\n" else "\n"))
        (String.split_on_char '\n' (Hyperdag_io.to_string g));
      let g2 = Hyperdag_io.of_string (Buffer.contents buf) in
      Dag.n g = Dag.n g2
      && Dag.edges g = Dag.edges g2
      && Array.for_all
           (fun v -> Dag.work g v = Dag.work g2 v && Dag.comm g v = Dag.comm g2 v)
           (Array.init (Dag.n g) Fun.id))

(* Generator of raw (n, edge list) inputs for the CSR-vs-model property:
   edges go low id -> high id (acyclic by construction), arrive in a
   shuffled order, and a fraction are duplicated so the dedup path is
   exercised. *)
let arb_raw_edges =
  QCheck2.Gen.(
    let* seed = int_bound 1_000_000 in
    let* n = int_range 1 20 in
    let* dense = bool in
    let rng = Rng.create seed in
    let p = if dense then 0.35 else 0.12 in
    let edges = ref [] in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if Rng.bernoulli rng p then begin
          edges := (u, v) :: !edges;
          if Rng.bernoulli rng 0.25 then edges := (u, v) :: !edges
        end
      done
    done;
    let shuffled =
      List.map (fun e -> (Rng.int rng 1_000_000, e)) !edges
      |> List.sort compare |> List.map snd
    in
    return (n, shuffled))

(* Property: the CSR representation built by of_edges is semantically
   identical to a naive adjacency model of the same edge list — edge
   count after dedup, sorted succ/pred sets, degrees, the zero-alloc
   iterators, the raw offset/target arrays, has_edge, and topological
   order validity all agree. *)
let prop_csr_matches_model =
  Test_util.qtest ~count:200 "CSR structure matches edge-list model" arb_raw_edges
    (fun (n, edges) ->
      let g = Dag.of_edges ~n ~edges ~work:(Array.make n 1) ~comm:(Array.make n 1) in
      let dedup = List.sort_uniq compare edges in
      let succ_ref = Array.make n [] and pred_ref = Array.make n [] in
      List.iter
        (fun (u, v) ->
          succ_ref.(u) <- v :: succ_ref.(u);
          pred_ref.(v) <- u :: pred_ref.(v))
        (List.rev dedup);
      Array.iteri (fun v l -> pred_ref.(v) <- List.sort compare l) pred_ref;
      let ok = ref (Dag.num_edges g = List.length dedup) in
      let soff = Dag.succ_offsets g and stgt = Dag.succ_targets g in
      let poff = Dag.pred_offsets g and ptgt = Dag.pred_targets g in
      ok :=
        !ok
        && Array.length soff = n + 1
        && Array.length poff = n + 1
        && soff.(0) = 0
        && poff.(0) = 0
        && soff.(n) = Array.length stgt
        && poff.(n) = Array.length ptgt
        && Array.length stgt = Dag.num_edges g
        && Array.length ptgt = Dag.num_edges g;
      for v = 0 to n - 1 do
        (* Allocating slices vs the reference model (sorted ascending). *)
        ok := !ok && Array.to_list (Dag.succ g v) = succ_ref.(v);
        ok := !ok && Array.to_list (Dag.pred g v) = pred_ref.(v);
        ok := !ok && Dag.out_degree g v = List.length succ_ref.(v);
        ok := !ok && Dag.in_degree g v = List.length pred_ref.(v);
        (* Zero-allocation iterators visit the same elements in order. *)
        let via_iter = ref [] in
        Dag.iter_succ g v (fun w -> via_iter := w :: !via_iter);
        ok := !ok && List.rev !via_iter = succ_ref.(v);
        let via_fold = Dag.fold_pred g v ~init:[] (fun acc u -> u :: acc) in
        ok := !ok && List.rev via_fold = pred_ref.(v);
        (* Raw CSR segments are the same slices. *)
        ok :=
          !ok
          && Array.to_list (Array.sub stgt soff.(v) (soff.(v + 1) - soff.(v)))
             = succ_ref.(v)
          && Array.to_list (Array.sub ptgt poff.(v) (poff.(v + 1) - poff.(v)))
             = pred_ref.(v)
      done;
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          ok := !ok && Dag.has_edge g u v = List.mem (u, v) dedup
        done
      done;
      let rank = Dag.topological_rank g in
      let order = Dag.topological_order g in
      ok := !ok && Array.for_all (fun v -> order.(rank.(v)) = v) (Array.init n Fun.id);
      List.iter (fun (u, v) -> ok := !ok && rank.(u) < rank.(v)) dedup;
      !ok)

let () =
  Alcotest.run "dag"
    [
      ( "unit",
        [
          Alcotest.test_case "basic accessors" `Quick test_basic_accessors;
          Alcotest.test_case "duplicate edges collapse" `Quick test_duplicate_edges_collapse;
          Alcotest.test_case "cycle rejected" `Quick test_cycle_rejected;
          Alcotest.test_case "self-loop rejected" `Quick test_self_loop_rejected;
          Alcotest.test_case "negative weight rejected" `Quick test_negative_weight_rejected;
          Alcotest.test_case "topological order" `Quick test_topological_order;
          Alcotest.test_case "wavefronts" `Quick test_wavefronts;
          Alcotest.test_case "bottom level" `Quick test_bottom_level;
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "induced subgraph" `Quick test_induced_subgraph;
          Alcotest.test_case "largest component" `Quick test_largest_component;
          Alcotest.test_case "paper weights" `Quick test_paper_weights;
          Alcotest.test_case "builder" `Quick test_builder;
          Alcotest.test_case "hyperdag roundtrip" `Quick test_hyperdag_roundtrip;
          Alcotest.test_case "hyperdag parse errors" `Quick test_hyperdag_parse_errors;
          Alcotest.test_case "hyperdag tabs + CRLF" `Quick test_hyperdag_tabs_and_crlf;
          Alcotest.test_case "hyperdag excess weight lines" `Quick
            test_hyperdag_excess_weight_lines_rejected;
          Alcotest.test_case "is_acyclic_edges" `Quick test_is_acyclic_edges;
          Alcotest.test_case "warm_caches is a no-op" `Quick test_warm_caches_noop;
        ] );
      ( "property",
        [
          prop_topo_valid;
          prop_has_path;
          prop_roundtrip;
          prop_roundtrip_mangled;
          prop_csr_matches_model;
        ] );
    ]
