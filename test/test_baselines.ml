let check_bool = Alcotest.(check bool)
let check = Alcotest.(check int)

let machine_p p = Machine.uniform ~p ~g:2 ~l:3

let test_cilk_deterministic () =
  let rng = Rng.create 5 in
  let dag = Test_util.random_dag rng ~n:40 ~edge_prob:0.15 ~max_w:4 ~max_c:3 in
  let a = Cilk.run dag ~p:4 ~seed:42 in
  let b = Cilk.run dag ~p:4 ~seed:42 in
  Alcotest.(check (array int)) "same procs" a.Classical.proc b.Classical.proc;
  Alcotest.(check (array int)) "same seq" a.Classical.seq b.Classical.seq

let test_cilk_single_proc () =
  let dag = Test_util.diamond () in
  let s = Cilk.schedule dag ~p:1 ~seed:0 in
  check "one superstep" 1 (Schedule.num_supersteps s);
  check_bool "valid" true (Validity.is_valid (machine_p 1) s)

let test_cilk_uses_all_processors () =
  (* 16 independent nodes on 4 processors: stealing must spread work. *)
  let dag =
    Dag.of_edges ~n:16 ~edges:[] ~work:(Array.make 16 10) ~comm:(Array.make 16 1)
  in
  let cl = Cilk.run dag ~p:4 ~seed:7 in
  let used = Array.make 4 false in
  Array.iter (fun q -> used.(q) <- true) cl.Classical.proc;
  check_bool "all processors used" true (Array.for_all Fun.id used)

let test_cilk_seq_respects_precedence () =
  let rng = Rng.create 9 in
  let dag = Test_util.random_dag rng ~n:30 ~edge_prob:0.2 ~max_w:3 ~max_c:3 in
  let cl = Cilk.run dag ~p:3 ~seed:1 in
  Dag.iter_edges dag (fun u v ->
      check_bool "pred first" true (cl.Classical.seq.(u) < cl.Classical.seq.(v)))

let test_list_schedulers_chain () =
  (* A chain must stay on one processor under both list schedulers: any
     migration only delays the start. *)
  let dag = Test_util.chain 6 in
  let m = machine_p 4 in
  List.iter
    (fun variant ->
      let cl = List_scheduler.run variant m dag in
      let q = cl.Classical.proc.(0) in
      Array.iter (fun q' -> check "chain stays put" q q') cl.Classical.proc)
    [ List_scheduler.Bl_est; List_scheduler.Etf ]

let test_list_scheduler_parallel_work () =
  (* Independent heavy nodes spread across processors. *)
  let dag =
    Dag.of_edges ~n:8 ~edges:[] ~work:(Array.make 8 10) ~comm:(Array.make 8 1)
  in
  let m = machine_p 4 in
  List.iter
    (fun variant ->
      let cl = List_scheduler.run variant m dag in
      let loads = Array.make 4 0 in
      Array.iteri (fun v q -> loads.(q) <- loads.(q) + Dag.work dag v) cl.Classical.proc;
      Array.iter (fun load -> check "balanced" 20 load) loads)
    [ List_scheduler.Bl_est; List_scheduler.Etf ]

let test_hdagg_respects_wavefronts () =
  let dag = Test_util.diamond () in
  let m = machine_p 2 in
  let s = Hdagg.schedule ~aggregate:false m dag in
  Alcotest.(check (array int)) "steps = wavefronts" (Dag.wavefronts dag) s.Schedule.step;
  check_bool "valid" true (Validity.is_valid m s)

let test_hdagg_aggregation_never_worse () =
  let rng = Rng.create 17 in
  let dag = Test_util.random_dag rng ~n:40 ~edge_prob:0.1 ~max_w:4 ~max_c:3 in
  let m = machine_p 4 in
  let plain = Hdagg.schedule ~aggregate:false m dag in
  let agg = Hdagg.schedule ~aggregate:true m dag in
  check_bool "aggregate <= plain" true
    (Bsp_cost.total m agg <= Bsp_cost.total m plain);
  check_bool "valid" true (Validity.is_valid m agg)

(* Property: every baseline produces a valid BSP schedule on random
   DAGs and machines. *)
let prop_baselines_valid =
  Test_util.qtest ~count:60 "baselines valid"
    QCheck2.Gen.(pair (Test_util.arb_dag ()) (pair (Test_util.arb_machine ()) (int_bound 1000)))
    (fun (dag, (m, seed)) ->
      let p = m.Machine.p in
      Validity.is_valid m (Cilk.schedule dag ~p ~seed)
      && Validity.is_valid m (List_scheduler.schedule List_scheduler.Bl_est m dag)
      && Validity.is_valid m (List_scheduler.schedule List_scheduler.Etf m dag)
      && Validity.is_valid m (Hdagg.schedule m dag)
      && Validity.is_valid m (Schedule.trivial dag))

let () =
  Alcotest.run "baselines"
    [
      ( "cilk",
        [
          Alcotest.test_case "deterministic" `Quick test_cilk_deterministic;
          Alcotest.test_case "single processor" `Quick test_cilk_single_proc;
          Alcotest.test_case "stealing spreads work" `Quick test_cilk_uses_all_processors;
          Alcotest.test_case "sequence respects precedence" `Quick
            test_cilk_seq_respects_precedence;
        ] );
      ( "list",
        [
          Alcotest.test_case "chain stays put" `Quick test_list_schedulers_chain;
          Alcotest.test_case "independent work spreads" `Quick
            test_list_scheduler_parallel_work;
        ] );
      ( "hdagg",
        [
          Alcotest.test_case "wavefront steps" `Quick test_hdagg_respects_wavefronts;
          Alcotest.test_case "aggregation never worse" `Quick
            test_hdagg_aggregation_never_worse;
        ] );
      ("property", [ prop_baselines_valid ]);
    ]
