(** Coarse-grained computational DAG generators (Appendix B.1).

    In the coarse-grained representation every matrix or vector is (the
    output of) a single DAG node. The paper extracts such DAGs from a
    running C++ GraphBLAS computation through a hyperDAG backend; that
    toolchain is not available here, so these generators synthesise the
    same op-level DAGs directly by composing the per-iteration operation
    templates of the algorithms the paper names: conjugate gradient,
    BiCGStab, PageRank, label propagation, and k-NN (k-hop reachability).
    The substitution is recorded in DESIGN.md; since the paper assigns
    coarse DAG weights purely structurally ([w = indeg - 1], sources 1,
    [c = 1]), the scheduling-relevant content matches the extracted
    instances.

    All generators take the number of iterations; running an algorithm
    "until convergence" corresponds to picking a larger iteration
    count. *)

type algorithm = Cg_coarse | Bicgstab | Pagerank | Label_propagation | Knn_coarse

val algorithm_name : algorithm -> string

val all_algorithms : algorithm list

val generate : algorithm -> iterations:int -> Dag.t
(** Build the op-level DAG of [iterations] iterations. *)

val nodes_per_iteration : algorithm -> int
(** Size of one iteration's template, used to size instances. *)

val generate_sized : algorithm -> target:int -> Dag.t
(** Pick the iteration count so the DAG has roughly [target] nodes. *)
