(** Test datasets (Appendix B.3).

    The paper builds datasets named [tiny], [small], [medium], [large]
    and [huge] from node-count intervals ([40,80], [250,500],
    [1000,2000], [5000,10000], [50000,100000]): fine-grained instances of
    all four generator families placed at the beginning/middle/end of
    each interval (with deep and wide variants of the iterative
    families), plus the coarse-grained database instances falling in the
    interval. A separate 10-instance training set is used to tune the
    initialisation heuristics (Appendix C.1).

    Reproducing the full sizes takes hours of scheduling time, so each
    dataset can be materialised at three {!scale}s; [Full] matches the
    paper, [Default] shrinks sizes and instance counts so that the whole
    benchmark harness completes in minutes, and [Smoke] is for tests.
    The shape of the experimental results is preserved across scales
    (see DESIGN.md, substitution 3). *)

type instance = {
  name : string;  (** e.g. ["cg-deep-455"] *)
  dag : Dag.t;
}

type t = { label : string; instances : instance list }

type scale = Smoke | Default | Full

val scale_of_string : string -> scale option
val scale_name : scale -> string

val training : scale:scale -> seed:int -> t
(** 10 fine-grained instances, n ranging over [[15, 2000]] at full scale:
    3 spmv and 7 iterative, grouped as in Tables 4-5. *)

val tiny : scale:scale -> seed:int -> t
val small : scale:scale -> seed:int -> t
val medium : scale:scale -> seed:int -> t
val large : scale:scale -> seed:int -> t
val huge : scale:scale -> seed:int -> t

val main_datasets : scale:scale -> seed:int -> t list
(** [tiny; small; medium; large] — the datasets of the main experiments
    (Sections 7.1, 7.2). *)

val no_tiny : scale:scale -> seed:int -> t list
(** [small; medium; large] — the multilevel experiments exclude [tiny]
    (Section 7.3 / Figure 6). *)

(** {1 Materialising the database}

    The paper's first contribution is a reusable database of
    computational DAGs (Section 5). These helpers write the generated
    datasets to disk in the hyperDAG format, one file per instance plus
    a [MANIFEST] listing name, node/edge counts and provenance, so the
    instances can be consumed by the CLI tools or external schedulers. *)

val write_dataset : dir:string -> t -> string list
(** Write every instance of a dataset as [<dir>/<label>/<name>.hdag];
    returns the file paths. Creates directories as needed. *)

val write_database : dir:string -> scale:scale -> seed:int -> string
(** Write the training, tiny..large and huge datasets plus a top-level
    [MANIFEST] file; returns the manifest path. *)
