(* All generators build the structure with placeholder weights and apply
   the paper's weight rule (sources 1 / indeg - 1, comm 1) at the end. *)

let fresh b = Dag_builder.add_node b ~work:1 ~comm:1

(* Shared source nodes for the nonzero entries of A, allocated on first
   use so iterated products reuse the same matrix inputs. *)
type matrix_sources = { b : Dag_builder.t; tbl : (int * int, int) Hashtbl.t }

let matrix_sources b = { b; tbl = Hashtbl.create 256 }

let a_node ms i j =
  match Hashtbl.find_opt ms.tbl (i, j) with
  | Some id -> id
  | None ->
    let id = fresh ms.b in
    Hashtbl.add ms.tbl (i, j) id;
    id

(* One spmv layer: multiply nodes m_ij = a_ij * u_j for every nonzero
   whose input component exists, then a row-sum node per non-empty row.
   [extra i] lists additional predecessors folded into row i's sum (used
   by knn to accumulate the previous frontier). *)
let spmv_layer b ms a ~u ~extra =
  let n = Sparse_matrix.n a in
  let y = Array.make n None in
  for i = 0 to n - 1 do
    let ms_row =
      Array.to_list (Sparse_matrix.row a i)
      |> List.filter_map (fun j ->
             match u.(j) with
             | None -> None
             | Some uj ->
               let m = fresh b in
               Dag_builder.add_edge b (a_node ms i j) m;
               Dag_builder.add_edge b uj m;
               Some m)
    in
    let inputs = ms_row @ extra i in
    if inputs <> [] then begin
      let yi = fresh b in
      List.iter (fun m -> Dag_builder.add_edge b m yi) inputs;
      y.(i) <- Some yi
    end
  done;
  y

let no_extra _ = []

let dense_vector b n = Array.init n (fun _ -> Some (fresh b))

let finish b = Dag.assign_paper_weights (Dag_builder.finish b)

let spmv a =
  let b = Dag_builder.create () in
  let ms = matrix_sources b in
  let u = dense_vector b (Sparse_matrix.n a) in
  let (_ : int option array) = spmv_layer b ms a ~u ~extra:no_extra in
  finish b

let exp a ~k =
  if k < 1 then invalid_arg "Finegrained.exp: k must be >= 1";
  let b = Dag_builder.create () in
  let ms = matrix_sources b in
  let u = ref (dense_vector b (Sparse_matrix.n a)) in
  for _ = 1 to k do
    u := spmv_layer b ms a ~u:!u ~extra:no_extra
  done;
  finish b

(* A reduction node whose predecessors are all components of the given
   vectors (deduplicated): a dot product computed as one fine-grained
   combine of its 2N scalar inputs. *)
let dot b vecs =
  let d = fresh b in
  let seen = Hashtbl.create 16 in
  List.iter
    (Array.iter (function
      | None -> ()
      | Some x ->
        if not (Hashtbl.mem seen x) then begin
          Hashtbl.add seen x ();
          Dag_builder.add_edge b x d
        end))
    vecs;
  d

let combine b preds =
  let v = fresh b in
  List.iter (fun u -> Dag_builder.add_edge b u v) preds;
  v

let cg a ~k =
  if k < 1 then invalid_arg "Finegrained.cg: k must be >= 1";
  let n = Sparse_matrix.n a in
  let b = Dag_builder.create () in
  let ms = matrix_sources b in
  (* x_0 = 0, r_0 = b, p_0 = r_0. *)
  let r = ref (dense_vector b n) in
  let p = ref !r in
  let x = ref (Array.make n None) in
  let rr = ref (dot b [ !r ]) in
  for _ = 1 to k do
    let q = spmv_layer b ms a ~u:!p ~extra:no_extra in
    let d = dot b [ !p; q ] in
    let alpha = combine b [ !rr; d ] in
    let axpy base scale other =
      Array.init n (fun i ->
          match other.(i) with
          | None -> base.(i)
          | Some oi ->
            let preds =
              match base.(i) with
              | None -> [ scale; oi ]
              | Some bi -> [ bi; scale; oi ]
            in
            Some (combine b preds))
    in
    let x' = axpy !x alpha !p in
    let r' = axpy !r alpha q in
    let rr' = dot b [ r' ] in
    let beta = combine b [ rr'; !rr ] in
    let p' = axpy r' beta !p in
    x := x';
    r := r';
    p := p';
    rr := rr'
  done;
  finish b

let knn rng a ~k =
  if k < 1 then invalid_arg "Finegrained.knn: k must be >= 1";
  let n = Sparse_matrix.n a in
  let b = Dag_builder.create () in
  let ms = matrix_sources b in
  let u = Array.make n None in
  u.(Rng.int rng n) <- Some (fresh b);
  let cur = ref u in
  for _ = 1 to k do
    let prev = !cur in
    let extra i = match prev.(i) with None -> [] | Some x -> [ x ] in
    cur := spmv_layer b ms a ~u:prev ~extra
  done;
  finish b

type family = Spmv | Exp | Cg | Knn

let family_name = function
  | Spmv -> "spmv"
  | Exp -> "exp"
  | Cg -> "cg"
  | Knn -> "knn"

type shape = Wide | Deep

(* Iterations per shape: wide DAGs use few spmv layers over a larger
   matrix, deep ones chain many layers over a smaller matrix. The counts
   grow slowly with the target so deep instances stay proportionally
   deeper at every dataset size. *)
let iterations family shape target =
  let base =
    match shape with
    | Wide -> 2
    | Deep -> max 6 (int_of_float (2.5 *. log (float_of_int (max 10 target))))
  in
  match family with
  | Spmv -> 1
  | Cg -> max 1 (base / 2)
  | Exp -> base
  | Knn ->
    (* The frontier multiplies by the average column fill (~3) per hop,
       so the hop count must grow with the target or the DAG size
       saturates far below it, regardless of the matrix dimension. *)
    max base (1 + int_of_float (log (float_of_int target) /. log 3.0))

let generate_once rng family ~k ~matrix_n ~q =
  match family with
  | Spmv -> spmv (Sparse_matrix.random rng ~n:matrix_n ~q)
  | Exp -> exp (Sparse_matrix.random rng ~n:matrix_n ~q) ~k
  | Cg -> cg (Sparse_matrix.random_symmetric rng ~n:matrix_n ~q) ~k
  | Knn -> knn rng (Sparse_matrix.random rng ~n:matrix_n ~q) ~k

let generate_sized rng ~family ~shape ~target =
  if target < 10 then invalid_arg "Finegrained.generate_sized: target too small";
  let k = iterations family shape target in
  (* Aim for ~3 nonzeros per row; search the matrix dimension by scaling
     towards the target, keeping the closest attempt. *)
  let avg_nnz_per_row = 3.0 in
  let matrix_n = ref (max 4 (target / (8 * k))) in
  let best = ref None in
  let attempts = ref 0 in
  let continue = ref true in
  while !continue && !attempts < 12 do
    incr attempts;
    let nf = float_of_int !matrix_n in
    let q = Float.min 1.0 (avg_nnz_per_row /. nf) in
    let trial_rng = Rng.copy rng in
    let dag = generate_once trial_rng family ~k ~matrix_n:!matrix_n ~q in
    let size = Dag.n dag in
    (match !best with
     | Some (_, best_size) when abs (best_size - target) <= abs (size - target) -> ()
     | _ -> best := Some (dag, size));
    let err = float_of_int size /. float_of_int target in
    if err > 0.92 && err < 1.08 then continue := false
    else begin
      let scaled = float_of_int !matrix_n /. err in
      let next = int_of_float scaled in
      let next = if next = !matrix_n then if err > 1.0 then next - 1 else next + 1 else next in
      (* Clamp the per-step growth and the absolute dimension: some
         families (knn) respond only weakly to the matrix dimension and
         an unclamped correction would explode it. *)
      let next = min next (4 * !matrix_n) in
      let next = min next (max 64 (2 * target)) in
      matrix_n := max 4 next
    end
  done;
  match !best with
  | Some (dag, _) -> dag
  | None -> assert false
