(** Fine-grained computational DAG generators (Appendix B.2).

    In the fine-grained representation every nonzero scalar entry of a
    matrix or vector is the output of a separate DAG node. These
    generators synthesise the computational DAG of four concrete
    algebraic computations over a random sparse matrix [A]:

    - {!spmv}: one sparse matrix - dense vector multiplication [y = A u],
    - {!exp}: the iterated product [A^k u] as [k] chained spmv layers,
    - {!cg}: [k] iterations of the conjugate gradient method,
    - {!knn}: [k] hops of algebraic reachability from a single seed
      vertex (sparse matrix times sparse vector, accumulated).

    Node weights follow the paper's rule (Appendix B.2): sources have
    work weight 1, every other node has work weight [indeg - 1] (adding
    four scalars costs three additions), and all communication weights
    are 1. *)

val spmv : Sparse_matrix.t -> Dag.t
(** DAG of [y = A u]: sources are the [a_ij] entries and the dense [u_j]
    entries; one multiply node per nonzero; one row-sum node per row
    (Figure 2 of the paper). *)

val exp : Sparse_matrix.t -> k:int -> Dag.t
(** DAG of the naive computation of [A^k u] by [k] successive spmv
    layers; the [a_ij] source nodes are shared by all layers. *)

val cg : Sparse_matrix.t -> k:int -> Dag.t
(** DAG of [k] conjugate gradient iterations on the system [A x = b]
    starting from [x_0 = 0]. Dot products are single reduction nodes
    whose inputs are all components of the participating vectors. *)

val knn : Rng.t -> Sparse_matrix.t -> k:int -> Dag.t
(** DAG of [k]-hop reachability: [u] starts with a single random nonzero
    entry, each hop computes the sparse product [A u] restricted to the
    live entries and accumulates the previous frontier (i.e. effectively
    [(A + I) u]). *)

(** {1 Sized generation}

    The datasets of Appendix B.3 require fine-grained DAGs whose node
    counts land in prescribed intervals, with "wider" (few iterations,
    large matrix) and "deeper" (many iterations, smaller matrix)
    variants. [generate_sized] searches the matrix dimension so that the
    generated DAG's size approximates [target] nodes. *)

type family = Spmv | Exp | Cg | Knn

val family_name : family -> string

type shape = Wide | Deep

val generate_sized :
  Rng.t -> family:family -> shape:shape -> target:int -> Dag.t
(** Generate an instance of roughly [target] nodes (typically within a
    few percent; exact matching is neither needed nor attempted). The
    density is fixed at a few nonzeros per row, as in sparse workloads. *)
