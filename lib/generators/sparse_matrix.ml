type t = { n : int; rows : int array array; cols : int array array }

let build ~n row_lists =
  let rows = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) row_lists in
  let col_lists = Array.make n [] in
  Array.iteri
    (fun i r -> Array.iter (fun j -> col_lists.(j) <- i :: col_lists.(j)) r)
    rows;
  let cols = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) col_lists in
  { n; rows; cols }

let random rng ~n ~q =
  if n <= 0 then invalid_arg "Sparse_matrix.random: n must be positive";
  if q < 0.0 || q > 1.0 then invalid_arg "Sparse_matrix.random: q outside [0,1]";
  let row_lists =
    Array.init n (fun _ ->
        let acc = ref [] in
        for j = 0 to n - 1 do
          if Rng.bernoulli rng q then acc := j :: !acc
        done;
        if !acc = [] then acc := [ Rng.int rng n ];
        !acc)
  in
  build ~n row_lists

let random_symmetric rng ~n ~q =
  if n <= 0 then invalid_arg "Sparse_matrix.random_symmetric: n must be positive";
  if q < 0.0 || q > 1.0 then invalid_arg "Sparse_matrix.random_symmetric: q outside [0,1]";
  let row_lists = Array.init n (fun i -> [ i ]) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      (* Halve the probability so the symmetrised density stays close to q. *)
      if Rng.bernoulli rng (q /. 2.0) then begin
        row_lists.(i) <- j :: row_lists.(i);
        row_lists.(j) <- i :: row_lists.(j)
      end
    done
  done;
  build ~n row_lists

let of_rows ~n rows =
  if Array.length rows <> n then invalid_arg "Sparse_matrix.of_rows: length mismatch";
  Array.iter
    (List.iter (fun j ->
         if j < 0 || j >= n then invalid_arg "Sparse_matrix.of_rows: column out of range"))
    rows;
  build ~n rows

let n t = t.n
let nnz t = Array.fold_left (fun acc r -> acc + Array.length r) 0 t.rows
let row t i = t.rows.(i)
let col t j = t.cols.(j)

let mem t i j = Array.exists (fun x -> x = j) t.rows.(i)
