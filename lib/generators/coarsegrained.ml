type algorithm = Cg_coarse | Bicgstab | Pagerank | Label_propagation | Knn_coarse

let algorithm_name = function
  | Cg_coarse -> "cg-coarse"
  | Bicgstab -> "bicgstab"
  | Pagerank -> "pagerank"
  | Label_propagation -> "labelprop"
  | Knn_coarse -> "knn-coarse"

let all_algorithms = [ Cg_coarse; Bicgstab; Pagerank; Label_propagation; Knn_coarse ]

let fresh b = Dag_builder.add_node b ~work:1 ~comm:1

let op b preds =
  let v = fresh b in
  List.iter (fun u -> Dag_builder.add_edge b u v) preds;
  v

let finish b = Dag.assign_paper_weights (Dag_builder.finish b)

(* Conjugate gradient, one container-level op per line:
     q     = A * p
     d     = <p, q>
     alpha = rr / d
     x     = x + alpha * p
     r     = r - alpha * q
     rr'   = <r, r>
     beta  = rr' / rr
     p     = r + beta * p                      (8 ops / iteration) *)
let cg_iterations b ~iterations =
  let a = fresh b in
  let bvec = fresh b in
  let x0 = fresh b in
  let r = ref bvec and p = ref bvec and x = ref x0 in
  let rr = ref (op b [ bvec ]) in
  for _ = 1 to iterations do
    let q = op b [ a; !p ] in
    let d = op b [ !p; q ] in
    let alpha = op b [ !rr; d ] in
    let x' = op b [ !x; alpha; !p ] in
    let r' = op b [ !r; alpha; q ] in
    let rr' = op b [ r' ] in
    let beta = op b [ rr'; !rr ] in
    let p' = op b [ r'; beta; !p ] in
    x := x';
    r := r';
    p := p';
    rr := rr'
  done

(* BiCGStab per van der Vorst; roughly twice the ops of CG per
   iteration (two matrix products, two dots plus stabilisation):
     rho   = <r0hat, r>
     beta  = (rho/rho_old) * (alpha/omega)
     p     = r + beta * (p - omega * v)        (two ops: inner, outer)
     v     = A * p
     sigma = <r0hat, v>
     alpha = rho / sigma
     s     = r - alpha * v
     t     = A * s
     tt    = <t, t>
     ts    = <t, s>
     omega = ts / tt
     x     = x + alpha * p + omega * s         (two ops)
     r     = s - omega * t                     (16 ops / iteration) *)
let bicgstab_iterations b ~iterations =
  let a = fresh b in
  let bvec = fresh b in
  let x0 = fresh b in
  let r = ref bvec and p = ref bvec and x = ref x0 in
  let r0hat = bvec in
  let rho = ref (op b [ r0hat; bvec ]) in
  let alpha = ref (op b [ bvec ]) in
  let omega = ref (op b [ bvec ]) in
  let v = ref (op b [ a; bvec ]) in
  for _ = 1 to iterations do
    let rho' = op b [ r0hat; !r ] in
    let beta = op b [ rho'; !rho; !alpha; !omega ] in
    let p_inner = op b [ !p; !omega; !v ] in
    let p' = op b [ !r; beta; p_inner ] in
    let v' = op b [ a; p' ] in
    let sigma = op b [ r0hat; v' ] in
    let alpha' = op b [ rho'; sigma ] in
    let s = op b [ !r; alpha'; v' ] in
    let t = op b [ a; s ] in
    let tt = op b [ t ] in
    let ts = op b [ t; s ] in
    let omega' = op b [ ts; tt ] in
    let x_inner = op b [ !x; alpha'; p' ] in
    let x' = op b [ x_inner; omega'; s ] in
    let r' = op b [ s; omega'; t ] in
    rho := rho';
    alpha := alpha';
    omega := omega';
    v := v';
    p := p';
    x := x';
    r := r'
  done

(* PageRank power iteration:
     y = A^T * x ; z = damping * y ; x = z + teleport   (3 ops) *)
let pagerank_iterations b ~iterations =
  let a = fresh b in
  let teleport = fresh b in
  let x = ref (fresh b) in
  for _ = 1 to iterations do
    let y = op b [ a; !x ] in
    let z = op b [ y ] in
    x := op b [ z; teleport ]
  done

(* Label propagation:
     z = A * x ; x = select-max(z, x)                   (2 ops) *)
let labelprop_iterations b ~iterations =
  let a = fresh b in
  let x = ref (fresh b) in
  for _ = 1 to iterations do
    let z = op b [ a; !x ] in
    x := op b [ z; !x ]
  done

(* k-hop reachability:
     y = A * u ; u = y or u                             (2 ops) *)
let knn_iterations b ~iterations =
  let a = fresh b in
  let u = ref (fresh b) in
  for _ = 1 to iterations do
    let y = op b [ a; !u ] in
    u := op b [ y; !u ]
  done

let nodes_per_iteration = function
  | Cg_coarse -> 8
  | Bicgstab -> 16
  | Pagerank -> 3
  | Label_propagation -> 2
  | Knn_coarse -> 2

let generate algorithm ~iterations =
  if iterations < 1 then invalid_arg "Coarsegrained.generate: iterations must be >= 1";
  let b = Dag_builder.create () in
  (match algorithm with
   | Cg_coarse -> cg_iterations b ~iterations
   | Bicgstab -> bicgstab_iterations b ~iterations
   | Pagerank -> pagerank_iterations b ~iterations
   | Label_propagation -> labelprop_iterations b ~iterations
   | Knn_coarse -> knn_iterations b ~iterations);
  finish b

let generate_sized algorithm ~target =
  let per = nodes_per_iteration algorithm in
  let iterations = max 1 ((target - 4) / per) in
  generate algorithm ~iterations
