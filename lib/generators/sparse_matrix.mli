(** Random sparse matrix patterns.

    The fine-grained DAG generators (Appendix B.2) build the
    computational DAG of algebraic algorithms over a square sparse matrix
    [A] defined by its size [n] and a density [q]: each entry is nonzero
    independently with probability [q]. Only the nonzero {e pattern}
    matters for DAG extraction, so values are not stored. *)

type t

val random : Rng.t -> n:int -> q:float -> t
(** Bernoulli([q]) pattern. Every row is guaranteed at least one nonzero
    entry (a uniformly random column is added to empty rows) so that
    iterated products never die out, matching how the paper's generator
    keeps iterative DAGs connected. *)

val random_symmetric : Rng.t -> n:int -> q:float -> t
(** Like {!random} but the pattern is symmetrised ([a_ij] nonzero iff
    [a_ji] nonzero) and the diagonal is full, the natural pattern for the
    conjugate gradient generator (CG expects a symmetric positive
    definite system). *)

val of_rows : n:int -> int list array -> t
(** Explicit pattern: [rows.(i)] lists the nonzero column indices of row
    [i]. Out-of-range or duplicate columns are rejected. This is the
    entry point for loading real matrix patterns from files. *)

val n : t -> int
val nnz : t -> int

val row : t -> int -> int array
(** Nonzero column indices of a row, sorted increasingly. *)

val col : t -> int -> int array
(** Nonzero row indices of a column, sorted increasingly. *)

val mem : t -> int -> int -> bool
(** [mem a i j] tests whether entry (i, j) is nonzero. *)
