type instance = { name : string; dag : Dag.t }
type t = { label : string; instances : instance list }
type scale = Smoke | Default | Full

let scale_of_string = function
  | "smoke" -> Some Smoke
  | "default" -> Some Default
  | "full" -> Some Full
  | _ -> None

let scale_name = function Smoke -> "smoke" | Default -> "default" | Full -> "full"

(* Interval [lo, hi] of target node counts per dataset and scale, plus
   how many positions inside the interval receive instances. *)
let interval scale label =
  match (scale, label) with
  | Full, "tiny" -> (40, 80, 3)
  | Full, "small" -> (250, 500, 3)
  | Full, "medium" -> (1000, 2000, 3)
  | Full, "large" -> (5000, 10000, 3)
  | Full, "huge" -> (50000, 100000, 2)
  | Default, "tiny" -> (40, 80, 2)
  | Default, "small" -> (220, 420, 1)
  | Default, "medium" -> (600, 1000, 1)
  | Default, "large" -> (1500, 2500, 1)
  | Default, "huge" -> (3000, 5000, 1)
  | Smoke, "tiny" -> (40, 60, 1)
  | Smoke, "small" -> (100, 150, 1)
  | Smoke, "medium" -> (200, 300, 1)
  | Smoke, "large" -> (400, 600, 1)
  | Smoke, "huge" -> (1000, 1500, 1)
  | _ -> invalid_arg ("Datasets.interval: unknown dataset " ^ label)

let positions lo hi count =
  if count = 1 then [ (lo + hi) / 2 ]
  else
    List.init count (fun i ->
        let f = float_of_int i /. float_of_int (count - 1) in
        lo + int_of_float (f *. float_of_int (hi - lo)))

let fine_instance rng family shape target =
  let dag = Finegrained.generate_sized rng ~family ~shape ~target in
  let shape_tag =
    match family with
    | Finegrained.Spmv -> ""
    | _ -> (match shape with Finegrained.Wide -> "-wide" | Finegrained.Deep -> "-deep")
  in
  { name = Printf.sprintf "%s%s-%d" (Finegrained.family_name family) shape_tag (Dag.n dag);
    dag }

(* Coarse-grained database instances whose size falls into the interval:
   we synthesise one per algorithm sized to the middle of the interval
   and keep as many as the paper's counts (4 for tiny, 3 for small and
   huge, none elsewhere at full scale; at smaller scales we keep the
   same counts to preserve dataset composition). *)
let coarse_instances label lo hi =
  let count = match label with "tiny" -> 4 | "small" -> 3 | "huge" -> 3 | _ -> 0 in
  let algos = Coarsegrained.all_algorithms in
  List.filteri (fun i _ -> i < count) algos
  |> List.map (fun algo ->
         let target = (lo + hi) / 2 in
         let dag = Coarsegrained.generate_sized algo ~target in
         { name = Printf.sprintf "%s-%d" (Coarsegrained.algorithm_name algo) (Dag.n dag);
           dag })

let iterative_families = Finegrained.[ Exp; Cg; Knn ]

let build_dataset ~scale ~seed label =
  let lo, hi, count = interval scale label in
  let rng = Rng.create (seed + Hashtbl.hash label) in
  let pos = positions lo hi count in
  let fine =
    List.concat_map
      (fun target ->
        let spmv = fine_instance (Rng.split rng) Finegrained.Spmv Finegrained.Wide target in
        let iters =
          List.concat_map
            (fun family ->
              let shapes =
                (* tiny only fits one variant per family; larger sets get
                   both a deep and a wide instance (Appendix B.3). *)
                if label = "tiny" || scale = Smoke then [ Finegrained.Deep ]
                else [ Finegrained.Deep; Finegrained.Wide ]
              in
              List.map (fun shape -> fine_instance (Rng.split rng) family shape target) shapes)
            iterative_families
        in
        spmv :: iters)
      pos
  in
  let fine =
    if label = "huge" then
      (* The huge set is smaller: one spmv and two per iterative family
         (one each below full scale). *)
      let seen = Hashtbl.create 8 in
      List.filter
        (fun inst ->
          let key = List.hd (String.split_on_char '-' inst.name) in
          let limit = if key = "spmv" || scale <> Full then 1 else 2 in
          let c = Option.value ~default:0 (Hashtbl.find_opt seen key) in
          if c < limit then begin
            Hashtbl.replace seen key (c + 1);
            true
          end
          else false)
        fine
    else fine
  in
  { label; instances = fine @ coarse_instances label lo hi }

let tiny ~scale ~seed = build_dataset ~scale ~seed "tiny"
let small ~scale ~seed = build_dataset ~scale ~seed "small"
let medium ~scale ~seed = build_dataset ~scale ~seed "medium"
let large ~scale ~seed = build_dataset ~scale ~seed "large"
let huge ~scale ~seed = build_dataset ~scale ~seed "huge"

let training ~scale ~seed =
  let rng = Rng.create (seed + 7919) in
  let shrink =
    match scale with Full -> 1.0 | Default -> 0.5 | Smoke -> 0.15
  in
  let sz x = max 15 (int_of_float (float_of_int x *. shrink)) in
  let open Finegrained in
  let spec =
    [
      (Spmv, Wide, sz 50);
      (Spmv, Wide, sz 300);
      (Spmv, Wide, sz 1500);
      (Exp, Deep, sz 20);
      (Cg, Wide, sz 100);
      (Exp, Wide, sz 250);
      (Knn, Deep, sz 350);
      (Cg, Deep, sz 1000);
      (Exp, Deep, sz 1500);
      (Knn, Wide, sz 1950);
    ]
  in
  {
    label = "training";
    instances =
      List.map (fun (family, shape, target) ->
          fine_instance (Rng.split rng) family shape target)
        spec;
  }

let main_datasets ~scale ~seed =
  [ tiny ~scale ~seed; small ~scale ~seed; medium ~scale ~seed; large ~scale ~seed ]

let no_tiny ~scale ~seed =
  [ small ~scale ~seed; medium ~scale ~seed; large ~scale ~seed ]

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    (try Sys.mkdir dir 0o755 with Sys_error _ -> ())
  end

let write_dataset ~dir t =
  let subdir = Filename.concat dir t.label in
  mkdir_p subdir;
  List.map
    (fun inst ->
      let path = Filename.concat subdir (inst.name ^ ".hdag") in
      Hyperdag_io.write_file path inst.dag;
      path)
    t.instances

let write_database ~dir ~scale ~seed =
  mkdir_p dir;
  let datasets =
    training ~scale ~seed :: (main_datasets ~scale ~seed @ [ huge ~scale ~seed ])
  in
  let manifest = Filename.concat dir "MANIFEST" in
  Atomic_file.write manifest
    (fun oc ->
      Printf.fprintf oc
        "%% computational DAG database (scale=%s, seed=%d)\n%% dataset  name  nodes  edges  total_work\n"
        (scale_name scale) seed;
      List.iter
        (fun ds ->
          ignore (write_dataset ~dir ds : string list);
          List.iter
            (fun inst ->
              Printf.fprintf oc "%s %s %d %d %d\n" ds.label inst.name (Dag.n inst.dag)
                (Dag.num_edges inst.dag) (Dag.total_work inst.dag))
            ds.instances)
        datasets);
  manifest
