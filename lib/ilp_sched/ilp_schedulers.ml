type report = {
  improved : bool;
  cost_before : int;
  cost_after : int;
  bb_nodes : int;
  sub_solves : int;
  proven_optimal : bool;
}

let no_op_report cost =
  {
    improved = false;
    cost_before = cost;
    cost_after = cost;
    bb_nodes = 0;
    sub_solves = 0;
    proven_optimal = false;
  }

(* Solve one interval spec against the current assignment and apply the
   update when the resulting full schedule is strictly cheaper. *)
let solve_interval ?budget ?max_nodes machine dag ~proc ~step spec =
  let model, built = Ilp_interval.build spec in
  let cutoff = float_of_int (Ilp_interval.current_scope_cost spec) +. 1e-6 in
  let outcome = Branch_bound.solve ?budget ?max_nodes ~cutoff model in
  let applied =
    match outcome.Branch_bound.solution with
    | None -> false
    | Some x ->
      let updates = Ilp_interval.extract built x in
      let proc' = Array.copy proc and step' = Array.copy step in
      List.iter
        (fun (v, q, s) ->
          proc'.(v) <- q;
          step'.(v) <- s)
        updates;
      if not (Schedule.assignment_valid dag ~proc:proc' ~step:step') then false
      else begin
        let before =
          Bsp_cost.total machine (Schedule.of_assignment dag ~proc ~step)
        in
        let after =
          Bsp_cost.total machine (Schedule.of_assignment dag ~proc:proc' ~step:step')
        in
        if after < before then begin
          Array.blit proc' 0 proc 0 (Array.length proc);
          Array.blit step' 0 step 0 (Array.length step);
          true
        end
        else false
      end
  in
  (applied, outcome)

let full ?budget ?(max_vars = 2000) ?max_nodes machine (sched : Schedule.t) =
  let dag = sched.Schedule.dag in
  let cost_before = Bsp_cost.total machine sched in
  let num_steps = Schedule.num_supersteps sched in
  if num_steps = 0 then (sched, no_op_report cost_before)
  else begin
    let spec =
      {
        Ilp_interval.dag;
        machine;
        proc = Array.copy sched.Schedule.proc;
        step = Array.copy sched.Schedule.step;
        v0 = List.init (Dag.n dag) Fun.id;
        s_lo = 0;
        s_hi = num_steps - 1;
      }
    in
    if Ilp_interval.estimate_vars spec > max_vars then (sched, no_op_report cost_before)
    else begin
      let proc = spec.Ilp_interval.proc and step = spec.Ilp_interval.step in
      let applied, outcome =
        solve_interval ?budget ?max_nodes machine dag ~proc ~step spec
      in
      let result =
        if applied then Schedule.compact (Schedule.of_assignment dag ~proc ~step)
        else sched
      in
      let cost_after = Bsp_cost.total machine result in
      ( result,
        {
          improved = cost_after < cost_before;
          cost_before;
          cost_after;
          bb_nodes = outcome.Branch_bound.nodes_explored;
          sub_solves = 1;
          proven_optimal = outcome.Branch_bound.proven_optimal;
        } )
    end
  end

let part ?budget ?(max_vars = 600) ?max_nodes machine (sched : Schedule.t) =
  let dag = sched.Schedule.dag in
  let p = machine.Machine.p in
  let cost_before = Bsp_cost.total machine sched in
  let num_steps = Schedule.num_supersteps sched in
  if num_steps = 0 then (sched, no_op_report cost_before)
  else begin
    let proc = Array.copy sched.Schedule.proc in
    let step = Array.copy sched.Schedule.step in
    let nodes_of_interval s1 s2 =
      let acc = ref [] in
      for v = Dag.n dag - 1 downto 0 do
        if step.(v) >= s1 && step.(v) <= s2 then acc := v :: !acc
      done;
      !acc
    in
    let bb_nodes = ref 0 and sub_solves = ref 0 in
    let all_optimal = ref true in
    (* Intervals from back to front, grown until the variable estimate
       exceeds the cap (always covering at least one superstep). *)
    let s2 = ref (num_steps - 1) in
    while !s2 >= 0 do
      let s1 = ref !s2 in
      let size s1' =
        List.length (nodes_of_interval s1' !s2) * (!s2 - s1' + 1) * p * p
      in
      while !s1 > 0 && size (!s1 - 1) <= max_vars do
        decr s1
      done;
      let v0 = nodes_of_interval !s1 !s2 in
      if v0 <> [] && size !s1 <= max_vars * 4 then begin
        let spec =
          { Ilp_interval.dag; machine; proc; step; v0; s_lo = !s1; s_hi = !s2 }
        in
        let _, outcome = solve_interval ?budget ?max_nodes machine dag ~proc ~step spec in
        incr sub_solves;
        bb_nodes := !bb_nodes + outcome.Branch_bound.nodes_explored;
        if not outcome.Branch_bound.proven_optimal then all_optimal := false
      end
      else if v0 <> [] then all_optimal := false;
      s2 := !s1 - 1
    done;
    let result = Schedule.compact (Schedule.of_assignment dag ~proc ~step) in
    let result = if Bsp_cost.total machine result < cost_before then result else sched in
    let cost_after = Bsp_cost.total machine result in
    ( result,
      {
        improved = cost_after < cost_before;
        cost_before;
        cost_after;
        bb_nodes = !bb_nodes;
        sub_solves = !sub_solves;
        proven_optimal = !all_optimal;
      } )
  end

let init ?budget ?(max_vars = 400) ?max_nodes machine dag =
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let proc = Array.make n (-1) in
  let step = Array.make n (-1) in
  let order = Dag.topological_order dag in
  let batch_size = max 1 (max_vars / (3 * p * p)) in
  let base = ref 0 in
  let idx = ref 0 in
  while !idx < n do
    let batch =
      List.init (min batch_size (n - !idx)) (fun i -> order.(!idx + i))
    in
    idx := !idx + List.length batch;
    let s_lo = !base and s_hi = !base + 2 in
    let spec = { Ilp_interval.dag; machine; proc; step; v0 = batch; s_lo; s_hi } in
    let model, built = Ilp_interval.build spec in
    let outcome = Branch_bound.solve ?budget ?max_nodes model in
    (match outcome.Branch_bound.solution with
     | Some x ->
       List.iter
         (fun (v, q, s) ->
           proc.(v) <- q;
           step.(v) <- s)
         (Ilp_interval.extract built x)
     | None ->
       (* Fallback: the whole batch on one processor in one superstep is
          always feasible (cross-batch predecessors sit strictly
          earlier). *)
       List.iter
         (fun v ->
           proc.(v) <- 0;
           step.(v) <- s_lo)
         batch);
    let max_used =
      List.fold_left (fun acc v -> max acc step.(v)) !base batch
    in
    base := max_used + 1
  done;
  Schedule.compact (Schedule.of_assignment dag ~proc ~step)

let comm_schedule ?budget ?(max_vars = 1500) ?max_nodes machine (sched : Schedule.t) =
  let dag = sched.Schedule.dag in
  let cost_before = Bsp_cost.total machine sched in
  let num_steps = Schedule.num_supersteps sched in
  let pairs = Array.of_list (Hccs.required_pairs machine sched) in
  Array.sort
    (fun (a : Hccs.pair) (b : Hccs.pair) -> compare (a.node, a.dst) (b.node, b.dst))
    pairs;
  if num_steps = 0 || Array.length pairs = 0 then (sched, no_op_report cost_before)
  else begin
    (* Shrink the model under the cap: trim every window to its last
       [w] phases with the largest [w] that fits, freezing pairs whose
       trimmed window is a single phase. *)
    let model_size w =
      Array.fold_left
        (fun acc (pr : Hccs.pair) -> acc + min w (pr.hi - pr.lo + 1))
        num_steps pairs
    in
    let w = ref num_steps in
    while !w > 1 && model_size !w > max_vars do
      decr w
    done;
    let window (pr : Hccs.pair) =
      let lo = max pr.lo (pr.hi - !w + 1) in
      (lo, pr.hi)
    in
    let model = Ilp.create () in
    let send_const = Array.make_matrix num_steps machine.Machine.p 0 in
    let recv_const = Array.make_matrix num_steps machine.Machine.p 0 in
    let choice = Hashtbl.create 256 in
    let movable_step = Array.make num_steps false in
    Array.iteri
      (fun i (pr : Hccs.pair) ->
        let lo, hi = window pr in
        if lo >= hi then begin
          (* Frozen: keep the current phase when it lies inside the
             trimmed window, otherwise normalise to the lazy phase so the
             model constants match the extracted schedule exactly. *)
          let s = if pr.cur >= lo then pr.cur else hi in
          pr.cur <- s;
          send_const.(s).(pr.src) <- send_const.(s).(pr.src) + pr.vol;
          recv_const.(s).(pr.dst) <- recv_const.(s).(pr.dst) + pr.vol
        end
        else begin
          let vars =
            List.init (hi - lo + 1) (fun k ->
                movable_step.(lo + k) <- true;
                (lo + k, Ilp.binary model (Printf.sprintf "x_%d_%d" i (lo + k))))
          in
          Hashtbl.add choice i vars;
          Ilp.add_eq model (List.map (fun (_, v) -> (v, 1.0)) vars) 1.0
        end)
      pairs;
    (* Supersteps no movable pair can use have a constant h-relation;
       only the movable ones get an H variable and rows, keeping the LP
       small even for schedules with many supersteps. *)
    let hvar = Hashtbl.create 16 in
    for s = 0 to num_steps - 1 do
      if movable_step.(s) then
        Hashtbl.add hvar s (Ilp.continuous model (Printf.sprintf "H_%d" s))
    done;
    Hashtbl.iter
      (fun s h ->
        for q = 0 to machine.Machine.p - 1 do
          let send_terms = ref [] and recv_terms = ref [] in
          Hashtbl.iter
            (fun i vars ->
              let pr = pairs.(i) in
              List.iter
                (fun (s', var) ->
                  if s' = s then begin
                    if pr.Hccs.src = q then
                      send_terms := (var, -.float_of_int pr.Hccs.vol) :: !send_terms;
                    if pr.Hccs.dst = q then
                      recv_terms := (var, -.float_of_int pr.Hccs.vol) :: !recv_terms
                  end)
                vars)
            choice;
          Ilp.add_ge model ((h, 1.0) :: !send_terms) (float_of_int send_const.(s).(q));
          Ilp.add_ge model ((h, 1.0) :: !recv_terms) (float_of_int recv_const.(s).(q))
        done)
      hvar;
    Ilp.set_objective model
      (Hashtbl.fold (fun _ h acc -> (h, float_of_int machine.Machine.g) :: acc) hvar []);
    (* Warm-start cutoff: the communication objective of the current
       choices, restricted to the supersteps the model prices. *)
    let cutoff =
      let send = Array.make_matrix num_steps machine.Machine.p 0 in
      let recv = Array.make_matrix num_steps machine.Machine.p 0 in
      Array.iter
        (fun (pr : Hccs.pair) ->
          send.(pr.cur).(pr.src) <- send.(pr.cur).(pr.src) + pr.vol;
          recv.(pr.cur).(pr.dst) <- recv.(pr.cur).(pr.dst) + pr.vol)
        pairs;
      let total = ref 0 in
      for s = 0 to num_steps - 1 do
        if movable_step.(s) then begin
          let h = ref 0 in
          for q = 0 to machine.Machine.p - 1 do
            if max send.(s).(q) recv.(s).(q) > !h then h := max send.(s).(q) recv.(s).(q)
          done;
          total := !total + (machine.Machine.g * !h)
        end
      done;
      float_of_int !total +. 1e-6
    in
    let outcome = Branch_bound.solve ?budget ?max_nodes ~cutoff model in
    let result =
      match outcome.Branch_bound.solution with
      | None -> sched
      | Some x ->
        Hashtbl.iter
          (fun i vars ->
            List.iter
              (fun (s, var) -> if x.(var) > 0.5 then pairs.(i).Hccs.cur <- s)
              vars)
          choice;
        let comm =
          Array.to_list pairs
          |> List.map (fun (pr : Hccs.pair) ->
                 { Schedule.node = pr.node; src = pr.src; dst = pr.dst; step = pr.cur })
        in
        let candidate =
          Schedule.make dag ~proc:sched.Schedule.proc ~step:sched.Schedule.step ~comm
        in
        if Bsp_cost.total machine candidate < cost_before then candidate else sched
    in
    let cost_after = Bsp_cost.total machine result in
    ( result,
      {
        improved = cost_after < cost_before;
        cost_before;
        cost_after;
        bb_nodes = outcome.Branch_bound.nodes_explored;
        sub_solves = 1;
        proven_optimal = outcome.Branch_bound.proven_optimal;
      } )
  end
