type spec = {
  dag : Dag.t;
  machine : Machine.t;
  proc : int array;
  step : int array;
  v0 : int list;
  s_lo : int;
  s_hi : int;
}

type built = {
  spec : spec;
  v0_arr : int array;
  comp : (int, Ilp.var) Hashtbl.t;  (* key: (v * P + p) * steps + (s - s_lo) *)
}

let estimate_vars spec =
  let p = spec.machine.Machine.p in
  List.length spec.v0 * (spec.s_hi - spec.s_lo + 1) * p * p

let window_steps spec = spec.s_hi - spec.s_lo + 1

let comp_key spec v p s =
  ((v * spec.machine.Machine.p) + p) * window_steps spec + (s - spec.s_lo)

(* Lazy first-need of the value of [u] on processor [q], restricted to a
   class of consumers; max_int when never needed there. *)
let first_need_over dag step proc ~keep u q =
  Array.fold_left
    (fun acc w ->
      if keep w && step.(w) >= 0 && proc.(w) = q && step.(w) < acc then step.(w)
      else acc)
    max_int (Dag.succ dag u)

let validate spec =
  if spec.s_lo < 0 || spec.s_hi < spec.s_lo then
    invalid_arg "Ilp_interval: empty or negative superstep window";
  let in_v0 = Array.make (Dag.n spec.dag) false in
  List.iter (fun v -> in_v0.(v) <- true) spec.v0;
  List.iter
    (fun v ->
      if spec.step.(v) >= 0 && (spec.step.(v) < spec.s_lo || spec.step.(v) > spec.s_hi)
      then invalid_arg "Ilp_interval: assigned v0 node outside the window";
      Array.iter
        (fun u ->
          if (not in_v0.(u)) && spec.step.(u) < 0 then
            invalid_arg "Ilp_interval: predecessor of a v0 node is unassigned")
        (Dag.pred spec.dag v))
    spec.v0;
  (* Fixed nodes must not sit inside the window: the model's work rows
     only account for v0. *)
  Array.iteri
    (fun v s ->
      if (not in_v0.(v)) && s >= spec.s_lo && s <= spec.s_hi then
        invalid_arg "Ilp_interval: fixed node assigned inside the window")
    spec.step;
  in_v0

let build spec =
  let { dag; machine; proc; step; v0; s_lo; s_hi } = spec in
  let in_v0 = validate spec in
  let p = machine.Machine.p in
  let g = machine.Machine.g in
  let lam = Machine.lambda machine in
  let model = Ilp.create () in
  let phase_lo = max 0 (s_lo - 1) in
  let steps s_from s_to = List.init (max 0 (s_to - s_from + 1)) (fun i -> s_from + i) in
  let window = steps s_lo s_hi in
  let phases = steps phase_lo s_hi in
  (* Continuous cost variables. *)
  let wvar = Hashtbl.create 8 and hvar = Hashtbl.create 8 in
  List.iter
    (fun s -> Hashtbl.add wvar s (Ilp.continuous model (Printf.sprintf "W_%d" s)))
    window;
  List.iter
    (fun s -> Hashtbl.add hvar s (Ilp.continuous model (Printf.sprintf "H_%d" s)))
    phases;
  (* COMP variables. *)
  let comp = Hashtbl.create 256 in
  List.iter
    (fun v ->
      List.iter
        (fun s ->
          for q = 0 to p - 1 do
            Hashtbl.add comp
              (comp_key spec v q s)
              (Ilp.binary model (Printf.sprintf "comp_%d_%d_%d" v q s))
          done)
        window)
    v0;
  let comp_var v q s = Hashtbl.find comp (comp_key spec v q s) in
  (* COMM variables for v0 nodes that have successors at all. *)
  let comm = Hashtbl.create 256 in
  let comm_var v p1 p2 s = Hashtbl.find_opt comm (v, p1, p2, s) in
  List.iter
    (fun v ->
      if Dag.out_degree dag v > 0 then
        List.iter
          (fun s ->
            for p1 = 0 to p - 1 do
              for p2 = 0 to p - 1 do
                if p1 <> p2 then
                  Hashtbl.add comm (v, p1, p2, s)
                    (Ilp.binary model (Printf.sprintf "comm_%d_%d_%d_%d" v p1 p2 s))
              done
            done)
          window)
    v0;
  (* Fixed pre-window predecessors of v0 nodes. *)
  let pre_nodes =
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun v ->
        Array.iter
          (fun u -> if not in_v0.(u) then Hashtbl.replace tbl u ())
          (Dag.pred dag v))
      v0;
    Hashtbl.fold (fun u () acc -> u :: acc) tbl []
    |> List.sort compare
  in
  (* present_before u q: the value of u is already on q when the window's
     boundary phase begins — computed there, or delivered to a fixed
     consumer in an earlier superstep. *)
  let present_before u q =
    proc.(u) = q
    || first_need_over dag step proc ~keep:(fun w -> not in_v0.(w)) u q < s_lo
  in
  let pre = Hashtbl.create 64 in
  let pre_var u q s = Hashtbl.find_opt pre (u, q, s) in
  List.iter
    (fun u ->
      for q = 0 to p - 1 do
        if not (present_before u q) then
          List.iter
            (fun s ->
              Hashtbl.add pre (u, q, s)
                (Ilp.binary model (Printf.sprintf "pre_%d_%d_%d" u q s)))
            phases
      done)
    pre_nodes;
  (* Assignment constraints. *)
  List.iter
    (fun v ->
      let terms =
        List.concat_map
          (fun s -> List.init p (fun q -> (comp_var v q s, 1.0)))
          window
      in
      Ilp.add_eq model terms 1.0)
    v0;
  (* Precedence constraints for edges into v0. *)
  List.iter
    (fun v ->
      Array.iter
        (fun u ->
          List.iter
            (fun s ->
              for q = 0 to p - 1 do
                if in_v0.(u) then begin
                  (* availability of u on q by computation phase s *)
                  let avail =
                    List.concat_map
                      (fun s' ->
                        if s' > s then []
                        else begin
                          let own = [ (comp_var u q s', -1.0) ] in
                          let arrivals =
                            if s' >= s then []
                            else
                              List.filter_map
                                (fun p1 ->
                                  if p1 = q then None
                                  else
                                    Option.map
                                      (fun var -> (var, -1.0))
                                      (comm_var u p1 q s'))
                                (List.init p Fun.id)
                          in
                          own @ arrivals
                        end)
                      window
                  in
                  Ilp.add_le model ((comp_var v q s, 1.0) :: avail) 0.0
                end
                else if not (present_before u q) then begin
                  let arrivals =
                    List.filter_map
                      (fun s' ->
                        if s' >= s then None
                        else Option.map (fun var -> (var, -1.0)) (pre_var u q s'))
                      phases
                  in
                  Ilp.add_le model ((comp_var v q s, 1.0) :: arrivals) 0.0
                end
              done)
            window)
        (Dag.pred dag v))
    v0;
  (* Communication validity: the value must be present at the sender. *)
  Hashtbl.iter
    (fun (v, p1, _p2, s) var ->
      let avail =
        List.concat_map
          (fun s' ->
            if s' > s then []
            else begin
              let own = [ (comp_var v p1 s', -1.0) ] in
              let arrivals =
                if s' >= s then []
                else
                  List.filter_map
                    (fun p' ->
                      if p' = p1 then None
                      else
                        Option.map (fun w -> (w, -1.0)) (comm_var v p' p1 s'))
                    (List.init p Fun.id)
              in
              own @ arrivals
            end)
          window
      in
      Ilp.add_le model ((var, 1.0) :: avail) 0.0)
    comm;
  (* External consumers of v0 nodes: presence by the end of the window. *)
  List.iter
    (fun v ->
      let dests = Hashtbl.create 4 in
      Array.iter
        (fun w ->
          if (not in_v0.(w)) && step.(w) >= 0 then Hashtbl.replace dests proc.(w) ())
        (Dag.succ dag v);
      Hashtbl.iter
        (fun dst () ->
          let terms =
            List.concat_map
              (fun s ->
                (comp_var v dst s, 1.0)
                :: List.filter_map
                     (fun p1 ->
                       if p1 = dst then None
                       else Option.map (fun w -> (w, 1.0)) (comm_var v p1 dst s))
                     (List.init p Fun.id))
              window
          in
          Ilp.add_ge model terms 1.0)
        dests)
    v0;
  (* Present-by-end constraints for fixed predecessors whose original
     delivery to an external consumer fell inside the window. *)
  List.iter
    (fun u ->
      for q = 0 to p - 1 do
        if q <> proc.(u) && not (present_before u q) then begin
          let fn_ext = first_need_over dag step proc ~keep:(fun w -> not in_v0.(w)) u q in
          let fn_all = first_need_over dag step proc ~keep:(fun _ -> true) u q in
          if fn_ext < max_int && fn_all < max_int && fn_all - 1 <= s_hi then begin
            let terms =
              List.filter_map
                (fun s -> Option.map (fun w -> (w, 1.0)) (pre_var u q s))
                phases
            in
            if terms <> [] then Ilp.add_ge model terms 1.0
          end
        end
      done)
    pre_nodes;
  (* Fixed pass-through traffic: lazy events of fixed producers with no
     v0 consumer on the destination, landing inside the window. *)
  let send_const = Hashtbl.create 16 and recv_const = Hashtbl.create 16 in
  let bump tbl key vol =
    Hashtbl.replace tbl key (vol + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let is_pre = Hashtbl.create 64 in
  List.iter (fun u -> Hashtbl.replace is_pre u ()) pre_nodes;
  for u = 0 to Dag.n dag - 1 do
    if (not in_v0.(u)) && step.(u) >= 0 && not (Hashtbl.mem is_pre u) then
      for q = 0 to p - 1 do
        if q <> proc.(u) then begin
          let fn = first_need_over dag step proc ~keep:(fun w -> not in_v0.(w)) u q in
          if fn < max_int then begin
            let phase = fn - 1 in
            if phase >= phase_lo && phase <= s_hi then begin
              let vol = Dag.comm dag u * lam proc.(u) q in
              bump send_const (proc.(u), phase) vol;
              bump recv_const (q, phase) vol
            end
          end
        end
      done
  done;
  (* Work rows: W_s >= work of every processor in superstep s. *)
  List.iter
    (fun s ->
      for q = 0 to p - 1 do
        let terms =
          List.map (fun v -> (comp_var v q s, -.float_of_int (Dag.work dag v))) v0
        in
        Ilp.add_ge model ((Hashtbl.find wvar s, 1.0) :: terms) 0.0
      done)
    window;
  (* H rows: send and receive volume of every processor in every phase. *)
  List.iter
    (fun s ->
      for q = 0 to p - 1 do
        let send_terms = ref [] and recv_terms = ref [] in
        Hashtbl.iter
          (fun (v, p1, p2, s') var ->
            if s' = s then begin
              let vol = float_of_int (Dag.comm dag v * lam p1 p2) in
              if p1 = q then send_terms := (var, -.vol) :: !send_terms;
              if p2 = q then recv_terms := (var, -.vol) :: !recv_terms
            end)
          comm;
        Hashtbl.iter
          (fun (u, dst, s') var ->
            if s' = s then begin
              let vol = float_of_int (Dag.comm dag u * lam proc.(u) dst) in
              if proc.(u) = q then send_terms := (var, -.vol) :: !send_terms;
              if dst = q then recv_terms := (var, -.vol) :: !recv_terms
            end)
          pre;
        let h = (Hashtbl.find hvar s, 1.0) in
        let sc = float_of_int (Option.value ~default:0 (Hashtbl.find_opt send_const (q, s))) in
        let rc = float_of_int (Option.value ~default:0 (Hashtbl.find_opt recv_const (q, s))) in
        Ilp.add_ge model (h :: !send_terms) sc;
        Ilp.add_ge model (h :: !recv_terms) rc
      done)
    phases;
  (* Objective: work + g * h-relation over the scope. *)
  let obj =
    List.map (fun s -> (Hashtbl.find wvar s, 1.0)) window
    @ List.map (fun s -> (Hashtbl.find hvar s, float_of_int g)) phases
  in
  Ilp.set_objective model obj;
  (model, { spec; v0_arr = Array.of_list v0; comp })

let current_scope_cost spec =
  let { dag; machine; proc; step; s_lo; s_hi; _ } = spec in
  let sched = Schedule.of_assignment dag ~proc ~step in
  let num_steps = Schedule.num_supersteps sched in
  let work, send, recv = Bsp_cost.tables machine sched ~num_steps in
  let p = machine.Machine.p in
  let phase_lo = max 0 (s_lo - 1) in
  let total = ref 0 in
  for s = phase_lo to min s_hi (num_steps - 1) do
    let hmax = ref 0 in
    for q = 0 to p - 1 do
      let h = max send.(s).(q) recv.(s).(q) in
      if h > !hmax then hmax := h
    done;
    total := !total + (machine.Machine.g * !hmax);
    if s >= s_lo then begin
      let wmax = ref 0 in
      for q = 0 to p - 1 do
        if work.(s).(q) > !wmax then wmax := work.(s).(q)
      done;
      total := !total + !wmax
    end
  done;
  !total

let extract built x =
  let spec = built.spec in
  let p = spec.machine.Machine.p in
  Array.to_list built.v0_arr
  |> List.map (fun v ->
         let best = ref (0, spec.s_lo) and best_val = ref neg_infinity in
         for q = 0 to p - 1 do
           for s = spec.s_lo to spec.s_hi do
             let value = x.(Hashtbl.find built.comp (comp_key spec v q s)) in
             if value > !best_val then begin
               best_val := value;
               best := (q, s)
             end
           done
         done;
         let q, s = !best in
         (v, q, s))
