(** The interval ILP engine behind ILPfull, ILPpart and ILPinit
    (Section 4.4, Appendix A.4).

    All three formulations reassign a set of nodes [V0] within a window
    of supersteps [[s_lo, s_hi]] while the rest of the schedule stays
    fixed; they differ only in how [V0] and the window are chosen and in
    what surrounds them:

    - {b ILPfull}: [V0] = all nodes, window = all supersteps — the FS
      formulation of Papp et al. (arXiv:2303.05989) with the paper's two
      tweaks (aggregated availability constraints; no separate PRES
      variables).
    - {b ILPpart}: [V0] = nodes of a superstep interval of an existing
      schedule; boundary conditions link to the fixed prefix and suffix.
    - {b ILPinit}: [V0] = the next batch of a topological order; nodes
      after the batch are not assigned yet and are simply disregarded.

    Variables: binary [COMP(v,p,s)] for [v ∈ V0]; binary
    [COMM(v,p1,p2,s)] carrying the value of [v ∈ V0] from [p1] to [p2]
    in phase [s] (relays allowed); binary [PRE(u,p,s)] sending a fixed
    pre-window predecessor [u] directly from its processor; continuous
    [W(s)], [H(s)] for the per-superstep work and h-relation maxima. The
    objective is [sum (W s + g * H s)] over the window plus [g * H] of
    the boundary phase [s_lo - 1]; latency is a constant outside the
    model.

    Boundary handling follows the paper's three variable-saving
    restrictions (Appendix A.4): values already delivered before the
    window are treated as present; newly required deliveries to
    post-window consumers must complete within the window
    (present-by-end constraints); and pass-through traffic of fixed
    nodes whose phase falls inside the window enters the h-relation rows
    as constants.

    Extraction keeps only the assignment [(pi, tau)] of [V0] — the
    communication schedule is re-derived lazily by the caller and later
    re-optimised by HCcs/ILPcs, which keeps extraction simple and the
    final schedule valid by construction (cross-processor edges always
    land in strictly later supersteps in any feasible model solution). *)

type spec = {
  dag : Dag.t;
  machine : Machine.t;
  proc : int array;  (** current assignment; [-1] = not yet assigned *)
  step : int array;
  v0 : int list;  (** nodes to (re)assign; must be exactly the nodes with
                      [step] in the window, for already-assigned nodes *)
  s_lo : int;
  s_hi : int;
}

val estimate_vars : spec -> int
(** The paper's [|V0| * |S0| * P^2] estimate used to size intervals. *)

type built

val build : spec -> Ilp.t * built
(** Construct the model. Raises [Invalid_argument] on malformed specs
    (window empty, assigned [v0] node outside the window, predecessor of
    a [v0] node unassigned). *)

val current_scope_cost : spec -> int
(** Objective value of the current schedule restricted to the window
    (work + weighted communication of phases [s_lo - 1 .. s_hi], with
    lazy communication), used as the warm-start cutoff. *)

val extract : built -> float array -> (int * int * int) list
(** [(node, proc, step)] updates for the nodes of [V0] from a feasible
    model solution. *)
