(** The four ILP-based scheduling methods (Section 4.4).

    All methods are improvement operators with the CBC contract of the
    paper's pipeline (Section 6): they receive the current schedule,
    search under a budget, and return a strictly better schedule or the
    input unchanged. Acceptance always compares the {e true} BSP cost of
    the extracted candidate (after compaction and lazy re-derivation of
    the communication schedule), so a method can never make the pipeline
    worse.

    Variable caps replace the paper's 4000-variable rule of thumb for
    CBC: the pure-OCaml branch-and-bound substrate is weaker than CBC, so
    the defaults are smaller (DESIGN.md, substitution 1), but they play
    the same role — they size the superstep intervals of {!part}, the
    batches of {!init}, and gate {!full}. *)

type report = {
  improved : bool;
  cost_before : int;
  cost_after : int;
  bb_nodes : int;  (** branch-and-bound nodes over all sub-solves *)
  sub_solves : int;  (** number of ILP models solved *)
  proven_optimal : bool;
      (** every sub-solve exhausted its tree with sound bounds — for
          {!full} this certifies optimality over the modelled superstep
          count *)
}

val full :
  ?budget:Budget.t ->
  ?max_vars:int ->
  ?max_nodes:int ->
  Machine.t ->
  Schedule.t ->
  Schedule.t * report
(** ILPfull: model the whole problem over the input schedule's superstep
    range. Returns the input untouched (with [sub_solves = 0]) when the
    estimated variable count exceeds [max_vars] (default 2000, the
    analogue of the paper's 20000-variable CBC gate). *)

val part :
  ?budget:Budget.t ->
  ?max_vars:int ->
  ?max_nodes:int ->
  Machine.t ->
  Schedule.t ->
  Schedule.t * report
(** ILPpart: split the supersteps into disjoint intervals from back to
    front, growing each interval until the variable estimate
    [|V0| * |S0| * P^2] exceeds [max_vars] (default 600), and re-optimise
    each interval in place. *)

val init :
  ?budget:Budget.t ->
  ?max_vars:int ->
  ?max_nodes:int ->
  Machine.t ->
  Dag.t ->
  Schedule.t
(** ILPinit: build an initial schedule by batching a topological order;
    each batch is assigned within 3 fresh supersteps by an interval ILP
    ([|V0| * 3 * P^2 <= max_vars], default 400); a batch whose solve
    yields nothing falls back to a single processor. The result is
    compacted. *)

val comm_schedule :
  ?budget:Budget.t ->
  ?max_vars:int ->
  ?max_nodes:int ->
  Machine.t ->
  Schedule.t ->
  Schedule.t * report
(** ILPcs: optimise the communication schedule with the assignment
    fixed, over the same decision space as {!Hccs} (one direct send per
    required (node, destination) pair, anywhere in its feasible phase
    window). Pairs are modelled as one binary per feasible phase; when
    the model would exceed [max_vars] (default 1500), windows are
    trimmed towards the lazy end and low-volume pairs are frozen at
    their current phase (entering the h-relation rows as constants). *)
