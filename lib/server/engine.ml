(* The scheduling engine shared by the one-shot CLI and the serve
   daemon: algorithm dispatch (the single source of truth for the
   algorithm names the CLI enum offers) plus the cache protocol. *)

let algorithm_names =
  [
    "pipeline";
    "multilevel";
    "cilk";
    "hdagg";
    "bl-est";
    "etf";
    "bspg";
    "source";
    "trivial";
  ]

let is_algorithm a = List.mem a algorithm_names

(* Only the search-based methods produce better answers under a larger
   budget; every baseline is a deterministic function of (DAG, machine,
   seed), so a cached baseline answer is final and never refreshed. *)
let budget_sensitive = function "pipeline" | "multilevel" -> true | _ -> false

let schedule ?warm ~seconds ~seed ~replicate ~algorithm machine dag =
  if not (is_algorithm algorithm) then
    failwith ("Engine: unknown algorithm: " ^ algorithm);
  let limits =
    { Pipeline.thorough_limits with Pipeline.stage_seconds = Some (seconds /. 6.0) }
  in
  let base =
    Obs.Metrics.with_span ("scheduler:" ^ algorithm) (fun () ->
        match algorithm with
        | "pipeline" ->
          (* the pipeline runs replication as its own final stage *)
          let limits = { limits with Pipeline.replicate } in
          (match warm with
           | None -> fst (Pipeline.run ~limits machine dag)
           | Some warm -> fst (Pipeline.run_warm ~limits ~warm machine dag))
        | "multilevel" -> Pipeline.run_multilevel ~limits machine dag
        | "cilk" -> Cilk.schedule dag ~p:machine.Machine.p ~seed
        | "hdagg" -> Hdagg.schedule machine dag
        | "bl-est" -> List_scheduler.schedule List_scheduler.Bl_est machine dag
        | "etf" -> List_scheduler.schedule List_scheduler.Etf machine dag
        | "bspg" -> Bspg.schedule machine dag
        | "source" -> Source_heuristic.schedule machine dag
        | "trivial" -> Schedule.trivial dag
        | _ -> assert false)
  in
  (* For every algorithm but the pipeline, replication is grafted on as
     a post-pass and kept only when strictly cheaper (replication
     re-lazifies the communication schedule, so it is not
     unconditionally better). *)
  if replicate && algorithm <> "pipeline" then begin
    let cand =
      Obs.Metrics.with_span "scheduler:replicate" (fun () ->
          Hc.replicate_schedule machine base)
    in
    if Bsp_cost.total machine cand < Bsp_cost.total machine base then cand else base
  end
  else base

let request_key (req : Request.t) =
  Cache.key ~dag:req.dag ~machine:req.machine ~algorithm:req.algorithm ~seed:req.seed
    ~replicate:req.replicate

type status = Hit | Miss | Refresh

let status_label = function Hit -> "hit" | Miss -> "miss" | Refresh -> "refresh"

type result = { status : status; key : string; cost : int; schedule : Schedule.t }

let compute_and_store ~cache_dir ~key ~cached (req : Request.t) =
  (* Warm-start only applies to the base pipeline; the other budget-
     sensitive method (multilevel) re-solves from scratch and is
     compared against the cached cost below. *)
  let warm =
    match cached with
    | Some (e : Cache.entry) when req.algorithm = "pipeline" -> Some e.Cache.schedule
    | _ -> None
  in
  let sched =
    schedule ?warm ~seconds:req.seconds ~seed:req.seed ~replicate:req.replicate
      ~algorithm:req.algorithm req.machine req.dag
  in
  (match Validity.check req.machine sched with
   | Ok () -> ()
   | Error errs ->
     failwith
       ("Engine: produced an invalid schedule: " ^ String.concat "; " errs));
  let cost = Bsp_cost.total req.machine sched in
  (* Best-so-far semantics: a refresh keeps the cached schedule when
     the re-run did not strictly beat it, and the recorded budget is
     topped up either way so the next identical request is a hit. *)
  let sched, cost, budget =
    match cached with
    | None -> (sched, cost, req.seconds)
    | Some (e : Cache.entry) ->
      let budget = Float.max req.seconds e.Cache.seconds_budget in
      if e.Cache.cost <= cost then (e.Cache.schedule, e.Cache.cost, budget)
      else (sched, cost, budget)
  in
  Cache.store ~dir:cache_dir ~key ~algorithm:req.algorithm ~cost ~seconds_budget:budget
    sched;
  (sched, cost)

let handle ~cache_dir (req : Request.t) =
  if not (is_algorithm req.algorithm) then
    failwith ("Engine: unknown algorithm: " ^ req.algorithm);
  let key = request_key req in
  match Cache.lookup ~dir:cache_dir ~dag:req.dag key with
  | Some e
    when (not (budget_sensitive req.algorithm))
         || req.seconds <= e.Cache.seconds_budget ->
    { status = Hit; key; cost = e.Cache.cost; schedule = e.Cache.schedule }
  | cached ->
    let sched, cost = compute_and_store ~cache_dir ~key ~cached req in
    let status = if Option.is_none cached then Miss else Refresh in
    { status; key; cost; schedule = sched }
