type t = {
  id : string;
  algorithm : string;
  seconds : float;
  seed : int;
  replicate : bool;
  machine : Machine.t;
  dag : Dag.t;
}

let fail fmt = Printf.ksprintf failwith fmt

let parse ?(base_dir = ".") ~id text =
  let resolve p = if Filename.is_relative p then Filename.concat base_dir p else p in
  let lines = String.split_on_char '\n' text in
  let id = ref id in
  let algorithm = ref "pipeline" in
  let seconds = ref 10.0 in
  let seed = ref 1 in
  let replicate = ref false in
  let p = ref None and g = ref None and l = ref None and delta = ref None in
  let machine_path = ref None in
  let dag_path = ref None in
  let inline_dag = ref None in
  let int_of what s =
    match int_of_string_opt s with
    | Some v -> v
    | None -> fail "Request: %s: not an integer: %s" what s
  in
  (* Header lines up to the [hyperdag] marker; everything after the
     marker is the inline hyperDAG body, passed to the text parser
     verbatim. *)
  let rec go = function
    | [] -> ()
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '%' then go rest
      else begin
        let words =
          String.split_on_char ' ' trimmed |> List.filter (fun s -> s <> "")
        in
        (match words with
         | [ "id"; v ] -> id := v
         | [ "algorithm"; v ] -> algorithm := v
         | [ "seconds"; v ] ->
           (match float_of_string_opt v with
            | Some s when s > 0.0 -> seconds := s
            | _ -> fail "Request: seconds must be a positive number, got %s" v)
         | [ "seed"; v ] -> seed := int_of "seed" v
         | [ "replicate" ] -> replicate := true
         | [ "replicate"; "true" ] -> replicate := true
         | [ "replicate"; "false" ] -> replicate := false
         | [ "p"; v ] -> p := Some (int_of "p" v)
         | [ "g"; v ] -> g := Some (int_of "g" v)
         | [ "l"; v ] -> l := Some (int_of "l" v)
         | [ "numa-delta"; v ] -> delta := Some (int_of "numa-delta" v)
         | [ "machine"; path ] -> machine_path := Some path
         | [ "dag"; path ] -> dag_path := Some path
         | [ "hyperdag" ] ->
           inline_dag := Some (String.concat "\n" rest);
           raise Exit
         | _ -> fail "Request: unrecognised line: %s" trimmed);
        go rest
      end
  in
  (try go lines with Exit -> ());
  let machine =
    match !machine_path with
    | Some path ->
      if !p <> None || !g <> None || !l <> None || !delta <> None then
        fail "Request: give either a machine file or p/g/l/numa-delta lines, not both";
      Machine_io.read_file (resolve path)
    | None ->
      let p = Option.value ~default:4 !p in
      let g = Option.value ~default:1 !g in
      let l = Option.value ~default:5 !l in
      (try
         match !delta with
         | None -> Machine.uniform ~p ~g ~l
         | Some delta -> Machine.numa_tree ~p ~g ~l ~delta
       with Invalid_argument m -> fail "Request: %s" m)
  in
  let dag =
    match (!dag_path, !inline_dag) with
    | Some _, Some _ -> fail "Request: give either a dag file or an inline hyperdag section, not both"
    | None, None -> fail "Request: missing dag (either a 'dag <path>' line or a 'hyperdag' section)"
    | Some path, None -> Hyperdag_io.read_file_auto (resolve path)
    | None, Some text -> Hyperdag_io.of_string text
  in
  {
    id = !id;
    algorithm = !algorithm;
    seconds = !seconds;
    seed = !seed;
    replicate = !replicate;
    machine;
    dag;
  }

type stats_request = { stats_id : string }
type parsed = Schedule of t | Stats of stats_request

(* A stats probe is a header-only document whose first directive is the
   bare word [stats]; an optional [id] line (and comments/blanks) may
   precede it. Anything else is a scheduling request and goes through
   the full parser — so a malformed scheduling request still fails with
   the scheduling parser's message, not a confusing stats one. *)
let parse_any ?base_dir ~id text =
  let rec scan id = function
    | [] -> None
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '%' then scan id rest
      else (
        match
          String.split_on_char ' ' trimmed |> List.filter (fun s -> s <> "")
        with
        | [ "id"; v ] -> scan v rest
        | [ "stats" ] -> Some id
        | _ -> None)
  in
  match scan id (String.split_on_char '\n' text) with
  | Some stats_id -> Stats { stats_id }
  | None -> Schedule (parse ?base_dir ~id text)
