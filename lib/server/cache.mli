(** The content-addressed schedule cache (DESIGN.md Section 5h).

    An entry maps the structural hash of (canonical DAG, machine,
    algorithm, seed, replicate flag) to the best schedule found so far
    for that workload, together with its cost and the largest
    optimisation budget it has been computed under. Entries live as a
    file pair in a cache directory:

    {v
    <key>.schedule    Schedule_io format (v1/v2)
    <key>.meta.json   { key, algorithm, n, supersteps, cost, seconds_budget }
    v}

    The meta file is the commit point: {!store} writes the schedule
    first and the meta second, each atomically ({!Atomic_file}), so
    readers never observe a half-written entry and a killed writer
    leaves the previous complete entry intact. Corrupt or stale entries
    (including a schedule that no longer parses against the request's
    DAG) degrade to a cache miss and are overwritten by the recompute —
    the cache self-heals rather than failing. Eviction is by external
    deletion: removing either file of a pair invalidates the entry. *)

val key :
  dag:Dag.t ->
  machine:Machine.t ->
  algorithm:string ->
  seed:int ->
  replicate:bool ->
  string
(** The 16-hex-digit content address. Built from
    {!Dag.structural_hash}, the machine's [(p, g, l)] and full NUMA
    matrix, and the algorithm identity — stable across processes and
    platforms ({!Fnv}). *)

type entry = {
  cost : int;
  seconds_budget : float;
      (** largest budget this entry has been optimised under;
          [infinity]-like semantics for budget-insensitive algorithms
          are handled by {!Engine}, which never refreshes them *)
  schedule : Schedule.t;
}

val lookup : dir:string -> dag:Dag.t -> string -> entry option
(** [None] for absent {e or} defective entries. *)

val store :
  dir:string ->
  key:string ->
  algorithm:string ->
  cost:int ->
  seconds_budget:float ->
  Schedule.t ->
  unit

val meta_path : dir:string -> string -> string
val schedule_path : dir:string -> string -> string
