(** Algorithm dispatch and the cache protocol (DESIGN.md Section 5h).

    This is the single scheduling entry point shared by the one-shot
    CLI and the serve daemon, so a cached answer is bit-identical to
    what the same request would have produced one-shot. *)

val algorithm_names : string list
(** Every scheduler the framework exposes, pipeline first — the source
    of truth for the CLI's [--algorithm] enum and request validation. *)

val is_algorithm : string -> bool

val budget_sensitive : string -> bool
(** [true] for the search-based methods ([pipeline], [multilevel])
    whose answer can improve under a larger [seconds] budget. Cached
    answers for budget-insensitive algorithms are final: any budget is
    a hit. *)

val schedule :
  ?warm:Schedule.t ->
  seconds:float ->
  seed:int ->
  replicate:bool ->
  algorithm:string ->
  Machine.t ->
  Dag.t ->
  Schedule.t
(** Run one algorithm under a wall-clock budget ([seconds] is split
    across pipeline stages exactly as the CLI always did). [warm]
    seeds the base pipeline with an existing schedule
    ({!Pipeline.run_warm}); it is ignored by every other algorithm.
    With [replicate] set, non-pipeline algorithms get the replication
    post-pass, kept only when strictly cheaper. Raises [Failure] on an
    unknown algorithm name. *)

val request_key : Request.t -> string
(** The request's content address ({!Cache.key}) — what the daemon uses
    to coalesce duplicate requests inside one batch. *)

type status =
  | Hit  (** served from cache, pipeline not run *)
  | Miss  (** computed and cached *)
  | Refresh
      (** cached entry existed but under a smaller budget: re-optimised
          (warm-started for the pipeline), best of old and new kept,
          recorded budget topped up *)

val status_label : status -> string
(** ["hit"] / ["miss"] / ["refresh"] — the wire form in responses and
    metric names. *)

type result = { status : status; key : string; cost : int; schedule : Schedule.t }

val handle : cache_dir:string -> Request.t -> result
(** Serve one request through the cache: look up the content address,
    return the cached schedule on a hit, otherwise compute, store
    atomically, and return. Raises [Failure] on an unknown algorithm or
    an internal validity failure; IO errors propagate. *)
