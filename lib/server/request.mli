(** Scheduling requests (DESIGN.md Section 5h).

    A request is a small line-oriented text document naming a workload
    (hyperDAG + machine) and how hard to optimise it. Lines before the
    optional [hyperdag] marker form the header; [%] comments and blank
    lines are ignored:

    {v
    % any comment
    id job-42                    (defaults to the queue file name)
    algorithm pipeline           (any scheduler the CLI accepts)
    seconds 5                    (optimisation budget, default 10)
    seed 1                       (Cilk stealing seed, default 1)
    replicate true               (node replication, default false)
    p 4                          (machine, CLI-style ...)
    g 1
    l 5
    numa-delta 3
    machine path/to/m.machine    (... or a Machine_io file instead)
    dag path/to/instance.hdag    (text or binary, sniffed)
    hyperdag                     (... or the instance inline:)
    <hyperDAG text until end of file>
    v}

    Exactly one of [dag <path>] / inline [hyperdag] must be present.
    Relative paths resolve against [base_dir] (the daemon passes the
    queue's incoming directory). *)

type t = {
  id : string;
  algorithm : string;  (** not validated here; {!Engine.handle} rejects unknowns *)
  seconds : float;  (** optimisation budget; the cache's refresh threshold *)
  seed : int;
  replicate : bool;
  machine : Machine.t;
  dag : Dag.t;
}

val parse : ?base_dir:string -> id:string -> string -> t
(** Parse a request document. [id] is the fallback identity (the queue
    file name) used when the document has no [id] line. Raises
    [Failure] with a descriptive message on malformed input, unreadable
    referenced files, or a malformed embedded hyperDAG. *)

type stats_request = { stats_id : string }

type parsed = Schedule of t | Stats of stats_request
(** The daemon accepts one more request type over the same transports:
    a {b stats probe} — a header-only document whose first directive is
    the bare word [stats] (an [id] line, comments and blank lines may
    precede it):

    {v
    id probe-1
    stats
    v}

    It is answered with a live telemetry snapshot instead of a
    schedule; see {!Daemon}. *)

val parse_any : ?base_dir:string -> id:string -> string -> parsed
(** Like {!parse}, but recognises stats probes. Anything that is not a
    stats probe is parsed as a scheduling request (with the scheduling
    parser's error messages). *)
