type config = {
  queue_dir : string;
  cache_dir : string;
  poll_seconds : float;
  once : bool;
  metrics_file : string option;
  prometheus_file : string option;
  request_trace_file : string option;
}

let default_config ~queue_dir =
  {
    queue_dir;
    cache_dir = Filename.concat queue_dir "cache";
    poll_seconds = 0.05;
    once = false;
    metrics_file = Some (Filename.concat queue_dir "metrics.json");
    prometheus_file = Some (Filename.concat queue_dir "metrics.prom");
    request_trace_file = None;
  }

let incoming_dir cfg = Filename.concat cfg.queue_dir "incoming"
let done_dir cfg = Filename.concat cfg.queue_dir "done"
let stop_path cfg = Filename.concat cfg.queue_dir "stop"

let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* ------------------------------------------------------------------ *)
(* Responses. *)

let error_json ~id msg =
  Obs.Json.Obj
    [
      ("id", Obs.Json.String id);
      ("status", Obs.Json.String "error");
      ("error", Obs.Json.String msg);
    ]

let ok_json ~id ~cache ~key ~cost ~supersteps ~seconds extra =
  Obs.Json.Obj
    ([
       ("id", Obs.Json.String id);
       ("status", Obs.Json.String "ok");
       ("cache", Obs.Json.String cache);
       ("key", Obs.Json.String key);
       ("cost", Obs.Json.Int cost);
       ("supersteps", Obs.Json.Int supersteps);
       ("seconds", Obs.Json.Float seconds);
     ]
    @ extra)

(* The live telemetry snapshot a [stats] probe is answered with:
   counters/gauges/histograms straight from the metrics registry (the
   histogram members carry count/sum/min/max and p50/p90/p99), the
   cache hit ratio over actual cache lookups (hits vs misses and
   refreshes; coalesced followers never looked up), uptime, and the
   per-domain Par pool accumulators — tasks, batches, GC pressure. *)
let stats_json ~registry ~t0 ~id =
  let snapshot = Obs.Metrics.to_json registry in
  let section k =
    Option.value ~default:(Obs.Json.Obj []) (Obs.Json.member k snapshot)
  in
  let c name = Obs.Metrics.counter_value registry name in
  let hits = c "server.cache_hits" in
  let lookups = hits + c "server.cache_misses" + c "server.cache_refreshes" in
  let hit_ratio =
    if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups
  in
  let domain (d : Par.domain_stats) =
    Obs.Json.Obj
      [
        ("domain", Obs.Json.Int d.Par.domain_index);
        ("worker", Obs.Json.Bool d.Par.is_worker);
        ("tasks_run", Obs.Json.Int d.Par.tasks_run);
        ("batches_drained", Obs.Json.Int d.Par.batches_drained);
        ("last_chunk", Obs.Json.Int d.Par.last_chunk);
        ("minor_words", Obs.Json.Float d.Par.minor_words);
        ("promoted_words", Obs.Json.Float d.Par.promoted_words);
        ("minor_collections", Obs.Json.Int d.Par.minor_collections);
        ("major_collections", Obs.Json.Int d.Par.major_collections);
      ]
  in
  Obs.Json.Obj
    [
      ("id", Obs.Json.String id);
      ("status", Obs.Json.String "ok");
      ("type", Obs.Json.String "stats");
      ("uptime_seconds", Obs.Json.Float (Obs.Clock.now () -. t0));
      ("cache_hit_ratio", Obs.Json.Float hit_ratio);
      ("counters", section "counters");
      ("gauges", section "gauges");
      ("histograms", section "histograms");
      ("series_dropped", section "series_dropped");
      ( "pool",
        Obs.Json.Obj
          [
            ("jobs", Obs.Json.Int (Par.jobs ()));
            ("domains", Obs.Json.List (List.map domain (Par.stats ())));
          ] );
    ]

(* ------------------------------------------------------------------ *)
(* Directory queue. *)

let scan cfg =
  Sys.readdir (incoming_dir cfg)
  |> Array.to_list
  |> List.filter (fun n -> Filename.check_suffix n ".req")
  |> List.sort compare

let counter_of_label = function
  | "hit" -> "server.cache_hits"
  | "miss" -> "server.cache_misses"
  | "refresh" -> "server.cache_refreshes"
  | "coalesced" -> "server.cache_coalesced"
  | other -> "server.cache_" ^ other

type trace_event = {
  ev_id : string;
  ev_cache : string;
  ev_ts : float;  (** µs since daemon start *)
  ev_dur : float;  (** µs *)
}

let write_request_trace path events =
  let json =
    Obs.Json.Obj
      [
        ( "traceEvents",
          Obs.Json.List
            (List.map
               (fun e ->
                 Obs.Json.Obj
                   [
                     ("name", Obs.Json.String e.ev_id);
                     ("cat", Obs.Json.String "request");
                     ("ph", Obs.Json.String "X");
                     ("ts", Obs.Json.Float e.ev_ts);
                     ("dur", Obs.Json.Float e.ev_dur);
                     ("pid", Obs.Json.Int 0);
                     ("tid", Obs.Json.Int 0);
                     ("args", Obs.Json.Obj [ ("cache", Obs.Json.String e.ev_cache) ]);
                   ])
               events) );
      ]
  in
  Atomic_file.write_string path (Obs.Json.to_string json ^ "\n")

(* One queue batch: parse everything, coalesce duplicate content
   addresses, run one Engine task per distinct address on the Par pool,
   then write every response (schedule first, response JSON second,
   request file removed last — a crash at any point either leaves the
   request queued for reprocessing, which the cache then answers, or
   fully answered; never half-answered). Stats probes are answered
   inline from the live registry before the scheduling work runs. *)
let process_batch cfg ~registry ~t0 ~trace_events names =
  Obs.Metrics.counter "server.batches" 1;
  Obs.Metrics.gauge_max "server.queue_depth_peak" (float_of_int (List.length names));
  let incoming = incoming_dir cfg and finished = done_dir cfg in
  let parsed =
    List.map
      (fun name ->
        let base = Filename.chop_suffix name ".req" in
        let path = Filename.concat incoming name in
        match
          let text = In_channel.with_open_bin path In_channel.input_all in
          Request.parse_any ~base_dir:incoming ~id:base text
        with
        | req -> (name, base, Ok req)
        | exception (Failure msg | Sys_error msg) -> (name, base, Error msg))
      names
  in
  let leaders = ref [] in
  let leader_of = Hashtbl.create 16 in
  List.iter
    (fun (name, _base, r) ->
      match r with
      | Error _ | Ok (Request.Stats _) -> ()
      | Ok (Request.Schedule req) ->
        let key = Engine.request_key req in
        if not (Hashtbl.mem leader_of key) then begin
          Hashtbl.add leader_of key name;
          leaders := (key, req) :: !leaders
        end)
    parsed;
  let results =
    Par.map
      (fun (key, req) ->
        let t_start = Obs.Clock.now () in
        let outcome =
          match
            Obs.Metrics.with_span "server/request" (fun () ->
                Engine.handle ~cache_dir:cfg.cache_dir req)
          with
          | r -> Ok r
          | exception (Failure msg | Sys_error msg) -> Error msg
        in
        (key, outcome, t_start, Obs.Clock.now () -. t_start))
      (List.rev !leaders)
  in
  let result_of_key = Hashtbl.create 16 in
  List.iter
    (fun (key, outcome, t_start, dt) ->
      Hashtbl.replace result_of_key key (outcome, t_start, dt))
    results;
  let respond_error ~base ~id msg =
    Obs.Metrics.counter "server.errors" 1;
    Atomic_file.write_string
      (Filename.concat finished (base ^ ".resp.json"))
      (Obs.Json.to_string (error_json ~id msg) ^ "\n")
  in
  List.iter
    (fun (name, base, r) ->
      (match r with
       | Error msg ->
         Obs.Metrics.counter "server.requests" 1;
         respond_error ~base ~id:base msg
       | Ok (Request.Stats { Request.stats_id }) ->
         Obs.Metrics.counter "server.stats_requests" 1;
         Atomic_file.write_string
           (Filename.concat finished (base ^ ".resp.json"))
           (Obs.Json.to_string (stats_json ~registry ~t0 ~id:stats_id) ^ "\n")
       | Ok (Request.Schedule req) ->
         Obs.Metrics.counter "server.requests" 1;
         let key = Engine.request_key req in
         let outcome, t_start, dt = Hashtbl.find result_of_key key in
         (match outcome with
          | Error msg -> respond_error ~base ~id:req.Request.id msg
          | Ok (res : Engine.result) ->
            let is_leader = Hashtbl.find leader_of key = name in
            let cache_label =
              if is_leader then Engine.status_label res.Engine.status
              else "coalesced"
            in
            Obs.Metrics.counter (counter_of_label cache_label) 1;
            let seconds = if is_leader then dt else 0.0 in
            (* Latency distribution, not an unbounded per-request
               series: coalesced followers waited out the same handling
               as their leader, so they observe the leader's [dt]. *)
            Obs.Metrics.histogram "server.request_seconds" dt;
            let sched_rel = Filename.concat "done" (base ^ ".schedule") in
            Schedule_io.write_file
              (Filename.concat finished (base ^ ".schedule"))
              res.Engine.schedule;
            Atomic_file.write_string
              (Filename.concat finished (base ^ ".resp.json"))
              (Obs.Json.to_string
                 (ok_json ~id:req.Request.id ~cache:cache_label ~key:res.Engine.key
                    ~cost:res.Engine.cost
                    ~supersteps:(Schedule.num_supersteps res.Engine.schedule)
                    ~seconds
                    [ ("schedule_file", Obs.Json.String sched_rel) ])
              ^ "\n");
            trace_events :=
              {
                ev_id = req.Request.id;
                ev_cache = cache_label;
                ev_ts = (t_start -. t0) *. 1e6;
                ev_dur = dt *. 1e6 *. (if is_leader then 1.0 else 0.0);
              }
              :: !trace_events));
      try Sys.remove (Filename.concat incoming name) with Sys_error _ -> ())
    parsed

let run cfg =
  mkdir_p (incoming_dir cfg);
  mkdir_p (done_dir cfg);
  mkdir_p cfg.cache_dir;
  (* The loop records through the ambient registry; install one if the
     caller did not, so the metrics file is always meaningful. *)
  let registry =
    match Obs.Metrics.current () with
    | Some r -> r
    | None ->
      let r = Obs.Metrics.create () in
      Obs.Metrics.install r;
      r
  in
  let t0 = Obs.Clock.now () in
  (* Both snapshot formats refresh together, after every batch and at
     shutdown, each through Atomic_file — a scraper reading
     metrics.prom never sees a partial exposition. *)
  let write_metrics () =
    Obs.Metrics.gauge "server.uptime_seconds" (Obs.Clock.now () -. t0);
    Option.iter (Obs.Metrics.write_json_file registry) cfg.metrics_file;
    Option.iter (Obs.Metrics.write_prometheus_file registry) cfg.prometheus_file
  in
  let trace_events = ref [] in
  let interrupted = ref false in
  let old_term = ref None and old_int = ref None in
  (try
     old_term :=
       Some (Sys.signal Sys.sigterm (Sys.Signal_handle (fun _ -> interrupted := true)));
     old_int :=
       Some (Sys.signal Sys.sigint (Sys.Signal_handle (fun _ -> interrupted := true)))
   with Invalid_argument _ | Sys_error _ -> ());
  let restore () =
    (try Option.iter (Sys.set_signal Sys.sigterm) !old_term with _ -> ());
    try Option.iter (Sys.set_signal Sys.sigint) !old_int with _ -> ()
  in
  Fun.protect ~finally:restore (fun () ->
      let rec loop () =
        let pending = scan cfg in
        let depth = float_of_int (List.length pending) in
        Obs.Metrics.gauge "server.queue_depth" depth;
        Obs.Metrics.gauge_max "server.queue_depth_peak" depth;
        if pending <> [] && not !interrupted then begin
          process_batch cfg ~registry ~t0 ~trace_events pending;
          write_metrics ();
          loop ()
        end
        else if
          !interrupted || cfg.once || Sys.file_exists (stop_path cfg)
        then ()
        else begin
          Unix.sleepf cfg.poll_seconds;
          loop ()
        end
      in
      loop ();
      write_metrics ();
      Option.iter
        (fun path -> write_request_trace path (List.rev !trace_events))
        cfg.request_trace_file;
      (* Consume the stop marker so the next daemon on this queue does
         not exit immediately. *)
      try Sys.remove (stop_path cfg) with Sys_error _ -> ())

(* ------------------------------------------------------------------ *)
(* Length-framed stdin/stdout protocol: 4-byte big-endian payload
   length, then the payload — a request document in a frame, a
   compact-JSON response (schedule inline) in the reply frame. Clean
   EOF is only legal at a frame boundary; a partial header or payload
   fails loudly. *)

let max_frame = 256 * 1024 * 1024

let read_frame ic =
  match input_char ic with
  | exception End_of_file -> None
  | b0 ->
    let rest =
      try really_input_string ic 3
      with End_of_file -> failwith "Daemon: truncated frame header"
    in
    let b i = if i = 0 then Char.code b0 else Char.code rest.[i - 1] in
    let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
    if len > max_frame then
      failwith (Printf.sprintf "Daemon: frame length %d exceeds the %d limit" len max_frame);
    (match really_input_string ic len with
     | payload -> Some payload
     | exception End_of_file -> failwith "Daemon: truncated frame payload")

let write_frame oc payload =
  let len = String.length payload in
  if len > max_frame then failwith "Daemon: response exceeds the frame limit";
  output_char oc (Char.chr ((len lsr 24) land 0xff));
  output_char oc (Char.chr ((len lsr 16) land 0xff));
  output_char oc (Char.chr ((len lsr 8) land 0xff));
  output_char oc (Char.chr (len land 0xff));
  output_string oc payload;
  flush oc

let run_stdio ~cache_dir ic oc =
  set_binary_mode_in ic true;
  set_binary_mode_out oc true;
  mkdir_p cache_dir;
  let registry =
    match Obs.Metrics.current () with
    | Some r -> r
    | None ->
      let r = Obs.Metrics.create () in
      Obs.Metrics.install r;
      r
  in
  let t0 = Obs.Clock.now () in
  let count = ref 0 in
  let rec loop () =
    match read_frame ic with
    | None -> ()
    | Some payload ->
      incr count;
      let fallback_id = Printf.sprintf "stdio-%d" !count in
      let json =
        match Request.parse_any ~id:fallback_id payload with
        | Request.Stats { Request.stats_id } ->
          Obs.Metrics.counter "server.stats_requests" 1;
          stats_json ~registry ~t0 ~id:stats_id
        | Request.Schedule req ->
          Obs.Metrics.counter "server.requests" 1;
          let t_start = Obs.Clock.now () in
          let res =
            Obs.Metrics.with_span "server/request" (fun () ->
                Engine.handle ~cache_dir req)
          in
          let dt = Obs.Clock.now () -. t_start in
          Obs.Metrics.counter
            (counter_of_label (Engine.status_label res.Engine.status))
            1;
          Obs.Metrics.histogram "server.request_seconds" dt;
          ok_json ~id:req.Request.id
            ~cache:(Engine.status_label res.Engine.status)
            ~key:res.Engine.key ~cost:res.Engine.cost
            ~supersteps:(Schedule.num_supersteps res.Engine.schedule)
            ~seconds:dt
            [
              ( "schedule",
                Obs.Json.String (Schedule_io.to_string res.Engine.schedule) );
            ]
        | exception (Failure msg | Sys_error msg) ->
          Obs.Metrics.counter "server.requests" 1;
          Obs.Metrics.counter "server.errors" 1;
          error_json ~id:fallback_id msg
      in
      write_frame oc (Obs.Json.to_string_compact json);
      loop ()
  in
  loop ()
