(** The long-running batch scheduler — [scheduler serve] (DESIGN.md
    Sections 5h, 5i).

    {b Directory queue.} A queue directory holds:

    {v
    <queue>/incoming/NAME.req     dropped requests (Request format)
    <queue>/done/NAME.resp.json   response, written atomically
    <queue>/done/NAME.schedule    the schedule (Schedule_io format)
    <queue>/stop                  touch to request clean shutdown
    <queue>/metrics.json          Obs.Metrics snapshot (configurable)
    <queue>/metrics.prom          Prometheus text exposition (configurable)
    v}

    The loop scans [incoming/] (lexicographic order), treats everything
    pending as one batch, coalesces requests with equal content
    addresses, runs one {!Engine.handle} task per distinct address on
    the {!Par} domain pool, and answers each request with the response
    JSON plus schedule file. Responses are written before the request
    file is removed and every write is atomic, so a killed daemon
    leaves each request either fully answered or still queued — and a
    requeued request is answered from the cache. Producers should
    write-then-rename their request files into [incoming/] so the
    daemon never sees a partial request.

    The response JSON carries [id], [status] ("ok"/"error"),
    [cache] ("hit" | "miss" | "refresh" | "coalesced"), [key], [cost],
    [supersteps], [seconds] (handling latency; [0] for coalesced
    followers) and [schedule_file] (queue-relative), or [error] with a
    message.

    {b Stats probes.} A request whose first directive is the bare word
    [stats] (see {!Request.parsed}) is answered inline — no scheduling
    work, no cache — with a live telemetry snapshot: [uptime_seconds],
    [cache_hit_ratio] (hits over actual cache lookups), the registry's
    [counters], [gauges] and [histograms] (each histogram with
    count/sum/min/max, p50/p90/p99 quantiles and its non-empty
    buckets), [series_dropped], and [pool] — the jobs setting plus
    per-domain {!Par.stats} accumulators (tasks, batches, GC pressure).
    Works identically over the directory queue and the stdio framing.

    {b Observability.} Counters [server.requests] (scheduling requests
    and errors), [server.stats_requests], [server.batches],
    [server.cache_hits]/[_misses]/[_refreshes]/[_coalesced],
    [server.errors]; gauges [server.queue_depth],
    [server.queue_depth_peak] ([set_max]: the deepest queue ever
    scanned, also bumped per batch) and [server.uptime_seconds];
    per-request latency as the [server.request_seconds] {b histogram}
    (bounded memory — coalesced followers observe their leader's
    handling time, since that is the wall time they waited). Snapshots
    are written through the ambient {!Obs.Metrics} registry (one is
    installed if absent) after every batch and at shutdown:
    [metrics_file] as JSON, [prometheus_file] as Prometheus text
    exposition — both via [Atomic_file], so scrapers never read a
    partial file. [request_trace_file] writes a Chrome trace_event
    timeline of the request loop (one X slice per served request,
    cache status in [args]) at shutdown. All daemon timing reads
    {!Obs.Clock}.

    {b Shutdown.} Touching [<queue>/stop], SIGTERM or SIGINT all stop
    the loop after the in-flight batch; remaining metrics and trace are
    flushed and the stop marker is consumed. *)

type config = {
  queue_dir : string;
  cache_dir : string;  (** the content-addressed cache ({!Cache}) *)
  poll_seconds : float;  (** sleep between empty scans *)
  once : bool;  (** drain the queue, then exit instead of polling *)
  metrics_file : string option;
  prometheus_file : string option;
      (** Prometheus text-exposition snapshot, refreshed with
          [metrics_file] *)
  request_trace_file : string option;
}

val default_config : queue_dir:string -> config
(** Cache in [<queue>/cache], 50 ms poll, metrics to
    [<queue>/metrics.json], Prometheus to [<queue>/metrics.prom], no
    request trace, [once = false]. *)

val run : config -> unit
(** Run the daemon until a shutdown condition. Creates the queue and
    cache directories as needed. *)

(** {1 Length-framed stdio protocol}

    For socket-style embedding ([scheduler serve --stdio]): each frame
    is a 4-byte big-endian payload length followed by the payload. A
    request frame carries a {!Request} document; the reply frame
    carries the response JSON with the schedule inlined under
    ["schedule"], or the stats snapshot for a stats probe. EOF at a
    frame boundary ends the session; a truncated frame raises
    [Failure]. *)

val read_frame : in_channel -> string option
val write_frame : out_channel -> string -> unit

val run_stdio : cache_dir:string -> in_channel -> out_channel -> unit
(** Serve frames from the input channel until EOF, answering on the
    output channel. Requests are handled one at a time in arrival
    order (batching happens across the {!Par} pool only in the
    directory queue). *)
