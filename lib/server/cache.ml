let key ~dag ~machine ~algorithm ~seed ~replicate =
  let h = Fnv.init in
  (* A format tag so the key space can be versioned if the canonical
     serialisation ever changes. *)
  let h = Fnv.string h "bsp-schedule-cache-v1" in
  let h = Fnv.string h (Fnv.to_hex (Dag.structural_hash dag)) in
  let h = Fnv.int h machine.Machine.p in
  let h = Fnv.int h machine.Machine.g in
  let h = Fnv.int h machine.Machine.l in
  let h = Array.fold_left Fnv.int_array h machine.Machine.lambda in
  let h = Fnv.string h algorithm in
  let h = Fnv.int h seed in
  let h = Fnv.int h (Bool.to_int replicate) in
  Fnv.to_hex h

let meta_path ~dir key = Filename.concat dir (key ^ ".meta.json")
let schedule_path ~dir key = Filename.concat dir (key ^ ".schedule")

type entry = { cost : int; seconds_budget : float; schedule : Schedule.t }

let lookup ~dir ~dag key =
  let mp = meta_path ~dir key in
  if not (Sys.file_exists mp) then None
  else
    (* Any defect — unreadable meta, stale node count, corrupt or
       missing schedule — degrades to a miss: the entry is recomputed
       and atomically overwritten, so the cache self-heals. *)
    match
      let text = In_channel.with_open_bin mp In_channel.input_all in
      let j = Obs.Json.of_string text in
      let get name conv =
        match Option.bind (Obs.Json.member name j) conv with
        | Some v -> v
        | None -> failwith ("Cache: meta field missing or mistyped: " ^ name)
      in
      let cost = get "cost" Obs.Json.to_int_opt in
      let seconds_budget = get "seconds_budget" Obs.Json.to_float_opt in
      let n = get "n" Obs.Json.to_int_opt in
      if n <> Dag.n dag then failwith "Cache: node count mismatch";
      let schedule = Schedule_io.read_file dag (schedule_path ~dir key) in
      { cost; seconds_budget; schedule }
    with
    | entry -> Some entry
    | exception (Failure _ | Sys_error _ | Obs.Json.Parse_error _ | End_of_file) ->
      None

let store ~dir ~key ~algorithm ~cost ~seconds_budget schedule =
  (* Schedule first, meta second: the meta file is the commit point a
     lookup starts from, so a crash between the two writes leaves no
     visible half-entry (and each write is itself atomic). *)
  Schedule_io.write_file (schedule_path ~dir key) schedule;
  let meta =
    Obs.Json.Obj
      [
        ("key", Obs.Json.String key);
        ("algorithm", Obs.Json.String algorithm);
        ("n", Obs.Json.Int (Dag.n schedule.Schedule.dag));
        ("supersteps", Obs.Json.Int (Schedule.num_supersteps schedule));
        ("cost", Obs.Json.Int cost);
        ("seconds_budget", Obs.Json.Float seconds_budget);
      ]
  in
  Atomic_file.write_string (meta_path ~dir key) (Obs.Json.to_string meta ^ "\n")
