(** Pluggable wall-clock for the observability stack (DESIGN.md
    Section 5i).

    Every timing measurement in the repo — {!Metrics.span},
    [Budget.seconds] deadlines, {!Events} timestamps, the daemon's
    latency histogram and uptime — reads time through {!now}. Tests
    install a deterministic fake source with {!with_source} and assert
    exact durations.

    This is a re-export of [Time_source] (bsp_util), which exists one
    layer down so [Budget] can share the same source. *)

val real : unit -> float
(** The default source: [Unix.gettimeofday]. *)

val now : unit -> float
(** The current time according to the installed source. *)

val set : (unit -> float) -> unit
(** Replace the process-wide time source. *)

val reset : unit -> unit
(** Restore {!real}. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** Run the callback with the source temporarily replaced
    (exception-safe restore of the previous source). *)
