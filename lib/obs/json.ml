type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

let add_escaped buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

(* JSON has no literal for non-finite numbers; emit null rather than an
   invalid token so downstream parsers never choke on a stray nan.
   Finite floats are printed with the fewest digits (15, 16 or 17
   significant) that parse back to the identical value, so emit/parse is
   an exact round trip without always paying the 17-digit noise. *)
let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else begin
    let s = Printf.sprintf "%.15g" f in
    let s =
      if float_of_string s = f then s
      else begin
        let s = Printf.sprintf "%.16g" f in
        if float_of_string s = f then s else Printf.sprintf "%.17g" f
      end
    in
    Buffer.add_string buf s
  end

let to_buffer buf v =
  let rec go indent v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
    | List [] -> Buffer.add_string buf "[]"
    | List items ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "[\n";
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          go (indent + 2) item)
        items;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      let pad = String.make (indent + 2) ' ' in
      Buffer.add_string buf "{\n";
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_string buf ",\n";
          Buffer.add_string buf pad;
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\": ";
          go (indent + 2) item)
        fields;
      Buffer.add_char buf '\n';
      Buffer.add_string buf (String.make indent ' ');
      Buffer.add_char buf '}'
  in
  go 0 v

let to_string v =
  let buf = Buffer.create 1024 in
  to_buffer buf v;
  Buffer.contents buf

let to_buffer_compact buf v =
  let rec go v =
    match v with
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f -> add_float buf f
    | String s ->
      Buffer.add_char buf '"';
      add_escaped buf s;
      Buffer.add_char buf '"'
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          go item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, item) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          add_escaped buf k;
          Buffer.add_string buf "\":";
          go item)
        fields;
      Buffer.add_char buf '}'
  in
  go v

let to_string_compact v =
  let buf = Buffer.create 1024 in
  to_buffer_compact buf v;
  Buffer.contents buf

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then incr pos
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let literal lit v =
    let k = String.length lit in
    if !pos + k <= n && String.sub s !pos k = lit then begin
      pos := !pos + k;
      v
    end
    else fail ("expected " ^ lit)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' ->
        incr pos;
        Buffer.contents buf
      | '\\' ->
        incr pos;
        if !pos >= n then fail "truncated escape";
        (match s.[!pos] with
         | '"' -> Buffer.add_char buf '"'; incr pos
         | '\\' -> Buffer.add_char buf '\\'; incr pos
         | '/' -> Buffer.add_char buf '/'; incr pos
         | 'b' -> Buffer.add_char buf '\b'; incr pos
         | 'f' -> Buffer.add_char buf '\012'; incr pos
         | 'n' -> Buffer.add_char buf '\n'; incr pos
         | 'r' -> Buffer.add_char buf '\r'; incr pos
         | 't' -> Buffer.add_char buf '\t'; incr pos
         | 'u' ->
           if !pos + 4 >= n then fail "truncated \\u escape";
           (match int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4) with
            | None -> fail "bad \\u escape"
            | Some code ->
              (* UTF-8 encode the BMP code point. *)
              if code < 0x80 then Buffer.add_char buf (Char.chr code)
              else if code < 0x800 then begin
                Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end
              else begin
                Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
              end;
              pos := !pos + 5)
         | _ -> fail "bad escape");
        go ()
      | c ->
        Buffer.add_char buf c;
        incr pos;
        go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numeric c =
      match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
    in
    while !pos < n && numeric s.[!pos] do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None ->
      (match float_of_string_opt tok with
       | Some f -> Float f
       | None -> fail ("bad number " ^ tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      incr pos;
      skip_ws ();
      if peek () = Some '}' then begin
        incr pos;
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            members ((key, v) :: acc)
          | Some '}' ->
            incr pos;
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
      end
    | Some '[' ->
      incr pos;
      skip_ws ();
      if peek () = Some ']' then begin
        incr pos;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            incr pos;
            items (v :: acc)
          | Some ']' ->
            incr pos;
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing input";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None
