(** A minimal JSON value type with an emitter and a parser.

    The observability layer (DESIGN.md Section 5c) must serialise metric
    snapshots without adding dependencies, so this module implements just
    enough of RFC 8259: the emitter escapes strings, renders non-finite
    floats as [null] (JSON has no literal for them), and pretty-prints
    with two-space indentation; the parser accepts anything the emitter
    produces (plus standard escapes), which the test suite uses to verify
    emitted metric files are well-formed. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Indented (two-space) pretty-printed rendering — what [--metrics] and
    trace files use so they stay readable in diffs. Finite floats are
    printed with the fewest significant digits that parse back to the
    bit-identical value, so emit/parse round-trips exactly. *)

val to_buffer : Buffer.t -> t -> unit

val to_string_compact : t -> string
(** Single-line rendering with no whitespace, for embedding JSON in log
    lines or size-sensitive outputs. Parses to the same value as
    {!to_string}. *)

val to_buffer_compact : Buffer.t -> t -> unit

val of_string : string -> t
(** Raises {!Parse_error} on malformed input or trailing characters. *)

val member : string -> t -> t option
(** [member key (Obj fields)] is the value bound to [key]; [None] for
    missing keys or non-object values. *)

val to_int_opt : t -> int option

val to_float_opt : t -> float option
(** Accepts both [Int] and [Float]. *)
