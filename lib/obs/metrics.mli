(** Zero-dependency metrics substrate (DESIGN.md Section 5c).

    A registry holds four metric families:

    - {b counters} — monotone integers ("hc.moves_evaluated");
    - {b gauges} — last-writer-wins floats ("multilevel.coarse_nodes"),
      with a max-keeping variant for peaks ("hc.worklist_peak");
    - {b series} — ordered (label, value) points, used for the
      pipeline's best-so-far cost trajectory;
    - {b spans} — wall-clock timers keyed by a slash-joined path that
      reflects dynamic nesting ("pipeline/hc:bspg"). A span opened with
      its stage's {!Budget.t} also records the steps that budget
      consumed inside the span, so per-stage step accounting and timing
      come from a single source of truth.

    Instrumented modules record through the ambient entry points
    ({!counter}, {!gauge}, {!with_span}, ...), which are no-ops unless a
    registry is {!install}ed — default runs pay one pointer load per
    stage and nothing per inner-loop iteration. *)

type t

type span_stats = { path : string; calls : int; seconds : float; steps_used : int }

val create : unit -> t

(** {1 Recording against an explicit registry} *)

val add : t -> string -> int -> unit
(** [add t name by] increments counter [name]. *)

val set : t -> string -> float -> unit
(** Set gauge [name]. *)

val set_max : t -> string -> float -> unit
(** Set gauge [name] to the maximum of its current value and [v]. *)

val point : t -> string -> label:string -> float -> unit
(** Append a labelled point to series [name]. *)

val span : ?budget:Budget.t -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f], accumulating wall-clock time (and, when
    [budget] is given, the budget steps consumed by [f]) under the path
    formed by the enclosing spans and [name]. Exceptions propagate; the
    span still closes. *)

val on_span_close : t -> (path:string -> seconds:float -> steps:int -> unit) -> unit
(** Invoke a callback every time a span closes — the [--trace] CLI flag
    uses this for live per-stage summary lines. *)

(** {1 The ambient registry}

    The ambient handle is {b domain-local} ([Domain.DLS]): [install]
    and [with_registry] affect only the calling domain, so parallel
    tasks run by {!Par} each record into their own child registry
    without racing. A registry itself is single-writer — never record
    into the same registry from two domains concurrently; use
    {!create_child} + {!merge_into} instead. *)

val install : t -> unit
val clear : unit -> unit
val current : unit -> t option

val with_registry : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, restoring the previous
    ambient registry of the calling domain afterwards
    (exception-safe). *)

(** {1 Parallel fan-out: child registries}

    The deterministic-merge contract (DESIGN.md Section 5e): a parent
    registry plus children merged in submission order yields the same
    counters, gauges, series and span stats as running the same tasks
    sequentially against the parent — modulo wall-clock seconds, which
    are genuinely measured. In particular the exact Σ-steps invariant
    (sum of span [steps_used] equals the engine evaluation counters)
    survives the merge, because both sides are additive. *)

val create_child : t -> t
(** A fresh registry for one parallel task. It inherits the parent's
    currently-open span context, so spans recorded inside the task keep
    the slash-joined paths they would have had sequentially; it does
    {i not} inherit the [on_span_close] callback (live trace lines
    cover only the submitting domain). *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into child] folds a child registry into [into]:
    counters and span calls/seconds/steps add, [set] gauges overwrite
    (last merged child wins), [set_max] gauges keep the maximum, series
    points append after [into]'s existing points. Iteration is over
    sorted keys, so merging the same children in the same order is
    bit-deterministic. *)

val counter : string -> int -> unit
val gauge : string -> float -> unit
val gauge_max : string -> float -> unit
val series_point : string -> label:string -> float -> unit

val with_span : ?budget:Budget.t -> string -> (unit -> 'a) -> 'a
(** Like {!span} on the ambient registry; just runs the callback when no
    registry is installed. *)

(** {1 Reading and reporting} *)

val counter_value : t -> string -> int
(** 0 for unknown counters. *)

val gauge_value : t -> string -> float option
val series_values : t -> string -> (string * float) list

val span_list : t -> span_stats list
(** Sorted by path. *)

val to_json : t -> Json.t
(** Snapshot — see DESIGN.md Section 5c for the shape. *)

val write_json_file : t -> string -> unit

val pp : Format.formatter -> t -> unit
(** Plain-text rendering of the snapshot. *)

val log_summary : t -> unit
(** Emit the snapshot as [Logs] app-level lines on the ["bsp.obs"]
    source (the caller is responsible for installing a Logs reporter). *)

val src : Logs.src
