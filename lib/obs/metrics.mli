(** Zero-dependency metrics substrate (DESIGN.md Sections 5c, 5i).

    A registry holds five metric families:

    - {b counters} — monotone integers ("hc.moves_evaluated");
    - {b gauges} — last-writer-wins floats ("multilevel.coarse_nodes"),
      with a max-keeping variant for peaks ("hc.worklist_peak");
    - {b series} — ordered (label, value) points, used for the
      pipeline's best-so-far cost trajectory. Retention is bounded per
      series ({!series_cap}, default 10k points): appends beyond the
      cap evict the oldest point and increment a per-series drop
      counter that is part of every snapshot, so a long-running daemon
      cannot grow its registry without limit and the truncation is
      never silent;
    - {b histograms} — log-bucketed (base-2, 64 buckets) value
      distributions with p50/p90/p99 summaries, used for per-task
      runtimes and request latencies. Buckets are a fixed flat array,
      so recording is allocation-free and the child-registry merge is
      element-wise addition — bucket contents are bit-deterministic
      regardless of recording order;
    - {b spans} — wall-clock timers keyed by a slash-joined path that
      reflects dynamic nesting ("pipeline/hc:bspg"). A span opened with
      its stage's {!Budget.t} also records the steps that budget
      consumed inside the span, so per-stage step accounting and timing
      come from a single source of truth. Wall-clock time is read
      through {!Clock}, so tests can make span durations exact.

    Instrumented modules record through the ambient entry points
    ({!counter}, {!gauge}, {!histogram}, {!with_span}, ...), which are
    no-ops unless a registry is {!install}ed — default runs pay one
    pointer load per stage and nothing per inner-loop iteration. *)

type t

type span_stats = { path : string; calls : int; seconds : float; steps_used : int }

type histogram_stats = {
  count : int;
  sum : float;
  min_value : float;
  max_value : float;
  p50 : float;  (** interpolated within the crossing bucket, clamped to [min,max] *)
  p90 : float;
  p99 : float;
}

val create : ?series_cap:int -> unit -> t
(** [series_cap] bounds every series in this registry (default 10_000,
    clamped to >= 1). *)

(** {1 Recording against an explicit registry} *)

val add : t -> string -> int -> unit
(** [add t name by] increments counter [name]. *)

val set : t -> string -> float -> unit
(** Set gauge [name]. *)

val set_max : t -> string -> float -> unit
(** Set gauge [name] to the maximum of its current value and [v]. *)

val point : t -> string -> label:string -> float -> unit
(** Append a labelled point to series [name]. Once the series holds
    {!series_cap} points, each append evicts the oldest point and
    increments the series' drop counter (see {!series_dropped}). *)

val observe : t -> string -> float -> unit
(** Record one value into histogram [name]. Non-positive values land in
    the lowest bucket, oversized ones in the highest; [min]/[max]/[sum]
    always reflect the exact values observed. *)

val span : ?budget:Budget.t -> t -> string -> (unit -> 'a) -> 'a
(** [span t name f] runs [f], accumulating wall-clock time (via
    {!Clock.now}; and, when [budget] is given, the budget steps
    consumed by [f]) under the path formed by the enclosing spans and
    [name]. Exceptions propagate; the span still closes. *)

val on_span_close : t -> (path:string -> seconds:float -> steps:int -> unit) -> unit
(** Invoke a callback every time a span closes — the [--trace] CLI flag
    uses this for live per-stage summary lines. *)

val set_series_cap : t -> int -> unit
(** Change the per-series retention bound (clamped to >= 1). Applies to
    subsequent appends; series already longer than the new cap shrink
    as new points arrive. *)

val series_cap : t -> int

(** {1 The ambient registry}

    The ambient handle is {b domain-local} ([Domain.DLS]): [install]
    and [with_registry] affect only the calling domain, so parallel
    tasks run by {!Par} each record into their own child registry
    without racing. A registry itself is single-writer — never record
    into the same registry from two domains concurrently; use
    {!create_child} + {!merge_into} instead. *)

val install : t -> unit
val clear : unit -> unit
val current : unit -> t option

val with_registry : t -> (unit -> 'a) -> 'a
(** Install [t] for the duration of the callback, restoring the previous
    ambient registry of the calling domain afterwards
    (exception-safe). *)

(** {1 Parallel fan-out: child registries}

    The deterministic-merge contract (DESIGN.md Section 5e): a parent
    registry plus children merged in submission order yields the same
    counters, gauges, series, histograms and span stats as running the
    same tasks sequentially against the parent — modulo wall-clock
    seconds, which are genuinely measured. In particular the exact
    Σ-steps invariant (sum of span [steps_used] equals the engine
    evaluation counters) survives the merge, because both sides are
    additive; histogram buckets merge by element-wise addition, so
    their contents are bit-identical to sequential recording. *)

val create_child : t -> t
(** A fresh registry for one parallel task. It inherits the parent's
    currently-open span context, so spans recorded inside the task keep
    the slash-joined paths they would have had sequentially, and the
    parent's {!series_cap}; it does {i not} inherit the [on_span_close]
    callback (live trace lines cover only the submitting domain). *)

val merge_into : into:t -> t -> unit
(** [merge_into ~into child] folds a child registry into [into]:
    counters, histograms and span calls/seconds/steps add, [set] gauges
    overwrite (last merged child wins), [set_max] gauges keep the
    maximum, series points append after [into]'s existing points
    (through the capped push, so the retention bound applies) and drop
    counters add. Iteration is over sorted keys, so merging the same
    children in the same order is bit-deterministic. *)

val counter : string -> int -> unit
val gauge : string -> float -> unit
val gauge_max : string -> float -> unit
val series_point : string -> label:string -> float -> unit

val histogram : string -> float -> unit
(** Ambient {!observe}; no-op without an installed registry. *)

val with_span : ?budget:Budget.t -> string -> (unit -> 'a) -> 'a
(** Like {!span} on the ambient registry; just runs the callback when no
    registry is installed. *)

(** {1 Reading and reporting} *)

val counter_value : t -> string -> int
(** 0 for unknown counters. *)

val gauge_value : t -> string -> float option
val series_values : t -> string -> (string * float) list

val series_dropped : t -> string -> int
(** How many oldest points the retention cap evicted from this series
    (0 for unknown series). *)

val histogram_stats : t -> string -> histogram_stats option
val histogram_quantile : t -> string -> float -> float option

val histogram_buckets : t -> string -> (float * int) list
(** Non-empty buckets as [(upper_bound, count)] pairs in increasing
    bound order; counts are per-bucket, not cumulative. *)

val histogram_names : t -> string list
(** Sorted. *)

val span_list : t -> span_stats list
(** Sorted by path. *)

val to_json : t -> Json.t
(** Snapshot — see DESIGN.md Section 5c for the shape. Histograms
    appear under ["histograms"] with count/sum/min/max, p50/p90/p99 and
    the non-empty buckets; per-series eviction counts under
    ["series_dropped"] (only series that actually dropped points). *)

val write_json_file : t -> string -> unit

val to_prometheus : t -> string
(** The snapshot in Prometheus text exposition format (0.0.4): counters
    as [<name>_total], gauges as-is, histograms as the cumulative
    [_bucket{le=...}]/[_sum]/[_count] triple (observed buckets plus the
    mandatory [+Inf]), spans as [bsp_span_seconds_total]/
    [bsp_span_calls_total] labelled by path, and series drop counts as
    [obs_series_dropped_points_total] labelled by series. Series points
    themselves are JSON-only. Dots in metric names become
    underscores. *)

val write_prometheus_file : t -> string -> unit
(** {!to_prometheus} through [Atomic_file] (temp + fsync + rename), so
    scrapers never see a partial snapshot. *)

val pp : Format.formatter -> t -> unit
(** Plain-text rendering of the snapshot. *)

val log_summary : t -> unit
(** Emit the snapshot as [Logs] app-level lines on the ["bsp.obs"]
    source (the caller is responsible for installing a Logs reporter). *)

val src : Logs.src
