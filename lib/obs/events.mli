(** Per-domain flight recorder (DESIGN.md Section 5i).

    A fixed-capacity ring buffer per domain holding timestamped
    begin/end/instant/sample events in three preallocated flat arrays.
    The record path allocates nothing, takes no lock and touches no
    shared cache line: one atomic load of the enable state, one
    [Domain.DLS] load, three array stores, one head bump. When a ring
    wraps, the oldest events are overwritten and counted as
    {!dropped} — recording never blocks.

    The recorder answers the question the abstract-cost schedule trace
    (PR 3) cannot: what did the {i solver} actually do on each domain,
    in wall-clock time — task runs split from queue waits, batch
    claims, GC pressure at batch boundaries. {!write_chrome_trace}
    exports one Perfetto track per domain.

    Typical flow:
    {v
    Obs.Events.enable ();
    Obs.Events.set_dump_on_exit "flight.json";   (* crash insurance *)
    ... run ...
    Obs.Events.write_chrome_trace "flight.json"
    v}

    Event kinds are small integers interned once at module-init time
    through {!register_kind}; timestamps come from {!Clock.now}. *)

type kind
(** An interned event-kind identifier. *)

val register_kind : string -> kind
(** Intern a kind by name (idempotent: the same name yields the same
    kind). Call once at module initialisation, not on hot paths. *)

val kind_name : kind -> string

(** {1 Control} *)

val enable : ?capacity:int -> unit -> unit
(** Start a fresh recording generation. [capacity] is the per-domain
    ring size in events (default 65536), rounded up to a power of two
    with a floor of 1024. Buffers from earlier generations are
    abandoned; every domain lazily registers a fresh ring on its first
    event. *)

val disable : unit -> unit
(** Stop recording and drop the buffers. *)

val enabled : unit -> bool

(** {1 Recording}

    All no-ops while the recorder is disabled. [arg] is a free-form
    integer attached to the event (task index, claim size, ...). *)

val begin_ : ?arg:int -> kind -> unit
val end_ : ?arg:int -> kind -> unit
val instant : ?arg:int -> kind -> unit

val sample : kind -> int -> unit
(** A counter sample ([value] over time) — exported as a Chrome
    counter track per domain, used for GC statistics deltas. *)

val span_at : ?arg:int -> kind -> start:float -> stop:float -> unit
(** Record an already-measured span: a begin at [start] and an end at
    [stop], both with [arg]. Lets callers that know a span's bounds
    after the fact (queue-wait measured at task start) backfill it with
    exact timestamps. *)

(** {1 Draining} *)

type phase = Begin | End | Instant | Sample

type event = {
  ev_domain : int;  (** ring registration order within the generation *)
  ev_ts : float;
  ev_kind : kind;
  ev_phase : phase;
  ev_arg : int;
}

val dump : unit -> event list
(** Every retained event, grouped by domain, oldest first within each
    domain; [[]] while disabled. *)

val recorded : unit -> int
(** Total events recorded in this generation, including overwritten
    ones. *)

val dropped : unit -> int
(** Events lost to ring wrap-around. *)

val write_chrome_trace : string -> unit
(** Export the retained events as a Chrome trace_event file (written
    via [Atomic_file]): one track per domain ([d0], [d1], ...),
    wall-clock microseconds since {!enable}; begin/end pairs become
    complete ("X") slices, instants "i" marks, samples "C" counter
    tracks. Spans still open (or whose end was lost to wrap-around)
    close at the track's last timestamp. Open in ui.perfetto.dev.
    @raise Invalid_argument when the recorder is not enabled. *)

val set_dump_on_exit : string -> unit
(** Write {!write_chrome_trace} to this path when the process exits —
    including on uncaught exceptions, which run [at_exit] — so crashed
    or interrupted runs still leave a loadable trace. The last call
    wins; errors during the dump are swallowed. *)

val clear_dump_on_exit : unit -> unit
