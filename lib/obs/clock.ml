(* The observability layer's face of the process-wide time source; the
   implementation lives in bsp_util (Time_source) so that Budget — one
   layer below obs — can share it. *)

include Time_source
