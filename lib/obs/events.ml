(* Per-domain flight recorder (DESIGN.md Section 5i).

   Shape: one fixed-capacity ring buffer per domain, three preallocated
   flat arrays (timestamp / packed kind+phase / integer argument). The
   record path is: one atomic load of the global state, one DLS load,
   three array stores, one atomic head bump — no allocation, no lock,
   no cross-domain traffic (each domain owns its ring; the head is an
   atomic only so that a crash-dump from another domain reads a
   coherent prefix). When the ring wraps, the oldest events are
   overwritten and counted as dropped — recording never blocks and
   never grows memory.

   Enabling installs a fresh generation; buffers from an earlier
   generation are abandoned (domains lazily re-register), so
   enable/disable cycles cannot mix epochs. *)

type kind = int

(* Phase tags packed into the low two bits of the code word. *)
let ph_begin = 0
let ph_end = 1
let ph_instant = 2
let ph_sample = 3

type phase = Begin | End | Instant | Sample

let phase_of_tag = function
  | 0 -> Begin
  | 1 -> End
  | 2 -> Instant
  | _ -> Sample

(* ------------------------------------------------------------------ *)
(* Kind registry: global, append-only, tiny. Registration happens at
   module-initialisation time (instrumented modules register their
   kinds once); the record path never touches it. *)

let kinds_m = Mutex.create ()
let kinds : string array Atomic.t = Atomic.make [||]

let register_kind name =
  Mutex.lock kinds_m;
  let arr = Atomic.get kinds in
  let n = Array.length arr in
  let rec find i = if i >= n then -1 else if arr.(i) = name then i else find (i + 1) in
  let id =
    let i = find 0 in
    if i >= 0 then i
    else begin
      Atomic.set kinds (Array.append arr [| name |]);
      n
    end
  in
  Mutex.unlock kinds_m;
  id

let kind_name k =
  let arr = Atomic.get kinds in
  if k >= 0 && k < Array.length arr then arr.(k) else Printf.sprintf "kind%d" k

(* ------------------------------------------------------------------ *)
(* Recorder state.                                                     *)

type buffer = {
  b_gen : int;
  b_index : int;  (* track number: registration order within the generation *)
  b_ts : float array;
  b_code : int array;  (* (kind lsl 2) lor phase *)
  b_arg : int array;
  b_head : int Atomic.t;  (* total events this domain ever recorded *)
}

type state = {
  st_gen : int;
  st_capacity : int;
  st_mask : int;
  st_t0 : float;
  st_m : Mutex.t;
  mutable st_buffers : buffer list;  (* newest registration first *)
}

let state : state option Atomic.t = Atomic.make None
let control_m = Mutex.create ()
let gen_counter = ref 0

let default_capacity = 65536

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1024

let enable ?(capacity = default_capacity) () =
  Mutex.lock control_m;
  incr gen_counter;
  let cap = round_pow2 (max 1 capacity) in
  Atomic.set state
    (Some
       {
         st_gen = !gen_counter;
         st_capacity = cap;
         st_mask = cap - 1;
         st_t0 = Clock.now ();
         st_m = Mutex.create ();
         st_buffers = [];
       });
  Mutex.unlock control_m

let disable () = Atomic.set state None
let enabled () = Atomic.get state <> None

let buf_key : buffer option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let register_buffer st =
  Mutex.lock st.st_m;
  let b =
    {
      b_gen = st.st_gen;
      b_index = List.length st.st_buffers;
      b_ts = Array.make st.st_capacity 0.0;
      b_code = Array.make st.st_capacity 0;
      b_arg = Array.make st.st_capacity 0;
      b_head = Atomic.make 0;
    }
  in
  st.st_buffers <- b :: st.st_buffers;
  Mutex.unlock st.st_m;
  Domain.DLS.set buf_key (Some b);
  b

let my_buffer st =
  match Domain.DLS.get buf_key with
  | Some b when b.b_gen = st.st_gen -> b
  | _ -> register_buffer st

let record_at st ts tag kind arg =
  let b = my_buffer st in
  let h = Atomic.get b.b_head in
  let i = h land st.st_mask in
  b.b_ts.(i) <- ts;
  b.b_code.(i) <- (kind lsl 2) lor tag;
  b.b_arg.(i) <- arg;
  Atomic.set b.b_head (h + 1)

let begin_ ?(arg = 0) k =
  match Atomic.get state with
  | None -> ()
  | Some st -> record_at st (Clock.now ()) ph_begin k arg

let end_ ?(arg = 0) k =
  match Atomic.get state with
  | None -> ()
  | Some st -> record_at st (Clock.now ()) ph_end k arg

let instant ?(arg = 0) k =
  match Atomic.get state with
  | None -> ()
  | Some st -> record_at st (Clock.now ()) ph_instant k arg

let sample k v =
  match Atomic.get state with
  | None -> ()
  | Some st -> record_at st (Clock.now ()) ph_sample k v

let span_at ?(arg = 0) k ~start ~stop =
  match Atomic.get state with
  | None -> ()
  | Some st ->
    record_at st start ph_begin k arg;
    record_at st stop ph_end k arg

(* ------------------------------------------------------------------ *)
(* Draining.                                                           *)

type event = { ev_domain : int; ev_ts : float; ev_kind : kind; ev_phase : phase; ev_arg : int }

let buffers st =
  Mutex.lock st.st_m;
  let bs = st.st_buffers in
  Mutex.unlock st.st_m;
  List.sort (fun a b -> compare a.b_index b.b_index) bs

(* Oldest retained event first. The head is read once per buffer, so a
   concurrent recorder costs at most a torn newest event, never a torn
   prefix. *)
let buffer_events st b =
  let h = Atomic.get b.b_head in
  let start = max 0 (h - st.st_capacity) in
  let acc = ref [] in
  for j = h - 1 downto start do
    let i = j land st.st_mask in
    let code = b.b_code.(i) in
    acc :=
      {
        ev_domain = b.b_index;
        ev_ts = b.b_ts.(i);
        ev_kind = code lsr 2;
        ev_phase = phase_of_tag (code land 3);
        ev_arg = b.b_arg.(i);
      }
      :: !acc
  done;
  !acc

let dump () =
  match Atomic.get state with
  | None -> []
  | Some st -> List.concat_map (buffer_events st) (buffers st)

let recorded () =
  match Atomic.get state with
  | None -> 0
  | Some st -> List.fold_left (fun acc b -> acc + Atomic.get b.b_head) 0 (buffers st)

let dropped () =
  match Atomic.get state with
  | None -> 0
  | Some st ->
    List.fold_left
      (fun acc b -> acc + max 0 (Atomic.get b.b_head - st.st_capacity))
      0 (buffers st)

(* ------------------------------------------------------------------ *)
(* Chrome trace export: one track (tid) per domain, wall-clock
   microseconds relative to [enable]. Begin/End pairs collapse to "X"
   complete events (matched per domain with a stack, so nested spans of
   different kinds work); instants stay "i", samples become "C" counter
   tracks (suffixed with the domain so Perfetto draws one counter lane
   per domain). Begins whose end was lost to ring wrap-around are
   closed at the buffer's last timestamp. *)

let write_chrome_trace path =
  match Atomic.get state with
  | None -> invalid_arg "Obs.Events.write_chrome_trace: recorder not enabled"
  | Some st ->
    let t0 = st.st_t0 in
    let us t = (t -. t0) *. 1e6 in
    let events = ref [] in
    let emit e = events := e :: !events in
    let bs = buffers st in
    emit
      (Json.Obj
         [
           ("name", Json.String "process_name");
           ("ph", Json.String "M");
           ("pid", Json.Int 0);
           ("tid", Json.Int 0);
           ("args", Json.Obj [ ("name", Json.String "bsp flight recorder") ]);
         ]);
    List.iter
      (fun b ->
        emit
          (Json.Obj
             [
               ("name", Json.String "thread_name");
               ("ph", Json.String "M");
               ("pid", Json.Int 0);
               ("tid", Json.Int b.b_index);
               ( "args",
                 Json.Obj
                   [ ("name", Json.String (Printf.sprintf "d%d" b.b_index)) ] );
             ]))
      bs;
    List.iter
      (fun b ->
        let evs = buffer_events st b in
        let last_ts =
          List.fold_left (fun acc (e : event) -> Float.max acc e.ev_ts) t0 evs
        in
        let x ~name ~ts ~dur ~arg =
          emit
            (Json.Obj
               [
                 ("name", Json.String name);
                 ("cat", Json.String "flight");
                 ("ph", Json.String "X");
                 ("ts", Json.Float (us ts));
                 ("dur", Json.Float (Float.max 0.0 ((dur) *. 1e6)));
                 ("pid", Json.Int 0);
                 ("tid", Json.Int b.b_index);
                 ("args", Json.Obj [ ("arg", Json.Int arg) ]);
               ])
        in
        let stack = ref [] in
        List.iter
          (fun (e : event) ->
            match e.ev_phase with
            | Begin -> stack := e :: !stack
            | End ->
              (* Pop to the innermost open begin of this kind;
                 mismatched intermediates (their end was dropped) close
                 here too, at the same timestamp. *)
              let rec unwind = function
                | [] -> []
                | (b0 : event) :: rest ->
                  if b0.ev_kind = e.ev_kind then begin
                    x ~name:(kind_name b0.ev_kind) ~ts:b0.ev_ts
                      ~dur:(e.ev_ts -. b0.ev_ts) ~arg:b0.ev_arg;
                    rest
                  end
                  else begin
                    x ~name:(kind_name b0.ev_kind) ~ts:b0.ev_ts
                      ~dur:(e.ev_ts -. b0.ev_ts) ~arg:b0.ev_arg;
                    unwind rest
                  end
              in
              stack := unwind !stack
            | Instant ->
              emit
                (Json.Obj
                   [
                     ("name", Json.String (kind_name e.ev_kind));
                     ("cat", Json.String "flight");
                     ("ph", Json.String "i");
                     ("s", Json.String "t");
                     ("ts", Json.Float (us e.ev_ts));
                     ("pid", Json.Int 0);
                     ("tid", Json.Int b.b_index);
                     ("args", Json.Obj [ ("arg", Json.Int e.ev_arg) ]);
                   ])
            | Sample ->
              emit
                (Json.Obj
                   [
                     ( "name",
                       Json.String
                         (Printf.sprintf "%s (d%d)" (kind_name e.ev_kind) b.b_index)
                     );
                     ("cat", Json.String "flight");
                     ("ph", Json.String "C");
                     ("ts", Json.Float (us e.ev_ts));
                     ("pid", Json.Int 0);
                     ("tid", Json.Int b.b_index);
                     ("args", Json.Obj [ ("value", Json.Int e.ev_arg) ]);
                   ]))
          evs;
        (* Spans still open when the recorder was drained (e.g. a crash
           dump mid-task) close at the buffer's last timestamp. *)
        List.iter
          (fun (b0 : event) ->
            x ~name:(kind_name b0.ev_kind) ~ts:b0.ev_ts
              ~dur:(last_ts -. b0.ev_ts) ~arg:b0.ev_arg)
          !stack)
      bs;
    let json =
      Json.Obj
        [
          ("traceEvents", Json.List (List.rev !events));
          ("displayTimeUnit", Json.String "ms");
        ]
    in
    Atomic_file.write_string path (Json.to_string json ^ "\n")

(* ------------------------------------------------------------------ *)
(* Crash dump: whatever the rings hold is flushed on process exit —
   normal termination and uncaught exceptions both run at_exit — so a
   wedged or crashing run still leaves a loadable trace behind. *)

let dump_path : string option Atomic.t = Atomic.make None
let exit_hook_registered = ref false

let set_dump_on_exit path =
  Mutex.lock control_m;
  Atomic.set dump_path (Some path);
  if not !exit_hook_registered then begin
    exit_hook_registered := true;
    at_exit (fun () ->
        match (Atomic.get dump_path, Atomic.get state) with
        | Some path, Some _ -> ( try write_chrome_trace path with _ -> ())
        | _ -> ())
  end;
  Mutex.unlock control_m

let clear_dump_on_exit () = Atomic.set dump_path None
