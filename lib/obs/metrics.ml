let src = Logs.Src.create "bsp.obs" ~doc:"Scheduler observability layer"

module Log = (val Logs.src_log src : Logs.LOG)

type span = {
  path : string;
  mutable calls : int;
  mutable seconds : float;
  mutable steps : int;
}

type span_stats = { path : string; calls : int; seconds : float; steps_used : int }

(* A gauge remembers how it was last written so that a deterministic
   child-registry merge can replay the right combination rule: plain
   [set] gauges are last-writer-wins (in submission order), [set_max]
   gauges keep the running maximum across children. *)
type gauge = { mutable g_value : float; mutable g_is_max : bool }

(* A series is a bounded two-stack queue: appends push onto [s_back],
   evictions pop from [s_front] (reversing the back on demand), so both
   ends are amortised O(1) and a long-running daemon's per-request
   series cannot grow without limit. Evictions are counted — the drop
   counter is part of the snapshot, never silent. *)
type series = {
  mutable s_front : (string * float) list;  (* oldest first *)
  mutable s_back : (string * float) list;  (* newest first *)
  mutable s_len : int;
  mutable s_dropped : int;
}

(* Log-bucketed histogram: 64 base-2 buckets spanning ~1 ns to ~270
   years when values are seconds. Fixed flat layout so recording is a
   few array writes and the child-registry merge is element-wise
   addition — the bucket contents are bit-deterministic regardless of
   recording order, which is what makes the merge contract exact. *)
let num_buckets = 64

(* Bucket [i] holds values in (2^(min_exp+i), 2^(min_exp+i+1)]-ish:
   [Float.frexp v] gives the exponent [e] with 2^(e-1) <= v < 2^e and
   the index clamps [e - 1 - min_exp] into range, so bucket 0 also
   absorbs zero/negative/denormal values and the last bucket absorbs
   everything huge. *)
let min_exp = -30

let bucket_index v =
  if not (Float.is_finite v) || v <= 0.0 then
    if Float.is_finite v || v < 0.0 then 0 else num_buckets - 1
  else
    let _, e = Float.frexp v in
    let i = e - 1 - min_exp in
    if i < 0 then 0 else if i >= num_buckets then num_buckets - 1 else i

let bucket_upper i = Float.ldexp 1.0 (min_exp + i + 1)
let bucket_lower i = if i = 0 then 0.0 else Float.ldexp 1.0 (min_exp + i)

type histogram = {
  h_counts : int array;
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type histogram_stats = {
  count : int;
  sum : float;
  min_value : float;
  max_value : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let default_series_cap = 10_000

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  series : (string, series) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  span_table : (string, span) Hashtbl.t;
  mutable series_cap : int;
  mutable stack : string list;  (* enclosing span names, innermost first *)
  mutable on_span_close : (path:string -> seconds:float -> steps:int -> unit) option;
}

let create ?(series_cap = default_series_cap) () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    series = Hashtbl.create 8;
    histograms = Hashtbl.create 8;
    span_table = Hashtbl.create 16;
    series_cap = max 1 series_cap;
    stack = [];
    on_span_close = None;
  }

let on_span_close t f = t.on_span_close <- Some f

let set_series_cap t n = t.series_cap <- max 1 n
let series_cap t = t.series_cap

(* ------------------------------------------------------------------ *)
(* Recording against an explicit registry.                             *)

let add t name by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let set t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some g ->
    g.g_value <- v;
    g.g_is_max <- false
  | None -> Hashtbl.add t.gauges name { g_value = v; g_is_max = false }

let set_max t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some g ->
    if v > g.g_value then g.g_value <- v;
    g.g_is_max <- true
  | None -> Hashtbl.add t.gauges name { g_value = v; g_is_max = true }

let series_slot t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s
  | None ->
    let s = { s_front = []; s_back = []; s_len = 0; s_dropped = 0 } in
    Hashtbl.add t.series name s;
    s

let push_point t s pt =
  s.s_back <- pt :: s.s_back;
  if s.s_len >= t.series_cap then begin
    if s.s_front = [] then begin
      s.s_front <- List.rev s.s_back;
      s.s_back <- []
    end;
    (match s.s_front with _ :: tl -> s.s_front <- tl | [] -> ());
    s.s_dropped <- s.s_dropped + 1
  end
  else s.s_len <- s.s_len + 1

let point t name ~label v = push_point t (series_slot t name) (label, v)

let histogram_slot t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_counts = Array.make num_buckets 0;
        h_count = 0;
        h_sum = 0.0;
        h_min = infinity;
        h_max = neg_infinity;
      }
    in
    Hashtbl.add t.histograms name h;
    h

let observe t name v =
  let h = histogram_slot t name in
  let i = bucket_index v in
  h.h_counts.(i) <- h.h_counts.(i) + 1;
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v

let span_record t path =
  match Hashtbl.find_opt t.span_table path with
  | Some s -> s
  | None ->
    let s = { path; calls = 0; seconds = 0.0; steps = 0 } in
    Hashtbl.add t.span_table path s;
    s

let span ?budget t name f =
  let path = String.concat "/" (List.rev (name :: t.stack)) in
  t.stack <- name :: t.stack;
  let t0 = Clock.now () in
  let steps0 = match budget with None -> 0 | Some b -> Budget.used_steps b in
  Fun.protect
    ~finally:(fun () ->
      let dt = Clock.now () -. t0 in
      let dsteps =
        match budget with None -> 0 | Some b -> Budget.used_steps b - steps0
      in
      (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
      let s = span_record t path in
      s.calls <- s.calls + 1;
      s.seconds <- s.seconds +. dt;
      s.steps <- s.steps + dsteps;
      match t.on_span_close with
      | Some g -> g ~path ~seconds:dt ~steps:dsteps
      | None -> ())
    f

(* ------------------------------------------------------------------ *)
(* The ambient registry. Instrumented modules record through these
   no-op-when-absent entry points, so uninstrumented runs (the default,
   including every benchmark loop) pay one domain-local load per stage
   and nothing per inner-loop iteration.

   The handle is domain-local (Domain.DLS), not a bare global: a
   registry is a single-writer structure, and under `Par` fan-out each
   task runs with its own child registry installed in its executing
   domain, merged back deterministically by the submitter. A bare
   global ref would race (and interleave span stacks) the moment two
   domains record concurrently.                                        *)

let ambient_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install r = Domain.DLS.set ambient_key (Some r)
let clear () = Domain.DLS.set ambient_key None
let current () = Domain.DLS.get ambient_key

let with_registry r f =
  let prev = current () in
  install r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let counter name by = match current () with None -> () | Some t -> add t name by
let gauge name v = match current () with None -> () | Some t -> set t name v
let gauge_max name v = match current () with None -> () | Some t -> set_max t name v

let series_point name ~label v =
  match current () with None -> () | Some t -> point t name ~label v

let histogram name v = match current () with None -> () | Some t -> observe t name v

let with_span ?budget name f =
  match current () with None -> f () | Some t -> span ?budget t name f

(* ------------------------------------------------------------------ *)
(* Parallel fan-out support: per-task child registries and their
   deterministic merge (DESIGN.md Section 5e).                         *)

(* The child inherits the parent's open-span context so that spans
   recorded inside a parallel task keep the same slash-joined paths
   they would have had sequentially ("pipeline/hc:bspg", not
   "hc:bspg"). It deliberately does not inherit [on_span_close]: live
   trace callbacks would otherwise fire concurrently from worker
   domains; merged spans still reach the final summary. *)
let create_child parent =
  let t = create ~series_cap:parent.series_cap () in
  t.stack <- parent.stack;
  t

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

(* Deterministic: iteration is over sorted keys, and callers merge
   children in submission order, so any jobs count yields the same
   final registry contents (modulo wall-clock seconds, which are
   genuinely measured). Counters, histogram buckets and span stats are
   additive — the exact Σ-steps invariant (span steps_used vs engine
   evaluation counters) survives the merge because both sides add up. *)
let merge_into ~into child =
  List.iter
    (fun k -> add into k !(Hashtbl.find child.counters k))
    (sorted_keys child.counters);
  List.iter
    (fun k ->
      let g = Hashtbl.find child.gauges k in
      if g.g_is_max then set_max into k g.g_value else set into k g.g_value)
    (sorted_keys child.gauges);
  List.iter
    (fun k ->
      (* Child points append after the parent's existing points in
         reading order, through the same capped push so the bound and
         drop accounting apply to merged points too. *)
      let cs = Hashtbl.find child.series k in
      let s = series_slot into k in
      List.iter (push_point into s) cs.s_front;
      List.iter (push_point into s) (List.rev cs.s_back);
      s.s_dropped <- s.s_dropped + cs.s_dropped)
    (sorted_keys child.series);
  List.iter
    (fun k ->
      let ch = Hashtbl.find child.histograms k in
      let h = histogram_slot into k in
      Array.iteri (fun i c -> h.h_counts.(i) <- h.h_counts.(i) + c) ch.h_counts;
      h.h_count <- h.h_count + ch.h_count;
      h.h_sum <- h.h_sum +. ch.h_sum;
      if ch.h_min < h.h_min then h.h_min <- ch.h_min;
      if ch.h_max > h.h_max then h.h_max <- ch.h_max)
    (sorted_keys child.histograms);
  List.iter
    (fun k ->
      let cs = Hashtbl.find child.span_table k in
      let s = span_record into k in
      s.calls <- s.calls + cs.calls;
      s.seconds <- s.seconds +. cs.seconds;
      s.steps <- s.steps + cs.steps)
    (sorted_keys child.span_table)

(* ------------------------------------------------------------------ *)
(* Reading and reporting.                                              *)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> Some g.g_value | None -> None

let series_values t name =
  match Hashtbl.find_opt t.series name with
  | Some s -> s.s_front @ List.rev s.s_back
  | None -> []

let series_dropped t name =
  match Hashtbl.find_opt t.series name with Some s -> s.s_dropped | None -> 0

(* Quantile by cumulative walk over the buckets, linear interpolation
   inside the bucket that crosses the rank, clamped to the observed
   [min, max] so single-point histograms report the point itself. *)
let histogram_quantile_of h q =
  if h.h_count = 0 then 0.0
  else begin
    let rank = q *. float_of_int h.h_count in
    let rec go i cum =
      if i >= num_buckets then h.h_max
      else
        let c = h.h_counts.(i) in
        if c > 0 && float_of_int (cum + c) >= rank then begin
          let lower = bucket_lower i and upper = bucket_upper i in
          let frac = (rank -. float_of_int cum) /. float_of_int c in
          let v = lower +. ((upper -. lower) *. frac) in
          Float.min h.h_max (Float.max h.h_min v)
        end
        else go (i + 1) (cum + c)
    in
    go 0 0
  end

let histogram_quantile t name q =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h -> Some (histogram_quantile_of h q)

let histogram_stats t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> None
  | Some h ->
    Some
      {
        count = h.h_count;
        sum = h.h_sum;
        min_value = h.h_min;
        max_value = h.h_max;
        p50 = histogram_quantile_of h 0.5;
        p90 = histogram_quantile_of h 0.9;
        p99 = histogram_quantile_of h 0.99;
      }

let histogram_buckets t name =
  match Hashtbl.find_opt t.histograms name with
  | None -> []
  | Some h ->
    let acc = ref [] in
    for i = num_buckets - 1 downto 0 do
      if h.h_counts.(i) > 0 then acc := (bucket_upper i, h.h_counts.(i)) :: !acc
    done;
    !acc

let histogram_names t = sorted_keys t.histograms

let span_list t =
  List.map
    (fun k ->
      let s = Hashtbl.find t.span_table k in
      { path = s.path; calls = s.calls; seconds = s.seconds; steps_used = s.steps })
    (sorted_keys t.span_table)

let histogram_json t k =
  let h = Hashtbl.find t.histograms k in
  let buckets =
    List.map
      (fun (le, c) -> Json.Obj [ ("le", Json.Float le); ("count", Json.Int c) ])
      (histogram_buckets t k)
  in
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("sum", Json.Float h.h_sum);
      ("min", Json.Float h.h_min);
      ("max", Json.Float h.h_max);
      ("p50", Json.Float (histogram_quantile_of h 0.5));
      ("p90", Json.Float (histogram_quantile_of h 0.9));
      ("p99", Json.Float (histogram_quantile_of h 0.99));
      ("buckets", Json.List buckets);
    ]

let to_json t =
  let counters =
    List.map
      (fun k -> (k, Json.Int !(Hashtbl.find t.counters k)))
      (sorted_keys t.counters)
  in
  let gauges =
    List.map
      (fun k -> (k, Json.Float (Hashtbl.find t.gauges k).g_value))
      (sorted_keys t.gauges)
  in
  let series =
    List.map
      (fun k ->
        ( k,
          Json.List
            (List.map
               (fun (label, v) ->
                 Json.Obj [ ("label", Json.String label); ("value", Json.Float v) ])
               (series_values t k)) ))
      (sorted_keys t.series)
  in
  let series_dropped =
    List.filter_map
      (fun k ->
        let s = Hashtbl.find t.series k in
        if s.s_dropped > 0 then Some (k, Json.Int s.s_dropped) else None)
      (sorted_keys t.series)
  in
  let histograms =
    List.map (fun k -> (k, histogram_json t k)) (sorted_keys t.histograms)
  in
  let spans =
    List.map
      (fun (s : span_stats) ->
        Json.Obj
          [
            ("path", Json.String s.path);
            ("calls", Json.Int s.calls);
            ("seconds", Json.Float s.seconds);
            ("steps_used", Json.Int s.steps_used);
          ])
      (span_list t)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("series", Json.Obj series);
      ("series_dropped", Json.Obj series_dropped);
      ("histograms", Json.Obj histograms);
      ("spans", Json.List spans);
    ]

let write_json_file t file =
  Atomic_file.write file (fun oc ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition (version 0.0.4).                         *)

(* Metric names admit [a-zA-Z0-9_:] only; everything else (the dots in
   "server.requests") becomes an underscore. *)
let prom_name name =
  let b = Bytes.of_string name in
  Bytes.iteri
    (fun i c ->
      let ok =
        (c >= 'a' && c <= 'z')
        || (c >= 'A' && c <= 'Z')
        || (c >= '0' && c <= '9' && i > 0)
        || c = '_' || c = ':'
      in
      if not ok then Bytes.set b i '_')
    b;
  Bytes.to_string b

let prom_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let prom_float v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

(* Counters are suffixed [_total] per Prometheus naming convention;
   histograms expose the cumulative [_bucket]/[_sum]/[_count] triple
   (only buckets that own at least one observation, plus the mandatory
   [+Inf] bound — cumulative counts stay monotone over any bucket
   subset); spans flatten to two counters labelled by path. Series are
   JSON-only (a labelled point stream has no exposition equivalent),
   but their drop counters are exported so bounded retention is
   observable from the scrape. *)
let to_prometheus t =
  let buf = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s; Buffer.add_char buf '\n') fmt in
  List.iter
    (fun k ->
      let n = prom_name k ^ "_total" in
      line "# TYPE %s counter" n;
      line "%s %d" n !(Hashtbl.find t.counters k))
    (sorted_keys t.counters);
  List.iter
    (fun k ->
      let n = prom_name k in
      line "# TYPE %s gauge" n;
      line "%s %s" n (prom_float (Hashtbl.find t.gauges k).g_value))
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      let h = Hashtbl.find t.histograms k in
      let n = prom_name k in
      line "# TYPE %s histogram" n;
      let cum = ref 0 in
      List.iter
        (fun (le, c) ->
          cum := !cum + c;
          line "%s_bucket{le=\"%s\"} %d" n (prom_float le) !cum)
        (histogram_buckets t k);
      line "%s_bucket{le=\"+Inf\"} %d" n h.h_count;
      line "%s_sum %s" n (prom_float h.h_sum);
      line "%s_count %d" n h.h_count)
    (sorted_keys t.histograms);
  let dropped =
    List.filter
      (fun k -> (Hashtbl.find t.series k).s_dropped > 0)
      (sorted_keys t.series)
  in
  if dropped <> [] then begin
    line "# TYPE obs_series_dropped_points_total counter";
    List.iter
      (fun k ->
        line "obs_series_dropped_points_total{series=\"%s\"} %d"
          (prom_label_value k)
          (Hashtbl.find t.series k).s_dropped)
      dropped
  end;
  let spans = span_list t in
  if spans <> [] then begin
    line "# TYPE bsp_span_seconds_total counter";
    List.iter
      (fun (s : span_stats) ->
        line "bsp_span_seconds_total{path=\"%s\"} %s" (prom_label_value s.path)
          (prom_float s.seconds))
      spans;
    line "# TYPE bsp_span_calls_total counter";
    List.iter
      (fun (s : span_stats) ->
        line "bsp_span_calls_total{path=\"%s\"} %d" (prom_label_value s.path) s.calls)
      spans
  end;
  Buffer.contents buf

let write_prometheus_file t file = Atomic_file.write_string file (to_prometheus t)

let pp ppf t =
  let open Format in
  List.iter
    (fun k -> fprintf ppf "counter %-40s %d@." k (counter_value t k))
    (sorted_keys t.counters);
  List.iter
    (fun k -> fprintf ppf "gauge   %-40s %g@." k (Hashtbl.find t.gauges k).g_value)
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      fprintf ppf "series  %-40s %s@." k
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%s=%g" l v) (series_values t k)));
      let d = series_dropped t k in
      if d > 0 then fprintf ppf "series  %-40s (%d oldest points dropped)@." k d)
    (sorted_keys t.series);
  List.iter
    (fun k ->
      match histogram_stats t k with
      | None -> ()
      | Some s ->
        fprintf ppf "histo   %-40s n=%d sum=%g p50=%g p90=%g p99=%g@." k s.count
          s.sum s.p50 s.p90 s.p99)
    (histogram_names t);
  List.iter
    (fun (s : span_stats) ->
      fprintf ppf "span    %-40s calls=%d %.4fs steps=%d@." s.path s.calls s.seconds
        s.steps_used)
    (span_list t)

let log_summary t =
  List.iter
    (fun k -> Log.app (fun m -> m "counter %-40s %d" k (counter_value t k)))
    (sorted_keys t.counters);
  List.iter
    (fun k -> Log.app (fun m -> m "gauge   %-40s %g" k (Hashtbl.find t.gauges k).g_value))
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      match histogram_stats t k with
      | None -> ()
      | Some s ->
        Log.app (fun m ->
            m "histo   %-40s n=%d sum=%g p50=%g p90=%g p99=%g" k s.count s.sum s.p50
              s.p90 s.p99))
    (histogram_names t);
  List.iter
    (fun (s : span_stats) ->
      Log.app (fun m ->
          m "span    %-40s calls=%d %.4fs steps=%d" s.path s.calls s.seconds
            s.steps_used))
    (span_list t)
