let src = Logs.Src.create "bsp.obs" ~doc:"Scheduler observability layer"

module Log = (val Logs.src_log src : Logs.LOG)

type span = {
  path : string;
  mutable calls : int;
  mutable seconds : float;
  mutable steps : int;
}

type span_stats = { path : string; calls : int; seconds : float; steps_used : int }

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  series : (string, (string * float) list ref) Hashtbl.t;  (* points reversed *)
  span_table : (string, span) Hashtbl.t;
  mutable stack : string list;  (* enclosing span names, innermost first *)
  mutable on_span_close : (path:string -> seconds:float -> steps:int -> unit) option;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    series = Hashtbl.create 8;
    span_table = Hashtbl.create 16;
    stack = [];
    on_span_close = None;
  }

let on_span_close t f = t.on_span_close <- Some f

(* ------------------------------------------------------------------ *)
(* Recording against an explicit registry.                             *)

let add t name by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let set t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let set_max t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> if v > !r then r := v
  | None -> Hashtbl.add t.gauges name (ref v)

let point t name ~label v =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := (label, v) :: !r
  | None -> Hashtbl.add t.series name (ref [ (label, v) ])

let span_record t path =
  match Hashtbl.find_opt t.span_table path with
  | Some s -> s
  | None ->
    let s = { path; calls = 0; seconds = 0.0; steps = 0 } in
    Hashtbl.add t.span_table path s;
    s

let span ?budget t name f =
  let path = String.concat "/" (List.rev (name :: t.stack)) in
  t.stack <- name :: t.stack;
  let t0 = Unix.gettimeofday () in
  let steps0 = match budget with None -> 0 | Some b -> Budget.used_steps b in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      let dsteps =
        match budget with None -> 0 | Some b -> Budget.used_steps b - steps0
      in
      (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
      let s = span_record t path in
      s.calls <- s.calls + 1;
      s.seconds <- s.seconds +. dt;
      s.steps <- s.steps + dsteps;
      match t.on_span_close with
      | Some g -> g ~path ~seconds:dt ~steps:dsteps
      | None -> ())
    f

(* ------------------------------------------------------------------ *)
(* The ambient registry. Instrumented modules record through these
   no-op-when-absent entry points, so uninstrumented runs (the default,
   including every benchmark loop) pay one pointer load per stage and
   nothing per inner-loop iteration.                                   *)

let ambient : t option ref = ref None

let install r = ambient := Some r
let clear () = ambient := None
let current () = !ambient

let with_registry r f =
  let prev = !ambient in
  ambient := Some r;
  Fun.protect ~finally:(fun () -> ambient := prev) f

let counter name by = match !ambient with None -> () | Some t -> add t name by
let gauge name v = match !ambient with None -> () | Some t -> set t name v
let gauge_max name v = match !ambient with None -> () | Some t -> set_max t name v

let series_point name ~label v =
  match !ambient with None -> () | Some t -> point t name ~label v

let with_span ?budget name f =
  match !ambient with None -> f () | Some t -> span ?budget t name f

(* ------------------------------------------------------------------ *)
(* Reading and reporting.                                              *)

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some r -> Some !r | None -> None

let series_values t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let span_list t =
  List.map
    (fun k ->
      let s = Hashtbl.find t.span_table k in
      { path = s.path; calls = s.calls; seconds = s.seconds; steps_used = s.steps })
    (sorted_keys t.span_table)

let to_json t =
  let counters =
    List.map
      (fun k -> (k, Json.Int !(Hashtbl.find t.counters k)))
      (sorted_keys t.counters)
  in
  let gauges =
    List.map
      (fun k -> (k, Json.Float !(Hashtbl.find t.gauges k)))
      (sorted_keys t.gauges)
  in
  let series =
    List.map
      (fun k ->
        ( k,
          Json.List
            (List.map
               (fun (label, v) ->
                 Json.Obj [ ("label", Json.String label); ("value", Json.Float v) ])
               (List.rev !(Hashtbl.find t.series k))) ))
      (sorted_keys t.series)
  in
  let spans =
    List.map
      (fun (s : span_stats) ->
        Json.Obj
          [
            ("path", Json.String s.path);
            ("calls", Json.Int s.calls);
            ("seconds", Json.Float s.seconds);
            ("steps_used", Json.Int s.steps_used);
          ])
      (span_list t)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("series", Json.Obj series);
      ("spans", Json.List spans);
    ]

let write_json_file t file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let pp ppf t =
  let open Format in
  List.iter
    (fun k -> fprintf ppf "counter %-40s %d@." k (counter_value t k))
    (sorted_keys t.counters);
  List.iter
    (fun k -> fprintf ppf "gauge   %-40s %g@." k !(Hashtbl.find t.gauges k))
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      fprintf ppf "series  %-40s %s@." k
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%s=%g" l v) (series_values t k))))
    (sorted_keys t.series);
  List.iter
    (fun (s : span_stats) ->
      fprintf ppf "span    %-40s calls=%d %.4fs steps=%d@." s.path s.calls s.seconds
        s.steps_used)
    (span_list t)

let log_summary t =
  List.iter
    (fun k -> Log.app (fun m -> m "counter %-40s %d" k (counter_value t k)))
    (sorted_keys t.counters);
  List.iter
    (fun k -> Log.app (fun m -> m "gauge   %-40s %g" k !(Hashtbl.find t.gauges k)))
    (sorted_keys t.gauges);
  List.iter
    (fun (s : span_stats) ->
      Log.app (fun m ->
          m "span    %-40s calls=%d %.4fs steps=%d" s.path s.calls s.seconds
            s.steps_used))
    (span_list t)
