let src = Logs.Src.create "bsp.obs" ~doc:"Scheduler observability layer"

module Log = (val Logs.src_log src : Logs.LOG)

type span = {
  path : string;
  mutable calls : int;
  mutable seconds : float;
  mutable steps : int;
}

type span_stats = { path : string; calls : int; seconds : float; steps_used : int }

(* A gauge remembers how it was last written so that a deterministic
   child-registry merge can replay the right combination rule: plain
   [set] gauges are last-writer-wins (in submission order), [set_max]
   gauges keep the running maximum across children. *)
type gauge = { mutable g_value : float; mutable g_is_max : bool }

type t = {
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  series : (string, (string * float) list ref) Hashtbl.t;  (* points reversed *)
  span_table : (string, span) Hashtbl.t;
  mutable stack : string list;  (* enclosing span names, innermost first *)
  mutable on_span_close : (path:string -> seconds:float -> steps:int -> unit) option;
}

let create () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 16;
    series = Hashtbl.create 8;
    span_table = Hashtbl.create 16;
    stack = [];
    on_span_close = None;
  }

let on_span_close t f = t.on_span_close <- Some f

(* ------------------------------------------------------------------ *)
(* Recording against an explicit registry.                             *)

let add t name by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.add t.counters name (ref by)

let set t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some g ->
    g.g_value <- v;
    g.g_is_max <- false
  | None -> Hashtbl.add t.gauges name { g_value = v; g_is_max = false }

let set_max t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some g ->
    if v > g.g_value then g.g_value <- v;
    g.g_is_max <- true
  | None -> Hashtbl.add t.gauges name { g_value = v; g_is_max = true }

let point t name ~label v =
  match Hashtbl.find_opt t.series name with
  | Some r -> r := (label, v) :: !r
  | None -> Hashtbl.add t.series name (ref [ (label, v) ])

let span_record t path =
  match Hashtbl.find_opt t.span_table path with
  | Some s -> s
  | None ->
    let s = { path; calls = 0; seconds = 0.0; steps = 0 } in
    Hashtbl.add t.span_table path s;
    s

let span ?budget t name f =
  let path = String.concat "/" (List.rev (name :: t.stack)) in
  t.stack <- name :: t.stack;
  let t0 = Unix.gettimeofday () in
  let steps0 = match budget with None -> 0 | Some b -> Budget.used_steps b in
  Fun.protect
    ~finally:(fun () ->
      let dt = Unix.gettimeofday () -. t0 in
      let dsteps =
        match budget with None -> 0 | Some b -> Budget.used_steps b - steps0
      in
      (match t.stack with _ :: rest -> t.stack <- rest | [] -> ());
      let s = span_record t path in
      s.calls <- s.calls + 1;
      s.seconds <- s.seconds +. dt;
      s.steps <- s.steps + dsteps;
      match t.on_span_close with
      | Some g -> g ~path ~seconds:dt ~steps:dsteps
      | None -> ())
    f

(* ------------------------------------------------------------------ *)
(* The ambient registry. Instrumented modules record through these
   no-op-when-absent entry points, so uninstrumented runs (the default,
   including every benchmark loop) pay one domain-local load per stage
   and nothing per inner-loop iteration.

   The handle is domain-local (Domain.DLS), not a bare global: a
   registry is a single-writer structure, and under `Par` fan-out each
   task runs with its own child registry installed in its executing
   domain, merged back deterministically by the submitter. A bare
   global ref would race (and interleave span stacks) the moment two
   domains record concurrently.                                        *)

let ambient_key : t option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let install r = Domain.DLS.set ambient_key (Some r)
let clear () = Domain.DLS.set ambient_key None
let current () = Domain.DLS.get ambient_key

let with_registry r f =
  let prev = current () in
  install r;
  Fun.protect ~finally:(fun () -> Domain.DLS.set ambient_key prev) f

let counter name by = match current () with None -> () | Some t -> add t name by
let gauge name v = match current () with None -> () | Some t -> set t name v
let gauge_max name v = match current () with None -> () | Some t -> set_max t name v

let series_point name ~label v =
  match current () with None -> () | Some t -> point t name ~label v

let with_span ?budget name f =
  match current () with None -> f () | Some t -> span ?budget t name f

(* ------------------------------------------------------------------ *)
(* Parallel fan-out support: per-task child registries and their
   deterministic merge (DESIGN.md Section 5e).                         *)

(* The child inherits the parent's open-span context so that spans
   recorded inside a parallel task keep the same slash-joined paths
   they would have had sequentially ("pipeline/hc:bspg", not
   "hc:bspg"). It deliberately does not inherit [on_span_close]: live
   trace callbacks would otherwise fire concurrently from worker
   domains; merged spans still reach the final summary. *)
let create_child parent =
  let t = create () in
  t.stack <- parent.stack;
  t

let sorted_keys tbl =
  Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort compare

(* Deterministic: iteration is over sorted keys, and callers merge
   children in submission order, so any jobs count yields the same
   final registry contents (modulo wall-clock seconds, which are
   genuinely measured). Counters and span stats are additive — the
   exact Σ-steps invariant (span steps_used vs engine evaluation
   counters) survives the merge because both sides add up. *)
let merge_into ~into child =
  List.iter
    (fun k -> add into k !(Hashtbl.find child.counters k))
    (sorted_keys child.counters);
  List.iter
    (fun k ->
      let g = Hashtbl.find child.gauges k in
      if g.g_is_max then set_max into k g.g_value else set into k g.g_value)
    (sorted_keys child.gauges);
  List.iter
    (fun k ->
      (* Both lists are newest-first; prepending the child's keeps the
         child's points after the parent's existing ones in reading
         order. *)
      let pts = !(Hashtbl.find child.series k) in
      match Hashtbl.find_opt into.series k with
      | Some r -> r := pts @ !r
      | None -> Hashtbl.add into.series k (ref pts))
    (sorted_keys child.series);
  List.iter
    (fun k ->
      let cs = Hashtbl.find child.span_table k in
      let s = span_record into k in
      s.calls <- s.calls + cs.calls;
      s.seconds <- s.seconds +. cs.seconds;
      s.steps <- s.steps + cs.steps)
    (sorted_keys child.span_table)

(* ------------------------------------------------------------------ *)
(* Reading and reporting.                                              *)

let counter_value t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let gauge_value t name =
  match Hashtbl.find_opt t.gauges name with Some g -> Some g.g_value | None -> None

let series_values t name =
  match Hashtbl.find_opt t.series name with Some r -> List.rev !r | None -> []

let span_list t =
  List.map
    (fun k ->
      let s = Hashtbl.find t.span_table k in
      { path = s.path; calls = s.calls; seconds = s.seconds; steps_used = s.steps })
    (sorted_keys t.span_table)

let to_json t =
  let counters =
    List.map
      (fun k -> (k, Json.Int !(Hashtbl.find t.counters k)))
      (sorted_keys t.counters)
  in
  let gauges =
    List.map
      (fun k -> (k, Json.Float (Hashtbl.find t.gauges k).g_value))
      (sorted_keys t.gauges)
  in
  let series =
    List.map
      (fun k ->
        ( k,
          Json.List
            (List.map
               (fun (label, v) ->
                 Json.Obj [ ("label", Json.String label); ("value", Json.Float v) ])
               (List.rev !(Hashtbl.find t.series k))) ))
      (sorted_keys t.series)
  in
  let spans =
    List.map
      (fun (s : span_stats) ->
        Json.Obj
          [
            ("path", Json.String s.path);
            ("calls", Json.Int s.calls);
            ("seconds", Json.Float s.seconds);
            ("steps_used", Json.Int s.steps_used);
          ])
      (span_list t)
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("series", Json.Obj series);
      ("spans", Json.List spans);
    ]

let write_json_file t file =
  Atomic_file.write file (fun oc ->
      output_string oc (Json.to_string (to_json t));
      output_char oc '\n')

let pp ppf t =
  let open Format in
  List.iter
    (fun k -> fprintf ppf "counter %-40s %d@." k (counter_value t k))
    (sorted_keys t.counters);
  List.iter
    (fun k -> fprintf ppf "gauge   %-40s %g@." k (Hashtbl.find t.gauges k).g_value)
    (sorted_keys t.gauges);
  List.iter
    (fun k ->
      fprintf ppf "series  %-40s %s@." k
        (String.concat ", "
           (List.map (fun (l, v) -> Printf.sprintf "%s=%g" l v) (series_values t k))))
    (sorted_keys t.series);
  List.iter
    (fun (s : span_stats) ->
      fprintf ppf "span    %-40s calls=%d %.4fs steps=%d@." s.path s.calls s.seconds
        s.steps_used)
    (span_list t)

let log_summary t =
  List.iter
    (fun k -> Log.app (fun m -> m "counter %-40s %d" k (counter_value t k)))
    (sorted_keys t.counters);
  List.iter
    (fun k -> Log.app (fun m -> m "gauge   %-40s %g" k (Hashtbl.find t.gauges k).g_value))
    (sorted_keys t.gauges);
  List.iter
    (fun (s : span_stats) ->
      Log.app (fun m ->
          m "span    %-40s calls=%d %.4fs steps=%d" s.path s.calls s.seconds
            s.steps_used))
    (span_list t)
