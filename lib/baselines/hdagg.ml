let assign_wavefront dag ~p ~proc nodes =
  (* Load cap: average work per processor in this wavefront, with 10%
     slack, but never below the largest single node. *)
  let total = List.fold_left (fun acc v -> acc + Dag.work dag v) 0 nodes in
  let max_w = List.fold_left (fun acc v -> max acc (Dag.work dag v)) 0 nodes in
  let cap = max max_w ((total + p - 1) / p * 11 / 10) in
  let load = Array.make p 0 in
  (* Heavier nodes first gives the balancing step more freedom. *)
  let ordered =
    List.sort
      (fun a b ->
        let c = compare (Dag.work dag b) (Dag.work dag a) in
        if c <> 0 then c else compare a b)
      nodes
  in
  List.iter
    (fun v ->
      let score = Array.make p 0 in
      Array.iter
        (fun u -> score.(proc.(u)) <- score.(proc.(u)) + Dag.comm dag u)
        (Dag.pred dag v);
      (* Preferred processor: largest predecessor affinity among those
         with remaining capacity; fall back to the least-loaded one. *)
      let best = ref (-1) in
      for q = p - 1 downto 0 do
        if load.(q) + Dag.work dag v <= cap then
          if !best < 0 || score.(q) > score.(!best)
             || (score.(q) = score.(!best) && load.(q) < load.(!best))
          then best := q
      done;
      let q =
        if !best >= 0 then !best
        else begin
          let least = ref 0 in
          for r = 1 to p - 1 do
            if load.(r) < load.(!least) then least := r
          done;
          !least
        end
      in
      proc.(v) <- q;
      load.(q) <- load.(q) + Dag.work dag v)
    ordered

let schedule ?(aggregate = true) machine dag =
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let level = Dag.wavefronts dag in
  let num_levels = if n = 0 then 0 else 1 + Array.fold_left max 0 level in
  let by_level = Array.make (max num_levels 1) [] in
  for v = n - 1 downto 0 do
    by_level.(level.(v)) <- v :: by_level.(level.(v))
  done;
  let proc = Array.make n 0 in
  Array.iter (fun nodes -> assign_wavefront dag ~p ~proc nodes) by_level;
  let wavefront_schedule = Schedule.of_assignment dag ~proc ~step:level in
  if aggregate then Superstep_merge.greedy machine wavefront_schedule
  else wavefront_schedule
