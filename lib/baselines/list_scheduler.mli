(** Communication-volume-aware list schedulers: BL-EST and ETF.

    Both schedulers build a classical schedule by repeatedly assigning a
    ready node to a processor, pricing cross-processor data movement into
    the Earliest Start Time (EST): if predecessor [u] was scheduled on a
    different processor than candidate [p], its value arrives at
    [finish u + g * c u * avg_lambda] (the paper's baselines use the
    average NUMA coefficient rather than the exact pairwise one —
    Appendix A.1). [EST(v, p)] is the maximum of [p]'s availability and
    all predecessor arrival times.

    - {b BL-EST} always picks the ready node with the largest bottom
      level (longest outgoing weighted path) and places it on the
      processor with the earliest start time.
    - {b ETF} (Earliest Task First) examines every (ready node,
      processor) pair and commits the pair with the globally earliest
      start time, breaking ties towards the larger bottom level.

    The classical result is converted to BSP via {!Classical.to_bsp}. *)

type variant = Bl_est | Etf

val variant_name : variant -> string

val run : variant -> Machine.t -> Dag.t -> Classical.t
val schedule : variant -> Machine.t -> Dag.t -> Schedule.t
