type variant = Bl_est | Etf

let variant_name = function Bl_est -> "bl-est" | Etf -> "etf"

(* Communication delay charged when the consumer sits on a different
   processor than producer [u]. Baselines price NUMA with the average
   coefficient (Appendix A.1); for uniform machines this is exactly
   [g * c u]. *)
let comm_delay machine dag u =
  let avg = Machine.average_lambda machine in
  float_of_int (machine.Machine.g * Dag.comm dag u) *. avg

let run variant machine dag =
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let bl = Dag.bottom_level dag ~comm_factor:machine.Machine.g in
  let topo_rank = Dag.topological_rank dag in
  let finish = Array.make n 0.0 in
  let proc = Array.make n 0 in
  let start = Array.make n 0.0 in
  let scheduled = Array.make n false in
  let proc_avail = Array.make p 0.0 in
  let remaining = Array.init n (fun v -> Dag.in_degree dag v) in
  let ready = ref [] in
  for v = n - 1 downto 0 do
    if remaining.(v) = 0 then ready := v :: !ready
  done;
  let est v q =
    let data_ready =
      Array.fold_left
        (fun acc u ->
          let arrival =
            if proc.(u) = q then finish.(u)
            else finish.(u) +. comm_delay machine dag u
          in
          Float.max acc arrival)
        0.0 (Dag.pred dag v)
    in
    Float.max proc_avail.(q) data_ready
  in
  let best_proc v =
    let best = ref 0 and best_est = ref (est v 0) in
    for q = 1 to p - 1 do
      let e = est v q in
      if e < !best_est then begin
        best := q;
        best_est := e
      end
    done;
    (!best, !best_est)
  in
  let commit v q t =
    scheduled.(v) <- true;
    proc.(v) <- q;
    start.(v) <- t;
    finish.(v) <- t +. float_of_int (Dag.work dag v);
    proc_avail.(q) <- finish.(v);
    ready := List.filter (fun x -> x <> v) !ready;
    Array.iter
      (fun w ->
        remaining.(w) <- remaining.(w) - 1;
        if remaining.(w) = 0 then ready := w :: !ready)
      (Dag.succ dag v)
  in
  let pick_bl_est () =
    match !ready with
    | [] -> ()
    | r ->
      let v =
        List.fold_left
          (fun best x ->
            if bl.(x) > bl.(best) || (bl.(x) = bl.(best) && x < best) then x else best)
          (List.hd r) r
      in
      let q, t = best_proc v in
      commit v q t
  in
  let pick_etf () =
    match !ready with
    | [] -> ()
    | r ->
      let choice =
        List.fold_left
          (fun acc v ->
            let q, t = best_proc v in
            match acc with
            | None -> Some (v, q, t)
            | Some (v0, _, t0) ->
              if t < t0 || (t = t0 && bl.(v) > bl.(v0)) then Some (v, q, t) else acc)
          None r
      in
      (match choice with
       | Some (v, q, t) -> commit v q t
       | None -> ())
  in
  let steps = ref 0 in
  while !ready <> [] do
    (match variant with Bl_est -> pick_bl_est () | Etf -> pick_etf ());
    incr steps
  done;
  if !steps <> n then failwith "List_scheduler: not all nodes scheduled";
  (* Sequence = order by (start time, topological rank): consistent with
     both precedence and each processor's local execution order. *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      let c = compare start.(a) start.(b) in
      if c <> 0 then c else compare topo_rank.(a) topo_rank.(b))
    order;
  let seq = Array.make n 0 in
  Array.iteri (fun i v -> seq.(v) <- i) order;
  { Classical.proc; seq }

let schedule variant machine dag = Classical.to_bsp dag (run variant machine dag)
