(* Discrete-event simulation. Events are node completions ordered by
   (time, tiebreak counter); processing an event releases successors and
   then lets idle processors pick up work. *)

module Event_heap = struct
  type t = {
    mutable arr : (int * int * int) array;  (* time, tiebreak, node *)
    mutable size : int;
  }

  let create () = { arr = Array.make 16 (0, 0, 0); size = 0 }

  let less (t1, c1, _) (t2, c2, _) = t1 < t2 || (t1 = t2 && c1 < c2)

  let push h x =
    if h.size = Array.length h.arr then begin
      let arr = Array.make (2 * h.size) (0, 0, 0) in
      Array.blit h.arr 0 arr 0 h.size;
      h.arr <- arr
    end;
    h.arr.(h.size) <- x;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while !i > 0 && less h.arr.(!i) h.arr.((!i - 1) / 2) do
      let p = (!i - 1) / 2 in
      let tmp = h.arr.(p) in
      h.arr.(p) <- h.arr.(!i);
      h.arr.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.arr.(0) in
      h.size <- h.size - 1;
      h.arr.(0) <- h.arr.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let m = ref !i in
        if l < h.size && less h.arr.(l) h.arr.(!m) then m := l;
        if r < h.size && less h.arr.(r) h.arr.(!m) then m := r;
        if !m = !i then continue := false
        else begin
          let tmp = h.arr.(!m) in
          h.arr.(!m) <- h.arr.(!i);
          h.arr.(!i) <- tmp;
          i := !m
        end
      done;
      Some top
    end
end

let run dag ~p ~seed =
  if p < 1 then invalid_arg "Cilk.run: need at least one processor";
  let n = Dag.n dag in
  let rng = Rng.create seed in
  let proc = Array.make n 0 in
  let seq = Array.make n (-1) in
  let remaining = Array.init n (fun v -> Dag.in_degree dag v) in
  let stacks = Array.init p (fun _ -> Deque.create ()) in
  let busy = Array.make p false in
  let events = Event_heap.create () in
  let tiebreak = ref 0 in
  let seq_counter = ref 0 in
  (* Sources all start on processor 0's stack, lowest id on top, the DAG
     analogue of the root task spawning its children. *)
  List.rev (Dag.sources dag) |> List.iter (fun v -> Deque.push_top stacks.(0) v);
  let start_node q v time =
    proc.(v) <- q;
    seq.(v) <- !seq_counter;
    incr seq_counter;
    busy.(q) <- true;
    incr tiebreak;
    Event_heap.push events (time + Dag.work dag v, !tiebreak, v)
  in
  let try_acquire q time =
    match Deque.pop_top stacks.(q) with
    | Some v -> start_node q v time
    | None ->
      (* Steal from the bottom of a uniformly random non-empty stack. *)
      let victims = ref [] in
      for r = p - 1 downto 0 do
        if r <> q && not (Deque.is_empty stacks.(r)) then victims := r :: !victims
      done;
      (match !victims with
       | [] -> ()
       | vs ->
         let arr = Array.of_list vs in
         let victim = Rng.pick rng arr in
         (match Deque.pop_bottom stacks.(victim) with
          | Some v -> start_node q v time
          | None -> assert false))
  in
  let dispatch_all time =
    (* Keep assigning until no idle processor can acquire work. Steals
       can expose emptiness to later processors, so loop to fixpoint. *)
    let progress = ref true in
    while !progress do
      progress := false;
      for q = 0 to p - 1 do
        if not busy.(q) then begin
          let before = !seq_counter in
          try_acquire q time;
          if !seq_counter > before then progress := true
        end
      done
    done
  in
  dispatch_all 0;
  let finished = ref 0 in
  let continue = ref true in
  while !continue do
    match Event_heap.pop events with
    | None -> continue := false
    | Some (time, _, v) ->
      let q = proc.(v) in
      busy.(q) <- false;
      incr finished;
      Array.iter
        (fun w ->
          remaining.(w) <- remaining.(w) - 1;
          if remaining.(w) = 0 then Deque.push_top stacks.(q) w)
        (Dag.succ dag v);
      dispatch_all time
  done;
  if !finished <> n then failwith "Cilk.run: simulation stalled (cyclic input?)";
  { Classical.proc; seq }

let schedule dag ~p ~seed = Classical.to_bsp dag (run dag ~p ~seed)
