(** Cilk-style work-stealing baseline (Section 4.1, Appendix A.1).

    A discrete-event simulation of the classic work-stealing scheduler
    adapted to DAGs: every processor keeps a stack of ready nodes; when
    the execution of the last unfinished direct predecessor of a node [v]
    finishes on processor [p], [v] is pushed on top of [p]'s stack (this
    generalises Cilk's "spawned children go to the spawning processor").
    An idle processor pops the top of its own stack; if the stack is
    empty it steals the {e bottom} node of a uniformly random non-empty
    victim stack. The victim choice is the only source of randomness and
    is driven by the seed.

    The simulated execution yields a classical schedule which is then
    organised into supersteps via {!Classical.to_bsp} and completed with
    the lazy communication schedule. *)

val run : Dag.t -> p:int -> seed:int -> Classical.t
(** Simulate the work-stealing execution on [p] processors. *)

val schedule : Dag.t -> p:int -> seed:int -> Schedule.t
(** [run] followed by the BSP conversion. *)
