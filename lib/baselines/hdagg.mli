(** HDagg-style wavefront scheduler (Section 4.1, Appendix A.1).

    HDagg (Zarebavani et al., IPDPS 2022) sorts the nodes of a DAG into
    {e wavefronts} — essentially supersteps — and distributes each
    wavefront over the processors, striving for both a balanced per-
    processor workload inside each wavefront and a low volume of
    communication between wavefronts; its signature {e hybrid
    aggregation} then merges consecutive wavefronts when doing so is
    beneficial. The original implementation is an external C++ library;
    this module is a faithful OCaml reimplementation of the idea
    operating directly on our DAG type (DESIGN.md, substitution 4):

    - wavefront of [v] = longest edge distance from a source;
    - within a wavefront, each node prefers the processor that already
      holds the largest communication weight of its predecessors, subject
      to a load cap of roughly the average wavefront work per processor;
    - an aggregation pass greedily merges a wavefront into its
      predecessor when no cross-processor dependency separates them and
      the exact BSP cost decreases.

    Because the scheduler works wavefront-by-wavefront, its output is
    already a BSP schedule and needs no classical conversion. *)

val schedule : ?aggregate:bool -> Machine.t -> Dag.t -> Schedule.t
(** [aggregate] defaults to [true]; [false] disables the merging pass
    (exposed for the ablation benchmark). *)
