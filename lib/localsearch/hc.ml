type stats = {
  moves_applied : int;
  moves_evaluated : int;
  initial_cost : int;
  final_cost : int;
}

let try_move st v p2 s2 =
  let p1 = Assignment_state.proc st v and s1 = Assignment_state.step st v in
  let before = Assignment_state.total_cost st in
  Assignment_state.apply_move st v p2 s2;
  if Assignment_state.total_cost st < before then true
  else begin
    Assignment_state.apply_move st v p1 s1;
    assert (Assignment_state.total_cost st = before);
    false
  end

let improve ?(budget = Budget.unlimited) ?max_moves machine sched =
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let initial = Schedule.with_lazy_comm sched in
  let initial_cost = Bsp_cost.total machine initial in
  if n = 0 || Schedule.num_supersteps sched = 0 then
    ( initial,
      { moves_applied = 0; moves_evaluated = 0; initial_cost; final_cost = initial_cost }
    )
  else begin
    let st = Assignment_state.init machine initial in
    let p = machine.Machine.p in
    let moves_applied = ref 0 in
    let moves_evaluated = ref 0 in
    let move_cap = match max_moves with None -> max_int | Some m -> m in
    let stop () = !moves_applied >= move_cap || Budget.exhausted budget in
    let improved_any = ref true in
    while !improved_any && not (stop ()) do
      improved_any := false;
      let v = ref 0 in
      while !v < n && not (stop ()) do
        let s1 = Assignment_state.step st !v in
        let moved = ref false in
        let ds = ref (-1) in
        while (not !moved) && !ds <= 1 do
          let s2 = s1 + !ds in
          let p2 = ref 0 in
          while (not !moved) && !p2 < p do
            if not (!p2 = Assignment_state.proc st !v && s2 = s1) then begin
              ignore (Budget.tick budget : bool);
              incr moves_evaluated;
              if Assignment_state.valid_move st !v !p2 s2 && try_move st !v !p2 s2 then begin
                incr moves_applied;
                improved_any := true;
                moved := true
              end
            end;
            incr p2
          done;
          incr ds
        done;
        incr v
      done
    done;
    let result = Assignment_state.snapshot st in
    let final_cost = Bsp_cost.total machine result in
    ( result,
      {
        moves_applied = !moves_applied;
        moves_evaluated = !moves_evaluated;
        initial_cost;
        final_cost;
      } )
  end
