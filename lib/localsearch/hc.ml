type stats = {
  moves_applied : int;
  moves_evaluated : int;
  replicas_added : int;
  replicas_dropped : int;
  initial_cost : int;
  final_cost : int;
}

let no_stats initial_cost =
  {
    moves_applied = 0;
    moves_evaluated = 0;
    replicas_added = 0;
    replicas_dropped = 0;
    initial_cost;
    final_cost = initial_cost;
  }

(* Shared check-mode verification: the read-only delta must agree with
   the mutating path, both forwards and after rolling back. *)
let verify_delta st v p2 s2 delta keep =
  let p1 = Assignment_state.proc st v and s1 = Assignment_state.step st v in
  let before = Assignment_state.total_cost st in
  Assignment_state.apply_move st v p2 s2;
  if Assignment_state.total_cost st <> before + delta then
    failwith "Hc: delta_cost disagrees with apply_move";
  if not keep then begin
    Assignment_state.apply_move st v p1 s1;
    if Assignment_state.total_cost st <> before then
      failwith "Hc: rollback did not restore the total cost"
  end

let try_move ~check st v p2 s2 =
  let delta = Assignment_state.delta_cost st v p2 s2 in
  if delta < 0 then begin
    if check then verify_delta st v p2 s2 delta true
    else Assignment_state.apply_move st v p2 s2;
    true
  end
  else begin
    if check then verify_delta st v p2 s2 delta false;
    false
  end

(* ------------------------------------------------------------------ *)
(* Replication phase (DESIGN.md Section 5g). Runs only after the move
   search has converged — single-node moves and replication moves never
   interleave (Assignment_state rejects moves once replicas exist), so
   replication is a final polish on the move-phase local minimum.

   Candidates are seeded from the live event traffic — the per-event
   granularity of the profiler's traffic matrix: replicating u onto a
   destination it currently ships to removes that event outright and may
   pull other events to a nearer source, at the price of recomputing u's
   work. Each round evaluates the candidates heaviest-traffic first
   (ties broken by ascending (node, processor) for determinism), applies
   every strict improvement, then reconsiders existing replicas for
   dropping; rounds repeat until one passes without a change. *)

let try_replicate ~check st v q =
  let delta = Assignment_state.delta_cost_replicate st v q in
  if delta < 0 then begin
    let before = Assignment_state.total_cost st in
    Assignment_state.apply_replicate st v q;
    if check && Assignment_state.total_cost st <> before + delta then
      failwith "Hc: delta_cost_replicate disagrees with apply_replicate";
    true
  end
  else begin
    if check then begin
      let before = Assignment_state.total_cost st in
      Assignment_state.apply_replicate st v q;
      if Assignment_state.total_cost st <> before + delta then
        failwith "Hc: delta_cost_replicate disagrees with apply_replicate";
      (* a just-placed replica is always droppable: its consumers on q
         were strictly later than v in the pre-move (valid) schedule *)
      Assignment_state.apply_drop_replica st v q;
      if Assignment_state.total_cost st <> before then
        failwith "Hc: replica rollback did not restore the total cost"
    end;
    false
  end

let try_drop ~check st v q =
  let delta = Assignment_state.delta_cost_drop_replica st v q in
  if delta < 0 then begin
    let before = Assignment_state.total_cost st in
    Assignment_state.apply_drop_replica st v q;
    if check && Assignment_state.total_cost st <> before + delta then
      failwith "Hc: delta_cost_drop_replica disagrees with apply_drop_replica";
    true
  end
  else begin
    if check then begin
      let before = Assignment_state.total_cost st in
      Assignment_state.apply_drop_replica st v q;
      if Assignment_state.total_cost st <> before + delta then
        failwith "Hc: delta_cost_drop_replica disagrees with apply_drop_replica";
      Assignment_state.apply_replicate st v q;
      if Assignment_state.total_cost st <> before then
        failwith "Hc: replica rollback did not restore the total cost"
    end;
    false
  end

let replication_phase ~check ~budget st n =
  let added = ref 0 and dropped = ref 0 and evaluated = ref 0 in
  let stop () = Budget.exhausted budget in
  let changed = ref true in
  while !changed && not (stop ()) do
    changed := false;
    let cands = ref [] in
    for u = n - 1 downto 0 do
      Assignment_state.iter_event_destinations st u (fun q vol ->
          if Assignment_state.valid_replicate st u q then cands := (vol, u, q) :: !cands)
    done;
    let cands =
      List.sort
        (fun (v1, u1, q1) (v2, u2, q2) ->
          if v1 <> v2 then compare v2 v1
          else if u1 <> u2 then compare u1 u2
          else compare q1 q2)
        !cands
    in
    List.iter
      (fun (_, u, q) ->
        (* re-check: an earlier acceptance this round may have placed or
           starved this candidate *)
        if (not (stop ())) && Assignment_state.valid_replicate st u q then begin
          ignore (Budget.tick budget : bool);
          incr evaluated;
          if try_replicate ~check st u q then begin
            incr added;
            changed := true
          end
        end)
      cands;
    for v = 0 to n - 1 do
      List.iter
        (fun q ->
          if (not (stop ())) && Assignment_state.valid_drop_replica st v q then begin
            ignore (Budget.tick budget : bool);
            incr evaluated;
            if try_drop ~check st v q then begin
              incr dropped;
              changed := true
            end
          end)
        (Assignment_state.node_replicas st v)
    done
  done;
  Obs.Metrics.counter "hc.replication_candidates" !evaluated;
  Obs.Metrics.counter "hc.replicas_added" !added;
  Obs.Metrics.counter "hc.replicas_dropped" !dropped;
  (!added, !dropped, !evaluated)

let improve ?(check = false) ?(budget = Budget.unlimited ()) ?max_moves
    ?(replicate = false) ?(shards = 1) ?on_apply machine sched =
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let initial = Schedule.with_lazy_comm sched in
  let initial_cost = Bsp_cost.total machine initial in
  if n = 0 || Schedule.num_supersteps sched = 0 then (initial, no_stats initial_cost)
  else begin
    let st = Assignment_state.init machine initial in
    let p = machine.Machine.p in
    let num_steps = Assignment_state.num_steps st in
    let moves_applied = ref 0 in
    let moves_evaluated = ref 0 in
    let move_cap = match max_moves with None -> max_int | Some m -> m in
    let stop () = !moves_applied >= move_cap || Budget.exhausted budget in
    (* Dirty-node worklist: a FIFO ring (capacity n + 1 suffices since a
       node is enqueued at most once at a time) plus a membership flag.
       The local length/peak/total counters feed the observability layer
       at the end of the run. *)
    let queue = Array.make (n + 1) 0 in
    let head = ref 0 and tail = ref 0 in
    let queued = Array.make n false in
    let enqueued_total = ref 0 in
    let queue_len = ref 0 in
    let queue_peak = ref 0 in
    let sweeps = ref 0 and sweep_hits = ref 0 in
    let enqueue v =
      if not queued.(v) then begin
        queued.(v) <- true;
        queue.(!tail) <- v;
        tail := (!tail + 1) mod (n + 1);
        incr enqueued_total;
        incr queue_len;
        if !queue_len > !queue_peak then queue_peak := !queue_len
      end
    in
    let dequeue () =
      let v = queue.(!head) in
      head := (!head + 1) mod (n + 1);
      queued.(v) <- false;
      decr queue_len;
      v
    in
    let queue_empty () = !head = !tail in
    (* Nodes resident per superstep, so an accepted move can re-enqueue
       exactly the nodes whose neighbourhood costs it disturbed. *)
    let residents = Array.make num_steps [] in
    for v = n - 1 downto 0 do
      residents.(Assignment_state.step st v) <- v :: residents.(Assignment_state.step st v)
    done;
    (* An accepted move of v disturbed the supersteps recorded by the
       delta evaluation. Re-enqueue: v and its neighbourhood (validity
       windows and first_need sets changed), the other successors of v's
       predecessors (they share those first_need sets), the residents of
       the touched supersteps and their neighbours (their work cells and
       superstep maxima changed), and the predecessors of nodes resident
       just after a touched superstep (their lazy events are pinned into
       its communication phase). *)
    let mark_after_move v =
      enqueue v;
      Dag.iter_pred dag v enqueue;
      Dag.iter_succ dag v enqueue;
      Dag.iter_pred dag v (fun u -> Dag.iter_succ dag u enqueue);
      Assignment_state.iter_last_touched_steps st (fun s ->
          List.iter enqueue residents.(s);
          if s > 0 then List.iter enqueue residents.(s - 1);
          if s + 1 < num_steps then
            List.iter
              (fun w ->
                enqueue w;
                Dag.iter_pred dag w enqueue)
              residents.(s + 1))
    in
    (* First-improvement scan of one node's neighbourhood: every
       processor, superstep within +-1 (Appendix A.3), in the same
       candidate order as the reference sweep. One pred/succ scan
       summarises validity for the whole neighbourhood; whole blocks of
       invalid candidates are then decided in O(1) — most supersteps
       admit either every processor or exactly one, so per-candidate
       work happens only on candidates that reach the delta evaluator.
       Evaluated candidates are counted per block and ticked in bulk. *)
    let accept v s1 p2 s2 =
      if try_move ~check st v p2 s2 then begin
        incr moves_applied;
        (match on_apply with Some f -> f v p2 s2 | None -> ());
        if s2 <> s1 then begin
          residents.(s1) <- List.filter (fun w -> w <> v) residents.(s1);
          residents.(s2) <- v :: residents.(s2)
        end;
        mark_after_move v;
        true
      end
      else false
    in
    (* The processors valid at s2, encoded -1 = all, -2 = none, q >= 0 =
       exactly q (a window boundary whose extremal neighbours share one
       processor). Shared by the applying scan and the read-only
       proposing scan so both traverse the exact same candidates. *)
    let window_sel ~last_pred ~last_pred_proc ~first_succ ~first_succ_proc s2 =
      if s2 < 0 || s2 >= num_steps then -2
      else begin
        let lo =
          if s2 > last_pred then -1
          else if s2 = last_pred && last_pred_proc >= 0 then last_pred_proc
          else -2
        in
        let hi =
          if s2 < first_succ then -1
          else if s2 = first_succ && first_succ_proc >= 0 then first_succ_proc
          else -2
        in
        if lo = -2 || hi = -2 then -2
        else if lo = -1 then hi
        else if hi = -1 then lo
        else if lo = hi then lo
        else -2
      end
    in
    let row_out = Array.make p 0 in
    let scan_node v =
      let s1 = Assignment_state.step st v in
      let p1 = Assignment_state.proc st v in
      let last_pred, last_pred_proc, first_succ, first_succ_proc =
        Assignment_state.move_window st v
      in
      let moved = ref false in
      let evald = ref 0 in
      let ds = ref (-1) in
      while (not !moved) && !ds <= 1 do
        let s2 = s1 + !ds in
        (* Number of candidates in this superstep row: the identity
           (p1, s1) is not a candidate. *)
        let row = if s2 = s1 then p - 1 else p in
        let sel =
          window_sel ~last_pred ~last_pred_proc ~first_succ ~first_succ_proc s2
        in
        if sel = -2 then evald := !evald + row
        else if sel >= 0 then begin
          (* The reference sweep would reject p2 < sel one by one; count
             them, then evaluate the single valid candidate (screened
             against the node's resident removal base, so a boundary
             superstep shares the base built for its full rows). *)
          let improving =
            (not (sel = p1 && s2 = s1))
            && begin
                 let d = Assignment_state.delta_cost_cached st v sel s2 in
                 if check && d <> Assignment_state.delta_cost st v sel s2 then
                   failwith "Hc: delta_cost_cached disagrees with delta_cost";
                 d < 0
               end
          in
          if improving && accept v s1 sel s2 then begin
            moved := true;
            evald := !evald + sel + 1 - (if s2 = s1 && p1 < sel then 1 else 0)
          end
          else evald := !evald + row
        end
        else begin
          (* Every processor is a valid target at s2: evaluate the whole
             row off one shared removal base. *)
          Assignment_state.delta_cost_row st v ~s2 row_out;
          if check then
            for q = 0 to p - 1 do
              if
                (not (q = p1 && s2 = s1))
                && row_out.(q) <> Assignment_state.delta_cost st v q s2
              then failwith "Hc: delta_cost_row disagrees with delta_cost"
            done;
          let p2 = ref 0 in
          while (not !moved) && !p2 < p do
            if not (!p2 = p1 && s2 = s1) then begin
              incr evald;
              if row_out.(!p2) < 0 && accept v s1 !p2 s2 then moved := true
            end;
            incr p2
          done
        end;
        incr ds
      done;
      ignore (Budget.ticks budget !evald : bool);
      moves_evaluated := !moves_evaluated + !evald;
      !moved
    in
    for v = 0 to n - 1 do
      enqueue v
    done;
    let continue = ref true in
    if shards <= 1 || check || n <= 1 then
      (* Sequential engine — the jobs = 1 fast path the sharded variant
         is defined against (check mode stays here: its apply/rollback
         probes must run on the one true state). *)
      while !continue && not (stop ()) do
        while (not (queue_empty ())) && not (stop ()) do
          ignore (scan_node (dequeue ()) : bool)
        done;
        if stop () then continue := false
        else begin
          (* Verification sweep: the worklist marking is conservative but
             not provably complete, so confirm the fixpoint with one full
             pass; any improvement found re-seeds the worklist. This keeps
             the termination guarantee of the exhaustive sweep (the result
             is a genuine local minimum) at delta-evaluation prices. *)
          incr sweeps;
          let any = ref false in
          let v = ref 0 in
          while !v < n && not (stop ()) do
            if scan_node !v then any := true;
            incr v
          done;
          if !any then incr sweep_hits;
          continue := !any
        end
      done
    else begin
      (* Sharded propose/merge/apply engine (DESIGN.md Section 5j).

         Take a window of nodes from the front of the worklist (without
         dequeuing), split it into [shards] contiguous slices, and let
         each slice scan its nodes {e read-only} on a scratch clone of
         the state ({!Assignment_state.clone_for_scan}), stopping at its
         first node that has an improving move. Because no proposal
         mutates the state, every slice sees exactly the state the
         sequential engine would have seen for each of those nodes; the
         earliest proposing position [j] in window order is therefore
         precisely the node at which the sequential engine would apply
         its next move. The merge step consumes positions [0 .. j]
         serially: the proposal-free prefix is dequeued with its
         recorded candidate counts ticked into the budget (no rescan —
         determinism of the scan on identical state makes the clone's
         count the sequential count), and position [j] is re-run through
         the normal applying [scan_node] on the true state, so residents
         bookkeeping, worklist re-marking and the on_apply hook all take
         the unmodified sequential path. Any jobs count (and any shard
         count) is hence bit-identical to the sequential engine — same
         moves in the same order, same budget consumption, same
         counters. Wasted speculative scans past [j] are discarded
         without being ticked.

         The window grows adaptively: proposal-free windows double it
         (deep scans parallelise well near the fixpoint), any proposal
         resets it to [shards] (early on, almost every node moves, so
         speculating further than one move ahead is wasted work). *)
      let nshards = min shards n in
      let max_win = min n (nshards * 32) in
      let win = Array.make max_win 0 in
      let win_prop = Array.make max_win false in
      let win_evald = Array.make max_win 0 in
      let row_bufs = Array.init nshards (fun _ -> Array.make p 0) in
      let shard_ids = List.init nshards Fun.id in
      let cur_len = ref 0 in
      let wsize = ref nshards in
      (* Read-only mirror of [scan_node]: same window summary, same
         candidate order, same per-row counting — but evaluated on a
         clone and never applying. Returns whether the node has an
         improving move; [evald_out] receives the candidate count of a
         proposal-free scan (unused for proposers, which are rescanned
         by the applying path). *)
      let scan_node_propose cst row_buf v evald_out =
        let s1 = Assignment_state.step cst v in
        let p1 = Assignment_state.proc cst v in
        let last_pred, last_pred_proc, first_succ, first_succ_proc =
          Assignment_state.move_window cst v
        in
        let found = ref false in
        let evald = ref 0 in
        let ds = ref (-1) in
        while (not !found) && !ds <= 1 do
          let s2 = s1 + !ds in
          let row = if s2 = s1 then p - 1 else p in
          let sel =
            window_sel ~last_pred ~last_pred_proc ~first_succ ~first_succ_proc s2
          in
          if sel = -2 then evald := !evald + row
          else if sel >= 0 then begin
            let improving =
              (not (sel = p1 && s2 = s1))
              && Assignment_state.delta_cost_cached cst v sel s2 < 0
            in
            if improving then found := true else evald := !evald + row
          end
          else begin
            Assignment_state.delta_cost_row cst v ~s2 row_buf;
            let p2 = ref 0 in
            while (not !found) && !p2 < p do
              if not (!p2 = p1 && s2 = s1) then begin
                incr evald;
                if row_buf.(!p2) < 0 then found := true
              end;
              incr p2
            done
          end;
          incr ds
        done;
        evald_out := !evald;
        !found
      in
      let propose_task k =
        let len = !cur_len in
        let lo = k * len / nshards and hi = (k + 1) * len / nshards in
        if lo < hi then begin
          let cst = Assignment_state.clone_for_scan st in
          let row_buf = row_bufs.(k) in
          let ev = ref 0 in
          let i = ref lo in
          let halted = ref false in
          while (not !halted) && !i < hi do
            let found = scan_node_propose cst row_buf win.(!i) ev in
            win_prop.(!i) <- found;
            win_evald.(!i) <- !ev;
            if found then halted := true;
            incr i
          done;
          Assignment_state.release_clone cst
        end
      in
      (* Fan the slices out and return the first proposing position in
         window order, or [len] if none. Positions after a slice's own
         proposer are left stale, but they can only sit {e after} the
         first fresh [true] of their slice, so the ascending scan never
         reads one. *)
      let propose_window len =
        cur_len := len;
        ignore (Par.map propose_task shard_ids : unit list);
        let j = ref 0 in
        while !j < len && not win_prop.(!j) do
          incr j
        done;
        !j
      in
      (* Consume window positions 0 .. min(j, len-1): budget-tick the
         proposal-free prefix, run the true [scan_node] at [j]. [get]
         maps a window position to its node; [consumed] is called after
         each position actually processed (the budget can halt the
         window early, leaving the rest for the next round). Returns
         whether the scan at [j] applied a move. *)
      let consume len j ~get ~consumed =
        let moved = ref false in
        let i = ref 0 in
        let halted = ref false in
        while (not !halted) && !i < len && !i <= j do
          if stop () then halted := true
          else begin
            let v = get !i in
            if !i = j then begin
              if scan_node v then moved := true
            end
            else begin
              ignore (Budget.ticks budget win_evald.(!i) : bool);
              moves_evaluated := !moves_evaluated + win_evald.(!i)
            end;
            consumed ();
            incr i
          end
        done;
        !moved
      in
      let adapt j len = wsize := if j < len then nshards else min (2 * !wsize) max_win in
      while !continue && not (stop ()) do
        while (not (queue_empty ())) && not (stop ()) do
          let len = min !wsize !queue_len in
          if len <= 1 then ignore (scan_node (dequeue ()) : bool)
          else begin
            for i = 0 to len - 1 do
              win.(i) <- queue.((!head + i) mod (n + 1))
            done;
            let j = propose_window len in
            ignore (consume len j ~get:(fun _ -> dequeue ()) ~consumed:ignore : bool);
            adapt j len
          end
        done;
        if stop () then continue := false
        else begin
          (* Sharded verification sweep: same windowed speculation over
             the full id order the sequential sweep walks. *)
          incr sweeps;
          let any = ref false in
          let v = ref 0 in
          while !v < n && not (stop ()) do
            let len = min !wsize (n - !v) in
            if len <= 1 then begin
              if scan_node !v then any := true;
              incr v
            end
            else begin
              let v0 = !v in
              for i = 0 to len - 1 do
                win.(i) <- v0 + i
              done;
              let j = propose_window len in
              if consume len j ~get:(fun i -> v0 + i) ~consumed:(fun () -> incr v)
              then any := true;
              adapt j len
            end
          done;
          if !any then incr sweep_hits;
          continue := !any
        end
      done
    end;
    Obs.Metrics.counter "hc.runs" 1;
    Obs.Metrics.counter "hc.moves_evaluated" !moves_evaluated;
    Obs.Metrics.counter "hc.moves_applied" !moves_applied;
    Obs.Metrics.counter "hc.worklist_enqueued" !enqueued_total;
    Obs.Metrics.gauge_max "hc.worklist_peak" (float_of_int !queue_peak);
    Obs.Metrics.counter "hc.verify_sweeps" !sweeps;
    Obs.Metrics.counter "hc.verify_sweep_hits" !sweep_hits;
    let replicas_added, replicas_dropped =
      if replicate && not (stop ()) then begin
        let a, d, _ = replication_phase ~check ~budget st n in
        (a, d)
      end
      else (0, 0)
    in
    let result = Assignment_state.snapshot st in
    let final_cost = Bsp_cost.total machine result in
    Assignment_state.release st;
    ( result,
      {
        moves_applied = !moves_applied;
        moves_evaluated = !moves_evaluated;
        replicas_added;
        replicas_dropped;
        initial_cost;
        final_cost;
      } )
  end

(* Replication-only pass over an already-optimised schedule: the move
   phase is skipped entirely, so the input placement survives verbatim
   and only replicas are added (or not). The input communication
   schedule is replaced by the lazy one, which can cost more than a
   hand-optimised event placement — callers compare the result against
   their input and keep the cheaper (as {!Pipeline.run} does). *)
let replicate_schedule ?(check = false) ?(budget = Budget.unlimited ()) machine sched =
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let initial = Schedule.with_lazy_comm sched in
  if n = 0 || Schedule.num_supersteps sched = 0 then initial
  else begin
    let st = Assignment_state.init machine initial in
    let _ = replication_phase ~check ~budget st n in
    if check then Assignment_state.check_consistent st;
    let result = Assignment_state.snapshot st in
    Assignment_state.release st;
    result
  end

(* The seed implementation: exhaustive sweeps with apply/rollback
   candidate evaluation. Kept as the differential-testing and
   benchmarking baseline for the delta/worklist engine above. *)
let improve_reference ?(check = false) ?(budget = Budget.unlimited ()) ?max_moves machine
    sched =
  let try_move_rollback st v p2 s2 =
    let p1 = Assignment_state.proc st v and s1 = Assignment_state.step st v in
    let before = Assignment_state.total_cost st in
    Assignment_state.apply_move st v p2 s2;
    if Assignment_state.total_cost st < before then true
    else begin
      Assignment_state.apply_move st v p1 s1;
      if check && Assignment_state.total_cost st <> before then
        failwith "Hc: rollback did not restore the total cost";
      false
    end
  in
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let initial = Schedule.with_lazy_comm sched in
  let initial_cost = Bsp_cost.total machine initial in
  if n = 0 || Schedule.num_supersteps sched = 0 then (initial, no_stats initial_cost)
  else begin
    let st = Assignment_state.init machine initial in
    let p = machine.Machine.p in
    let moves_applied = ref 0 in
    let moves_evaluated = ref 0 in
    let move_cap = match max_moves with None -> max_int | Some m -> m in
    let stop () = !moves_applied >= move_cap || Budget.exhausted budget in
    let improved_any = ref true in
    while !improved_any && not (stop ()) do
      improved_any := false;
      let v = ref 0 in
      while !v < n && not (stop ()) do
        let s1 = Assignment_state.step st !v in
        let moved = ref false in
        let ds = ref (-1) in
        while (not !moved) && !ds <= 1 do
          let s2 = s1 + !ds in
          let p2 = ref 0 in
          while (not !moved) && !p2 < p do
            if not (!p2 = Assignment_state.proc st !v && s2 = s1) then begin
              ignore (Budget.tick budget : bool);
              incr moves_evaluated;
              if Assignment_state.valid_move st !v !p2 s2 && try_move_rollback st !v !p2 s2
              then begin
                incr moves_applied;
                improved_any := true;
                moved := true
              end
            end;
            incr p2
          done;
          incr ds
        done;
        incr v
      done
    done;
    let result = Assignment_state.snapshot st in
    let final_cost = Bsp_cost.total machine result in
    Assignment_state.release st;
    ( result,
      {
        moves_applied = !moves_applied;
        moves_evaluated = !moves_evaluated;
        replicas_added = 0;
        replicas_dropped = 0;
        initial_cost;
        final_cost;
      } )
  end
