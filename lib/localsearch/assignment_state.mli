(** Shared incremental state for assignment-space local search.

    Both the hill climber ({!Hc}) and the simulated-annealing variant
    ({!Annealing}) explore the same neighbourhood — move one node to
    another processor and/or an adjacent superstep — and need the cost
    of each candidate in (near-)constant time. This module owns that
    machinery: the assignment arrays, the per-(node, processor)
    first-need table pinning the lazy communication events, and the
    incremental {!Cost_table}.

    The state is a pure function of the assignment [(pi, tau)], so any
    applied move can be rolled back exactly by applying the inverse
    move.

    {b Replication} (DESIGN.md Section 5g). The state also supports a
    second move family: place an extra {e replica} of a node on another
    processor (in the node's own superstep), or drop one again. A
    replica duplicates the node's work on its processor, makes the node
    local to that processor's consumers, and receives every predecessor
    input the processor does not already hold; events ship from the
    nearest placement by [lambda] (primary first, then ascending replica
    processors on ties). Replication moves and single-node moves do not
    interleave: once the state holds a replica, the move entry points
    ({!delta_cost}, {!delta_cost_row}, {!delta_cost_cached},
    {!apply_move}) raise [Invalid_argument] — the search runs its move
    phase to convergence first and replicates afterwards. *)

type t

val init : Machine.t -> Schedule.t -> t
(** Build the state from a schedule (its communication schedule is
    replaced by the lazy one). The number of supersteps is fixed for the
    lifetime of the state. Replicated schedules are accepted as long as
    every replica shares its node's superstep — the only shape the
    search itself produces; anything else raises [Invalid_argument].

    States draw their scratch arrays from a per-domain pool fed by
    {!release}, so a search loop that releases its states runs
    allocation-free across iterations — the point of the pooling is to
    keep the parallel candidate fan-out off the minor heap (DESIGN.md
    Section 5f). *)

val release : t -> unit
(** Return the state's backing arrays to the calling domain's pool for
    reuse by a later {!init}, and invalidate the state — the caller must
    not touch it afterwards. Optional: a state that is never released
    (e.g. because an exception unwound past it) is reclaimed by the GC
    like any other value. *)

val prewarm : Machine.t -> Dag.t -> num_steps:int -> unit
(** Park one max-capacity state in the calling domain's pool so that
    every later {!init} for this machine/DAG at up to [num_steps]
    supersteps reuses its arrays instead of allocating fresh ones. The
    multilevel driver calls this once with the finest level's
    dimensions before uncoarsening: level sizes only grow on the way
    up, so without it each level's [init] finds the previous (smaller)
    level's arrays too small and falls back to allocation. No-op when
    the pool already holds a state of sufficient capacity. *)

val clone_for_scan : t -> t
(** A read-only evaluation clone: shares every base field of the state
    (DAG, assignment, first-need tables, cost table) and owns a private
    copy of the per-evaluation scratch, drawn from a separate
    per-domain clone pool. The delta entry points ({!delta_cost},
    {!delta_cost_row}, {!delta_cost_cached}, {!move_window},
    {!valid_move}) only ever mutate scratch, so several clones may
    evaluate candidates concurrently on different domains against one
    shared parent — the sharded hill-climber fan-out (DESIGN.md
    Section 5j). Callers must not apply moves or replication through a
    clone, and must return it with {!release_clone} (never
    {!release}, which would clear the shared cost table). *)

val release_clone : t -> unit
(** Return a {!clone_for_scan} clone's scratch to the clone pool and
    invalidate it. Safe while the parent is still live. *)

val machine : t -> Machine.t
val num_steps : t -> int
val proc : t -> int -> int
val step : t -> int -> int
val total_cost : t -> int

val valid_move : t -> int -> int -> int -> bool
(** [valid_move st v p' s'] — would reassigning [v] to [(p', s')] keep
    the schedule valid (under lazy communication)? *)

val move_window : t -> int -> int * int * int * int
(** [(last_pred, last_pred_proc, first_succ, first_succ_proc)] for one
    node: the latest predecessor superstep (or [-1]) and the earliest
    successor superstep (or {!num_steps}), each with the common
    processor of the nodes attaining it ([-1] if they disagree). A
    candidate [(p', s')] is valid iff [s'] is in range and

    {[ (s' > last_pred || (s' = last_pred && p' = last_pred_proc))
       && (s' < first_succ || (s' = first_succ && p' = first_succ_proc)) ]}

    Equivalent to {!valid_move} but O(1) per candidate once the window
    is computed, which lets {!Hc}'s scan amortise the pred/succ scan
    over a node's whole neighbourhood. *)

val delta_cost : t -> int -> int -> int -> int
(** [delta_cost st v p' s'] is the exact signed change of {!total_cost}
    that {!apply_move}[ st v p' s'] would produce, computed {e without
    mutating} the state: the touched [(step, proc)] cells (work cells,
    the lazy events of [v], and the events of [v]'s predecessors towards
    the old and new processor) are collected into a scratch overlay and
    the superstep maxima are re-derived only over the touched supersteps.
    Rejected candidates therefore cost a single read-only pass instead of
    an apply/rollback cycle. Requires {!valid_move}[ st v p' s'];
    returns [0] for the identity move. *)

val delta_cost_row : t -> int -> s2:int -> int array -> unit
(** [delta_cost_row st v ~s2 out] fills [out.(p')] with
    [delta_cost st v p' s2] for {e every} processor [p'] at once
    ([out] must have length [p]). The removal side of the move — [v]
    leaving its current cell, its producer events, its predecessors'
    events towards the old processor — is identical for all targets and
    is accumulated once; only the per-target addition overlay is applied
    and retracted per processor. This is the hill climber's hot path:
    inside a node's validity window every processor is a valid target,
    so a whole row costs one removal plus [p] cheap additions instead of
    [p] full evaluations. Requires every [(p', s2)] to be a valid move;
    the identity entry (same processor and superstep) is set to [0]. *)

val delta_cost_cached : t -> int -> int -> int -> int
(** Same value as {!delta_cost}, but computed as one addition column
    against the removal base of [v], building it only when no base for
    [v] is resident from a recent {!delta_cost_row}. Cheaper than
    {!delta_cost} whenever [v]'s base can be shared between superstep
    rows — e.g. the single valid candidate at a window-boundary
    superstep right after a full row of the same node. Requires
    {!valid_move}[ st v p' s']. *)

val apply_move : t -> int -> int -> int -> unit
(** Apply unconditionally (caller must have checked validity); updates
    the cost tables incrementally. *)

val iter_last_touched_steps : t -> (int -> unit) -> unit
(** Iterate over the supersteps touched by the most recent
    {!delta_cost} call (each exactly once, unspecified order). The
    record survives a subsequent {!apply_move} of the same candidate, so
    a worklist can re-enqueue the nodes resident on the disturbed
    supersteps after accepting a move. Invalidated by the next
    {!delta_cost}. *)

val num_replicas_total : t -> int
(** Number of replicas currently held across all nodes; [0] until an
    {!apply_replicate} (or an {!init} from a replicated schedule). *)

val node_replicas : t -> int -> int list
(** The replica processors of one node, ascending; [[]] for most. *)

val iter_event_destinations : t -> int -> (int -> int -> unit) -> unit
(** [iter_event_destinations st u f] calls [f q vol] for every
    destination processor [q] that currently receives the value of [u]
    by a lazy event, with [vol] the event's weighted volume
    [comm(u) * lambda(nearest placement, q)] — the per-event granularity
    of {!Profile}'s traffic matrix. Ascending [q]; used to seed
    replication candidates with the heaviest traffic first. *)

val valid_replicate : t -> int -> int -> bool
(** [valid_replicate st v q] — may a replica of [v] be placed on [q]?
    True iff [q] is a real processor holding no placement of [v] yet and
    every predecessor of [v] is either placed on [q] (so the input is
    local) or computed strictly before [v]'s superstep (so a lazy event
    can deliver it in time). *)

val delta_cost_replicate : t -> int -> int -> int
(** Exact signed change of {!total_cost} that {!apply_replicate} would
    produce, computed without mutating (same scratch-overlay scheme as
    {!delta_cost}). Requires {!valid_replicate}. *)

val apply_replicate : t -> int -> int -> unit
(** Place the replica unconditionally (caller checks validity); updates
    the placement, first-need and cost bookkeeping incrementally. *)

val valid_drop_replica : t -> int -> int -> bool
(** [valid_drop_replica st v q] — may the replica of [v] on [q] be
    removed again? True iff it exists and no consumer on [q] needs [v]
    in [v]'s own superstep (the replacement event would arrive too
    late). Dropping is the exact inverse of {!apply_replicate} when that
    replication was itself valid. *)

val delta_cost_drop_replica : t -> int -> int -> int
(** Exact signed cost change of {!apply_drop_replica}, computed without
    mutating. Requires {!valid_drop_replica}. *)

val apply_drop_replica : t -> int -> int -> unit
(** Remove the replica unconditionally (caller checks validity). *)

val check_consistent : t -> unit
(** Debug helper: verifies the incremental cost table against a
    from-scratch recomputation, the [first_need]/minimiser-count
    bookkeeping against the successor lists (placement-aware), and the
    placement/replica-list agreement; raises on any mismatch. *)

val snapshot : t -> Schedule.t
(** The current placement as a schedule with lazy communication —
    replicated ({!Schedule.lazy_comm_replicated}) when the state holds
    replicas, plain otherwise. *)

val assignment : t -> int array * int array
(** Copies of the current [(proc, step)] arrays. *)
