(** Shared incremental state for assignment-space local search.

    Both the hill climber ({!Hc}) and the simulated-annealing variant
    ({!Annealing}) explore the same neighbourhood — move one node to
    another processor and/or an adjacent superstep — and need the cost
    of each candidate in (near-)constant time. This module owns that
    machinery: the assignment arrays, the per-(node, processor)
    first-need table pinning the lazy communication events, and the
    incremental {!Cost_table}.

    The state is a pure function of the assignment [(pi, tau)], so any
    applied move can be rolled back exactly by applying the inverse
    move. *)

type t

val init : Machine.t -> Schedule.t -> t
(** Build the state from a schedule (its communication schedule is
    replaced by the lazy one). The number of supersteps is fixed for the
    lifetime of the state. *)

val machine : t -> Machine.t
val num_steps : t -> int
val proc : t -> int -> int
val step : t -> int -> int
val total_cost : t -> int

val valid_move : t -> int -> int -> int -> bool
(** [valid_move st v p' s'] — would reassigning [v] to [(p', s')] keep
    the schedule valid (under lazy communication)? *)

val apply_move : t -> int -> int -> int -> unit
(** Apply unconditionally (caller must have checked validity); updates
    the cost tables incrementally. *)

val snapshot : t -> Schedule.t
(** The current assignment as a schedule with lazy communication. *)

val assignment : t -> int array * int array
(** Copies of the current [(proc, step)] arrays. *)
