type config = {
  initial_temperature : float;
  cooling : float;
  sweeps : int;
  seed : int;
}

let default_config initial_cost =
  {
    initial_temperature = Float.max 1.0 (0.02 *. float_of_int initial_cost);
    cooling = 0.9;
    sweeps = 30;
    seed = 1;
  }

type stats = {
  moves_accepted : int;
  moves_rejected : int;
  uphill_accepted : int;
  initial_cost : int;
  final_cost : int;
}

let improve ?(budget = Budget.unlimited ()) ?config machine sched =
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let initial = Schedule.with_lazy_comm sched in
  let initial_cost = Bsp_cost.total machine initial in
  let config = match config with Some c -> c | None -> default_config initial_cost in
  if n = 0 || Schedule.num_supersteps sched = 0 || config.sweeps <= 0 then
    ( initial,
      {
        moves_accepted = 0;
        moves_rejected = 0;
        uphill_accepted = 0;
        initial_cost;
        final_cost = initial_cost;
      } )
  else begin
    let st = Assignment_state.init machine initial in
    let p = machine.Machine.p in
    let rng = Rng.create config.seed in
    let accepted = ref 0 and rejected = ref 0 and uphill = ref 0 in
    let best_proc, best_step = Assignment_state.assignment st in
    let cur_cost = ref (Assignment_state.total_cost st) in
    let best_cost = ref !cur_cost in
    let record_if_best () =
      if !cur_cost < !best_cost then begin
        best_cost := !cur_cost;
        let proc, step = Assignment_state.assignment st in
        Array.blit proc 0 best_proc 0 n;
        Array.blit step 0 best_step 0 n
      end
    in
    let temperature = ref config.initial_temperature in
    let sweep = ref 0 in
    while !sweep < config.sweeps && not (Budget.exhausted budget) do
      for v = 0 to n - 1 do
        if Budget.tick budget then begin
          (* One random candidate per node per sweep. *)
          let s1 = Assignment_state.step st v in
          let p2 = Rng.int rng p in
          let s2 = s1 + Rng.int rng 3 - 1 in
          if
            (not (p2 = Assignment_state.proc st v && s2 = s1))
            && Assignment_state.valid_move st v p2 s2
          then begin
            (* Metropolis acceptance from the read-only delta; the state
               is mutated only for accepted moves, so rejections cost a
               single delta evaluation instead of apply + rollback. *)
            let delta = Assignment_state.delta_cost st v p2 s2 in
            let accept =
              delta <= 0
              || Rng.float rng 1.0 < Stdlib.exp (-.float_of_int delta /. !temperature)
            in
            if accept then begin
              Assignment_state.apply_move st v p2 s2;
              cur_cost := !cur_cost + delta;
              incr accepted;
              if delta > 0 then incr uphill;
              record_if_best ()
            end
            else incr rejected
          end
        end
      done;
      temperature := Float.max 1e-3 (!temperature *. config.cooling);
      incr sweep
    done;
    Obs.Metrics.counter "annealing.runs" 1;
    Obs.Metrics.counter "annealing.sweeps" !sweep;
    Obs.Metrics.counter "annealing.moves_accepted" !accepted;
    Obs.Metrics.counter "annealing.moves_rejected" !rejected;
    Obs.Metrics.counter "annealing.uphill_accepted" !uphill;
    let result = Schedule.of_assignment dag ~proc:best_proc ~step:best_step in
    Assignment_state.release st;
    ( result,
      {
        moves_accepted = !accepted;
        moves_rejected = !rejected;
        uphill_accepted = !uphill;
        initial_cost;
        final_cost = Bsp_cost.total machine result;
      } )
  end
