(** HCcs: hill climbing on the communication schedule (Section 4.3).

    With the assignment [(pi, tau)] fixed, the only remaining freedom is
    {e when} to send each required value: if processor [q] first needs
    the value of [u] in superstep [s0], the transfer may use any
    communication phase in the window [[tau u, s0 - 1]]. Like the
    paper's HCcs, this assumes each value is sent directly from the
    processor that computed it (no relaying), so the communication
    schedule is exactly one event per required (node, destination) pair.

    The search greedily moves single events to a different phase of
    their window while this strictly decreases the total cost, reusing
    the incremental {!Cost_table}. Candidates are costed read-only (the
    two touched superstep maxima are re-derived against the cached
    per-step costs) and the table is mutated only for accepted moves, so
    rejections never pay the mutate/refresh/rollback cycle. Spreading
    transfers over earlier, underused phases flattens h-relation peaks —
    the gain the lazy schedule leaves on the table. *)

type stats = {
  moves_applied : int;
  moves_evaluated : int;
  initial_cost : int;
  final_cost : int;
}

type pair = {
  node : int;
  src : int;  (** the producing processor, [pi node] *)
  dst : int;
  vol : int;  (** [c node * lambda src dst] *)
  lo : int;  (** earliest usable phase, [tau node] *)
  hi : int;  (** latest usable phase, [first_need - 1] *)
  mutable cur : int;  (** currently chosen phase *)
}

val required_pairs : Machine.t -> Schedule.t -> pair list
(** One entry per (node, destination) pair the assignment requires,
    initialised from the input schedule's direct events where they fit
    the window, and lazily otherwise. Shared with the ILPcs formulation,
    which optimises the same decision space exactly. *)

val improve :
  ?budget:Budget.t -> Machine.t -> Schedule.t -> Schedule.t * stats
(** The input's communication events are kept where the window permits
    (direct events only); everything else starts from the lazy position.
    The result carries the optimised explicit communication schedule. *)
