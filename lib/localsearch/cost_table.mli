(** Incremental BSP cost bookkeeping for the local search algorithms.

    The hill climbers must evaluate the cost effect of thousands of
    candidate modifications per second, so recomputing the full cost
    function each time is out of the question (Section 4.3). This table
    keeps the per-superstep per-processor work, send and receive totals
    together with a cached per-superstep cost and the running total.
    Mutators mark the touched supersteps dirty; {!refresh} re-derives the
    cost of exactly the dirty supersteps (a maximum over [P] processors
    each, with [P] small) and updates the total.

    The paper maintains sorted sets with external pointers for O(1) max
    queries; with [P <= 16] in all experiments, an [O(P)] rescan of a
    dirty superstep is both simpler and faster in practice — the
    asymptotic refinement would only matter for much larger [P]
    (documented deviation, DESIGN.md Section 5). *)

type t

val create : Machine.t -> num_steps:int -> t
(** All-zero tables for supersteps [0 .. num_steps - 1]. The latency
    contribution [num_steps * l] is included in {!total} from the
    start. *)

val num_steps : t -> int

val clear : t -> unit
(** Zero every cell of the used region and drop pending dirtiness,
    leaving the backing arrays entirely zero so they can be handed to
    {!recycle}. The table itself is unusable afterwards (its caches are
    stale); callers clear only as the last operation before pooling. *)

val recycle : t -> Machine.t -> num_steps:int -> t
(** [recycle old machine ~num_steps] is {!create}[ machine ~num_steps],
    except the new table reuses [old]'s backing arrays when they are
    large enough. [old] must have been {!clear}ed and must not be used
    again. This is the allocation-free path for the per-domain scratch
    pool (DESIGN.md Section 5f): the multilevel refinement loop creates
    a table per refinement level, and recycling keeps that out of the
    minor heap. *)

val add_work : t -> step:int -> proc:int -> int -> unit
(** Add a (possibly negative) amount of work. *)

val add_send : t -> step:int -> proc:int -> int -> unit
val add_recv : t -> step:int -> proc:int -> int -> unit

val refresh : t -> unit
(** Recompute the cost of dirty supersteps and fold into the total. *)

val total : t -> int
(** Current total cost; only meaningful right after {!refresh}. *)

val step_cost : t -> int -> int
(** Cached cost of one superstep; only meaningful right after
    {!refresh}. Read-only delta evaluation compares a candidate's
    recomputed superstep cost against this cached value. *)

val work : t -> step:int -> proc:int -> int
val send : t -> step:int -> proc:int -> int
val recv : t -> step:int -> proc:int -> int

val step_costs : t -> int array
(** The cached per-superstep cost vector behind {!step_cost}, as a
    read-only view (same caveats as the matrix accessors below). *)

val work_matrix : t -> int array array
val send_matrix : t -> int array array
val recv_matrix : t -> int array array
(** Direct views of the [num_steps x p] tables for the read-only delta
    evaluator, which must scan whole superstep rows in its innermost
    loop and cannot afford a function call per cell. The caller must
    treat them as read-only; all mutation goes through {!add_work} /
    {!add_send} / {!add_recv} so dirtiness tracking stays sound. *)

val work_max : t -> int array
val comm_max : t -> int array
(** Per-step cached maxima (work, h-relation), refreshed with
    {!refresh}. The row evaluator's addition overlays only raise cells
    above its removal base, so it derives a candidate superstep maximum
    from these caches and the touched cells alone. Read-only views,
    valid right after {!refresh}. *)

val assert_consistent : t -> unit
(** Debug helper: verifies the cached per-superstep costs and total match
    a from-scratch recomputation; raises on mismatch. *)
