type t = {
  dag : Dag.t;
  machine_ : Machine.t;
  p : int;
  num_steps_ : int;
  proc_ : int array;
  step_ : int array;
  table : Cost_table.t;
  (* first_need.(u * p + q): earliest superstep in which processor q
     needs the value of u (min step over successors of u assigned to q);
     max_int when q has no successor of u. Entries exist for every q
     including proc.(u); only q <> proc.(u) induce lazy communication
     events, pinned to phase first_need - 1. *)
  first_need : int array;
}

let no_need = max_int

let machine t = t.machine_
let num_steps t = t.num_steps_
let proc t v = t.proc_.(v)
let step t v = t.step_.(v)
let total_cost t = Cost_table.total t.table

let recompute_first_need st u =
  let base = u * st.p in
  for q = 0 to st.p - 1 do
    st.first_need.(base + q) <- no_need
  done;
  Array.iter
    (fun v ->
      let idx = base + st.proc_.(v) in
      if st.step_.(v) < st.first_need.(idx) then st.first_need.(idx) <- st.step_.(v))
    (Dag.succ st.dag u)

(* Add (sign = +1) or remove (sign = -1) the lazy communication event of
   producer u towards destination q, if any. *)
let source_comm_one st u q sign =
  let src = st.proc_.(u) in
  if q <> src then begin
    let fn = st.first_need.((u * st.p) + q) in
    if fn <> no_need then begin
      let vol = sign * Dag.comm st.dag u * Machine.lambda st.machine_ src q in
      Cost_table.add_send st.table ~step:(fn - 1) ~proc:src vol;
      Cost_table.add_recv st.table ~step:(fn - 1) ~proc:q vol
    end
  end

let source_comm_all st u sign =
  for q = 0 to st.p - 1 do
    source_comm_one st u q sign
  done

let init machine (sched : Schedule.t) =
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let num_steps = Schedule.num_supersteps sched in
  let st =
    {
      dag;
      machine_ = machine;
      p;
      num_steps_ = num_steps;
      proc_ = Array.copy sched.Schedule.proc;
      step_ = Array.copy sched.Schedule.step;
      table = Cost_table.create machine ~num_steps;
      first_need = Array.make (n * p) no_need;
    }
  in
  for v = 0 to n - 1 do
    Cost_table.add_work st.table ~step:st.step_.(v) ~proc:st.proc_.(v) (Dag.work dag v)
  done;
  for u = 0 to n - 1 do
    recompute_first_need st u;
    source_comm_all st u 1
  done;
  Cost_table.refresh st.table;
  st

let valid_move st v p2 s2 =
  s2 >= 0 && s2 < st.num_steps_
  && Array.for_all
       (fun u -> if st.proc_.(u) = p2 then st.step_.(u) <= s2 else st.step_.(u) < s2)
       (Dag.pred st.dag v)
  && Array.for_all
       (fun w -> if st.proc_.(w) = p2 then st.step_.(w) >= s2 else st.step_.(w) > s2)
       (Dag.succ st.dag v)

(* Apply the move unconditionally; the caller compares costs and may
   apply the inverse move to roll back (the state is a pure function of
   the assignment, so the inverse restores it exactly). *)
let apply_move st v p2 s2 =
  let p1 = st.proc_.(v) in
  (* Producer side of v itself: destinations and volumes depend on
     proc.(v), so retract everything and re-add after the update. The
     first_need entries of v do not change (its successors stay put). *)
  source_comm_all st v (-1);
  (* Predecessors: only their events towards p1 and p2 can change. *)
  Array.iter
    (fun u ->
      source_comm_one st u p1 (-1);
      if p2 <> p1 then source_comm_one st u p2 (-1))
    (Dag.pred st.dag v);
  Cost_table.add_work st.table ~step:st.step_.(v) ~proc:p1 (-Dag.work st.dag v);
  Cost_table.add_work st.table ~step:s2 ~proc:p2 (Dag.work st.dag v);
  st.proc_.(v) <- p2;
  st.step_.(v) <- s2;
  Array.iter
    (fun u ->
      let base = u * st.p in
      let recompute q =
        st.first_need.(base + q) <- no_need;
        Array.iter
          (fun w ->
            if st.proc_.(w) = q && st.step_.(w) < st.first_need.(base + q) then
              st.first_need.(base + q) <- st.step_.(w))
          (Dag.succ st.dag u)
      in
      recompute p1;
      if p2 <> p1 then recompute p2;
      source_comm_one st u p1 1;
      if p2 <> p1 then source_comm_one st u p2 1)
    (Dag.pred st.dag v);
  source_comm_all st v 1;
  Cost_table.refresh st.table

let snapshot st = Schedule.of_assignment st.dag ~proc:st.proc_ ~step:st.step_

let assignment st = (Array.copy st.proc_, Array.copy st.step_)
