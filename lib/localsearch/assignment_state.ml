type t = {
  dag : Dag.t;
  (* Aliases of the DAG's CSR adjacency arrays: with the flat
     representation, [Dag.succ]/[Dag.pred] allocate a slice per call, so
     every hot loop below walks offsets/targets directly instead. *)
  soff : int array;
  stgt : int array;
  poff : int array;
  ptgt : int array;
  machine_ : Machine.t;
  p : int;
  num_steps_ : int;
  proc_ : int array;
  step_ : int array;
  table : Cost_table.t;
  (* Aliases of the cost table's backing arrays (stable for the table's
     lifetime), so the hot evaluation loops read them without a
     cross-module accessor call. *)
  work_m : int array array;
  send_m : int array array;
  recv_m : int array array;
  cost_c : int array;
  wmax_c : int array;
  hmax_c : int array;
  (* first_need.(u * p + q): earliest superstep in which processor q
     needs the value of u (min step over successors of u assigned to q);
     max_int when q has no successor of u. Entries exist for every q
     including proc.(u); only q <> proc.(u) induce lazy communication
     events, pinned to phase first_need - 1. *)
  first_need : int array;
  (* fn_count.(u * p + q): how many successors of u on q attain
     first_need. Lets a move decide in O(1) whether removing one
     successor changes the minimum; a successor-list rescan happens only
     when the unique minimiser leaves, which keeps rejected candidate
     moves free of successor scans. 0 when first_need = max_int. *)
  fn_count : int array;
  (* ev_cnt.(u): how many processors have first_need <> no_need, i.e.
     the number of entries the producer-side loop of delta_cost must
     visit; lets it skip event-free nodes and stop at the last entry. *)
  ev_cnt : int array;
  (* Replication state (DESIGN.md §5g). placed_.(v * p + q): some
     placement — primary or replica — of v sits on processor q.
     reps_.(v): the extra replica processors of v, sorted ascending;
     every replica shares the primary's superstep, which is what keeps
     first_need/fn_count meaningful per placement (all placements of a
     node attain the same step). rep_total counts replicas across nodes
     and gates every replica branch, so the replica-free fast path pays
     one integer compare at most; rep_nodes remembers nodes that ever
     held a replica so release can restore the pooled all-false/all-[]
     invariant in O(n + replicas). *)
  placed_ : bool array;
  reps_ : int list array;
  mutable rep_total : int;
  mutable rep_nodes : int list;
  (* Read-only delta-evaluation scratch: candidate adjustments to the
     cost-table cells, indexed [step * p + proc], zero outside the cells
     recorded in touched_cells (kept duplicate-free via cell_mark).
     touched_steps (deduplicated via step_touched) survives until the
     next delta so the worklist can ask which supersteps an accepted
     move disturbed. *)
  d_work : int array;
  d_send : int array;
  d_recv : int array;
  cell_mark : bool array;
  mutable touched_cells : int array;
  mutable touched_cells_len : int;
  touched_steps : int array;
  mutable touched_steps_len : int;
  step_touched : bool array;
  (* Row-evaluation scratch ({!delta_cost_row}): first_need-without-v of
     each predecessor towards p1 (indexed by position in the pred list),
     and undo logs so the per-target-processor addition overlays can be
     retracted from the shared removal base. *)
  pred_without : int array;
  mutable undo_cell : int array;
  mutable undo_kind : int array;
  mutable undo_amt : int array;
  mutable undo_len : int;
  (* Per-row hoisted data, filled once with the removal base and read by
     every column: the producer's live events (destination and phase)
     and each predecessor's processor, comm weight, first_need row
     offset, and lambda row. row_node identifies the node whose base is
     resident in the scratch (-1 when stale); the base is invalidated by
     any other evaluation or mutation but survives across the up-to-3
     superstep rows of one node (it does not depend on s2). *)
  ev_q : int array;
  ev_ph : int array;
  pred_src : int array;
  pred_comm : int array;
  pred_fn_base : int array;
  pred_lam : int array array;
  mutable row_node : int;
  mutable row_base_delta : int;
  mutable row_cnt : int;
  mutable row_wv : int;
  mutable row_cv : int;
  mutable row_npred : int;
  (* Per-step maxima/cost of the removal base (valid where base_mark),
     and the per-column combination scratch: col_wm/col_hm start from
     the base (or cached) maxima and absorb the column's addition cells
     as they are accumulated; col_neg forces a full rescan of a step
     that saw a negative adjustment (only pred-event retractions). *)
  base_mark : bool array;
  base_wm : int array;
  base_hm : int array;
  base_cost : int array;
  col_mark : bool array;
  col_steps : int array;
  mutable col_steps_len : int;
  col_wm : int array;
  col_hm : int array;
  col_neg : bool array;
}

let no_need = max_int

let machine t = t.machine_
let num_steps t = t.num_steps_
let proc t v = t.proc_.(v)
let step t v = t.step_.(v)
let total_cost t = Cost_table.total t.table

let recompute_first_need st u =
  let base = u * st.p in
  for q = 0 to st.p - 1 do
    st.first_need.(base + q) <- no_need;
    st.fn_count.(base + q) <- 0
  done;
  (* Every placement of a successor is a consumer: the primary on
     proc_.(v) and each replica on its own processor, all at step_.(v). *)
  let consume idx s =
    if s < st.first_need.(idx) then begin
      st.first_need.(idx) <- s;
      st.fn_count.(idx) <- 1
    end
    else if s = st.first_need.(idx) then st.fn_count.(idx) <- st.fn_count.(idx) + 1
  in
  for i = st.soff.(u) to st.soff.(u + 1) - 1 do
    let v = Array.unsafe_get st.stgt i in
    let s = st.step_.(v) in
    consume (base + st.proc_.(v)) s;
    if st.rep_total > 0 then
      List.iter (fun r -> consume (base + r) s) st.reps_.(v)
  done;
  let cnt = ref 0 in
  for q = 0 to st.p - 1 do
    if st.first_need.(base + q) <> no_need then incr cnt
  done;
  st.ev_cnt.(u) <- !cnt

(* Recompute first_need/fn_count of u towards q alone, from the current
   assignment (used when the unique minimiser moved away). *)
let rescan_fn st u q =
  let idx = (u * st.p) + q in
  let old_fn = st.first_need.(idx) in
  let m = ref no_need and c = ref 0 in
  for i = st.soff.(u) to st.soff.(u + 1) - 1 do
    let w = Array.unsafe_get st.stgt i in
    if st.proc_.(w) = q then begin
      let s = st.step_.(w) in
      if s < !m then begin
        m := s;
        c := 1
      end
      else if s = !m then incr c
    end
  done;
  st.first_need.(idx) <- !m;
  st.fn_count.(idx) <- !c;
  if old_fn = no_need && !m <> no_need then st.ev_cnt.(u) <- st.ev_cnt.(u) + 1
  else if old_fn <> no_need && !m = no_need then st.ev_cnt.(u) <- st.ev_cnt.(u) - 1

(* Add (sign = +1) or remove (sign = -1) the lazy communication event of
   producer u towards destination q, if any. *)
let source_comm_one st u q sign =
  let src = st.proc_.(u) in
  if q <> src then begin
    let fn = st.first_need.((u * st.p) + q) in
    if fn <> no_need then begin
      let vol = sign * Dag.comm st.dag u * Machine.lambda st.machine_ src q in
      Cost_table.add_send st.table ~step:(fn - 1) ~proc:src vol;
      Cost_table.add_recv st.table ~step:(fn - 1) ~proc:q vol
    end
  end

let source_comm_all st u sign =
  for q = 0 to st.p - 1 do
    source_comm_one st u q sign
  done

(* ------------------------------------------------------------------ *)
(* Replication-aware bookkeeping (DESIGN.md Section 5g). With
   rep_total = 0 these coincide exactly with the plain helpers above;
   the single-node move path keeps the plain versions (moves are
   rejected once replicas exist), while [init] and the replication
   moves route through these. *)

(* Nearest placement of u to destination q by lambda: the primary, then
   the replicas in ascending processor order, improving on strictly
   shorter distance only — a deterministic tie-break that favours the
   primary and then the lowest replica processor. *)
let nearest_src st u q =
  let src = ref st.proc_.(u) in
  if st.rep_total > 0 then begin
    let lam = st.machine_.Machine.lambda in
    let best = ref lam.(!src).(q) in
    List.iter
      (fun r ->
        let d = lam.(r).(q) in
        if d < !best then begin
          best := d;
          src := r
        end)
      st.reps_.(u)
  end;
  !src

(* [nearest_src] as if the placement of u on [excl] did not exist —
   i.e. the source after that replica is dropped (the scan order and
   tie-break are unchanged, so this is exact). The primary is never
   excluded. *)
let nearest_src_without st u q ~excl =
  let lam = st.machine_.Machine.lambda in
  let src = ref st.proc_.(u) in
  let best = ref lam.(!src).(q) in
  List.iter
    (fun r ->
      if r <> excl then begin
        let d = lam.(r).(q) in
        if d < !best then begin
          best := d;
          src := r
        end
      end)
    st.reps_.(u);
  !src

(* Source of u's event towards q once a replica of u lands on [cand]:
   the candidate takes over on a strictly shorter lambda, or on a tie
   that [nearest_src]'s scan order (primary first, then ascending
   replica processors) resolves in its favour. Exactness here is what
   keeps delta_cost_replicate equal to the applied cost change. *)
let src_with_replica st u ~cand q ~cur =
  let lam = st.machine_.Machine.lambda in
  let dc = lam.(cand).(q) and dcur = lam.(cur).(q) in
  if dc < dcur || (dc = dcur && cur <> st.proc_.(u) && cand < cur) then cand
  else cur

(* Add/remove the lazy event of producer u towards q in the replicated
   model: an event exists iff no placement of u sits on q and some
   consumer placement there needs the value, and it ships from the
   nearest placement. *)
let source_comm_one_r st u q sign =
  if not st.placed_.((u * st.p) + q) then begin
    let fn = st.first_need.((u * st.p) + q) in
    if fn <> no_need then begin
      let src = nearest_src st u q in
      let vol = sign * Dag.comm st.dag u * Machine.lambda st.machine_ src q in
      Cost_table.add_send st.table ~step:(fn - 1) ~proc:src vol;
      Cost_table.add_recv st.table ~step:(fn - 1) ~proc:q vol
    end
  end

let source_comm_all_r st u sign =
  for q = 0 to st.p - 1 do
    source_comm_one_r st u q sign
  done

(* Placement-aware [rescan_fn]: a successor consumes on q when any of
   its placements sits there. *)
let rescan_fn_r st u q =
  let idx = (u * st.p) + q in
  let old_fn = st.first_need.(idx) in
  let m = ref no_need and c = ref 0 in
  for i = st.soff.(u) to st.soff.(u + 1) - 1 do
    let w = Array.unsafe_get st.stgt i in
    if st.placed_.((w * st.p) + q) then begin
      let s = st.step_.(w) in
      if s < !m then begin
        m := s;
        c := 1
      end
      else if s = !m then incr c
    end
  done;
  st.first_need.(idx) <- !m;
  st.fn_count.(idx) <- !c;
  if old_fn = no_need && !m <> no_need then st.ev_cnt.(u) <- st.ev_cnt.(u) + 1
  else if old_fn <> no_need && !m = no_need then st.ev_cnt.(u) <- st.ev_cnt.(u) - 1

(* ------------------------------------------------------------------ *)
(* Per-domain scratch pooling (DESIGN.md Section 5f).

   [init] allocates ~25 scratch arrays plus the cost-table matrices;
   the multilevel refinement loop and the pipeline's candidate fan-out
   create one state per candidate, which at jobs > 1 turns into minor-
   heap churn on every domain and cross-domain stop-the-world minor
   collections. Released states are parked on a small per-domain stack
   (Domain.DLS — never shared, so no synchronisation) and [init] reuses
   any backing array that is big enough for the new instance.

   Invariant for pooled arrays: the delta/overlay scratch (d_work,
   d_send, d_recv, cell_mark, step_touched, base_mark, col_mark) is
   entirely zero/false and the replication arrays are all-false
   (placed_) / all-[] (reps_) — [release] restores this, and freshly
   allocated arrays start that way. All other reused arrays
   are fully overwritten before being read. *)

let pool_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])
let max_pooled = 4

let take_pooled () =
  let pool = Domain.DLS.get pool_key in
  match !pool with
  | [] -> None
  | st :: rest ->
    pool := rest;
    Some st

let init machine (sched : Schedule.t) =
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let num_steps = Schedule.num_supersteps sched in
  let max_in = ref 1 in
  for v = 0 to n - 1 do
    let d = Dag.in_degree dag v in
    if d > !max_in then max_in := d
  done;
  let max_in = !max_in in
  let pooled = take_pooled () in
  (* Reuse a pooled backing array when its capacity suffices; the
     strides in every index computation come from the new [p] and
     [num_steps] fields, so oversized arrays are safe. *)
  let gi get len =
    match pooled with
    | Some o when Array.length (get o) >= len -> get o
    | _ -> Array.make (max len 1) 0
  in
  let gb get len =
    match pooled with
    | Some o when Array.length (get o) >= len -> get o
    | _ -> Array.make (max len 1) false
  in
  let gl get len =
    match pooled with
    | Some o when Array.length (get o) >= len -> get o
    | _ -> Array.make (max len 1) ([] : int list)
  in
  let table =
    match pooled with
    | Some o -> Cost_table.recycle o.table machine ~num_steps
    | None -> Cost_table.create machine ~num_steps
  in
  let np = n * p in
  let sp = num_steps * p in
  let steps1 = max num_steps 1 in
  let st =
    {
      dag;
      soff = Dag.succ_offsets dag;
      stgt = Dag.succ_targets dag;
      poff = Dag.pred_offsets dag;
      ptgt = Dag.pred_targets dag;
      machine_ = machine;
      p;
      num_steps_ = num_steps;
      (* Exact length: [snapshot]/[assignment] hand these to consumers
         that check the length against the DAG. *)
      proc_ = Array.copy sched.Schedule.proc;
      step_ = Array.copy sched.Schedule.step;
      table;
      work_m = Cost_table.work_matrix table;
      send_m = Cost_table.send_matrix table;
      recv_m = Cost_table.recv_matrix table;
      cost_c = Cost_table.step_costs table;
      wmax_c = Cost_table.work_max table;
      hmax_c = Cost_table.comm_max table;
      first_need = gi (fun o -> o.first_need) np;
      fn_count = gi (fun o -> o.fn_count) np;
      ev_cnt = gi (fun o -> o.ev_cnt) n;
      placed_ = gb (fun o -> o.placed_) np;
      reps_ = gl (fun o -> o.reps_) n;
      rep_total = 0;
      rep_nodes = [];
      d_work = gi (fun o -> o.d_work) sp;
      d_send = gi (fun o -> o.d_send) sp;
      d_recv = gi (fun o -> o.d_recv) sp;
      cell_mark = gb (fun o -> o.cell_mark) sp;
      touched_cells = gi (fun o -> o.touched_cells) 64;
      touched_cells_len = 0;
      touched_steps = gi (fun o -> o.touched_steps) steps1;
      touched_steps_len = 0;
      step_touched = gb (fun o -> o.step_touched) steps1;
      pred_without = gi (fun o -> o.pred_without) max_in;
      undo_cell = gi (fun o -> o.undo_cell) 16;
      undo_kind = gi (fun o -> o.undo_kind) 16;
      undo_amt = gi (fun o -> o.undo_amt) 16;
      undo_len = 0;
      ev_q = gi (fun o -> o.ev_q) p;
      ev_ph = gi (fun o -> o.ev_ph) p;
      pred_src = gi (fun o -> o.pred_src) max_in;
      pred_comm = gi (fun o -> o.pred_comm) max_in;
      pred_fn_base = gi (fun o -> o.pred_fn_base) max_in;
      pred_lam =
        (match pooled with
        | Some o when Array.length o.pred_lam >= max_in -> o.pred_lam
        | _ -> Array.make max_in [||]);
      row_node = -1;
      row_base_delta = 0;
      row_cnt = 0;
      row_wv = 0;
      row_cv = 0;
      row_npred = 0;
      base_mark = gb (fun o -> o.base_mark) steps1;
      base_wm = gi (fun o -> o.base_wm) steps1;
      base_hm = gi (fun o -> o.base_hm) steps1;
      base_cost = gi (fun o -> o.base_cost) steps1;
      col_mark = gb (fun o -> o.col_mark) steps1;
      col_steps = gi (fun o -> o.col_steps) steps1;
      col_steps_len = 0;
      col_wm = gi (fun o -> o.col_wm) steps1;
      col_hm = gi (fun o -> o.col_hm) steps1;
      col_neg = gb (fun o -> o.col_neg) steps1;
    }
  in
  for v = 0 to n - 1 do
    st.placed_.((v * p) + st.proc_.(v)) <- true
  done;
  (* Replicas (if any) share their node's superstep — the move deltas
     and the first_need bookkeeping rely on every placement of a node
     attaining the same step. [Hc] only produces such schedules; reject
     anything else loudly. *)
  if Schedule.has_replicas sched then
    for v = 0 to n - 1 do
      let acc = ref [] in
      Schedule.iter_replicas sched v (fun q s ->
          if s <> st.step_.(v) then
            invalid_arg
              "Assignment_state.init: replicas must share their node's superstep";
          st.placed_.((v * p) + q) <- true;
          st.rep_total <- st.rep_total + 1;
          acc := q :: !acc);
      if !acc <> [] then begin
        (* iter_replicas runs in ascending processor order *)
        st.reps_.(v) <- List.rev !acc;
        st.rep_nodes <- v :: st.rep_nodes
      end
    done;
  for v = 0 to n - 1 do
    let wv = Dag.work dag v in
    Cost_table.add_work st.table ~step:st.step_.(v) ~proc:st.proc_.(v) wv;
    if st.rep_total > 0 then
      List.iter
        (fun q -> Cost_table.add_work st.table ~step:st.step_.(v) ~proc:q wv)
        st.reps_.(v)
  done;
  for u = 0 to n - 1 do
    recompute_first_need st u;
    source_comm_all_r st u 1
  done;
  Cost_table.refresh st.table;
  st

(* Park a state with max-capacity backing arrays so subsequent [init]s
   at this size or below run allocation-free. The multilevel driver
   calls this once per ratio before its uncoarsening loop: level sizes
   grow monotonically towards the finest DAG, so without the prewarm
   every level's [init] finds the pooled arrays one level too small and
   reallocates the n- and (n*p)-sized ones each time. *)
let prewarm machine dag ~num_steps =
  let pool = Domain.DLS.get pool_key in
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let np = n * p in
  let sp = num_steps * p in
  let steps1 = max num_steps 1 in
  let max_in = ref 1 in
  for v = 0 to n - 1 do
    let d = Dag.in_degree dag v in
    if d > !max_in then max_in := d
  done;
  let max_in = !max_in in
  let big_enough (o : t) =
    Array.length o.first_need >= np
    && Array.length o.d_work >= sp
    && Array.length o.base_wm >= steps1
    && Array.length o.pred_src >= max_in
    && Cost_table.num_steps o.table >= num_steps
  in
  if List.length !pool < max_pooled && not (List.exists big_enough !pool) then begin
    let table = Cost_table.create machine ~num_steps in
    let mk len = Array.make (max len 1) 0 in
    let mkb len = Array.make (max len 1) false in
    let st =
      {
        dag;
        soff = Dag.succ_offsets dag;
        stgt = Dag.succ_targets dag;
        poff = Dag.pred_offsets dag;
        ptgt = Dag.pred_targets dag;
        machine_ = machine;
        p;
        num_steps_ = num_steps;
        proc_ = [||];
        step_ = [||];
        table;
        work_m = Cost_table.work_matrix table;
        send_m = Cost_table.send_matrix table;
        recv_m = Cost_table.recv_matrix table;
        cost_c = Cost_table.step_costs table;
        wmax_c = Cost_table.work_max table;
        hmax_c = Cost_table.comm_max table;
        first_need = mk np;
        fn_count = mk np;
        ev_cnt = mk n;
        placed_ = mkb np;
        reps_ = Array.make (max n 1) ([] : int list);
        rep_total = 0;
        rep_nodes = [];
        d_work = mk sp;
        d_send = mk sp;
        d_recv = mk sp;
        cell_mark = mkb sp;
        touched_cells = mk 64;
        touched_cells_len = 0;
        touched_steps = mk steps1;
        touched_steps_len = 0;
        step_touched = mkb steps1;
        pred_without = mk max_in;
        undo_cell = mk 16;
        undo_kind = mk 16;
        undo_amt = mk 16;
        undo_len = 0;
        ev_q = mk p;
        ev_ph = mk p;
        pred_src = mk max_in;
        pred_comm = mk max_in;
        pred_fn_base = mk max_in;
        pred_lam = Array.make max_in [||];
        row_node = -1;
        row_base_delta = 0;
        row_cnt = 0;
        row_wv = 0;
        row_cv = 0;
        row_npred = 0;
        base_mark = mkb steps1;
        base_wm = mk steps1;
        base_hm = mk steps1;
        base_cost = mk steps1;
        col_mark = mkb steps1;
        col_steps = mk steps1;
        col_steps_len = 0;
        col_wm = mk steps1;
        col_hm = mk steps1;
        col_neg = mkb steps1;
      }
    in
    (* The table was freshly created, so its cells are zero and the
       delta scratch is zero: exactly the pooled-array invariant. *)
    pool := st :: !pool
  end

let valid_move st v p2 s2 =
  s2 >= 0 && s2 < st.num_steps_
  &&
  let ok = ref true in
  let i = ref st.poff.(v) and stop = st.poff.(v + 1) in
  while !ok && !i < stop do
    let u = Array.unsafe_get st.ptgt !i in
    if st.proc_.(u) = p2 then begin
      if st.step_.(u) > s2 then ok := false
    end
    else if st.step_.(u) >= s2 then ok := false;
    incr i
  done;
  let j = ref st.soff.(v) and stop = st.soff.(v + 1) in
  while !ok && !j < stop do
    let w = Array.unsafe_get st.stgt !j in
    if st.proc_.(w) = p2 then begin
      if st.step_.(w) < s2 then ok := false
    end
    else if st.step_.(w) <= s2 then ok := false;
    incr j
  done;
  !ok

(* The whole neighbourhood of one node shares its validity structure:
   a candidate (p2, s2) is valid iff s2 clears the latest predecessor
   (strictly, unless every latest predecessor sits on p2) and stays
   below the earliest successor (strictly, unless every earliest
   successor sits on p2). Summarising the four quantities once per node
   makes the per-candidate check O(1) instead of a pred/succ scan. *)
let move_window st v =
  let last_pred = ref (-1) and last_pred_proc = ref (-1) in
  for i = st.poff.(v) to st.poff.(v + 1) - 1 do
    let u = Array.unsafe_get st.ptgt i in
    let s = st.step_.(u) in
    if s > !last_pred then begin
      last_pred := s;
      last_pred_proc := st.proc_.(u)
    end
    else if s = !last_pred && st.proc_.(u) <> !last_pred_proc then last_pred_proc := -1
  done;
  let first_succ = ref st.num_steps_ and first_succ_proc = ref (-1) in
  for i = st.soff.(v) to st.soff.(v + 1) - 1 do
    let w = Array.unsafe_get st.stgt i in
    let s = st.step_.(w) in
    if s < !first_succ then begin
      first_succ := s;
      first_succ_proc := st.proc_.(w)
    end
    else if s = !first_succ && st.proc_.(w) <> !first_succ_proc then
      first_succ_proc := -1
  done;
  (!last_pred, !last_pred_proc, !first_succ, !first_succ_proc)

(* ------------------------------------------------------------------ *)
(* Read-only delta evaluation.                                         *)

let reset_scratch st =
  for k = 0 to st.touched_cells_len - 1 do
    let i = Array.unsafe_get st.touched_cells k in
    Array.unsafe_set st.d_work i 0;
    Array.unsafe_set st.d_send i 0;
    Array.unsafe_set st.d_recv i 0;
    Array.unsafe_set st.cell_mark i false
  done;
  st.touched_cells_len <- 0;
  for k = 0 to st.touched_steps_len - 1 do
    let s = Array.unsafe_get st.touched_steps k in
    Array.unsafe_set st.step_touched s false;
    (* The touched steps are exactly the resident row base's steps, so
       this also retires its per-step maxima (see delta_cost_row). *)
    Array.unsafe_set st.base_mark s false
  done;
  st.touched_steps_len <- 0;
  st.row_node <- -1

(* The accumulation helpers below run a dozen times per costed
   candidate, so their indexing is unsafe. Invariant: every (s, q)
   passed in satisfies 0 <= s < num_steps and 0 <= q < p — work cells
   come from the current/candidate assignment, and event phases are
   fn - 1 with fn >= 1 because a cross-processor consumer always sits in
   superstep >= 1 of a valid assignment. The scratch arrays have length
   num_steps * p, touched_steps/step_touched length num_steps (dedup
   bounds the append position). Only touched_cells can grow, and its
   append stays checked by the growth test. *)

(* Duplicate-free so reset_scratch clears each cell exactly once. *)
let push_cell st i =
  if not (Array.unsafe_get st.cell_mark i) then begin
    Array.unsafe_set st.cell_mark i true;
    if st.touched_cells_len = Array.length st.touched_cells then begin
      let bigger = Array.make (2 * st.touched_cells_len) 0 in
      Array.blit st.touched_cells 0 bigger 0 st.touched_cells_len;
      st.touched_cells <- bigger
    end;
    Array.unsafe_set st.touched_cells st.touched_cells_len i;
    st.touched_cells_len <- st.touched_cells_len + 1
  end

let touch_step st s =
  if not (Array.unsafe_get st.step_touched s) then begin
    Array.unsafe_set st.step_touched s true;
    Array.unsafe_set st.touched_steps st.touched_steps_len s;
    st.touched_steps_len <- st.touched_steps_len + 1
  end

let acc_work st s q d =
  let i = (s * st.p) + q in
  Array.unsafe_set st.d_work i (Array.unsafe_get st.d_work i + d);
  push_cell st i;
  touch_step st s

let acc_send st s q vol =
  let i = (s * st.p) + q in
  Array.unsafe_set st.d_send i (Array.unsafe_get st.d_send i + vol);
  push_cell st i;
  touch_step st s

let acc_recv st s q vol =
  let i = (s * st.p) + q in
  Array.unsafe_set st.d_recv i (Array.unsafe_get st.d_recv i + vol);
  push_cell st i;
  touch_step st s

let acc_comm st s ~src ~dst vol =
  acc_send st s src vol;
  acc_recv st s dst vol

(* Cost change of exactly the touched supersteps under the current
   scratch overlay. This loop dominates a rejected candidate's cost, so
   the indexing is unsafe: every touched step is in [0, num_steps) (it
   came from a work cell or an event phase of a valid assignment), the
   matrix rows have length p, and the scratch arrays have length
   num_steps * p. *)
let cost_of_touched st =
  let work_m = st.work_m in
  let send_m = st.send_m in
  let recv_m = st.recv_m in
  let cached = st.cost_c in
  let g = st.machine_.Machine.g and l = st.machine_.Machine.l in
  let delta = ref 0 in
  let work_max = ref 0 and comm_max = ref 0 in
  for k = 0 to st.touched_steps_len - 1 do
    let s = Array.unsafe_get st.touched_steps k in
    let off = s * st.p in
    let work_row = Array.unsafe_get work_m s in
    let send_row = Array.unsafe_get send_m s in
    let recv_row = Array.unsafe_get recv_m s in
    work_max := 0;
    comm_max := 0;
    for q = 0 to st.p - 1 do
      let w = Array.unsafe_get work_row q + Array.unsafe_get st.d_work (off + q) in
      if w > !work_max then work_max := w;
      let snd = Array.unsafe_get send_row q + Array.unsafe_get st.d_send (off + q) in
      let rcv = Array.unsafe_get recv_row q + Array.unsafe_get st.d_recv (off + q) in
      let h = if snd > rcv then snd else rcv in
      if h > !comm_max then comm_max := h
    done;
    (* inlined Bsp_cost.superstep_cost *)
    delta := !delta + !work_max + (g * !comm_max) + l - Array.unsafe_get cached s
  done;
  !delta

(* first_need(u, q) after the candidate reassignment of v (a successor
   of u) to (p2, s2), computed without mutating. The fn_count trick
   avoids the successor scan unless v is the unique minimiser on q. *)
let fn_after st u q v p2 s2 =
  let idx = (u * st.p) + q in
  let old_fn = st.first_need.(idx) in
  let without_v =
    if st.proc_.(v) <> q then old_fn
    else if st.step_.(v) > old_fn then old_fn
    else if st.fn_count.(idx) > 1 then old_fn
    else begin
      let m = ref no_need in
      for i = st.soff.(u) to st.soff.(u + 1) - 1 do
        let w = Array.unsafe_get st.stgt i in
        if w <> v && st.proc_.(w) = q && st.step_.(w) < !m then m := st.step_.(w)
      done;
      !m
    end
  in
  if p2 = q && s2 < without_v then s2 else without_v

(* Single-node moves reason about exactly one placement per node, so
   they are rejected once replicas exist; the replication phase runs
   after move convergence (DESIGN.md Section 5g) and never interleaves
   with moves. *)
let no_replicas st name =
  if st.rep_total > 0 then
    invalid_arg
      ("Assignment_state." ^ name
     ^ ": single-node moves are unavailable once the state holds replicas")

let delta_cost st v p2 s2 =
  no_replicas st "delta_cost";
  let p1 = st.proc_.(v) and s1 = st.step_.(v) in
  if p1 = p2 && s1 = s2 then 0
  else begin
    reset_scratch st;
    let wv = Dag.work st.dag v in
    acc_work st s1 p1 (-wv);
    acc_work st s2 p2 wv;
    (* Producer side of v: destinations and volumes depend on proc.(v);
       the first_need row of v itself is unaffected by the move. A pure
       superstep move (p2 = p1) leaves every producer event in place.
       For third-party destinations both the old and new event land in
       the same receive cell, so accumulate their net volume once. *)
    (if p2 <> p1 then
       let cnt = st.ev_cnt.(v) in
       if cnt > 0 then begin
         let cv = Dag.comm st.dag v in
         let lam1 = st.machine_.Machine.lambda.(p1) in
         let lam2 = st.machine_.Machine.lambda.(p2) in
         let base = v * st.p in
         (* ev_cnt bounds the live entries: stop after the last one
            instead of always scanning all p destinations. *)
         let seen = ref 0 in
         let q = ref 0 in
         while !seen < cnt do
           let fn = Array.unsafe_get st.first_need (base + !q) in
           if fn <> no_need then begin
             incr seen;
             let s = fn - 1 in
             if !q = p1 then
               (* previously local to v, now needs an event p2 -> p1 *)
               acc_comm st s ~src:p2 ~dst:p1 (cv * lam2.(!q))
             else if !q = p2 then
               (* the old event p1 -> p2 disappears (v becomes local) *)
               acc_comm st s ~src:p1 ~dst:p2 (-(cv * lam1.(!q)))
             else begin
               let vol1 = cv * lam1.(!q) and vol2 = cv * lam2.(!q) in
               acc_send st s p1 (-vol1);
               acc_send st s p2 vol2;
               if vol1 <> vol2 then acc_recv st s !q (vol2 - vol1)
             end
           end;
           incr q
         done
       end);
    (* Predecessors: only their events towards p1 and p2 can change.
       Explicit loops (rather than Array.iter with a local helper) keep
       this allocation-free — it runs for every costed candidate. A
       proc-change move decomposes into a pure removal on the p1 side
       (the minimum moves only when v is its unique attainer) and a pure
       addition on the p2 side (the minimum moves only when s2 beats
       it), both O(1) outside the rare unique-attainer rescan; only the
       same-processor superstep move needs the generic {!fn_after}. *)
    for k = st.poff.(v) to st.poff.(v + 1) - 1 do
      let u = Array.unsafe_get st.ptgt k in
      let src = st.proc_.(u) in
      if p2 = p1 then begin
        if p1 <> src then begin
          let old_fn = st.first_need.((u * st.p) + p1) in
          let new_fn = fn_after st u p1 v p2 s2 in
          if old_fn <> new_fn then begin
            let vol = Dag.comm st.dag u * st.machine_.Machine.lambda.(src).(p1) in
            if old_fn <> no_need then acc_comm st (old_fn - 1) ~src ~dst:p1 (-vol);
            if new_fn <> no_need then acc_comm st (new_fn - 1) ~src ~dst:p1 vol
          end
        end
      end
      else begin
        (if p1 <> src then
           let idx = (u * st.p) + p1 in
           let old_fn = Array.unsafe_get st.first_need idx in
           (* v is a successor of u on p1, so old_fn <= s1 < no_need. *)
           if s1 = old_fn && Array.unsafe_get st.fn_count idx = 1 then begin
             let m = ref no_need in
             for i = st.soff.(u) to st.soff.(u + 1) - 1 do
               let w = Array.unsafe_get st.stgt i in
               if w <> v && st.proc_.(w) = p1 && st.step_.(w) < !m then
                 m := st.step_.(w)
             done;
             if !m <> old_fn then begin
               let vol = Dag.comm st.dag u * st.machine_.Machine.lambda.(src).(p1) in
               acc_comm st (old_fn - 1) ~src ~dst:p1 (-vol);
               if !m <> no_need then acc_comm st (!m - 1) ~src ~dst:p1 vol
             end
           end);
        if p2 <> src then begin
          let old_fn = Array.unsafe_get st.first_need ((u * st.p) + p2) in
          if s2 < old_fn then begin
            let vol = Dag.comm st.dag u * st.machine_.Machine.lambda.(src).(p2) in
            if old_fn <> no_need then acc_comm st (old_fn - 1) ~src ~dst:p2 (-vol);
            (* a valid candidate puts cross-processor preds strictly
               before s2, so s2 >= 1 here *)
            acc_comm st (s2 - 1) ~src ~dst:p2 vol
          end
        end
      end
    done;
    cost_of_touched st
  end

(* ------------------------------------------------------------------ *)
(* Row evaluation: every target processor of one superstep at once.    *)

let push_undo st i kind amt =
  if st.undo_len = Array.length st.undo_cell then begin
    let grow a =
      let b = Array.make (2 * st.undo_len) 0 in
      Array.blit a 0 b 0 st.undo_len;
      b
    in
    st.undo_cell <- grow st.undo_cell;
    st.undo_kind <- grow st.undo_kind;
    st.undo_amt <- grow st.undo_amt
  end;
  Array.unsafe_set st.undo_cell st.undo_len i;
  Array.unsafe_set st.undo_kind st.undo_len kind;
  Array.unsafe_set st.undo_amt st.undo_len amt;
  st.undo_len <- st.undo_len + 1

(* Mark superstep s as modified by the current column and seed its
   running maxima: from the base scan when the removal base touched it,
   from the cost table's cached maxima otherwise. *)
let col_touch st s =
  if not (Array.unsafe_get st.col_mark s) then begin
    Array.unsafe_set st.col_mark s true;
    Array.unsafe_set st.col_steps st.col_steps_len s;
    st.col_steps_len <- st.col_steps_len + 1;
    if Array.unsafe_get st.base_mark s then begin
      Array.unsafe_set st.col_wm s (Array.unsafe_get st.base_wm s);
      Array.unsafe_set st.col_hm s (Array.unsafe_get st.base_hm s)
    end
    else begin
      Array.unsafe_set st.col_wm s (Array.unsafe_get st.wmax_c s);
      Array.unsafe_set st.col_hm s (Array.unsafe_get st.hmax_c s)
    end;
    Array.unsafe_set st.col_neg s false
  end

(* The column accumulators bypass the touched-cell bookkeeping entirely:
   the undo log alone restores the overlay, and the per-step maxima are
   maintained on the fly. A non-negative amount can only raise a cell
   above the base, so the running maximum absorbs the cell's new value;
   a negative amount (a pred-event retraction) flags the step for a full
   rescan at costing time. Duplicate cell updates within one column are
   monotone, so processing intermediate values is harmless. *)
let acc_work_u st s q d =
  let i = (s * st.p) + q in
  Array.unsafe_set st.d_work i (Array.unsafe_get st.d_work i + d);
  push_undo st i 0 d;
  col_touch st s;
  if d < 0 then Array.unsafe_set st.col_neg s true
  else begin
    let w = Array.unsafe_get (Array.unsafe_get st.work_m s) q + Array.unsafe_get st.d_work i in
    if w > Array.unsafe_get st.col_wm s then Array.unsafe_set st.col_wm s w
  end

let acc_send_u st s q vol =
  let i = (s * st.p) + q in
  Array.unsafe_set st.d_send i (Array.unsafe_get st.d_send i + vol);
  push_undo st i 1 vol;
  col_touch st s;
  if vol < 0 then Array.unsafe_set st.col_neg s true
  else begin
    let snd = Array.unsafe_get (Array.unsafe_get st.send_m s) q + Array.unsafe_get st.d_send i in
    if snd > Array.unsafe_get st.col_hm s then Array.unsafe_set st.col_hm s snd
  end

let acc_recv_u st s q vol =
  let i = (s * st.p) + q in
  Array.unsafe_set st.d_recv i (Array.unsafe_get st.d_recv i + vol);
  push_undo st i 2 vol;
  col_touch st s;
  if vol < 0 then Array.unsafe_set st.col_neg s true
  else begin
    let rcv = Array.unsafe_get (Array.unsafe_get st.recv_m s) q + Array.unsafe_get st.d_recv i in
    if rcv > Array.unsafe_get st.col_hm s then Array.unsafe_set st.col_hm s rcv
  end

let acc_comm_u st s ~src ~dst vol =
  acc_send_u st s src vol;
  acc_recv_u st s dst vol

(* Retract the logged additions; cells and steps stay in the touched
   lists with zero adjustments, which only costs the occasional stale
   step rescan within the same row. *)
let undo_additions st =
  for j = st.undo_len - 1 downto 0 do
    let i = Array.unsafe_get st.undo_cell j in
    let amt = Array.unsafe_get st.undo_amt j in
    match Array.unsafe_get st.undo_kind j with
    | 0 -> Array.unsafe_set st.d_work i (Array.unsafe_get st.d_work i - amt)
    | 1 -> Array.unsafe_set st.d_send i (Array.unsafe_get st.d_send i - amt)
    | _ -> Array.unsafe_set st.d_recv i (Array.unsafe_get st.d_recv i - amt)
  done;
  st.undo_len <- 0

(* Work and h-relation maxima of one superstep under the current
   scratch overlay (same unsafe-indexing invariant as
   {!cost_of_touched}). *)
let overlay_step_maxima st s =
  let off = s * st.p in
  let work_row = Array.unsafe_get st.work_m s in
  let send_row = Array.unsafe_get st.send_m s in
  let recv_row = Array.unsafe_get st.recv_m s in
  let wm = ref 0 and hm = ref 0 in
  for q = 0 to st.p - 1 do
    let w = Array.unsafe_get work_row q + Array.unsafe_get st.d_work (off + q) in
    if w > !wm then wm := w;
    let snd = Array.unsafe_get send_row q + Array.unsafe_get st.d_send (off + q) in
    let rcv = Array.unsafe_get recv_row q + Array.unsafe_get st.d_recv (off + q) in
    let h = if snd > rcv then snd else rcv in
    if h > !hm then hm := h
  done;
  (!wm, !hm)

(* Deltas of a whole candidate row — v to (p2, s2) for every p2 — as
   one shared removal base (v leaves (p1, s1): its work cell, its
   producer events, its predecessors' events towards p1) plus a per-p2
   addition overlay retracted through the undo log. The removal side is
   what a pairwise evaluation would recompute p times over. The caller
   must have established that every (p2, s2) in the row is a valid
   move; out.(p1) is 0 when s2 = s1 (the identity is not a move).

   Columns are costed incrementally: the base supersteps are scanned
   once for their maxima and cost, and each column then only combines
   its own addition cells against the base (or cached) maxima via the
   undo log. Addition amounts are non-negative except the retraction of
   a predecessor's pre-existing event, so a modified cell can only raise
   the step maxima — steps that saw a negative amount are flagged and
   rescanned in full. *)
let build_row_base st v =
  let p1 = st.proc_.(v) and s1 = st.step_.(v) in
  reset_scratch st;
  st.undo_len <- 0;
  let wv = Dag.work st.dag v in
  let cv = Dag.comm st.dag v in
  let base = v * st.p in
  let lam1 = st.machine_.Machine.lambda.(p1) in
  acc_work st s1 p1 (-wv);
  let cnt = st.ev_cnt.(v) in
  (* The producer's live events, recorded (destination, phase) for the
     columns while their removal is accumulated. *)
  (if cnt > 0 then begin
     let seen = ref 0 in
     let q = ref 0 in
     while !seen < cnt do
       let fn = Array.unsafe_get st.first_need (base + !q) in
       if fn <> no_need then begin
         Array.unsafe_set st.ev_q !seen !q;
         Array.unsafe_set st.ev_ph !seen (fn - 1);
         incr seen;
         if !q <> p1 then acc_comm st (fn - 1) ~src:p1 ~dst:!q (-(cv * lam1.(!q)))
       end;
       incr q
     done
   end);
  let pbase = st.poff.(v) in
  let npred = st.poff.(v + 1) - pbase in
  for k = 0 to npred - 1 do
    let u = Array.unsafe_get st.ptgt (pbase + k) in
    let src = st.proc_.(u) in
    st.pred_src.(k) <- src;
    st.pred_comm.(k) <- Dag.comm st.dag u;
    st.pred_fn_base.(k) <- u * st.p;
    st.pred_lam.(k) <- st.machine_.Machine.lambda.(src);
    st.pred_without.(k) <-
      (* first_need of u towards p1 once v has left; no_need when p1 is
         u's own processor (no event either way — the addition loop
         skips that case). *)
      (if p1 = src then no_need
       else begin
         let idx = (u * st.p) + p1 in
         let old_fn = Array.unsafe_get st.first_need idx in
         if s1 = old_fn && Array.unsafe_get st.fn_count idx = 1 then begin
           let m = ref no_need in
           for i = st.soff.(u) to st.soff.(u + 1) - 1 do
             let w = Array.unsafe_get st.stgt i in
             if w <> v && st.proc_.(w) = p1 && st.step_.(w) < !m then
               m := st.step_.(w)
           done;
           if !m <> old_fn then begin
             let vol = Dag.comm st.dag u * st.machine_.Machine.lambda.(src).(p1) in
             acc_comm st (old_fn - 1) ~src ~dst:p1 (-vol);
             if !m <> no_need then acc_comm st (!m - 1) ~src ~dst:p1 vol
           end;
           !m
         end
         else old_fn
       end)
  done;
  (* Maxima and cost of the base supersteps under the removal overlay,
     and the cost change the base alone contributes. The touched lists
     hold exactly the base cells/steps until the next evaluation: the
     column accumulators bypass them, so the base (and its marks, which
     the next reset_scratch retires) stays resident across all superstep
     rows of v. *)
  let g = st.machine_.Machine.g and l = st.machine_.Machine.l in
  let base_delta = ref 0 in
  for k = 0 to st.touched_steps_len - 1 do
    let s = Array.unsafe_get st.touched_steps k in
    let wm, hm = overlay_step_maxima st s in
    let c = wm + (g * hm) + l in
    Array.unsafe_set st.base_mark s true;
    Array.unsafe_set st.base_wm s wm;
    Array.unsafe_set st.base_hm s hm;
    Array.unsafe_set st.base_cost s c;
    base_delta := !base_delta + c - Array.unsafe_get st.cost_c s
  done;
  st.row_node <- v;
  st.row_base_delta <- !base_delta;
  st.row_cnt <- cnt;
  st.row_wv <- wv;
  st.row_cv <- cv;
  st.row_npred <- npred

(* One addition column against the resident removal base of v: v lands
   on (p2, s2), with p1 its current processor. Leaves col_steps_len at 0
   and the scratch back at the base overlay. *)
let eval_column st ~p1 ~p2 ~s2 =
  let cnt = st.row_cnt and wv = st.row_wv and cv = st.row_cv in
  let npred = st.row_npred in
  let g = st.machine_.Machine.g and l = st.machine_.Machine.l in
  let cached = st.cost_c in
  acc_work_u st s2 p2 wv;
  (if cnt > 0 then begin
     let lam2 = st.machine_.Machine.lambda.(p2) in
     for j = 0 to cnt - 1 do
       let q = Array.unsafe_get st.ev_q j in
       if q <> p2 then
         acc_comm_u st (Array.unsafe_get st.ev_ph j) ~src:p2 ~dst:q
           (cv * Array.unsafe_get lam2 q)
     done
   end);
  for k = 0 to npred - 1 do
    let src = Array.unsafe_get st.pred_src k in
    if p2 <> src then begin
      let without =
        if p2 = p1 then Array.unsafe_get st.pred_without k
        else Array.unsafe_get st.first_need (Array.unsafe_get st.pred_fn_base k + p2)
      in
      if s2 < without then begin
        let vol =
          Array.unsafe_get st.pred_comm k
          * Array.unsafe_get (Array.unsafe_get st.pred_lam k) p2
        in
        if without <> no_need then acc_comm_u st (without - 1) ~src ~dst:p2 (-vol);
        (* a valid candidate puts cross-processor preds strictly
           before s2, so s2 >= 1 here *)
        acc_comm_u st (s2 - 1) ~src ~dst:p2 vol
      end
    end
  done;
  (* The accumulators above maintained the per-step running maxima; sum
     each modified step's new cost against its base (or cached) cost,
     rescanning in full only the steps flagged negative. *)
  let delta = ref st.row_base_delta in
  for k = 0 to st.col_steps_len - 1 do
    let s = Array.unsafe_get st.col_steps k in
    Array.unsafe_set st.col_mark s false;
    let before =
      if Array.unsafe_get st.base_mark s then Array.unsafe_get st.base_cost s
      else Array.unsafe_get cached s
    in
    if Array.unsafe_get st.col_neg s then begin
      let wm, hm = overlay_step_maxima st s in
      delta := !delta + wm + (g * hm) + l - before
    end
    else
      delta :=
        !delta
        + Array.unsafe_get st.col_wm s
        + (g * Array.unsafe_get st.col_hm s)
        + l - before
  done;
  st.col_steps_len <- 0;
  undo_additions st;
  !delta

let delta_cost_row st v ~s2 out =
  no_replicas st "delta_cost_row";
  if st.row_node <> v then build_row_base st v;
  let p1 = st.proc_.(v) and s1 = st.step_.(v) in
  for p2 = 0 to st.p - 1 do
    if p2 = p1 && s2 = s1 then out.(p2) <- 0
    else out.(p2) <- eval_column st ~p1 ~p2 ~s2
  done

(* Pairwise evaluation through the same machinery: reuses the resident
   removal base of v when one is live, which makes isolated candidates
   (the boundary supersteps of a node's validity window) share the base
   built for its full rows. *)
let delta_cost_cached st v p2 s2 =
  no_replicas st "delta_cost_cached";
  let p1 = st.proc_.(v) and s1 = st.step_.(v) in
  if p1 = p2 && s1 = s2 then 0
  else begin
    if st.row_node <> v then build_row_base st v;
    eval_column st ~p1 ~p2 ~s2
  end

let iter_last_touched_steps st f =
  for k = 0 to st.touched_steps_len - 1 do
    f st.touched_steps.(k)
  done

(* ------------------------------------------------------------------ *)
(* Mutation.                                                           *)

(* Incremental first_need/fn_count update of u towards q when v (a
   successor of u) moves from (p1, s1) to (p2, s2); proc_/step_ of v
   must already hold the new values. Falls back to a successor rescan
   only when the unique minimiser left q. *)
let update_fn st u q ~p1 ~s1 ~p2 ~s2 =
  let idx = (u * st.p) + q in
  let old_fn = st.first_need.(idx) in
  let removed = q = p1 and added = q = p2 in
  if removed && added then begin
    (* v stays on q, moving s1 -> s2 (old_fn <= s1 by definition). *)
    if s2 < old_fn then begin
      st.first_need.(idx) <- s2;
      st.fn_count.(idx) <- 1
    end
    else if s2 = old_fn then begin
      if s1 <> old_fn then st.fn_count.(idx) <- st.fn_count.(idx) + 1
    end
    else if s1 = old_fn then begin
      if st.fn_count.(idx) > 1 then st.fn_count.(idx) <- st.fn_count.(idx) - 1
      else rescan_fn st u q
    end
  end
  else if removed then begin
    if s1 = old_fn then begin
      if st.fn_count.(idx) > 1 then st.fn_count.(idx) <- st.fn_count.(idx) - 1
      else rescan_fn st u q
    end
  end
  else if added then begin
    if s2 < old_fn then begin
      (* old_fn = no_need means q had no event from u before this move. *)
      if old_fn = no_need then st.ev_cnt.(u) <- st.ev_cnt.(u) + 1;
      st.first_need.(idx) <- s2;
      st.fn_count.(idx) <- 1
    end
    else if s2 = old_fn then st.fn_count.(idx) <- st.fn_count.(idx) + 1
  end

(* Apply the move unconditionally (the caller compares delta_cost and
   only applies accepted moves; the state remains a pure function of the
   assignment, so any move can still be undone by its inverse). *)
let apply_move st v p2 s2 =
  no_replicas st "apply_move";
  st.row_node <- -1;
  let p1 = st.proc_.(v) and s1 = st.step_.(v) in
  (* Producer side of v itself: destinations and volumes depend on
     proc.(v), so retract everything and re-add after the update. The
     first_need entries of v do not change (its successors stay put). *)
  source_comm_all st v (-1);
  (* Predecessors: only their events towards p1 and p2 can change. *)
  for i = st.poff.(v) to st.poff.(v + 1) - 1 do
    let u = Array.unsafe_get st.ptgt i in
    source_comm_one st u p1 (-1);
    if p2 <> p1 then source_comm_one st u p2 (-1)
  done;
  Cost_table.add_work st.table ~step:s1 ~proc:p1 (-Dag.work st.dag v);
  Cost_table.add_work st.table ~step:s2 ~proc:p2 (Dag.work st.dag v);
  st.proc_.(v) <- p2;
  st.step_.(v) <- s2;
  st.placed_.((v * st.p) + p1) <- false;
  st.placed_.((v * st.p) + p2) <- true;
  for i = st.poff.(v) to st.poff.(v + 1) - 1 do
    let u = Array.unsafe_get st.ptgt i in
    update_fn st u p1 ~p1 ~s1 ~p2 ~s2;
    if p2 <> p1 then update_fn st u p2 ~p1 ~s1 ~p2 ~s2;
    source_comm_one st u p1 1;
    if p2 <> p1 then source_comm_one st u p2 1
  done;
  source_comm_all st v 1;
  Cost_table.refresh st.table

(* ------------------------------------------------------------------ *)
(* Replication moves (DESIGN.md Section 5g). A replica of v on q runs
   in v's own superstep on the extra processor: it duplicates v's work
   there, turns v local to q's consumers, and must receive every
   predecessor input q does not already hold. *)

let num_replicas_total st = st.rep_total
let node_replicas st v = st.reps_.(v)

(* Live event traffic of one producer: the destinations it currently
   ships to and each event's weighted volume. This is the per-event
   granularity of the profiler's traffic matrix, and it is how the
   search seeds replication candidates — replicating u onto a
   destination it feeds removes that event outright. *)
let iter_event_destinations st u f =
  let base = u * st.p in
  for q = 0 to st.p - 1 do
    if st.first_need.(base + q) <> no_need && not st.placed_.(base + q) then
      f q (Dag.comm st.dag u * Machine.lambda st.machine_ (nearest_src st u q) q)
  done

(* A replica of v may land on q iff nothing of v sits there yet and
   every predecessor input is available: computed on q itself (any
   placement), or computed strictly earlier so a lazy event can deliver
   it by phase step(v) - 1. *)
let valid_replicate st v q =
  q >= 0 && q < st.p
  && not st.placed_.((v * st.p) + q)
  &&
  let s = st.step_.(v) in
  let ok = ref true in
  let i = ref st.poff.(v) and stop = st.poff.(v + 1) in
  while !ok && !i < stop do
    let u = Array.unsafe_get st.ptgt !i in
    if not (st.placed_.((u * st.p) + q) || st.step_.(u) < s) then ok := false;
    incr i
  done;
  !ok

(* A replica of v on q may be dropped iff q does not consume v in v's
   own superstep: the replacement event lands at phase fn - 1 >= step(v)
   and is therefore deliverable from any remaining placement. *)
let valid_drop_replica st v q =
  List.mem q st.reps_.(v)
  &&
  let fn = st.first_need.((v * st.p) + q) in
  fn = no_need || fn > st.step_.(v)

(* Cost change of placing a replica of v on q; requires valid_replicate.
   Three effects: v's work is duplicated in (step v, q); v's producer
   events reroute — the event towards q disappears (q computes v
   itself) and any destination for which q becomes the nearest
   placement switches source; and every predecessor not placed on q
   must feed the replica, possibly earlier than its current first need
   there. Uses the shared delta scratch, so it invalidates any resident
   row base and must not interleave with row evaluations. *)
let delta_cost_replicate st v q =
  reset_scratch st;
  st.row_node <- -1;
  let s = st.step_.(v) in
  let cv = Dag.comm st.dag v in
  let lam = st.machine_.Machine.lambda in
  let base = v * st.p in
  acc_work st s q (Dag.work st.dag v);
  for r = 0 to st.p - 1 do
    let fn = Array.unsafe_get st.first_need (base + r) in
    if fn <> no_need && not st.placed_.(base + r) then begin
      let cur = nearest_src st v r in
      if r = q then acc_comm st (fn - 1) ~src:cur ~dst:q (-(cv * lam.(cur).(q)))
      else if src_with_replica st v ~cand:q r ~cur <> cur then begin
        acc_comm st (fn - 1) ~src:cur ~dst:r (-(cv * lam.(cur).(r)));
        acc_comm st (fn - 1) ~src:q ~dst:r (cv * lam.(q).(r))
      end
    end
  done;
  for k = st.poff.(v) to st.poff.(v + 1) - 1 do
    let u = Array.unsafe_get st.ptgt k in
    if not st.placed_.((u * st.p) + q) then begin
      let old_fn = Array.unsafe_get st.first_need ((u * st.p) + q) in
      if s < old_fn then begin
        let src = nearest_src st u q in
        let vol = Dag.comm st.dag u * lam.(src).(q) in
        if old_fn <> no_need then acc_comm st (old_fn - 1) ~src ~dst:q (-vol);
        (* valid_replicate guarantees step(u) < s for predecessors not
           placed on q, so s >= 1 here *)
        acc_comm st (s - 1) ~src ~dst:q vol
      end
    end
  done;
  cost_of_touched st

(* Cost change of dropping the replica of v on q; requires
   valid_drop_replica. Mirror image of delta_cost_replicate: q
   re-acquires an event for its (strictly later) consumers of v,
   destinations fed from q reroute to the next-nearest placement, and
   predecessor events pinned to the replica's consumption may move
   later or vanish. *)
let delta_cost_drop_replica st v q =
  reset_scratch st;
  st.row_node <- -1;
  let s = st.step_.(v) in
  let cv = Dag.comm st.dag v in
  let lam = st.machine_.Machine.lambda in
  let base = v * st.p in
  acc_work st s q (-(Dag.work st.dag v));
  for r = 0 to st.p - 1 do
    let fn = Array.unsafe_get st.first_need (base + r) in
    if fn <> no_need then begin
      if r = q then begin
        let src = nearest_src_without st v q ~excl:q in
        acc_comm st (fn - 1) ~src ~dst:q (cv * lam.(src).(q))
      end
      else if not st.placed_.(base + r) then begin
        let cur = nearest_src st v r in
        if cur = q then begin
          let src = nearest_src_without st v r ~excl:q in
          acc_comm st (fn - 1) ~src:q ~dst:r (-(cv * lam.(q).(r)));
          acc_comm st (fn - 1) ~src ~dst:r (cv * lam.(src).(r))
        end
      end
    end
  done;
  for k = st.poff.(v) to st.poff.(v + 1) - 1 do
    let u = Array.unsafe_get st.ptgt k in
    if not st.placed_.((u * st.p) + q) then begin
      let idx = (u * st.p) + q in
      let old_fn = Array.unsafe_get st.first_need idx in
      (* the replica consumes u at step s, so old_fn <= s; the event
         moves only when the replica was the unique attainer *)
      if s = old_fn && Array.unsafe_get st.fn_count idx = 1 then begin
        let m = ref no_need in
        for i = st.soff.(u) to st.soff.(u + 1) - 1 do
          let w = Array.unsafe_get st.stgt i in
          if w <> v && st.placed_.((w * st.p) + q) && st.step_.(w) < !m then
            m := st.step_.(w)
        done;
        if !m <> old_fn then begin
          let src = nearest_src st u q in
          let vol = Dag.comm st.dag u * lam.(src).(q) in
          acc_comm st (old_fn - 1) ~src ~dst:q (-vol);
          if !m <> no_need then acc_comm st (!m - 1) ~src ~dst:q vol
        end
      end
    end
  done;
  cost_of_touched st

let rec insert_sorted q = function
  | [] -> [ q ]
  | r :: rest as l -> if q < r then q :: l else r :: insert_sorted q rest

(* Apply the replication unconditionally (same contract as apply_move:
   the state stays a pure function of the placement multi-assignment).
   Events are retracted against the pre-move state, the placement and
   first_need bookkeeping updated, and the events re-added against the
   post-move state; only v's own events and the predecessors' events
   towards q can change, everything else is untouched. *)
let apply_replicate st v q =
  st.row_node <- -1;
  let s = st.step_.(v) in
  source_comm_all_r st v (-1);
  let pbase = st.poff.(v) and pstop = st.poff.(v + 1) in
  for i = pbase to pstop - 1 do
    source_comm_one_r st (Array.unsafe_get st.ptgt i) q (-1)
  done;
  Cost_table.add_work st.table ~step:s ~proc:q (Dag.work st.dag v);
  st.placed_.((v * st.p) + q) <- true;
  st.reps_.(v) <- insert_sorted q st.reps_.(v);
  st.rep_total <- st.rep_total + 1;
  st.rep_nodes <- v :: st.rep_nodes;
  for i = pbase to pstop - 1 do
    let u = Array.unsafe_get st.ptgt i in
    let idx = (u * st.p) + q in
    let old_fn = st.first_need.(idx) in
    if s < old_fn then begin
      if old_fn = no_need then st.ev_cnt.(u) <- st.ev_cnt.(u) + 1;
      st.first_need.(idx) <- s;
      st.fn_count.(idx) <- 1
    end
    else if s = old_fn then st.fn_count.(idx) <- st.fn_count.(idx) + 1;
    source_comm_one_r st u q 1
  done;
  source_comm_all_r st v 1;
  Cost_table.refresh st.table

let apply_drop_replica st v q =
  st.row_node <- -1;
  let s = st.step_.(v) in
  source_comm_all_r st v (-1);
  let pbase = st.poff.(v) and pstop = st.poff.(v + 1) in
  for i = pbase to pstop - 1 do
    source_comm_one_r st (Array.unsafe_get st.ptgt i) q (-1)
  done;
  Cost_table.add_work st.table ~step:s ~proc:q (-(Dag.work st.dag v));
  st.placed_.((v * st.p) + q) <- false;
  st.reps_.(v) <- List.filter (fun r -> r <> q) st.reps_.(v);
  st.rep_total <- st.rep_total - 1;
  (* rep_nodes keeps v: release tolerates duplicates and empty lists *)
  for i = pbase to pstop - 1 do
    let u = Array.unsafe_get st.ptgt i in
    let idx = (u * st.p) + q in
    if s = st.first_need.(idx) then begin
      if st.fn_count.(idx) > 1 then st.fn_count.(idx) <- st.fn_count.(idx) - 1
      else rescan_fn_r st u q (* v's placed bit is already clear *)
    end;
    source_comm_one_r st u q 1
  done;
  source_comm_all_r st v 1;
  Cost_table.refresh st.table

let snapshot st =
  if st.rep_total = 0 then Schedule.of_assignment st.dag ~proc:st.proc_ ~step:st.step_
  else begin
    let replicas = ref [] in
    for v = 0 to Dag.n st.dag - 1 do
      List.iter (fun q -> replicas := (v, q, st.step_.(v)) :: !replicas) st.reps_.(v)
    done;
    Schedule.of_assignment_replicated st.machine_ st.dag ~proc:st.proc_
      ~step:st.step_ ~replicas:!replicas
  end

let assignment st = (Array.copy st.proc_, Array.copy st.step_)

let check_consistent st =
  Cost_table.assert_consistent st.table;
  let n = Dag.n st.dag in
  let reps_seen = ref 0 in
  for v = 0 to n - 1 do
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) -> a < b && sorted rest
    in
    if not (sorted st.reps_.(v)) then failwith "Assignment_state: reps_ not sorted";
    reps_seen := !reps_seen + List.length st.reps_.(v);
    for q = 0 to st.p - 1 do
      let expect = q = st.proc_.(v) || List.mem q st.reps_.(v) in
      if st.placed_.((v * st.p) + q) <> expect then
        failwith "Assignment_state: stale placed_"
    done
  done;
  if !reps_seen <> st.rep_total then failwith "Assignment_state: stale rep_total";
  for u = 0 to n - 1 do
    let base = u * st.p in
    let live = ref 0 in
    for q = 0 to st.p - 1 do
      let m = ref no_need and c = ref 0 in
      Dag.iter_succ st.dag u (fun w ->
          if st.placed_.((w * st.p) + q) then begin
            let s = st.step_.(w) in
            if s < !m then begin
              m := s;
              c := 1
            end
            else if s = !m then incr c
          end);
      if st.first_need.(base + q) <> !m then
        failwith "Assignment_state: stale first_need";
      if st.fn_count.(base + q) <> !c then failwith "Assignment_state: stale fn_count";
      if !m <> no_need then incr live
    done;
    if st.ev_cnt.(u) <> !live then failwith "Assignment_state: stale ev_cnt"
  done

(* Park the state on the calling domain's pool for reuse by a later
   {!init}. Restores the pooled-array invariant first: retract any
   overlay additions and zero the delta scratch (between public calls
   the undo log and column list are already empty — the loops below are
   defensive no-ops then), and zero the cost-table cells. Never-released
   states are simply collected by the GC; releasing is an optimisation,
   not an obligation. *)
let release st =
  undo_additions st;
  for k = 0 to st.col_steps_len - 1 do
    st.col_mark.(st.col_steps.(k)) <- false
  done;
  st.col_steps_len <- 0;
  reset_scratch st;
  (* Restore the pooled all-false/all-[] invariant of the replication
     arrays: primary bits for every node, replica bits and lists via
     rep_nodes (idempotent across its duplicates). *)
  for v = 0 to Dag.n st.dag - 1 do
    st.placed_.((v * st.p) + st.proc_.(v)) <- false
  done;
  List.iter
    (fun v ->
      List.iter (fun q -> st.placed_.((v * st.p) + q) <- false) st.reps_.(v);
      st.reps_.(v) <- [])
    st.rep_nodes;
  st.rep_nodes <- [];
  st.rep_total <- 0;
  Cost_table.clear st.table;
  let pool = Domain.DLS.get pool_key in
  if List.length !pool < max_pooled then pool := st :: !pool

(* ------------------------------------------------------------------ *)
(* Read-only scan clones (DESIGN.md Section 5j).

   The sharded hill climber evaluates candidate moves on several
   domains at once against one shared state. The delta entry points
   only ever mutate the per-evaluation scratch — the assignment,
   first_need/fn_count/ev_cnt tables, cost table and its cached maxima
   are read-only until a move is applied — so a clone that shares every
   base field and owns a private copy of the scratch arrays is
   race-free as long as exactly one domain uses it at a time and nobody
   applies moves through it. Clone scratch comes from its own
   per-domain pool: it must never pass through {!release}, which would
   clear (and re-pool) the shared cost table. *)

let clone_pool_key : t list ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref [])

let clone_for_scan st =
  let sp = st.num_steps_ * st.p in
  let steps1 = max st.num_steps_ 1 in
  let max_in = Array.length st.pred_src in
  let pool = Domain.DLS.get clone_pool_key in
  let pooled =
    match !pool with
    | [] -> None
    | o :: rest ->
      pool := rest;
      Some o
  in
  let gi get len =
    match pooled with
    | Some o when Array.length (get o) >= len -> get o
    | _ -> Array.make (max len 1) 0
  in
  let gb get len =
    match pooled with
    | Some o when Array.length (get o) >= len -> get o
    | _ -> Array.make (max len 1) false
  in
  {
    st with
    d_work = gi (fun o -> o.d_work) sp;
    d_send = gi (fun o -> o.d_send) sp;
    d_recv = gi (fun o -> o.d_recv) sp;
    cell_mark = gb (fun o -> o.cell_mark) sp;
    touched_cells = gi (fun o -> o.touched_cells) 64;
    touched_cells_len = 0;
    touched_steps = gi (fun o -> o.touched_steps) steps1;
    touched_steps_len = 0;
    step_touched = gb (fun o -> o.step_touched) steps1;
    pred_without = gi (fun o -> o.pred_without) max_in;
    undo_cell = gi (fun o -> o.undo_cell) 16;
    undo_kind = gi (fun o -> o.undo_kind) 16;
    undo_amt = gi (fun o -> o.undo_amt) 16;
    undo_len = 0;
    ev_q = gi (fun o -> o.ev_q) st.p;
    ev_ph = gi (fun o -> o.ev_ph) st.p;
    pred_src = gi (fun o -> o.pred_src) max_in;
    pred_comm = gi (fun o -> o.pred_comm) max_in;
    pred_fn_base = gi (fun o -> o.pred_fn_base) max_in;
    pred_lam =
      (match pooled with
      | Some o when Array.length o.pred_lam >= max_in -> o.pred_lam
      | _ -> Array.make (max max_in 1) [||]);
    row_node = -1;
    row_base_delta = 0;
    row_cnt = 0;
    row_wv = 0;
    row_cv = 0;
    row_npred = 0;
    base_mark = gb (fun o -> o.base_mark) steps1;
    base_wm = gi (fun o -> o.base_wm) steps1;
    base_hm = gi (fun o -> o.base_hm) steps1;
    base_cost = gi (fun o -> o.base_cost) steps1;
    col_mark = gb (fun o -> o.col_mark) steps1;
    col_steps = gi (fun o -> o.col_steps) steps1;
    col_steps_len = 0;
    col_wm = gi (fun o -> o.col_wm) steps1;
    col_hm = gi (fun o -> o.col_hm) steps1;
    col_neg = gb (fun o -> o.col_neg) steps1;
  }

let release_clone st =
  undo_additions st;
  for k = 0 to st.col_steps_len - 1 do
    st.col_mark.(st.col_steps.(k)) <- false
  done;
  st.col_steps_len <- 0;
  reset_scratch st;
  let pool = Domain.DLS.get clone_pool_key in
  if List.length !pool < max_pooled then pool := st :: !pool
