type stats = {
  moves_applied : int;
  moves_evaluated : int;
  initial_cost : int;
  final_cost : int;
}

type pair = {
  node : int;
  src : int;
  dst : int;
  vol : int;  (* c(node) * lambda(src, dst) *)
  lo : int;  (* earliest usable phase: tau(node) *)
  hi : int;  (* latest usable phase: first_need - 1 *)
  mutable cur : int;
}

(* Flat [n * p] tables instead of (node, processor)-tuple-keyed
   hashtables: tuple keys allocate a box per probe and hash it, which in
   the parallel sweep turns this pre-pass into minor-heap churn. The
   dense table is at most n * p ints — small at the p <= 16 of the
   experiments — and doubles as a deterministic emission order. *)
let no_need = max_int

let required_pairs machine (sched : Schedule.t) =
  let dag = sched.Schedule.dag in
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let proc = sched.Schedule.proc and step = sched.Schedule.step in
  (* first_need.(u * p + dst): earliest superstep a successor of u on
     dst needs the value of u; entries only for dst <> proc.(u). *)
  let first_need = Array.make (max (n * p) 1) no_need in
  for v = 0 to n - 1 do
    Dag.iter_pred dag v (fun u ->
        if proc.(u) <> proc.(v) then begin
          let idx = (u * p) + proc.(v) in
          if step.(v) < first_need.(idx) then first_need.(idx) <- step.(v)
        end)
  done;
  (* Start each pair from the input schedule's direct event when one fits
     the window; otherwise from the lazy position (window end). *)
  let initial = Array.make (max (n * p) 1) no_need in
  List.iter
    (fun (e : Schedule.comm_event) ->
      if e.src = proc.(e.node) then begin
        let idx = (e.node * p) + e.dst in
        if e.step < initial.(idx) then initial.(idx) <- e.step
      end)
    sched.Schedule.comm;
  (* Emitting in ascending (node, dst) order produces the sorted pair
     order the scan relies on directly — no sort needed. *)
  let acc = ref [] in
  for u = n - 1 downto 0 do
    let base = u * p in
    for dst = p - 1 downto 0 do
      let s0 = first_need.(base + dst) in
      if s0 <> no_need then begin
        let src = proc.(u) in
        let lo = step.(u) and hi = s0 - 1 in
        let cur =
          let s = initial.(base + dst) in
          if s >= lo && s <= hi then s else hi
        in
        acc :=
          {
            node = u;
            src;
            dst;
            vol = Dag.comm dag u * Machine.lambda machine src dst;
            lo;
            hi;
            cur;
          }
          :: !acc
      end
    done
  done;
  !acc

let improve ?(budget = Budget.unlimited ()) machine (sched : Schedule.t) =
  let dag = sched.Schedule.dag in
  let num_steps = Schedule.num_supersteps sched in
  (* required_pairs emits in ascending (node, dst) order already. *)
  let pairs = Array.of_list (required_pairs machine sched) in
  let table = Cost_table.create machine ~num_steps in
  for v = 0 to Dag.n dag - 1 do
    Cost_table.add_work table ~step:sched.Schedule.step.(v)
      ~proc:sched.Schedule.proc.(v) (Dag.work dag v)
  done;
  let place pair sign =
    Cost_table.add_send table ~step:pair.cur ~proc:pair.src (sign * pair.vol);
    Cost_table.add_recv table ~step:pair.cur ~proc:pair.dst (sign * pair.vol)
  in
  Array.iter (fun pair -> place pair 1) pairs;
  Cost_table.refresh table;
  let to_schedule () =
    let comm =
      Array.to_list pairs
      |> List.map (fun pair ->
             { Schedule.node = pair.node; src = pair.src; dst = pair.dst; step = pair.cur })
    in
    Schedule.make dag ~proc:sched.Schedule.proc ~step:sched.Schedule.step ~comm
  in
  let initial_cost = Cost_table.total table in
  (* Read-only delta of moving an event to phase [s]: only the source's
     send column and the destination's receive column of the two touched
     phases change, so re-derive those two superstep maxima against the
     cached per-step costs without mutating the table. *)
  let p = machine.Machine.p in
  let step_cost_with ~s ~src ~dst dvol =
    let work_m = Cost_table.work_matrix table in
    let send_m = Cost_table.send_matrix table in
    let recv_m = Cost_table.recv_matrix table in
    let work_row = work_m.(s) and send_row = send_m.(s) and recv_row = recv_m.(s) in
    let work_max = ref 0 and comm_max = ref 0 in
    for q = 0 to p - 1 do
      if work_row.(q) > !work_max then work_max := work_row.(q);
      let snd = send_row.(q) + if q = src then dvol else 0 in
      let rcv = recv_row.(q) + if q = dst then dvol else 0 in
      let h = if snd > rcv then snd else rcv in
      if h > !comm_max then comm_max := h
    done;
    Bsp_cost.superstep_cost machine ~work_max:!work_max ~comm_max:!comm_max
  in
  let delta_of pair s =
    step_cost_with ~s:pair.cur ~src:pair.src ~dst:pair.dst (-pair.vol)
    + step_cost_with ~s ~src:pair.src ~dst:pair.dst pair.vol
    - Cost_table.step_cost table pair.cur
    - Cost_table.step_cost table s
  in
  let moves_applied = ref 0 and moves_evaluated = ref 0 in
  let improved_any = ref true in
  while !improved_any && not (Budget.exhausted budget) do
    improved_any := false;
    Array.iter
      (fun pair ->
        if not (Budget.exhausted budget) then begin
          let s = ref pair.lo in
          (* The exhaustion re-probe keeps every evaluation paired with a
             successful tick, so the stage's budget consumption equals
             its [moves_evaluated]. *)
          while !s <= pair.hi && not (Budget.exhausted budget) do
            if !s <> pair.cur then begin
              ignore (Budget.tick budget : bool);
              incr moves_evaluated;
              if delta_of pair !s < 0 then begin
                place pair (-1);
                pair.cur <- !s;
                place pair 1;
                Cost_table.refresh table;
                incr moves_applied;
                improved_any := true
              end
            end;
            incr s
          done
        end)
      pairs
  done;
  Obs.Metrics.counter "hccs.runs" 1;
  Obs.Metrics.counter "hccs.moves_evaluated" !moves_evaluated;
  Obs.Metrics.counter "hccs.moves_applied" !moves_applied;
  Obs.Metrics.gauge_max "hccs.pairs_peak" (float_of_int (Array.length pairs));
  let result = to_schedule () in
  let final_cost = Bsp_cost.total machine result in
  ( result,
    {
      moves_applied = !moves_applied;
      moves_evaluated = !moves_evaluated;
      initial_cost;
      final_cost;
    } )
