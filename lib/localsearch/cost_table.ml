type t = {
  machine : Machine.t;
  num_steps : int;
  work : int array array;
  send : int array array;
  recv : int array array;
  step_cost : int array;
  mutable total : int;
  dirty : int array;  (* stack of dirty superstep indices *)
  mutable dirty_len : int;
  is_dirty : bool array;
}

let step_cost_of t s =
  let p = t.machine.Machine.p in
  let work_max = ref 0 and comm_max = ref 0 in
  for q = 0 to p - 1 do
    if t.work.(s).(q) > !work_max then work_max := t.work.(s).(q);
    let h = max t.send.(s).(q) t.recv.(s).(q) in
    if h > !comm_max then comm_max := h
  done;
  !work_max + (t.machine.Machine.g * !comm_max) + t.machine.Machine.l

let create machine ~num_steps =
  let p = machine.Machine.p in
  {
    machine;
    num_steps;
    work = Array.make_matrix num_steps p 0;
    send = Array.make_matrix num_steps p 0;
    recv = Array.make_matrix num_steps p 0;
    step_cost = Array.make num_steps machine.Machine.l;
    total = num_steps * machine.Machine.l;
    dirty = Array.make (max num_steps 1) 0;
    dirty_len = 0;
    is_dirty = Array.make (max num_steps 1) false;
  }

let num_steps t = t.num_steps

let touch t s =
  if not t.is_dirty.(s) then begin
    t.is_dirty.(s) <- true;
    t.dirty.(t.dirty_len) <- s;
    t.dirty_len <- t.dirty_len + 1
  end

let add_work t ~step ~proc delta =
  t.work.(step).(proc) <- t.work.(step).(proc) + delta;
  touch t step

let add_send t ~step ~proc delta =
  t.send.(step).(proc) <- t.send.(step).(proc) + delta;
  touch t step

let add_recv t ~step ~proc delta =
  t.recv.(step).(proc) <- t.recv.(step).(proc) + delta;
  touch t step

let refresh t =
  for i = 0 to t.dirty_len - 1 do
    let s = t.dirty.(i) in
    t.is_dirty.(s) <- false;
    let c = step_cost_of t s in
    t.total <- t.total + c - t.step_cost.(s);
    t.step_cost.(s) <- c
  done;
  t.dirty_len <- 0

let total t = t.total

let work t ~step ~proc = t.work.(step).(proc)
let send t ~step ~proc = t.send.(step).(proc)
let recv t ~step ~proc = t.recv.(step).(proc)

let assert_consistent t =
  if t.dirty_len <> 0 then failwith "Cost_table: refresh pending";
  let sum = ref 0 in
  for s = 0 to t.num_steps - 1 do
    let c = step_cost_of t s in
    if c <> t.step_cost.(s) then failwith "Cost_table: stale superstep cost";
    sum := !sum + c
  done;
  if !sum <> t.total then failwith "Cost_table: stale total"
