type t = {
  machine : Machine.t;
  num_steps : int;
  cap_p : int;  (* allocated row width: every matrix row has this length *)
  work : int array array;
  send : int array array;
  recv : int array array;
  step_cost_ : int array;
  (* Per-step maxima, refreshed together with step_cost_. The row
     evaluator's addition overlays only raise cells above the shared
     removal base, so a candidate superstep maximum is the cached
     maximum combined with the touched cells alone — no row rescan. *)
  work_max_ : int array;
  comm_max_ : int array;
  mutable total : int;
  dirty : int array;  (* stack of dirty superstep indices *)
  mutable dirty_len : int;
  is_dirty : bool array;
}

(* Scan one superstep row for its work and h-relation maxima. *)
let scan_step t s =
  let p = t.machine.Machine.p in
  let work_row = t.work.(s) and send_row = t.send.(s) and recv_row = t.recv.(s) in
  let wm = ref 0 and hm = ref 0 in
  for q = 0 to p - 1 do
    if work_row.(q) > !wm then wm := work_row.(q);
    let h = max send_row.(q) recv_row.(q) in
    if h > !hm then hm := h
  done;
  (!wm, !hm)

let create machine ~num_steps =
  let p = machine.Machine.p in
  {
    machine;
    num_steps;
    cap_p = p;
    work = Array.make_matrix num_steps p 0;
    send = Array.make_matrix num_steps p 0;
    recv = Array.make_matrix num_steps p 0;
    step_cost_ = Array.make num_steps machine.Machine.l;
    work_max_ = Array.make num_steps 0;
    comm_max_ = Array.make num_steps 0;
    total = num_steps * machine.Machine.l;
    dirty = Array.make num_steps 0;
    dirty_len = 0;
    is_dirty = Array.make num_steps false;
  }

let num_steps t = t.num_steps

(* Zero the used region ([num_steps] rows x [p] columns) and the dirty
   bookkeeping. Cells outside the used region are zero by construction
   and stay zero, so a cleared table's backing arrays are entirely zero
   — the invariant {!recycle} relies on. *)
let clear t =
  let p = t.machine.Machine.p in
  for s = 0 to t.num_steps - 1 do
    Array.fill t.work.(s) 0 p 0;
    Array.fill t.send.(s) 0 p 0;
    Array.fill t.recv.(s) 0 p 0;
    t.is_dirty.(s) <- false
  done;
  t.dirty_len <- 0

(* A fresh table over recycled storage: when the cleared [old] table's
   arrays are big enough for the new dimensions they are reused (cells
   are already zero per the {!clear} invariant; only the per-step caches
   need refilling), otherwise this falls back to a plain {!create}. *)
let recycle old machine ~num_steps =
  let p = machine.Machine.p in
  if
    Array.length old.work >= num_steps
    && old.cap_p >= p
    && Array.length old.step_cost_ >= num_steps
  then begin
    let t =
      {
        machine;
        num_steps;
        cap_p = old.cap_p;
        work = old.work;
        send = old.send;
        recv = old.recv;
        step_cost_ = old.step_cost_;
        work_max_ = old.work_max_;
        comm_max_ = old.comm_max_;
        total = num_steps * machine.Machine.l;
        dirty = old.dirty;
        dirty_len = 0;
        is_dirty = old.is_dirty;
      }
    in
    Array.fill t.step_cost_ 0 num_steps machine.Machine.l;
    Array.fill t.work_max_ 0 num_steps 0;
    Array.fill t.comm_max_ 0 num_steps 0;
    Array.fill t.is_dirty 0 num_steps false;
    t
  end
  else create machine ~num_steps

let touch t s =
  if not t.is_dirty.(s) then begin
    t.is_dirty.(s) <- true;
    t.dirty.(t.dirty_len) <- s;
    t.dirty_len <- t.dirty_len + 1
  end

let add_work t ~step ~proc delta =
  t.work.(step).(proc) <- t.work.(step).(proc) + delta;
  touch t step

let add_send t ~step ~proc delta =
  t.send.(step).(proc) <- t.send.(step).(proc) + delta;
  touch t step

let add_recv t ~step ~proc delta =
  t.recv.(step).(proc) <- t.recv.(step).(proc) + delta;
  touch t step

let refresh t =
  for i = 0 to t.dirty_len - 1 do
    let s = t.dirty.(i) in
    t.is_dirty.(s) <- false;
    let wm, hm = scan_step t s in
    let c = Bsp_cost.superstep_cost t.machine ~work_max:wm ~comm_max:hm in
    t.work_max_.(s) <- wm;
    t.comm_max_.(s) <- hm;
    t.total <- t.total + c - t.step_cost_.(s);
    t.step_cost_.(s) <- c
  done;
  t.dirty_len <- 0

let total t = t.total
let step_cost t s = t.step_cost_.(s)
let step_costs t = t.step_cost_

let work t ~step ~proc = t.work.(step).(proc)
let send t ~step ~proc = t.send.(step).(proc)
let recv t ~step ~proc = t.recv.(step).(proc)

let work_matrix t = t.work
let send_matrix t = t.send
let recv_matrix t = t.recv
let work_max t = t.work_max_
let comm_max t = t.comm_max_

let assert_consistent t =
  if t.dirty_len <> 0 then failwith "Cost_table: refresh pending";
  let sum = ref 0 in
  for s = 0 to t.num_steps - 1 do
    let wm, hm = scan_step t s in
    let c = Bsp_cost.superstep_cost t.machine ~work_max:wm ~comm_max:hm in
    if c <> t.step_cost_.(s) then failwith "Cost_table: stale superstep cost";
    if wm <> t.work_max_.(s) then failwith "Cost_table: stale work maximum";
    if hm <> t.comm_max_.(s) then failwith "Cost_table: stale comm maximum";
    sum := !sum + c
  done;
  if !sum <> t.total then failwith "Cost_table: stale total"
