(** Simulated-annealing local search over the assignment.

    The paper's hill climber stops at the first local minimum; its
    Section 8 lists "more complex local search techniques that also
    attempt to escape local minima" as a natural extension. This module
    implements that extension: the same single-node move neighbourhood
    as {!Hc} (any processor, superstep within +-1), but moves that
    increase the cost by [delta] are accepted with probability
    [exp (-delta / T)] under a geometrically cooling temperature [T].

    The incremental cost machinery is shared with HC through the same
    state representation (lazy communication schedule, {!Cost_table});
    each candidate is costed with the read-only
    {!Assignment_state.delta_cost} and the Metropolis test is applied to
    that delta, so only accepted moves mutate the state. The best
    assignment ever visited is tracked and returned, so the result never
    regresses below the plain hill-climbing baseline when started from
    its output. *)

type config = {
  initial_temperature : float;
      (** starting T; a good default is a few percent of the initial
          cost divided by the node count *)
  cooling : float;  (** multiplicative factor per sweep, in (0, 1) *)
  sweeps : int;  (** number of full passes over the nodes *)
  seed : int;  (** acceptance randomness *)
}

val default_config : int -> config
(** [default_config initial_cost] scales the temperature to the
    instance. *)

type stats = {
  moves_accepted : int;
  moves_rejected : int;
  uphill_accepted : int;
  initial_cost : int;
  final_cost : int;  (** cost of the best visited schedule *)
}

val improve :
  ?budget:Budget.t -> ?config:config -> Machine.t -> Schedule.t -> Schedule.t * stats
(** Anneal from the given schedule. The input's communication schedule
    is replaced by the lazy one, as in {!Hc}. The returned schedule is
    the cheapest assignment encountered (with lazy communication) and is
    always valid. *)
