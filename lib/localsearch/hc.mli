(** HC: hill-climbing local search over the assignment (Section 4.3).

    Starting from a valid BSP schedule, HC repeatedly applies the first
    single-node move that strictly decreases the total cost, until a
    local minimum is reached or the budget runs out. The neighbourhood of
    a node [v] currently on [(p, s)] consists of every [(p', s')] with
    [p'] any processor and [s' ∈ {s-1, s, s+1}] (within the existing
    superstep range), all other assignments unchanged (Appendix A.3).

    HC assumes and maintains the {e lazy} communication schedule: for
    every node [u] and processor [q] it stores the first superstep in
    which [q] needs the value of [u], which pins the (unique) lazy
    communication event to phase [first_need - 1] and lets a move update
    only the affected supersteps of the incremental {!Cost_table}.

    The number of supersteps is fixed during the search; supersteps that
    become empty are removed by a final {!Schedule.compact}, which can
    only decrease the cost further. *)

type stats = {
  moves_applied : int;
  moves_evaluated : int;
  initial_cost : int;
  final_cost : int;
}

val improve :
  ?budget:Budget.t -> ?max_moves:int -> Machine.t -> Schedule.t -> Schedule.t * stats
(** Run the greedy first-improvement search. The input communication
    schedule is replaced by the lazy one (HC is specified over lazy
    schedules — Appendix A); the output cost is therefore measured on the
    lazy schedule too and never exceeds the input's lazy cost.

    [budget] is ticked once per evaluated candidate move (use it for
    wall-clock limits); [max_moves] caps the number of {e applied}
    improvement moves, which is how the multilevel refinement phase
    bounds its per-level work (Appendix A.5). *)
