(** HC: hill-climbing local search over the assignment (Section 4.3).

    Starting from a valid BSP schedule, HC repeatedly applies the first
    single-node move that strictly decreases the total cost, until a
    local minimum is reached or the budget runs out. The neighbourhood of
    a node [v] currently on [(p, s)] consists of every [(p', s')] with
    [p'] any processor and [s' ∈ {s-1, s, s+1}] (within the existing
    superstep range), all other assignments unchanged (Appendix A.3).

    HC assumes and maintains the {e lazy} communication schedule: for
    every node [u] and processor [q] it stores the first superstep in
    which [q] needs the value of [u], which pins the (unique) lazy
    communication event to phase [first_need - 1] and lets a move update
    only the affected supersteps of the incremental {!Cost_table}.

    Candidate moves are costed with the read-only
    {!Assignment_state.delta_cost}; the state is mutated only for
    accepted moves. Instead of sweeping the whole DAG until a pass finds
    nothing, {!improve} keeps a dirty-node worklist: all nodes are
    seeded, and an accepted move re-enqueues only the nodes whose
    neighbourhood costs it can have disturbed (the moved node, its
    predecessors and successors, their other successors, and the nodes
    resident on the touched supersteps). A final full verification sweep
    confirms the fixpoint, so the result is a genuine local minimum of
    the same neighbourhood as the exhaustive sweep.

    The number of supersteps is fixed during the search; supersteps that
    become empty are removed by a final {!Schedule.compact}, which can
    only decrease the cost further. *)

type stats = {
  moves_applied : int;
  moves_evaluated : int;
  replicas_added : int;  (** by the replication phase; [0] unless enabled *)
  replicas_dropped : int;
  initial_cost : int;
  final_cost : int;
}

val improve :
  ?check:bool ->
  ?budget:Budget.t ->
  ?max_moves:int ->
  ?replicate:bool ->
  ?shards:int ->
  ?on_apply:(int -> int -> int -> unit) ->
  Machine.t ->
  Schedule.t ->
  Schedule.t * stats
(** Run the greedy first-improvement search. The input communication
    schedule is replaced by the lazy one (HC is specified over lazy
    schedules — Appendix A); the output cost is therefore measured on the
    lazy schedule too and never exceeds the input's lazy cost. The input
    must be replica-free (raises [Invalid_argument] otherwise).

    [check] (default [false]) cross-validates every read-only delta
    against an apply/rollback round-trip of the mutating path — the
    debug-assertion mode the test suite runs in; release and benchmark
    runs leave it off so rejected candidates stay read-only.

    [budget] is ticked once per evaluated candidate move (use it for
    wall-clock limits); [max_moves] caps the number of {e applied}
    improvement moves, which is how the multilevel refinement phase
    bounds its per-level work (Appendix A.5).

    [replicate] (default [false]) runs the node-replication phase after
    the move search converges (DESIGN.md Section 5g): candidate
    replications are seeded from the live event traffic (the per-event
    granularity of {!Profile}'s traffic matrix), evaluated
    heaviest-first, and applied on strict improvement, with existing
    replicas reconsidered for dropping, until a full round changes
    nothing. With [replicate:false] the result is bit-identical to the
    pre-replication engine.

    [shards] (default [1]) enables the sharded propose/merge/apply
    engine (DESIGN.md Section 5j): windows of worklist nodes are
    scanned read-only in parallel on scratch clones of the state via
    {!Par}, the earliest improving position is re-run through the
    normal applying scan, and the proposal-free prefix is consumed with
    its recorded candidate counts. The result — moves, their order,
    budget consumption, every counter — is bit-identical to
    [shards = 1] at any jobs setting; [shards <= 1] (and check mode,
    whose apply/rollback probes need the one true state) takes the
    sequential path untouched. Values beyond {!Par.jobs} add overhead,
    not parallelism; callers normally pass the jobs count.

    [on_apply] is invoked as [f v p2 s2] immediately after each applied
    single-node move, in application order (replication-phase changes
    are not reported). Used by the test suite to compare applied-move
    sequences across engine variants. *)

val replicate_schedule :
  ?check:bool -> ?budget:Budget.t -> Machine.t -> Schedule.t -> Schedule.t
(** The replication phase alone: no single-node moves, so the input
    node-to-processor placement survives verbatim and only replicas are
    added where they strictly reduce the lazy cost. The input
    communication schedule is replaced by the lazy one, which can undo a
    hand-optimised event placement — compare the result's cost against
    the input's and keep the cheaper, as {!Pipeline.run} does. The input
    must be replica-free. *)

val improve_reference :
  ?check:bool ->
  ?budget:Budget.t ->
  ?max_moves:int ->
  Machine.t ->
  Schedule.t ->
  Schedule.t * stats
(** The original engine: exhaustive sweeps over all nodes until a full
    pass finds no improvement, with every candidate costed by mutating
    the state and rolling back on rejection. Retained as the
    differential-testing baseline for {!improve} and as the benchmark
    reference the delta/worklist speedup is measured against ([check]
    re-verifies the rollback, as the seed implementation asserted
    unconditionally). Same first-improvement rule and candidate order,
    so both engines terminate in local minima of the same
    neighbourhood. *)
