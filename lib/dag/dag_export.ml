let palette =
  [| "#a6cee3"; "#b2df8a"; "#fb9a99"; "#fdbf6f"; "#cab2d6"; "#ffff99"; "#1f78b4"; "#33a02c" |]

let dag_to_dot ?(name = "dag") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=TB;\n" name);
  for v = 0 to Dag.n g - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  n%d [label=\"%d (w=%d, c=%d)\"];\n" v v (Dag.work g v)
         (Dag.comm g v))
  done;
  Dag.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let schedule_to_dot ?(name = "schedule") g ~proc ~step =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n  rankdir=TB;\n" name);
  let num_steps = 1 + Array.fold_left max (-1) step in
  for s = 0 to num_steps - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  subgraph cluster_s%d {\n    label=\"superstep %d\";\n" s s);
    for v = 0 to Dag.n g - 1 do
      if step.(v) = s then begin
        let colour = palette.(proc.(v) mod Array.length palette) in
        Buffer.add_string buf
          (Printf.sprintf
             "    n%d [label=\"%d@p%d\", style=filled, fillcolor=\"%s\"];\n" v v proc.(v)
             colour)
      end
    done;
    Buffer.add_string buf "  }\n"
  done;
  Dag.iter_edges g (fun u v ->
      let style = if proc.(u) = proc.(v) then "" else " [style=dashed]" in
      Buffer.add_string buf (Printf.sprintf "  n%d -> n%d%s;\n" u v style));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file path text = Atomic_file.write_string path text
