type t = {
  mutable work : int list;
  mutable comm : int list;
  mutable count : int;
  mutable edges : (int * int) list;
  work_override : (int, int) Hashtbl.t;
}

let create () =
  { work = []; comm = []; count = 0; edges = []; work_override = Hashtbl.create 16 }

let add_node b ~work ~comm =
  let id = b.count in
  b.work <- work :: b.work;
  b.comm <- comm :: b.comm;
  b.count <- b.count + 1;
  id

let add_edge b u v =
  if u < 0 || u >= b.count || v < 0 || v >= b.count then
    invalid_arg "Dag_builder.add_edge: endpoint out of range";
  if u = v then invalid_arg "Dag_builder.add_edge: self-loop";
  b.edges <- (u, v) :: b.edges

let set_work b v w =
  if v < 0 || v >= b.count then invalid_arg "Dag_builder.set_work: out of range";
  Hashtbl.replace b.work_override v w

let node_count b = b.count

let finish b =
  let work = Array.of_list (List.rev b.work) in
  let comm = Array.of_list (List.rev b.comm) in
  Hashtbl.iter (fun v w -> work.(v) <- w) b.work_override;
  Dag.of_edges ~n:b.count ~edges:b.edges ~work ~comm
