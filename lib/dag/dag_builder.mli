(** Mutable construction helper for DAGs.

    The generators create DAGs node by node in dependency order; this
    builder accumulates nodes and edges and converts to an immutable
    {!Dag.t} at the end. Because nodes can only depend on already-created
    nodes, the result is acyclic by construction. *)

type t

val create : unit -> t

val add_node : t -> work:int -> comm:int -> int
(** Create a node with the given weights, returning its id. Ids are
    allocated consecutively from 0. *)

val add_edge : t -> int -> int -> unit
(** [add_edge b u v] records the dependency edge [(u, v)]. Both endpoints
    must already exist and [u <> v]; duplicates are collapsed at
    {!finish} time, and acyclicity is validated there too. *)

val set_work : t -> int -> int -> unit
(** Update the work weight of an existing node (generators sometimes fix
    up reduction-node weights once the fan-in is known). *)

val node_count : t -> int

val finish : t -> Dag.t
(** Freeze into an immutable validated DAG. *)
