type t = {
  n : int;
  succ : int array array;
  pred : int array array;
  work : int array;
  comm : int array;
  (* Caches computed lazily; both are pure functions of the structure. *)
  mutable topo : int array option;
  mutable rank : int array option;
}

let n g = g.n

let num_edges g = Array.fold_left (fun acc a -> acc + Array.length a) 0 g.succ

let work g v = g.work.(v)
let comm g v = g.comm.(v)
let succ g v = g.succ.(v)
let pred g v = g.pred.(v)
let in_degree g v = Array.length g.pred.(v)
let out_degree g v = Array.length g.succ.(v)

let total_work g = Array.fold_left ( + ) 0 g.work
let total_comm g = Array.fold_left ( + ) 0 g.comm

let sources g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if in_degree g v = 0 then acc := v :: !acc
  done;
  !acc

let sinks g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if out_degree g v = 0 then acc := v :: !acc
  done;
  !acc

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Array.iter (fun v -> f u v) g.succ.(u)
  done

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    let s = g.succ.(u) in
    for i = Array.length s - 1 downto 0 do
      acc := (u, s.(i)) :: !acc
    done
  done;
  !acc

let has_edge g u v = Array.exists (fun x -> x = v) g.succ.(u)

(* Kahn's algorithm with a smallest-id-first priority discipline so the
   resulting order is deterministic and independent of edge insertion
   order. A simple module-level binary heap keeps this O((n+m) log n). *)
let compute_topo g =
  let indeg = Array.init g.n (fun v -> in_degree g v) in
  let heap = Array.make (g.n + 1) 0 in
  let size = ref 0 in
  let push x =
    incr size;
    heap.(!size) <- x;
    let i = ref !size in
    while !i > 1 && heap.(!i / 2) > heap.(!i) do
      let p = !i / 2 in
      let tmp = heap.(p) in
      heap.(p) <- heap.(!i);
      heap.(!i) <- tmp;
      i := p
    done
  in
  let pop () =
    let top = heap.(1) in
    heap.(1) <- heap.(!size);
    decr size;
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let smallest = ref !i in
      if l <= !size && heap.(l) < heap.(!smallest) then smallest := l;
      if r <= !size && heap.(r) < heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = heap.(!smallest) in
        heap.(!smallest) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
  in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then push v
  done;
  let order = Array.make g.n 0 in
  let k = ref 0 in
  while !size > 0 do
    let u = pop () in
    order.(!k) <- u;
    incr k;
    Array.iter
      (fun v ->
        indeg.(v) <- indeg.(v) - 1;
        if indeg.(v) = 0 then push v)
      g.succ.(u)
  done;
  if !k <> g.n then failwith "Dag: graph contains a directed cycle";
  order

let topological_order g =
  match g.topo with
  | Some o -> o
  | None ->
    let o = compute_topo g in
    g.topo <- Some o;
    o

let topological_rank g =
  match g.rank with
  | Some r -> r
  | None ->
    let o = topological_order g in
    let r = Array.make g.n 0 in
    Array.iteri (fun i v -> r.(v) <- i) o;
    g.rank <- Some r;
    r

let warm_caches g =
  ignore (topological_order g : int array);
  ignore (topological_rank g : int array)

let build_arrays ~n ~edges =
  if n < 0 then invalid_arg "Dag: negative node count";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Dag: edge endpoint out of range";
      if u = v then invalid_arg "Dag: self-loop")
    edges;
  let succ_sets = Array.make n [] in
  List.iter (fun (u, v) -> succ_sets.(u) <- v :: succ_sets.(u)) edges;
  let dedup l = List.sort_uniq compare l in
  let succ = Array.map (fun l -> Array.of_list (dedup l)) succ_sets in
  let pred_sets = Array.make n [] in
  Array.iteri (fun u s -> Array.iter (fun v -> pred_sets.(v) <- u :: pred_sets.(v)) s) succ;
  let pred = Array.map (fun l -> Array.of_list (dedup l)) pred_sets in
  (succ, pred)

let of_edges_unchecked ~n ~edges ~work ~comm =
  if Array.length work <> n || Array.length comm <> n then
    invalid_arg "Dag: weight array length mismatch";
  Array.iter (fun w -> if w < 0 then invalid_arg "Dag: negative work weight") work;
  Array.iter (fun c -> if c < 0 then invalid_arg "Dag: negative comm weight") comm;
  let succ, pred = build_arrays ~n ~edges in
  { n; succ; pred; work = Array.copy work; comm = Array.copy comm; topo = None; rank = None }

let of_edges ~n ~edges ~work ~comm =
  let g = of_edges_unchecked ~n ~edges ~work ~comm in
  (* Computing the topological order both validates acyclicity and warms
     the cache. *)
  (try ignore (topological_order g : int array)
   with Failure _ -> invalid_arg "Dag.of_edges: edge set contains a directed cycle");
  g

let is_acyclic_edges ~n edges =
  let work = Array.make n 0 and comm = Array.make n 0 in
  let g = of_edges_unchecked ~n ~edges ~work ~comm in
  match compute_topo g with
  | (_ : int array) -> true
  | exception Failure _ -> false

let wavefronts g =
  let order = topological_order g in
  let level = Array.make g.n 0 in
  Array.iter
    (fun v ->
      Array.iter
        (fun u -> if level.(u) + 1 > level.(v) then level.(v) <- level.(u) + 1)
        g.pred.(v))
    order;
  level

let num_wavefronts g =
  if g.n = 0 then 0
  else 1 + Array.fold_left max 0 (wavefronts g)

let bottom_level g ~comm_factor =
  let order = topological_order g in
  let bl = Array.make g.n 0 in
  for i = g.n - 1 downto 0 do
    let v = order.(i) in
    let best = ref 0 in
    Array.iter
      (fun u ->
        let cand = (comm_factor * g.comm.(v)) + bl.(u) in
        if cand > !best then best := cand)
      g.succ.(v);
    bl.(v) <- g.work.(v) + !best
  done;
  bl

let critical_path_work g =
  if g.n = 0 then 0
  else Array.fold_left max 0 (bottom_level g ~comm_factor:0)

let has_path_impl g u v ~skip_direct =
  if u = v then true
  else begin
    let rank = topological_rank g in
    let target_rank = rank.(v) in
    let visited = Hashtbl.create 16 in
    let rec dfs x ~first =
      if x = v then true
      else if rank.(x) >= target_rank then false
      else if Hashtbl.mem visited x then false
      else begin
        Hashtbl.add visited x ();
        Array.exists
          (fun y ->
            if first && skip_direct && y = v then false
            else dfs y ~first:false)
          g.succ.(x)
      end
    in
    dfs u ~first:true
  end

let has_path g u v = has_path_impl g u v ~skip_direct:false
let has_alternative_path g u v = has_path_impl g u v ~skip_direct:true

let induced_subgraph g nodes =
  let nodes = List.sort_uniq compare nodes in
  let keep = Array.make g.n (-1) in
  let count = List.length nodes in
  List.iteri (fun i v -> keep.(v) <- i) nodes;
  let old_of_new = Array.of_list nodes in
  let edges = ref [] in
  iter_edges g (fun u v ->
      if keep.(u) >= 0 && keep.(v) >= 0 then edges := (keep.(u), keep.(v)) :: !edges);
  let work = Array.map (fun v -> g.work.(v)) old_of_new in
  let comm = Array.map (fun v -> g.comm.(v)) old_of_new in
  (of_edges_unchecked ~n:count ~edges:!edges ~work ~comm, old_of_new)

let largest_weakly_connected_component g =
  if g.n = 0 then (g, [||])
  else begin
    let comp = Array.make g.n (-1) in
    let num_comps = ref 0 in
    let stack = Stack.create () in
    for v = 0 to g.n - 1 do
      if comp.(v) < 0 then begin
        let c = !num_comps in
        incr num_comps;
        Stack.push v stack;
        comp.(v) <- c;
        while not (Stack.is_empty stack) do
          let x = Stack.pop stack in
          let visit y =
            if comp.(y) < 0 then begin
              comp.(y) <- c;
              Stack.push y stack
            end
          in
          Array.iter visit g.succ.(x);
          Array.iter visit g.pred.(x)
        done
      end
    done;
    let sizes = Array.make !num_comps 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let nodes = ref [] in
    for v = g.n - 1 downto 0 do
      if comp.(v) = !best then nodes := v :: !nodes
    done;
    induced_subgraph g !nodes
  end

let map_weights g ~work ~comm =
  {
    g with
    work = Array.init g.n work;
    comm = Array.init g.n comm;
    topo = g.topo;
    rank = g.rank;
  }

let assign_paper_weights g =
  map_weights g
    ~work:(fun v -> if in_degree g v = 0 then 1 else in_degree g v - 1)
    ~comm:(fun _ -> 1)

let pp fmt g =
  Format.fprintf fmt "@[<v>dag: %d nodes, %d edges@," g.n (num_edges g);
  for u = 0 to g.n - 1 do
    Format.fprintf fmt "  %d (w=%d c=%d) -> %a@," u g.work.(u) g.comm.(u)
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ")
         Format.pp_print_int)
      (Array.to_list g.succ.(u))
  done;
  Format.fprintf fmt "@]"
