(* Flat CSR adjacency (DESIGN.md Section 5f).

   Both directions are stored as one offsets array (length n + 1) plus
   one targets array (length m): the successors of u are
   succ_tgt.(succ_off.(u)) .. succ_tgt.(succ_off.(u + 1) - 1), sorted
   ascending and duplicate-free, and symmetrically for predecessors.
   The topological order and rank caches are computed eagerly at
   construction, so a built value is deeply immutable — sharing a DAG
   across domains involves no lazy initialisation and therefore no data
   race by construction ({!warm_caches} is a no-op kept for
   compatibility). The flat layout also keeps the local-search hot
   loops on two contiguous int arrays per direction instead of chasing
   a pointer per node. *)

type t = {
  n : int;
  succ_off : int array;  (* length n + 1 *)
  succ_tgt : int array;  (* length num_edges, per-node segments sorted *)
  pred_off : int array;
  pred_tgt : int array;
  work : int array;
  comm : int array;
  topo : int array;  (* eager: a deterministic topological order *)
  rank : int array;  (* eager: position of each node in [topo] *)
}

let n g = g.n
let num_edges g = Array.length g.succ_tgt

let work g v = g.work.(v)
let comm g v = g.comm.(v)

let in_degree g v = g.pred_off.(v + 1) - g.pred_off.(v)
let out_degree g v = g.succ_off.(v + 1) - g.succ_off.(v)

(* Cold-path accessors: each call allocates a fresh slice. Hot loops use
   the iterators below or the raw offsets/targets arrays directly. *)
let succ g v = Array.sub g.succ_tgt g.succ_off.(v) (out_degree g v)
let pred g v = Array.sub g.pred_tgt g.pred_off.(v) (in_degree g v)

let succ_offsets g = g.succ_off
let succ_targets g = g.succ_tgt
let pred_offsets g = g.pred_off
let pred_targets g = g.pred_tgt

let iter_succ g v f =
  for i = g.succ_off.(v) to g.succ_off.(v + 1) - 1 do
    f (Array.unsafe_get g.succ_tgt i)
  done

let iter_pred g v f =
  for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
    f (Array.unsafe_get g.pred_tgt i)
  done

let fold_succ g v ~init f =
  let acc = ref init in
  for i = g.succ_off.(v) to g.succ_off.(v + 1) - 1 do
    acc := f !acc (Array.unsafe_get g.succ_tgt i)
  done;
  !acc

let fold_pred g v ~init f =
  let acc = ref init in
  for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
    acc := f !acc (Array.unsafe_get g.pred_tgt i)
  done;
  !acc

let exists_succ g v f =
  let i = ref g.succ_off.(v) in
  let stop = g.succ_off.(v + 1) in
  let found = ref false in
  while (not !found) && !i < stop do
    if f (Array.unsafe_get g.succ_tgt !i) then found := true;
    incr i
  done;
  !found

let exists_pred g v f =
  let i = ref g.pred_off.(v) in
  let stop = g.pred_off.(v + 1) in
  let found = ref false in
  while (not !found) && !i < stop do
    if f (Array.unsafe_get g.pred_tgt !i) then found := true;
    incr i
  done;
  !found

let for_all_succ g v f = not (exists_succ g v (fun w -> not (f w)))
let for_all_pred g v f = not (exists_pred g v (fun w -> not (f w)))

let total_work g = Array.fold_left ( + ) 0 g.work
let total_comm g = Array.fold_left ( + ) 0 g.comm

let sources g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if in_degree g v = 0 then acc := v :: !acc
  done;
  !acc

let sinks g =
  let acc = ref [] in
  for v = g.n - 1 downto 0 do
    if out_degree g v = 0 then acc := v :: !acc
  done;
  !acc

let iter_edges g f =
  for u = 0 to g.n - 1 do
    for i = g.succ_off.(u) to g.succ_off.(u + 1) - 1 do
      f u (Array.unsafe_get g.succ_tgt i)
    done
  done

let edges g =
  let acc = ref [] in
  for u = g.n - 1 downto 0 do
    for i = g.succ_off.(u + 1) - 1 downto g.succ_off.(u) do
      acc := (u, g.succ_tgt.(i)) :: !acc
    done
  done;
  !acc

(* Segments are sorted, so membership is a binary search. *)
let has_edge g u v =
  let lo = ref g.succ_off.(u) and hi = ref (g.succ_off.(u + 1) - 1) in
  let found = ref false in
  while (not !found) && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let x = g.succ_tgt.(mid) in
    if x = v then found := true else if x < v then lo := mid + 1 else hi := mid - 1
  done;
  !found

(* ------------------------------------------------------------------ *)
(* Construction.                                                       *)

(* Kahn's algorithm with a smallest-id-first priority discipline so the
   resulting order is deterministic and independent of edge insertion
   order. A simple module-level binary heap keeps this O((n+m) log n).
   Returns [None] when the edge set contains a directed cycle. *)
let compute_topo ~n ~succ_off ~succ_tgt ~pred_off =
  let indeg = Array.init n (fun v -> pred_off.(v + 1) - pred_off.(v)) in
  let heap = Array.make (n + 1) 0 in
  let size = ref 0 in
  let push x =
    incr size;
    heap.(!size) <- x;
    let i = ref !size in
    while !i > 1 && heap.(!i / 2) > heap.(!i) do
      let p = !i / 2 in
      let tmp = heap.(p) in
      heap.(p) <- heap.(!i);
      heap.(!i) <- tmp;
      i := p
    done
  in
  let pop () =
    let top = heap.(1) in
    heap.(1) <- heap.(!size);
    decr size;
    let i = ref 1 in
    let continue = ref true in
    while !continue do
      let l = 2 * !i and r = (2 * !i) + 1 in
      let smallest = ref !i in
      if l <= !size && heap.(l) < heap.(!smallest) then smallest := l;
      if r <= !size && heap.(r) < heap.(!smallest) then smallest := r;
      if !smallest = !i then continue := false
      else begin
        let tmp = heap.(!smallest) in
        heap.(!smallest) <- heap.(!i);
        heap.(!i) <- tmp;
        i := !smallest
      end
    done;
    top
  in
  for v = 0 to n - 1 do
    if indeg.(v) = 0 then push v
  done;
  let order = Array.make n 0 in
  let k = ref 0 in
  while !size > 0 do
    let u = pop () in
    order.(!k) <- u;
    incr k;
    for i = succ_off.(u) to succ_off.(u + 1) - 1 do
      let v = succ_tgt.(i) in
      indeg.(v) <- indeg.(v) - 1;
      if indeg.(v) = 0 then push v
    done
  done;
  if !k <> n then None else Some order

(* In-place quicksort-with-insertion-cutoff of one CSR segment. *)
let sort_segment a lo hi =
  let rec qsort lo hi =
    if hi - lo > 12 then begin
      let mid = (lo + hi) / 2 in
      (* median-of-three pivot *)
      let p =
        let x = a.(lo) and y = a.(mid) and z = a.(hi) in
        if x < y then if y < z then y else if x < z then z else x
        else if x < z then x
        else if y < z then z
        else y
      in
      let i = ref lo and j = ref hi in
      while !i <= !j do
        while a.(!i) < p do incr i done;
        while a.(!j) > p do decr j done;
        if !i <= !j then begin
          let tmp = a.(!i) in
          a.(!i) <- a.(!j);
          a.(!j) <- tmp;
          incr i;
          decr j
        end
      done;
      qsort lo !j;
      qsort !i hi
    end
    else
      for i = lo + 1 to hi do
        let x = a.(i) in
        let j = ref (i - 1) in
        while !j >= lo && a.(!j) > x do
          a.(!j + 1) <- a.(!j);
          decr j
        done;
        a.(!j + 1) <- x
      done
  in
  if hi > lo then qsort lo hi

(* Build both CSR directions from a raw edge list: count, fill, sort
   each successor segment, compact out duplicates, then derive the
   predecessor side by a counting pass over the deduplicated successors
   (iterating u ascending makes every predecessor segment sorted and
   duplicate-free for free). *)
let build_csr ~n ~edges =
  if n < 0 then invalid_arg "Dag: negative node count";
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Dag: edge endpoint out of range";
      if u = v then invalid_arg "Dag: self-loop")
    edges;
  let deg = Array.make (n + 1) 0 in
  List.iter (fun (u, _) -> deg.(u) <- deg.(u) + 1) edges;
  let succ_off = Array.make (n + 1) 0 in
  for v = 1 to n do
    succ_off.(v) <- succ_off.(v - 1) + deg.(v - 1)
  done;
  let m_raw = succ_off.(n) in
  let succ_tgt = Array.make m_raw 0 in
  let cursor = Array.make n 0 in
  Array.blit succ_off 0 cursor 0 n;
  List.iter
    (fun (u, v) ->
      succ_tgt.(cursor.(u)) <- v;
      cursor.(u) <- cursor.(u) + 1)
    edges;
  for u = 0 to n - 1 do
    sort_segment succ_tgt succ_off.(u) (succ_off.(u + 1) - 1)
  done;
  (* Compact duplicates in place, left-packing the segments. *)
  let write = ref 0 in
  let off_out = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    off_out.(u) <- !write;
    let prev = ref (-1) in
    for i = succ_off.(u) to succ_off.(u + 1) - 1 do
      let v = succ_tgt.(i) in
      if v <> !prev then begin
        succ_tgt.(!write) <- v;
        incr write;
        prev := v
      end
    done
  done;
  off_out.(n) <- !write;
  let m = !write in
  let succ_tgt = if m = m_raw then succ_tgt else Array.sub succ_tgt 0 m in
  let succ_off = off_out in
  (* Predecessor side. *)
  let indeg = Array.make (n + 1) 0 in
  for i = 0 to m - 1 do
    let v = succ_tgt.(i) in
    indeg.(v) <- indeg.(v) + 1
  done;
  let pred_off = Array.make (n + 1) 0 in
  for v = 1 to n do
    pred_off.(v) <- pred_off.(v - 1) + indeg.(v - 1)
  done;
  let pred_tgt = Array.make m 0 in
  Array.blit pred_off 0 cursor 0 n;
  for u = 0 to n - 1 do
    for i = succ_off.(u) to succ_off.(u + 1) - 1 do
      let v = succ_tgt.(i) in
      pred_tgt.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    done
  done;
  (succ_off, succ_tgt, pred_off, pred_tgt)

let build ~n ~edges ~work ~comm ~on_cycle =
  if Array.length work <> n || Array.length comm <> n then
    invalid_arg "Dag: weight array length mismatch";
  Array.iter (fun w -> if w < 0 then invalid_arg "Dag: negative work weight") work;
  Array.iter (fun c -> if c < 0 then invalid_arg "Dag: negative comm weight") comm;
  let succ_off, succ_tgt, pred_off, pred_tgt = build_csr ~n ~edges in
  match compute_topo ~n ~succ_off ~succ_tgt ~pred_off with
  | None -> on_cycle ()
  | Some topo ->
    let rank = Array.make n 0 in
    Array.iteri (fun i v -> rank.(v) <- i) topo;
    {
      n;
      succ_off;
      succ_tgt;
      pred_off;
      pred_tgt;
      work = Array.copy work;
      comm = Array.copy comm;
      topo;
      rank;
    }

(* The topological order doubles as the acyclicity witness, so both
   constructors compute it eagerly; they differ only in the exception
   raised on a cycle (matching the historical lazily-raised ones). *)
let of_edges_unchecked ~n ~edges ~work ~comm =
  build ~n ~edges ~work ~comm ~on_cycle:(fun () ->
      failwith "Dag: graph contains a directed cycle")

let of_edges ~n ~edges ~work ~comm =
  build ~n ~edges ~work ~comm ~on_cycle:(fun () ->
      invalid_arg "Dag.of_edges: edge set contains a directed cycle")

(* CSR-direct construction: the caller hands over canonical successor
   segments (sorted, deduplicated, loop-free), so only the predecessor
   side and the topo caches remain to be derived — no edge list, no
   sort, no dedup pass. Iterating u ascending when scattering makes the
   predecessor segments sorted and duplicate-free for free, exactly as
   in [build_csr]. *)
let of_csr_unchecked ~n ~succ_off ~succ_tgt ~work ~comm =
  if n < 0 then invalid_arg "Dag: negative node count";
  if Array.length succ_off <> n + 1 || succ_off.(0) <> 0 then
    invalid_arg "Dag.of_csr_unchecked: malformed offsets";
  let m = succ_off.(n) in
  if Array.length succ_tgt < m then invalid_arg "Dag.of_csr_unchecked: short targets";
  if Array.length work <> n || Array.length comm <> n then
    invalid_arg "Dag: weight array length mismatch";
  for u = 0 to n - 1 do
    if succ_off.(u + 1) < succ_off.(u) then
      invalid_arg "Dag.of_csr_unchecked: malformed offsets";
    let prev = ref (-1) in
    for i = succ_off.(u) to succ_off.(u + 1) - 1 do
      let v = succ_tgt.(i) in
      if v < 0 || v >= n || v = u then
        invalid_arg "Dag.of_csr_unchecked: edge endpoint out of range";
      if v <= !prev then invalid_arg "Dag.of_csr_unchecked: segment not sorted";
      prev := v
    done;
    if work.(u) < 0 then invalid_arg "Dag: negative work weight";
    if comm.(u) < 0 then invalid_arg "Dag: negative comm weight"
  done;
  let succ_tgt = if Array.length succ_tgt = m then succ_tgt else Array.sub succ_tgt 0 m in
  let indeg = Array.make (max n 1) 0 in
  for i = 0 to m - 1 do
    let v = succ_tgt.(i) in
    indeg.(v) <- indeg.(v) + 1
  done;
  let pred_off = Array.make (n + 1) 0 in
  for v = 1 to n do
    pred_off.(v) <- pred_off.(v - 1) + indeg.(v - 1)
  done;
  let pred_tgt = Array.make m 0 in
  let cursor = indeg in
  Array.blit pred_off 0 cursor 0 n;
  for u = 0 to n - 1 do
    for i = succ_off.(u) to succ_off.(u + 1) - 1 do
      let v = succ_tgt.(i) in
      pred_tgt.(cursor.(v)) <- u;
      cursor.(v) <- cursor.(v) + 1
    done
  done;
  match compute_topo ~n ~succ_off ~succ_tgt ~pred_off with
  | None -> failwith "Dag: graph contains a directed cycle"
  | Some topo ->
    let rank = Array.make n 0 in
    Array.iteri (fun i v -> rank.(v) <- i) topo;
    { n; succ_off; succ_tgt; pred_off; pred_tgt; work; comm; topo; rank }

let is_acyclic_edges ~n edges =
  match build_csr ~n ~edges with
  | succ_off, succ_tgt, pred_off, _ ->
    compute_topo ~n ~succ_off ~succ_tgt ~pred_off <> None

let topological_order g = g.topo
let topological_rank g = g.rank

(* Caches are eager since the CSR refactor; kept so call sites guarding
   cross-domain sharing need no change (and as documentation of the
   sharing discipline). *)
let warm_caches (_ : t) = ()

let wavefronts g =
  let level = Array.make g.n 0 in
  Array.iter
    (fun v ->
      for i = g.pred_off.(v) to g.pred_off.(v + 1) - 1 do
        let u = g.pred_tgt.(i) in
        if level.(u) + 1 > level.(v) then level.(v) <- level.(u) + 1
      done)
    g.topo;
  level

let num_wavefronts g =
  if g.n = 0 then 0
  else 1 + Array.fold_left max 0 (wavefronts g)

let bottom_level g ~comm_factor =
  let bl = Array.make g.n 0 in
  for i = g.n - 1 downto 0 do
    let v = g.topo.(i) in
    let best = ref 0 in
    for k = g.succ_off.(v) to g.succ_off.(v + 1) - 1 do
      let u = g.succ_tgt.(k) in
      let cand = (comm_factor * g.comm.(v)) + bl.(u) in
      if cand > !best then best := cand
    done;
    bl.(v) <- g.work.(v) + !best
  done;
  bl

let critical_path_work g =
  if g.n = 0 then 0
  else Array.fold_left max 0 (bottom_level g ~comm_factor:0)

let has_path_impl g u v ~skip_direct =
  if u = v then true
  else begin
    let target_rank = g.rank.(v) in
    let visited = Hashtbl.create 16 in
    let rec dfs x ~first =
      if x = v then true
      else if g.rank.(x) >= target_rank then false
      else if Hashtbl.mem visited x then false
      else begin
        Hashtbl.add visited x ();
        exists_succ g x (fun y ->
            if first && skip_direct && y = v then false
            else dfs y ~first:false)
      end
    in
    dfs u ~first:true
  end

let has_path g u v = has_path_impl g u v ~skip_direct:false
let has_alternative_path g u v = has_path_impl g u v ~skip_direct:true

let induced_subgraph g nodes =
  let nodes = List.sort_uniq compare nodes in
  let keep = Array.make g.n (-1) in
  let count = List.length nodes in
  List.iteri (fun i v -> keep.(v) <- i) nodes;
  let old_of_new = Array.of_list nodes in
  let edges = ref [] in
  iter_edges g (fun u v ->
      if keep.(u) >= 0 && keep.(v) >= 0 then edges := (keep.(u), keep.(v)) :: !edges);
  let work = Array.map (fun v -> g.work.(v)) old_of_new in
  let comm = Array.map (fun v -> g.comm.(v)) old_of_new in
  (of_edges_unchecked ~n:count ~edges:!edges ~work ~comm, old_of_new)

let largest_weakly_connected_component g =
  if g.n = 0 then (g, [||])
  else begin
    let comp = Array.make g.n (-1) in
    let num_comps = ref 0 in
    let stack = Stack.create () in
    for v = 0 to g.n - 1 do
      if comp.(v) < 0 then begin
        let c = !num_comps in
        incr num_comps;
        Stack.push v stack;
        comp.(v) <- c;
        while not (Stack.is_empty stack) do
          let x = Stack.pop stack in
          let visit y =
            if comp.(y) < 0 then begin
              comp.(y) <- c;
              Stack.push y stack
            end
          in
          iter_succ g x visit;
          iter_pred g x visit
        done
      end
    done;
    let sizes = Array.make !num_comps 0 in
    Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) comp;
    let best = ref 0 in
    Array.iteri (fun c s -> if s > sizes.(!best) then best := c) sizes;
    let nodes = ref [] in
    for v = g.n - 1 downto 0 do
      if comp.(v) = !best then nodes := v :: !nodes
    done;
    induced_subgraph g !nodes
  end

(* The adjacency, topo and rank arrays are structure-only and immutable,
   so the reweighted DAG shares them. *)
let map_weights g ~work ~comm =
  let w = Array.init g.n work and c = Array.init g.n comm in
  Array.iter (fun x -> if x < 0 then invalid_arg "Dag: negative work weight") w;
  Array.iter (fun x -> if x < 0 then invalid_arg "Dag: negative comm weight") c;
  { g with work = w; comm = c }

let assign_paper_weights g =
  map_weights g
    ~work:(fun v -> if in_degree g v = 0 then 1 else in_degree g v - 1)
    ~comm:(fun _ -> 1)

(* The CSR form is already canonical — segments sorted and
   deduplicated, node ids dense — so hashing the raw arrays gives a
   structural content address: two DAGs hash equal iff they have the
   same node count, edge set and weights. [succ_off] is derivable from
   the segment lengths but is included anyway so a corrupt in-memory
   value cannot alias a well-formed one. *)
let structural_hash g =
  let h = Fnv.init in
  let h = Fnv.int h g.n in
  let h = Fnv.int h (num_edges g) in
  let h = Fnv.int_array h g.succ_off in
  let h = Fnv.int_array h g.succ_tgt in
  let h = Fnv.int_array h g.work in
  Fnv.int_array h g.comm

let pp fmt g =
  Format.fprintf fmt "@[<v>dag: %d nodes, %d edges@," g.n (num_edges g);
  for u = 0 to g.n - 1 do
    Format.fprintf fmt "  %d (w=%d c=%d) -> %a@," u g.work.(u) g.comm.(u)
      (Format.pp_print_list ~pp_sep:(fun f () -> Format.pp_print_string f " ")
         Format.pp_print_int)
      (Array.to_list (succ g u))
  done;
  Format.fprintf fmt "@]"
