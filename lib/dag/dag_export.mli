(** Graphviz export of computational DAGs and schedules.

    Produces DOT text for visual inspection of instances and of where a
    schedule placed each node. Schedules are rendered by colouring nodes
    per processor and clustering them per superstep, which makes
    communication structure (edges crossing cluster boundaries) visible
    at a glance. *)

val dag_to_dot : ?name:string -> Dag.t -> string
(** Nodes are labelled ["v (w=..., c=...)"]. *)

val schedule_to_dot :
  ?name:string -> Dag.t -> proc:int array -> step:int array -> string
(** Same graph with one subgraph cluster per superstep and a fill colour
    per processor (cycling through a small palette). *)

val write_file : string -> string -> unit
(** [write_file path dot_text] — tiny convenience wrapper. *)
