(** Computational DAGs.

    A computational DAG [G(V, E)] models a workload: nodes are
    operations, a directed edge [(u, v)] means [v] consumes the output of
    [u] and therefore cannot start before [u] finishes (Section 3.1 of
    the paper). Every node [v] carries two weights:

    - the {e work weight} [w v]: time to execute the operation on a
      processor, and
    - the {e communication weight} [c v]: cost of shipping the output of
      [v] to one other processor (e.g. its size in bytes).

    Nodes are identified by dense integers [0 .. n-1]. The structure is
    immutable once built.

    {b Representation.} Adjacency is stored flat in CSR form — one
    offsets array plus one targets array per direction, each node's
    segment sorted ascending — and the topological order/rank caches
    are computed eagerly at construction (DESIGN.md Section 5f). A
    built value therefore contains no mutable state at all and can be
    shared freely across domains. Hot loops should use the zero-
    allocation iterators ({!iter_succ} and friends) or the raw CSR
    accessors; {!succ}/{!pred} allocate a fresh slice per call. *)

type t

(** {1 Construction} *)

val of_edges : n:int -> edges:(int * int) list -> work:int array -> comm:int array -> t
(** [of_edges ~n ~edges ~work ~comm] builds a DAG on [n] nodes.
    Duplicate edges are collapsed. Raises [Invalid_argument] if an
    endpoint is out of range, a self-loop is present, the weight arrays
    do not have length [n], any weight is negative, or the edge set
    contains a directed cycle. *)

val of_edges_unchecked : n:int -> edges:(int * int) list -> work:int array -> comm:int array -> t
(** Same as {!of_edges} but intended for callers that constructed the
    edges acyclic by design. The eager topological sort still witnesses
    acyclicity as a by-product; if the promise is broken this raises
    [Failure "Dag: graph contains a directed cycle"] (the same error the
    lazy cache historically raised on first topo access). *)

val of_csr_unchecked :
  n:int -> succ_off:int array -> succ_tgt:int array -> work:int array -> comm:int array -> t
(** Build directly from a successor CSR the caller already holds in
    canonical form: [succ_off] of length [n + 1] with
    [succ_off.(0) = 0], monotone, and every per-node segment of
    [succ_tgt] strictly increasing (sorted, duplicate- and
    self-loop-free) with in-range targets — raises [Invalid_argument]
    otherwise. The predecessor side and the topological caches are
    derived here; acyclicity is witnessed exactly as in
    {!of_edges_unchecked}. Ownership of all four arrays transfers to
    the DAG (no copies), so the caller must not mutate them afterwards.
    This is the allocation-lean path for {!Coarsen.quotient}, which
    produces sorted segments by construction and would otherwise pay a
    tuple list plus a redundant sort per multilevel refinement
    level. *)

(** {1 Basic accessors} *)

val n : t -> int
(** Number of nodes. *)

val num_edges : t -> int

val work : t -> int -> int
(** [work g v] is [w v]. *)

val comm : t -> int -> int
(** [comm g v] is [c v]. *)

val succ : t -> int -> int array
(** Direct successors of a node, sorted ascending. Allocates a fresh
    slice per call — fine on cold paths, use {!iter_succ} in hot loops. *)

val pred : t -> int -> int array
(** Direct predecessors of a node, sorted ascending. Allocates a fresh
    slice per call — fine on cold paths, use {!iter_pred} in hot loops. *)

val in_degree : t -> int -> int
val out_degree : t -> int -> int

(** {2 Zero-allocation adjacency access}

    The iterators below traverse a node's CSR segment without
    allocating. The raw accessors expose the underlying arrays for the
    tightest loops (local-search delta evaluation): the neighbours of
    [v] in e.g. the successor direction are
    [succ_targets.(i)] for [succ_offsets.(v) <= i < succ_offsets.(v+1)].
    Callers must not mutate the returned arrays. *)

val iter_succ : t -> int -> (int -> unit) -> unit
val iter_pred : t -> int -> (int -> unit) -> unit
val fold_succ : t -> int -> init:'a -> ('a -> int -> 'a) -> 'a
val fold_pred : t -> int -> init:'a -> ('a -> int -> 'a) -> 'a
val exists_succ : t -> int -> (int -> bool) -> bool
val exists_pred : t -> int -> (int -> bool) -> bool
val for_all_succ : t -> int -> (int -> bool) -> bool
val for_all_pred : t -> int -> (int -> bool) -> bool

val succ_offsets : t -> int array
(** Length [n + 1]; [succ_offsets.(n)] = {!num_edges}. *)

val succ_targets : t -> int array
(** Length {!num_edges}; per-node segments sorted ascending. *)

val pred_offsets : t -> int array
val pred_targets : t -> int array

val total_work : t -> int
val total_comm : t -> int

val sources : t -> int list
(** Nodes with no predecessors, in increasing id order. *)

val sinks : t -> int list
(** Nodes with no successors, in increasing id order. *)

val edges : t -> (int * int) list
(** All edges, each exactly once. *)

val iter_edges : t -> (int -> int -> unit) -> unit

val has_edge : t -> int -> int -> bool

(** {1 Orders and levels} *)

val topological_order : t -> int array
(** A topological order of the nodes (Kahn's algorithm, smallest id
    first, so the order is deterministic). *)

val topological_rank : t -> int array
(** [rank.(v)] is the position of [v] in {!topological_order}. *)

val warm_caches : t -> unit
(** No-op. The topological order and rank are computed eagerly at
    construction since the CSR refactor, so a DAG is always safe to
    share across domains. Kept so existing call sites guarding [Par]
    fan-outs keep compiling (and as documentation of why no warming is
    needed). *)

val wavefronts : t -> int array
(** [wavefronts g] assigns each node its earliest level: sources are
    level 0 and [level v = 1 + max (level u)] over predecessors. This is
    the wavefront decomposition used by HDagg-style schedulers. *)

val num_wavefronts : t -> int

val bottom_level : t -> comm_factor:int -> int array
(** [bottom_level g ~comm_factor] is the classical bottom level used by
    list schedulers: [bl v = w v] for sinks, and otherwise
    [bl v = w v + max over successors u of (comm_factor * c v + bl u)].
    With [comm_factor = 0] this is the plain critical-path length. *)

val critical_path_work : t -> int
(** Maximum total work along any directed path. *)

(** {1 Structure queries} *)

val has_path : t -> int -> int -> bool
(** [has_path g u v] is [true] iff a directed path (possibly of length
    zero, i.e. [u = v]) exists from [u] to [v]. Linear-time search pruned
    by topological rank. *)

val has_alternative_path : t -> int -> int -> bool
(** [has_alternative_path g u v] is [true] iff a directed path from [u]
    to [v] exists that does not use the edge [(u, v)] itself. An edge
    [(u, v)] can be contracted without creating a cycle exactly when this
    is [false] (Appendix A.5). *)

val largest_weakly_connected_component : t -> t * int array
(** Restrict the DAG to its largest weakly-connected (undirected)
    component, as the paper does for extracted coarse-grained instances
    (Appendix B.1). Returns the sub-DAG and the array mapping new node
    ids to original ids. *)

val induced_subgraph : t -> int list -> t * int array
(** [induced_subgraph g nodes] keeps only [nodes] and the edges between
    them. Returns the sub-DAG and the new-id -> old-id map. *)

val map_weights : t -> work:(int -> int) -> comm:(int -> int) -> t
(** Rebuild the DAG with new weights; [work v] and [comm v] receive the
    node id. *)

(** {1 Content addressing} *)

val structural_hash : t -> Fnv.t
(** A 64-bit FNV-1a hash of the canonical structure: node count, CSR
    successor adjacency (sorted, deduplicated) and both weight arrays.
    Stable across processes and platforms, so it can key on-disk caches
    (DESIGN.md Section 5h). Two DAGs with equal node count, edge set
    and weights always hash equal; distinct DAGs collide only with
    generic 64-bit-hash probability. *)

(** {1 Well-formedness} *)

val is_acyclic_edges : n:int -> (int * int) list -> bool
(** Check a raw edge list for acyclicity without building a DAG. *)

val assign_paper_weights : t -> t
(** Apply the weight rule of Appendix B: [w v = max 1 (indeg v - 1)]
    for internal nodes with [indeg >= 1] (i.e. [indeg - 1], except that
    single-input nodes keep weight 0 is avoided by the rule
    [w = indeg - 1] with sources forced to 1); concretely
    [w v = 1] if [v] is a source, [indeg v - 1] otherwise, and
    [c v = 1] for every node. *)

val pp : Format.formatter -> t -> unit
(** Debug printer: size summary plus adjacency. *)
