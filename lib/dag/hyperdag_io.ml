let to_buffer buf g =
  let n = Dag.n g in
  Buffer.add_string buf "% hyperDAG: one hyperedge per non-sink node; first pin is the source\n";
  let hyperedges = ref [] in
  let num_pins = ref 0 in
  for u = n - 1 downto 0 do
    let s = Dag.succ g u in
    if Array.length s > 0 then begin
      hyperedges := (u, s) :: !hyperedges;
      num_pins := !num_pins + 1 + Array.length s
    end
  done;
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" (List.length !hyperedges) n !num_pins);
  List.iteri
    (fun e (u, s) ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" e u);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" e v)) s)
    !hyperedges;
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%d %d %d\n" v (Dag.work g v) (Dag.comm g v))
  done

let to_string g =
  let buf = Buffer.create 4096 in
  to_buffer buf g;
  Buffer.contents buf

let write oc g = output_string oc (to_string g)
let write_file path g = Atomic_file.write path (fun oc -> write oc g)

(* Parsing: split the whole input into significant lines first, then
   consume counts. *)
let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '%')
  in
  (* Tokenize on any whitespace: real HyperDAG_DB files mix spaces,
     tabs, and CRLF line endings. *)
  let parse_ints line =
    let is_ws c = c = ' ' || c = '\t' || c = '\r' in
    let n = String.length line in
    let rec go i acc =
      if i >= n then List.rev acc
      else if is_ws line.[i] then go (i + 1) acc
      else begin
        let j = ref i in
        while !j < n && not (is_ws line.[!j]) do
          incr j
        done;
        let tok = String.sub line i (!j - i) in
        match int_of_string_opt tok with
        | Some v -> go !j (v :: acc)
        | None -> failwith ("Hyperdag_io: not an integer: " ^ tok)
      end
    in
    go 0 []
  in
  match lines with
  | [] -> failwith "Hyperdag_io: empty input"
  | header :: rest ->
    let num_h, num_n, num_p =
      match parse_ints header with
      | [ h; n; p ] -> (h, n, p)
      | _ -> failwith "Hyperdag_io: header must be <hyperedges> <nodes> <pins>"
    in
    if List.length rest < num_p + num_n then failwith "Hyperdag_io: truncated file";
    let pins, weight_lines =
      let rec split i acc = function
        | rest when i = num_p -> (List.rev acc, rest)
        | [] -> failwith "Hyperdag_io: truncated pin section"
        | l :: tl -> split (i + 1) (l :: acc) tl
      in
      split 0 [] rest
    in
    let edge_source = Array.make num_h (-1) in
    let edges = ref [] in
    List.iter
      (fun line ->
        match parse_ints line with
        | [ e; v ] ->
          if e < 0 || e >= num_h then failwith "Hyperdag_io: hyperedge id out of range";
          if v < 0 || v >= num_n then failwith "Hyperdag_io: node id out of range";
          if edge_source.(e) < 0 then edge_source.(e) <- v
          else edges := (edge_source.(e), v) :: !edges
        | _ -> failwith "Hyperdag_io: pin line must be <hyperedge> <node>")
      pins;
    let work = Array.make num_n 1 in
    let comm = Array.make num_n 1 in
    (if List.length weight_lines > num_n then
       failwith
         (Printf.sprintf
            "Hyperdag_io: %d lines after the %d declared weight lines"
            (List.length weight_lines - num_n)
            num_n));
    List.iter
      (fun line ->
        match parse_ints line with
        | [ v; w; c ] ->
          if v < 0 || v >= num_n then failwith "Hyperdag_io: weight node id out of range";
          work.(v) <- w;
          comm.(v) <- c
        | _ -> failwith "Hyperdag_io: weight line must be <node> <work> <comm>")
      weight_lines;
    (try Dag.of_edges ~n:num_n ~edges:!edges ~work ~comm
     with Invalid_argument msg -> failwith ("Hyperdag_io: " ^ msg))

let read ic = of_string (In_channel.input_all ic)

let read_file path = In_channel.with_open_bin path read

(* ------------------------------------------------------------------ *)
(* Binary format (DESIGN.md Section 5h).

   The text path above slurps the whole file and allocates one string
   per line; the binary format below is both compact (LEB128 varints,
   gap-coded adjacency) and streamed — the reader decodes out of a
   fixed 64 KiB window and never materialises the file, the writer
   flushes its buffer at the same granularity. Layout, after the 6-byte
   magic "BHDG1\n":

     varint n, varint m
     n varints   work weights
     n varints   comm weights
     per node:   varint out-degree d, then d varints: the first
                 successor absolute, each following one encoded as the
                 gap (t_i - t_{i-1} - 1) — segments are sorted strictly
                 ascending in the canonical CSR form, so gaps are >= 0.

   Every declared count is enforced and trailing bytes are rejected, so
   truncated or garbage input fails loudly instead of yielding a
   plausible DAG. *)

let binary_magic = "BHDG1\n"

let fail fmt = Printf.ksprintf failwith fmt

(* Unsigned LEB128. Weights and ids are non-negative by Dag's
   construction invariants; guard anyway so a corrupt in-memory value
   cannot silently wrap. *)
let add_varint buf v =
  if v < 0 then fail "Hyperdag_io: cannot encode negative value %d" v;
  let v = ref v in
  let continue = ref true in
  while !continue do
    let b = !v land 0x7f in
    v := !v lsr 7;
    if !v = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

(* One encoder serves both the streaming channel writer (flush drains
   the buffer once it passes the window size) and the in-memory string
   form (flush is a no-op). *)
let encode_binary buf ~flush g =
  let n = Dag.n g in
  Buffer.add_string buf binary_magic;
  add_varint buf n;
  add_varint buf (Dag.num_edges g);
  for v = 0 to n - 1 do
    add_varint buf (Dag.work g v);
    flush ()
  done;
  for v = 0 to n - 1 do
    add_varint buf (Dag.comm g v);
    flush ()
  done;
  let off = Dag.succ_offsets g and tgt = Dag.succ_targets g in
  for v = 0 to n - 1 do
    add_varint buf (off.(v + 1) - off.(v));
    let prev = ref (-1) in
    for i = off.(v) to off.(v + 1) - 1 do
      let t = tgt.(i) in
      if !prev < 0 then add_varint buf t else add_varint buf (t - !prev - 1);
      prev := t
    done;
    flush ()
  done

let write_binary oc g =
  let buf = Buffer.create 65536 in
  let flush () =
    if Buffer.length buf >= 65536 then begin
      Buffer.output_buffer oc buf;
      Buffer.clear buf
    end
  in
  encode_binary buf ~flush g;
  Buffer.output_buffer oc buf

let to_binary_string g =
  let buf = Buffer.create 4096 in
  encode_binary buf ~flush:ignore g;
  Buffer.contents buf

let write_binary_file path g = Atomic_file.write path (fun oc -> write_binary oc g)

(* A pull-based byte source: channels refill a fixed window, strings
   are consumed in place. [next] returns the next byte or -1 at end of
   input. *)
type source = { next : unit -> int }

let source_of_channel ic =
  let cap = 65536 in
  let buf = Bytes.create cap in
  let pos = ref 0 and len = ref 0 in
  let next () =
    if !pos >= !len then begin
      len := input ic buf 0 cap;
      pos := 0
    end;
    if !len = 0 then -1
    else begin
      let b = Char.code (Bytes.get buf !pos) in
      incr pos;
      b
    end
  in
  { next }

let source_of_string s =
  let pos = ref 0 in
  let next () =
    if !pos >= String.length s then -1
    else begin
      let b = Char.code s.[!pos] in
      incr pos;
      b
    end
  in
  { next }

let read_varint src what =
  let rec go shift acc =
    if shift > 62 then fail "Hyperdag_io (binary): %s: varint overflow" what;
    match src.next () with
    | -1 -> fail "Hyperdag_io (binary): truncated input while reading %s" what
    | b ->
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let check_magic src =
  String.iter
    (fun c ->
      match src.next () with
      | b when b = Char.code c -> ()
      | -1 -> failwith "Hyperdag_io (binary): truncated magic"
      | _ -> failwith "Hyperdag_io (binary): bad magic (not a binary hyperDAG)")
    binary_magic

(* [magic_consumed] lets the format-sniffing reader hand over a source
   whose first 6 bytes were already read and matched. *)
let decode_binary ?(magic_consumed = false) src =
  if not magic_consumed then check_magic src;
  let n = read_varint src "node count" in
  let m = read_varint src "edge count" in
  if n < 0 then fail "Hyperdag_io (binary): negative node count";
  let work = Array.init n (fun _ -> read_varint src "work weight") in
  let comm = Array.init n (fun _ -> read_varint src "comm weight") in
  let edges = ref [] in
  let total = ref 0 in
  for v = 0 to n - 1 do
    let d = read_varint src "out-degree" in
    total := !total + d;
    if !total > m then
      fail "Hyperdag_io (binary): adjacency lists exceed the declared %d edges" m;
    let prev = ref (-1) in
    for _ = 1 to d do
      let enc = read_varint src "successor" in
      let t = if !prev < 0 then enc else !prev + 1 + enc in
      if t >= n then fail "Hyperdag_io (binary): successor %d out of range" t;
      edges := (v, t) :: !edges;
      prev := t
    done
  done;
  if !total <> m then
    fail "Hyperdag_io (binary): %d successors listed but header declares %d edges"
      !total m;
  if src.next () <> -1 then fail "Hyperdag_io (binary): trailing bytes after the DAG";
  try Dag.of_edges ~n ~edges:!edges ~work ~comm
  with Invalid_argument msg -> failwith ("Hyperdag_io (binary): " ^ msg)

let read_binary ic = decode_binary (source_of_channel ic)
let of_binary_string s = decode_binary (source_of_string s)
let read_binary_file path = In_channel.with_open_bin path read_binary

(* Format sniffing: a binary file starts with the magic, a text file
   starts with '%' or a digit. Reading through one shared source keeps
   this streaming for the binary case; the text fallback buffers the
   few magic bytes already consumed and slurps the rest (the text
   parser is line-oriented anyway). *)
let read_auto ic =
  let src = source_of_channel ic in
  let consumed = Buffer.create 8 in
  let matched = ref true in
  (try
     String.iter
       (fun c ->
         match src.next () with
         | -1 -> raise Exit
         | b ->
           Buffer.add_char consumed (Char.chr b);
           if b <> Char.code c then raise Exit)
       binary_magic
   with Exit -> matched := false);
  if !matched then decode_binary ~magic_consumed:true src
  else begin
    let rest = Buffer.create 4096 in
    Buffer.add_buffer rest consumed;
    let continue = ref true in
    while !continue do
      match src.next () with
      | -1 -> continue := false
      | b -> Buffer.add_char rest (Char.chr b)
    done;
    of_string (Buffer.contents rest)
  end

let read_file_auto path = In_channel.with_open_bin path read_auto
