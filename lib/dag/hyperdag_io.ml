let to_buffer buf g =
  let n = Dag.n g in
  Buffer.add_string buf "% hyperDAG: one hyperedge per non-sink node; first pin is the source\n";
  let hyperedges = ref [] in
  let num_pins = ref 0 in
  for u = n - 1 downto 0 do
    let s = Dag.succ g u in
    if Array.length s > 0 then begin
      hyperedges := (u, s) :: !hyperedges;
      num_pins := !num_pins + 1 + Array.length s
    end
  done;
  Buffer.add_string buf
    (Printf.sprintf "%d %d %d\n" (List.length !hyperedges) n !num_pins);
  List.iteri
    (fun e (u, s) ->
      Buffer.add_string buf (Printf.sprintf "%d %d\n" e u);
      Array.iter (fun v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" e v)) s)
    !hyperedges;
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf "%d %d %d\n" v (Dag.work g v) (Dag.comm g v))
  done

let to_string g =
  let buf = Buffer.create 4096 in
  to_buffer buf g;
  Buffer.contents buf

let write oc g = output_string oc (to_string g)

let write_file path g =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc g)

(* Parsing: split the whole input into significant lines first, then
   consume counts. *)
let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '%')
  in
  (* Tokenize on any whitespace: real HyperDAG_DB files mix spaces,
     tabs, and CRLF line endings. *)
  let parse_ints line =
    let is_ws c = c = ' ' || c = '\t' || c = '\r' in
    let n = String.length line in
    let rec go i acc =
      if i >= n then List.rev acc
      else if is_ws line.[i] then go (i + 1) acc
      else begin
        let j = ref i in
        while !j < n && not (is_ws line.[!j]) do
          incr j
        done;
        let tok = String.sub line i (!j - i) in
        match int_of_string_opt tok with
        | Some v -> go !j (v :: acc)
        | None -> failwith ("Hyperdag_io: not an integer: " ^ tok)
      end
    in
    go 0 []
  in
  match lines with
  | [] -> failwith "Hyperdag_io: empty input"
  | header :: rest ->
    let num_h, num_n, num_p =
      match parse_ints header with
      | [ h; n; p ] -> (h, n, p)
      | _ -> failwith "Hyperdag_io: header must be <hyperedges> <nodes> <pins>"
    in
    if List.length rest < num_p + num_n then failwith "Hyperdag_io: truncated file";
    let pins, weight_lines =
      let rec split i acc = function
        | rest when i = num_p -> (List.rev acc, rest)
        | [] -> failwith "Hyperdag_io: truncated pin section"
        | l :: tl -> split (i + 1) (l :: acc) tl
      in
      split 0 [] rest
    in
    let edge_source = Array.make num_h (-1) in
    let edges = ref [] in
    List.iter
      (fun line ->
        match parse_ints line with
        | [ e; v ] ->
          if e < 0 || e >= num_h then failwith "Hyperdag_io: hyperedge id out of range";
          if v < 0 || v >= num_n then failwith "Hyperdag_io: node id out of range";
          if edge_source.(e) < 0 then edge_source.(e) <- v
          else edges := (edge_source.(e), v) :: !edges
        | _ -> failwith "Hyperdag_io: pin line must be <hyperedge> <node>")
      pins;
    let work = Array.make num_n 1 in
    let comm = Array.make num_n 1 in
    (if List.length weight_lines > num_n then
       failwith
         (Printf.sprintf
            "Hyperdag_io: %d lines after the %d declared weight lines"
            (List.length weight_lines - num_n)
            num_n));
    List.iter
      (fun line ->
        match parse_ints line with
        | [ v; w; c ] ->
          if v < 0 || v >= num_n then failwith "Hyperdag_io: weight node id out of range";
          work.(v) <- w;
          comm.(v) <- c
        | _ -> failwith "Hyperdag_io: weight line must be <node> <work> <comm>")
      weight_lines;
    (try Dag.of_edges ~n:num_n ~edges:!edges ~work ~comm
     with Invalid_argument msg -> failwith ("Hyperdag_io: " ^ msg))

let read ic = of_string (In_channel.input_all ic)

let read_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read ic)
