(** HyperDAG file format.

    The paper's DAG database (Section 5, Appendix B) stores instances in
    a hypergraph format: each non-sink node [v] induces one hyperedge
    containing [v] and all its direct successors, which emphasises that
    the output of [v] needs to be sent to another processor at most once
    regardless of how many successors live there. The textual format
    implemented here follows the HyperDAG_DB convention:

    {v
    % comment lines (any number, anywhere before the header)
    <num_hyperedges> <num_nodes> <num_pins>
    <hyperedge_id> <node_id>          (one line per pin)
    ...
    <node_id> <work_weight> <comm_weight>   (one line per node)
    ...
    v}

    The first pin listed for a hyperedge is its source node; the
    remaining pins are the source's direct successors. Conversion back to
    a DAG simply adds an edge from the source of every hyperedge to each
    of its other pins, as all our algorithms operate on plain DAGs
    (Appendix B). *)

val write : out_channel -> Dag.t -> unit
(** Serialise a DAG in hyperDAG format. One hyperedge per node with at
    least one successor. *)

val write_file : string -> Dag.t -> unit

val read : in_channel -> Dag.t
(** Parse a hyperDAG file; raises [Failure] with a descriptive message on
    malformed input (bad counts, out-of-range pins, cyclic structure). *)

val read_file : string -> Dag.t

val to_string : Dag.t -> string
val of_string : string -> Dag.t
