(** HyperDAG file format.

    The paper's DAG database (Section 5, Appendix B) stores instances in
    a hypergraph format: each non-sink node [v] induces one hyperedge
    containing [v] and all its direct successors, which emphasises that
    the output of [v] needs to be sent to another processor at most once
    regardless of how many successors live there. The textual format
    implemented here follows the HyperDAG_DB convention:

    {v
    % comment lines (any number, anywhere before the header)
    <num_hyperedges> <num_nodes> <num_pins>
    <hyperedge_id> <node_id>          (one line per pin)
    ...
    <node_id> <work_weight> <comm_weight>   (one line per node)
    ...
    v}

    The first pin listed for a hyperedge is its source node; the
    remaining pins are the source's direct successors. Conversion back to
    a DAG simply adds an edge from the source of every hyperedge to each
    of its other pins, as all our algorithms operate on plain DAGs
    (Appendix B).

    Alongside the textual format, a compact {e binary} encoding is
    provided for the serving path (DESIGN.md Section 5h): after the
    magic ["BHDG1\n"] come LEB128 varints for the node and edge counts,
    the work weights, the comm weights, and per node its out-degree
    followed by its successors — first one absolute, the rest gap-coded
    against the previous (the canonical CSR segments are sorted
    strictly ascending, so gaps are non-negative and small). The binary
    reader and writer are streaming: both work through a fixed 64 KiB
    window instead of materialising the file, and the reader rejects
    truncated input, count mismatches, out-of-range ids and trailing
    bytes with a descriptive [Failure].

    All file access is binary-mode and all file writes are atomic
    ({!Atomic_file}), so round-trips are byte-exact on every platform
    and a killed writer never leaves a torn file. *)

val write : out_channel -> Dag.t -> unit
(** Serialise a DAG in hyperDAG format. One hyperedge per node with at
    least one successor. *)

val write_file : string -> Dag.t -> unit
(** Atomic: temp file + rename, see {!Atomic_file.write}. *)

val read : in_channel -> Dag.t
(** Parse a hyperDAG file; raises [Failure] with a descriptive message on
    malformed input (bad counts, out-of-range pins, cyclic structure). *)

val read_file : string -> Dag.t

val to_string : Dag.t -> string
val of_string : string -> Dag.t

(** {1 Binary format} *)

val binary_magic : string
(** ["BHDG1\n"] — the first six bytes of every binary hyperDAG. *)

val write_binary : out_channel -> Dag.t -> unit
val write_binary_file : string -> Dag.t -> unit

val read_binary : in_channel -> Dag.t
(** Streaming decode; raises [Failure] on bad magic, truncation,
    declared-count mismatches, out-of-range successors or trailing
    bytes. *)

val read_binary_file : string -> Dag.t
val to_binary_string : Dag.t -> string
val of_binary_string : string -> Dag.t

(** {1 Format sniffing} *)

val read_auto : in_channel -> Dag.t
(** Read either format: input starting with {!binary_magic} is decoded
    as binary (still streaming), anything else is parsed as text. *)

val read_file_auto : string -> Dag.t
(** The reader the CLI and the serve daemon use, so [.hdag] and
    [.bhdag] instances are interchangeable everywhere a DAG file is
    accepted. *)
