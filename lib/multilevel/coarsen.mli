(** Acyclicity-preserving DAG coarsening (Section 4.5, Appendix A.5).

    Coarsening repeatedly contracts a directed edge [(u, v)] into a
    single node, summing both weight kinds. An edge is contractable
    exactly when no {e other} directed path leads from [u] to [v];
    contracting it then cannot create a cycle. Contractable edges always
    exist in a non-trivial DAG.

    Edge selection follows the paper's rule: among contractable edges,
    prefer those in the smallest third by combined work weight
    [w u + w v] (so no oversized cluster is forced onto one processor),
    and among these pick the largest communication weight [c u] (saving
    the most traffic). The implementation processes edges in rounds —
    one sort per round, then greedy contraction with a fresh
    contractability test per edge — rather than fully re-sorting after
    every contraction; the preference order within a round is identical
    and the paper notes its own selection is a simple prototype.

    Every contraction is recorded so the multilevel driver can undo them
    one by one, mapping schedules between adjacent levels. *)

type t
(** A coarsening session over a fixed original DAG. Mutable. *)

type contraction = {
  kept : int;  (** representative that absorbed the other endpoint *)
  removed : int;  (** endpoint that disappeared *)
}

val start : Dag.t -> t

val original : t -> Dag.t

val num_alive : t -> int
(** Current number of coarse nodes. *)

type strategy =
  | Paper_rule
      (** the paper's selection: smallest third by [w u + w v], then
          largest [c u] (Appendix A.5) *)
  | Comm_matching
      (** greedy matching rounds by decreasing [c u]: every node takes
          part in at most one contraction per round, which spreads the
          clustering evenly — one of the "more complex DAG contraction
          methods" the paper leaves to future work *)

val coarsen_to : ?strategy:strategy -> t -> target:int -> unit
(** Contract edges until at most [target] nodes remain (or no
    contractable edge exists, which cannot happen above 1 node).
    [strategy] defaults to [Paper_rule]. *)

val history : t -> contraction list
(** All contractions performed, oldest first. Materialised from the
    flat history on each call; use {!num_contractions} when only the
    count is needed. *)

val num_contractions : t -> int
(** Number of contractions currently recorded (the length of
    {!history}), read from the stored count in O(1). *)

val undo_last : t -> contraction option
(** Undo the most recent contraction, restoring the finer level; [None]
    if fully uncoarsened. *)

val owner : t -> int -> int
(** [owner t v] is the coarse representative currently containing the
    original node [v]. *)

val alive : t -> int -> bool

val quotient : t -> Dag.t * int array
(** Materialise the current coarse level as a DAG with dense ids; also
    returns the map from coarse id to representative (original id).
    Node weights are the sums over the merged original nodes. *)
