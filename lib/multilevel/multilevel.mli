(** The multilevel scheduling framework (Sections 4.5, 6; Figure 4).

    Designed for instances dominated by communication costs, where
    single-node methods fail because only moving whole well-connected
    clusters between processors pays off. Three phases:

    + {b Coarsen} the DAG with {!Coarsen} to a fraction of its size;
    + {b Solve} the coarse instance with the base scheduling pipeline
      (passed in as a callback, so this library does not depend on the
      pipeline assembly);
    + {b Uncoarsen and refine}: undo the contractions a few at a time,
      projecting the schedule onto the finer level (every restored node
      inherits the processor and superstep of its cluster, which keeps
      the schedule valid) and running a bounded number of HC improvement
      moves at each level.

    As in the paper, HCcs is not run during refinement — the coarse DAG
    over-estimates communication because cluster weights are summed —
    and the caller is expected to run the communication-schedule
    optimisers (HCcs, ILPcs) on the final fully-uncoarsened schedule.
    The standard configuration tries coarsening ratios 0.15 and 0.30 and
    keeps the cheaper result (Appendix A.5). *)

type config = {
  ratios : float list;  (** coarsening targets as fractions of [n] *)
  refine_interval : int;  (** uncontractions between refinement rounds *)
  refine_moves : int;  (** max HC moves per refinement round *)
  strategy : Coarsen.strategy;  (** edge-selection rule for coarsening *)
}

val default_config : config
(** [ratios = [0.3; 0.15]], [refine_interval = 5], [refine_moves = 100],
    the paper's edge-selection rule. *)

val run :
  ?config:config ->
  ?budget:Budget.t ->
  ?shards:int ->
  solver:(Machine.t -> Dag.t -> Schedule.t) ->
  Machine.t ->
  Dag.t ->
  Schedule.t
(** Run the full multilevel pipeline for each configured ratio and
    return the cheapest resulting schedule (without the final
    HCcs/ILPcs polish, which the caller owns). [budget] bounds the HC
    refinement work across all levels. [shards] (default 1) is passed
    to each refinement's {!Hc.improve} — sharded refinement is
    bit-identical to sequential, so it never changes the result. *)

val run_ratio :
  ?budget:Budget.t ->
  ?strategy:Coarsen.strategy ->
  ?shards:int ->
  refine_interval:int ->
  refine_moves:int ->
  solver:(Machine.t -> Dag.t -> Schedule.t) ->
  ratio:float ->
  Machine.t ->
  Dag.t ->
  Schedule.t
(** One coarsen-solve-refine pass at a single ratio; exposed for the
    C15-vs-C30 ablation (Table 13/14 rows) and the coarsening-strategy
    ablation. [shards] as in {!run}. *)
