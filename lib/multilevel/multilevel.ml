type config = {
  ratios : float list;
  refine_interval : int;
  refine_moves : int;
  strategy : Coarsen.strategy;
}

let default_config =
  {
    ratios = [ 0.3; 0.15 ];
    refine_interval = 5;
    refine_moves = 100;
    strategy = Coarsen.Paper_rule;
  }

(* Project the per-representative assignment onto the current level of
   the coarsening session as a schedule on its quotient DAG, refine with
   HC, and write the result back into the per-representative arrays. *)
let refine_level ?budget ~refine_moves session machine ~proc_of ~step_of =
  let qdag, rep_of_id = Coarsen.quotient session in
  let nq = Dag.n qdag in
  let proc = Array.init nq (fun i -> proc_of.(rep_of_id.(i))) in
  let step = Array.init nq (fun i -> step_of.(rep_of_id.(i))) in
  let sched = Schedule.of_assignment qdag ~proc ~step in
  let improved, stats = Hc.improve ?budget ~max_moves:refine_moves machine sched in
  Obs.Metrics.counter "multilevel.refine_passes" 1;
  Obs.Metrics.counter "multilevel.refine_moves_applied" stats.Hc.moves_applied;
  Array.iteri
    (fun i r ->
      proc_of.(r) <- improved.Schedule.proc.(i);
      step_of.(r) <- improved.Schedule.step.(i))
    rep_of_id

let run_ratio ?budget ?(strategy = Coarsen.Paper_rule) ~refine_interval ~refine_moves
    ~solver ~ratio machine dag =
  let n = Dag.n dag in
  let target = max 2 (int_of_float (ratio *. float_of_int n)) in
  let session = Coarsen.start dag in
  Coarsen.coarsen_to ~strategy session ~target;
  let qdag, rep_of_id = Coarsen.quotient session in
  Obs.Metrics.counter "multilevel.runs" 1;
  Obs.Metrics.counter "multilevel.contractions" (List.length (Coarsen.history session));
  Obs.Metrics.gauge "multilevel.coarse_nodes" (float_of_int (Dag.n qdag));
  let coarse = solver machine qdag in
  (* Per-representative assignment, indexed by original node ids. *)
  let proc_of = Array.make n 0 in
  let step_of = Array.make n 0 in
  Array.iteri
    (fun i r ->
      proc_of.(r) <- coarse.Schedule.proc.(i);
      step_of.(r) <- coarse.Schedule.step.(i))
    rep_of_id;
  (* Uncoarsen in chunks, refining after each chunk. *)
  let remaining = ref (List.length (Coarsen.history session)) in
  while !remaining > 0 do
    let chunk = min refine_interval !remaining in
    for _ = 1 to chunk do
      match Coarsen.undo_last session with
      | Some { Coarsen.kept; removed } ->
        proc_of.(removed) <- proc_of.(kept);
        step_of.(removed) <- step_of.(kept)
      | None -> ()
    done;
    remaining := !remaining - chunk;
    refine_level ?budget ~refine_moves session machine ~proc_of ~step_of
  done;
  Schedule.compact (Schedule.of_assignment dag ~proc:proc_of ~step:step_of)

let run ?(config = default_config) ?budget ~solver machine dag =
  let candidates =
    List.map
      (fun ratio ->
        run_ratio ?budget ~strategy:config.strategy
          ~refine_interval:config.refine_interval ~refine_moves:config.refine_moves
          ~solver ~ratio machine dag)
      config.ratios
  in
  match candidates with
  | [] -> invalid_arg "Multilevel.run: no ratios configured"
  | first :: rest ->
    List.fold_left
      (fun best cand ->
        if Bsp_cost.total machine cand < Bsp_cost.total machine best then cand else best)
      first rest
