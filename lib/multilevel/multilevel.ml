type config = {
  ratios : float list;
  refine_interval : int;
  refine_moves : int;
  strategy : Coarsen.strategy;
}

let default_config =
  {
    ratios = [ 0.3; 0.15 ];
    refine_interval = 5;
    refine_moves = 100;
    strategy = Coarsen.Paper_rule;
  }

(* Project the per-representative assignment onto the current level of
   the coarsening session as a schedule on its quotient DAG, refine with
   HC, and write the result back into the per-representative arrays. *)
let refine_level ?budget ~refine_moves ~shards session machine ~proc_of ~step_of =
  let qdag, rep_of_id = Coarsen.quotient session in
  let nq = Dag.n qdag in
  let proc = Array.init nq (fun i -> proc_of.(rep_of_id.(i))) in
  let step = Array.init nq (fun i -> step_of.(rep_of_id.(i))) in
  let sched = Schedule.of_assignment qdag ~proc ~step in
  let improved, stats = Hc.improve ?budget ~max_moves:refine_moves ~shards machine sched in
  Obs.Metrics.counter "multilevel.refine_passes" 1;
  Obs.Metrics.counter "multilevel.refine_moves_applied" stats.Hc.moves_applied;
  Array.iteri
    (fun i r ->
      proc_of.(r) <- improved.Schedule.proc.(i);
      step_of.(r) <- improved.Schedule.step.(i))
    rep_of_id

let run_ratio ?budget ?(strategy = Coarsen.Paper_rule) ?(shards = 1) ~refine_interval
    ~refine_moves ~solver ~ratio machine dag =
  let n = Dag.n dag in
  let target = max 2 (int_of_float (ratio *. float_of_int n)) in
  let session = Coarsen.start dag in
  Coarsen.coarsen_to ~strategy session ~target;
  let qdag, rep_of_id = Coarsen.quotient session in
  Obs.Metrics.counter "multilevel.runs" 1;
  Obs.Metrics.counter "multilevel.contractions" (Coarsen.num_contractions session);
  Obs.Metrics.gauge "multilevel.coarse_nodes" (float_of_int (Dag.n qdag));
  let coarse = solver machine qdag in
  (* Level sizes only grow during uncoarsening, so without intervention
     every level's refinement state would find the previous (smaller)
     level's pooled arrays too small and allocate fresh ones. Parking
     one state at the finest level's capacity up front makes every
     refinement init below draw from the pool. The superstep count is
     fixed by the coarse solve: refinement moves within the existing
     range and compaction only happens at the very end. *)
  Assignment_state.prewarm machine dag ~num_steps:(Schedule.num_supersteps coarse);
  (* Per-representative assignment, indexed by original node ids. *)
  let proc_of = Array.make n 0 in
  let step_of = Array.make n 0 in
  Array.iteri
    (fun i r ->
      proc_of.(r) <- coarse.Schedule.proc.(i);
      step_of.(r) <- coarse.Schedule.step.(i))
    rep_of_id;
  (* Uncoarsen in chunks, refining after each chunk. *)
  let remaining = ref (Coarsen.num_contractions session) in
  while !remaining > 0 do
    let chunk = min refine_interval !remaining in
    for _ = 1 to chunk do
      match Coarsen.undo_last session with
      | Some { Coarsen.kept; removed } ->
        proc_of.(removed) <- proc_of.(kept);
        step_of.(removed) <- step_of.(kept)
      | None -> ()
    done;
    remaining := !remaining - chunk;
    refine_level ?budget ~refine_moves ~shards session machine ~proc_of ~step_of
  done;
  Schedule.compact (Schedule.of_assignment dag ~proc:proc_of ~step:step_of)

let run ?(config = default_config) ?budget ?shards ~solver machine dag =
  let candidates =
    List.map
      (fun ratio ->
        run_ratio ?budget ~strategy:config.strategy ?shards
          ~refine_interval:config.refine_interval ~refine_moves:config.refine_moves
          ~solver ~ratio machine dag)
      config.ratios
  in
  match candidates with
  | [] -> invalid_arg "Multilevel.run: no ratios configured"
  | first :: rest ->
    List.fold_left
      (fun best cand ->
        if Bsp_cost.total machine cand < Bsp_cost.total machine best then cand else best)
      first rest
