module Int_set = Set.Make (Int)

type contraction = { kept : int; removed : int }

type record = {
  c : contraction;
  members_len_before : int;
  kept_succ_before : Int_set.t;
  kept_pred_before : Int_set.t;
}

type members = { mutable arr : int array; mutable len : int }

type t = {
  original : Dag.t;
  succ : Int_set.t array;
  pred : Int_set.t array;
  work : int array;
  comm : int array;
  alive_flag : bool array;
  mutable alive_count : int;
  members : members array;
  owner_of : int array;
  mutable records : record list;  (* newest first *)
}

let members_push m x =
  if m.len = Array.length m.arr then begin
    let arr = Array.make (max 4 (2 * m.len)) 0 in
    Array.blit m.arr 0 arr 0 m.len;
    m.arr <- arr
  end;
  m.arr.(m.len) <- x;
  m.len <- m.len + 1

let start dag =
  let n = Dag.n dag in
  {
    original = dag;
    succ =
      Array.init n (fun v ->
          Dag.fold_succ dag v ~init:Int_set.empty (fun s w -> Int_set.add w s));
    pred =
      Array.init n (fun v ->
          Dag.fold_pred dag v ~init:Int_set.empty (fun s u -> Int_set.add u s));
    work = Array.init n (Dag.work dag);
    comm = Array.init n (Dag.comm dag);
    alive_flag = Array.make n true;
    alive_count = n;
    members = Array.init n (fun v -> { arr = [| v |]; len = 1 });
    owner_of = Array.init n Fun.id;
    records = [];
  }

let original t = t.original
let num_alive t = t.alive_count
let alive t v = t.alive_flag.(v)
let owner t v = t.owner_of.(v)

let history t = List.rev_map (fun r -> r.c) t.records

(* Is there a directed path u ~> v besides the edge (u, v) itself? *)
let has_alternative_path t u v =
  let visited = Hashtbl.create 32 in
  let rec dfs x ~first =
    Int_set.exists
      (fun y ->
        if first && y = v then false
        else if y = v then true
        else if Hashtbl.mem visited y then false
        else begin
          Hashtbl.add visited y ();
          dfs y ~first:false
        end)
      t.succ.(x)
  in
  dfs u ~first:true

let contract t u v =
  let record =
    {
      c = { kept = u; removed = v };
      members_len_before = t.members.(u).len;
      kept_succ_before = t.succ.(u);
      kept_pred_before = t.pred.(u);
    }
  in
  t.work.(u) <- t.work.(u) + t.work.(v);
  t.comm.(u) <- t.comm.(u) + t.comm.(v);
  Int_set.iter
    (fun w ->
      if w <> u then begin
        t.succ.(u) <- Int_set.add w t.succ.(u);
        t.pred.(w) <- Int_set.add u (Int_set.remove v t.pred.(w))
      end)
    t.succ.(v);
  Int_set.iter
    (fun x ->
      if x <> u then begin
        t.pred.(u) <- Int_set.add x t.pred.(u);
        t.succ.(x) <- Int_set.add u (Int_set.remove v t.succ.(x))
      end)
    t.pred.(v);
  t.succ.(u) <- Int_set.remove v t.succ.(u);
  t.alive_flag.(v) <- false;
  t.alive_count <- t.alive_count - 1;
  let mv = t.members.(v) in
  for i = 0 to mv.len - 1 do
    members_push t.members.(u) mv.arr.(i);
    t.owner_of.(mv.arr.(i)) <- u
  done;
  t.records <- record :: t.records

let undo_last t =
  match t.records with
  | [] -> None
  | r :: rest ->
    t.records <- rest;
    let u = r.c.kept and v = r.c.removed in
    (* Note: v's own adjacency sets were never modified, so they still
       describe the finer level. Neighbour sets are rolled back using the
       snapshot of u's adjacency to decide whether u keeps the edge. *)
    Int_set.iter
      (fun w ->
        if w <> u then begin
          let p = Int_set.add v t.pred.(w) in
          t.pred.(w) <-
            (if Int_set.mem w r.kept_succ_before then p else Int_set.remove u p)
        end)
      t.succ.(v);
    Int_set.iter
      (fun x ->
        if x <> u then begin
          let s = Int_set.add v t.succ.(x) in
          t.succ.(x) <-
            (if Int_set.mem x r.kept_pred_before then s else Int_set.remove u s)
        end)
      t.pred.(v);
    t.succ.(u) <- r.kept_succ_before;
    t.pred.(u) <- r.kept_pred_before;
    t.work.(u) <- t.work.(u) - t.work.(v);
    t.comm.(u) <- t.comm.(u) - t.comm.(v);
    let mu = t.members.(u) in
    for i = r.members_len_before to mu.len - 1 do
      t.owner_of.(mu.arr.(i)) <- v
    done;
    mu.len <- r.members_len_before;
    t.alive_flag.(v) <- true;
    t.alive_count <- t.alive_count + 1;
    Some r.c

let current_edges t =
  let acc = ref [] in
  for u = Array.length t.alive_flag - 1 downto 0 do
    if t.alive_flag.(u) then
      Int_set.iter (fun v -> acc := (u, v) :: !acc) t.succ.(u)
  done;
  !acc

type strategy = Paper_rule | Comm_matching

let coarsen_to ?(strategy = Paper_rule) t ~target =
  let target = max 1 target in
  let made_progress = ref true in
  while t.alive_count > target && !made_progress do
    made_progress := false;
    let edges = current_edges t in
    if edges <> [] then begin
      let candidates =
        match strategy with
        | Paper_rule ->
          (* Smallest third by combined work weight, largest c(u) first
             within it; the remaining edges serve as fallback in the same
             secondary order. *)
          let by_weight =
            List.sort
              (fun (u1, v1) (u2, v2) ->
                compare (t.work.(u1) + t.work.(v1)) (t.work.(u2) + t.work.(v2)))
              edges
          in
          let third = max 1 ((List.length by_weight + 2) / 3) in
          let front = List.filteri (fun i _ -> i < third) by_weight in
          let back = List.filteri (fun i _ -> i >= third) by_weight in
          let by_comm l =
            List.stable_sort (fun (u1, _) (u2, _) -> compare t.comm.(u2) t.comm.(u1)) l
          in
          by_comm front @ by_comm back
        | Comm_matching ->
          List.sort (fun (u1, _) (u2, _) -> compare t.comm.(u2) t.comm.(u1)) edges
      in
      let matched = Hashtbl.create 64 in
      List.iter
        (fun (u, v) ->
          let blocked_by_matching =
            match strategy with
            | Paper_rule -> false
            | Comm_matching -> Hashtbl.mem matched u || Hashtbl.mem matched v
          in
          if
            t.alive_count > target
            && (not blocked_by_matching)
            && t.alive_flag.(u)
            && t.alive_flag.(v)
            && Int_set.mem v t.succ.(u)
            && not (has_alternative_path t u v)
          then begin
            contract t u v;
            (match strategy with
             | Paper_rule -> ()
             | Comm_matching ->
               Hashtbl.replace matched u ();
               Hashtbl.replace matched v ());
            made_progress := true
          end)
        candidates
    end
  done

let quotient t =
  let n = Array.length t.alive_flag in
  (* Dense renumbering via a flat array rather than a hashtable: this
     runs once per refinement level in the multilevel inner loop. *)
  let id_of_rep = Array.make (max n 1) (-1) in
  let count = ref 0 in
  for v = 0 to n - 1 do
    if t.alive_flag.(v) then begin
      id_of_rep.(v) <- !count;
      incr count
    end
  done;
  let rep_of_id = Array.make !count 0 in
  for v = 0 to n - 1 do
    if t.alive_flag.(v) then rep_of_id.(id_of_rep.(v)) <- v
  done;
  let edges = ref [] in
  for u = n - 1 downto 0 do
    if t.alive_flag.(u) then
      Int_set.iter
        (fun v -> edges := (id_of_rep.(u), id_of_rep.(v)) :: !edges)
        t.succ.(u)
  done;
  let work = Array.map (fun r -> t.work.(r)) rep_of_id in
  let comm = Array.map (fun r -> t.comm.(r)) rep_of_id in
  let dag = Dag.of_edges_unchecked ~n:!count ~edges:!edges ~work ~comm in
  (dag, rep_of_id)
