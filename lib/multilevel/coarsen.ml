(* Allocation-lean coarsening session (DESIGN.md Section 5j).

   Adjacency lives in per-node sorted int arrays (strictly increasing,
   duplicate-free — the array form of the former Int_set.t), so the
   contraction loop touches flat memory instead of churning persistent
   balanced trees. The contraction history is a flat arena: per-record
   metadata in parallel int arrays with a stored count, and the
   pre-contraction adjacency snapshots of the kept node copied into one
   shared data buffer — undo pops by truncation, metrics read the count
   in O(1), and nothing in the session allocates per contraction beyond
   amortised array doubling. *)

type contraction = { kept : int; removed : int }

type members = { mutable arr : int array; mutable len : int }

type t = {
  original : Dag.t;
  (* Sorted dynamic adjacency: segment [adj.(v).(0 .. len.(v) - 1)]. *)
  succ_a : int array array;
  succ_len : int array;
  pred_a : int array array;
  pred_len : int array;
  work : int array;
  comm : int array;
  alive_flag : bool array;
  mutable alive_count : int;
  members : members array;
  owner_of : int array;
  (* Contraction history: [rec_count] records, oldest first. The kept
     node's pre-contraction successor and predecessor segments are
     copied to [hist.(rec_soff.(i) ..)] (succ first, pred after), so a
     record is six ints plus its snapshot span. *)
  mutable rec_count : int;
  mutable rec_kept : int array;
  mutable rec_removed : int array;
  mutable rec_mlen : int array;
  mutable rec_soff : int array;
  mutable rec_slen : int array;
  mutable rec_plen : int array;
  mutable hist : int array;
  mutable hist_len : int;
  (* Per-session scratch for candidate selection and the DFS guard:
     edge endpoints, two order buffers for the stable merge sort, and
     stamp arrays replacing the per-call hashtables. *)
  e_u : int array;
  e_v : int array;
  ord : int array;
  ord_tmp : int array;
  dfs_stamp : int array;
  mutable dfs_gen : int;
  match_stamp : int array;
  mutable match_gen : int;
}

let members_push m x =
  if m.len = Array.length m.arr then begin
    let arr = Array.make (max 4 (2 * m.len)) 0 in
    Array.blit m.arr 0 arr 0 m.len;
    m.arr <- arr
  end;
  m.arr.(m.len) <- x;
  m.len <- m.len + 1

(* ------------------------------------------------------------------ *)
(* Sorted-segment primitives.                                          *)

(* Position of the first entry >= x (the insertion point). *)
let lower_bound a len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let seg_mem a len x =
  let i = lower_bound a len x in
  i < len && a.(i) = x

(* Insert keeping the segment sorted; no-op when already present. *)
let seg_add arrs lens v x =
  let a = arrs.(v) and len = lens.(v) in
  let i = lower_bound a len x in
  if not (i < len && a.(i) = x) then begin
    let a =
      if len = Array.length a then begin
        let bigger = Array.make (max 4 (2 * len)) 0 in
        Array.blit a 0 bigger 0 len;
        arrs.(v) <- bigger;
        bigger
      end
      else a
    in
    Array.blit a i a (i + 1) (len - i);
    a.(i) <- x;
    lens.(v) <- len + 1
  end

(* Remove; no-op when absent. *)
let seg_remove arrs lens v x =
  let a = arrs.(v) and len = lens.(v) in
  let i = lower_bound a len x in
  if i < len && a.(i) = x then begin
    Array.blit a (i + 1) a i (len - i - 1);
    lens.(v) <- len - 1
  end

let start dag =
  let n = Dag.n dag in
  let m0 = Dag.num_edges dag in
  let soff = Dag.succ_offsets dag and stgt = Dag.succ_targets dag in
  let poff = Dag.pred_offsets dag and ptgt = Dag.pred_targets dag in
  {
    original = dag;
    succ_a =
      Array.init n (fun v -> Array.sub stgt soff.(v) (soff.(v + 1) - soff.(v)));
    succ_len = Array.init n (fun v -> soff.(v + 1) - soff.(v));
    pred_a =
      Array.init n (fun v -> Array.sub ptgt poff.(v) (poff.(v + 1) - poff.(v)));
    pred_len = Array.init n (fun v -> poff.(v + 1) - poff.(v));
    work = Array.init n (Dag.work dag);
    comm = Array.init n (Dag.comm dag);
    alive_flag = Array.make n true;
    alive_count = n;
    members = Array.init n (fun v -> { arr = [| v |]; len = 1 });
    owner_of = Array.init n Fun.id;
    rec_count = 0;
    rec_kept = [||];
    rec_removed = [||];
    rec_mlen = [||];
    rec_soff = [||];
    rec_slen = [||];
    rec_plen = [||];
    hist = [||];
    hist_len = 0;
    e_u = Array.make m0 0;
    e_v = Array.make m0 0;
    ord = Array.make m0 0;
    ord_tmp = Array.make m0 0;
    dfs_stamp = Array.make n 0;
    dfs_gen = 0;
    match_stamp = Array.make n 0;
    match_gen = 0;
  }

let original t = t.original
let num_alive t = t.alive_count
let alive t v = t.alive_flag.(v)
let owner t v = t.owner_of.(v)

let num_contractions t = t.rec_count

let history t =
  List.init t.rec_count (fun i ->
      { kept = t.rec_kept.(i); removed = t.rec_removed.(i) })

(* ------------------------------------------------------------------ *)
(* History arena.                                                      *)

let grow_int_arr a needed =
  if Array.length a >= needed then a
  else begin
    let bigger = Array.make (max 16 (max needed (2 * Array.length a))) 0 in
    Array.blit a 0 bigger 0 (Array.length a);
    bigger
  end

let hist_reserve t extra =
  t.hist <- grow_int_arr t.hist (t.hist_len + extra)

let rec_reserve t =
  let needed = t.rec_count + 1 in
  if Array.length t.rec_kept < needed then begin
    t.rec_kept <- grow_int_arr t.rec_kept needed;
    t.rec_removed <- grow_int_arr t.rec_removed needed;
    t.rec_mlen <- grow_int_arr t.rec_mlen needed;
    t.rec_soff <- grow_int_arr t.rec_soff needed;
    t.rec_slen <- grow_int_arr t.rec_slen needed;
    t.rec_plen <- grow_int_arr t.rec_plen needed
  end

(* Is there a directed path u ~> v besides the edge (u, v) itself? The
   visited set is a generation-stamped array, so repeated queries from
   the candidate loop allocate nothing. *)
let has_alternative_path t u v =
  t.dfs_gen <- t.dfs_gen + 1;
  let gen = t.dfs_gen in
  let rec dfs x ~first =
    let a = t.succ_a.(x) and len = t.succ_len.(x) in
    let i = ref 0 and found = ref false in
    while (not !found) && !i < len do
      let y = a.(!i) in
      if y = v then found := not first
      else if t.dfs_stamp.(y) <> gen then begin
        t.dfs_stamp.(y) <- gen;
        if dfs y ~first:false then found := true
      end;
      incr i
    done;
    !found
  in
  dfs u ~first:true

let contract t u v =
  rec_reserve t;
  let su = t.succ_len.(u) and pu = t.pred_len.(u) in
  hist_reserve t (su + pu);
  let i = t.rec_count in
  t.rec_kept.(i) <- u;
  t.rec_removed.(i) <- v;
  t.rec_mlen.(i) <- t.members.(u).len;
  t.rec_soff.(i) <- t.hist_len;
  t.rec_slen.(i) <- su;
  t.rec_plen.(i) <- pu;
  Array.blit t.succ_a.(u) 0 t.hist t.hist_len su;
  Array.blit t.pred_a.(u) 0 t.hist (t.hist_len + su) pu;
  t.hist_len <- t.hist_len + su + pu;
  t.rec_count <- i + 1;
  t.work.(u) <- t.work.(u) + t.work.(v);
  t.comm.(u) <- t.comm.(u) + t.comm.(v);
  let sv = t.succ_a.(v) in
  for k = 0 to t.succ_len.(v) - 1 do
    let w = sv.(k) in
    if w <> u then begin
      seg_add t.succ_a t.succ_len u w;
      seg_remove t.pred_a t.pred_len w v;
      seg_add t.pred_a t.pred_len w u
    end
  done;
  let pv = t.pred_a.(v) in
  for k = 0 to t.pred_len.(v) - 1 do
    let x = pv.(k) in
    if x <> u then begin
      seg_add t.pred_a t.pred_len u x;
      seg_remove t.succ_a t.succ_len x v;
      seg_add t.succ_a t.succ_len x u
    end
  done;
  seg_remove t.succ_a t.succ_len u v;
  t.alive_flag.(v) <- false;
  t.alive_count <- t.alive_count - 1;
  let mv = t.members.(v) in
  for k = 0 to mv.len - 1 do
    members_push t.members.(u) mv.arr.(k);
    t.owner_of.(mv.arr.(k)) <- u
  done

let undo_last t =
  if t.rec_count = 0 then None
  else begin
    let i = t.rec_count - 1 in
    let u = t.rec_kept.(i) and v = t.rec_removed.(i) in
    let soff = t.rec_soff.(i) and slen = t.rec_slen.(i) and plen = t.rec_plen.(i) in
    (* v's own adjacency segments were never modified, so they still
       describe the finer level. Neighbour segments are rolled back
       using the snapshot of u's adjacency (a sorted span of the arena)
       to decide whether u keeps the edge. *)
    let span_mem off len x =
      let lo = ref 0 and hi = ref len in
      while !lo < !hi do
        let mid = (!lo + !hi) / 2 in
        if t.hist.(off + mid) < x then lo := mid + 1 else hi := mid
      done;
      !lo < len && t.hist.(off + !lo) = x
    in
    let sv = t.succ_a.(v) in
    for k = 0 to t.succ_len.(v) - 1 do
      let w = sv.(k) in
      if w <> u then begin
        seg_add t.pred_a t.pred_len w v;
        if not (span_mem soff slen w) then seg_remove t.pred_a t.pred_len w u
      end
    done;
    let pv = t.pred_a.(v) in
    for k = 0 to t.pred_len.(v) - 1 do
      let x = pv.(k) in
      if x <> u then begin
        seg_add t.succ_a t.succ_len x v;
        if not (span_mem (soff + slen) plen x) then seg_remove t.succ_a t.succ_len x u
      end
    done;
    (* Restore u's segments from the snapshot (capacity only ever
       grew, so the blit always fits). *)
    Array.blit t.hist soff t.succ_a.(u) 0 slen;
    t.succ_len.(u) <- slen;
    Array.blit t.hist (soff + slen) t.pred_a.(u) 0 plen;
    t.pred_len.(u) <- plen;
    t.work.(u) <- t.work.(u) - t.work.(v);
    t.comm.(u) <- t.comm.(u) - t.comm.(v);
    let mu = t.members.(u) in
    for k = t.rec_mlen.(i) to mu.len - 1 do
      t.owner_of.(mu.arr.(k)) <- v
    done;
    mu.len <- t.rec_mlen.(i);
    t.alive_flag.(v) <- true;
    t.alive_count <- t.alive_count + 1;
    t.hist_len <- soff;
    t.rec_count <- i;
    Some { kept = u; removed = v }
  end

(* ------------------------------------------------------------------ *)
(* Candidate selection.                                                *)

type strategy = Paper_rule | Comm_matching

(* Fill the session edge buffers with the current coarse edges in the
   historical candidate order — u ascending, v descending within u
   (the order the list-based implementation produced) — and return the
   count. *)
let collect_edges t =
  let n = Array.length t.alive_flag in
  let k = ref 0 in
  for u = 0 to n - 1 do
    if t.alive_flag.(u) then begin
      let a = t.succ_a.(u) in
      for i = t.succ_len.(u) - 1 downto 0 do
        t.e_u.(!k) <- u;
        t.e_v.(!k) <- a.(i);
        incr k
      done
    end
  done;
  !k

(* Bottom-up merge sort of ord.(lo .. hi - 1), stable, using the
   session's ord_tmp buffer — stability is what lets the array path
   reproduce the List.sort candidate order bit for bit. *)
let stable_sort_range ord tmp lo hi cmp =
  let len = hi - lo in
  if len > 1 then begin
    let width = ref 1 in
    while !width < len do
      let lo2 = ref lo in
      while !lo2 + !width < hi do
        let mid = !lo2 + !width in
        let hi2 = min hi (mid + !width) in
        (* merge ord[lo2, mid) and ord[mid, hi2) *)
        Array.blit ord !lo2 tmp !lo2 (hi2 - !lo2);
        let a = ref !lo2 and b = ref mid and out = ref !lo2 in
        while !a < mid && !b < hi2 do
          if cmp tmp.(!a) tmp.(!b) <= 0 then begin
            ord.(!out) <- tmp.(!a);
            incr a
          end
          else begin
            ord.(!out) <- tmp.(!b);
            incr b
          end;
          incr out
        done;
        while !a < mid do
          ord.(!out) <- tmp.(!a);
          incr a;
          incr out
        done;
        while !b < hi2 do
          ord.(!out) <- tmp.(!b);
          incr b;
          incr out
        done;
        lo2 := hi2
      done;
      width := 2 * !width
    done
  end

let coarsen_to ?(strategy = Paper_rule) t ~target =
  let target = max 1 target in
  let made_progress = ref true in
  while t.alive_count > target && !made_progress do
    made_progress := false;
    let k = collect_edges t in
    if k > 0 then begin
      for i = 0 to k - 1 do
        t.ord.(i) <- i
      done;
      (match strategy with
       | Paper_rule ->
         (* Smallest third by combined work weight, largest c(u) first
            within it; the remaining edges serve as fallback in the same
            secondary order. *)
         stable_sort_range t.ord t.ord_tmp 0 k (fun i j ->
             compare
               (t.work.(t.e_u.(i)) + t.work.(t.e_v.(i)))
               (t.work.(t.e_u.(j)) + t.work.(t.e_v.(j))));
         let third = max 1 ((k + 2) / 3) in
         let by_comm lo hi =
           stable_sort_range t.ord t.ord_tmp lo hi (fun i j ->
               compare t.comm.(t.e_u.(j)) t.comm.(t.e_u.(i)))
         in
         by_comm 0 (min third k);
         by_comm (min third k) k
       | Comm_matching ->
         stable_sort_range t.ord t.ord_tmp 0 k (fun i j ->
             compare t.comm.(t.e_u.(j)) t.comm.(t.e_u.(i))));
      t.match_gen <- t.match_gen + 1;
      let gen = t.match_gen in
      for idx = 0 to k - 1 do
        let e = t.ord.(idx) in
        let u = t.e_u.(e) and v = t.e_v.(e) in
        let blocked_by_matching =
          match strategy with
          | Paper_rule -> false
          | Comm_matching -> t.match_stamp.(u) = gen || t.match_stamp.(v) = gen
        in
        if
          t.alive_count > target
          && (not blocked_by_matching)
          && t.alive_flag.(u)
          && t.alive_flag.(v)
          && seg_mem t.succ_a.(u) t.succ_len.(u) v
          && not (has_alternative_path t u v)
        then begin
          contract t u v;
          (match strategy with
           | Paper_rule -> ()
           | Comm_matching ->
             t.match_stamp.(u) <- gen;
             t.match_stamp.(v) <- gen);
          made_progress := true
        end
      done
    end
  done

let quotient t =
  let n = Array.length t.alive_flag in
  (* Dense renumbering via the session's stamp scratch rather than a
     hashtable or a fresh array: this runs once per refinement level in
     the multilevel inner loop. The renumbering is monotone in the
     original ids, so the sorted adjacency segments stay sorted and the
     quotient CSR can be handed to the DAG without a sort or dedup. *)
  let id_of_rep = t.ord_tmp in
  (* m0 >= n would be needed to reuse ord_tmp; DAGs with fewer edges
     than nodes exist, so fall back to a fresh array there. *)
  let id_of_rep = if Array.length id_of_rep >= n then id_of_rep else Array.make n 0 in
  let count = ref 0 in
  let edges = ref 0 in
  for v = 0 to n - 1 do
    if t.alive_flag.(v) then begin
      id_of_rep.(v) <- !count;
      incr count;
      edges := !edges + t.succ_len.(v)
    end
  done;
  let nq = !count in
  let rep_of_id = Array.make (max nq 1) 0 in
  let work = Array.make (max nq 1) 0 in
  let comm = Array.make (max nq 1) 0 in
  let succ_off = Array.make (nq + 1) 0 in
  let succ_tgt = Array.make (max !edges 1) 0 in
  let w = ref 0 in
  for v = 0 to n - 1 do
    if t.alive_flag.(v) then begin
      let q = id_of_rep.(v) in
      rep_of_id.(q) <- v;
      work.(q) <- t.work.(v);
      comm.(q) <- t.comm.(v);
      succ_off.(q) <- !w;
      let a = t.succ_a.(v) in
      for i = 0 to t.succ_len.(v) - 1 do
        succ_tgt.(!w) <- id_of_rep.(a.(i));
        incr w
      done
    end
  done;
  succ_off.(nq) <- !w;
  let rep_of_id = if nq = Array.length rep_of_id then rep_of_id else Array.sub rep_of_id 0 nq in
  let work = if nq = Array.length work then work else Array.sub work 0 nq in
  let comm = if nq = Array.length comm then comm else Array.sub comm 0 nq in
  let dag = Dag.of_csr_unchecked ~n:nq ~succ_off ~succ_tgt ~work ~comm in
  (dag, rep_of_id)
