type kind =
  | Unlimited
  | Steps of { mutable remaining : int }
  | Deadline of float
  | Pair of t * t

and t = { kind : kind; mutable used : int; mutable dead : bool }

let make kind = { kind; used = 0; dead = false }

let unlimited = make Unlimited

let steps n = make (Steps { remaining = n })

let seconds s = make (Deadline (Unix.gettimeofday () +. s))

let combine a b = make (Pair (a, b))

let rec exhausted t =
  if t.dead then true
  else
    let d =
      match t.kind with
      | Unlimited -> false
      | Steps { remaining } -> remaining <= 0
      (* gettimeofday is a vDSO call (~tens of ns): probing on every
         check is cheap and lets deadlines interrupt consumers whose
         per-tick work is expensive (one branch-and-bound node can cost
         an entire LP solve). *)
      | Deadline deadline -> Unix.gettimeofday () >= deadline
      | Pair (a, b) -> exhausted a || exhausted b
    in
    if d then t.dead <- true;
    d

let rec tick t =
  if exhausted t then false
  else begin
    (match t.kind with
     | Unlimited | Deadline _ -> ()
     | Steps s -> s.remaining <- s.remaining - 1
     | Pair (a, b) ->
       ignore (tick a : bool);
       ignore (tick b : bool));
    t.used <- t.used + 1;
    true
  end

let rec ticks t k =
  if k <= 0 then not (exhausted t)
  else if exhausted t then false
  else begin
    (match t.kind with
     | Unlimited | Deadline _ -> ()
     | Steps s -> s.remaining <- s.remaining - k
     | Pair (a, b) ->
       ignore (ticks a k : bool);
       ignore (ticks b k : bool));
    t.used <- t.used + k;
    true
  end

let used_steps t = t.used
