type kind =
  | Unlimited
  | Steps of { mutable remaining : int }
  | Deadline of float
  | Pair of t * t

and t = { kind : kind; mutable used : int; mutable dead : bool }

let make kind = { kind; used = 0; dead = false }

(* A fresh value per call: a shared unlimited budget would accumulate
   [used] across every consumer that defaults to it, corrupting the
   per-stage accounting the observability layer reports. *)
let unlimited () = make Unlimited

let steps n = make (Steps { remaining = n })

let seconds s = make (Deadline (Time_source.now () +. s))

let combine a b = make (Pair (a, b))

let rec exhausted t =
  if t.dead then true
  else
    let d =
      match t.kind with
      | Unlimited -> false
      | Steps { remaining } -> remaining <= 0
      (* The default source is gettimeofday, a vDSO call (~tens of
         ns): probing on every check is cheap and lets deadlines
         interrupt consumers whose per-tick work is expensive (one
         branch-and-bound node can cost an entire LP solve). *)
      | Deadline deadline -> Time_source.now () >= deadline
      | Pair (a, b) -> exhausted a || exhausted b
    in
    if d then t.dead <- true;
    d

(* Units the step components still admit; [max_int] when only time or
   nothing limits the budget. Callers only consume after a fresh
   [exhausted] probe, so a step component always has [remaining > 0]
   here. *)
let rec capacity t =
  if t.dead then 0
  else
    match t.kind with
    | Unlimited | Deadline _ -> max_int
    | Steps { remaining } -> max 0 remaining
    | Pair (a, b) -> min (capacity a) (capacity b)

(* Consume [c] units through every component, counting them at every
   level so [used_steps] of both a pair and its children reflect what
   actually flowed through. *)
let rec consume t c =
  t.used <- t.used + c;
  match t.kind with
  | Unlimited | Deadline _ -> ()
  | Steps s -> s.remaining <- s.remaining - c
  | Pair (a, b) ->
    consume a c;
    consume b c

let tick t =
  if exhausted t then false
  else begin
    consume t 1;
    true
  end

let ticks t k =
  if k <= 0 then not (exhausted t)
  else if exhausted t then false
  else begin
    let c = min k (capacity t) in
    consume t c;
    (* Clamped: the budget could not cover the whole batch, so the
       caller must not keep going. *)
    c = k
  end

let used_steps t = t.used
