(* FNV-1a, 64-bit. Chosen over [Hashtbl.hash] / [Digest] because the
   server's content-addressed cache needs a hash that is (a) stable
   across processes and OCaml versions — cache directories outlive the
   binary that wrote them — and (b) defined over an explicit byte
   stream, so "canonical DAG" means exactly the bytes we feed in and
   nothing about in-memory representation. Not cryptographic; cache
   keys are trust-the-writer, collision odds at 64 bits are fine for a
   schedule cache. *)

type t = int64

let offset_basis = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let init = offset_basis

let byte h b = Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let string h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  !h

(* Ints are folded as 8 little-endian bytes so negative values and
   values above 2^32 hash consistently on every platform. *)
let int h v =
  let h = ref h and v = Int64.of_int v in
  for i = 0 to 7 do
    h := byte !h (Int64.to_int (Int64.shift_right_logical v (8 * i)))
  done;
  !h

let int_array h a = Array.fold_left int h a

let to_hex h = Printf.sprintf "%016Lx" h
