let geometric_mean = function
  | [] -> nan
  | xs ->
    List.iter
      (fun x ->
        if not (x > 0.0) then
          invalid_arg
            (Printf.sprintf "Statistics.geometric_mean: non-positive value %g" x))
      xs;
    let n = List.length xs in
    let log_sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (log_sum /. float_of_int n)

let mean = function
  | [] -> nan
  | xs ->
    List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let percent_reduction ratio = (1.0 -. ratio) *. 100.0
