(** Small statistical helpers used by the experiment harness. *)

val geometric_mean : float list -> float
(** Geometric mean of a list of positive ratios; the paper aggregates
    per-instance cost ratios this way (Section 7). Returns [nan] on the
    empty list and raises [Invalid_argument] on any zero, negative, or
    nan entry — a silent [0.]/[nan] would corrupt every aggregate table
    it feeds into. *)

val mean : float list -> float
(** Arithmetic mean; [nan] on the empty list. *)

val percent_reduction : float -> float
(** [percent_reduction ratio] renders a cost ratio [ours/baseline] as the
    paper's "cost reduction" percentage, e.g. a ratio of 0.56 is a 44%
    reduction. *)
