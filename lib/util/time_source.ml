(* The process-wide wall-clock source. A single atomic holding the
   current [unit -> float] function: reads on hot paths (budget
   deadline probes, span timing, flight-recorder events) cost one
   atomic load plus the call, and tests swap in a deterministic fake
   clock so latency assertions stop depending on the host's scheduler.

   This lives in bsp_util (not lib/obs) because [Budget] needs it and
   the obs layer sits above bsp_util; [Obs.Clock] re-exports it as the
   public face of the observability stack. *)

let real : unit -> float = Unix.gettimeofday

let source : (unit -> float) Atomic.t = Atomic.make real

let now () = (Atomic.get source) ()

let set f = Atomic.set source f
let reset () = Atomic.set source real

let with_source f body =
  let prev = Atomic.get source in
  Atomic.set source f;
  Fun.protect ~finally:(fun () -> Atomic.set source prev) body
