(** The pluggable wall-clock source behind every timing measurement
    (DESIGN.md Section 5i).

    [Budget.seconds] deadlines, [Obs.Metrics.span] timing, the
    flight-recorder timestamps and the daemon's uptime/latency all read
    the clock through {!now}, so swapping the source swaps what "time"
    means for the whole process — tests install a deterministic fake
    clock and assert exact span durations instead of sleeping.

    The source is a process-wide atomic: {!set}/{!with_source} are
    meant for single-threaded test setup, not for concurrent
    replacement mid-run. [Obs.Clock] re-exports this interface. *)

val real : unit -> float
(** The default source: [Unix.gettimeofday]. *)

val now : unit -> float
(** The current time according to the installed source. *)

val set : (unit -> float) -> unit
(** Replace the process-wide time source. *)

val reset : unit -> unit
(** Restore {!real}. *)

val with_source : (unit -> float) -> (unit -> 'a) -> 'a
(** Run the callback with the source temporarily replaced
    (exception-safe restore of the previous source). *)
