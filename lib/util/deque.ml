type 'a t = {
  mutable buf : 'a option array;
  mutable head : int;  (* index of the bottom element *)
  mutable size : int;
}

let create () = { buf = Array.make 8 None; head = 0; size = 0 }

let is_empty t = t.size = 0
let length t = t.size

let grow t =
  let cap = Array.length t.buf in
  let buf = Array.make (2 * cap) None in
  for i = 0 to t.size - 1 do
    buf.(i) <- t.buf.((t.head + i) mod cap)
  done;
  t.buf <- buf;
  t.head <- 0

let push_top t x =
  if t.size = Array.length t.buf then grow t;
  let cap = Array.length t.buf in
  t.buf.((t.head + t.size) mod cap) <- Some x;
  t.size <- t.size + 1

let pop_top t =
  if t.size = 0 then None
  else begin
    let cap = Array.length t.buf in
    let i = (t.head + t.size - 1) mod cap in
    let x = t.buf.(i) in
    t.buf.(i) <- None;
    t.size <- t.size - 1;
    x
  end

let pop_bottom t =
  if t.size = 0 then None
  else begin
    let x = t.buf.(t.head) in
    t.buf.(t.head) <- None;
    t.head <- (t.head + 1) mod Array.length t.buf;
    t.size <- t.size - 1;
    x
  end

let peek_top t =
  if t.size = 0 then None
  else t.buf.((t.head + t.size - 1) mod Array.length t.buf)

let peek_bottom t = if t.size = 0 then None else t.buf.(t.head)
