(** FNV-1a 64-bit hashing over explicit byte streams.

    The content-addressed schedule cache keys entries by a structural
    hash of (canonical DAG, machine, algorithm); this module is the
    shared primitive. It is deliberately {e not} [Hashtbl.hash]: cache
    directories outlive processes, so the hash must be a pure function
    of the bytes fed in, stable across runs, platforms and OCaml
    versions. Fold-style API: start from {!init}, thread the
    accumulator through {!byte}/{!int}/{!string}/{!int_array}. *)

type t = int64

val init : t
(** The FNV-1a 64-bit offset basis. *)

val byte : t -> int -> t
(** Fold one byte (low 8 bits of the argument). *)

val int : t -> int -> t
(** Fold an OCaml [int] as 8 little-endian bytes (sign-extended), so
    the result is identical on 32- and 64-bit platforms for values that
    fit both. *)

val string : t -> string -> t
(** Fold every byte of the string. *)

val int_array : t -> int array -> t
(** Fold each element with {!int}, in index order. *)

val to_hex : t -> string
(** 16 lowercase hex digits — the cache filename form. *)
