(** Crash-safe (atomic) file writes.

    Every writer in the tree that produces a file another run will read
    back — schedules, hyperDAGs, metrics snapshots, bench baselines,
    server cache entries — goes through this module: the content is
    written to a unique temp file in the destination directory (binary
    mode), flushed, fsync'd and only then renamed over the target.
    A reader therefore never observes a torn or truncated file: a
    killed writer leaves the previous complete version in place and at
    worst an orphaned [*.tmp.*] sibling. *)

val write : string -> (out_channel -> unit) -> unit
(** [write path f] runs [f] against a temp-file channel (binary mode)
    and atomically renames the result to [path]. If [f] raises, the
    temp file is removed, [path] is untouched, and the exception is
    re-raised. *)

val write_string : string -> string -> unit
(** [write_string path s] is [write path (fun oc -> output_string oc s)]. *)
