(** A simple double-ended queue over a growable circular buffer.

    Used by the Cilk work-stealing simulation: owners push and pop at the
    top of their own deque while thieves steal from the bottom. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push_top : 'a t -> 'a -> unit

val pop_top : 'a t -> 'a option
(** LIFO end, used by the owning processor. *)

val pop_bottom : 'a t -> 'a option
(** FIFO end, used by stealing processors. *)

val peek_top : 'a t -> 'a option
val peek_bottom : 'a t -> 'a option
