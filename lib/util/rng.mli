(** Deterministic pseudo-random number generation.

    All stochastic components of the framework (the Cilk work-stealing
    baseline, the synthetic DAG generators, randomized tests) draw their
    randomness through this module so that every experiment is exactly
    reproducible from a seed. The implementation is a splitmix64
    generator, which is small, fast, and has well-understood statistical
    quality for simulation purposes. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator determined entirely by
    [seed]. Two generators created from equal seeds produce identical
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that continues the same stream;
    advancing one does not affect the other. *)

val split : t -> t
(** [split t] derives a statistically independent child generator and
    advances [t]. Used to give sub-components their own streams. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** A fair coin flip. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val pick : t -> 'a array -> 'a
(** [pick t arr] is a uniformly random element of [arr], which must be
    non-empty. *)
