(** Computation budgets for the iterative algorithms.

    The paper controls its iterative stages (hill climbing, ILP solving,
    multilevel refinement) with wall-clock limits. Wall-clock limits make
    experiments non-deterministic, so every stage in this framework
    accepts a {!t} combining an optional step budget with an optional
    wall-clock budget; tests and benchmarks use step budgets for
    reproducibility while the CLI exposes seconds. *)

type t

val unlimited : unit -> t
(** A fresh never-exhausted budget. Each call returns an independent
    value, so {!used_steps} counts only this consumer's ticks — a shared
    unlimited budget would silently sum unrelated stages. *)

val steps : int -> t
(** [steps n] is exhausted after [n] calls to {!tick} succeed. *)

val seconds : float -> t
(** [seconds s] is exhausted [s] seconds after its creation. *)

val combine : t -> t -> t
(** Exhausted as soon as either component is exhausted. Ticks are
    forwarded to both. *)

val tick : t -> bool
(** Consume one unit of work; [true] if the budget still allows more
    work, [false] once exhausted. Once exhausted, stays exhausted. *)

val ticks : t -> int -> bool
(** [ticks t k] consumes up to [k] units at once — one exhaustion probe
    instead of [k], for consumers whose per-unit work is far cheaper
    than a tick (the delta-evaluating hill climber decides whole blocks
    of candidates in O(1)). Consumption is clamped to what the step
    components still admit, so a {!steps} budget never goes negative and
    {!used_steps} never over-reports; a clamped call returns [false]
    because the budget could not cover the whole batch. *)

val exhausted : t -> bool
(** Non-consuming check. *)

val used_steps : t -> int
(** Units successfully consumed through this budget value. For a
    {!combine} pair this counts units forwarded through the pair itself;
    the components also see those units in their own counters. *)
