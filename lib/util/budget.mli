(** Computation budgets for the iterative algorithms.

    The paper controls its iterative stages (hill climbing, ILP solving,
    multilevel refinement) with wall-clock limits. Wall-clock limits make
    experiments non-deterministic, so every stage in this framework
    accepts a {!t} combining an optional step budget with an optional
    wall-clock budget; tests and benchmarks use step budgets for
    reproducibility while the CLI exposes seconds. *)

type t

val unlimited : t
(** Never exhausted. *)

val steps : int -> t
(** [steps n] is exhausted after [n] calls to {!tick} succeed. *)

val seconds : float -> t
(** [seconds s] is exhausted [s] seconds after its creation. *)

val combine : t -> t -> t
(** Exhausted as soon as either component is exhausted. Ticks are
    forwarded to both. *)

val tick : t -> bool
(** Consume one unit of work; [true] if the budget still allows more
    work, [false] once exhausted. Once exhausted, stays exhausted. *)

val exhausted : t -> bool
(** Non-consuming check. *)

val used_steps : t -> int
(** Number of successful ticks so far (summed over components). *)
