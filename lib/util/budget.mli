(** Computation budgets for the iterative algorithms.

    The paper controls its iterative stages (hill climbing, ILP solving,
    multilevel refinement) with wall-clock limits. Wall-clock limits make
    experiments non-deterministic, so every stage in this framework
    accepts a {!t} combining an optional step budget with an optional
    wall-clock budget; tests and benchmarks use step budgets for
    reproducibility while the CLI exposes seconds. *)

type t

val unlimited : t
(** Never exhausted. *)

val steps : int -> t
(** [steps n] is exhausted after [n] calls to {!tick} succeed. *)

val seconds : float -> t
(** [seconds s] is exhausted [s] seconds after its creation. *)

val combine : t -> t -> t
(** Exhausted as soon as either component is exhausted. Ticks are
    forwarded to both. *)

val tick : t -> bool
(** Consume one unit of work; [true] if the budget still allows more
    work, [false] once exhausted. Once exhausted, stays exhausted. *)

val ticks : t -> int -> bool
(** [ticks t k] consumes [k] units at once — one exhaustion probe
    instead of [k], for consumers whose per-unit work is far cheaper
    than a tick (the delta-evaluating hill climber decides whole blocks
    of candidates in O(1)). A step budget may overshoot by at most the
    final batch; exhaustion is still detected on the next probe. *)

val exhausted : t -> bool
(** Non-consuming check. *)

val used_steps : t -> int
(** Number of successful ticks so far (summed over components). *)
