(* Crash-safe file writes: write to a unique sibling temp file, flush,
   fsync, close, then rename over the destination. POSIX rename is
   atomic within a filesystem, so readers either see the previous
   complete version or the new complete version — never a prefix. The
   temp file lives in the destination directory (rename across
   filesystems is not atomic), and its name carries the pid, domain id
   and a process-wide counter so concurrent writers (daemon batches on
   several domains, or two processes sharing a cache directory) never
   collide. *)

let counter = Atomic.make 0

let temp_path path =
  Printf.sprintf "%s.tmp.%d.%d.%d" path (Unix.getpid ())
    (Domain.self () :> int)
    (Atomic.fetch_and_add counter 1)

let write path f =
  let tmp = temp_path path in
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 tmp
  in
  (try
     f oc;
     flush oc;
     (* Make the rename durable: without the fsync a crash shortly
        after can leave the *renamed* file empty on some filesystems. *)
     (try Unix.fsync (Unix.descr_of_out_channel oc) with Unix.Unix_error _ -> ());
     close_out oc
   with e ->
     (try close_out_noerr oc with _ -> ());
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  try Sys.rename tmp path
  with Sys_error _ as e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

let write_string path s = write path (fun oc -> output_string oc s)
