(** Greedy merging of adjacent supersteps.

    Merging superstep [s+1] into [s] re-labels assignments only, so it is
    valid exactly when no cross-processor edge connects the two steps;
    it saves one latency term and often communication too. Both the
    HDagg-style baseline (its "hybrid aggregation") and the framework's
    local-search stage use this pass: single-node hill climbing cannot
    cross this plateau because each individual relabeling is
    cost-neutral until the whole superstep empties.

    Operates on the assignment with lazy communication; the result
    carries a fresh lazy schedule. *)

val greedy : Machine.t -> Schedule.t -> Schedule.t
(** Repeatedly merge a superstep into its predecessor while this is
    valid and strictly decreases total cost; never worse than input.
    Raises [Invalid_argument] on a replicated schedule: the merge
    reasons about single placements only, so replication (a final
    polish) must run after it. *)
