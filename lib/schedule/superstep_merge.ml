let greedy machine (sched : Schedule.t) =
  if Schedule.has_replicas sched then
    invalid_arg
      "Superstep_merge.greedy: replicated schedules are not supported \
       (merge before replicating, or drop the replicas first)";
  let dag = sched.Schedule.dag in
  let lazy_sched = Schedule.with_lazy_comm sched in
  let cost_of step = Bsp_cost.total machine (Schedule.of_assignment dag ~proc:sched.Schedule.proc ~step) in
  let num_steps arr = if Dag.n dag = 0 then 0 else 1 + Array.fold_left max 0 arr in
  let current = ref (Array.copy sched.Schedule.step) in
  let current_cost = ref (cost_of !current) in
  let s = ref 0 in
  while !s < num_steps !current - 1 do
    let blocked = ref false in
    Dag.iter_edges dag (fun u v ->
        if
          !current.(u) = !s
          && !current.(v) = !s + 1
          && sched.Schedule.proc.(u) <> sched.Schedule.proc.(v)
        then blocked := true);
    if !blocked then incr s
    else begin
      let merged = Array.map (fun x -> if x > !s then x - 1 else x) !current in
      let c = cost_of merged in
      if c < !current_cost then begin
        current := merged;
        current_cost := c
        (* stay on the same index: further merges may now be possible *)
      end
      else incr s
    end
  done;
  if !current_cost < Bsp_cost.total machine lazy_sched then
    Schedule.of_assignment dag ~proc:sched.Schedule.proc ~step:!current
  else lazy_sched
