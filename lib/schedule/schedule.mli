(** BSP schedules.

    A BSP schedule of a DAG (Section 3.2) consists of

    - an assignment of nodes to processors [proc] (the paper's [pi]) and
      to supersteps [step] (the paper's [tau]), and
    - a communication schedule [comm] (the paper's [Gamma]): a set of
      events [(node, src, dst, step)] meaning the output of [node] is
      sent from processor [src] to processor [dst] in the communication
      phase of superstep [step].

    Supersteps are numbered from 0. The communication phase of superstep
    [s] happens after the computation phase of superstep [s] and before
    the computation phase of superstep [s + 1]. A value sent in phase [s]
    is available on the destination from superstep [s + 1] onwards.

    {b Replication.} Beyond the paper's model, a node may additionally be
    {e replicated}: recomputed on further processors so that consumers
    there read a local copy instead of receiving the value over the
    network (cf. Papp et al., "Replication in Graph Partitioning and
    Scheduling Problems"). The primary [proc]/[step] arrays stay the
    canonical copy — every fast path that ignores replication keeps
    working on them unchanged — while the extra replicas live in a flat
    CSR-style side table ([rep_off]/[rep_proc]/[rep_step]): the replicas
    of node [v] occupy indices [rep_off.(v) .. rep_off.(v+1) - 1], sorted
    by processor. A replica-free schedule has an all-zero [rep_off] and
    empty payload arrays, so the representation costs nothing on the
    common path. Replica work is charged like primary work
    (see {!Bsp_cost}); an edge is satisfied if {e any} placement of the
    source is present in time on the consumer's processor
    (see {!Validity}).

    The schedule owns a reference to its DAG so validity and cost can be
    queried without re-threading the graph everywhere. *)

type comm_event = {
  node : int;  (** whose output is transferred *)
  src : int;  (** sending processor *)
  dst : int;  (** receiving processor *)
  step : int;  (** communication phase used *)
}

type t = {
  dag : Dag.t;
  proc : int array;  (** [pi]: node -> processor (primary placement) *)
  step : int array;  (** [tau]: node -> superstep (primary placement) *)
  comm : comm_event list;  (** [Gamma] *)
  rep_off : int array;
      (** CSR offsets into [rep_proc]/[rep_step]; length [n + 1]. *)
  rep_proc : int array;  (** replica processors, sorted per node *)
  rep_step : int array;  (** replica supersteps, parallel to [rep_proc] *)
}

val make : Dag.t -> proc:int array -> step:int array -> comm:comm_event list -> t
(** Bundle an assignment with an explicit communication schedule and no
    replicas. Array lengths must match the DAG; entries are not otherwise
    validated (use {!Validity}). The arrays are copied. *)

val make_replicated :
  Dag.t ->
  proc:int array ->
  step:int array ->
  comm:comm_event list ->
  replicas:(int * int * int) list ->
  t
(** Like {!make} with an explicit replica list of [(node, proc, step)]
    triples. Replicas are sorted by [(node, proc)] into the CSR side
    table, so downstream iteration order does not depend on the order the
    caller discovered them in. Raises [Invalid_argument] on out-of-range
    entries, on a replica duplicating the node's primary placement, and
    on duplicate [(node, proc)] pairs. *)

(** {1 Replica accessors} *)

val num_replicas : t -> int
(** Total number of extra replicas (0 for a plain schedule). *)

val has_replicas : t -> bool

val replicas : t -> int -> (int * int) list
(** [(proc, step)] of the extra replicas of a node, sorted by processor.
    Does not include the primary placement. *)

val iter_replicas : t -> int -> (int -> int -> unit) -> unit
(** [iter_replicas t v f] applies [f proc step] to each extra replica of
    [v], in ascending processor order. Allocation-free. *)

val iter_placements : t -> int -> (int -> int -> unit) -> unit
(** Like {!iter_replicas} but visiting the primary placement first. *)

val placement_step_on : t -> int -> int -> int
(** [placement_step_on t u q] is the earliest superstep at which any
    placement of [u] (primary or replica) exists on processor [q], or
    [max_int] if [u] is not placed on [q]. *)

val num_supersteps : t -> int
(** [1 + max tau] over all placements, primary and replica (0 for the
    empty DAG), also covering every communication phase used by a valid
    schedule. *)

val trivial : Dag.t -> t
(** Everything on processor 0 in superstep 0 with no communication — the
    paper's trivial baseline for communication-dominated instances
    (Section 7.3). *)

(** {1 Lazy communication schedules}

    Simple schedulers only produce the assignment [(pi, tau)]; the
    associated {e lazy communication schedule} sends every value directly
    from the processor that computed it, in the last possible phase: if
    [u] is needed on processor [q <> pi u] then [u] is sent in phase
    [min step(v) - 1] over successors [v] of [u] with [pi v = q]
    (Appendix A, "lazy communication schedule"; a value is sent at most
    once per destination). *)

val lazy_comm : Dag.t -> proc:int array -> step:int array -> comm_event list
(** Replica-unaware lazy schedule of a plain assignment. *)

val lazy_comm_replicated : Machine.t -> t -> comm_event list
(** Replica-aware lazy schedule: a consumer placement is locally
    satisfied when some placement of the predecessor sits on its
    processor at an earlier-or-equal step; each remaining (value,
    destination) need is served once, in the last possible phase, from
    the placement minimising [lambda (src, dst)] among those computed in
    time (ties: primary first, then lowest replica processor). With an
    empty replica table this is exactly [lazy_comm]. Ignores [t.comm]. *)

val of_assignment : Dag.t -> proc:int array -> step:int array -> t
(** Assignment plus its lazy communication schedule. Arrays are copied. *)

val of_assignment_replicated :
  Machine.t ->
  Dag.t ->
  proc:int array ->
  step:int array ->
  replicas:(int * int * int) list ->
  t
(** Replicated assignment plus its replica-aware lazy communication
    schedule ({!lazy_comm_replicated}). *)

val with_lazy_comm : t -> t
(** Replace [comm] by the lazy schedule of the assignment. Raises
    [Invalid_argument] on a replicated schedule — use
    {!with_lazy_comm_replicated} there, which needs the machine's
    [lambda] to pick senders. *)

val with_lazy_comm_replicated : Machine.t -> t -> t
(** Replace [comm] by the replica-aware lazy schedule. *)

val drop_replicas : t -> t
(** Forget all replicas and re-derive the (plain) lazy communication
    schedule of the primary assignment. *)

val assignment_valid : Dag.t -> proc:int array -> step:int array -> bool
(** An assignment admits a (lazy) communication schedule iff every edge
    [(u, v)] satisfies [step u <= step v] when on the same processor and
    [step u < step v] when on different processors. *)

val compact : ?relazy:bool -> t -> t
(** Remove supersteps in which nothing is computed (by a primary node or
    a replica), renumbering the remaining ones. By default the
    communication schedule is {e preserved}: each event's phase is
    renumbered to the last surviving superstep at or before it, which
    keeps the event after its source's computation and before its
    consumers' first use — for a (semantically) lazy [comm] this
    coincides exactly with re-deriving the lazy schedule, and for a
    hand-optimised [Gamma] (e.g. from {!Hccs}) the optimisation survives.
    [~relazy:true] restores the historical behaviour of discarding [comm]
    and re-deriving the lazy schedule of the renumbered assignment; it is
    only meaningful for replica-free schedules and raises
    [Invalid_argument] otherwise. *)

val used_supersteps : t -> int
(** Number of distinct supersteps that contain at least one placement. *)

val copy : t -> t
(** Deep copy (fresh arrays; the DAG is shared, being immutable). *)

val pp : Format.formatter -> t -> unit
