(** BSP schedules.

    A BSP schedule of a DAG (Section 3.2) consists of

    - an assignment of nodes to processors [proc] (the paper's [pi]) and
      to supersteps [step] (the paper's [tau]), and
    - a communication schedule [comm] (the paper's [Gamma]): a set of
      events [(node, src, dst, step)] meaning the output of [node] is
      sent from processor [src] to processor [dst] in the communication
      phase of superstep [step].

    Supersteps are numbered from 0. The communication phase of superstep
    [s] happens after the computation phase of superstep [s] and before
    the computation phase of superstep [s + 1]. A value sent in phase [s]
    is available on the destination from superstep [s + 1] onwards.

    The schedule owns a reference to its DAG so validity and cost can be
    queried without re-threading the graph everywhere. *)

type comm_event = {
  node : int;  (** whose output is transferred *)
  src : int;  (** sending processor *)
  dst : int;  (** receiving processor *)
  step : int;  (** communication phase used *)
}

type t = {
  dag : Dag.t;
  proc : int array;  (** [pi]: node -> processor *)
  step : int array;  (** [tau]: node -> superstep *)
  comm : comm_event list;  (** [Gamma] *)
}

val make : Dag.t -> proc:int array -> step:int array -> comm:comm_event list -> t
(** Bundle an assignment with an explicit communication schedule. Array
    lengths must match the DAG; entries are not otherwise validated (use
    {!Validity}). The arrays are copied. *)

val num_supersteps : t -> int
(** [1 + max tau] over nodes (0 for the empty DAG), also covering every
    communication phase used by a valid schedule. *)

val trivial : Dag.t -> t
(** Everything on processor 0 in superstep 0 with no communication — the
    paper's trivial baseline for communication-dominated instances
    (Section 7.3). *)

(** {1 Lazy communication schedules}

    Simple schedulers only produce the assignment [(pi, tau)]; the
    associated {e lazy communication schedule} sends every value directly
    from the processor that computed it, in the last possible phase: if
    [u] is needed on processor [q <> pi u] then [u] is sent in phase
    [min step(v) - 1] over successors [v] of [u] with [pi v = q]
    (Appendix A, "lazy communication schedule"; a value is sent at most
    once per destination). *)

val lazy_comm : Dag.t -> proc:int array -> step:int array -> comm_event list

val of_assignment : Dag.t -> proc:int array -> step:int array -> t
(** Assignment plus its lazy communication schedule. Arrays are copied. *)

val with_lazy_comm : t -> t
(** Replace [comm] by the lazy schedule of the assignment. *)

val assignment_valid : Dag.t -> proc:int array -> step:int array -> bool
(** An assignment admits a (lazy) communication schedule iff every edge
    [(u, v)] satisfies [step u <= step v] when on the same processor and
    [step u < step v] when on different processors. *)

val compact : t -> t
(** Remove supersteps to which no node is assigned, renumbering the rest
    and re-deriving the lazy communication schedule. Intended for
    schedules whose [comm] is (semantically) lazy; a hand-optimised
    [Gamma] would be discarded. *)

val used_supersteps : t -> int
(** Number of distinct supersteps that actually contain nodes. *)

val copy : t -> t
(** Deep copy (fresh arrays; the DAG is shared, being immutable). *)

val pp : Format.formatter -> t -> unit
