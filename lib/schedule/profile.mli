(** Full cost attribution for a BSP(+NUMA) schedule (DESIGN.md §5d).

    {!Bsp_cost.breakdown} reports the per-superstep maxima the cost
    formula [C(s) = max_p work + g * max_p max(send, recv) + l] is built
    from, but not {e which} processor realises each maximum, how
    imbalanced the phases are, or where NUMA traffic concentrates. A
    profile answers those questions from the same raw
    {!Bsp_cost.tables}, so its totals reconcile {e exactly} with the
    breakdown — {!reconcile} checks this invariant and the test suite
    enforces it on every schedule it produces. *)

type superstep = {
  work : int array;  (** per-processor work this superstep, length [p] *)
  send : int array;  (** per-processor weighted send volume *)
  recv : int array;  (** per-processor weighted receive volume *)
  work_max : int;  (** [C_work(s)], as in {!Bsp_cost.superstep} *)
  work_bottleneck : int;
      (** argmax processor of the work phase (lowest id on ties); [-1]
          when no processor works in this superstep *)
  comm_max : int;  (** [C_comm(s)], the h-relation before multiplying by [g] *)
  comm_bottleneck : int;
      (** argmax processor of [max(send, recv)]; [-1] when the
          communication phase is empty *)
  work_imbalance : float;
      (** [max / mean] over all [p] processors ([1.0] = perfectly
          balanced; [1.0] by convention when no processor works) *)
  comm_imbalance : float;  (** same ratio for [max(send, recv)] *)
  idle : int array;
      (** [work_max - work.(q)]: time processor [q] waits for the
          superstep's critical (bottleneck) processor *)
  cost : int;  (** [work_max + g * comm_max + l] *)
}

type t = {
  p : int;
  num_supersteps : int;
  supersteps : superstep array;
  proc_work : int array;  (** total work per processor across supersteps *)
  proc_send : int array;  (** total weighted send volume per processor *)
  proc_recv : int array;
  proc_idle : int array;  (** summed per-superstep idle time *)
  traffic : int array array;
      (** [p x p] NUMA traffic matrix: [traffic.(p1).(p2)] is the total
          [c(v) * lambda(p1, p2)] volume shipped from [p1] to [p2]. Row
          sums equal [proc_send], column sums equal [proc_recv]. *)
  work_total : int;  (** sum of [work_max]; equals the breakdown's *)
  comm_total : int;  (** sum of [g * comm_max] *)
  latency_total : int;
  total : int;
  node_work : int;  (** [Dag.total_work], the machine-independent work *)
  critical_path_work : int;  (** max total work along any directed path *)
  work_floor : int;
      (** [max(ceil(node_work / p), critical_path_work)] — no schedule's
          work term can beat either bound *)
  lower_bound : int;
      (** [work_floor + l]: the work floor plus the latency of the at
          least one superstep every non-empty schedule pays. [0] for the
          empty DAG. Communication is not bounded below (a
          single-processor schedule needs none), so this is a valid —
          if optimistic — floor for the full cost. Replication only adds
          work, so the floor also holds for replicated schedules. *)
  num_replicas : int;  (** extra replica placements in the schedule *)
  replica_work : int;
      (** work units recomputed by replicas; [proc_work] sums to
          [node_work + replica_work]. Replica work is attributed to the
          replica's own (superstep, processor) cell by
          {!Bsp_cost.tables}, so all reconciliation invariants hold
          unchanged for replicated schedules. *)
}

val compute : Machine.t -> Schedule.t -> t
(** Attribution profile of a schedule. Like {!Bsp_cost.breakdown} this
    does not verify validity. O(n + |comm| + supersteps * p + p^2). *)

val gap_ratio : t -> float
(** [total / lower_bound] — how far the achieved cost sits above the
    instance's floor. [1.0] when the lower bound is [0]. *)

val work_utilisation : t -> int -> float
(** [work_utilisation t q] is [proc_work.(q) / work_total]: the fraction
    of the schedule's compute-phase time processor [q] spends busy.
    [0.0] when [work_total = 0]. *)

val reconcile : t -> Bsp_cost.breakdown -> (unit, string) result
(** Check the reconciliation invariant: superstep count, per-superstep
    [work_max] / [comm_max] / [cost], and all four totals must equal the
    breakdown's exactly. [Error] carries a human-readable mismatch
    description. *)

val to_json : t -> Obs.Json.t
(** Profile snapshot: totals, lower-bound figures, per-processor totals
    and utilisation, the traffic matrix, and per-superstep attribution
    records. *)

val pp : Format.formatter -> t -> unit
(** Human-readable attribution report: totals and lower-bound gap,
    per-processor utilisation, the traffic matrix (elided above 16
    processors), and a per-superstep bottleneck/imbalance table. *)
