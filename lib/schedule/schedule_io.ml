(* The v2 marker is a comment line, so v1 readers that strip comments
   would still parse the assignment and events of a v2 file; only the
   replica lines are new. We nevertheless keep emitting the v1 format
   for replica-free schedules so byte-identical outputs are preserved
   for every pre-replication workflow. *)
let v2_marker = "% bsp schedule v2"

let to_string (t : Schedule.t) =
  let buf = Buffer.create 4096 in
  let n = Dag.n t.Schedule.dag in
  let num_reps = Schedule.num_replicas t in
  if num_reps = 0 then begin
    Buffer.add_string buf "% bsp schedule: node/proc/superstep, then comm events\n";
    Buffer.add_string buf (Printf.sprintf "%d %d\n" n (List.length t.Schedule.comm))
  end
  else begin
    Buffer.add_string buf (v2_marker ^ ": node/proc/superstep, comm events, replicas\n");
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d\n" n (List.length t.Schedule.comm) num_reps)
  end;
  for v = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d\n" v t.Schedule.proc.(v) t.Schedule.step.(v))
  done;
  List.iter
    (fun (e : Schedule.comm_event) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %d %d\n" e.node e.src e.dst e.step))
    t.Schedule.comm;
  if num_reps > 0 then
    for v = 0 to n - 1 do
      Schedule.iter_replicas t v (fun q s ->
          Buffer.add_string buf (Printf.sprintf "%d %d %d\n" v q s))
    done;
  Buffer.contents buf

let of_string dag text =
  let raw_lines = String.split_on_char '\n' text |> List.map String.trim in
  (* Version detection must look at comment lines before they are
     stripped: the version marker is itself a comment. *)
  let v2 =
    List.exists
      (fun l ->
        String.length l >= String.length v2_marker
        && String.sub l 0 (String.length v2_marker) = v2_marker)
      raw_lines
  in
  let lines = List.filter (fun l -> l <> "" && l.[0] <> '%') raw_lines in
  let ints line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some i -> i
           | None -> failwith ("Schedule_io: not an integer: " ^ s))
  in
  match lines with
  | [] -> failwith "Schedule_io: empty input"
  | header :: rest ->
    let n, num_events, num_reps =
      match (ints header, v2) with
      | [ n; e ], false -> (n, e, 0)
      | [ n; e; r ], true -> (n, e, r)
      | _, false -> failwith "Schedule_io: header must be <nodes> <events>"
      | _, true -> failwith "Schedule_io: v2 header must be <nodes> <events> <replicas>"
    in
    if n <> Dag.n dag then failwith "Schedule_io: node count does not match the DAG";
    let expected = n + num_events + num_reps in
    let got = List.length rest in
    if got < expected then failwith "Schedule_io: truncated file";
    if got > expected then
      failwith
        (Printf.sprintf
           "Schedule_io: %d trailing non-comment line(s) after the declared %d \
            assignment + %d event%s line(s)"
           (got - expected) n num_events
           (if num_reps > 0 then Printf.sprintf " + %d replica" num_reps else ""));
    let proc = Array.make n 0 and step = Array.make n 0 in
    List.iteri
      (fun i line ->
        if i < n then
          match ints line with
          | [ v; p; s ] when v >= 0 && v < n ->
            proc.(v) <- p;
            step.(v) <- s
          | _ -> failwith "Schedule_io: bad assignment line")
      rest;
    let events =
      List.filteri (fun i _ -> i >= n && i < n + num_events) rest
      |> List.map (fun line ->
             match ints line with
             | [ node; src; dst; phase ] -> { Schedule.node; src; dst; step = phase }
             | _ -> failwith "Schedule_io: bad comm event line")
    in
    if num_reps = 0 then Schedule.make dag ~proc ~step ~comm:events
    else begin
      let replicas =
        List.filteri (fun i _ -> i >= n + num_events) rest
        |> List.map (fun line ->
               match ints line with
               | [ v; q; s ] when v >= 0 && v < n -> (v, q, s)
               | _ -> failwith "Schedule_io: bad replica line")
      in
      Schedule.make_replicated dag ~proc ~step ~comm:events ~replicas
    end

let write oc t = output_string oc (to_string t)
let write_file path t = Atomic_file.write path (fun oc -> write oc t)

(* One bulk read instead of the historical one-channel-read-per-byte
   loop: [Buffer.add_channel buf ic 1] paid a full channel dispatch for
   every byte, which is pathological for large schedules and for the
   serve daemon's cache-hit path. *)
let read dag ic = of_string dag (In_channel.input_all ic)
let read_file dag path = In_channel.with_open_bin path (read dag)
