let to_string (t : Schedule.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "% bsp schedule: node/proc/superstep, then comm events\n";
  let n = Dag.n t.Schedule.dag in
  Buffer.add_string buf (Printf.sprintf "%d %d\n" n (List.length t.Schedule.comm));
  for v = 0 to n - 1 do
    Buffer.add_string buf
      (Printf.sprintf "%d %d %d\n" v t.Schedule.proc.(v) t.Schedule.step.(v))
  done;
  List.iter
    (fun (e : Schedule.comm_event) ->
      Buffer.add_string buf (Printf.sprintf "%d %d %d %d\n" e.node e.src e.dst e.step))
    t.Schedule.comm;
  Buffer.contents buf

let of_string dag text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '%')
  in
  let ints line =
    String.split_on_char ' ' line
    |> List.filter (fun s -> s <> "")
    |> List.map (fun s ->
           match int_of_string_opt s with
           | Some i -> i
           | None -> failwith ("Schedule_io: not an integer: " ^ s))
  in
  match lines with
  | [] -> failwith "Schedule_io: empty input"
  | header :: rest ->
    let n, num_events =
      match ints header with
      | [ n; e ] -> (n, e)
      | _ -> failwith "Schedule_io: header must be <nodes> <events>"
    in
    if n <> Dag.n dag then failwith "Schedule_io: node count does not match the DAG";
    if List.length rest < n + num_events then failwith "Schedule_io: truncated file";
    let proc = Array.make n 0 and step = Array.make n 0 in
    List.iteri
      (fun i line ->
        if i < n then
          match ints line with
          | [ v; p; s ] when v >= 0 && v < n ->
            proc.(v) <- p;
            step.(v) <- s
          | _ -> failwith "Schedule_io: bad assignment line")
      rest;
    let events =
      List.filteri (fun i _ -> i >= n && i < n + num_events) rest
      |> List.map (fun line ->
             match ints line with
             | [ node; src; dst; phase ] -> { Schedule.node; src; dst; step = phase }
             | _ -> failwith "Schedule_io: bad comm event line")
    in
    Schedule.make dag ~proc ~step ~comm:events

let write oc t = output_string oc (to_string t)

let write_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> write oc t)

let read dag ic =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf ic 1
     done
   with End_of_file -> ());
  of_string dag (Buffer.contents buf)

let read_file dag path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> read dag ic)
