(** Human-readable rendering of BSP schedules.

    Produces a compact per-superstep table: one row per processor, one
    column block per superstep, listing the node ids computed there
    (elided with [..] beyond a width limit) plus per-superstep work and
    h-relation summaries — a quick visual sanity check for CLI users and
    examples. A per-processor utilisation summary (work, idle, send and
    receive totals from {!Profile}) follows the header line. *)

val to_string : ?max_nodes_per_cell:int -> Machine.t -> Schedule.t -> string
(** Render the whole schedule. [max_nodes_per_cell] (default 6) bounds
    how many node ids each processor/superstep cell spells out. *)

val pp : Machine.t -> Format.formatter -> Schedule.t -> unit
