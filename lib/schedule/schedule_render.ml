let to_string ?(max_nodes_per_cell = 6) machine (t : Schedule.t) =
  let buf = Buffer.create 1024 in
  let p = machine.Machine.p in
  let num_steps = Schedule.num_supersteps t in
  let b = Bsp_cost.breakdown machine t in
  let replica_note =
    if Schedule.has_replicas t then
      Printf.sprintf ", %d replicas" (Schedule.num_replicas t)
    else ""
  in
  Buffer.add_string buf
    (Printf.sprintf "schedule: %d nodes, %d supersteps, %d processors, cost %d%s\n"
       (Dag.n t.Schedule.dag) num_steps p b.Bsp_cost.total replica_note);
  (* Per-processor utilisation summary, from the attribution profile. *)
  let prof = Profile.compute machine t in
  for q = 0 to p - 1 do
    Buffer.add_string buf
      (Printf.sprintf "  p%-3d util %5.1f%%  work %-6d idle %-6d send %-6d recv %d\n" q
         (100.0 *. Profile.work_utilisation prof q)
         prof.Profile.proc_work.(q) prof.Profile.proc_idle.(q) prof.Profile.proc_send.(q)
         prof.Profile.proc_recv.(q))
  done;
  (* Nodes per (superstep, processor); replica placements are rendered
     with an [r] suffix after the primary copies of the same node. *)
  let cells = Array.make_matrix num_steps p [] in
  for v = 0 to Dag.n t.Schedule.dag - 1 do
    cells.(t.Schedule.step.(v)).(t.Schedule.proc.(v)) <-
      string_of_int v :: cells.(t.Schedule.step.(v)).(t.Schedule.proc.(v));
    Schedule.iter_replicas t v (fun q s ->
        cells.(s).(q) <- (string_of_int v ^ "r") :: cells.(s).(q))
  done;
  let cells = Array.map (Array.map List.rev) cells in
  let cell_text nodes =
    let shown = List.filteri (fun i _ -> i < max_nodes_per_cell) nodes in
    let body = String.concat "," shown in
    if List.length nodes > max_nodes_per_cell then body ^ ".." else body
  in
  for s = 0 to num_steps - 1 do
    let c = b.Bsp_cost.supersteps.(s) in
    Buffer.add_string buf
      (Printf.sprintf "superstep %d  (work %d, h-relation %d, cost %d)\n" s
         c.Bsp_cost.work_max c.Bsp_cost.comm_max c.Bsp_cost.cost);
    for q = 0 to p - 1 do
      let nodes = cells.(s).(q) in
      if nodes <> [] then
        Buffer.add_string buf (Printf.sprintf "  p%-3d: %s\n" q (cell_text nodes))
    done;
    let events =
      List.filter (fun (e : Schedule.comm_event) -> e.step = s) t.Schedule.comm
    in
    if events <> [] then begin
      let shown = List.filteri (fun i _ -> i < max_nodes_per_cell) events in
      let body =
        String.concat ", "
          (List.map
             (fun (e : Schedule.comm_event) ->
               Printf.sprintf "%d:%d->%d" e.node e.src e.dst)
             shown)
      in
      let suffix = if List.length events > max_nodes_per_cell then ", .." else "" in
      Buffer.add_string buf (Printf.sprintf "  comm: %s%s\n" body suffix)
    end
  done;
  Buffer.contents buf

let pp machine fmt t = Format.pp_print_string fmt (to_string machine t)
