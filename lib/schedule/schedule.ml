type comm_event = { node : int; src : int; dst : int; step : int }

type t = {
  dag : Dag.t;
  proc : int array;
  step : int array;
  comm : comm_event list;
}

let make dag ~proc ~step ~comm =
  if Array.length proc <> Dag.n dag || Array.length step <> Dag.n dag then
    invalid_arg "Schedule.make: assignment length mismatch";
  { dag; proc = Array.copy proc; step = Array.copy step; comm }

let num_supersteps t =
  if Dag.n t.dag = 0 then 0 else 1 + Array.fold_left max 0 t.step

let trivial dag =
  let n = Dag.n dag in
  { dag; proc = Array.make n 0; step = Array.make n 0; comm = [] }

(* first_need.(u * p + dst) is the earliest superstep the destination
   processor dst needs the value of u. A flat table over the processors
   actually used (p = 1 + max proc) replaces the historical
   (node, processor)-tuple-keyed hashtable: tuple keys allocate a box
   per probe, and this runs once per candidate schedule inside the
   parallel sweeps. Emission in ascending (node, dst) order also makes
   the event list deterministic instead of hash-ordered. *)
let lazy_comm dag ~proc ~step =
  let n = Dag.n dag in
  if n = 0 then []
  else begin
    let p = ref 1 in
    Array.iter (fun q -> if q + 1 > !p then p := q + 1) proc;
    let p = !p in
    let no_need = max_int in
    let first_need = Array.make (n * p) no_need in
    for v = 0 to n - 1 do
      Dag.iter_pred dag v (fun u ->
          if proc.(u) <> proc.(v) then begin
            let idx = (u * p) + proc.(v) in
            if step.(v) < first_need.(idx) then first_need.(idx) <- step.(v)
          end)
    done;
    let acc = ref [] in
    for u = n - 1 downto 0 do
      let base = u * p in
      for dst = p - 1 downto 0 do
        let s = first_need.(base + dst) in
        if s <> no_need then acc := { node = u; src = proc.(u); dst; step = s - 1 } :: !acc
      done
    done;
    !acc
  end

let of_assignment dag ~proc ~step =
  {
    dag;
    proc = Array.copy proc;
    step = Array.copy step;
    comm = lazy_comm dag ~proc ~step;
  }

let with_lazy_comm t = { t with comm = lazy_comm t.dag ~proc:t.proc ~step:t.step }

let assignment_valid dag ~proc ~step =
  let ok = ref true in
  Dag.iter_edges dag (fun u v ->
      if proc.(u) = proc.(v) then begin
        if step.(u) > step.(v) then ok := false
      end
      else if step.(u) >= step.(v) then ok := false);
  !ok

let used_supersteps t =
  let s = num_supersteps t in
  if s = 0 then 0
  else begin
    let used = Array.make s false in
    Array.iter (fun x -> used.(x) <- true) t.step;
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 used
  end

let compact t =
  let s = num_supersteps t in
  if s = 0 then t
  else begin
    let used = Array.make s false in
    Array.iter (fun x -> used.(x) <- true) t.step;
    let remap = Array.make s 0 in
    let next = ref 0 in
    for i = 0 to s - 1 do
      remap.(i) <- !next;
      if used.(i) then incr next
    done;
    let step = Array.map (fun x -> remap.(x)) t.step in
    of_assignment t.dag ~proc:t.proc ~step
  end

let copy t =
  { t with proc = Array.copy t.proc; step = Array.copy t.step }

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule: %d nodes, %d supersteps, %d comm events@,"
    (Dag.n t.dag) (num_supersteps t) (List.length t.comm);
  for v = 0 to Dag.n t.dag - 1 do
    Format.fprintf fmt "  node %d -> proc %d, step %d@," v t.proc.(v) t.step.(v)
  done;
  List.iter
    (fun e ->
      Format.fprintf fmt "  send %d: %d -> %d @@ phase %d@," e.node e.src e.dst e.step)
    t.comm;
  Format.fprintf fmt "@]"
