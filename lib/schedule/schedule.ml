type comm_event = { node : int; src : int; dst : int; step : int }

type t = {
  dag : Dag.t;
  proc : int array;
  step : int array;
  comm : comm_event list;
  rep_off : int array;
  rep_proc : int array;
  rep_step : int array;
}

(* Shared empty replica tables: a fresh [rep_off] per schedule would be
   n + 1 words of garbage for the overwhelmingly common replica-free
   case. [rep_off] is all zeros for an empty table, so one physical
   array per length can back every replica-free schedule of that DAG —
   but sharing across lengths is not worth a cache, so we just allocate
   the zero array once per construction via [empty_rep_off]. The
   [rep_proc]/[rep_step] pair is genuinely shared. *)
let no_extras : int array = [||]

let empty_rep_off n = Array.make (n + 1) 0

let num_replicas t = t.rep_off.(Array.length t.rep_off - 1)
let has_replicas t = num_replicas t > 0

let iter_replicas t v f =
  for i = t.rep_off.(v) to t.rep_off.(v + 1) - 1 do
    f t.rep_proc.(i) t.rep_step.(i)
  done

let replicas t v =
  let acc = ref [] in
  for i = t.rep_off.(v + 1) - 1 downto t.rep_off.(v) do
    acc := (t.rep_proc.(i), t.rep_step.(i)) :: !acc
  done;
  !acc

let iter_placements t v f =
  f t.proc.(v) t.step.(v);
  iter_replicas t v f

let make dag ~proc ~step ~comm =
  if Array.length proc <> Dag.n dag || Array.length step <> Dag.n dag then
    invalid_arg "Schedule.make: assignment length mismatch";
  {
    dag;
    proc = Array.copy proc;
    step = Array.copy step;
    comm;
    rep_off = empty_rep_off (Dag.n dag);
    rep_proc = no_extras;
    rep_step = no_extras;
  }

(* Build the CSR side table from an explicit (node, proc, step) list.
   Entries are sorted by (node, proc) so iteration order — and hence
   everything derived from it (lazy events, IO, rendering) — is
   deterministic regardless of the order the caller discovered the
   replicas in. *)
let build_replica_table n ~proc ~replicas =
  let reps =
    List.sort
      (fun (v1, q1, s1) (v2, q2, s2) ->
        if v1 <> v2 then compare v1 v2
        else if q1 <> q2 then compare q1 q2
        else compare s1 s2)
      replicas
  in
  let count = List.length reps in
  let rep_off = Array.make (n + 1) 0 in
  let rep_proc = Array.make (max count 1) 0 in
  let rep_step = Array.make (max count 1) 0 in
  let i = ref 0 in
  let prev = ref (-1, -1) in
  List.iter
    (fun (v, q, s) ->
      if v < 0 || v >= n then invalid_arg "Schedule: replica node out of range";
      if q < 0 then invalid_arg "Schedule: replica processor out of range";
      if s < 0 then invalid_arg "Schedule: replica superstep out of range";
      if q = proc.(v) then
        invalid_arg "Schedule: replica duplicates the primary placement";
      if !prev = (v, q) then invalid_arg "Schedule: duplicate replica (node, proc)";
      prev := (v, q);
      rep_off.(v + 1) <- rep_off.(v + 1) + 1;
      rep_proc.(!i) <- q;
      rep_step.(!i) <- s;
      incr i)
    reps;
  for v = 0 to n - 1 do
    rep_off.(v + 1) <- rep_off.(v + 1) + rep_off.(v)
  done;
  if count = 0 then (rep_off, no_extras, no_extras)
  else (rep_off, rep_proc, rep_step)

let make_replicated dag ~proc ~step ~comm ~replicas =
  if Array.length proc <> Dag.n dag || Array.length step <> Dag.n dag then
    invalid_arg "Schedule.make_replicated: assignment length mismatch";
  let proc = Array.copy proc and step = Array.copy step in
  let rep_off, rep_proc, rep_step =
    build_replica_table (Dag.n dag) ~proc ~replicas
  in
  { dag; proc; step; comm; rep_off; rep_proc; rep_step }

let num_supersteps t =
  if Dag.n t.dag = 0 then 0
  else begin
    let m = ref (Array.fold_left max 0 t.step) in
    let extras = num_replicas t in
    for i = 0 to extras - 1 do
      if t.rep_step.(i) > !m then m := t.rep_step.(i)
    done;
    1 + !m
  end

let trivial dag =
  let n = Dag.n dag in
  {
    dag;
    proc = Array.make n 0;
    step = Array.make n 0;
    comm = [];
    rep_off = empty_rep_off n;
    rep_proc = no_extras;
    rep_step = no_extras;
  }

(* first_need.(u * p + dst) is the earliest superstep the destination
   processor dst needs the value of u. A flat table over the processors
   actually used (p = 1 + max proc) replaces the historical
   (node, processor)-tuple-keyed hashtable: tuple keys allocate a box
   per probe, and this runs once per candidate schedule inside the
   parallel sweeps. Emission in ascending (node, dst) order also makes
   the event list deterministic instead of hash-ordered. *)
let lazy_comm dag ~proc ~step =
  let n = Dag.n dag in
  if n = 0 then []
  else begin
    let p = ref 1 in
    Array.iter (fun q -> if q + 1 > !p then p := q + 1) proc;
    let p = !p in
    let no_need = max_int in
    let first_need = Array.make (n * p) no_need in
    for v = 0 to n - 1 do
      Dag.iter_pred dag v (fun u ->
          if proc.(u) <> proc.(v) then begin
            let idx = (u * p) + proc.(v) in
            if step.(v) < first_need.(idx) then first_need.(idx) <- step.(v)
          end)
    done;
    let acc = ref [] in
    for u = n - 1 downto 0 do
      let base = u * p in
      for dst = p - 1 downto 0 do
        let s = first_need.(base + dst) in
        if s <> no_need then acc := { node = u; src = proc.(u); dst; step = s - 1 } :: !acc
      done
    done;
    !acc
  end

let of_assignment dag ~proc ~step =
  {
    dag;
    proc = Array.copy proc;
    step = Array.copy step;
    comm = lazy_comm dag ~proc ~step;
    rep_off = empty_rep_off (Dag.n dag);
    rep_proc = no_extras;
    rep_step = no_extras;
  }

let with_lazy_comm t =
  if has_replicas t then
    invalid_arg
      "Schedule.with_lazy_comm: schedule has replicas (use \
       with_lazy_comm_replicated)";
  { t with comm = lazy_comm t.dag ~proc:t.proc ~step:t.step }

(* Earliest step at which any placement (primary or replica) of [u]
   exists on processor [q], or [max_int] if none. *)
let placement_step_on t u q =
  let best = ref max_int in
  if t.proc.(u) = q then best := t.step.(u);
  for i = t.rep_off.(u) to t.rep_off.(u + 1) - 1 do
    if t.rep_proc.(i) = q && t.rep_step.(i) < !best then best := t.rep_step.(i)
  done;
  !best

(* Replica-aware lazy communication schedule. Generalisation of
   [lazy_comm]: a consumer placement of [v] at [(q, s)] is locally
   satisfied when some placement of its predecessor [u] sits on [q] at a
   step <= s; only unsatisfied consumers generate a need. Each needed
   (value, destination) pair is served by exactly one event, sent in the
   last possible phase from the placement of [u] that minimises
   lambda(src, dst) among those already computed by that phase
   (ties: the primary copy wins, then the lowest replica processor —
   replica tables are sorted, so this is deterministic). With an empty
   replica table this reduces exactly to [lazy_comm]. *)
let lazy_comm_replicated machine t =
  let dag = t.dag in
  let n = Dag.n dag in
  if n = 0 then []
  else begin
    let p = ref machine.Machine.p in
    Array.iter (fun q -> if q + 1 > !p then p := q + 1) t.proc;
    Array.iter (fun q -> if q + 1 > !p then p := q + 1) t.rep_proc;
    let p = !p in
    let no_need = max_int in
    let first_need = Array.make (n * p) no_need in
    let consume v q s =
      Dag.iter_pred dag v (fun u ->
          if placement_step_on t u q > s then begin
            let idx = (u * p) + q in
            if s < first_need.(idx) then first_need.(idx) <- s
          end)
    in
    for v = 0 to n - 1 do
      iter_placements t v (fun q s -> consume v q s)
    done;
    let acc = ref [] in
    for u = n - 1 downto 0 do
      let base = u * p in
      for dst = p - 1 downto 0 do
        let s = first_need.(base + dst) in
        if s <> no_need then begin
          let phase = s - 1 in
          (* Nearest-by-lambda placement of [u] available by [phase]. *)
          let src = ref t.proc.(u) in
          let best =
            if t.step.(u) <= phase then Machine.lambda machine t.proc.(u) dst
            else max_int
          in
          let best = ref best in
          for i = t.rep_off.(u) to t.rep_off.(u + 1) - 1 do
            if t.rep_step.(i) <= phase then begin
              let lam = Machine.lambda machine t.rep_proc.(i) dst in
              if lam < !best then begin
                best := lam;
                src := t.rep_proc.(i)
              end
            end
          done;
          acc := { node = u; src = !src; dst; step = phase } :: !acc
        end
      done
    done;
    !acc
  end

let with_lazy_comm_replicated machine t =
  { t with comm = lazy_comm_replicated machine t }

let of_assignment_replicated machine dag ~proc ~step ~replicas =
  let t = make_replicated dag ~proc ~step ~comm:[] ~replicas in
  { t with comm = lazy_comm_replicated machine t }

let drop_replicas t = of_assignment t.dag ~proc:t.proc ~step:t.step

let assignment_valid dag ~proc ~step =
  let ok = ref true in
  Dag.iter_edges dag (fun u v ->
      if proc.(u) = proc.(v) then begin
        if step.(u) > step.(v) then ok := false
      end
      else if step.(u) >= step.(v) then ok := false);
  !ok

let used_supersteps t =
  let s = num_supersteps t in
  if s = 0 then 0
  else begin
    let used = Array.make s false in
    Array.iter (fun x -> used.(x) <- true) t.step;
    let extras = num_replicas t in
    for i = 0 to extras - 1 do
      used.(t.rep_step.(i)) <- true
    done;
    Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 used
  end

(* Compacting removes supersteps in which nothing is computed (by a
   primary or a replica). The communication schedule is preserved by
   renumbering event phases: an event in phase [s] is re-issued in the
   phase of the last surviving superstep <= s, which keeps it after its
   source's computation and before its consumers' — for a lazy [comm]
   this coincides exactly with re-deriving the lazy schedule on the
   renumbered assignment. [~relazy:true] restores the historical
   behaviour of discarding [comm] and re-deriving it lazily (replica-free
   schedules only). *)
let compact ?(relazy = false) t =
  let s = num_supersteps t in
  if s = 0 then t
  else begin
    let used = Array.make s false in
    Array.iter (fun x -> used.(x) <- true) t.step;
    let extras = num_replicas t in
    for i = 0 to extras - 1 do
      used.(t.rep_step.(i)) <- true
    done;
    let remap = Array.make s 0 in
    let next = ref 0 in
    for i = 0 to s - 1 do
      remap.(i) <- !next;
      if used.(i) then incr next
    done;
    let new_steps = !next in
    let step = Array.map (fun x -> remap.(x)) t.step in
    if relazy then begin
      if has_replicas t then
        invalid_arg "Schedule.compact: ~relazy:true on a replicated schedule";
      of_assignment t.dag ~proc:t.proc ~step
    end
    else begin
      (* Phase [ph] maps to the index of the last used superstep <= ph
         (clamped to phase 0 for events before any computation; phases
         past the old horizon keep their offset past the new one). *)
      let phase_remap ph =
        if ph >= s then ph - (s - new_steps)
        else begin
          let r = remap.(ph) + (if used.(ph) then 0 else -1) in
          if r < 0 then 0 else r
        end
      in
      let comm =
        List.map
          (fun (e : comm_event) -> { e with step = phase_remap e.step })
          t.comm
      in
      let rep_step = Array.map (fun x -> remap.(x)) t.rep_step in
      {
        t with
        proc = Array.copy t.proc;
        step;
        comm;
        rep_step;
        rep_off = Array.copy t.rep_off;
        rep_proc = Array.copy t.rep_proc;
      }
    end
  end

let copy t =
  {
    t with
    proc = Array.copy t.proc;
    step = Array.copy t.step;
    rep_off = Array.copy t.rep_off;
    rep_proc = Array.copy t.rep_proc;
    rep_step = Array.copy t.rep_step;
  }

let pp fmt t =
  Format.fprintf fmt "@[<v>schedule: %d nodes, %d supersteps, %d comm events"
    (Dag.n t.dag) (num_supersteps t) (List.length t.comm);
  if has_replicas t then Format.fprintf fmt ", %d replicas" (num_replicas t);
  Format.fprintf fmt "@,";
  for v = 0 to Dag.n t.dag - 1 do
    Format.fprintf fmt "  node %d -> proc %d, step %d@," v t.proc.(v) t.step.(v);
    iter_replicas t v (fun q s ->
        Format.fprintf fmt "  node %d => replica on proc %d, step %d@," v q s)
  done;
  List.iter
    (fun e ->
      Format.fprintf fmt "  send %d: %d -> %d @@ phase %d@," e.node e.src e.dst e.step)
    t.comm;
  Format.fprintf fmt "@]"
