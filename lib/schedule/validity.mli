(** Validity of BSP schedules.

    A schedule [(pi, tau, Gamma)] is valid (Section 3.2) when:

    - every assignment entry is in range ([0 <= pi v < P], [tau v >= 0],
      communication events use distinct in-range processors and
      non-negative phases);
    - for every edge [(u, v)]: if [pi u = pi v] then [tau u <= tau v],
      otherwise some event [(u, p1, pi v, s)] with [s < tau v] belongs to
      [Gamma] (the value arrives before [v]'s superstep starts);
    - every event [(v, p1, p2, s)] sends a value that is actually present
      on [p1] at phase [s]: either [pi v = p1] and [tau v <= s], or an
      earlier event [(v, p', p1, s')] with [s' < s] delivered it (relay
      chains are allowed). *)

val check : Machine.t -> Schedule.t -> (unit, string list) result
(** Full check; on failure returns a list of human-readable violation
    descriptions (at most one per offending edge/event). *)

val is_valid : Machine.t -> Schedule.t -> bool

val errors : Machine.t -> Schedule.t -> string list
(** [[]] iff valid. *)
