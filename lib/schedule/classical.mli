(** Conversion of classical schedules into BSP schedules.

    Cilk, BL-EST and ETF produce {e classical} schedules, assigning each
    node to a processor and a concrete execution slot in time. Appendix
    A.1 describes how such a schedule is organised into supersteps: while
    nodes remain, find the earliest executed node [v] that has a
    not-yet-assigned predecessor on a different processor; everything
    executed strictly before [v] forms the next superstep. This cuts the
    timeline exactly where a communication becomes unavoidable.

    Execution slots are represented here as a {e sequence}: a permutation
    index per node, consistent with precedence (a node's predecessors all
    have smaller sequence numbers) and with each processor's local
    execution order. Simulators assign sequence numbers in event order,
    which sidesteps ties between zero-work nodes that a raw time stamp
    could not break. *)

type t = {
  proc : int array;  (** node -> processor *)
  seq : int array;  (** node -> global execution sequence index (unique) *)
}

val to_bsp : Dag.t -> t -> Schedule.t
(** Cut the classical schedule into supersteps per Appendix A.1 and
    attach the lazy communication schedule. The result is always a valid
    BSP schedule when the input respects precedence. *)

val makespan : Dag.t -> t -> int
(** Classical makespan ignoring communication: finishing time of the last
    node when each processor executes its nodes in sequence order and a
    node may only start once all predecessors finished. Useful for tests
    and diagnostics. *)
