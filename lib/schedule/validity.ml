open Schedule

let errors machine (t : Schedule.t) =
  let dag = t.dag in
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let errs = ref [] in
  let err fmt = Printf.ksprintf (fun s -> errs := s :: !errs) fmt in
  (* Range checks first; later checks assume indices are usable. *)
  let ranges_ok = ref true in
  for v = 0 to n - 1 do
    if t.proc.(v) < 0 || t.proc.(v) >= p then begin
      ranges_ok := false;
      err "node %d assigned to processor %d outside [0, %d)" v t.proc.(v) p
    end;
    if t.step.(v) < 0 then begin
      ranges_ok := false;
      err "node %d assigned to negative superstep %d" v t.step.(v)
    end
  done;
  if Array.length t.rep_off <> n + 1 then begin
    ranges_ok := false;
    err "replica offset table has length %d, expected %d"
      (Array.length t.rep_off) (n + 1)
  end
  else
    for v = 0 to n - 1 do
      let prev_q = ref (-1) in
      Schedule.iter_replicas t v (fun q s ->
          if q < 0 || q >= p then begin
            ranges_ok := false;
            err "replica of node %d on processor %d outside [0, %d)" v q p
          end;
          if s < 0 then begin
            ranges_ok := false;
            err "replica of node %d at negative superstep %d" v s
          end;
          if q = t.proc.(v) then begin
            ranges_ok := false;
            err "replica of node %d duplicates its primary processor %d" v q
          end;
          if q = !prev_q then begin
            ranges_ok := false;
            err "node %d has duplicate replicas on processor %d" v q
          end;
          prev_q := q)
    done;
  List.iter
    (fun e ->
      if e.node < 0 || e.node >= n then begin
        ranges_ok := false;
        err "comm event for unknown node %d" e.node
      end;
      if e.src < 0 || e.src >= p || e.dst < 0 || e.dst >= p then begin
        ranges_ok := false;
        err "comm event for node %d uses processor outside [0, %d)" e.node p
      end;
      if e.src = e.dst then begin
        ranges_ok := false;
        err "comm event for node %d sends from processor %d to itself" e.node e.src
      end;
      if e.step < 0 then begin
        ranges_ok := false;
        err "comm event for node %d uses negative phase %d" e.node e.step
      end)
    t.comm;
  if !ranges_ok then begin
    (* arrival.(v) maps destination processors to the earliest phase in
       which some event delivers v there. *)
    let arrival = Array.make n [] in
    List.iter
      (fun e ->
        let cur = arrival.(e.node) in
        arrival.(e.node) <- (e.dst, e.step) :: cur)
      t.comm;
    let earliest_arrival v dst =
      List.fold_left
        (fun acc (d, s) -> if d = dst && (acc < 0 || s < acc) then s else acc)
        (-1) arrival.(v)
    in
    (* Condition 1: precedence constraints, for every placement of the
       consumer. The value of u is present on processor q at superstep s
       when some placement (primary or replica) of u sits on q at a step
       <= s, or some event delivered it to q in a phase < s. Replicas
       are consumers too: each must have all its inputs available. *)
    let present u q s =
      Schedule.placement_step_on t u q <= s
      ||
      let a = earliest_arrival u q in
      a >= 0 && a < s
    in
    Dag.iter_edges dag (fun u v ->
        Schedule.iter_placements t v (fun q s ->
            if not (present u q s) then
              if q = t.proc.(v) && s = t.step.(v) then
                err
                  "edge (%d,%d): value of %d is not available on processor %d before superstep %d"
                  u v u q s
              else
                err
                  "edge (%d,%d): value of %d is not available for the replica of %d on processor %d at superstep %d"
                  u v u v q s));
    (* Condition 2: every sent value is present at its source. An event
       (v, p1, p2, s) needs a placement of v on p1 with tau <= s, or an
       earlier event delivering v to p1. *)
    List.iter
      (fun e ->
        let computed_here = Schedule.placement_step_on t e.node e.src <= e.step in
        let relayed =
          List.exists (fun (d, s) -> d = e.src && s < e.step) arrival.(e.node)
        in
        if not (computed_here || relayed) then
          err "comm event for node %d at phase %d sends from processor %d where it is not present"
            e.node e.step e.src)
      t.comm
  end;
  List.rev !errs

let check machine t =
  match errors machine t with [] -> Ok () | errs -> Error errs

let is_valid machine t = errors machine t = []
