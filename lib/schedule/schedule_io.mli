(** Textual serialisation of BSP schedules.

    Format (lines starting with [%] are comments):

    {v
    % bsp schedule
    <num_nodes> <num_comm_events>
    <node> <processor> <superstep>        (one line per node)
    ...
    <node> <src> <dst> <phase>            (one line per comm event)
    ...
    v}

    The DAG itself is not stored; reading requires the DAG the schedule
    refers to, and validates the node count against it. *)

val write : out_channel -> Schedule.t -> unit
val write_file : string -> Schedule.t -> unit

val read : Dag.t -> in_channel -> Schedule.t
(** Raises [Failure] with a descriptive message on malformed input. *)

val read_file : Dag.t -> string -> Schedule.t

val to_string : Schedule.t -> string
val of_string : Dag.t -> string -> Schedule.t
