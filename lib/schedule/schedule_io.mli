(** Textual serialisation of BSP schedules.

    v1 format (lines starting with [%] are comments):

    {v
    % bsp schedule
    <num_nodes> <num_comm_events>
    <node> <processor> <superstep>        (one line per node)
    ...
    <node> <src> <dst> <phase>            (one line per comm event)
    ...
    v}

    v2 adds node replication: the file starts with the version marker
    comment [% bsp schedule v2], the header gains a third field, and the
    replica lines follow the comm events:

    {v
    % bsp schedule v2
    <num_nodes> <num_comm_events> <num_replicas>
    <node> <processor> <superstep>        (one line per node)
    ...
    <node> <src> <dst> <phase>            (one line per comm event)
    ...
    <node> <processor> <superstep>        (one line per replica)
    ...
    v}

    {!to_string}/{!write} emit v1 for replica-free schedules (so outputs
    of replication-free workflows stay byte-identical) and v2 as soon as
    at least one replica exists. {!of_string}/{!read} accept both;
    version detection keys on the marker comment.

    The DAG itself is not stored; reading requires the DAG the schedule
    refers to, and validates the node count against it. Input with
    trailing non-comment lines beyond the counts declared in the header
    is rejected ([Failure]) rather than silently ignored. *)

val write : out_channel -> Schedule.t -> unit
val write_file : string -> Schedule.t -> unit

val read : Dag.t -> in_channel -> Schedule.t
(** Raises [Failure] with a descriptive message on malformed input,
    including trailing garbage after the declared line counts. *)

val read_file : Dag.t -> string -> Schedule.t

val to_string : Schedule.t -> string
val of_string : Dag.t -> string -> Schedule.t
