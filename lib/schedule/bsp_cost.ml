open Schedule

type superstep = { work_max : int; comm_max : int; cost : int }

type breakdown = {
  total : int;
  work_total : int;
  comm_total : int;
  latency_total : int;
  supersteps : superstep array;
}

let superstep_cost machine ~work_max ~comm_max =
  work_max + (machine.Machine.g * comm_max) + machine.Machine.l

let tables machine (t : Schedule.t) ~num_steps =
  let p = machine.Machine.p in
  let work = Array.make_matrix num_steps p 0 in
  let send = Array.make_matrix num_steps p 0 in
  let recv = Array.make_matrix num_steps p 0 in
  let dag = t.dag in
  (* Every placement computes the node, so every placement pays its
     work: the primary on (step v, proc v) and each replica on its own
     (step, proc) cell. *)
  for v = 0 to Dag.n dag - 1 do
    let wv = Dag.work dag v in
    Schedule.iter_placements t v (fun q s ->
        if s < num_steps then work.(s).(q) <- work.(s).(q) + wv)
  done;
  List.iter
    (fun (e : comm_event) ->
      if e.step < num_steps then begin
        let volume = Dag.comm dag e.node * Machine.lambda machine e.src e.dst in
        send.(e.step).(e.src) <- send.(e.step).(e.src) + volume;
        recv.(e.step).(e.dst) <- recv.(e.step).(e.dst) + volume
      end)
    t.comm;
  (work, send, recv)

let breakdown machine (t : Schedule.t) =
  let p = machine.Machine.p in
  let num_steps = num_supersteps t in
  let work, send, recv = tables machine t ~num_steps in
  let supersteps =
    Array.init num_steps (fun s ->
        let work_max = ref 0 and comm_max = ref 0 in
        for q = 0 to p - 1 do
          if work.(s).(q) > !work_max then work_max := work.(s).(q);
          let h = max send.(s).(q) recv.(s).(q) in
          if h > !comm_max then comm_max := h
        done;
        {
          work_max = !work_max;
          comm_max = !comm_max;
          cost = superstep_cost machine ~work_max:!work_max ~comm_max:!comm_max;
        })
  in
  let work_total = Array.fold_left (fun acc s -> acc + s.work_max) 0 supersteps in
  let comm_total =
    Array.fold_left (fun acc s -> acc + (machine.Machine.g * s.comm_max)) 0 supersteps
  in
  let latency_total = num_steps * machine.Machine.l in
  {
    total = work_total + comm_total + latency_total;
    work_total;
    comm_total;
    latency_total;
    supersteps;
  }

let total machine t = (breakdown machine t).total
