open Obs.Json

(* trace_event records; the "complete" event form (ph = "X") carries its
   own duration so no begin/end pairing is needed. *)
let complete ~name ~cat ~tid ~ts ~dur ~args =
  Obj
    ([
       ("name", String name);
       ("cat", String cat);
       ("ph", String "X");
       ("pid", Int 0);
       ("tid", Int tid);
       ("ts", Int ts);
       ("dur", Int dur);
     ]
    @ (if args = [] then [] else [ ("args", Obj args) ]))

let instant ~name ~ts =
  Obj
    [
      ("name", String name);
      ("ph", String "i");
      ("pid", Int 0);
      ("tid", Int 0);
      ("ts", Int ts);
      ("s", String "g");
    ]

let counter ~name ~ts ~value =
  Obj
    [
      ("name", String name);
      ("ph", String "C");
      ("pid", Int 0);
      ("ts", Int ts);
      ("args", Obj [ ("ratio", Float value) ]);
    ]

let metadata ~name ~tid ~args =
  Obj
    [
      ("name", String name); ("ph", String "M"); ("pid", Int 0); ("tid", Int tid);
      ("args", Obj args);
    ]

let to_json machine (t : Schedule.t) =
  let prof = Profile.compute machine t in
  let p = prof.Profile.p in
  let g = machine.Machine.g and l = machine.Machine.l in
  (* Node counts per (superstep, processor) for the slice tooltips.
     Replica placements count like primary ones: the slice durations
     they annotate come from Bsp_cost.tables, which charges replica work
     to the replica's own (superstep, processor) cell. *)
  let node_count = Array.make_matrix prof.Profile.num_supersteps p 0 in
  for v = 0 to Dag.n t.Schedule.dag - 1 do
    Schedule.iter_placements t v (fun q s ->
        if s < prof.Profile.num_supersteps then
          node_count.(s).(q) <- node_count.(s).(q) + 1)
  done;
  let events = ref [] in
  let emit e = events := e :: !events in
  emit
    (metadata ~name:"process_name" ~tid:0
       ~args:
         [
           ( "name",
             String
               (Printf.sprintf "BSP schedule: P=%d g=%d l=%d, cost %d" p g l
                  prof.Profile.total) );
         ]);
  emit (metadata ~name:"thread_name" ~tid:p ~args:[ ("name", String "bsp phases") ]);
  emit (metadata ~name:"thread_sort_index" ~tid:p ~args:[ ("sort_index", Int (-1)) ]);
  for q = 0 to p - 1 do
    emit
      (metadata ~name:"thread_name" ~tid:q ~args:[ ("name", String (Printf.sprintf "p%d" q)) ]);
    emit (metadata ~name:"thread_sort_index" ~tid:q ~args:[ ("sort_index", Int q) ])
  done;
  let start = ref 0 in
  Array.iteri
    (fun s (ss : Profile.superstep) ->
      let t0 = !start in
      let comm_start = t0 + ss.Profile.work_max in
      emit (instant ~name:(Printf.sprintf "superstep %d" s) ~ts:t0);
      emit (counter ~name:"work imbalance" ~ts:t0 ~value:ss.Profile.work_imbalance);
      emit (counter ~name:"comm imbalance" ~ts:t0 ~value:ss.Profile.comm_imbalance);
      (* The superstep-level phase structure the cost formula charges. *)
      if ss.Profile.work_max > 0 then
        emit
          (complete ~name:(Printf.sprintf "s%d compute" s) ~cat:"phase" ~tid:p ~ts:t0
             ~dur:ss.Profile.work_max
             ~args:[ ("superstep", Int s); ("work_max", Int ss.Profile.work_max) ]);
      if g * ss.Profile.comm_max > 0 then
        emit
          (complete ~name:(Printf.sprintf "s%d comm" s) ~cat:"phase" ~tid:p ~ts:comm_start
             ~dur:(g * ss.Profile.comm_max)
             ~args:[ ("superstep", Int s); ("h_relation", Int ss.Profile.comm_max) ]);
      if l > 0 then
        emit
          (complete ~name:(Printf.sprintf "s%d latency" s) ~cat:"phase" ~tid:p
             ~ts:(comm_start + (g * ss.Profile.comm_max))
             ~dur:l ~args:[ ("superstep", Int s) ]);
      for q = 0 to p - 1 do
        let w = ss.Profile.work.(q) in
        if w > 0 then
          emit
            (complete ~name:(Printf.sprintf "s%d compute" s) ~cat:"compute" ~tid:q ~ts:t0
               ~dur:w
               ~args:
                 [
                   ("superstep", Int s);
                   ("work", Int w);
                   ("nodes", Int node_count.(s).(q));
                   ("idle", Int ss.Profile.idle.(q));
                 ]);
        let h = g * max ss.Profile.send.(q) ss.Profile.recv.(q) in
        if h > 0 then
          emit
            (complete ~name:(Printf.sprintf "s%d comm" s) ~cat:"comm" ~tid:q ~ts:comm_start
               ~dur:h
               ~args:
                 [
                   ("superstep", Int s);
                   ("send", Int ss.Profile.send.(q));
                   ("recv", Int ss.Profile.recv.(q));
                 ])
      done;
      start := t0 + ss.Profile.cost)
    prof.Profile.supersteps;
  emit (instant ~name:"end" ~ts:!start);
  Obj
    [
      ("traceEvents", List (List.rev !events));
      ("displayTimeUnit", String "ms");
      ( "otherData",
        Obj
          [
            ("format", String "bsp-schedule-trace");
            ("processors", Int p);
            ("supersteps", Int prof.Profile.num_supersteps);
            ("cost", Int prof.Profile.total);
          ] );
    ]

let to_string machine t = Obs.Json.to_string (to_json machine t)

let write_file path machine t =
  Atomic_file.write path (fun oc ->
      output_string oc (to_string machine t);
      output_char oc '\n')
