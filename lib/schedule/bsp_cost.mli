(** Exact BSP(+NUMA) cost of a schedule (Sections 3.3 and 3.4).

    The cost of superstep [s] is

    {v C(s) = C_work(s) + g * C_comm(s) + l v}

    where [C_work(s)] is the maximum total work any processor executes in
    the computation phase of [s], and [C_comm(s)] is the h-relation
    metric of the communication phase: the maximum over processors of
    [max(send, receive)], with the send and receive volumes of an event
    [(v, p1, p2, s)] both weighted by [c(v) * lambda(p1, p2)]. The total
    cost is the sum over all supersteps [0 .. num_supersteps - 1]; every
    superstep pays the latency [l] whether or not it communicates. *)

type superstep = {
  work_max : int;  (** C_work(s) *)
  comm_max : int;  (** C_comm(s), before multiplying by [g] *)
  cost : int;  (** C(s) = work_max + g * comm_max + l *)
}

type breakdown = {
  total : int;
  work_total : int;  (** sum of C_work(s) *)
  comm_total : int;  (** sum of g * C_comm(s) *)
  latency_total : int;  (** num_supersteps * l *)
  supersteps : superstep array;
}

val total : Machine.t -> Schedule.t -> int
(** Total schedule cost. Does not verify validity. *)

val superstep_cost : Machine.t -> work_max:int -> comm_max:int -> int
(** [superstep_cost m ~work_max ~comm_max] is
    [work_max + g * comm_max + l] — the single-superstep cost formula,
    shared with the incremental cost tables of the local search so the
    two can never drift apart. *)

val breakdown : Machine.t -> Schedule.t -> breakdown

val tables :
  Machine.t ->
  Schedule.t ->
  num_steps:int ->
  int array array * int array array * int array array
(** [tables m t ~num_steps] returns the raw per-superstep/per-processor
    [(work, send, recv)] tables, each of size [num_steps x p], from which
    the cost formula is assembled. Exposed for the incremental
    data structures of the local search and for tests that cross-check
    them. *)
