(** Chrome-trace (trace_event JSON) export of a BSP schedule.

    Renders a schedule as a Gantt timeline loadable in
    [ui.perfetto.dev] or [chrome://tracing]: one thread track per
    processor carrying a compute slice per superstep (duration = the
    processor's assigned work) and a communication slice (duration =
    [g * max(send, recv)] for that processor), one extra "bsp phases"
    track showing the superstep-level compute/comm/latency structure the
    cost formula charges, global instant markers at superstep
    boundaries, and counter tracks for the work/comm imbalance ratios.

    Time is in abstract cost units (the model has no wall clock): the
    compute phase of superstep [s] starts at the summed cost of
    supersteps [0 .. s-1], so the timeline's total extent equals
    {!Bsp_cost.total}. Durations are emitted in the file's microsecond
    field; the absolute scale is meaningless, the proportions are the
    point. Zero-duration slices are omitted. *)

val to_json : Machine.t -> Schedule.t -> Obs.Json.t
(** The trace as a JSON object: [{"traceEvents": [...], ...}]. *)

val to_string : Machine.t -> Schedule.t -> string

val write_file : string -> Machine.t -> Schedule.t -> unit
