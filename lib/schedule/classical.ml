type t = { proc : int array; seq : int array }

let to_bsp dag { proc; seq } =
  let n = Dag.n dag in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare seq.(a) seq.(b)) order;
  let step = Array.make n (-1) in
  let superstep = ref 0 in
  let assigned = Array.make n false in
  let start = ref 0 in
  (* Invariant: order.(0 .. start-1) are assigned. Each round scans the
     unassigned suffix for the first node with an unassigned cross-
     processor predecessor; the strict prefix before it becomes the next
     superstep. The earliest unassigned node never qualifies (all its
     predecessors are assigned), so every round makes progress. *)
  while !start < n do
    let cut = ref n in
    (try
       for i = !start to n - 1 do
         let v = order.(i) in
         let blocked =
           Array.exists
             (fun u -> (not assigned.(u)) && proc.(u) <> proc.(v))
             (Dag.pred dag v)
         in
         if blocked then begin
           cut := i;
           raise Exit
         end
       done
     with Exit -> ());
    for i = !start to !cut - 1 do
      let v = order.(i) in
      step.(v) <- !superstep;
      assigned.(v) <- true
    done;
    start := !cut;
    incr superstep
  done;
  Schedule.of_assignment dag ~proc ~step

let makespan dag { proc; seq } =
  let n = Dag.n dag in
  let order = Array.init n (fun i -> i) in
  Array.sort (fun a b -> compare seq.(a) seq.(b)) order;
  let num_procs = 1 + Array.fold_left max (-1) proc in
  let proc_free = Array.make (max num_procs 1) 0 in
  let finish = Array.make n 0 in
  Array.iter
    (fun v ->
      let ready =
        Array.fold_left (fun acc u -> max acc finish.(u)) 0 (Dag.pred dag v)
      in
      let begin_time = max ready proc_free.(proc.(v)) in
      finish.(v) <- begin_time + Dag.work dag v;
      proc_free.(proc.(v)) <- finish.(v))
    order;
  Array.fold_left max 0 finish
