open Schedule

type superstep = {
  work : int array;
  send : int array;
  recv : int array;
  work_max : int;
  work_bottleneck : int;
  comm_max : int;
  comm_bottleneck : int;
  work_imbalance : float;
  comm_imbalance : float;
  idle : int array;
  cost : int;
}

type t = {
  p : int;
  num_supersteps : int;
  supersteps : superstep array;
  proc_work : int array;
  proc_send : int array;
  proc_recv : int array;
  proc_idle : int array;
  traffic : int array array;
  work_total : int;
  comm_total : int;
  latency_total : int;
  total : int;
  node_work : int;
  critical_path_work : int;
  work_floor : int;
  lower_bound : int;
  num_replicas : int;
  replica_work : int;
}

(* max / mean over all p entries; 1.0 when the phase is empty so a
   workless superstep does not read as infinitely imbalanced. *)
let imbalance values vmax =
  let sum = Array.fold_left ( + ) 0 values in
  if sum = 0 then 1.0
  else float_of_int (vmax * Array.length values) /. float_of_int sum

let argmax values =
  let best = ref (-1) and best_v = ref 0 in
  Array.iteri
    (fun q v ->
      if v > !best_v then begin
        best := q;
        best_v := v
      end)
    values;
  !best

let compute machine (t : Schedule.t) =
  let p = machine.Machine.p in
  let num_steps = num_supersteps t in
  let work, send, recv = Bsp_cost.tables machine t ~num_steps in
  let traffic = Array.make_matrix p p 0 in
  List.iter
    (fun (e : comm_event) ->
      if e.step < num_steps then
        traffic.(e.src).(e.dst) <-
          traffic.(e.src).(e.dst) + (Dag.comm t.dag e.node * Machine.lambda machine e.src e.dst))
    t.comm;
  let supersteps =
    Array.init num_steps (fun s ->
        let h = Array.init p (fun q -> max send.(s).(q) recv.(s).(q)) in
        let work_max = Array.fold_left max 0 work.(s) in
        let comm_max = Array.fold_left max 0 h in
        {
          work = work.(s);
          send = send.(s);
          recv = recv.(s);
          work_max;
          work_bottleneck = argmax work.(s);
          comm_max;
          comm_bottleneck = argmax h;
          work_imbalance = imbalance work.(s) work_max;
          comm_imbalance = imbalance h comm_max;
          idle = Array.map (fun w -> work_max - w) work.(s);
          cost = Bsp_cost.superstep_cost machine ~work_max ~comm_max;
        })
  in
  let per_proc of_step =
    Array.init p (fun q ->
        Array.fold_left (fun acc (ss : superstep) -> acc + (of_step ss).(q)) 0 supersteps)
  in
  let work_total =
    Array.fold_left (fun acc ss -> acc + ss.work_max) 0 supersteps
  in
  let comm_total =
    Array.fold_left (fun acc ss -> acc + (machine.Machine.g * ss.comm_max)) 0 supersteps
  in
  let latency_total = num_steps * machine.Machine.l in
  let node_work = Dag.total_work t.dag in
  let critical_path_work = Dag.critical_path_work t.dag in
  (* Replication recomputes nodes, so the work attributed across
     processors exceeds [node_work] by [replica_work]; the work floor
     stays a valid lower bound (every node is computed at least once,
     and chains still execute sequentially). *)
  let num_replicas = Schedule.num_replicas t in
  let replica_work = ref 0 in
  if num_replicas > 0 then
    for v = 0 to Dag.n t.dag - 1 do
      let wv = Dag.work t.dag v in
      Schedule.iter_replicas t v (fun _ _ -> replica_work := !replica_work + wv)
    done;
  let replica_work = !replica_work in
  let work_floor = max ((node_work + p - 1) / p) critical_path_work in
  {
    p;
    num_supersteps = num_steps;
    supersteps;
    proc_work = per_proc (fun ss -> ss.work);
    proc_send = per_proc (fun ss -> ss.send);
    proc_recv = per_proc (fun ss -> ss.recv);
    proc_idle = per_proc (fun ss -> ss.idle);
    traffic;
    work_total;
    comm_total;
    latency_total;
    total = work_total + comm_total + latency_total;
    node_work;
    critical_path_work;
    work_floor;
    lower_bound = (if Dag.n t.dag = 0 then 0 else work_floor + machine.Machine.l);
    num_replicas;
    replica_work;
  }

let gap_ratio t =
  if t.lower_bound = 0 then 1.0 else float_of_int t.total /. float_of_int t.lower_bound

let work_utilisation t q =
  if t.work_total = 0 then 0.0
  else float_of_int t.proc_work.(q) /. float_of_int t.work_total

let reconcile t (b : Bsp_cost.breakdown) =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let steps_b = Array.length b.Bsp_cost.supersteps in
  if t.num_supersteps <> steps_b then
    err "superstep count: profile %d, breakdown %d" t.num_supersteps steps_b
  else begin
    let mismatch = ref None in
    Array.iteri
      (fun s (ss : superstep) ->
        if !mismatch = None then begin
          let bs = b.Bsp_cost.supersteps.(s) in
          if ss.work_max <> bs.Bsp_cost.work_max then
            mismatch :=
              Some
                (Printf.sprintf "superstep %d work_max: profile %d, breakdown %d" s
                   ss.work_max bs.Bsp_cost.work_max)
          else if ss.comm_max <> bs.Bsp_cost.comm_max then
            mismatch :=
              Some
                (Printf.sprintf "superstep %d comm_max: profile %d, breakdown %d" s
                   ss.comm_max bs.Bsp_cost.comm_max)
          else if ss.cost <> bs.Bsp_cost.cost then
            mismatch :=
              Some
                (Printf.sprintf "superstep %d cost: profile %d, breakdown %d" s ss.cost
                   bs.Bsp_cost.cost)
        end)
      t.supersteps;
    match !mismatch with
    | Some m -> Error m
    | None ->
      if t.work_total <> b.Bsp_cost.work_total then
        err "work_total: profile %d, breakdown %d" t.work_total b.Bsp_cost.work_total
      else if t.comm_total <> b.Bsp_cost.comm_total then
        err "comm_total: profile %d, breakdown %d" t.comm_total b.Bsp_cost.comm_total
      else if t.latency_total <> b.Bsp_cost.latency_total then
        err "latency_total: profile %d, breakdown %d" t.latency_total
          b.Bsp_cost.latency_total
      else if t.total <> b.Bsp_cost.total then
        err "total: profile %d, breakdown %d" t.total b.Bsp_cost.total
      else Ok ()
  end

let to_json t =
  let open Obs.Json in
  let ints a = List (Array.to_list (Array.map (fun i -> Int i) a)) in
  Obj
    [
      ("p", Int t.p);
      ("num_supersteps", Int t.num_supersteps);
      ("total", Int t.total);
      ("work_total", Int t.work_total);
      ("comm_total", Int t.comm_total);
      ("latency_total", Int t.latency_total);
      ("node_work", Int t.node_work);
      ("critical_path_work", Int t.critical_path_work);
      ("work_floor", Int t.work_floor);
      ("lower_bound", Int t.lower_bound);
      ("num_replicas", Int t.num_replicas);
      ("replica_work", Int t.replica_work);
      ("gap_ratio", Float (gap_ratio t));
      ("proc_work", ints t.proc_work);
      ("proc_send", ints t.proc_send);
      ("proc_recv", ints t.proc_recv);
      ("proc_idle", ints t.proc_idle);
      ( "proc_utilisation",
        List
          (List.init t.p (fun q -> Float (work_utilisation t q))) );
      ("traffic", List (Array.to_list (Array.map ints t.traffic)));
      ( "supersteps",
        List
          (Array.to_list
             (Array.map
                (fun (ss : superstep) ->
                  Obj
                    [
                      ("cost", Int ss.cost);
                      ("work_max", Int ss.work_max);
                      ("work_bottleneck", Int ss.work_bottleneck);
                      ("work_imbalance", Float ss.work_imbalance);
                      ("comm_max", Int ss.comm_max);
                      ("comm_bottleneck", Int ss.comm_bottleneck);
                      ("comm_imbalance", Float ss.comm_imbalance);
                      ("idle", ints ss.idle);
                    ])
                t.supersteps)) );
    ]

let pp fmt t =
  let pct x = 100.0 *. x in
  Format.fprintf fmt "profile: P=%d, %d supersteps, cost %d (work %d + comm %d + latency %d)@\n"
    t.p t.num_supersteps t.total t.work_total t.comm_total t.latency_total;
  Format.fprintf fmt
    "lower bound %d (work floor %d = max(ceil(%d/%d), critical path %d) + latency), gap %.2fx@\n"
    t.lower_bound t.work_floor t.node_work t.p t.critical_path_work (gap_ratio t);
  if t.num_replicas > 0 then
    Format.fprintf fmt "replication: %d replicas recomputing %d work units@\n"
      t.num_replicas t.replica_work;
  Format.fprintf fmt "per-processor totals:@\n";
  for q = 0 to t.p - 1 do
    Format.fprintf fmt "  p%-3d work %-8d (util %5.1f%%)  idle %-8d send %-8d recv %d@\n" q
      t.proc_work.(q)
      (pct (work_utilisation t q))
      t.proc_idle.(q) t.proc_send.(q) t.proc_recv.(q)
  done;
  let traffic_volume =
    Array.fold_left (fun acc row -> Array.fold_left ( + ) acc row) 0 t.traffic
  in
  if traffic_volume > 0 then
    if t.p <= 16 then begin
      Format.fprintf fmt "traffic matrix (c(v)*lambda units, rows = src, cols = dst):@\n";
      Format.fprintf fmt "      ";
      for q = 0 to t.p - 1 do
        Format.fprintf fmt " %6s" (Printf.sprintf "p%d" q)
      done;
      Format.fprintf fmt "@\n";
      for src = 0 to t.p - 1 do
        Format.fprintf fmt "  p%-4d" src;
        for dst = 0 to t.p - 1 do
          if t.traffic.(src).(dst) = 0 then Format.fprintf fmt " %6s" "."
          else Format.fprintf fmt " %6d" t.traffic.(src).(dst)
        done;
        Format.fprintf fmt "@\n"
      done
    end
    else
      Format.fprintf fmt "traffic matrix: %d units total (elided, P > 16)@\n" traffic_volume;
  Format.fprintf fmt "per-superstep attribution:@\n";
  Array.iteri
    (fun s (ss : superstep) ->
      let idle_total = Array.fold_left ( + ) 0 ss.idle in
      Format.fprintf fmt
        "  s%-3d cost %-7d work %-6d (bottleneck %s, imbalance %.2f)  h %-6d (bottleneck \
         %s, imbalance %.2f)  idle %d@\n"
        s ss.cost ss.work_max
        (if ss.work_bottleneck < 0 then "-" else Printf.sprintf "p%d" ss.work_bottleneck)
        ss.work_imbalance ss.comm_max
        (if ss.comm_bottleneck < 0 then "-" else Printf.sprintf "p%d" ss.comm_bottleneck)
        ss.comm_imbalance idle_total)
    t.supersteps
