(** The BSPg greedy initialisation heuristic (Section 4.2, Algorithm 1).

    BSPg develops a BSP schedule directly, superstep by superstep, while
    still tracking concrete start/finish times inside each computation
    phase to balance work across processors. Within the current
    superstep a processor [p] may only be assigned a node whose
    predecessors are all already available on [p] — computed on [p], or
    in an earlier superstep. Nodes that become ready with predecessors
    on several processors of the current superstep go to a global
    [ready_all] pool that opens up in the next superstep.

    When a processor frees up it receives a node from its private ready
    set, falling back to [ready_all]; ties are broken by the ChooseNode
    score: the sum over predecessors [u] (with [u] or one of [u]'s direct
    successors already on [p]) of [c u / outdeg u] — an estimate of the
    communication the assignment may save in the future. Once at least
    half of the processors are idle and the global pool is empty, the
    computation phase closes and a new superstep begins.

    The output is the assignment [(pi, tau)] completed with the lazy
    communication schedule. *)

val schedule : Machine.t -> Dag.t -> Schedule.t
