(* Union-find for the first-superstep clustering of original sources. *)
module Union_find = struct
  let create n = Array.init n (fun i -> i)

  let rec find t x = if t.(x) = x then x else find t t.(x)

  let union t a b =
    let ra = find t a and rb = find t b in
    if ra <> rb then t.(min ra rb) <- max ra rb
end

let schedule machine dag =
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let proc = Array.make n (-1) in
  let step = Array.make n (-1) in
  let remaining = Array.init n (fun v -> Dag.in_degree dag v) in
  let unassigned = ref n in
  let superstep = ref 0 in
  let rr = ref 0 in
  let assign v q =
    proc.(v) <- q;
    step.(v) <- !superstep;
    decr unassigned
  in
  let current_sources () =
    let acc = ref [] in
    for v = n - 1 downto 0 do
      if proc.(v) < 0 && remaining.(v) = 0 then acc := v :: !acc
    done;
    !acc
  in
  let release v =
    Array.iter (fun u -> remaining.(u) <- remaining.(u) - 1) (Dag.succ dag v)
  in
  while !unassigned > 0 do
    let sources = current_sources () in
    if !superstep = 0 then begin
      (* Cluster sources sharing a direct successor, then deal whole
         clusters round-robin. *)
      let uf = Union_find.create n in
      let owner = Hashtbl.create 64 in
      List.iter
        (fun v ->
          Array.iter
            (fun w ->
              match Hashtbl.find_opt owner w with
              | Some u -> Union_find.union uf u v
              | None -> Hashtbl.add owner w v)
            (Dag.succ dag v))
        sources;
      let clusters = Hashtbl.create 64 in
      List.iter
        (fun v ->
          let root = Union_find.find uf v in
          let cur = Option.value ~default:[] (Hashtbl.find_opt clusters root) in
          Hashtbl.replace clusters root (v :: cur))
        sources;
      let roots = Hashtbl.fold (fun root _ acc -> root :: acc) clusters [] in
      List.iter
        (fun root ->
          let members = Hashtbl.find clusters root in
          List.iter (fun v -> assign v !rr) members;
          rr := (!rr + 1) mod p)
        (List.sort compare roots)
    end
    else begin
      let ordered =
        List.sort
          (fun a b ->
            let c = compare (Dag.work dag b) (Dag.work dag a) in
            if c <> 0 then c else compare a b)
          sources
      in
      List.iter
        (fun v ->
          assign v !rr;
          rr := (!rr + 1) mod p)
        ordered
    end;
    (* Absorb direct successors whose predecessors all landed on a single
       processor; the new edges stay processor-local so the node can join
       the same superstep. *)
    List.iter
      (fun v ->
        Array.iter
          (fun u ->
            if proc.(u) < 0 then begin
              let q = proc.(v) in
              let all_here =
                Array.for_all (fun u0 -> proc.(u0) = q) (Dag.pred dag u)
              in
              if all_here then begin
                assign u q;
                release u
              end
            end)
          (Dag.succ dag v))
      sources;
    List.iter release sources;
    incr superstep
  done;
  Schedule.of_assignment dag ~proc ~step
