module Int_set = Set.Make (Int)

let schedule machine dag =
  let n = Dag.n dag in
  let p = machine.Machine.p in
  let proc = Array.make n (-1) in
  let step = Array.make n (-1) in
  if n = 0 then Schedule.of_assignment dag ~proc ~step
  else begin
    let remaining = Array.init n (fun v -> Dag.in_degree dag v) in
    let ready = ref Int_set.empty in
    let ready_all = ref Int_set.empty in
    let ready_p = Array.make p Int_set.empty in
    List.iter (fun v -> ready := Int_set.add v !ready) (Dag.sources dag);
    ready_all := !ready;
    let free = Array.make p true in
    let running = Array.make p (-1) in
    let finish_time = Array.make p max_int in
    let superstep = ref 0 in
    let end_step = ref false in
    let time = ref 0 in
    let unassigned = ref n in
    (* ChooseNode score (Appendix A.2): for each predecessor u of the
       candidate with u or one of u's direct successors already on q, add
       c(u)/outdeg(u) — the expected saving from never communicating u. *)
    let score q v =
      Array.fold_left
        (fun acc u ->
          let near =
            proc.(u) = q
            || Array.exists (fun w -> proc.(w) = q) (Dag.succ dag u)
          in
          if near then
            acc +. (float_of_int (Dag.comm dag u) /. float_of_int (Dag.out_degree dag u))
          else acc)
        0.0 (Dag.pred dag v)
    in
    let choose_node q =
      let candidates =
        if not (Int_set.is_empty ready_p.(q)) then ready_p.(q) else !ready_all
      in
      if Int_set.is_empty candidates then None
      else begin
        let best = ref (-1) and best_score = ref neg_infinity in
        Int_set.iter
          (fun v ->
            let s = score q v in
            if s > !best_score then begin
              best := v;
              best_score := s
            end)
          candidates;
        Some !best
      end
    in
    let assign v q =
      proc.(v) <- q;
      step.(v) <- !superstep;
      ready := Int_set.remove v !ready;
      ready_all := Int_set.remove v !ready_all;
      Array.iteri (fun r s -> ready_p.(r) <- Int_set.remove v s) ready_p;
      free.(q) <- false;
      running.(q) <- v;
      finish_time.(q) <- !time + Dag.work dag v;
      decr unassigned
    in
    let assignment_round () =
      let progress = ref true in
      while !progress do
        progress := false;
        for q = 0 to p - 1 do
          if free.(q) then
            match choose_node q with
            | Some v ->
              assign v q;
              progress := true
            | None -> ()
        done
      done
    in
    let finish_node q =
      let v = running.(q) in
      running.(q) <- (-1);
      finish_time.(q) <- max_int;
      free.(q) <- true;
      Array.iter
        (fun u ->
          remaining.(u) <- remaining.(u) - 1;
          if remaining.(u) = 0 then begin
            ready := Int_set.add u !ready;
            (* u joins q's private pool when every predecessor is on q or
               in an earlier superstep. *)
            let local =
              Array.for_all
                (fun u0 -> proc.(u0) = q || step.(u0) < !superstep)
                (Dag.pred dag u)
            in
            if local then ready_p.(q) <- Int_set.add u ready_p.(q)
          end)
        (Dag.succ dag v)
    in
    while !unassigned > 0 do
      if not !end_step then assignment_round ();
      let idle = Array.fold_left (fun acc f -> if f then acc + 1 else acc) 0 free in
      if (not !end_step) && Int_set.is_empty !ready_all && 2 * idle >= p then
        end_step := true;
      let any_busy = Array.exists not free in
      if any_busy then begin
        let t = Array.fold_left min max_int finish_time in
        time := t;
        for q = 0 to p - 1 do
          if (not free.(q)) && finish_time.(q) = t then finish_node q
        done
      end
      else if !unassigned > 0 then begin
        (* Nothing running and nothing assignable: open the next
           superstep, making every ready node available everywhere. *)
        incr superstep;
        ready_all := !ready;
        Array.fill ready_p 0 p Int_set.empty;
        end_step := false;
        time := 0
      end
    done;
    Schedule.of_assignment dag ~proc ~step
  end
