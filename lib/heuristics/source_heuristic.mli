(** The Source initialisation heuristic (Section 4.2, Algorithm 2).

    Source peels the DAG layer by layer: each superstep consists of the
    current source nodes (unassigned nodes all of whose predecessors are
    assigned), which are then removed to expose the next layer.

    The first superstep clusters the original sources — two sources
    sharing a direct successor join the same cluster — and deals whole
    clusters to processors round-robin, so that sibling inputs co-locate.
    Every later superstep sorts its sources by decreasing work weight and
    deals them round-robin, balancing the work cost of the computation
    phase. Finally, each superstep absorbs those direct successors of its
    sources whose predecessors all sit on one processor, avoiding a
    pointless extra superstep (the absorbed node joins that processor in
    the same superstep, which is valid because the edges stay
    processor-local).

    The round-robin pointer persists across supersteps. Output is the
    assignment plus the lazy communication schedule. *)

val schedule : Machine.t -> Dag.t -> Schedule.t
