let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '%')
  in
  let p = ref None and g = ref None and l = ref None in
  let delta = ref None in
  let matrix_rows = ref [] in
  let in_matrix = ref false in
  let parse_int what s =
    match int_of_string_opt s with
    | Some i -> i
    | None -> failwith (Printf.sprintf "Machine_io: %s: not an integer: %s" what s)
  in
  List.iter
    (fun line ->
      let words = String.split_on_char ' ' line |> List.filter (fun s -> s <> "") in
      match words with
      | _ when !in_matrix ->
        matrix_rows := List.map (parse_int "lambda entry") words :: !matrix_rows
      | [ "p"; v ] -> p := Some (parse_int "p" v)
      | [ "g"; v ] -> g := Some (parse_int "g" v)
      | [ "l"; v ] -> l := Some (parse_int "l" v)
      | [ "numa-tree"; v ] -> delta := Some (parse_int "delta" v)
      | [ "lambda" ] -> in_matrix := true
      | _ -> failwith ("Machine_io: unrecognised line: " ^ line))
    lines;
  let g = Option.value ~default:1 !g in
  let l = Option.value ~default:0 !l in
  match (!delta, List.rev !matrix_rows) with
  | Some _, _ :: _ -> failwith "Machine_io: both numa-tree and lambda given"
  | Some delta, [] ->
    let p =
      match !p with Some p -> p | None -> failwith "Machine_io: numa-tree needs p"
    in
    (try Machine.numa_tree ~p ~g ~l ~delta
     with Invalid_argument m -> failwith ("Machine_io: " ^ m))
  | None, [] ->
    let p = match !p with Some p -> p | None -> failwith "Machine_io: missing p" in
    (try Machine.uniform ~p ~g ~l
     with Invalid_argument m -> failwith ("Machine_io: " ^ m))
  | None, rows ->
    let lambda = Array.of_list (List.map Array.of_list rows) in
    (match !p with
     | Some p when p <> Array.length lambda ->
       failwith "Machine_io: p does not match the lambda matrix size"
     | _ -> ());
    (try Machine.explicit ~g ~l ~lambda
     with Invalid_argument m -> failwith ("Machine_io: " ^ m))

let to_string (m : Machine.t) =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "% machine description\n";
  Buffer.add_string buf (Printf.sprintf "p %d\n" m.Machine.p);
  Buffer.add_string buf (Printf.sprintf "g %d\n" m.Machine.g);
  Buffer.add_string buf (Printf.sprintf "l %d\n" m.Machine.l);
  Buffer.add_string buf "lambda\n";
  for i = 0 to m.Machine.p - 1 do
    for j = 0 to m.Machine.p - 1 do
      if j > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf (string_of_int (Machine.lambda m i j))
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let read_file path = In_channel.with_open_bin path (fun ic -> of_string (In_channel.input_all ic))
let write_file path m = Atomic_file.write_string path (to_string m)
