(** Textual machine descriptions.

    Lets CLI users describe arbitrary (including asymmetric) NUMA
    machines in a file instead of the built-in uniform / binary-tree
    presets. Format (lines starting with [%] are comments):

    {v
    % machine description
    p <processors>
    g <per-unit communication cost>
    l <latency>
    numa-tree <delta>              % preset hierarchy, OR
    lambda                         % explicit matrix: p rows of p entries
    0 1 3 3
    1 0 3 3
    3 3 0 1
    3 3 1 0
    v}

    Exactly one of [numa-tree] / [lambda] may appear; neither means a
    uniform machine. *)

val of_string : string -> Machine.t
(** Raises [Failure] with a descriptive message on malformed input. *)

val read_file : string -> Machine.t

val to_string : Machine.t -> string
(** Serialises with an explicit [lambda] matrix (round-trips through
    {!of_string}). *)

val write_file : string -> Machine.t -> unit
