type t = { p : int; g : int; l : int; lambda : int array array }

let validate_params ~p ~g ~l =
  if p < 1 then invalid_arg "Machine: need at least one processor";
  if g < 0 then invalid_arg "Machine: negative g";
  if l < 0 then invalid_arg "Machine: negative latency"

let uniform ~p ~g ~l =
  validate_params ~p ~g ~l;
  let lambda = Array.init p (fun i -> Array.init p (fun j -> if i = j then 0 else 1)) in
  { p; g; l; lambda }

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let numa_tree ~p ~g ~l ~delta =
  validate_params ~p ~g ~l;
  if delta < 1 then invalid_arg "Machine.numa_tree: delta must be >= 1";
  if p < 2 || not (is_power_of_two p) then
    invalid_arg "Machine.numa_tree: p must be a power of two, >= 2";
  (* The lowest common ancestor of leaves i and j in a complete binary
     tree sits [bits (i lxor j)] levels up; siblings (one level up) cost
     delta^0 = 1, and each further level multiplies by delta. *)
  let levels_up i j =
    let x = i lxor j in
    let rec bits acc x = if x = 0 then acc else bits (acc + 1) (x lsr 1) in
    bits 0 x
  in
  let pow base e =
    let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
    go 1 e
  in
  let lambda =
    Array.init p (fun i ->
        Array.init p (fun j -> if i = j then 0 else pow delta (levels_up i j - 1)))
  in
  { p; g; l; lambda }

let explicit ~g ~l ~lambda =
  let p = Array.length lambda in
  validate_params ~p ~g ~l;
  Array.iteri
    (fun i row ->
      if Array.length row <> p then invalid_arg "Machine.explicit: non-square matrix";
      Array.iteri
        (fun j x ->
          if x < 0 then invalid_arg "Machine.explicit: negative coefficient";
          if i = j && x <> 0 then invalid_arg "Machine.explicit: non-zero diagonal")
        row)
    lambda;
  { p; g; l; lambda = Array.map Array.copy lambda }

let lambda m p1 p2 = m.lambda.(p1).(p2)

let average_lambda m =
  if m.p <= 1 then 0.0
  else begin
    let sum = ref 0 in
    for i = 0 to m.p - 1 do
      for j = 0 to m.p - 1 do
        if i <> j then sum := !sum + m.lambda.(i).(j)
      done
    done;
    float_of_int !sum /. float_of_int (m.p * (m.p - 1))
  end

let is_uniform m =
  let ok = ref true in
  for i = 0 to m.p - 1 do
    for j = 0 to m.p - 1 do
      if i <> j && m.lambda.(i).(j) <> 1 then ok := false
    done
  done;
  !ok

let max_lambda m =
  Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 m.lambda

let pp fmt m =
  Format.fprintf fmt "machine{p=%d; g=%d; l=%d; %s}" m.p m.g m.l
    (if is_uniform m then "uniform" else Printf.sprintf "numa(max=%d)" (max_lambda m))
