(** BSP machine descriptions, optionally with NUMA effects.

    A machine is described by the classical BSP parameters (Section 3.2):

    - [p]: number of processors,
    - [g]: time cost of sending one unit of data,
    - [l]: fixed latency overhead charged for every superstep,

    extended (Section 3.4) with a NUMA coefficient matrix [lambda] where
    [lambda.(p1).(p2)] scales the cost of moving one unit of data from
    processor [p1] to processor [p2]. The uniform-BSP special case is
    [lambda p1 p2 = 1] for [p1 <> p2] and [0] on the diagonal. *)

type t = private {
  p : int;  (** number of processors, >= 1 *)
  g : int;  (** per-unit communication cost multiplier *)
  l : int;  (** latency charged per superstep *)
  lambda : int array array;  (** [p x p] NUMA coefficients; zero diagonal *)
}

val uniform : p:int -> g:int -> l:int -> t
(** Classical BSP machine: all off-diagonal NUMA coefficients are 1. *)

val numa_tree : p:int -> g:int -> l:int -> delta:int -> t
(** [numa_tree ~p ~g ~l ~delta] builds the paper's hierarchical NUMA
    setting (Section 6): processors are the leaves of a complete binary
    tree and the unit communication cost between [p1] and [p2] is
    [delta ^ (levels - 1)] where [levels] is the height of their lowest
    common ancestor: siblings cost 1, the next level costs [delta], then
    [delta^2], etc. [p] must be a power of two and at least 2. For
    example with [p = 8] and [delta = 3], costs from processor 0 are 1 to
    processor 1, 3 to processors 2-3, and 9 to processors 4-7. *)

val explicit : g:int -> l:int -> lambda:int array array -> t
(** A machine with an explicitly given coefficient matrix. The matrix
    must be square with non-negative entries and a zero diagonal; it is
    copied. *)

val lambda : t -> int -> int -> int
(** [lambda m p1 p2] is the NUMA coefficient for one data unit sent from
    [p1] to [p2]. *)

val average_lambda : t -> float
(** Mean off-diagonal coefficient; the paper's baselines (BL-EST, ETF)
    price communication with this average under NUMA (Appendix A.1).
    [1.0] for uniform machines; [0.0] when [p = 1]. *)

val is_uniform : t -> bool
(** True iff every off-diagonal coefficient equals 1. *)

val max_lambda : t -> int
(** Largest coefficient in the matrix. *)

val pp : Format.formatter -> t -> unit
