(* A fixed-size domain pool with deterministic reduction.

   Shape: one global batch queue guarded by a mutex/condition pair.
   Workers (spawned once, lazily) and the submitting domain claim task
   indices from the head batch with an atomic fetch-and-add, so a batch
   is a lock-free work pile once published; the queue lock is touched
   once per batch per domain, not per task. The submitter always helps
   drain its own batch, so every batch completes even with zero
   workers, and a nested submission from inside a worker-run task
   degrades to inline sequential execution — no domain ever blocks
   waiting for pool capacity, hence no deadlock by construction.

   Determinism: results land in a slot array indexed by submission
   order; all reductions ([map] order, [map_reduce] fold, [best_of]
   tie-breaking, which exception is re-raised) read that array left to
   right. Scheduling nondeterminism therefore never reaches the
   caller. *)

(* Flight-recorder event kinds (interned once; recording is a no-op
   while Obs.Events is disabled). "task" and "queue_wait" are spans,
   "claim"/"batch" instants, the gc_* kinds counter samples taken from
   the GC deltas each drain already measures. *)
let k_task = Obs.Events.register_kind "task"
let k_queue_wait = Obs.Events.register_kind "queue_wait"
let k_idle = Obs.Events.register_kind "idle"
let k_claim = Obs.Events.register_kind "claim"
let k_batch = Obs.Events.register_kind "batch"
let k_gc_minor_words = Obs.Events.register_kind "gc_minor_words"
let k_gc_minor = Obs.Events.register_kind "gc_minor_collections"
let k_gc_major = Obs.Events.register_kind "gc_major_collections"

let default_jobs () =
  match Sys.getenv_opt "BSP_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let jobs_setting = Atomic.make (default_jobs ())

let jobs () = Atomic.get jobs_setting
let set_jobs n = Atomic.set jobs_setting (max 1 n)

let with_jobs n f =
  let prev = jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs prev) f

(* ------------------------------------------------------------------ *)
(* Chunk sizing.                                                       *)

(* How many task indices one fetch-and-add claims. The oversubscription
   factor is the target number of claims per drainer per batch: higher
   factors re-balance better when task runtimes are skewed, lower
   factors amortise the atomic claim over more tasks. Tiny batches
   (count <= factor * jobs) degenerate to chunk = 1 so no drainer ever
   hoards tasks another domain could run — the 4-ratio portfolio sweep
   lands here. *)

let default_chunk_factor = 4

let chunk_factor_setting =
  Atomic.make
    (match Sys.getenv_opt "BSP_CHUNK_FACTOR" with
    | Some s ->
      (match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | _ -> default_chunk_factor)
    | None -> default_chunk_factor)

let chunk_factor () = Atomic.get chunk_factor_setting
let set_chunk_factor n = Atomic.set chunk_factor_setting (max 1 n)

let chunk_size ~factor ~jobs ~count =
  let factor = max 1 factor and jobs = max 1 jobs in
  max 1 (count / (factor * jobs))

(* ------------------------------------------------------------------ *)
(* Per-domain GC tuning.                                               *)

(* In OCaml 5 a minor collection is a stop-the-world synchronisation of
   every running domain, so an allocation burst on one worker stalls
   all of them; with more domains than cores the stalls additionally
   serialise through the scheduler. A larger per-domain minor heap
   makes minor collections proportionally rarer, which is the single
   biggest lever against that pathology. Each domain applies the
   setting to itself once: workers at spawn, the submitter on its first
   parallel batch. *)

let default_minor_heap_words = 2 * 1024 * 1024 (* x8 bytes = 16 MiB per domain *)

let minor_heap_words =
  match Sys.getenv_opt "BSP_MINOR_HEAP" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some n when n > 0 -> n
    | _ -> default_minor_heap_words)
  | None -> default_minor_heap_words

let gc_tuned : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let tune_gc () =
  if not (Domain.DLS.get gc_tuned) then begin
    Domain.DLS.set gc_tuned true;
    let g = Gc.get () in
    if g.Gc.minor_heap_size < minor_heap_words then
      Gc.set { g with Gc.minor_heap_size = minor_heap_words }
  end

(* ------------------------------------------------------------------ *)
(* Per-domain batch/GC statistics.                                     *)

(* One slot per domain that has ever drained a batch, registered on
   first use and never removed. Each field is single-writer (its own
   domain accumulates, once per drain) and read cross-domain only by
   {!stats}/{!reset_stats} on the submitter, so plain atomics suffice —
   no lock on the hot path. *)

type slot = {
  slot_id : int;
  slot_worker : bool;
  s_tasks : int Atomic.t;
  s_batches : int Atomic.t;
  s_last_chunk : int Atomic.t;
  s_minor_words : float Atomic.t;
  s_promoted_words : float Atomic.t;
  s_minor_collections : int Atomic.t;
  s_major_collections : int Atomic.t;
}

type domain_stats = {
  domain_index : int;
  is_worker : bool;
  tasks_run : int;
  batches_drained : int;
  last_chunk : int;
  minor_words : float;
  promoted_words : float;
  minor_collections : int;
  major_collections : int;
}

let slots_m = Mutex.create ()
let slots : slot list ref = ref []
let slot_key : slot option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(* Tasks running on a pool worker must not submit sub-batches (their
   submitter could otherwise starve the pool); they run nested fan-out
   inline instead. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let my_slot () =
  match Domain.DLS.get slot_key with
  | Some s -> s
  | None ->
    Mutex.lock slots_m;
    let s =
      {
        slot_id = List.length !slots;
        slot_worker = Domain.DLS.get in_worker;
        s_tasks = Atomic.make 0;
        s_batches = Atomic.make 0;
        s_last_chunk = Atomic.make 0;
        s_minor_words = Atomic.make 0.0;
        s_promoted_words = Atomic.make 0.0;
        s_minor_collections = Atomic.make 0;
        s_major_collections = Atomic.make 0;
      }
    in
    slots := s :: !slots;
    Mutex.unlock slots_m;
    Domain.DLS.set slot_key (Some s);
    s

let reset_stats () =
  Mutex.lock slots_m;
  List.iter
    (fun s ->
      Atomic.set s.s_tasks 0;
      Atomic.set s.s_batches 0;
      Atomic.set s.s_last_chunk 0;
      Atomic.set s.s_minor_words 0.0;
      Atomic.set s.s_promoted_words 0.0;
      Atomic.set s.s_minor_collections 0;
      Atomic.set s.s_major_collections 0)
    !slots;
  Mutex.unlock slots_m

let stats () =
  Mutex.lock slots_m;
  let snap = !slots in
  Mutex.unlock slots_m;
  List.sort (fun a b -> compare a.domain_index b.domain_index)
  @@ List.map
       (fun s ->
         {
           domain_index = s.slot_id;
           is_worker = s.slot_worker;
           tasks_run = Atomic.get s.s_tasks;
           batches_drained = Atomic.get s.s_batches;
           last_chunk = Atomic.get s.s_last_chunk;
           minor_words = Atomic.get s.s_minor_words;
           promoted_words = Atomic.get s.s_promoted_words;
           minor_collections = Atomic.get s.s_minor_collections;
           major_collections = Atomic.get s.s_major_collections;
         })
       snap

(* ------------------------------------------------------------------ *)
(* Pool internals.                                                     *)

type batch = {
  run : int -> unit;  (* executes task [i]; must not raise *)
  count : int;
  chunk : int;  (* indices claimed per fetch-and-add *)
  next : int Atomic.t;  (* next unclaimed task index *)
  remaining : int Atomic.t;  (* tasks not yet completed *)
  done_m : Mutex.t;
  done_cv : Condition.t;
  mutable all_done : bool;
}

let pool_m = Mutex.create ()
let pool_cv = Condition.create ()
let queue : batch Queue.t = Queue.create ()
let shutdown = ref false
let worker_handles : unit Domain.t list ref = ref []
let worker_count = ref 0
let exit_hook_registered = ref false

let mark_done b =
  Mutex.lock b.done_m;
  b.all_done <- true;
  Condition.broadcast b.done_cv;
  Mutex.unlock b.done_m

(* Claim and execute tasks until the batch's index counter is
   exhausted, [chunk] indices per claim so the claim overhead (and the
   cache-line ping-pong on [next]) amortises over fine-grained batches.
   Whoever completes the last task signals the submitter — but only
   after flushing its stats slot: the submitter reads [stats] as soon
   as the batch reports done, so signaling first would race the last
   drainer's accumulation out of the snapshot (observed as a worker's
   whole contribution missing from a sweep's allocation total). Each
   drain accumulates the domain's task count and GC deltas into its
   stats slot. *)
let drain b =
  (* [Gc.counters] reads only the calling domain's allocation counters.
     [Gc.quick_stat] must NOT be used for per-domain words: in OCaml 5
     it samples every live domain, so a drain-window delta would count
     the whole process's allocation — each domain would report roughly
     the process total and the per-domain sum would multi-count it.
     Collection counts are global events anyway (all domains take part
     in a minor cycle), so [quick_stat] remains fine for those. *)
  let mw0, pw0, _ = Gc.counters () in
  let t0 = Gc.quick_stat () in
  let ran = ref 0 in
  let last = ref false in
  let continue_ = ref true in
  while !continue_ do
    let i0 = Atomic.fetch_and_add b.next b.chunk in
    if i0 >= b.count then continue_ := false
    else begin
      let hi = min b.count (i0 + b.chunk) in
      Obs.Events.instant ~arg:(hi - i0) k_claim;
      for i = i0 to hi - 1 do
        b.run i
      done;
      let k = hi - i0 in
      ran := !ran + k;
      if Atomic.fetch_and_add b.remaining (-k) = k then begin
        last := true;
        continue_ := false
      end
    end
  done;
  if !ran > 0 then begin
    let mw1, pw1, _ = Gc.counters () in
    let t1 = Gc.quick_stat () in
    let s = my_slot () in
    Atomic.set s.s_tasks (Atomic.get s.s_tasks + !ran);
    Atomic.set s.s_batches (Atomic.get s.s_batches + 1);
    Atomic.set s.s_last_chunk b.chunk;
    Atomic.set s.s_minor_words (Atomic.get s.s_minor_words +. (mw1 -. mw0));
    Atomic.set s.s_promoted_words (Atomic.get s.s_promoted_words +. (pw1 -. pw0));
    Atomic.set s.s_minor_collections
      (Atomic.get s.s_minor_collections
      + (t1.Gc.minor_collections - t0.Gc.minor_collections));
    Atomic.set s.s_major_collections
      (Atomic.get s.s_major_collections
      + (t1.Gc.major_collections - t0.Gc.major_collections));
    Obs.Events.sample k_gc_minor_words (int_of_float (mw1 -. mw0));
    Obs.Events.sample k_gc_minor
      (t1.Gc.minor_collections - t0.Gc.minor_collections);
    Obs.Events.sample k_gc_major
      (t1.Gc.major_collections - t0.Gc.major_collections)
  end;
  if !last then mark_done b

(* Once a batch has no unclaimed tasks left, unlink it so workers go
   back to waiting instead of spinning on it. Every drainer calls this;
   only the first still finding the batch at the head removes it. *)
let drop_if_exhausted b =
  Mutex.lock pool_m;
  (match Queue.peek_opt queue with
   | Some b' when b' == b -> ignore (Queue.pop queue : batch)
   | _ -> ());
  Mutex.unlock pool_m

let worker () =
  Domain.DLS.set in_worker true;
  tune_gc ();
  let rec loop () =
    Obs.Events.begin_ k_idle;
    Mutex.lock pool_m;
    let rec await () =
      if !shutdown then None
      else
        match Queue.peek_opt queue with
        | Some b -> Some b
        | None ->
          Condition.wait pool_cv pool_m;
          await ()
    in
    let b = await () in
    Mutex.unlock pool_m;
    Obs.Events.end_ k_idle;
    match b with
    | None -> ()
    | Some b ->
      drain b;
      drop_if_exhausted b;
      loop ()
  in
  loop ()

(* Spawn once, grow lazily up to the largest jobs count ever requested;
   surplus workers from a larger earlier setting just keep waiting. The
   at_exit hook wakes and joins them so test runners and CLIs exit
   cleanly mid-wait. *)
let ensure_workers target =
  if !worker_count < target then begin
    if not !exit_hook_registered then begin
      exit_hook_registered := true;
      at_exit (fun () ->
          Mutex.lock pool_m;
          shutdown := true;
          Condition.broadcast pool_cv;
          Mutex.unlock pool_m;
          List.iter Domain.join !worker_handles)
    end;
    Mutex.lock pool_m;
    while !worker_count < target do
      incr worker_count;
      worker_handles := Domain.spawn worker :: !worker_handles
    done;
    Mutex.unlock pool_m
  end

(* ------------------------------------------------------------------ *)
(* Batch execution with per-task child registries.                     *)

type 'b cell = Pending | Done of 'b | Raised of exn * Printexc.raw_backtrace

(* One function applied to an input array, instead of an array of
   thunks: submitting a batch allocates no per-task closure, and the
   shared [run] closure captures everything the tasks need once. *)
(* Task timing records into the ambient registry (the child, inside a
   parallel task) and the flight recorder. The sequential path records
   the same "par.task_seconds" observations whenever a registry is
   installed, so histogram counts match across jobs settings;
   "par.queue_wait_seconds" exists only on the parallel path — at
   jobs=1 nothing ever waits. Uninstrumented runs (no registry, no
   recorder) skip every clock read. *)
let timed_task ~index f x =
  let t_start = Obs.Clock.now () in
  Obs.Events.begin_ ~arg:index k_task;
  let finish () =
    let t_stop = Obs.Clock.now () in
    Obs.Events.end_ ~arg:index k_task;
    Obs.Metrics.histogram "par.task_seconds" (t_stop -. t_start)
  in
  match f x with
  | y ->
    finish ();
    y
  | exception e ->
    finish ();
    raise e

let run_batch (f : 'a -> 'b) (inputs : 'a array) : 'b array =
  let n = Array.length inputs in
  let j = jobs () in
  if j <= 1 || n <= 1 || Domain.DLS.get in_worker then
    (* The sequential path is byte-for-byte the pre-parallel behaviour:
       tasks run in order on this domain against the ambient registry,
       no children, no merge. Instrumentation only adds task timing
       around each call. *)
    if Obs.Metrics.current () = None && not (Obs.Events.enabled ()) then
      Array.map f inputs
    else Array.mapi (fun i x -> timed_task ~index:i f x) inputs
  else begin
    tune_gc ();
    let parent = Obs.Metrics.current () in
    let instrumented = parent <> None || Obs.Events.enabled () in
    let submit_ts = if instrumented then Obs.Clock.now () else 0.0 in
    if instrumented then Obs.Events.instant ~arg:n k_batch;
    let children = Array.init n (fun _ -> Option.map Obs.Metrics.create_child parent) in
    let results = Array.make n Pending in
    let run i =
      let exec () =
        try Done (f inputs.(i)) with e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      let exec () =
        if not instrumented then exec ()
        else begin
          (* The queue wait is known exactly once the task starts:
             backfill it as a span from batch submission to now, then
             time the run itself. *)
          let t_start = Obs.Clock.now () in
          Obs.Events.span_at ~arg:i k_queue_wait ~start:submit_ts ~stop:t_start;
          Obs.Metrics.histogram "par.queue_wait_seconds" (t_start -. submit_ts);
          timed_task ~index:i exec ()
        end
      in
      let r =
        match children.(i) with
        | None -> exec ()
        | Some child -> Obs.Metrics.with_registry child exec
      in
      results.(i) <- r
    in
    let b =
      {
        run;
        count = n;
        (* A chunk per claim, sized so each of the [j] drainers makes
           [chunk_factor] claims per batch; coarse batches
           (n <= factor * j) keep chunk = 1 so no drainer hoards tasks
           another could run. *)
        chunk = chunk_size ~factor:(chunk_factor ()) ~jobs:j ~count:n;
        next = Atomic.make 0;
        remaining = Atomic.make n;
        done_m = Mutex.create ();
        done_cv = Condition.create ();
        all_done = false;
      }
    in
    ensure_workers (j - 1);
    Mutex.lock pool_m;
    Queue.push b queue;
    Condition.broadcast pool_cv;
    Mutex.unlock pool_m;
    drain b;
    drop_if_exhausted b;
    Mutex.lock b.done_m;
    while not b.all_done do
      Condition.wait b.done_cv b.done_m
    done;
    Mutex.unlock b.done_m;
    (* Children merge in submission order whether their task succeeded
       or raised — partial metrics of a failed task still count, and the
       merge order never depends on scheduling. *)
    (match parent with
     | None -> ()
     | Some p ->
       Array.iter
         (function Some c -> Obs.Metrics.merge_into ~into:p c | None -> ())
         children);
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Done _ | Pending -> ())
      results;
    Array.map (function Done v -> v | Pending | Raised _ -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* Public combinators.                                                 *)

let map f xs = Array.to_list (run_batch f (Array.of_list xs))

let map_reduce ~map:f ~reduce ~init xs = List.fold_left reduce init (map f xs)

let best_of ~cmp f xs =
  match map f xs with
  | [] -> invalid_arg "Par.best_of: empty list"
  | y :: ys -> List.fold_left (fun best c -> if cmp c best < 0 then c else best) y ys
