(* A fixed-size domain pool with deterministic reduction.

   Shape: one global batch queue guarded by a mutex/condition pair.
   Workers (spawned once, lazily) and the submitting domain claim task
   indices from the head batch with an atomic fetch-and-add, so a batch
   is a lock-free work pile once published; the queue lock is touched
   once per batch per domain, not per task. The submitter always helps
   drain its own batch, so every batch completes even with zero
   workers, and a nested submission from inside a worker-run task
   degrades to inline sequential execution — no domain ever blocks
   waiting for pool capacity, hence no deadlock by construction.

   Determinism: results land in a slot array indexed by submission
   order; all reductions ([map] order, [map_reduce] fold, [best_of]
   tie-breaking, which exception is re-raised) read that array left to
   right. Scheduling nondeterminism therefore never reaches the
   caller. *)

let default_jobs () =
  match Sys.getenv_opt "BSP_JOBS" with
  | Some s ->
    (match int_of_string_opt (String.trim s) with Some n when n >= 1 -> n | _ -> 1)
  | None -> 1

let jobs_setting = Atomic.make (default_jobs ())

let jobs () = Atomic.get jobs_setting
let set_jobs n = Atomic.set jobs_setting (max 1 n)

let with_jobs n f =
  let prev = jobs () in
  set_jobs n;
  Fun.protect ~finally:(fun () -> set_jobs prev) f

(* ------------------------------------------------------------------ *)
(* Pool internals.                                                     *)

type batch = {
  run : int -> unit;  (* executes task [i]; must not raise *)
  count : int;
  next : int Atomic.t;  (* next unclaimed task index *)
  remaining : int Atomic.t;  (* tasks not yet completed *)
  done_m : Mutex.t;
  done_cv : Condition.t;
  mutable all_done : bool;
}

let pool_m = Mutex.create ()
let pool_cv = Condition.create ()
let queue : batch Queue.t = Queue.create ()
let shutdown = ref false
let worker_handles : unit Domain.t list ref = ref []
let worker_count = ref 0
let exit_hook_registered = ref false

(* Tasks running on a pool worker must not submit sub-batches (their
   submitter could otherwise starve the pool); they run nested fan-out
   inline instead. *)
let in_worker : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let mark_done b =
  Mutex.lock b.done_m;
  b.all_done <- true;
  Condition.broadcast b.done_cv;
  Mutex.unlock b.done_m

(* Claim and execute tasks until the batch's index counter is
   exhausted. Whoever completes the last task signals the submitter. *)
let drain b =
  let rec go () =
    let i = Atomic.fetch_and_add b.next 1 in
    if i < b.count then begin
      b.run i;
      if Atomic.fetch_and_add b.remaining (-1) = 1 then mark_done b;
      go ()
    end
  in
  go ()

(* Once a batch has no unclaimed tasks left, unlink it so workers go
   back to waiting instead of spinning on it. Every drainer calls this;
   only the first still finding the batch at the head removes it. *)
let drop_if_exhausted b =
  Mutex.lock pool_m;
  (match Queue.peek_opt queue with
   | Some b' when b' == b -> ignore (Queue.pop queue : batch)
   | _ -> ());
  Mutex.unlock pool_m

let worker () =
  Domain.DLS.set in_worker true;
  let rec loop () =
    Mutex.lock pool_m;
    let rec await () =
      if !shutdown then None
      else
        match Queue.peek_opt queue with
        | Some b -> Some b
        | None ->
          Condition.wait pool_cv pool_m;
          await ()
    in
    let b = await () in
    Mutex.unlock pool_m;
    match b with
    | None -> ()
    | Some b ->
      drain b;
      drop_if_exhausted b;
      loop ()
  in
  loop ()

(* Spawn once, grow lazily up to the largest jobs count ever requested;
   surplus workers from a larger earlier setting just keep waiting. The
   at_exit hook wakes and joins them so test runners and CLIs exit
   cleanly mid-wait. *)
let ensure_workers target =
  if !worker_count < target then begin
    if not !exit_hook_registered then begin
      exit_hook_registered := true;
      at_exit (fun () ->
          Mutex.lock pool_m;
          shutdown := true;
          Condition.broadcast pool_cv;
          Mutex.unlock pool_m;
          List.iter Domain.join !worker_handles)
    end;
    Mutex.lock pool_m;
    while !worker_count < target do
      incr worker_count;
      worker_handles := Domain.spawn worker :: !worker_handles
    done;
    Mutex.unlock pool_m
  end

(* ------------------------------------------------------------------ *)
(* Batch execution with per-task child registries.                     *)

type 'b cell = Pending | Done of 'b | Raised of exn * Printexc.raw_backtrace

let run_batch (tasks : (unit -> 'b) array) : 'b array =
  let n = Array.length tasks in
  let j = jobs () in
  if j <= 1 || n <= 1 || Domain.DLS.get in_worker then
    (* The sequential path is byte-for-byte the pre-parallel behaviour:
       tasks run in order on this domain against the ambient registry,
       no children, no merge. *)
    Array.map (fun f -> f ()) tasks
  else begin
    let parent = Obs.Metrics.current () in
    let children = Array.init n (fun _ -> Option.map Obs.Metrics.create_child parent) in
    let results = Array.make n Pending in
    let run i =
      let exec () =
        try Done (tasks.(i) ()) with e -> Raised (e, Printexc.get_raw_backtrace ())
      in
      let r =
        match children.(i) with
        | None -> exec ()
        | Some child -> Obs.Metrics.with_registry child exec
      in
      results.(i) <- r
    in
    let b =
      {
        run;
        count = n;
        next = Atomic.make 0;
        remaining = Atomic.make n;
        done_m = Mutex.create ();
        done_cv = Condition.create ();
        all_done = false;
      }
    in
    ensure_workers (j - 1);
    Mutex.lock pool_m;
    Queue.push b queue;
    Condition.broadcast pool_cv;
    Mutex.unlock pool_m;
    drain b;
    drop_if_exhausted b;
    Mutex.lock b.done_m;
    while not b.all_done do
      Condition.wait b.done_cv b.done_m
    done;
    Mutex.unlock b.done_m;
    (* Children merge in submission order whether their task succeeded
       or raised — partial metrics of a failed task still count, and the
       merge order never depends on scheduling. *)
    (match parent with
     | None -> ()
     | Some p ->
       Array.iter
         (function Some c -> Obs.Metrics.merge_into ~into:p c | None -> ())
         children);
    Array.iter
      (function
        | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
        | Done _ | Pending -> ())
      results;
    Array.map (function Done v -> v | Pending | Raised _ -> assert false) results
  end

(* ------------------------------------------------------------------ *)
(* Public combinators.                                                 *)

let map f xs =
  Array.to_list (run_batch (Array.of_list (List.map (fun x () -> f x) xs)))

let map_reduce ~map:f ~reduce ~init xs = List.fold_left reduce init (map f xs)

let best_of ~cmp f xs =
  match map f xs with
  | [] -> invalid_arg "Par.best_of: empty list"
  | y :: ys -> List.fold_left (fun best c -> if cmp c best < 0 then c else best) y ys
