(** Fixed-size domain pool with deterministic reduction (DESIGN.md
    Section 5e).

    The paper's framework is an embarrassingly parallel portfolio:
    independent initialiser→HC→HCcs chains, a multilevel sweep over
    coarsening ratios, and an experiment runner over many (DAG,
    machine) instances. This module is the single substrate all three
    fan-out sites share.

    {b Determinism contract.} Tasks may run on any domain in any
    order, but results are always combined in {i submission order}
    with index tie-breaking: {!map} returns results positionally,
    {!map_reduce} folds left-to-right over the submission order, and
    {!best_of} returns the minimum with ties broken towards the lowest
    submission index. If every task is itself a deterministic function
    of its input, any jobs count therefore produces bit-identical
    values to [jobs = 1]. Exceptions follow the same rule: when
    several tasks raise, the submitter re-raises the one with the
    lowest index.

    {b Pool.} Worker domains are spawned once, lazily, on the first
    batch that needs them, and fed from a shared batch queue
    (atomic-counter work claiming). The submitting domain also
    executes tasks, so a batch always makes progress even with zero
    workers; the pool is torn down via [at_exit]. Nested calls from
    inside a worker-run task degrade to sequential execution (no
    domain ever blocks waiting for pool capacity), so fan-out sites
    can be composed freely — e.g. an experiment sweep whose tasks each
    run the pipeline's own candidate fan-out.

    {b Observability.} When the submitting domain has an ambient
    {!Obs.Metrics} registry installed, each parallel task runs under a
    fresh child registry (seeded with the parent's open-span context)
    and the children are merged back in submission order —
    see {!Obs.Metrics.merge_into} for the exact semantics. With
    [jobs = 1] tasks record straight into the ambient registry,
    exactly as sequential code always did.

    {b Budgets.} {!Budget.t} values are not domain-safe; create each
    stage budget {i inside} the task that consumes it (the pipeline
    already does), which also makes wall-clock caps per-task.

    {b Flight recording.} When {!Obs.Events} is enabled, every batch
    records into the per-domain rings: a "batch" instant at
    submission, a "claim" instant per work-claim, a "queue_wait" span
    from submission to each task's start, a "task" span per task run
    (arg = submission index), "idle" spans while workers wait for
    work, and gc_minor_words / gc_minor_collections /
    gc_major_collections counter samples from the per-drain
    [Gc.quick_stat] deltas — so a Perfetto timeline shows run vs wait
    vs GC per domain. Independently, when a metrics registry is
    installed, per-task wall-clock runtimes are observed into the
    "par.task_seconds" histogram (at {i every} jobs setting, so counts
    are comparable) and parallel-path queue waits into
    "par.queue_wait_seconds". With both disabled the hot path reads no
    clocks. *)

val default_jobs : unit -> int
(** The initial jobs setting: the value of the [BSP_JOBS] environment
    variable when it parses as a positive integer, else 1. *)

val jobs : unit -> int
(** The current jobs setting (>= 1). [1] means: run everything
    sequentially on the calling domain, spawn nothing. *)

val set_jobs : int -> unit
(** Set the jobs count (clamped to >= 1). [set_jobs n] with [n > 1]
    allows batches to run on up to [n] domains (the submitter plus
    [n - 1] pool workers); workers are spawned lazily on first use and
    reused across batches. Call this once from the main domain (the
    CLI [--jobs] flag does). *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run the callback with the jobs setting temporarily replaced
    (exception-safe restore). Used by the bench harness to time the
    same sweep at [jobs = 1] and [jobs = N] in one process. *)

val chunk_size : factor:int -> jobs:int -> count:int -> int
(** The number of task indices one work-claim takes from a batch of
    [count] tasks drained by up to [jobs] domains:
    [max 1 (count / (factor * jobs))]. The oversubscription [factor] is
    the target number of claims per drainer per batch — higher factors
    re-balance better under skewed task runtimes, lower factors
    amortise the atomic claim over more tasks. Tiny batches
    ([count <= factor * jobs], e.g. a 4-ratio portfolio at [jobs = 4])
    degenerate to chunk 1 so no drainer hoards tasks another domain
    could run. Pure; exposed for tests. *)

val chunk_factor : unit -> int
(** The current oversubscription factor (>= 1). Initialised from the
    [BSP_CHUNK_FACTOR] environment variable when it parses as a
    positive integer, else 4. *)

val set_chunk_factor : int -> unit
(** Set the oversubscription factor (clamped to >= 1), applied to every
    subsequently submitted batch. *)

val minor_heap_words : int
(** The per-domain minor heap size (in words) applied to every domain
    that participates in a parallel batch: the value of the
    [BSP_MINOR_HEAP] environment variable when it parses as a positive
    integer, else 2M words (16 MiB). In OCaml 5 a minor collection
    stops {e all} domains, so allocation-heavy tasks on a default-sized
    minor heap (256k words) serialise the pool through stop-the-world
    pauses; a larger nursery makes them proportionally rarer. Applied
    by each domain to itself — workers at spawn, the submitter on its
    first parallel batch — and never shrinks a larger configured
    heap. *)

(** {1 Per-domain statistics}

    Every domain that drains batch work accumulates, per {!stats}
    window: how many tasks and batches it ran, and the GC activity
    those tasks caused. Word counts come from [Gc.counters] deltas
    around each drain, which read only the draining domain's own
    allocation counters — [Gc.quick_stat] would be wrong here, because
    in OCaml 5 it samples every live domain, so each domain would
    report roughly the whole process's allocation and summing the
    stats would multi-count it. This is the measurement layer behind
    the bench harness's parallel block — minor-GC-bound parallelism
    shows up as high [minor_collections] with low speedup, granularity
    problems as skewed [tasks_run]. *)

type domain_stats = {
  domain_index : int;  (** registration order; the submitter is usually 0 *)
  is_worker : bool;  (** false for domains that submit batches *)
  tasks_run : int;
  batches_drained : int;  (** drain sessions with >= 1 task run *)
  last_chunk : int;
      (** chunk size (indices per work-claim) of the most recent batch
          this domain drained; [0] until it drains one *)
  minor_words : float;
      (** words this domain allocated in its minor heap while draining
          (domain-local, safe to sum across domains) *)
  promoted_words : float;
      (** approximate under parallel minor GC: promotion work can be
          shared across domains during a global minor cycle *)
  minor_collections : int;
      (** global minor cycles observed during this domain's drains —
          minor collections involve every domain, so these overlap
          across domains and must not be summed *)
  major_collections : int;  (** same caveat as [minor_collections] *)
}

val reset_stats : unit -> unit
(** Zero every domain's accumulators (typically right before a timed
    section). *)

val stats : unit -> domain_stats list
(** Snapshot of every participating domain's accumulators since the
    last {!reset_stats}, ordered by [domain_index]. Domains that never
    drained a task are absent. *)

val map : ('a -> 'b) -> 'a list -> 'b list
(** [map f xs] computes [List.map f xs], evaluating the elements in
    parallel on the pool. Results are returned in submission order. *)

val map_reduce : map:('a -> 'b) -> reduce:('c -> 'b -> 'c) -> init:'c -> 'a list -> 'c
(** [map_reduce ~map ~reduce ~init xs] is
    [List.fold_left reduce init (List.map map xs)] with the map phase
    parallel; the reduction is applied left-to-right in submission
    order, so non-commutative reductions are safe. *)

val best_of : cmp:('b -> 'b -> int) -> ('a -> 'b) -> 'a list -> 'b
(** [best_of ~cmp f xs] maps in parallel and returns the minimum
    result under [cmp], ties broken towards the lowest submission
    index — the deterministic "portfolio winner" reduction.
    @raise Invalid_argument on the empty list. *)
