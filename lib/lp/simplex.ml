type sense = Le | Ge | Eq

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

let eps = 1e-9
let feas_eps = 1e-7

(* Tableau layout: [m] constraint rows over columns
   [0 .. total_cols - 1] plus the right-hand side in column [total_cols].
   [basis.(i)] is the column basic in row [i]. The objective row is kept
   separately in [zrow] (reduced costs) with its value in [zval]. *)
type tableau = {
  m : int;
  total_cols : int;
  t : float array array;  (* m rows, total_cols + 1 entries each *)
  basis : int array;
  zrow : float array;
  mutable zval : float;
}

let pivot tab ~row ~col =
  let piv = tab.t.(row).(col) in
  let r = tab.t.(row) in
  for j = 0 to tab.total_cols do
    r.(j) <- r.(j) /. piv
  done;
  for i = 0 to tab.m - 1 do
    if i <> row then begin
      let f = tab.t.(i).(col) in
      if Float.abs f > eps then begin
        let ri = tab.t.(i) in
        for j = 0 to tab.total_cols do
          ri.(j) <- ri.(j) -. (f *. r.(j))
        done;
        ri.(col) <- 0.0
      end
    end
  done;
  let f = tab.zrow.(col) in
  if Float.abs f > eps then begin
    for j = 0 to tab.total_cols - 1 do
      tab.zrow.(j) <- tab.zrow.(j) -. (f *. r.(j))
    done;
    tab.zval <- tab.zval -. (f *. r.(tab.total_cols));
    tab.zrow.(col) <- 0.0
  end;
  tab.basis.(row) <- col

(* One simplex phase on the current zrow; [allowed col] filters entering
   candidates (used to keep artificials out in phase 2). Returns [`Opt],
   [`Unbounded] or [`Limit]. *)
let run_phase tab ~allowed ~max_pivots pivots =
  let status = ref `Run in
  let degenerate_run = ref 0 in
  while !status = `Run do
    if !pivots >= max_pivots then status := `Limit
    else begin
      (* Entering column: Dantzig rule (most negative reduced cost),
         Bland (first negative) after a degenerate streak. *)
      let bland = !degenerate_run > 2 * (tab.m + tab.total_cols) in
      let enter = ref (-1) in
      let best = ref (-.eps) in
      (try
         for j = 0 to tab.total_cols - 1 do
           if allowed j && tab.zrow.(j) < -.eps then
             if bland then begin
               enter := j;
               raise Exit
             end
             else if tab.zrow.(j) < !best then begin
               best := tab.zrow.(j);
               enter := j
             end
         done
       with Exit -> ());
      if !enter < 0 then status := `Opt
      else begin
        let col = !enter in
        (* Ratio test; ties towards the smallest basis column index
           (lexicographic flavour that pairs well with Bland). *)
        let row = ref (-1) in
        let best_ratio = ref infinity in
        for i = 0 to tab.m - 1 do
          let a = tab.t.(i).(col) in
          if a > eps then begin
            let ratio = tab.t.(i).(tab.total_cols) /. a in
            if
              ratio < !best_ratio -. eps
              || (ratio < !best_ratio +. eps
                  && (!row < 0 || tab.basis.(i) < tab.basis.(!row)))
            then begin
              best_ratio := ratio;
              row := i
            end
          end
        done;
        if !row < 0 then status := `Unbounded
        else begin
          if !best_ratio < eps then incr degenerate_run else degenerate_run := 0;
          pivot tab ~row:!row ~col;
          incr pivots
        end
      end
    end
  done;
  (!status :> [ `Opt | `Unbounded | `Limit | `Run ])

let minimize ?max_pivots ~num_vars ~obj ~rows ~lb ~ub () =
  if Array.length lb <> num_vars || Array.length ub <> num_vars then
    invalid_arg "Simplex.minimize: bound array length mismatch";
  Array.iteri
    (fun j l ->
      if not (Float.is_finite l) then
        invalid_arg "Simplex.minimize: lower bounds must be finite";
      if l > ub.(j) +. eps then invalid_arg "Simplex.minimize: lb > ub")
    lb;
  (* Shift x = lb + y with y >= 0; finite upper bounds become rows. *)
  let ub_rows =
    let acc = ref [] in
    for j = num_vars - 1 downto 0 do
      if Float.is_finite ub.(j) then acc := ([ (j, 1.0) ], Le, ub.(j) -. lb.(j)) :: !acc
    done;
    !acc
  in
  let shift_row (coeffs, sense, b) =
    let b' =
      List.fold_left (fun acc (j, a) -> acc -. (a *. lb.(j))) b coeffs
    in
    (coeffs, sense, b')
  in
  let all_rows = Array.of_list (List.map shift_row (Array.to_list rows) @ ub_rows) in
  let m = Array.length all_rows in
  (* Column layout: y variables, then one slack/surplus or artificial
     per row as needed. First pass counts extra columns. *)
  let extra = ref 0 in
  let row_info =
    Array.map
      (fun (coeffs, sense, b) ->
        let flip = b < 0.0 in
        let sense =
          if not flip then sense
          else match sense with Le -> Ge | Ge -> Le | Eq -> Eq
        in
        let slots = match sense with Le -> 1 | Ge -> 2 | Eq -> 1 in
        extra := !extra + slots;
        (coeffs, sense, b, flip))
      all_rows
  in
  let total_cols = num_vars + !extra in
  let t = Array.make_matrix m (total_cols + 1) 0.0 in
  let basis = Array.make m (-1) in
  let artificial = Array.make total_cols false in
  let next_col = ref num_vars in
  Array.iteri
    (fun i (coeffs, sense, b, flip) ->
      let sign = if flip then -1.0 else 1.0 in
      List.iter (fun (j, a) -> t.(i).(j) <- t.(i).(j) +. (sign *. a)) coeffs;
      t.(i).(total_cols) <- sign *. b;
      (match sense with
       | Le ->
         let s = !next_col in
         incr next_col;
         t.(i).(s) <- 1.0;
         basis.(i) <- s
       | Ge ->
         let s = !next_col in
         incr next_col;
         t.(i).(s) <- -1.0;
         let a = !next_col in
         incr next_col;
         t.(i).(a) <- 1.0;
         artificial.(a) <- true;
         basis.(i) <- a
       | Eq ->
         let a = !next_col in
         incr next_col;
         t.(i).(a) <- 1.0;
         artificial.(a) <- true;
         basis.(i) <- a);
      ())
    row_info;
  let tab = { m; total_cols; t; basis; zrow = Array.make total_cols 0.0; zval = 0.0 } in
  let pivots = ref 0 in
  let max_pivots =
    match max_pivots with Some k -> k | None -> 200 * (m + total_cols) + 2000
  in
  (* Phase 1: minimise the sum of artificials. Reduced costs = price the
     unit costs on artificials through the initial basis, i.e. subtract
     every artificial-basic row. *)
  let has_artificial = Array.exists (fun b -> b) artificial in
  let phase2 () =
    (* Load the real objective and price out basic columns. *)
    Array.fill tab.zrow 0 total_cols 0.0;
    tab.zval <- 0.0;
    List.iter (fun (j, c) -> tab.zrow.(j) <- tab.zrow.(j) +. c) obj;
    (* Objective constant from the lb shift: c . lb. *)
    let shift_const = List.fold_left (fun acc (j, c) -> acc +. (c *. lb.(j))) 0.0 obj in
    for i = 0 to m - 1 do
      let b = tab.basis.(i) in
      let cb = if b < total_cols then tab.zrow.(b) else 0.0 in
      if Float.abs cb > eps then begin
        for j = 0 to total_cols - 1 do
          tab.zrow.(j) <- tab.zrow.(j) -. (cb *. tab.t.(i).(j))
        done;
        tab.zval <- tab.zval -. (cb *. tab.t.(i).(total_cols));
        tab.zrow.(b) <- 0.0
      end
    done;
    match run_phase tab ~allowed:(fun j -> not artificial.(j)) ~max_pivots pivots with
    | `Unbounded -> Unbounded
    | `Limit -> Iteration_limit
    | `Opt | `Run ->
      let x = Array.copy lb in
      for i = 0 to m - 1 do
        if tab.basis.(i) < num_vars then
          x.(tab.basis.(i)) <- lb.(tab.basis.(i)) +. tab.t.(i).(total_cols)
      done;
      (* zval tracks -(objective of the shifted problem). *)
      Optimal { obj = -.tab.zval +. shift_const; x }
  in
  let result =
    if not has_artificial then phase2 ()
    else begin
      for i = 0 to m - 1 do
        if artificial.(tab.basis.(i)) then begin
          for j = 0 to total_cols - 1 do
            tab.zrow.(j) <- tab.zrow.(j) -. tab.t.(i).(j)
          done;
          tab.zval <- tab.zval -. tab.t.(i).(total_cols)
        end
      done;
      (* Artificial columns themselves cost 1. *)
      Array.iteri
        (fun j is_a -> if is_a then tab.zrow.(j) <- tab.zrow.(j) +. 1.0)
        artificial;
      match run_phase tab ~allowed:(fun _ -> true) ~max_pivots pivots with
      | `Unbounded -> Infeasible (* phase-1 objective is bounded below by 0 *)
      | `Limit -> Iteration_limit
      | `Opt | `Run ->
        if -.tab.zval > feas_eps then Infeasible
        else begin
          (* Drive remaining artificials out of the basis where possible;
             a row with only artificial support is redundant and harmless
             (its artificial stays basic at value ~0 and phase 2 never
             selects artificial columns). *)
          for i = 0 to m - 1 do
            if artificial.(tab.basis.(i)) then begin
              let col = ref (-1) in
              for j = 0 to total_cols - 1 do
                if !col < 0 && (not artificial.(j)) && Float.abs tab.t.(i).(j) > feas_eps
                then col := j
              done;
              if !col >= 0 then pivot tab ~row:i ~col:!col
            end
          done;
          phase2 ()
        end
    end
  in
  Obs.Metrics.counter "lp.solves" 1;
  Obs.Metrics.counter "lp.pivots" !pivots;
  result
