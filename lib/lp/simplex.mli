(** A dense two-phase primal simplex solver.

    This is the linear-programming core of the ILP substrate that stands
    in for the paper's CBC solver (DESIGN.md, substitution 1). It solves

    {v minimize    c . x
       subject to  A x {<=, =, >=} b
                   lb <= x <= ub v}

    with finite lower bounds (the scheduling formulations only use
    variables bounded below by 0) and optional finite upper bounds.
    Internally variables are shifted to [y = x - lb >= 0], upper bounds
    become explicit rows, slack/surplus/artificial variables put the
    system in standard form, phase 1 minimises the artificial sum and
    phase 2 the original objective. Pivoting uses Dantzig's rule and
    falls back to Bland's rule after a run of degenerate pivots, which
    guarantees termination; an overall pivot cap turns pathological
    instances into an explicit {!Iteration_limit} outcome rather than a
    hang. *)

type sense = Le | Ge | Eq

type result =
  | Optimal of { obj : float; x : float array }
  | Infeasible
  | Unbounded
  | Iteration_limit

val minimize :
  ?max_pivots:int ->
  num_vars:int ->
  obj:(int * float) list ->
  rows:((int * float) list * sense * float) array ->
  lb:float array ->
  ub:float array ->
  unit ->
  result
(** [obj] and each row's left-hand side are sparse (variable index,
    coefficient) lists; duplicate indices are summed. [ub.(j)] may be
    [infinity]; [lb.(j)] must be finite and [<= ub.(j)].
    [max_pivots] defaults to a generous multiple of the problem size. *)
