(** Experiment runner: evaluate every scheduler on an instance and
    aggregate cost ratios the way the paper does (Section 7).

    For each (DAG, machine) pair this runs the baselines (trivial, Cilk,
    optionally BL-EST and ETF, HDagg) and the framework pipeline
    (optionally also the multilevel variant) and records the exact BSP
    cost of each result. Datasets aggregate per-instance cost ratios by
    geometric mean, which is the paper's metric; improvements are then
    reported as percentage cost reductions. *)

type options = {
  limits : Pipeline.limits;
  ml_solver_limits : Pipeline.limits option;
      (** limits for the multilevel coarse-solving phase; [None] reuses
          [limits] *)
  with_list_baselines : bool;  (** run BL-EST and ETF *)
  with_multilevel : bool;
  ml_ratios : float list;  (** ratios for the multilevel run *)
  seed : int;  (** drives the Cilk victim choice *)
}

val default_options : options

type run = {
  trivial : int;
  cilk : int;
  bl_est : int option;
  etf : int option;
  hdagg : int;
  stage : Pipeline.stage_costs;  (** the framework's per-stage costs *)
  ours : int;  (** [stage.final_cost] *)
  multilevel : (float * int) list;
      (** cost of the multilevel pipeline per coarsening ratio (empty
          unless [with_multilevel]); Tables 13-14 report the 0.15 and
          0.30 columns and their minimum *)
}

val ml_best : run -> int option
(** Cheapest multilevel result across ratios — the paper's C_opt. *)

val ml_at_ratio : run -> float -> int option

val evaluate : options -> Machine.t -> Dag.t -> run
(** All schedulers on one instance. Every produced schedule is validated
    with {!Validity} before its cost is trusted; an invalid schedule
    raises [Failure] (this is an internal-consistency guard — it should
    never fire). *)

(** {1 Aggregation} *)

val ratio : int -> int -> float
(** [ratio ours baseline] as a float; the trivial 0/0 case maps to 1. *)

val geo_ratio : (run -> int) -> (run -> int) -> run list -> float
(** Geometric mean of [num r / den r] over the runs. *)

val reduction_percent : float -> float
(** Cost-reduction percentage of a ratio, as printed in the tables. *)
