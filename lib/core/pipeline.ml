type limits = {
  hc_evals : int;
  hccs_evals : int;
  ilp_full_max_vars : int;
  ilp_full_nodes : int;
  ilp_part_max_vars : int;
  ilp_part_nodes : int;
  ilp_init_max_vars : int;
  ilp_init_nodes : int;
  ilp_cs_max_vars : int;
  ilp_cs_nodes : int;
  use_ilp : bool;
  use_ilp_init : bool;
  stage_seconds : float option;
  hc_check : bool;
  replicate : bool;
  hc_shards : int;
}

let default_limits =
  {
    hc_evals = 400_000;
    hccs_evals = 100_000;
    ilp_full_max_vars = 260;
    ilp_full_nodes = 1_200;
    ilp_part_max_vars = 200;
    ilp_part_nodes = 120;
    ilp_init_max_vars = 160;
    ilp_init_nodes = 120;
    ilp_cs_max_vars = 260;
    ilp_cs_nodes = 250;
    use_ilp = true;
    use_ilp_init = false;
    stage_seconds = Some 5.0;
    hc_check = false;
    replicate = false;
    hc_shards = 1;
  }

let fast_limits =
  {
    default_limits with
    hc_evals = 150_000;
    hccs_evals = 50_000;
    use_ilp = false;
    use_ilp_init = false;
  }

let thorough_limits =
  {
    default_limits with
    hc_evals = 2_000_000;
    hccs_evals = 500_000;
    ilp_full_max_vars = 400;
    ilp_full_nodes = 8_000;
    ilp_part_max_vars = 260;
    ilp_part_nodes = 500;
    ilp_cs_nodes = 1_000;
    use_ilp_init = true;
    stage_seconds = Some 30.0;
  }

type stage_costs = {
  best_init_name : string;
  init_cost : int;
  after_local_search : int;
  after_ilp_part : int;
  final_cost : int;
  ilp_full_optimal : bool;
}

let stage_budget limits evals =
  match limits.stage_seconds with
  | None -> Budget.steps evals
  | Some s -> Budget.combine (Budget.steps evals) (Budget.seconds s)

(* HC followed by HCcs — the paper's HC+HCcs block, with the 90/10 split
   of the time budget realised through the two eval caps. A greedy
   superstep-merge pass in between crosses the plateau single-node moves
   cannot (emptying a superstep is cost-neutral move by move). *)
let local_search ?(label = "init") limits machine sched =
  (* Stage budgets are hoisted out of the spans so each span's
     [steps_used] is exactly the stage's consumption of its own fresh
     budget (deadline clocks start at creation, so create late). *)
  let hc_budget = stage_budget limits limits.hc_evals in
  let hc, _ =
    Obs.Metrics.with_span ~budget:hc_budget ("hc:" ^ label) (fun () ->
        Hc.improve ~check:limits.hc_check ~budget:hc_budget ~shards:limits.hc_shards
          machine sched)
  in
  let hc = Superstep_merge.greedy machine (Schedule.compact hc) in
  let hccs_budget = stage_budget limits limits.hccs_evals in
  let hccs, _ =
    Obs.Metrics.with_span ~budget:hccs_budget ("hccs:" ^ label) (fun () ->
        Hccs.improve ~budget:hccs_budget machine hc)
  in
  hccs

let cost machine s = Bsp_cost.total machine s

let run_stages ?(extra_inits = []) ~limits ~with_trivial_init machine dag =
  let inits =
    [
      ("bspg", fun () -> Bspg.schedule machine dag);
      ("source", fun () -> Source_heuristic.schedule machine dag);
    ]
    @ (if with_trivial_init then
         (* The trivial single-processor schedule as a safety net: in
            communication-dominated instances it is sometimes the best
            solution any method finds (Section 7.3), and carrying it
            through the pipeline guarantees the framework never returns
            anything more expensive. The multilevel coarse-solving phase
            excludes it: hill climbing cannot leave a single-superstep
            schedule (no neighbouring superstep exists), so it would trap
            the refinement phase. *)
         [ ("trivial", fun () -> Schedule.trivial dag) ]
       else [])
    @
    if limits.use_ilp && limits.use_ilp_init then
      [
        ( "ilp-init",
          fun () ->
            Ilp_schedulers.init
              ~budget:(stage_budget limits limits.ilp_init_nodes)
              ~max_vars:limits.ilp_init_max_vars ~max_nodes:limits.ilp_init_nodes
              machine dag );
      ]
    else []
  in
  (* Extra candidates ride at the end so the submission-order tie-break
     (strict [<] in the fold below) is unchanged when the list is
     empty — an empty [extra_inits] is bit-identical to the historical
     pipeline. *)
  let inits = inits @ extra_inits in
  (* Improve every initial schedule separately with HC+HCcs (running the
     local search is cheap — Section 6) and keep the best. Each
     candidate's init→HC→HCcs chain is one [Par] task; the fold below
     reads them in submission order with a strict [<], so the winner is
     identical for every jobs count. *)
  Dag.warm_caches dag;
  let candidates =
    Par.map
      (fun (name, f) ->
        let init = Obs.Metrics.with_span ("init:" ^ name) f in
        let init_cost = cost machine init in
        Obs.Metrics.series_point "pipeline.init_cost" ~label:name
          (float_of_int init_cost);
        let improved = local_search ~label:name limits machine init in
        let improved_cost = cost machine improved in
        Obs.Metrics.series_point "pipeline.after_local_search" ~label:name
          (float_of_int improved_cost);
        (name, init_cost, improved, improved_cost))
      inits
  in
  let best_init_name, init_cost, best, best_cost =
    match candidates with
    | [] -> assert false
    | first :: rest ->
      List.fold_left
        (fun (bn, bi, bs, bc) (n, i, s, c) -> if c < bc then (n, i, s, c) else (bn, bi, bs, bc))
        first rest
  in
  let after_local_search = best_cost in
  Obs.Metrics.series_point "pipeline.best_cost" ~label:"local_search"
    (float_of_int best_cost);
  let best = ref best and best_cost = ref best_cost in
  let ilp_full_optimal = ref false in
  if limits.use_ilp then begin
    (* ILPfull on small models; skip the rest when it proved optimality. *)
    let full_budget = stage_budget limits limits.ilp_full_nodes in
    let full_sched, full_report =
      Obs.Metrics.with_span ~budget:full_budget "ilp_full" (fun () ->
          Ilp_schedulers.full ~budget:full_budget ~max_vars:limits.ilp_full_max_vars
            ~max_nodes:limits.ilp_full_nodes machine (Schedule.with_lazy_comm !best))
    in
    ilp_full_optimal :=
      full_report.Ilp_schedulers.sub_solves > 0 && full_report.Ilp_schedulers.proven_optimal;
    if cost machine full_sched < !best_cost then begin
      best := full_sched;
      best_cost := cost machine full_sched
    end;
    Obs.Metrics.series_point "pipeline.best_cost" ~label:"ilp_full"
      (float_of_int !best_cost);
    if not !ilp_full_optimal then begin
      let part_budget = stage_budget limits limits.ilp_part_nodes in
      let part_sched, _ =
        Obs.Metrics.with_span ~budget:part_budget "ilp_part" (fun () ->
            Ilp_schedulers.part ~budget:part_budget ~max_vars:limits.ilp_part_max_vars
              ~max_nodes:limits.ilp_part_nodes machine (Schedule.with_lazy_comm !best))
      in
      (* The partial ILP reasons over lazy communication; give its result
         the same HCcs polish before comparing. *)
      let polish_budget = stage_budget limits limits.hccs_evals in
      let part_sched, _ =
        Obs.Metrics.with_span ~budget:polish_budget "hccs:ilp_part" (fun () ->
            Hccs.improve ~budget:polish_budget machine part_sched)
      in
      if cost machine part_sched < !best_cost then begin
        best := part_sched;
        best_cost := cost machine part_sched
      end;
      Obs.Metrics.series_point "pipeline.best_cost" ~label:"ilp_part"
        (float_of_int !best_cost)
    end
  end;
  let after_ilp_part = !best_cost in
  if limits.use_ilp && not !ilp_full_optimal then begin
    let cs_budget = stage_budget limits limits.ilp_cs_nodes in
    let cs_sched, _ =
      Obs.Metrics.with_span ~budget:cs_budget "ilp_cs" (fun () ->
          Ilp_schedulers.comm_schedule ~budget:cs_budget
            ~max_vars:limits.ilp_cs_max_vars ~max_nodes:limits.ilp_cs_nodes machine !best)
    in
    if cost machine cs_sched < !best_cost then begin
      best := cs_sched;
      best_cost := cost machine cs_sched
    end
  end;
  (* Node replication as the last improvement stage (DESIGN.md §5g):
     every earlier stage reasons about single placements, so replicas are
     grafted onto the finished schedule and kept only when they beat it.
     [replicate_schedule] re-lazifies the communication schedule, which
     can lose a hand-optimised event placement — hence the comparison
     rather than unconditional adoption. *)
  if limits.replicate then begin
    let rep_budget = stage_budget limits limits.hc_evals in
    let rep_sched =
      Obs.Metrics.with_span ~budget:rep_budget "replicate" (fun () ->
          Hc.replicate_schedule ~check:limits.hc_check ~budget:rep_budget machine !best)
    in
    if cost machine rep_sched < !best_cost then begin
      best := rep_sched;
      best_cost := cost machine rep_sched
    end;
    Obs.Metrics.series_point "pipeline.best_cost" ~label:"replicate"
      (float_of_int !best_cost)
  end;
  Obs.Metrics.series_point "pipeline.best_cost" ~label:"final"
    (float_of_int !best_cost);
  Obs.Metrics.gauge "pipeline.final_cost" (float_of_int !best_cost);
  (* Cost attribution of the winning schedule, surfaced as profile.*
     gauges in --metrics snapshots. Computing the profile is O(schedule),
     so skip it entirely when nobody is listening. *)
  (match Obs.Metrics.current () with
   | None -> ()
   | Some _ ->
     let prof = Profile.compute machine !best in
     Obs.Metrics.gauge "profile.num_supersteps"
       (float_of_int prof.Profile.num_supersteps);
     Obs.Metrics.gauge "profile.work_total" (float_of_int prof.Profile.work_total);
     Obs.Metrics.gauge "profile.comm_total" (float_of_int prof.Profile.comm_total);
     Obs.Metrics.gauge "profile.latency_total"
       (float_of_int prof.Profile.latency_total);
     Obs.Metrics.gauge "profile.lower_bound" (float_of_int prof.Profile.lower_bound);
     Obs.Metrics.gauge "profile.gap_ratio" (Profile.gap_ratio prof);
     let max_imb =
       Array.fold_left
         (fun acc (ss : Profile.superstep) -> Float.max acc ss.Profile.work_imbalance)
         1.0 prof.Profile.supersteps
     in
     Obs.Metrics.gauge "profile.max_work_imbalance" max_imb;
     let bottleneck = ref 0 in
     Array.iteri
       (fun q w -> if w > prof.Profile.proc_work.(!bottleneck) then bottleneck := q)
       prof.Profile.proc_work;
     Obs.Metrics.gauge "profile.bottleneck_proc" (float_of_int !bottleneck);
     Obs.Metrics.gauge "profile.bottleneck_utilisation"
       (Profile.work_utilisation prof !bottleneck));
  ( !best,
    {
      best_init_name;
      init_cost;
      after_local_search;
      after_ilp_part;
      final_cost = !best_cost;
      ilp_full_optimal = !ilp_full_optimal;
    } )

let run ?(limits = default_limits) ?(with_trivial_init = true) machine dag =
  Obs.Metrics.with_span "pipeline" (fun () ->
      run_stages ~limits ~with_trivial_init machine dag)

(* Warm-started run: the serve daemon's budget-topped re-optimize path
   (DESIGN.md Section 5h). The cached schedule joins the initial
   candidates — re-lazified so HC's single-placement moves apply, and
   stripped of replicas first since the move entry points refuse
   replicated schedules — and every stage remains an improvement
   operator, so the result is never worse than what local search can
   make of the warm start. The caller still compares the final cost
   against the cached cost before replacing a cache entry, because
   re-lazification can shed a hand-optimised communication schedule. *)
let run_warm ?(limits = default_limits) ?(with_trivial_init = true) ~warm machine dag =
  if Dag.n warm.Schedule.dag <> Dag.n dag then
    invalid_arg "Pipeline.run_warm: warm schedule is over a different DAG";
  let extra_inits =
    [
      ( "warm",
        fun () -> Schedule.with_lazy_comm (Schedule.drop_replicas warm) );
    ]
  in
  Obs.Metrics.with_span "pipeline" (fun () ->
      run_stages ~extra_inits ~limits ~with_trivial_init machine dag)

(* The base pipeline as a multilevel solving-phase callback: ILPcs is
   withheld until after uncoarsening (Figure 4). *)
let base_solver limits machine dag =
  let sched, _ =
    run
      ~limits:{ limits with ilp_cs_nodes = 0; ilp_cs_max_vars = 0 }
      ~with_trivial_init:false machine dag
  in
  Schedule.with_lazy_comm sched

let default_solver_limits limits = limits

let polish_comm limits machine sched =
  let hccs_budget = stage_budget limits limits.hccs_evals in
  let hccs, _ =
    Obs.Metrics.with_span ~budget:hccs_budget "hccs:polish" (fun () ->
        Hccs.improve ~budget:hccs_budget machine sched)
  in
  if limits.use_ilp then begin
    let cs_budget = stage_budget limits limits.ilp_cs_nodes in
    let cs, _ =
      Obs.Metrics.with_span ~budget:cs_budget "ilp_cs:polish" (fun () ->
          Ilp_schedulers.comm_schedule ~budget:cs_budget
            ~max_vars:limits.ilp_cs_max_vars ~max_nodes:limits.ilp_cs_nodes machine hccs)
    in
    if cost machine cs < cost machine hccs then cs else hccs
  end
  else hccs

let run_multilevel_ratio ?(limits = default_limits) ?solver_limits ~ratio machine dag =
  let solver_limits = Option.value ~default:(default_solver_limits limits) solver_limits in
  let ml_budget = stage_budget limits limits.hc_evals in
  let sched =
    Obs.Metrics.with_span ~budget:ml_budget (Printf.sprintf "multilevel:%g" ratio)
      (fun () ->
        Multilevel.run_ratio ~budget:ml_budget ~shards:limits.hc_shards
          ~refine_interval:Multilevel.default_config.Multilevel.refine_interval
          ~refine_moves:Multilevel.default_config.Multilevel.refine_moves
          ~solver:(base_solver solver_limits) ~ratio machine dag)
  in
  polish_comm limits machine sched

(* One task per coarsening ratio; [Par.best_of] breaks cost ties
   towards the earlier ratio in the configured list, matching the
   sequential fold this replaces. *)
let run_multilevel ?(limits = default_limits) ?solver_limits
    ?(config = Multilevel.default_config) machine dag =
  if config.Multilevel.ratios = [] then
    invalid_arg "Pipeline.run_multilevel: no ratios configured";
  Dag.warm_caches dag;
  Par.best_of
    ~cmp:(fun a b -> compare (cost machine a) (cost machine b))
    (fun ratio -> run_multilevel_ratio ~limits ?solver_limits ~ratio machine dag)
    config.Multilevel.ratios

type choice = Base | Multilevel_chosen

(* Appendix C.6 closes with the hope that the multilevel method can
   learn when coarsening is needed; this realises the simplest version
   of that idea through the extended CCR metric. *)
let run_auto ?(limits = default_limits) ?solver_limits ?threshold machine dag =
  if Ccr.communication_dominated ?threshold machine dag then begin
    (* The CCR decision is a pure function of (machine, dag), so the
       base pipeline and the multilevel ratio sweep are independent the
       moment it fires — run them as one parallel portfolio: the base
       pipeline is task 0, one task per coarsening ratio after it. *)
    Dag.warm_caches dag;
    let tasks =
      (fun () -> `Base (run ~limits machine dag))
      :: List.map
           (fun ratio () ->
             `Ml (run_multilevel_ratio ~limits ?solver_limits ~ratio machine dag))
           Multilevel.default_config.Multilevel.ratios
    in
    let results = Par.map (fun f -> f ()) tasks in
    let base, stage = match results with `Base r :: _ -> r | _ -> assert false in
    let candidates =
      List.filter_map (function `Ml s -> Some s | `Base _ -> None) results
    in
    let best_ml =
      List.fold_left
        (fun acc cand ->
          match acc with
          | Some b when cost machine b <= cost machine cand -> acc
          | _ -> Some cand)
        None candidates
    in
    match best_ml with
    | Some ml when cost machine ml < stage.final_cost ->
      Obs.Metrics.gauge "pipeline.auto_multilevel" 1.0;
      (ml, Multilevel_chosen)
    | _ ->
      Obs.Metrics.gauge "pipeline.auto_multilevel" 0.0;
      (base, Base)
  end
  else begin
    let base, _stage = run ~limits machine dag in
    Obs.Metrics.gauge "pipeline.auto_multilevel" 0.0;
    (base, Base)
  end
