type options = {
  limits : Pipeline.limits;
  ml_solver_limits : Pipeline.limits option;
  with_list_baselines : bool;
  with_multilevel : bool;
  ml_ratios : float list;
  seed : int;
}

let default_options =
  {
    limits = Pipeline.default_limits;
    ml_solver_limits = None;
    with_list_baselines = false;
    with_multilevel = false;
    ml_ratios = Multilevel.default_config.Multilevel.ratios;
    seed = 1;
  }

type run = {
  trivial : int;
  cilk : int;
  bl_est : int option;
  etf : int option;
  hdagg : int;
  stage : Pipeline.stage_costs;
  ours : int;
  multilevel : (float * int) list;
}

let ml_best run =
  match run.multilevel with
  | [] -> None
  | (_, c) :: rest -> Some (List.fold_left (fun acc (_, c') -> min acc c') c rest)

let ml_at_ratio run ratio =
  List.assoc_opt ratio run.multilevel

let checked name machine sched =
  match Validity.errors machine sched with
  | [] -> Bsp_cost.total machine sched
  | err :: _ ->
    failwith (Printf.sprintf "Experiment: %s produced an invalid schedule: %s" name err)

let evaluate options machine dag =
  let p = machine.Machine.p in
  (* Instances are evaluated in parallel by the bench harness, and the
     multilevel sweep below fans out per ratio: make the shared DAG's
     lazy caches read-only first. *)
  Dag.warm_caches dag;
  let trivial = checked "trivial" machine (Schedule.trivial dag) in
  let cilk = checked "cilk" machine (Cilk.schedule dag ~p ~seed:options.seed) in
  let bl_est =
    if options.with_list_baselines then
      Some (checked "bl-est" machine (List_scheduler.schedule Bl_est machine dag))
    else None
  in
  let etf =
    if options.with_list_baselines then
      Some (checked "etf" machine (List_scheduler.schedule Etf machine dag))
    else None
  in
  let hdagg = checked "hdagg" machine (Hdagg.schedule machine dag) in
  let ours_sched, stage = Pipeline.run ~limits:options.limits machine dag in
  let ours = checked "pipeline" machine ours_sched in
  let multilevel =
    if options.with_multilevel then
      Par.map
        (fun ratio ->
          let ml =
            Pipeline.run_multilevel_ratio ~limits:options.limits
              ?solver_limits:options.ml_solver_limits ~ratio machine dag
          in
          (ratio, checked "multilevel" machine ml))
        options.ml_ratios
    else []
  in
  { trivial; cilk; bl_est; etf; hdagg; stage; ours; multilevel }

let ratio ours baseline =
  if baseline = 0 then if ours = 0 then 1.0 else infinity
  else float_of_int ours /. float_of_int baseline

let geo_ratio num den runs =
  Statistics.geometric_mean (List.map (fun r -> ratio (num r) (den r)) runs)

let reduction_percent = Statistics.percent_reduction
