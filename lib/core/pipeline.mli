(** The combined scheduling framework (Section 6, Figures 3 and 4).

    The base pipeline runs every applicable initialisation heuristic
    (BSPg, Source, and optionally ILPinit), improves each with HC + HCcs
    and keeps the best; it then applies the ILP stages: ILPfull when the
    model is small enough, and — unless ILPfull proved its answer optimal
    — ILPpart followed by ILPcs. Every stage is an improvement operator,
    so the pipeline's cost is monotonically non-increasing across stages,
    and the per-stage costs are reported for the experiment tables
    (Table 7, Figure 5).

    The multilevel pipeline (Figure 4) wraps the base pipeline in the
    coarsen-solve-refine scheme of {!Multilevel}, running the
    communication-schedule optimisers only on the final uncoarsened
    schedule.

    Budgets are given as specs ({!limits}) rather than live
    {!Budget.t} values because each stage consumes a fresh budget; step
    limits keep results deterministic, and an optional per-stage
    wall-clock cap mirrors the paper's per-stage minute limits. *)

type limits = {
  hc_evals : int;  (** candidate evaluations per HC run *)
  hccs_evals : int;
  ilp_full_max_vars : int;  (** gate for attempting ILPfull at all *)
  ilp_full_nodes : int;  (** branch-and-bound node cap *)
  ilp_part_max_vars : int;  (** interval sizing, the 4000-variable analogue *)
  ilp_part_nodes : int;
  ilp_init_max_vars : int;
  ilp_init_nodes : int;
  ilp_cs_max_vars : int;
  ilp_cs_nodes : int;
  use_ilp : bool;  (** disable all ILP stages (huge dataset runs) *)
  use_ilp_init : bool;
      (** run the ILPinit initialiser; the experiments enable it only for
          [P = 4], where the training runs showed it competitive
          (Appendix C.1) *)
  stage_seconds : float option;  (** optional wall-clock cap per stage *)
  hc_check : bool;
      (** run HC with its delta-vs-apply cross-validation assertions
          (see {!Hc.improve}); off by default so release and benchmark
          runs keep rejected candidate moves read-only — the test suite
          turns it on *)
  replicate : bool;
      (** run {!Hc.replicate_schedule} as a final stage and keep its
          result when strictly cheaper (DESIGN.md Section 5g); off by
          default, so baseline costs stay bit-identical. The CLI's
          [--replicate] flag turns it on. *)
  hc_shards : int;
      (** shard count for {!Hc.improve}'s propose/merge/apply engine,
          passed to every HC stage and every multilevel refinement
          (DESIGN.md Section 5j). [1] (the default) is the sequential
          path; any other value is bit-identical to it, so this only
          changes wall-clock, never results. Normally set to the jobs
          count. *)
}

val default_limits : limits
(** Balanced limits for the benchmark harness. *)

val fast_limits : limits
(** Heuristics + local search only ([use_ilp = false]), with smaller HC
    budgets — the configuration used on the huge dataset. *)

val thorough_limits : limits
(** Larger ILP budgets for small instances and the CLI. *)

type stage_costs = {
  best_init_name : string;
      (** "bspg", "source", "trivial" or "ilp-init"; the trivial
          single-processor schedule rides along as a safety net so the
          framework never returns anything costlier than it
          (Section 7.3 motivates this for communication-dominated
          instances) *)
  init_cost : int;  (** best initialisation, before local search *)
  after_local_search : int;  (** after HC + HCcs (the paper's "HCcs") *)
  after_ilp_part : int;  (** after ILPfull + ILPpart (the "ILPpart" column) *)
  final_cost : int;  (** after ILPcs *)
  ilp_full_optimal : bool;
}

val run :
  ?limits:limits ->
  ?with_trivial_init:bool ->
  Machine.t ->
  Dag.t ->
  Schedule.t * stage_costs
(** The base pipeline of Figure 3. The returned schedule is valid and
    compacted, with an explicit (optimised) communication schedule.
    [with_trivial_init] (default [true]) includes the trivial
    single-processor schedule among the initial candidates; the
    multilevel coarse-solving phase turns it off (see
    {!stage_costs.best_init_name}). When an {!Obs.Metrics} registry is
    installed, the winning schedule's {!Profile} summary is recorded as
    [profile.*] gauges (supersteps, work/comm/latency split, lower-bound
    gap, peak work imbalance, bottleneck processor and its
    utilisation). *)

val run_warm :
  ?limits:limits ->
  ?with_trivial_init:bool ->
  warm:Schedule.t ->
  Machine.t ->
  Dag.t ->
  Schedule.t * stage_costs
(** {!run} with one extra initial candidate: an existing schedule for
    the same DAG (typically a cached best from the serve daemon's
    content-addressed cache, re-optimised under a larger budget —
    DESIGN.md Section 5h). The warm schedule is re-lazified and
    stripped of replicas before joining the candidate set; with the
    warm candidate appended after the standard initialisers, a run
    where the warm schedule never wins is bit-identical to {!run}.
    Raises [Invalid_argument] if the warm schedule's DAG has a
    different node count. *)

val run_multilevel :
  ?limits:limits ->
  ?solver_limits:limits ->
  ?config:Multilevel.config ->
  Machine.t ->
  Dag.t ->
  Schedule.t
(** The multilevel pipeline of Figure 4: coarsen, solve with the base
    pipeline (without ILPcs), refine, then HCcs + ILPcs on the result.
    Tries every ratio in [config] and keeps the cheapest.
    [solver_limits] (default [limits]) governs the base pipeline run on
    the coarse DAG; the benchmark harness passes a cheaper configuration
    there to bound total sweep time. *)

val run_multilevel_ratio :
  ?limits:limits -> ?solver_limits:limits -> ratio:float -> Machine.t -> Dag.t -> Schedule.t
(** Single-ratio variant for the C15/C30 ablation (Tables 13, 14). *)

(** {1 Automatic method selection} *)

type choice = Base | Multilevel_chosen

val run_auto :
  ?limits:limits ->
  ?solver_limits:limits ->
  ?threshold:float ->
  Machine.t ->
  Dag.t ->
  Schedule.t * choice
(** Run the base pipeline, and additionally the multilevel pipeline when
    the instance is communication-dominated according to {!Ccr}
    (threshold overridable); return the cheaper schedule and which
    method produced it. This implements the paper's future-work idea of
    deciding automatically whether coarsening is needed (Appendix C.6). *)
