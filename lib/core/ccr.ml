let ccr machine dag =
  let work = Dag.total_work dag in
  if work = 0 then infinity
  else
    float_of_int machine.Machine.g
    *. Machine.average_lambda machine
    *. float_of_int (Dag.total_comm dag)
    /. float_of_int work

let default_threshold = 5.0

let communication_dominated ?(threshold = default_threshold) machine dag =
  ccr machine dag >= threshold
