(** Extended communication-to-computation ratio.

    Özkaya et al. characterise communication-dominated instances with
    [CCR = sum c(v) / sum w(v)]; Appendix A.5 of the paper notes that in
    the BSP+NUMA model the natural generalisation also multiplies the
    numerator by [g] and the average NUMA coefficient (and observes that
    folding in the latency [l] is not straightforward). This module
    implements that extended metric and uses it to predict when the
    multilevel method should be engaged — the direction the paper calls
    its most promising future work (Appendix C.6).

    The default engagement threshold was tuned on the benchmark sweeps:
    with the paper's unit communication weights it separates the
    (P, delta) cells where the multilevel scheduler wins (delta >= 3, or
    delta = 4 at P = 8) from those where the base pipeline is better. *)

val ccr : Machine.t -> Dag.t -> float
(** [g * average_lambda * total_comm / total_work]; [infinity] for a
    DAG with zero total work. *)

val default_threshold : float
(** Engage the multilevel method when {!ccr} is at least this value. *)

val communication_dominated : ?threshold:float -> Machine.t -> Dag.t -> bool
