type outcome = {
  solution : float array option;
  objective : float;
  proven_optimal : bool;
  nodes_explored : int;
  lp_failures : int;
}

let int_tol = 1e-6

let solve ?(budget = Budget.unlimited ()) ?(cutoff = infinity) ?(max_nodes = 20000)
    ?(max_pivots = 1200) model =
  let nbin_vars =
    let acc = ref [] in
    for v = Ilp.num_vars model - 1 downto 0 do
      if Ilp.is_binary model v then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  let incumbent = ref None in
  let incumbent_obj = ref cutoff in
  let nodes = ref 0 in
  let lp_failures = ref 0 in
  let incumbent_updates = ref 0 in
  let complete = ref true in
  let rec explore fix =
    if !nodes >= max_nodes || Budget.exhausted budget then complete := false
    else begin
      incr nodes;
      ignore (Budget.tick budget : bool);
      match Ilp.lp_relaxation ~max_pivots ~fix model with
      | Simplex.Infeasible -> ()
      | Simplex.Unbounded ->
        (* A bounded-cost scheduling model is never unbounded; treat as a
           node we cannot reason about. *)
        complete := false
      | Simplex.Iteration_limit ->
        (* No bound available. Branching blindly here would explore an
           unbounded subtree whose every node repeats the expensive
           failing LP, so give the subtree up instead; the result is
           simply not proven optimal (the same contract as CBC hitting
           its limits). *)
        incr lp_failures;
        complete := false
      | Simplex.Optimal { obj; x } ->
        if obj >= !incumbent_obj -. 1e-9 then ()
        else begin
          (* Most fractional unfixed binary. *)
          let branch_var = ref (-1) in
          let best_frac = ref int_tol in
          Array.iter
            (fun v ->
              let f = Float.abs (x.(v) -. Float.round x.(v)) in
              if f > !best_frac then begin
                best_frac := f;
                branch_var := v
              end)
            nbin_vars;
          if !branch_var < 0 then begin
            (* Integral: record incumbent with binaries snapped exactly. *)
            let sol = Array.copy x in
            Array.iter (fun v -> sol.(v) <- Float.round sol.(v)) nbin_vars;
            incumbent := Some sol;
            incumbent_obj := obj;
            incr incumbent_updates
          end
          else begin
            let v = !branch_var in
            let first = Float.round x.(v) in
            explore ((v, first) :: fix);
            explore ((v, 1.0 -. first) :: fix)
          end
        end
    end
  in
  explore [];
  Obs.Metrics.counter "bb.solves" 1;
  Obs.Metrics.counter "bb.nodes_explored" !nodes;
  Obs.Metrics.counter "bb.lp_failures" !lp_failures;
  Obs.Metrics.counter "bb.incumbent_updates" !incumbent_updates;
  {
    solution = !incumbent;
    objective = !incumbent_obj;
    proven_optimal = !complete;
    nodes_explored = !nodes;
    lp_failures = !lp_failures;
  }

let solve_exhaustive model =
  let nbin_vars =
    let acc = ref [] in
    for v = Ilp.num_vars model - 1 downto 0 do
      if Ilp.is_binary model v then acc := v :: !acc
    done;
    Array.of_list !acc
  in
  let k = Array.length nbin_vars in
  if k > 24 then invalid_arg "Branch_bound.solve_exhaustive: too many binaries";
  let incumbent = ref None in
  let incumbent_obj = ref infinity in
  let nodes = ref 0 in
  for mask = 0 to (1 lsl k) - 1 do
    incr nodes;
    let fix =
      List.init k (fun i ->
          (nbin_vars.(i), if mask land (1 lsl i) <> 0 then 1.0 else 0.0))
    in
    match Ilp.lp_relaxation ~fix model with
    | Simplex.Optimal { obj; x } when obj < !incumbent_obj -. 1e-9 ->
      let sol = Array.copy x in
      List.iter (fun (v, value) -> sol.(v) <- value) fix;
      incumbent := Some sol;
      incumbent_obj := obj
    | _ -> ()
  done;
  {
    solution = !incumbent;
    objective = !incumbent_obj;
    proven_optimal = true;
    nodes_explored = !nodes;
    lp_failures = 0;
  }
