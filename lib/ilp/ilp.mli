(** Mixed 0/1 integer linear program models.

    A thin model builder shared by the four scheduling formulations of
    Section 4.4 (ILPfull, ILPpart, ILPinit, ILPcs). Variables are either
    binary or continuous with bounds; constraints are sparse linear rows;
    the objective is always minimised. Solving happens in
    {!Branch_bound}. *)

type t

type var = int
(** Dense variable index. *)

val create : unit -> t

val binary : t -> string -> var
(** A 0/1 variable. The name is kept for diagnostics only. *)

val continuous : t -> ?lb:float -> ?ub:float -> string -> var
(** A continuous variable, by default in [[0, infinity)]. *)

val num_vars : t -> int
val num_binaries : t -> int
val num_constraints : t -> int
val var_name : t -> var -> string
val is_binary : t -> var -> bool

val add_le : t -> (var * float) list -> float -> unit
(** [add_le m coeffs b] adds [sum coeffs <= b]. *)

val add_ge : t -> (var * float) list -> float -> unit
val add_eq : t -> (var * float) list -> float -> unit

val set_objective : t -> (var * float) list -> unit
(** Minimisation objective (sparse; later calls replace earlier ones). *)

val objective_value : t -> float array -> float
val constraints_satisfied : ?tol:float -> t -> float array -> bool
(** Check a full assignment against all rows and bounds. *)

(** {1 Solver access} *)

val lp_relaxation :
  ?max_pivots:int ->
  ?fix:(var * float) list ->
  t ->
  Simplex.result
(** Solve the LP relaxation (binaries relaxed to [[0, 1]]), with the
    bounds of the variables in [fix] clamped to the given values. *)
