(** Branch-and-bound solver for 0/1 mixed integer programs.

    The scheduling pipeline uses the ILP solver the way the paper uses
    CBC: hand it a (sub)problem together with the objective value of the
    current schedule, give it a budget, and take a strictly better
    feasible solution if one is found (Section 6). Accordingly {!solve}
    takes a [cutoff]: only solutions with objective strictly below it are
    recorded, and the cutoff doubles as the initial pruning bound — the
    warm start the paper feeds CBC.

    The search is depth-first diving: at each node the LP relaxation is
    solved with the branching decisions clamped; nodes whose bound
    reaches the incumbent are pruned; the most fractional binary is
    branched on, exploring the rounded side first so integral leaves (and
    hence incumbents) appear early. If the LP solver hits its pivot
    limit the node is explored without a bound and the final result is
    not marked proven optimal. *)

type outcome = {
  solution : float array option;
      (** best assignment strictly better than [cutoff], if any; binaries
          are exactly 0.0 or 1.0 *)
  objective : float;  (** its objective, or [cutoff] when none was found *)
  proven_optimal : bool;
      (** the tree was exhausted with sound bounds everywhere *)
  nodes_explored : int;
  lp_failures : int;  (** LP iteration-limit events *)
}

val solve :
  ?budget:Budget.t ->
  ?cutoff:float ->
  ?max_nodes:int ->
  ?max_pivots:int ->
  Ilp.t ->
  outcome
(** [budget] is ticked once per node; [max_nodes] (default 20000) is a
    hard cap independent of the budget; [max_pivots] bounds each LP
    solve. *)

val solve_exhaustive : Ilp.t -> outcome
(** Enumerate all assignments of the binaries, solving an LP for the
    continuous variables under each; exact but exponential — for tests
    and cross-checks on tiny models only. *)
