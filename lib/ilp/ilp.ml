type var = int

type var_info = { name : string; binary : bool; lb : float; ub : float }

type t = {
  mutable vars : var_info list;  (* reversed *)
  mutable nvars : int;
  mutable nbin : int;
  mutable rows : ((var * float) list * Simplex.sense * float) list;  (* reversed *)
  mutable nrows : int;
  mutable obj : (var * float) list;
}

let create () = { vars = []; nvars = 0; nbin = 0; rows = []; nrows = 0; obj = [] }

let add_var t info =
  let id = t.nvars in
  t.vars <- info :: t.vars;
  t.nvars <- t.nvars + 1;
  if info.binary then t.nbin <- t.nbin + 1;
  id

let binary t name = add_var t { name; binary = true; lb = 0.0; ub = 1.0 }

let continuous t ?(lb = 0.0) ?(ub = infinity) name =
  if not (Float.is_finite lb) then invalid_arg "Ilp.continuous: lb must be finite";
  add_var t { name; binary = false; lb; ub }

let num_vars t = t.nvars
let num_binaries t = t.nbin
let num_constraints t = t.nrows

let var_array t = Array.of_list (List.rev t.vars)

let var_name t v = (List.nth (List.rev t.vars) v).name

let is_binary t v = (List.nth (List.rev t.vars) v).binary

let check_row t coeffs =
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= t.nvars then invalid_arg "Ilp: variable out of range")
    coeffs

let add_row t coeffs sense b =
  check_row t coeffs;
  t.rows <- (coeffs, sense, b) :: t.rows;
  t.nrows <- t.nrows + 1

let add_le t coeffs b = add_row t coeffs Simplex.Le b
let add_ge t coeffs b = add_row t coeffs Simplex.Ge b
let add_eq t coeffs b = add_row t coeffs Simplex.Eq b

let set_objective t coeffs =
  check_row t coeffs;
  t.obj <- coeffs

let objective_value t x =
  List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 t.obj

let constraints_satisfied ?(tol = 1e-6) t x =
  let vars = var_array t in
  Array.for_all
    (fun ok -> ok)
    (Array.mapi
       (fun j info -> x.(j) >= info.lb -. tol && x.(j) <= info.ub +. tol)
       vars)
  && List.for_all
       (fun (coeffs, sense, b) ->
         let lhs = List.fold_left (fun acc (v, c) -> acc +. (c *. x.(v))) 0.0 coeffs in
         match sense with
         | Simplex.Le -> lhs <= b +. tol
         | Simplex.Ge -> lhs >= b -. tol
         | Simplex.Eq -> Float.abs (lhs -. b) <= tol)
       t.rows

let lp_relaxation ?max_pivots ?(fix = []) t =
  let vars = var_array t in
  let lb = Array.map (fun i -> i.lb) vars in
  let ub = Array.map (fun i -> i.ub) vars in
  List.iter
    (fun (v, value) ->
      lb.(v) <- value;
      ub.(v) <- value)
    fix;
  (* Eliminate fixed variables before handing the LP to the simplex:
     their contribution moves into the right-hand sides and the objective
     constant. Deep branch-and-bound nodes fix many binaries, so this
     shrinks their LPs substantially. *)
  let fixed = Array.init t.nvars (fun j -> lb.(j) = ub.(j)) in
  let dense = Array.make t.nvars (-1) in
  let free_count = ref 0 in
  for j = 0 to t.nvars - 1 do
    if not fixed.(j) then begin
      dense.(j) <- !free_count;
      incr free_count
    end
  done;
  let reduce coeffs =
    let const = ref 0.0 in
    let terms =
      List.filter_map
        (fun (v, c) ->
          if fixed.(v) then begin
            const := !const +. (c *. lb.(v));
            None
          end
          else Some (dense.(v), c))
        coeffs
    in
    (terms, !const)
  in
  let rows =
    List.rev_map
      (fun (coeffs, sense, b) ->
        let terms, const = reduce coeffs in
        (terms, sense, b -. const))
      t.rows
    |> Array.of_list
  in
  (* A fixed-variable row with an empty left-hand side must still hold. *)
  let tol = 1e-7 in
  let infeasible_constant =
    Array.exists
      (fun (terms, sense, b) ->
        terms = []
        &&
        match (sense : Simplex.sense) with
        | Simplex.Le -> b < -.tol
        | Simplex.Ge -> b > tol
        | Simplex.Eq -> Float.abs b > tol)
      rows
  in
  if infeasible_constant then Simplex.Infeasible
  else begin
    let rows = Array.of_list (List.filter (fun (terms, _, _) -> terms <> []) (Array.to_list rows)) in
    let obj_terms, obj_const = reduce t.obj in
    let lb' = Array.make !free_count 0.0 and ub' = Array.make !free_count infinity in
    for j = 0 to t.nvars - 1 do
      if not fixed.(j) then begin
        lb'.(dense.(j)) <- lb.(j);
        ub'.(dense.(j)) <- ub.(j)
      end
    done;
    match
      Simplex.minimize ?max_pivots ~num_vars:!free_count ~obj:obj_terms ~rows ~lb:lb'
        ~ub:ub' ()
    with
    | Simplex.Optimal { obj; x } ->
      let full = Array.copy lb in
      for j = 0 to t.nvars - 1 do
        if not fixed.(j) then full.(j) <- x.(dense.(j))
      done;
      Simplex.Optimal { obj = obj +. obj_const; x = full }
    | other -> other
  end
