(* CLI: validate a schedule file against its DAG and report its exact
   BSP(+NUMA) cost.

   Example:
     evaluate input.hdag out.schedule -p 8 -g 3 -l 5 --verbose *)

open Cmdliner

let run dag_file schedule_file p g l delta verbose =
  let dag = Hyperdag_io.read_file dag_file in
  let machine =
    match delta with
    | None -> Machine.uniform ~p ~g ~l
    | Some delta -> Machine.numa_tree ~p ~g ~l ~delta
  in
  let schedule = Schedule_io.read_file dag schedule_file in
  match Validity.check machine schedule with
  | Error errs ->
    Printf.printf "INVALID schedule (%d violations):\n" (List.length errs);
    List.iter (fun e -> Printf.printf "  %s\n" e) errs;
    exit 1
  | Ok () ->
    let b = Bsp_cost.breakdown machine schedule in
    Printf.printf "valid schedule: %d supersteps, cost %d (work %d + comm %d + latency %d)\n"
      (Schedule.num_supersteps schedule)
      b.Bsp_cost.total b.Bsp_cost.work_total b.Bsp_cost.comm_total b.Bsp_cost.latency_total;
    if verbose then
      Array.iteri
        (fun s (c : Bsp_cost.superstep) ->
          Printf.printf "  superstep %3d: work %6d, h-relation %6d, cost %6d\n" s
            c.Bsp_cost.work_max c.Bsp_cost.comm_max c.Bsp_cost.cost)
        b.Bsp_cost.supersteps

let dag_file =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"DAG" ~doc:"HyperDAG input file.")

let schedule_file =
  Arg.(
    required & pos 1 (some file) None & info [] ~docv:"SCHEDULE" ~doc:"Schedule file.")

let p = Arg.(value & opt int 4 & info [ "p"; "procs" ] ~doc:"Number of processors.")
let g = Arg.(value & opt int 1 & info [ "g"; "comm-cost" ] ~doc:"Per-unit communication cost.")
let l = Arg.(value & opt int 5 & info [ "l"; "latency" ] ~doc:"Latency per superstep.")

let delta =
  Arg.(
    value
    & opt (some int) None
    & info [ "numa-delta" ] ~doc:"Binary-tree NUMA multiplier." ~docv:"DELTA")

let verbose = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Per-superstep breakdown.")

let cmd =
  let doc = "validate and cost a BSP schedule" in
  Cmd.v (Cmd.info "evaluate" ~doc)
    Term.(const run $ dag_file $ schedule_file $ p $ g $ l $ delta $ verbose)

let () = exit (Cmd.eval cmd)
