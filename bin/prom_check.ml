(* Validate a Prometheus text-exposition (version 0.0.4) file as written
   by Obs.Metrics.write_prometheus_file: every non-comment line must be a
   well-formed sample (metric name, optional {labels}, float value),
   every sample must belong to a family declared by a preceding # TYPE
   line, and every histogram family must carry a le="+Inf" bucket with
   monotone non-decreasing cumulative counts that agree with _count. CI
   runs this against the daemon's metrics.prom snapshot.

   Usage: prom_check FILE *)

let usage () =
  prerr_endline "usage: prom_check FILE";
  exit 2

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("prom_check: " ^ s); exit 1) fmt

let is_name_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false
let is_name_char c = is_name_start c || (c >= '0' && c <= '9')
let is_label_start = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
let is_label_char c = is_label_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> "" && is_name_start s.[0] && String.for_all is_name_char s

let valid_float s =
  match s with
  | "+Inf" | "Inf" | "-Inf" | "NaN" -> true
  | _ -> float_of_string_opt s <> None

(* Parse a sample line into (name, labels, value). Label values use the
   exposition escapes backslash-backslash, backslash-quote and
   backslash-n; a timestamp after the value is tolerated per the format
   but our writer never emits one. *)
let parse_sample lineno line =
  let len = String.length line in
  let err fmt = Printf.ksprintf (fun s -> fail "line %d: %s" lineno s) fmt in
  let i = ref 0 in
  while !i < len && is_name_char line.[!i] do incr i done;
  let name = String.sub line 0 !i in
  if not (valid_name name) then err "invalid metric name in %S" line;
  let labels = ref [] in
  if !i < len && line.[!i] = '{' then begin
    incr i;
    let stop = ref false in
    while not !stop do
      if !i >= len then err "unterminated label set";
      if line.[!i] = '}' then begin incr i; stop := true end
      else begin
        let k0 = !i in
        while !i < len && is_label_char line.[!i] do incr i done;
        let key = String.sub line k0 (!i - k0) in
        if key = "" || not (is_label_start key.[0]) then
          err "invalid label name at column %d" (k0 + 1);
        if !i >= len || line.[!i] <> '=' then err "label %s missing '='" key;
        incr i;
        if !i >= len || line.[!i] <> '"' then err "label %s value is not quoted" key;
        incr i;
        let b = Buffer.create 16 in
        let closed = ref false in
        while not !closed do
          if !i >= len then err "label %s has an unterminated value" key;
          (match line.[!i] with
           | '"' -> closed := true
           | '\\' ->
             if !i + 1 >= len then err "label %s ends in a bare backslash" key;
             incr i;
             (match line.[!i] with
              | '\\' -> Buffer.add_char b '\\'
              | '"' -> Buffer.add_char b '"'
              | 'n' -> Buffer.add_char b '\n'
              | c -> err "label %s has an invalid escape \\%c" key c)
           | c -> Buffer.add_char b c);
          incr i
        done;
        labels := (key, Buffer.contents b) :: !labels;
        if !i < len && line.[!i] = ',' then incr i
        else if !i >= len || line.[!i] <> '}' then
          err "label %s is not followed by ',' or '}'" key
      end
    done
  end;
  if !i >= len || line.[!i] <> ' ' then err "missing space before value in %S" line;
  let rest =
    String.sub line !i (len - !i) |> String.split_on_char ' '
    |> List.filter (fun s -> s <> "")
  in
  match rest with
  | [ v ] | [ v; _ ] ->
    if not (valid_float v) then err "invalid sample value %S" v;
    (name, List.rev !labels, v)
  | _ -> err "expected 'name{labels} value [timestamp]', got %S" line

let () =
  let file =
    match Array.to_list Sys.argv with [ _; f ] -> f | _ -> usage ()
  in
  let contents = In_channel.with_open_bin file In_channel.input_all in
  let types = Hashtbl.create 16 in
  (* base histogram name -> (last cumulative bucket count, saw +Inf,
     +Inf count) in file order *)
  let buckets = Hashtbl.create 16 in
  let counts = Hashtbl.create 16 in
  let samples = ref 0 in
  let lines = String.split_on_char '\n' contents in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if line.[0] = '#' then begin
        match String.split_on_char ' ' line |> List.filter (fun s -> s <> "") with
        | "#" :: "TYPE" :: name :: [ ty ] ->
          if not (valid_name name) then fail "line %d: invalid TYPE name %s" lineno name;
          if not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then fail "line %d: unknown metric type %s" lineno ty;
          if Hashtbl.mem types name then
            fail "line %d: duplicate TYPE declaration for %s" lineno name;
          Hashtbl.replace types name ty
        | "#" :: "TYPE" :: _ -> fail "line %d: malformed TYPE comment" lineno
        | _ -> () (* HELP and free comments *)
      end
      else begin
        let name, labels, value = parse_sample lineno line in
        incr samples;
        let family_of suffix =
          let sl = String.length suffix and nl = String.length name in
          if nl > sl && String.sub name (nl - sl) sl = suffix then
            let base = String.sub name 0 (nl - sl) in
            match Hashtbl.find_opt types base with
            | Some ("histogram" | "summary") -> Some base
            | _ -> None
          else None
        in
        match Hashtbl.find_opt types name with
        | Some _ -> ()
        | None ->
          (match family_of "_bucket" with
           | Some base ->
             let le =
               match List.assoc_opt "le" labels with
               | Some le -> le
               | None -> fail "line %d: %s_bucket sample without le label" lineno base
             in
             let c =
               match int_of_string_opt value with
               | Some c when c >= 0 -> c
               | _ ->
                 fail "line %d: bucket count must be a non-negative integer, got %s"
                   lineno value
             in
             let prev, saw_inf, inf_c =
               Option.value ~default:(0, false, 0) (Hashtbl.find_opt buckets base)
             in
             if c < prev then
               fail "line %d: %s_bucket counts are not cumulative (%d after %d)"
                 lineno base c prev;
             if saw_inf then
               fail "line %d: %s_bucket after the le=\"+Inf\" bound" lineno base;
             let is_inf = le = "+Inf" in
             if not (is_inf || valid_float le) then
               fail "line %d: invalid le bound %S" lineno le;
             Hashtbl.replace buckets base (c, is_inf, if is_inf then c else inf_c)
           | None ->
             (match (family_of "_sum", family_of "_count") with
              | Some _, _ -> ()
              | _, Some base ->
                (match int_of_string_opt value with
                 | Some c -> Hashtbl.replace counts base c
                 | None ->
                   fail "line %d: %s_count must be an integer, got %s" lineno base
                     value)
              | None, None ->
                fail "line %d: sample %s has no preceding TYPE declaration" lineno name))
      end)
    lines;
  if !samples = 0 then fail "%s contains no samples" file;
  Hashtbl.iter
    (fun base (_, saw_inf, inf_c) ->
      if not saw_inf then fail "histogram %s has no le=\"+Inf\" bucket" base;
      match Hashtbl.find_opt counts base with
      | Some c when c <> inf_c ->
        fail "histogram %s: _count %d disagrees with the +Inf bucket %d" base c inf_c
      | _ -> ())
    buckets;
  Printf.printf "prom_check: %s OK (%d samples, %d families, %d histograms)\n" file
    !samples (Hashtbl.length types) (Hashtbl.length buckets)
