(* CLI: generate computational DAG instances into hyperDAG files.

   Examples:
     generate --family exp --target 500 --seed 3 out.hdag
     generate --family cg --matrix-n 40 --density 0.1 --iterations 4 out.hdag
     generate --family pagerank --iterations 100 out.hdag *)

open Cmdliner

type family =
  | Fine of Finegrained.family
  | Coarse of Coarsegrained.algorithm

let families =
  [
    ("spmv", Fine Finegrained.Spmv);
    ("exp", Fine Finegrained.Exp);
    ("cg", Fine Finegrained.Cg);
    ("knn", Fine Finegrained.Knn);
    ("cg-coarse", Coarse Coarsegrained.Cg_coarse);
    ("bicgstab", Coarse Coarsegrained.Bicgstab);
    ("pagerank", Coarse Coarsegrained.Pagerank);
    ("labelprop", Coarse Coarsegrained.Label_propagation);
    ("knn-coarse", Coarse Coarsegrained.Knn_coarse);
  ]

let run family target matrix_n density iterations deep seed binary output =
  let rng = Rng.create seed in
  let dag =
    match family with
    | Fine f ->
      (match (target, matrix_n) with
       | Some target, _ ->
         let shape = if deep then Finegrained.Deep else Finegrained.Wide in
         Finegrained.generate_sized rng ~family:f ~shape ~target
       | None, Some n ->
         let a =
           match f with
           | Finegrained.Cg -> Sparse_matrix.random_symmetric rng ~n ~q:density
           | _ -> Sparse_matrix.random rng ~n ~q:density
         in
         (match f with
          | Finegrained.Spmv -> Finegrained.spmv a
          | Finegrained.Exp -> Finegrained.exp a ~k:iterations
          | Finegrained.Cg -> Finegrained.cg a ~k:iterations
          | Finegrained.Knn -> Finegrained.knn rng a ~k:iterations)
       | None, None ->
         failwith "fine-grained families need either --target or --matrix-n")
    | Coarse algo ->
      (match target with
       | Some target -> Coarsegrained.generate_sized algo ~target
       | None -> Coarsegrained.generate algo ~iterations)
  in
  if binary then Hyperdag_io.write_binary_file output dag
  else Hyperdag_io.write_file output dag;
  Printf.printf "%s: %d nodes, %d edges, %d wavefronts, total work %d\n" output (Dag.n dag)
    (Dag.num_edges dag) (Dag.num_wavefronts dag) (Dag.total_work dag)

let family =
  Arg.(
    required
    & opt (some (enum families)) None
    & info [ "family"; "f" ]
        ~doc:
          "Instance family: fine-grained ($(b,spmv), $(b,exp), $(b,cg), $(b,knn)) or \
           coarse-grained op-level ($(b,cg-coarse), $(b,bicgstab), $(b,pagerank), \
           $(b,labelprop), $(b,knn-coarse)).")

let target =
  Arg.(
    value
    & opt (some int) None
    & info [ "target"; "n" ] ~doc:"Approximate number of DAG nodes to generate.")

let matrix_n =
  Arg.(
    value
    & opt (some int) None
    & info [ "matrix-n" ] ~doc:"Sparse matrix dimension (fine-grained families).")

let density =
  Arg.(value & opt float 0.1 & info [ "density"; "q" ] ~doc:"Nonzero probability.")

let iterations =
  Arg.(value & opt int 3 & info [ "iterations"; "k" ] ~doc:"Iteration count.")

let deep =
  Arg.(value & flag & info [ "deep" ] ~doc:"Prefer a deep shape with --target.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.")

let binary =
  Arg.(
    value & flag
    & info [ "binary" ]
        ~doc:
          "Write the compact binary encoding instead of hyperDAG text. Every reader in \
           the tree (scheduler, evaluate, serve) sniffs the format, so the two are \
           interchangeable.")

let output =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"OUTPUT" ~doc:"Output file.")

let cmd =
  let doc = "generate computational DAG instances (hyperDAG format)" in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(
      const run $ family $ target $ matrix_n $ density $ iterations $ deep $ seed
      $ binary $ output)

let () = exit (Cmd.eval cmd)
