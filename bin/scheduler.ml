(* CLI: schedule a hyperDAG file on a described BSP(+NUMA) machine.

   Examples:
     scheduler input.hdag -p 8 -g 3 -l 5
     scheduler input.hdag -p 16 --numa-delta 4 --algorithm multilevel \
       --seconds 30 --output out.schedule *)

open Cmdliner

let algorithms =
  [
    ("pipeline", `Pipeline);
    ("multilevel", `Multilevel);
    ("cilk", `Cilk);
    ("hdagg", `Hdagg);
    ("bl-est", `Bl_est);
    ("etf", `Etf);
    ("bspg", `Bspg);
    ("source", `Source);
    ("trivial", `Trivial);
  ]

let run input p g l delta machine_file algorithm seconds output seed quiet show metrics
    trace profile chrome_trace jobs replicate =
  Par.set_jobs jobs;
  let registry =
    if metrics <> None || trace then begin
      let r = Obs.Metrics.create () in
      Obs.Metrics.install r;
      Some r
    end
    else None
  in
  if trace then begin
    Logs.set_reporter (Logs.format_reporter ());
    Logs.set_level (Some Logs.Info);
    Option.iter
      (fun r ->
        Obs.Metrics.on_span_close r (fun ~path ~seconds ~steps ->
            Logs.app ~src:Obs.Metrics.src (fun m ->
                m "stage %-24s %8.3fs %10d steps" path seconds steps)))
      registry
  end;
  let dag = Hyperdag_io.read_file input in
  let machine =
    match machine_file with
    | Some path -> Machine_io.read_file path
    | None ->
      (match delta with
       | None -> Machine.uniform ~p ~g ~l
       | Some delta -> Machine.numa_tree ~p ~g ~l ~delta)
  in
  let limits =
    { Pipeline.thorough_limits with Pipeline.stage_seconds = Some (seconds /. 6.0) }
  in
  let schedule =
    Obs.Metrics.with_span ("scheduler:" ^ algorithm) (fun () ->
        match List.assoc algorithm algorithms with
        | `Pipeline ->
          (* the pipeline runs replication as its own final stage *)
          fst (Pipeline.run ~limits:{ limits with Pipeline.replicate } machine dag)
        | `Multilevel -> Pipeline.run_multilevel ~limits machine dag
        | `Cilk -> Cilk.schedule dag ~p ~seed
        | `Hdagg -> Hdagg.schedule machine dag
        | `Bl_est -> List_scheduler.schedule List_scheduler.Bl_est machine dag
        | `Etf -> List_scheduler.schedule List_scheduler.Etf machine dag
        | `Bspg -> Bspg.schedule machine dag
        | `Source -> Source_heuristic.schedule machine dag
        | `Trivial -> Schedule.trivial dag)
  in
  (* For every other algorithm, graft replicas onto the finished schedule
     as a post-pass and keep the cheaper variant (replication re-lazifies
     the communication schedule, so it is not unconditionally better). *)
  let schedule =
    if replicate && algorithm <> "pipeline" then begin
      let cand =
        Obs.Metrics.with_span "scheduler:replicate" (fun () ->
            Hc.replicate_schedule machine schedule)
      in
      if Bsp_cost.total machine cand < Bsp_cost.total machine schedule then cand
      else schedule
    end
    else schedule
  in
  (match Validity.check machine schedule with
   | Ok () -> ()
   | Error errs ->
     List.iter prerr_endline errs;
     failwith "internal error: scheduler produced an invalid schedule");
  let b = Bsp_cost.breakdown machine schedule in
  if not quiet then begin
    Printf.printf "instance:   %s (%d nodes, %d edges)\n" input (Dag.n dag)
      (Dag.num_edges dag);
    Printf.printf "machine:    %s\n" (Format.asprintf "%a" Machine.pp machine);
    Printf.printf "algorithm:  %s\n" algorithm;
    Printf.printf "supersteps: %d\n" (Schedule.num_supersteps schedule);
    Printf.printf "cost:       %d (work %d + comm %d + latency %d)\n" b.Bsp_cost.total
      b.Bsp_cost.work_total b.Bsp_cost.comm_total b.Bsp_cost.latency_total
  end
  else Printf.printf "%d\n" b.Bsp_cost.total;
  if show then print_string (Schedule_render.to_string machine schedule);
  if profile then begin
    let prof = Profile.compute machine schedule in
    (match Profile.reconcile prof b with
     | Ok () -> ()
     | Error msg -> failwith ("internal error: profile does not reconcile: " ^ msg));
    Format.printf "%a%!" Profile.pp prof
  end;
  (match chrome_trace with
   | None -> ()
   | Some path ->
     Trace_export.write_file path machine schedule;
     if not quiet then
       Printf.printf "chrome trace written to %s (open in ui.perfetto.dev)\n" path);
  (match output with
   | None -> ()
   | Some path ->
     Schedule_io.write_file path schedule;
     if not quiet then Printf.printf "schedule written to %s\n" path);
  match registry with
  | None -> ()
  | Some r ->
    if trace then Obs.Metrics.log_summary r;
    (match metrics with
     | None -> ()
     | Some path ->
       Obs.Metrics.write_json_file r path;
       if not quiet then Printf.printf "metrics written to %s\n" path)

let input =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"INPUT" ~doc:"HyperDAG input file.")

let p = Arg.(value & opt int 4 & info [ "p"; "procs" ] ~doc:"Number of processors.")
let g = Arg.(value & opt int 1 & info [ "g"; "comm-cost" ] ~doc:"Per-unit communication cost.")
let l = Arg.(value & opt int 5 & info [ "l"; "latency" ] ~doc:"Latency per superstep.")

let delta =
  Arg.(
    value
    & opt (some int) None
    & info [ "numa-delta" ]
        ~doc:
          "Enable NUMA: processors form a binary tree and each level multiplies the unit \
           cost by $(docv). Requires --p to be a power of two." ~docv:"DELTA")

let algorithm =
  Arg.(
    value
    & opt (enum algorithms) `Pipeline
    & info [ "algorithm"; "a" ]
        ~doc:
          "Scheduler to run: $(b,pipeline) (the full framework), $(b,multilevel), or a \
           baseline ($(b,cilk), $(b,hdagg), $(b,bl-est), $(b,etf), $(b,bspg), \
           $(b,source), $(b,trivial)).")

let algorithm_name =
  Term.(
    const (fun a -> fst (List.find (fun (_, v) -> v = a) algorithms)) $ algorithm)

let seconds =
  Arg.(
    value & opt float 60.0
    & info [ "seconds" ] ~doc:"Approximate total optimisation time budget.")

let output =
  Arg.(
    value
    & opt (some string) None
    & info [ "output"; "o" ] ~doc:"Write the schedule to this file.")

let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed (Cilk stealing).")
let quiet = Arg.(value & flag & info [ "quiet"; "q" ] ~doc:"Print only the total cost.")

let machine_file =
  Arg.(
    value
    & opt (some file) None
    & info [ "machine" ]
        ~doc:
          "Read the machine from a description file (overrides -p/-g/-l/--numa-delta); \
           supports arbitrary explicit NUMA matrices, see Machine_io.")

let show =
  Arg.(value & flag & info [ "show" ] ~doc:"Print a per-superstep schedule rendering.")

let metrics =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write an observability snapshot (counters, gauges, cost trajectory, per-stage \
           spans with budget steps) as JSON to $(docv).")

let trace =
  Arg.(
    value & flag
    & info [ "trace" ]
        ~doc:
          "Log a summary line as each pipeline stage finishes (wall-clock seconds and \
           budget steps consumed), plus a final metrics summary.")

let profile =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print a cost-attribution report for the produced schedule: per-processor \
           utilisation, bottleneck processors and imbalance per superstep, the NUMA \
           traffic matrix, and the lower-bound gap.")

let chrome_trace =
  Arg.(
    value
    & opt (some string) None
    & info [ "chrome-trace" ] ~docv:"FILE"
        ~doc:
          "Write the schedule as a Chrome trace_event timeline to $(docv): one track per \
           processor with compute and communication slices per superstep. Open in \
           ui.perfetto.dev or chrome://tracing.")

let jobs =
  Arg.(
    value
    & opt int (Par.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N"
        ~doc:
          "Run the pipeline's candidate chains and the multilevel ratio sweep on $(docv) \
           domains (default from \\$BSP_JOBS, else 1). Results are bit-identical for \
           every $(docv); only wall-clock time changes.")

let replicate =
  Arg.(
    value & flag
    & info [ "replicate" ]
        ~doc:
          "Allow node replication: after the chosen algorithm finishes, greedily place \
           extra copies of nodes on processors whose incoming traffic they eliminate, \
           and keep the replicated schedule when it is strictly cheaper. Off by \
           default; without this flag all results are bit-identical to the \
           replication-free scheduler.")

let cmd =
  let doc = "schedule a computational DAG in the BSP+NUMA model" in
  Cmd.v
    (Cmd.info "scheduler" ~doc)
    Term.(const run $ input $ p $ g $ l $ delta $ machine_file $ algorithm_name $ seconds
          $ output $ seed $ quiet $ show $ metrics $ trace $ profile $ chrome_trace
          $ jobs $ replicate)

let () = exit (Cmd.eval cmd)
